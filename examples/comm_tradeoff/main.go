// Communication trade-off: photonic weak links versus physical ion
// shuttling.
//
// The paper models cross-chain gates over weak links at α·γ and asks the
// device community to improve α; the wider QCCD literature instead moves
// ions between traps. This example evaluates both mechanisms on the same
// placed circuits across a range of link qualities, locating the crossover
// where transport beats the optical link, and shows how the weak-link
// error rate compounds the picture through the fidelity model.
//
//	go run ./examples/comm_tradeoff
package main

import (
	"fmt"
	"log"

	"velociti"
)

func main() {
	spec := velociti.Spec{Name: "qaoa-like", Qubits: 64, TwoQubitGates: 1260}
	shuttleParams := velociti.DefaultShuttleParams()

	fmt.Println("cross-chain mechanism comparison (64 qubits, 1260 2-qubit gates, 16-ion chains)")
	fmt.Printf("%-8s %16s %16s %10s\n", "α", "weak link [ms]", "shuttling [ms]", "winner")
	for _, alpha := range []float64{1.0, 1.5, 2.0, 3.0, 3.7, 4.0, 5.0} {
		lat := velociti.DefaultLatencies()
		lat.WeakPenalty = alpha
		var weakSum, shuttleSum float64
		const runs = 15
		for i := 0; i < runs; i++ {
			c, layout, _, err := velociti.RunOnce(velociti.Config{
				Spec:        spec,
				ChainLength: 16,
				Latencies:   lat,
			}, int64(1000+i))
			if err != nil {
				log.Fatal(err)
			}
			cmp, err := velociti.CompareShuttle(c, layout, lat, shuttleParams)
			if err != nil {
				log.Fatal(err)
			}
			weakSum += cmp.WeakLinkMicros
			shuttleSum += cmp.ShuttleMicros
		}
		weak, shut := weakSum/runs/1000, shuttleSum/runs/1000
		winner := "weak link"
		if shut < weak {
			winner = "shuttling"
		}
		fmt.Printf("%-8.1f %16.2f %16.2f %10s\n", alpha, weak, shut, winner)
	}
	breakEven, err := shuttleParams.BreakEvenAlpha(velociti.DefaultLatencies())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytic single-hop break-even: α = %.2f\n\n", breakEven)

	// Fidelity view: even when the weak link is fast, its error rate may
	// dominate the success probability.
	c, layout, _, err := velociti.RunOnce(velociti.Config{
		Spec:        spec,
		ChainLength: 16,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	est, err := velociti.EstimateFidelity(c, layout, velociti.DefaultLatencies(), velociti.DefaultFidelityModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fidelity at α=2: %s\n", est)
	fmt.Println("→ with photonic links at roughly 94 percent fidelity, they dominate the")
	fmt.Println("  error budget long before it dominates the timing budget; a real")
	fmt.Println("  design would trade both axes together.")
}
