// Scheduler comparison: how much of the random-scheduling performance loss
// can smarter gate placement recover?
//
// The paper observes (§VI-B) that random scheduling can leave more than
// 50% performance on the table for sparse circuits, motivating "robust
// scheduling optimizations". This example pits the paper's random placer
// against the extension policies on quantum volume — the sparsest, most
// scheduler-sensitive workload — and on the dense QAOA application.
//
//	go run ./examples/scheduler_comparison
package main

import (
	"fmt"
	"log"

	"velociti"
)

func main() {
	lat := velociti.DefaultLatencies()
	placers := []velociti.Placer{
		velociti.RandomPlacer(),
		velociti.WeakAvoidingPlacer(),
		velociti.LoadBalancedPlacer(lat),
		velociti.EdgeConstrainedPlacer(),
	}

	qv := velociti.Spec{Name: "qv128", Qubits: 128, OneQubitGates: 128, TwoQubitGates: 64}
	qaoa := velociti.Apps()[1]

	for _, spec := range []velociti.Spec{qv, qaoa} {
		fmt.Printf("=== %s (%d qubits, %d 2-qubit gates), 32-ion chains ===\n",
			spec.Name, spec.Qubits, spec.TwoQubitGates)
		fmt.Printf("%-18s %12s %12s %12s %10s\n", "placer", "mean [ms]", "max [ms]", "spread", "weak gates")
		var randomMean float64
		for _, p := range placers {
			report, err := velociti.Run(velociti.Config{
				Spec:        spec,
				ChainLength: 32,
				Latencies:   lat,
				Placer:      p,
				Runs:        velociti.DefaultRuns,
				Seed:        3,
			})
			if err != nil {
				log.Fatal(err)
			}
			if p.Name() == "random" {
				randomMean = report.Parallel.Mean
			}
			fmt.Printf("%-18s %12.2f %12.2f %11.0f%% %10.0f\n",
				p.Name(),
				report.Parallel.Mean/1000,
				report.Parallel.Max/1000,
				report.Parallel.RelativeSpread()*100,
				report.WeakGates.Mean)
		}
		// Summarize the recoverable gap.
		best := parallelOf(spec, velociti.LoadBalancedPlacer(lat))
		fmt.Printf("load-balanced recovers %.0f%% versus random scheduling\n\n",
			(randomMean/best-1)*100)
	}
}

func parallelOf(spec velociti.Spec, p velociti.Placer) float64 {
	rep, err := velociti.Run(velociti.Config{
		Spec:        spec,
		ChainLength: 32,
		Placer:      p,
		Runs:        velociti.DefaultRuns,
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	return rep.Parallel.Mean
}
