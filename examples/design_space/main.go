// Design-space exploration: the paper's Case Study 2 as a library program.
//
// For every Table II application this sweeps the achievable chain lengths
// (8–32 ions) and the weak-link penalty α (2.0 down to 1.0) and reports
// which knob buys more performance — the paper's central architectural
// question of horizontal versus vertical scaling.
//
//	go run ./examples/design_space
package main

import (
	"fmt"
	"log"

	"velociti"
)

func main() {
	chainLengths := []int{8, 16, 24, 32}
	alphas := []float64{2.0, 1.6, 1.2, 1.0}

	fmt.Println("=== chain-length sweep (α = 2.0), parallel time in ms ===")
	fmt.Printf("%-11s", "app")
	for _, L := range chainLengths {
		fmt.Printf("  L=%-6d", L)
	}
	fmt.Printf("  best\n")
	for _, spec := range velociti.Apps() {
		fmt.Printf("%-11s", spec.Name)
		best, bestL := 0.0, 0
		for _, L := range chainLengths {
			mean := parallelMean(spec, L, 2.0)
			fmt.Printf("  %-8.1f", mean/1000)
			if bestL == 0 || mean < best {
				best, bestL = mean, L
			}
		}
		fmt.Printf("  L=%d\n", bestL)
	}

	fmt.Println("\n=== weak-link penalty sweep (L = 16), parallel time in ms ===")
	fmt.Printf("%-11s", "app")
	for _, a := range alphas {
		fmt.Printf("  α=%-6.1f", a)
	}
	fmt.Printf("  α 2→1 gain\n")
	for _, spec := range velociti.Apps() {
		fmt.Printf("%-11s", spec.Name)
		var first, last float64
		for i, a := range alphas {
			mean := parallelMean(spec, 16, a)
			fmt.Printf("  %-8.1f", mean/1000)
			if i == 0 {
				first = mean
			}
			last = mean
		}
		fmt.Printf("  %.0f%%\n", (first/last-1)*100)
	}

	fmt.Println("\nReading the sweeps: longer chains cut the cross-chain gate")
	fmt.Println("fraction (1 - (L-1)/(n-1)), and a better weak link cuts the cost")
	fmt.Println("of the crossings that remain. Dense circuits benefit from both;")
	fmt.Println("sparse ones (BV) mostly from the weak link.")

	// Automated exploration: the Pareto frontier over time and fidelity
	// for the QAOA workload.
	fmt.Println("\n=== Pareto frontier for QAOA (time vs success probability) ===")
	points, err := velociti.ExploreDesignSpace(velociti.Apps()[1], velociti.DesignSpaceOptions{
		Runs: 10,
		Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	frontier := velociti.ParetoFrontier(points)
	for _, p := range frontier {
		fmt.Println("  " + p.String())
	}
	fmt.Printf("(%d of %d grid points are Pareto-optimal)\n", len(frontier), len(points))
}

func parallelMean(spec velociti.Spec, chainLength int, alpha float64) float64 {
	lat := velociti.DefaultLatencies()
	lat.WeakPenalty = alpha
	report, err := velociti.Run(velociti.Config{
		Spec:        spec,
		ChainLength: chainLength,
		Latencies:   lat,
		Runs:        15,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	return report.Parallel.Mean
}
