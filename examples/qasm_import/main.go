// OpenQASM interchange: import a circuit written in OpenQASM 2.0, estimate
// its trapped-ion runtime, and export generated circuits back to QASM.
//
// The example embeds a small variational ansatz written by hand (with a
// user-defined gate and register broadcast), parses it through the
// framework's QASM front end, runs the explicit-circuit performance model,
// and then serializes a generated 16-qubit QFT to portable QASM.
//
//	go run ./examples/qasm_import
package main

import (
	"fmt"
	"log"
	"strings"

	"velociti"
)

const ansatz = `
OPENQASM 2.0;
include "qelib1.inc";

// A 2-local variational ansatz over two 4-qubit registers.
gate entangle(theta) a,b { cx a,b; rz(theta) b; cx a,b; }

qreg left[4];
qreg right[4];
creg out[4];

h left;
h right;
entangle(pi/4) left[0],left[1];
entangle(pi/4) left[2],left[3];
entangle(pi/4) right[0],right[1];
entangle(pi/4) right[2],right[3];
entangle(pi/8) left[3],right[0];
barrier left;
measure left -> out;
`

func main() {
	// Import. The parser flattens the two registers into 8 qubits,
	// expands the user-defined gate, and counts (but does not time)
	// measurements and barriers.
	c, err := velociti.ParseQASM("ansatz", ansatz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d qubits, %d 1-qubit gates, %d 2-qubit gates, depth %d\n",
		c.Name, c.NumQubits(), c.NumOneQubitGates(), c.NumTwoQubitGates(), c.Depth())

	// Estimate its runtime on a 2-chain machine. Explicit-circuit mode
	// randomizes only the qubit placement per trial.
	report, err := velociti.Run(velociti.Config{
		Circuit:     c,
		ChainLength: 4,
		Runs:        velociti.DefaultRuns,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on 2x4-ion chains: parallel %.1f µs (serial %.1f µs, %.1fx)\n",
		report.Parallel.Mean, report.Serial.Mean, report.MeanSpeedup())

	// The placement matters: cluster interacting qubits instead.
	aware, err := velociti.Run(velociti.Config{
		Circuit:     c,
		ChainLength: 4,
		Placement:   velociti.InteractionAwarePlacement(c.InteractionGraph()),
		Runs:        velociti.DefaultRuns,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interaction-aware placement: parallel %.1f µs (%.0f%% faster), %.1f weak gates vs %.1f\n",
		aware.Parallel.Mean,
		(report.Parallel.Mean/aware.Parallel.Mean-1)*100,
		aware.WeakGates.Mean, report.WeakGates.Mean)

	// Export: any generated circuit serializes to portable OpenQASM.
	qft, err := velociti.QFT(16)
	if err != nil {
		log.Fatal(err)
	}
	text := velociti.SerializeQASM(qft)
	fmt.Printf("\nexported qft16 as OpenQASM (%d lines); header:\n", strings.Count(text, "\n"))
	for _, line := range strings.SplitN(text, "\n", 5)[:4] {
		fmt.Println("  " + line)
	}
}
