// Functional validation: prove the workload generators compute what they
// claim using the built-in state-vector simulator — the "functional
// simulation for small systems" the paper defers to future work (§III-C).
//
// The example checks three applications end to end:
//   - Bernstein–Vazirani recovers a hidden bit string deterministically,
//   - the Cuccaro ripple-carry adder computes 5 + 3 = 8 exactly,
//   - Grover's search amplifies the marked state far above uniform,
//
// then reports the timing estimate for the same circuits, illustrating the
// two complementary views (function vs performance) of one IR.
//
//	go run ./examples/functional_validation
package main

import (
	"fmt"
	"log"

	"velociti"
)

func main() {
	checkBernsteinVazirani()
	checkAdder()
	checkGrover()
}

func checkBernsteinVazirani() {
	secret := []bool{true, false, true, true, false} // 01101 (LSB first)
	c, err := velociti.BernsteinVazirani(6, secret)
	if err != nil {
		log.Fatal(err)
	}
	state, err := velociti.Simulate(c)
	if err != nil {
		log.Fatal(err)
	}
	var want uint64
	for i, bit := range secret {
		if bit {
			want |= 1 << uint(i)
		}
	}
	p := state.MarginalProbability(0b11111, want)
	fmt.Printf("Bernstein–Vazirani: P(read secret %05b) = %.6f\n", want, p)
	if p < 0.999 {
		log.Fatalf("BV failed to recover the secret")
	}
	reportTiming(c)
}

func checkAdder() {
	const bits = 3
	a, b := 5, 3
	// Prepend X gates preparing the inputs, then the adder. Register
	// layout: qubit 0 carry-in, 1..3 = b, 4..6 = a, 7 carry-out.
	c := velociti.NewCircuit("add5+3", 2*bits+2)
	for i := 0; i < bits; i++ {
		if b&(1<<uint(i)) != 0 {
			c.X(1 + i)
		}
		if a&(1<<uint(i)) != 0 {
			c.X(1 + bits + i)
		}
	}
	adder, err := velociti.CuccaroAdder(bits)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range adder.Gates() {
		c.Append(g.Kind, g.Qubits, g.Params...)
	}
	state, err := velociti.Simulate(c)
	if err != nil {
		log.Fatal(err)
	}
	// Read the b register plus carry-out as the sum.
	sum := 0
	for i := 0; i <= bits; i++ {
		bitIndex := 1 + i
		if i == bits {
			bitIndex = 2*bits + 1
		}
		if state.MarginalProbability(1<<uint(bitIndex), 1<<uint(bitIndex)) > 0.5 {
			sum |= 1 << uint(i)
		}
	}
	fmt.Printf("Cuccaro adder: %d + %d = %d\n", a, b, sum)
	if sum != a+b {
		log.Fatalf("adder computed %d", sum)
	}
	reportTiming(c)
}

func checkGrover() {
	c, err := velociti.Grover(4, 2) // 4 data qubits, 2 amplification rounds
	if err != nil {
		log.Fatal(err)
	}
	state, err := velociti.Simulate(c)
	if err != nil {
		log.Fatal(err)
	}
	p := state.MarginalProbability(0b1111, 0b1111)
	fmt.Printf("Grover (N=16, 2 iterations): P(marked state) = %.3f (uniform would be %.3f)\n",
		p, 1.0/16)
	if p < 0.5 {
		log.Fatalf("Grover under-amplified")
	}
	reportTiming(c)
}

func reportTiming(c *velociti.Circuit) {
	report, err := velociti.Run(velociti.Config{
		Circuit:     c,
		ChainLength: 4,
		Runs:        10,
		Seed:        2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  timing on 4-ion chains: %.1f µs parallel, %.1fx over back-to-back execution\n\n",
		report.Parallel.Mean, report.SerialPerGate.Mean/report.Parallel.Mean)
}
