// Quickstart: estimate the performance of a quantum application on a
// QCCD-based trapped-ion machine — the paper's Case Study 1 in miniature.
//
// It runs the 64-qubit Supremacy workload (Table II) on 16-ion chains with
// the paper's Table III latencies, averaging 35 randomized
// place-and-route trials, and prints the serial baseline, the parallel
// estimate, and the speedup.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"velociti"
)

func main() {
	// Boundary conditions: 64 qubits, 560 2-qubit gates (Table II's
	// Supremacy row). The chain length of 16 ions is typical of NISQ-era
	// QCCD systems; the number of chains is derived area-optimally.
	cfg := velociti.Config{
		Spec:        velociti.Spec{Name: "Supremacy", Qubits: 64, TwoQubitGates: 560},
		ChainLength: 16,
		Latencies:   velociti.DefaultLatencies(), // δ=1µs, γ=100µs, α=2
		Runs:        velociti.DefaultRuns,        // 35 trials, as in the paper
		Seed:        1,
	}
	report, err := velociti.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\n", report.Spec)
	fmt.Printf("machine:  %d chains x %d ions, %d weak links (%s)\n",
		report.Device.NumChains, report.Device.ChainLength,
		report.Device.MaxWeakLinks, report.Device.Topology)
	fmt.Printf("serial:   %6.2f ms (Eq. 1-2 baseline)\n", report.Serial.Mean/1000)
	fmt.Printf("parallel: %6.2f ms (min %.2f, max %.2f across %d trials)\n",
		report.Parallel.Mean/1000, report.Parallel.Min/1000,
		report.Parallel.Max/1000, len(report.Trials))
	fmt.Printf("speedup:  %.1fx from intra-chain parallelism\n", report.MeanSpeedup())
	fmt.Printf("weak-link gates per trial: %.0f of %d 2-qubit gates\n",
		report.WeakGates.Mean, report.Spec.TwoQubitGates)

	// Zoom into a single trial for the critical path.
	_, _, res, err := velociti.RunOnce(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one trial's critical path runs through %d gates\n", len(res.CriticalPath))
}
