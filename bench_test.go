// Benchmarks regenerating every table and figure of the paper's evaluation.
//
// Each BenchmarkTableX/BenchmarkFigX target runs the corresponding
// experiment driver at a reduced replication count (benchmarks measure the
// tool, not the statistics; cmd/velociti-repro runs the full 35-trial
// versions and prints the data series). The reported ns/op is this
// implementation's cost to produce one full data series for that figure —
// the quantity the paper's own Figure 5 tracks for the Python tool.
// Ablation benches cover the extension policies DESIGN.md calls out.
package velociti

import (
	"context"
	"runtime"
	"testing"

	"velociti/internal/apps"
	"velociti/internal/core"
	"velociti/internal/dse"
	"velociti/internal/expt"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/qasm"
	"velociti/internal/route"
	"velociti/internal/schedule"
	"velociti/internal/shuttle"
	"velociti/internal/statevec"
	"velociti/internal/stats"
	"velociti/internal/ti"
	"velociti/internal/workload"

	"velociti/internal/circuit"
)

// benchOpts keeps per-iteration work bounded; series shapes are unaffected.
func benchOpts() expt.Options {
	return expt.Options{Runs: 5, Seed: 1}
}

// BenchmarkTableII regenerates the application-attribute table from the
// gate-level generators (widths and 2-qubit gate counts).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, app := range apps.Catalog() {
			c, err := app.Build()
			if err != nil {
				b.Fatal(err)
			}
			if c.NumQubits() != app.Spec.Qubits {
				b.Fatalf("%s: width %d", app.Name(), c.NumQubits())
			}
		}
	}
}

// BenchmarkTableIII exercises the latency-configuration path (validation
// plus rendering) across the paper's α sweep.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, alpha := range expt.ScalingAlphas {
			lat := perf.DefaultLatencies()
			lat.WeakPenalty = alpha
			if err := lat.Validate(); err != nil {
				b.Fatal(err)
			}
			if out := expt.TableIII(lat); len(out) == 0 {
				b.Fatal("empty table")
			}
		}
	}
}

// BenchmarkFig5SimulationTime is the direct analogue of the paper's
// Figure 5: wall time to simulate random circuits as size scales. The
// per-op time divided by the grid size (4 points × 5 runs) is this
// implementation's per-simulation cost, comparable against the paper's
// 0.63 s–6.23 s Python measurements.
func BenchmarkFig5SimulationTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig5(expt.Options{Runs: 5, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Point measures one simulation of the largest Figure 5 grid
// point (100 qubits, 400 2-qubit gates), the configuration the paper
// reports at 6.23 s.
func BenchmarkFig5Point(b *testing.B) {
	cfg := core.Config{
		Spec:        workload.Random(100, 400),
		ChainLength: 16,
		Runs:        1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := core.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6SerialVsParallel regenerates Case Study 1: all six Table II
// applications through both models on 16-ion chains.
func BenchmarkFig6SerialVsParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if res.GeoMeanSpeedup <= 1 {
			b.Fatalf("speedup %v", res.GeoMeanSpeedup)
		}
	}
}

// BenchmarkFig7ChainLength regenerates the chain-length sweep (8–32 ions)
// over the application suite.
func BenchmarkFig7ChainLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig7(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8QuantumVolume regenerates the quantum-volume scaling study
// (chain length 32→64 and α 2→1, N = 8–128).
func BenchmarkFig8QuantumVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig8(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9RatioCircuits regenerates the 2:1-ratio scaling study.
func BenchmarkFig9RatioCircuits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig9(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSchedulers compares the gate-placement policies
// (random / weak-avoiding / load-balanced / edge-constrained) on QAOA.
func BenchmarkAblationSchedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationSchedulers(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPlacement compares qubit-placement policies on the
// gate-level Supremacy circuit.
func BenchmarkAblationPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationPlacement(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTopology compares ring and line weak-link arrangements.
func BenchmarkAblationTopology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationTopology(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Component micro-benchmarks ----

// BenchmarkParallelModelQFT measures one parallel-model evaluation of the
// largest Table II workload (QFT: 4032 2-qubit gates) on the kernelized
// hot path: the flat-array evaluator is built once (as core.Run does per
// circuit) and each op re-evaluates it against the layout.
func BenchmarkParallelModelQFT(b *testing.B) {
	spec := apps.PaperSpecs()[3]
	d, err := ti.DeviceFor(spec.Qubits, 16, ti.Ring)
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRand(1)
	layout, err := RandomPlacement.Place(d, spec.Qubits, r)
	if err != nil {
		b.Fatal(err)
	}
	c, err := schedule.Random{}.Place(spec, layout, r)
	if err != nil {
		b.Fatal(err)
	}
	lat := perf.DefaultLatencies()
	ev := perf.NewEvaluator(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ev.ParallelTime(layout, lat) <= 0 {
			b.Fatal("bad time")
		}
	}
}

// BenchmarkLegacyParallelModelQFT pins the pre-kernelization map-graph
// path (perf.ParallelTime) so the evaluator's advantage stays measurable.
func BenchmarkLegacyParallelModelQFT(b *testing.B) {
	spec := apps.PaperSpecs()[3]
	d, _ := ti.DeviceFor(spec.Qubits, 16, ti.Ring)
	r := stats.NewRand(1)
	layout, _ := RandomPlacement.Place(d, spec.Qubits, r)
	c, err := schedule.Random{}.Place(spec, layout, r)
	if err != nil {
		b.Fatal(err)
	}
	lat := perf.DefaultLatencies()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if perf.ParallelTime(c, layout, lat) <= 0 {
			b.Fatal("bad time")
		}
	}
}

// BenchmarkGateGraphConstruction measures the paper's directed-graph
// representation build (§IV-C) plus longest path for the QFT workload —
// one full from-scratch construction per op, now through the CSR
// evaluator kernel instead of the map-based dag.Graph.
func BenchmarkGateGraphConstruction(b *testing.B) {
	spec := apps.PaperSpecs()[3]
	d, _ := ti.DeviceFor(spec.Qubits, 16, ti.Ring)
	r := stats.NewRand(1)
	layout, _ := RandomPlacement.Place(d, spec.Qubits, r)
	c, err := schedule.Random{}.Place(spec, layout, r)
	if err != nil {
		b.Fatal(err)
	}
	lat := perf.DefaultLatencies()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := perf.NewEvaluator(c)
		if ev.LongestPath(layout, lat) <= 0 {
			b.Fatal("bad length")
		}
	}
}

// BenchmarkLegacyGateGraphConstruction pins the original map-based graph
// build (perf.BuildGateGraph + Kahn longest path) for comparison.
func BenchmarkLegacyGateGraphConstruction(b *testing.B) {
	spec := apps.PaperSpecs()[3]
	d, _ := ti.DeviceFor(spec.Qubits, 16, ti.Ring)
	r := stats.NewRand(1)
	layout, _ := RandomPlacement.Place(d, spec.Qubits, r)
	c, err := schedule.Random{}.Place(spec, layout, r)
	if err != nil {
		b.Fatal(err)
	}
	lat := perf.DefaultLatencies()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := perf.BuildGateGraph(c, layout, lat)
		if _, err := g.LongestPath(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQASMParseQFT64 measures the OpenQASM front end on the 64-qubit
// QFT (10,144 gates).
func BenchmarkQASMParseQFT64(b *testing.B) {
	text := qasm.Serialize(bc(b)(apps.QFT(64)))
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qasm.ParseCircuit("qft64", text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStatevec16Qubit measures functional simulation of a 16-qubit
// GHZ preparation (65,536 amplitudes).
func BenchmarkStatevec16Qubit(b *testing.B) {
	c := bc(b)(apps.GHZ(16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := statevec.Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacement64 measures one random qubit placement of a 64-qubit
// workload.
func BenchmarkPlacement64(b *testing.B) {
	d, _ := ti.DeviceFor(64, 16, ti.Ring)
	r := stats.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RandomPlacement.Place(d, 64, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationComm compares weak-link and ion-shuttling communication
// across the α sweep.
func BenchmarkAblationComm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationComm(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimelineQFT measures schedule construction for the QFT
// workload.
func BenchmarkTimelineQFT(b *testing.B) {
	spec := apps.PaperSpecs()[3]
	d, _ := ti.DeviceFor(spec.Qubits, 16, ti.Ring)
	r := stats.NewRand(1)
	layout, _ := RandomPlacement.Place(d, spec.Qubits, r)
	c, err := schedule.Random{}.Place(spec, layout, r)
	if err != nil {
		b.Fatal(err)
	}
	lat := perf.DefaultLatencies()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perf.BuildTimeline(c, layout, lat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizerSupremacy measures the circuit optimizer on the
// gate-level Supremacy workload.
func BenchmarkOptimizerSupremacy(b *testing.B) {
	c := bc(b)(apps.Supremacy(8, 8, 20, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if opt, _ := c.Optimize(); opt.NumGates() == 0 {
			b.Fatal("optimizer emptied the circuit")
		}
	}
}

// BenchmarkConcurrentRun measures the worker-pool speedup over the
// standard serial trial loop on a Table II workload.
func BenchmarkConcurrentRun(b *testing.B) {
	cfg := core.Config{
		Spec:        apps.PaperSpecs()[1],
		ChainLength: 16,
		Runs:        core.DefaultRuns,
		Workers:     8,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := core.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// scalingSweepBench is the α-panel workload shared by the sweep benchmarks:
// one Figure 8-class cell (64-qubit quantum volume at L=32) priced under
// every ScalingAlphas timing model.
func scalingSweepBench(b *testing.B) (core.Config, []perf.Latencies) {
	b.Helper()
	qv, err := workload.QuantumVolume(64)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Spec: qv, ChainLength: 32, Runs: 5, Seed: 1}
	lats := make([]perf.Latencies, len(expt.ScalingAlphas))
	for j, alpha := range expt.ScalingAlphas {
		lats[j] = perf.DefaultLatencies()
		lats[j].WeakPenalty = alpha
	}
	return cfg, lats
}

// BenchmarkScalingAlphaSweep measures the stage-pipeline α panel: one
// RunSweep call binds each trial once and prices all six α models through
// the parametric kernel. The committed baseline records the legacy
// one-run-per-α cost, so benchdiff gates the sweep engine's advantage.
func BenchmarkScalingAlphaSweep(b *testing.B) {
	cfg, lats := scalingSweepBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Pipeline = core.NewPipeline()
		reports, err := core.RunSweep(cfg, lats)
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) != len(lats) {
			b.Fatal("short sweep")
		}
	}
}

// BenchmarkShuttleAlphaSweep prices the same α panel through the shuttle
// timing backend: the batched transport kernel (split + move + merge +
// recool per hop, junction contention included) replaces the weak-link α
// scaling while reusing the one-bind-per-trial sweep shape.
func BenchmarkShuttleAlphaSweep(b *testing.B) {
	cfg, lats := scalingSweepBench(b)
	cfg.Backend = shuttle.Backend{Params: shuttle.Default()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Pipeline = core.NewPipeline()
		reports, err := core.RunSweep(cfg, lats)
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) != len(lats) {
			b.Fatal("short sweep")
		}
	}
}

// BenchmarkLegacyScalingAlphaSweep pins the pre-refactor shape of the same
// panel — one independent core.Run per α cell — for comparison.
func BenchmarkLegacyScalingAlphaSweep(b *testing.B) {
	cfg, lats := scalingSweepBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, lat := range lats {
			run := cfg
			run.Latencies = lat
			if _, err := core.Run(run); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// streamEvalSource builds the fixed-width streaming workload shared by the
// small/large benchmark pair: the SAME 64 qubits, layout, and gate mix —
// only the gate count differs. Holding the width fixed makes the pair's
// B/op ratio a pure working-set measurement: the frontier kernel's memory
// scales with qubits and the chunk window, never with total gates, so the
// committed baseline gates B/op and allocs/op of Large at <= 1.1x Small
// while the gate count grows 100x (the streaming-memory-flat ratio in
// BENCH_BASELINE.json).
func streamEvalSource(b *testing.B, gates int) (circuit.Source, *ti.Layout, []perf.Latencies) {
	b.Helper()
	prog, err := workload.RandomCircuitProgram(64, gates, 0.3, 7)
	if err != nil {
		b.Fatal(err)
	}
	d, err := ti.DeviceFor(64, 16, ti.Ring)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := RandomPlacement.Place(d, 64, stats.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	return prog.Source(), layout, []perf.Latencies{perf.DefaultLatencies()}
}

// benchStreamingEval re-generates and prices the workload once per op —
// the full streaming pipeline (generator, placement classification,
// frontier longest-path), with nothing materialized.
func benchStreamingEval(b *testing.B, gates int) {
	b.Helper()
	src, layout, lats := streamEvalSource(b, gates)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, st, err := perf.StreamTimeAll(src, layout, lats)
		if err != nil {
			b.Fatal(err)
		}
		if rs[0].ParallelMicros <= 0 || st.Gates != gates {
			b.Fatalf("bad stream result: %+v over %d gates", rs[0], st.Gates)
		}
	}
}

// BenchmarkStreamingEvalSmall prices a 10^4-gate random circuit through
// the streaming kernel — the denominator of the memory-flat ratio gate.
func BenchmarkStreamingEvalSmall(b *testing.B) { benchStreamingEval(b, 10_000) }

// BenchmarkStreamingEvalLarge prices a 10^6-gate random circuit of the
// same width — the numerator. Its B/op and allocs/op must stay within
// 1.1x of Small's even though it consumes 100x the gates; ns/op scales
// linearly and is deliberately not part of the ratio gate.
func BenchmarkStreamingEvalLarge(b *testing.B) { benchStreamingEval(b, 1_000_000) }

// BenchmarkRouterHotPairs measures the localizing router on a workload
// with migration opportunities.
func BenchmarkRouterHotPairs(b *testing.B) {
	d, _ := ti.DeviceFor(32, 8, ti.Ring)
	layout, _ := SequentialPlacement.Place(d, 32, nil)
	c := NewCircuit("hot", 32)
	r := stats.NewRand(1)
	for i := 0; i < 400; i++ {
		a := r.Intn(32)
		bq := r.Intn(32)
		for bq == a {
			bq = r.Intn(32)
		}
		reps := 1 + r.Intn(10)
		for k := 0; k < reps; k++ {
			c.CX(a, bq)
		}
	}
	lat := perf.DefaultLatencies()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.Localize(c, layout, lat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtControlCapacity runs the control-capacity extension study.
func BenchmarkExtControlCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.ExtControlCapacity(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtFidelity runs the fidelity-scaling extension study.
func BenchmarkExtFidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.ExtFidelity(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignSpaceExploration runs the Pareto design-space explorer on
// the plan-grouped batched path: one coupled trial per (plan, seed) prices
// the whole α axis through the parametric sweep kernel and the batched
// fidelity estimator. The committed baseline pins the per-cell legacy cost
// (BenchmarkLegacyDesignSpaceExploration), so benchdiff gates the grouped
// explorer's advantage; its allocs/op entry records the batched path itself
// and keeps the hot loop allocation-flat.
func BenchmarkDesignSpaceExploration(b *testing.B) {
	spec := Spec{Name: "dse", Qubits: 64, TwoQubitGates: 300}
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := ExploreDesignSpace(spec, DesignSpaceOptions{Runs: 5, Seed: int64(i), Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(ParetoFrontier(points)) == 0 {
			b.Fatal("empty frontier")
		}
	}
}

// BenchmarkLegacyDesignSpaceExploration pins the per-cell exploration path
// (dse.ExplorePerCell) the grouped explorer replaced — the bit-exactness
// oracle doubles as the performance reference.
func BenchmarkLegacyDesignSpaceExploration(b *testing.B) {
	spec := Spec{Name: "dse", Qubits: 64, TwoQubitGates: 300}
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := dse.ExplorePerCell(context.Background(), spec, DesignSpaceOptions{Runs: 5, Seed: int64(i), Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(ParetoFrontier(points)) == 0 {
			b.Fatal("empty frontier")
		}
	}
}

// annealBenchInstance builds the large search instance shared by the
// delta-evaluation and annealing benchmarks: the 576-qubit Supremacy grid
// (24×24, depth 40, ~23k gates) on 8-ion chains — the regular,
// layered workload class that motivates search-based placement. Regularity
// matters for the measurement: a swap's dirty cone stays local to the
// touched layers, which is exactly the structure the delta path exploits
// (a uniformly random circuit of the same size entangles every qubit with
// the whole DAG and the cone degenerates to a full recompute).
func annealBenchInstance(b *testing.B) (*perf.Evaluator, *ti.Layout) {
	b.Helper()
	c, err := apps.Supremacy(24, 24, 40, 1)
	if err != nil {
		b.Fatal(err)
	}
	qubits := c.NumQubits()
	d, err := ti.DeviceFor(qubits, 8, ti.Ring)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := RandomPlacement.Place(d, qubits, stats.NewRand(3))
	if err != nil {
		b.Fatal(err)
	}
	return perf.NewEvaluator(c), layout
}

// BenchmarkDeltaEval measures the incremental rebind kernel: one qubit
// swap plus one objective refresh per op on the 96-qubit search instance.
// This is the annealer's inner loop — per-op cost scales with the swapped
// qubits' gate incidence and the dirty cone, not the DAG size.
func BenchmarkDeltaEval(b *testing.B) {
	ev, layout := annealBenchInstance(b)
	de, err := perf.NewDeltaEval(ev, layout, perf.WeakLink{}, perf.DefaultLatencies())
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRand(9)
	n := de.NumQubits()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q1 := r.Intn(n)
		q2 := r.Intn(n - 1)
		if q2 >= q1 {
			q2++
		}
		if _, err := de.Swap(q1, q2); err != nil {
			b.Fatal(err)
		}
		if de.Cost() <= 0 {
			b.Fatal("bad cost")
		}
	}
}

// benchAnnealedPlacer runs one full annealing search per op at a fixed
// move budget; full selects the place-then-full-evaluate scoring path.
func benchAnnealedPlacer(b *testing.B, full bool) {
	b.Helper()
	ev, layout := annealBenchInstance(b)
	lat := perf.DefaultLatencies()
	opt := placement.AnnealOptions{Moves: 2000, FullEval: full}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, cost, err := placement.AnnealLayout(ev, layout, perf.WeakLink{}, lat, stats.NewRand(int64(i)), opt)
		if err != nil {
			b.Fatal(err)
		}
		if cost <= 0 {
			b.Fatal("bad cost")
		}
	}
}

// BenchmarkAnnealedPlacer measures the delta-scored annealing search —
// the layouts/sec figure the ≥10× baseline gate tracks. The committed
// baseline pins the place-then-full-evaluate cost of the identical search
// (BenchmarkLegacyAnnealedPlacer, same moves, same accept sequence) at
// least 10× above this entry, so benchdiff surfaces any erosion of the
// delta path's advantage.
func BenchmarkAnnealedPlacer(b *testing.B) { benchAnnealedPlacer(b, false) }

// BenchmarkLegacyAnnealedPlacer pins the pre-refactor cost model: every
// candidate layout priced from scratch (perf.DeltaEval.FullCost — the
// bit-exactness oracle doubles as the performance reference, exactly like
// the legacy DSE and alpha-sweep pins).
func BenchmarkLegacyAnnealedPlacer(b *testing.B) { benchAnnealedPlacer(b, true) }

// bc unwraps a circuit-generator result, failing the benchmark on error.
func bc(b *testing.B) func(*circuit.Circuit, error) *circuit.Circuit {
	return func(c *circuit.Circuit, err error) *circuit.Circuit {
		b.Helper()
		if err != nil {
			b.Fatalf("unexpected error: %v", err)
		}
		return c
	}
}
