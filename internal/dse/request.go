package dse

// This file gives the explorer a request-shaped entry point for callers
// that arrive as data rather than code — the exploration service
// (internal/serve) and any future batch front end. A Request carries the
// grid knobs with JSON tags, Run resolves defaults exactly as
// Options.normalized does, and the Response pairs the full grid with its
// Pareto frontier so one round trip answers the paper's Case Study 2
// question ("which configurations are worth building").

import (
	"context"

	"velociti/internal/circuit"
	"velociti/internal/core"
	"velociti/internal/shuttle"
)

// Request describes one exploration over a workload. Zero-valued knobs
// select the same defaults as Options: chain lengths 8/16/24/32, alphas
// 2.0/1.5/1.0, random + load-balanced placers, 10 runs.
type Request struct {
	// Spec is the workload's boundary conditions.
	Spec circuit.Spec `json:"spec"`
	// ChainLengths, Alphas, and Placers define the grid.
	ChainLengths []int     `json:"chain_lengths,omitempty"`
	Alphas       []float64 `json:"alphas,omitempty"`
	Placers      []string  `json:"placers,omitempty"`
	// Backends names the timing backends to sweep ("weaklink",
	// "shuttle"); empty selects {"weaklink"}. The backend is the
	// innermost grid axis.
	Backends []string `json:"backends,omitempty"`
	// Shuttle prices the shuttle backend's transport primitives; nil
	// selects shuttle.Default(). Validated whenever present.
	Shuttle *shuttle.Params `json:"shuttle,omitempty"`
	// Runs per configuration and the master seed.
	Runs int   `json:"runs,omitempty"`
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds concurrent (plan, seed) jobs; results are
	// bit-identical at any value.
	Workers int `json:"workers,omitempty"`
}

// Response is an exploration's outcome: every evaluated point in
// canonical (ChainLength, Alpha, Placer) order plus the Pareto frontier
// over (time, log-fidelity).
type Response struct {
	Points []Point `json:"points"`
	Pareto []Point `json:"pareto"`
}

// options lowers the request onto the exploration Options; pipeline may
// be nil (the grouped explorer then recycles trial scratch internally).
func (r Request) options(pipeline *core.Pipeline) Options {
	return Options{
		ChainLengths: r.ChainLengths,
		Alphas:       r.Alphas,
		Placers:      r.Placers,
		Backends:     r.Backends,
		Shuttle:      r.Shuttle,
		Runs:         r.Runs,
		Seed:         r.Seed,
		Workers:      r.Workers,
		Pipeline:     pipeline,
	}
}

// Run evaluates the request's grid and Pareto-filters it. A non-nil
// pipeline shares latency-independent stage artifacts with other requests
// (and other entry points) without changing any result. The returned
// points are bit-identical to Explore with the equivalent Options — Run
// is a lowering, not a second implementation.
func (r Request) Run(ctx context.Context, pipeline *core.Pipeline) (*Response, error) {
	points, err := ExploreContext(ctx, r.Spec, r.options(pipeline))
	if err != nil {
		return nil, err
	}
	return &Response{Points: points, Pareto: Pareto(points)}, nil
}
