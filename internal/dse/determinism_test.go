package dse

import (
	"context"
	"errors"
	"testing"
)

// TestExploreBitIdenticalAcrossWorkerCounts guards the worker-pool grid
// runner: for a fixed seed, every point must be identical between serial
// and concurrent exploration, in the grid's canonical order.
func TestExploreBitIdenticalAcrossWorkerCounts(t *testing.T) {
	base := Options{Runs: 4, Seed: 7}
	serialOpt := base
	serialOpt.Workers = 1
	serial := explore(t, serialOpt)
	for _, workers := range []int{2, 8} {
		opt := base
		opt.Workers = workers
		pts := explore(t, opt)
		if len(pts) != len(serial) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(pts), len(serial))
		}
		for i := range pts {
			if pts[i] != serial[i] {
				t.Fatalf("workers=%d: point %d differs:\nserial:     %+v\nconcurrent: %+v",
					workers, i, serial[i], pts[i])
			}
		}
	}
}

// TestExploreContextCancellation checks a dead context stops the grid.
func TestExploreContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{Runs: 4, Seed: 7, Workers: 4}
	if _, err := ExploreContext(ctx, spec(), opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
