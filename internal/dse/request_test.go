package dse

import (
	"context"
	"reflect"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/core"
	"velociti/internal/verr"
)

// Request.Run is a lowering onto ExploreContext + Pareto — field for
// field, including when a shared pipeline and workers are in play.
func TestRequestRunMatchesExplore(t *testing.T) {
	spec := circuit.Spec{Name: "req", Qubits: 12, OneQubitGates: 12, TwoQubitGates: 24}
	req := Request{
		Spec:         spec,
		ChainLengths: []int{4, 6},
		Alphas:       []float64{2.0, 1.0},
		Placers:      []string{"random"},
		Runs:         3,
		Seed:         5,
		Workers:      4,
	}
	resp, err := req.Run(context.Background(), core.NewPipeline())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Explore(spec, Options{
		ChainLengths: req.ChainLengths,
		Alphas:       req.Alphas,
		Placers:      req.Placers,
		Runs:         req.Runs,
		Seed:         req.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Points, want) {
		t.Errorf("request points diverge from Explore:\n%v\nvs\n%v", resp.Points, want)
	}
	if !reflect.DeepEqual(resp.Pareto, Pareto(want)) {
		t.Errorf("request pareto diverges from Pareto(points)")
	}
	if len(resp.Pareto) == 0 || len(resp.Pareto) > len(resp.Points) {
		t.Errorf("pareto size %d out of range for %d points", len(resp.Pareto), len(resp.Points))
	}
}

func TestRequestRunRejectsBadInput(t *testing.T) {
	_, err := Request{Spec: circuit.Spec{Name: "bad", Qubits: -1}}.Run(context.Background(), nil)
	if !verr.IsInput(err) {
		t.Fatalf("err = %v, want input-kind", err)
	}
	_, err = Request{
		Spec:    circuit.Spec{Name: "p", Qubits: 8, TwoQubitGates: 8},
		Placers: []string{"no-such-placer"},
	}.Run(context.Background(), nil)
	if !verr.IsInput(err) {
		t.Fatalf("placer err = %v, want input-kind", err)
	}
}
