package dse

import (
	"context"
	"strings"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/stats"
)

func spec() circuit.Spec {
	return circuit.Spec{Name: "dse", Qubits: 64, TwoQubitGates: 300}
}

func explore(t *testing.T, opt Options) []Point {
	t.Helper()
	pts, err := Explore(spec(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

func TestExploreGridSize(t *testing.T) {
	pts := explore(t, Options{Runs: 3, Seed: 1})
	// Defaults: 4 chain lengths × 3 alphas × 2 placers.
	if len(pts) != 24 {
		t.Fatalf("points = %d, want 24", len(pts))
	}
	for _, p := range pts {
		if p.ParallelMicros <= 0 || p.LogFidelity >= 0 {
			t.Fatalf("implausible point %+v", p)
		}
	}
}

func TestExploreDeterministic(t *testing.T) {
	a := explore(t, Options{Runs: 3, Seed: 7})
	b := explore(t, Options{Runs: 3, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs across runs", i)
		}
	}
}

func TestExploreKnobDirections(t *testing.T) {
	pts := explore(t, Options{
		ChainLengths: []int{8, 32},
		Alphas:       []float64{2.0, 1.0},
		Placers:      []string{"random"},
		Runs:         8,
		Seed:         3,
	})
	byKey := map[[2]interface{}]Point{}
	for _, p := range pts {
		byKey[[2]interface{}{p.ChainLength, p.Alpha}] = p
	}
	// Longer chains: faster and higher fidelity at fixed α.
	if !(byKey[[2]interface{}{32, 2.0}].ParallelMicros < byKey[[2]interface{}{8, 2.0}].ParallelMicros) {
		t.Errorf("L=32 should beat L=8 on time")
	}
	if !(byKey[[2]interface{}{32, 2.0}].LogFidelity > byKey[[2]interface{}{8, 2.0}].LogFidelity) {
		t.Errorf("L=32 should beat L=8 on fidelity")
	}
	// Lower α: faster at fixed L (fidelity unchanged by α in the model).
	if !(byKey[[2]interface{}{32, 1.0}].ParallelMicros < byKey[[2]interface{}{32, 2.0}].ParallelMicros) {
		t.Errorf("α=1 should beat α=2 on time")
	}
}

// TestExploreAnnealedMatchesPerCell: the search-based placer takes the
// per-lane fallback inside plan groups, and its grouped results must equal
// the independent per-cell path bit for bit at any worker count.
func TestExploreAnnealedMatchesPerCell(t *testing.T) {
	opt := Options{
		ChainLengths: []int{8},
		Alphas:       []float64{2.0, 1.0},
		Placers:      []string{"random", "annealed"},
		Runs:         3,
		Seed:         7,
	}
	sp := spec()
	want, err := ExplorePerCell(context.Background(), sp, opt)
	if err != nil {
		t.Fatal(err)
	}
	hasAnnealed := false
	for _, p := range want {
		if p.Placer == "annealed" {
			hasAnnealed = true
		}
	}
	if !hasAnnealed {
		t.Fatal("grid dropped the annealed axis")
	}
	for _, workers := range []int{1, 4} {
		opt.Workers = workers
		got, err := Explore(sp, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d point %d: grouped %+v, per-cell %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestParetoIsNonDominated(t *testing.T) {
	pts := explore(t, Options{Runs: 4, Seed: 2})
	frontier := Pareto(pts)
	if len(frontier) == 0 || len(frontier) > len(pts) {
		t.Fatalf("frontier size = %d of %d", len(frontier), len(pts))
	}
	for i, p := range frontier {
		for _, q := range pts {
			if q.Dominates(p) {
				t.Fatalf("frontier point %d dominated: %v by %v", i, p, q)
			}
		}
	}
	// Sorted by time ascending.
	for i := 1; i < len(frontier); i++ {
		if frontier[i].ParallelMicros < frontier[i-1].ParallelMicros {
			t.Fatalf("frontier unsorted at %d", i)
		}
	}
	// Some point with the minimum parallel time is always on the frontier
	// (ties are broken by fidelity, so the specific tied point may be
	// dominated).
	minTime := pts[0].ParallelMicros
	for _, p := range pts {
		if p.ParallelMicros < minTime {
			minTime = p.ParallelMicros
		}
	}
	if frontier[0].ParallelMicros != minTime {
		t.Fatalf("frontier head %v does not achieve the minimum time %v", frontier[0], minTime)
	}
}

func TestDominates(t *testing.T) {
	a := Point{ParallelMicros: 100, LogFidelity: -5}
	b := Point{ParallelMicros: 200, LogFidelity: -10}
	c := Point{ParallelMicros: 50, LogFidelity: -20}
	if !a.Dominates(b) {
		t.Errorf("a should dominate b")
	}
	if a.Dominates(c) || c.Dominates(a) {
		t.Errorf("a and c are incomparable")
	}
	if a.Dominates(a) {
		t.Errorf("a point never dominates itself (no strict improvement)")
	}
}

func TestExploreValidation(t *testing.T) {
	if _, err := Explore(circuit.Spec{Qubits: 0}, Options{}); err == nil {
		t.Errorf("invalid spec should fail")
	}
	if _, err := Explore(spec(), Options{Placers: []string{"bogus"}}); err == nil {
		t.Errorf("unknown placer should fail")
	}
}

func TestPointString(t *testing.T) {
	p := Point{ChainLength: 16, Alpha: 2, Placer: "random", ParallelMicros: 1234, LogFidelity: -3.2}
	s := p.String()
	if !strings.Contains(s, "L=16") || !strings.Contains(s, "random") {
		t.Fatalf("string = %q", s)
	}
}

// TestExploreMatchesLegacyTrialPath pins the stage-pipeline rewiring
// against the pre-pipeline per-trial computation, reimplemented inline:
// place randomly, synthesize with the cell's placer, estimate fidelity,
// count weak gates — all from one RNG stream per trial seed. Every grid
// point must agree exactly, and sharing one pipeline across worker counts
// must not change anything.
func TestExploreMatchesLegacyTrialPath(t *testing.T) {
	opt := Options{
		ChainLengths: []int{8, 16},
		Alphas:       []float64{2.0, 1.5, 1.0},
		Placers:      []string{"random", "load-balanced"},
		Runs:         4,
		Seed:         13,
	}.normalized()
	sp := spec()
	cells, err := opt.grid(sp)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Point, len(cells))
	for ci, cell := range cells {
		var parSum, logSum, weakSum float64
		for i := 0; i < opt.Runs; i++ {
			r := stats.NewRand(stats.SplitSeed(opt.Seed, i))
			layout, err := placement.Random{}.Place(cell.device, sp.Qubits, r)
			if err != nil {
				t.Fatal(err)
			}
			c, err := cell.placer.Place(sp, layout, r)
			if err != nil {
				t.Fatal(err)
			}
			est, err := opt.Fidelity.Estimate(c, layout, cell.lat)
			if err != nil {
				t.Fatal(err)
			}
			parSum += est.MakespanMicros
			logSum += est.LogTotal
			weakSum += float64(perf.WeakGates(c, layout))
		}
		n := float64(opt.Runs)
		want[ci] = Point{
			ChainLength:    cell.chainLength,
			Alpha:          cell.alpha,
			Placer:         cell.placerName,
			Backend:        cell.backendName,
			ParallelMicros: parSum / n,
			LogFidelity:    logSum / n,
			WeakGates:      weakSum / n,
		}
	}
	for _, workers := range []int{1, 4} {
		opt.Workers = workers
		got, err := Explore(sp, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d point %d: pipeline path %+v, legacy path %+v", workers, i, got[i], want[i])
			}
		}
	}
}
