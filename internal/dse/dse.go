// Package dse automates VelociTI's design-space exploration (the paper's
// Case Study 2 workflow, §VI-B): it evaluates a workload across a grid of
// machine configurations — chain length, weak-link penalty, and scheduling
// policy — and reports the Pareto frontier over the two axes a TI architect
// trades: execution time (parallel model) and estimated success
// probability (fidelity extension).
//
// The paper performs these sweeps by hand across figures; Explore runs the
// grid and Pareto filters it, so "which configurations are worth building"
// becomes one call.
//
// Exploration is plan-grouped: the grid is partitioned by latency-
// independent plan — a (chain length, placer) pair — and each plan's whole
// α axis is priced from ONE batched trial per seed (core.Stages.BindAll +
// fidelity.Estimator.EstimateAll), since α enters only at the pricing
// stage. ExplorePerCell keeps the cell-by-cell reference path; the two are
// bit-identical (see the property tests) because every batched kernel
// preserves the per-cell draw sequences and float operation order.
package dse

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"velociti/internal/circuit"
	"velociti/internal/core"
	"velociti/internal/fidelity"
	"velociti/internal/perf"
	"velociti/internal/pool"
	"velociti/internal/schedule"
	"velociti/internal/shuttle"
	"velociti/internal/stats"
	"velociti/internal/ti"
)

// Point is one evaluated configuration.
type Point struct {
	// Knobs.
	ChainLength int     `json:"chain_length"`
	Alpha       float64 `json:"alpha"`
	Placer      string  `json:"placer"`
	Backend     string  `json:"backend"`
	// Outcomes (means over the configured runs).
	ParallelMicros float64 `json:"parallel_us"`
	LogFidelity    float64 `json:"log_fidelity"`
	WeakGates      float64 `json:"weak_gates"`
}

// Dominates reports whether p is at least as good as q on both axes and
// strictly better on one (lower time, higher log-fidelity).
func (p Point) Dominates(q Point) bool {
	if p.ParallelMicros > q.ParallelMicros || p.LogFidelity < q.LogFidelity {
		return false
	}
	return p.ParallelMicros < q.ParallelMicros || p.LogFidelity > q.LogFidelity
}

// Options configures the exploration grid.
type Options struct {
	// ChainLengths to sweep; nil selects the paper's 8/16/24/32.
	ChainLengths []int
	// Alphas to sweep; nil selects {2.0, 1.5, 1.0}.
	Alphas []float64
	// Placers to sweep by name; nil selects {"random", "load-balanced"}.
	// Any schedule.ByName-resolvable name is accepted, including the
	// search-based "annealed" — it cannot batch a sweep lane-free (the
	// searched layout differs per synthesized circuit), so its plan
	// groups evaluate per α lane.
	Placers []string
	// Backends to sweep by name ("weaklink", "shuttle"); nil selects
	// {"weaklink"}. The backend is the innermost grid axis, so plan
	// groups batch per backend and a single-backend exploration keeps
	// the historical point ordering.
	Backends []string
	// Shuttle prices the shuttle backend's transport primitives; nil
	// selects shuttle.Default(). Validated whenever present.
	Shuttle *shuttle.Params
	// Runs per configuration; zero selects 10 (exploration favours grid
	// breadth over per-point precision).
	Runs int
	// Seed is the master seed.
	Seed int64
	// Fidelity is the error model; zero value selects the defaults.
	Fidelity fidelity.Model
	// Latencies is the base timing model (α is overridden per point).
	Latencies perf.Latencies
	// Workers bounds how many (plan, seed) jobs are evaluated concurrently
	// (further capped at GOMAXPROCS by the shared pool runner). Zero or
	// one evaluates the grid serially. Every trial derives its own seed
	// and the reduction preserves grid and run order, so results are
	// bit-identical at any worker count.
	Workers int
	// Pipeline is the shared stage-artifact store. A non-nil pipeline
	// retains each trial's placement, synthesis, and gate-class binding so
	// later Explore calls with overlapping seeds skip recomputation. When
	// nil, the grouped explorer runs cache-free instead: one coupled trial
	// per (plan, seed) already covers the whole α axis, so within a single
	// call there is nothing to share, and the transient circuits and
	// evaluators are recycled through per-worker scratch pools to keep the
	// batched loop allocation-flat. Caching never changes results.
	// (ExplorePerCell, the reference path, always uses a pipeline — its
	// cells re-derive the same trials and need the dedup.)
	Pipeline *core.Pipeline
}

func (o Options) normalized() Options {
	if len(o.ChainLengths) == 0 {
		o.ChainLengths = []int{8, 16, 24, 32}
	}
	if len(o.Alphas) == 0 {
		o.Alphas = []float64{2.0, 1.5, 1.0}
	}
	if len(o.Placers) == 0 {
		o.Placers = []string{"random", "load-balanced"}
	}
	if len(o.Backends) == 0 {
		o.Backends = []string{perf.WeakLink{}.Name()}
	}
	if o.Runs <= 0 {
		o.Runs = 10
	}
	if o.Fidelity == (fidelity.Model{}) {
		o.Fidelity = fidelity.Default()
	}
	if o.Latencies == (perf.Latencies{}) {
		o.Latencies = perf.DefaultLatencies()
	}
	return o
}

// shuttleParams resolves the effective transport costs for the shuttle
// backend axis.
func (o Options) shuttleParams() shuttle.Params {
	if o.Shuttle != nil {
		return *o.Shuttle
	}
	return shuttle.Default()
}

// validateShuttle rejects configured transport costs that are unusable,
// even when no grid cell selects the shuttle backend — mirroring
// config.Params, which validates the shuttle block whenever present.
func (o Options) validateShuttle() error {
	if o.Shuttle != nil {
		return o.Shuttle.Validate()
	}
	return nil
}

// gridCell is one fully resolved configuration of the exploration grid.
type gridCell struct {
	chainLength int
	alpha       float64
	placerName  string
	backendName string
	device      *ti.Device
	lat         perf.Latencies
	placer      schedule.Placer
	backend     perf.TimingBackend
}

// grid resolves the full (ChainLength × Alpha × Placer × Backend) product
// up front, surfacing device, placer-name, and backend-name errors before
// any trial runs.
func (o Options) grid(spec circuit.Spec) ([]gridCell, error) {
	if err := o.validateShuttle(); err != nil {
		return nil, err
	}
	cells := make([]gridCell, 0, len(o.ChainLengths)*len(o.Alphas)*len(o.Placers)*len(o.Backends))
	for _, L := range o.ChainLengths {
		device, err := ti.DeviceFor(spec.Qubits, L, ti.Ring)
		if err != nil {
			return nil, err
		}
		for _, alpha := range o.Alphas {
			lat := o.Latencies
			lat.WeakPenalty = alpha
			for _, placerName := range o.Placers {
				placer, err := schedule.ByName(placerName, lat)
				if err != nil {
					return nil, err
				}
				for _, backendName := range o.Backends {
					backend, err := shuttle.ByName(backendName, o.shuttleParams())
					if err != nil {
						return nil, err
					}
					cells = append(cells, gridCell{
						chainLength: L,
						alpha:       alpha,
						placerName:  placerName,
						backendName: backendName,
						device:      device,
						lat:         lat,
						placer:      placer,
						backend:     backend,
					})
				}
			}
		}
	}
	return cells, nil
}

// planGroup is one latency-independent slice of the grid: a (chain length,
// placer, backend) triple spanning the whole α axis. Its cells share every
// stage up to Bind; only the α-dependent pricing differs per lane. The
// backend is part of the plan, not a lane: its Prepare hook annotates the
// binding at bind time, so bindings are backend-specific artifacts.
type planGroup struct {
	chainLength int
	placerName  string
	backendName string
	backend     perf.TimingBackend
	isWeak      bool             // backend is the weak-link model
	lats        []perf.Latencies // lane j prices Alphas[j]
	cellIdx     []int            // output index of lane j's grid cell

	// stages drives the batched path (placer implements
	// schedule.SweepPlacer). laneStages is the per-lane fallback for
	// placers that cannot synthesize a sweep in one pass.
	stages     *core.Stages
	laneStages []*core.Stages
}

// plans partitions the grid into plan groups in canonical order, preserving
// the (ChainLength, Alpha, Placer, Backend) output indexing of the
// per-cell path.
func (o Options) plans(spec circuit.Spec) ([]planGroup, error) {
	if err := o.validateShuttle(); err != nil {
		return nil, err
	}
	nA, nP, nB := len(o.Alphas), len(o.Placers), len(o.Backends)
	out := make([]planGroup, 0, len(o.ChainLengths)*nP*nB)
	for li, L := range o.ChainLengths {
		if _, err := ti.DeviceFor(spec.Qubits, L, ti.Ring); err != nil {
			return nil, err
		}
		for pi, placerName := range o.Placers {
			for bi, backendName := range o.Backends {
				backend, err := shuttle.ByName(backendName, o.shuttleParams())
				if err != nil {
					return nil, err
				}
				_, isWeak := backend.(perf.WeakLink)
				pg := planGroup{
					chainLength: L,
					placerName:  placerName,
					backendName: backendName,
					backend:     backend,
					isWeak:      isWeak,
					lats:        make([]perf.Latencies, nA),
					cellIdx:     make([]int, nA),
				}
				for ai, alpha := range o.Alphas {
					lat := o.Latencies
					lat.WeakPenalty = alpha
					pg.lats[ai] = lat
					pg.cellIdx[ai] = ((li*nA+ai)*nP+pi)*nB + bi
				}
				rep, err := schedule.ByName(placerName, pg.lats[0])
				if err != nil {
					return nil, err
				}
				if _, ok := rep.(schedule.SweepPlacer); ok {
					st, err := core.NewStages(core.Config{
						Spec:        spec,
						ChainLength: L,
						Latencies:   pg.lats[0],
						Placer:      rep,
						Runs:        o.Runs,
						Seed:        o.Seed,
						Pipeline:    o.Pipeline,
						Backend:     backend,
					})
					if err != nil {
						return nil, err
					}
					pg.stages = st
				} else {
					// A placer that cannot batch — annealed (the searched
					// layout depends on each lane's circuit) or one outside
					// the built-in suite: fall back to per-lane stages,
					// still under (plan, seed) job granularity.
					pg.laneStages = make([]*core.Stages, nA)
					for ai := range o.Alphas {
						placer, err := schedule.ByName(placerName, pg.lats[ai])
						if err != nil {
							return nil, err
						}
						st, err := core.NewStages(core.Config{
							Spec:        spec,
							ChainLength: L,
							Latencies:   pg.lats[ai],
							Placer:      placer,
							Runs:        o.Runs,
							Seed:        o.Seed,
							Pipeline:    o.Pipeline,
							Backend:     backend,
						})
						if err != nil {
							return nil, err
						}
						pg.laneStages[ai] = st
					}
				}
				out = append(out, pg)
			}
		}
	}
	return out, nil
}

// trialVal is one (plan, seed, α lane) outcome awaiting the ordered
// reduction.
type trialVal struct {
	par, log, weak float64
}

// Explore evaluates the full grid for the workload and returns every
// point, ordered by (ChainLength, Alpha, Placer). Evaluation is
// plan-grouped — see the package comment — and (plan, seed) jobs run
// across the worker pool when opt.Workers allows; the returned points are
// bit-identical at any worker count and to ExplorePerCell.
func Explore(spec circuit.Spec, opt Options) ([]Point, error) {
	return ExploreContext(context.Background(), spec, opt)
}

// ExploreContext is Explore with cancellation.
func ExploreContext(ctx context.Context, spec circuit.Spec, opt Options) ([]Point, error) {
	opt = opt.normalized()
	// With no pipeline, nothing retains a trial's circuits or evaluators
	// past its own pricing pass, so they are safe to recycle (see
	// Options.Pipeline).
	recycle := opt.Pipeline == nil
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	plans, err := opt.plans(spec)
	if err != nil {
		return nil, err
	}
	nA := len(opt.Alphas)
	vals := make([]trialVal, len(plans)*opt.Runs*nA)

	// Per-worker reusable estimators: the model is validated once up
	// front so pooled construction cannot fail later.
	if err := opt.Fidelity.Validate(); err != nil {
		return nil, err
	}
	var estPool sync.Pool
	getEstimator := func() (*fidelity.Estimator, error) {
		if e, _ := estPool.Get().(*fidelity.Estimator); e != nil {
			return e, nil
		}
		return fidelity.NewEstimator(opt.Fidelity)
	}

	err = pool.Run(ctx, opt.Workers, len(plans)*opt.Runs, func(idx int) error {
		pi, ri := idx/opt.Runs, idx%opt.Runs
		pg := &plans[pi]
		seed := stats.SplitSeed(opt.Seed, ri)
		est, err := getEstimator()
		if err != nil {
			return err
		}
		defer estPool.Put(est)
		out := vals[(pi*opt.Runs+ri)*nA : (pi*opt.Runs+ri+1)*nA]
		if pg.stages != nil {
			return exploreTrialBatched(pg, seed, est, recycle, out)
		}
		return exploreTrialPerLane(pg, seed, est, out)
	})
	if err != nil {
		return nil, err
	}

	// Ordered reduction: cells in canonical grid order, runs in seed
	// order — the exact accumulation sequence of the per-cell path.
	points := make([]Point, len(plans)*nA)
	n := float64(opt.Runs)
	for pi := range plans {
		pg := &plans[pi]
		for ai := 0; ai < nA; ai++ {
			var parSum, logSum, weakSum float64
			for ri := 0; ri < opt.Runs; ri++ {
				v := vals[(pi*opt.Runs+ri)*nA+ai]
				parSum += v.par
				logSum += v.log
				weakSum += v.weak
			}
			points[pg.cellIdx[ai]] = Point{
				ChainLength:    pg.chainLength,
				Alpha:          opt.Alphas[ai],
				Placer:         pg.placerName,
				Backend:        pg.backendName,
				ParallelMicros: parSum / n,
				LogFidelity:    logSum / n,
				WeakGates:      weakSum / n,
			}
		}
	}
	return points, nil
}

// exploreTrialBatched runs one (plan, seed) trial through the batched
// path: one coupled BindAll, then the α axis priced in runs of lanes that
// share a binding (latency-free placers alias one binding across all
// lanes; latency-steered placers get one per lane). With recycle set the
// trial's circuits and evaluators — which nothing retains, since the plan
// stages carry no pipeline — return to their scratch pools after pricing.
func exploreTrialBatched(pg *planGroup, seed int64, est *fidelity.Estimator, recycle bool, out []trialVal) error {
	bs, err := pg.stages.BindAll(seed, pg.lats)
	if err != nil {
		return err
	}
	nA := len(pg.lats)
	var times []float64 // shuttle-path makespan scratch
	for a0 := 0; a0 < nA; {
		a1 := a0 + 1
		for a1 < nA && bs[a1] == bs[a0] {
			a1++
		}
		var ests []fidelity.Estimate
		if pg.isWeak {
			ests, err = est.EstimateAll(bs[a0], pg.lats[a0:a1])
			if err != nil {
				return err
			}
		} else {
			// Alternate backends own the makespan: price the lane run
			// through the backend's batched kernel, then feed the windows
			// into the latency-independent fidelity terms.
			rs, err := pg.stages.TimeAll(bs[a0], pg.lats[a0:a1])
			if err != nil {
				return err
			}
			if cap(times) < len(rs) {
				times = make([]float64, len(rs))
			}
			times = times[:len(rs)]
			for k, r := range rs {
				times[k] = r.ParallelMicros
			}
			ests, err = est.EstimateTimes(bs[a0], times)
			if err != nil {
				return err
			}
		}
		weak := float64(bs[a0].WeakGates())
		for ai := a0; ai < a1; ai++ {
			e := ests[ai-a0]
			out[ai] = trialVal{par: e.MakespanMicros, log: e.LogTotal, weak: weak}
		}
		if recycle {
			// Distinct bindings own distinct evaluators and circuits
			// (aliased lanes were folded into one run above).
			ev := bs[a0].Evaluator()
			circuit.Recycle(ev.Circuit())
			perf.RecycleEvaluator(ev)
		}
		a0 = a1
	}
	return nil
}

// exploreTrialPerLane is the fallback for non-batchable placers: each α
// lane binds and prices independently, exactly as the per-cell path does.
func exploreTrialPerLane(pg *planGroup, seed int64, est *fidelity.Estimator, out []trialVal) error {
	for ai, lat := range pg.lats {
		b, err := pg.laneStages[ai].Bind(seed)
		if err != nil {
			return err
		}
		var e fidelity.Estimate
		if pg.isWeak {
			e, err = est.EstimateOne(b, lat)
		} else {
			var res perf.Result
			res, err = pg.laneStages[ai].Time(b, lat)
			if err == nil {
				e, err = est.EstimateTime(b, res.ParallelMicros)
			}
		}
		if err != nil {
			return err
		}
		out[ai] = trialVal{par: e.MakespanMicros, log: e.LogTotal, weak: float64(b.WeakGates())}
	}
	return nil
}

// ExplorePerCell evaluates the grid cell by cell — the pre-plan-grouping
// reference path, kept as the bit-exactness oracle for the batched
// explorer and as the pinned legacy benchmark target
// (BenchmarkLegacyDesignSpaceExploration). Cells run across the worker
// pool; each derives its own trial seeds, so the returned points are
// identical at any worker count — and, field for field, to ExploreContext.
func ExplorePerCell(ctx context.Context, spec circuit.Spec, opt Options) ([]Point, error) {
	opt = opt.normalized()
	if opt.Pipeline == nil {
		opt.Pipeline = core.NewPipeline()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cells, err := opt.grid(spec)
	if err != nil {
		return nil, err
	}
	points := make([]Point, len(cells))
	err = pool.Run(ctx, opt.Workers, len(cells), func(i int) error {
		p, err := explorePoint(spec, opt, cells[i])
		if err != nil {
			return err
		}
		points[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// explorePoint averages one grid cell over opt.Runs randomized trials,
// running each trial through the stage pipeline: trial seeds are shared
// across cells, so the latency-independent artifacts (layout, synthesized
// circuit, gate-class binding) are computed once per (device, placer, seed)
// and only the timing-dependent pricing — makespan and the dephasing term —
// re-runs per α.
func explorePoint(spec circuit.Spec, opt Options, cell gridCell) (Point, error) {
	st, err := core.NewStages(core.Config{
		Spec:        spec,
		ChainLength: cell.chainLength,
		Latencies:   cell.lat,
		Placer:      cell.placer,
		Runs:        opt.Runs,
		Seed:        opt.Seed,
		Pipeline:    opt.Pipeline,
		Backend:     cell.backend,
	})
	if err != nil {
		return Point{}, err
	}
	_, isWeak := cell.backend.(perf.WeakLink)
	var parSum, logSum, weakSum float64
	for i := 0; i < opt.Runs; i++ {
		b, err := st.Bind(stats.SplitSeed(opt.Seed, i))
		if err != nil {
			return Point{}, err
		}
		var est fidelity.Estimate
		if isWeak {
			est, err = opt.Fidelity.EstimateBinding(b, cell.lat)
		} else {
			var res perf.Result
			res, err = st.Time(b, cell.lat)
			if err == nil {
				est, err = opt.Fidelity.EstimateBindingMakespan(b, res.ParallelMicros)
			}
		}
		if err != nil {
			return Point{}, err
		}
		parSum += est.MakespanMicros
		logSum += est.LogTotal
		weakSum += float64(b.WeakGates())
	}
	n := float64(opt.Runs)
	return Point{
		ChainLength:    cell.chainLength,
		Alpha:          cell.alpha,
		Placer:         cell.placerName,
		Backend:        cell.backendName,
		ParallelMicros: parSum / n,
		LogFidelity:    logSum / n,
		WeakGates:      weakSum / n,
	}, nil
}

// Pareto filters points to the non-dominated frontier, sorted by parallel
// time ascending. Input order is not modified; points tied on both axes
// sort by their input position, so the frontier is deterministic for any
// fixed input order.
func Pareto(points []Point) []Point {
	var frontier []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.Dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, p)
		}
	}
	sort.SliceStable(frontier, func(i, j int) bool {
		if frontier[i].ParallelMicros != frontier[j].ParallelMicros {
			return frontier[i].ParallelMicros < frontier[j].ParallelMicros
		}
		return frontier[i].LogFidelity > frontier[j].LogFidelity
	})
	return frontier
}

// String renders the point compactly for reports.
func (p Point) String() string {
	return fmt.Sprintf("L=%d α=%.1f %s: %.2f ms, ln(fid) %.1f",
		p.ChainLength, p.Alpha, p.Placer, p.ParallelMicros/1000, p.LogFidelity)
}
