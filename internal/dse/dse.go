// Package dse automates VelociTI's design-space exploration (the paper's
// Case Study 2 workflow, §VI-B): it evaluates a workload across a grid of
// machine configurations — chain length, weak-link penalty, and scheduling
// policy — and reports the Pareto frontier over the two axes a TI architect
// trades: execution time (parallel model) and estimated success
// probability (fidelity extension).
//
// The paper performs these sweeps by hand across figures; Explore runs the
// grid and Pareto filters it, so "which configurations are worth building"
// becomes one call.
package dse

import (
	"fmt"
	"sort"

	"velociti/internal/circuit"
	"velociti/internal/fidelity"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/schedule"
	"velociti/internal/stats"
	"velociti/internal/ti"
)

// Point is one evaluated configuration.
type Point struct {
	// Knobs.
	ChainLength int     `json:"chain_length"`
	Alpha       float64 `json:"alpha"`
	Placer      string  `json:"placer"`
	// Outcomes (means over the configured runs).
	ParallelMicros float64 `json:"parallel_us"`
	LogFidelity    float64 `json:"log_fidelity"`
	WeakGates      float64 `json:"weak_gates"`
}

// Dominates reports whether p is at least as good as q on both axes and
// strictly better on one (lower time, higher log-fidelity).
func (p Point) Dominates(q Point) bool {
	if p.ParallelMicros > q.ParallelMicros || p.LogFidelity < q.LogFidelity {
		return false
	}
	return p.ParallelMicros < q.ParallelMicros || p.LogFidelity > q.LogFidelity
}

// Options configures the exploration grid.
type Options struct {
	// ChainLengths to sweep; nil selects the paper's 8/16/24/32.
	ChainLengths []int
	// Alphas to sweep; nil selects {2.0, 1.5, 1.0}.
	Alphas []float64
	// Placers to sweep by name; nil selects {"random", "load-balanced"}.
	Placers []string
	// Runs per configuration; zero selects 10 (exploration favours grid
	// breadth over per-point precision).
	Runs int
	// Seed is the master seed.
	Seed int64
	// Fidelity is the error model; zero value selects the defaults.
	Fidelity fidelity.Model
	// Latencies is the base timing model (α is overridden per point).
	Latencies perf.Latencies
}

func (o Options) normalized() Options {
	if len(o.ChainLengths) == 0 {
		o.ChainLengths = []int{8, 16, 24, 32}
	}
	if len(o.Alphas) == 0 {
		o.Alphas = []float64{2.0, 1.5, 1.0}
	}
	if len(o.Placers) == 0 {
		o.Placers = []string{"random", "load-balanced"}
	}
	if o.Runs <= 0 {
		o.Runs = 10
	}
	if o.Fidelity == (fidelity.Model{}) {
		o.Fidelity = fidelity.Default()
	}
	if o.Latencies == (perf.Latencies{}) {
		o.Latencies = perf.DefaultLatencies()
	}
	return o
}

// Explore evaluates the full grid for the workload and returns every
// point, ordered by (ChainLength, Alpha, Placer).
func Explore(spec circuit.Spec, opt Options) ([]Point, error) {
	opt = opt.normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var points []Point
	for _, L := range opt.ChainLengths {
		device, err := ti.DeviceFor(spec.Qubits, L, ti.Ring)
		if err != nil {
			return nil, err
		}
		for _, alpha := range opt.Alphas {
			lat := opt.Latencies
			lat.WeakPenalty = alpha
			for _, placerName := range opt.Placers {
				placer, err := schedule.ByName(placerName, lat)
				if err != nil {
					return nil, err
				}
				var parSum, logSum, weakSum float64
				for i := 0; i < opt.Runs; i++ {
					r := stats.NewRand(stats.SplitSeed(opt.Seed, i))
					layout, err := placement.Random{}.Place(device, spec.Qubits, r)
					if err != nil {
						return nil, err
					}
					c, err := placer.Place(spec, layout, r)
					if err != nil {
						return nil, err
					}
					est, err := opt.Fidelity.Estimate(c, layout, lat)
					if err != nil {
						return nil, err
					}
					parSum += est.MakespanMicros
					logSum += est.LogTotal
					weakSum += float64(perf.WeakGates(c, layout))
				}
				n := float64(opt.Runs)
				points = append(points, Point{
					ChainLength:    L,
					Alpha:          alpha,
					Placer:         placerName,
					ParallelMicros: parSum / n,
					LogFidelity:    logSum / n,
					WeakGates:      weakSum / n,
				})
			}
		}
	}
	return points, nil
}

// Pareto filters points to the non-dominated frontier, sorted by parallel
// time ascending. Input order is not modified.
func Pareto(points []Point) []Point {
	var frontier []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.Dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, p)
		}
	}
	sort.Slice(frontier, func(i, j int) bool {
		if frontier[i].ParallelMicros != frontier[j].ParallelMicros {
			return frontier[i].ParallelMicros < frontier[j].ParallelMicros
		}
		return frontier[i].LogFidelity > frontier[j].LogFidelity
	})
	return frontier
}

// String renders the point compactly for reports.
func (p Point) String() string {
	return fmt.Sprintf("L=%d α=%.1f %s: %.2f ms, ln(fid) %.1f",
		p.ChainLength, p.Alpha, p.Placer, p.ParallelMicros/1000, p.LogFidelity)
}
