// Package dse automates VelociTI's design-space exploration (the paper's
// Case Study 2 workflow, §VI-B): it evaluates a workload across a grid of
// machine configurations — chain length, weak-link penalty, and scheduling
// policy — and reports the Pareto frontier over the two axes a TI architect
// trades: execution time (parallel model) and estimated success
// probability (fidelity extension).
//
// The paper performs these sweeps by hand across figures; Explore runs the
// grid and Pareto filters it, so "which configurations are worth building"
// becomes one call.
package dse

import (
	"context"
	"fmt"
	"sort"

	"velociti/internal/circuit"
	"velociti/internal/core"
	"velociti/internal/fidelity"
	"velociti/internal/perf"
	"velociti/internal/pool"
	"velociti/internal/schedule"
	"velociti/internal/stats"
	"velociti/internal/ti"
)

// Point is one evaluated configuration.
type Point struct {
	// Knobs.
	ChainLength int     `json:"chain_length"`
	Alpha       float64 `json:"alpha"`
	Placer      string  `json:"placer"`
	// Outcomes (means over the configured runs).
	ParallelMicros float64 `json:"parallel_us"`
	LogFidelity    float64 `json:"log_fidelity"`
	WeakGates      float64 `json:"weak_gates"`
}

// Dominates reports whether p is at least as good as q on both axes and
// strictly better on one (lower time, higher log-fidelity).
func (p Point) Dominates(q Point) bool {
	if p.ParallelMicros > q.ParallelMicros || p.LogFidelity < q.LogFidelity {
		return false
	}
	return p.ParallelMicros < q.ParallelMicros || p.LogFidelity > q.LogFidelity
}

// Options configures the exploration grid.
type Options struct {
	// ChainLengths to sweep; nil selects the paper's 8/16/24/32.
	ChainLengths []int
	// Alphas to sweep; nil selects {2.0, 1.5, 1.0}.
	Alphas []float64
	// Placers to sweep by name; nil selects {"random", "load-balanced"}.
	Placers []string
	// Runs per configuration; zero selects 10 (exploration favours grid
	// breadth over per-point precision).
	Runs int
	// Seed is the master seed.
	Seed int64
	// Fidelity is the error model; zero value selects the defaults.
	Fidelity fidelity.Model
	// Latencies is the base timing model (α is overridden per point).
	Latencies perf.Latencies
	// Workers bounds how many grid points are evaluated concurrently
	// (further capped at GOMAXPROCS by the shared pool runner). Zero or
	// one evaluates the grid serially. Every point derives its trial
	// seeds independently, so results are bit-identical at any worker
	// count.
	Workers int
	// Pipeline is the shared stage-artifact store. Every grid point runs
	// through it, so cells that differ only in α share placement,
	// synthesis, and gate-class binding and re-price just the timing
	// model. Nil creates a fresh pipeline per Explore call; caching never
	// changes results.
	Pipeline *core.Pipeline
}

func (o Options) normalized() Options {
	if len(o.ChainLengths) == 0 {
		o.ChainLengths = []int{8, 16, 24, 32}
	}
	if len(o.Alphas) == 0 {
		o.Alphas = []float64{2.0, 1.5, 1.0}
	}
	if len(o.Placers) == 0 {
		o.Placers = []string{"random", "load-balanced"}
	}
	if o.Runs <= 0 {
		o.Runs = 10
	}
	if o.Fidelity == (fidelity.Model{}) {
		o.Fidelity = fidelity.Default()
	}
	if o.Latencies == (perf.Latencies{}) {
		o.Latencies = perf.DefaultLatencies()
	}
	return o
}

// gridCell is one fully resolved configuration of the exploration grid.
type gridCell struct {
	chainLength int
	alpha       float64
	placerName  string
	device      *ti.Device
	lat         perf.Latencies
	placer      schedule.Placer
}

// grid resolves the full (ChainLength × Alpha × Placer) product up front,
// surfacing device and placer-name errors before any trial runs.
func (o Options) grid(spec circuit.Spec) ([]gridCell, error) {
	cells := make([]gridCell, 0, len(o.ChainLengths)*len(o.Alphas)*len(o.Placers))
	for _, L := range o.ChainLengths {
		device, err := ti.DeviceFor(spec.Qubits, L, ti.Ring)
		if err != nil {
			return nil, err
		}
		for _, alpha := range o.Alphas {
			lat := o.Latencies
			lat.WeakPenalty = alpha
			for _, placerName := range o.Placers {
				placer, err := schedule.ByName(placerName, lat)
				if err != nil {
					return nil, err
				}
				cells = append(cells, gridCell{
					chainLength: L,
					alpha:       alpha,
					placerName:  placerName,
					device:      device,
					lat:         lat,
					placer:      placer,
				})
			}
		}
	}
	return cells, nil
}

// Explore evaluates the full grid for the workload and returns every
// point, ordered by (ChainLength, Alpha, Placer). Grid points run across
// the worker pool when opt.Workers allows; each point derives its own
// trial seeds, so the returned points are identical at any worker count.
func Explore(spec circuit.Spec, opt Options) ([]Point, error) {
	return ExploreContext(context.Background(), spec, opt)
}

// ExploreContext is Explore with cancellation.
func ExploreContext(ctx context.Context, spec circuit.Spec, opt Options) ([]Point, error) {
	opt = opt.normalized()
	if opt.Pipeline == nil {
		opt.Pipeline = core.NewPipeline()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cells, err := opt.grid(spec)
	if err != nil {
		return nil, err
	}
	points := make([]Point, len(cells))
	err = pool.Run(ctx, opt.Workers, len(cells), func(i int) error {
		p, err := explorePoint(spec, opt, cells[i])
		if err != nil {
			return err
		}
		points[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// explorePoint averages one grid cell over opt.Runs randomized trials,
// running each trial through the stage pipeline: trial seeds are shared
// across cells, so the latency-independent artifacts (layout, synthesized
// circuit, gate-class binding) are computed once per (device, placer, seed)
// and only the timing-dependent pricing — makespan and the dephasing term —
// re-runs per α.
func explorePoint(spec circuit.Spec, opt Options, cell gridCell) (Point, error) {
	st, err := core.NewStages(core.Config{
		Spec:        spec,
		ChainLength: cell.chainLength,
		Latencies:   cell.lat,
		Placer:      cell.placer,
		Runs:        opt.Runs,
		Seed:        opt.Seed,
		Pipeline:    opt.Pipeline,
	})
	if err != nil {
		return Point{}, err
	}
	var parSum, logSum, weakSum float64
	for i := 0; i < opt.Runs; i++ {
		b, err := st.Bind(stats.SplitSeed(opt.Seed, i))
		if err != nil {
			return Point{}, err
		}
		est, err := opt.Fidelity.EstimateBinding(b, cell.lat)
		if err != nil {
			return Point{}, err
		}
		parSum += est.MakespanMicros
		logSum += est.LogTotal
		weakSum += float64(b.WeakGates())
	}
	n := float64(opt.Runs)
	return Point{
		ChainLength:    cell.chainLength,
		Alpha:          cell.alpha,
		Placer:         cell.placerName,
		ParallelMicros: parSum / n,
		LogFidelity:    logSum / n,
		WeakGates:      weakSum / n,
	}, nil
}

// Pareto filters points to the non-dominated frontier, sorted by parallel
// time ascending. Input order is not modified.
func Pareto(points []Point) []Point {
	var frontier []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.Dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, p)
		}
	}
	sort.Slice(frontier, func(i, j int) bool {
		if frontier[i].ParallelMicros != frontier[j].ParallelMicros {
			return frontier[i].ParallelMicros < frontier[j].ParallelMicros
		}
		return frontier[i].LogFidelity > frontier[j].LogFidelity
	})
	return frontier
}

// String renders the point compactly for reports.
func (p Point) String() string {
	return fmt.Sprintf("L=%d α=%.1f %s: %.2f ms, ln(fid) %.1f",
		p.ChainLength, p.Alpha, p.Placer, p.ParallelMicros/1000, p.LogFidelity)
}
