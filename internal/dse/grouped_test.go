package dse

import (
	"context"
	"testing"
)

// TestExploreMatchesPerCell is the tentpole's bit-exactness property test:
// the plan-grouped explorer returns the same []Point, field for field, as
// the per-cell reference path — across worker counts and grid shapes,
// including every built-in placer. No tolerance: Point is comparable and
// compared with ==.
func TestExploreMatchesPerCell(t *testing.T) {
	grids := []struct {
		name string
		opt  Options
	}{
		{
			name: "default-placers",
			opt: Options{
				ChainLengths: []int{8, 16},
				Alphas:       []float64{2.0, 1.5, 1.0},
				Placers:      []string{"random", "load-balanced"},
				Runs:         4,
				Seed:         29,
			},
		},
		{
			name: "all-placers-narrow",
			opt: Options{
				ChainLengths: []int{16},
				Alphas:       []float64{3.0, 1.0},
				Placers: []string{
					"random", "weak-avoiding", "edge-constrained", "load-balanced",
				},
				Runs: 3,
				Seed: 101,
			},
		},
		{
			name: "two-backends",
			opt: Options{
				ChainLengths: []int{8, 16},
				Alphas:       []float64{2.0, 1.0},
				Placers:      []string{"random", "load-balanced"},
				Backends:     []string{"weaklink", "shuttle"},
				Runs:         3,
				Seed:         41,
			},
		},
	}
	sp := spec()
	for _, g := range grids {
		want, err := ExplorePerCell(context.Background(), sp, g.opt)
		if err != nil {
			t.Fatalf("%s: per-cell: %v", g.name, err)
		}
		for _, workers := range []int{1, 4, 8} {
			opt := g.opt
			opt.Workers = workers
			got, err := Explore(sp, opt)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", g.name, workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d points, want %d", g.name, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d point %d:\n grouped  %+v\n per-cell %+v",
						g.name, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestExplorePerCellDeterministicAcrossWorkers pins the oracle itself: the
// per-cell path is worker-count independent too.
func TestExplorePerCellDeterministicAcrossWorkers(t *testing.T) {
	opt := Options{
		ChainLengths: []int{8},
		Alphas:       []float64{2.0, 1.0},
		Placers:      []string{"random", "load-balanced"},
		Runs:         3,
		Seed:         5,
	}
	base, err := ExplorePerCell(context.Background(), spec(), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 8
	again, err := ExplorePerCell(context.Background(), spec(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i] != again[i] {
			t.Fatalf("point %d differs across worker counts", i)
		}
	}
}

// TestExploreBackendAxis: a two-backend grid tags every point with its
// backend, interleaves the axis innermost (so single-backend grids keep
// the historical point order), and actually prices the two models
// differently when transport is not free.
func TestExploreBackendAxis(t *testing.T) {
	opt := Options{
		ChainLengths: []int{8},
		Alphas:       []float64{2.0},
		Placers:      []string{"random"},
		Backends:     []string{"weaklink", "shuttle"},
		Runs:         4,
		Seed:         11,
	}
	pts := explore(t, opt)
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if pts[0].Backend != "weaklink" || pts[1].Backend != "shuttle" {
		t.Fatalf("backend order: %q, %q", pts[0].Backend, pts[1].Backend)
	}
	if pts[0].ParallelMicros == pts[1].ParallelMicros {
		t.Fatalf("weak-link and shuttle priced identically: %v", pts[0].ParallelMicros)
	}
	// The backend changes timing only — placement and weak-gate counts are
	// shared per trial seed.
	if pts[0].WeakGates != pts[1].WeakGates {
		t.Fatalf("weak gates differ across backends: %v vs %v", pts[0].WeakGates, pts[1].WeakGates)
	}
}

// TestParetoTieOrderIsDeterministic pins the frontier's tie-breaking: points
// tied on both axes keep their input order (stable sort), and ties on
// parallel time alone order by descending log-fidelity.
func TestParetoTieOrderIsDeterministic(t *testing.T) {
	// Four mutually non-dominating points: two exact ties on both axes
	// (distinguished by ChainLength) plus a faster/less-faithful pair.
	pts := []Point{
		{ChainLength: 8, Alpha: 2.0, Placer: "a", ParallelMicros: 100, LogFidelity: -1},
		{ChainLength: 16, Alpha: 2.0, Placer: "b", ParallelMicros: 100, LogFidelity: -1},
		{ChainLength: 24, Alpha: 1.0, Placer: "c", ParallelMicros: 50, LogFidelity: -2},
		{ChainLength: 32, Alpha: 1.0, Placer: "d", ParallelMicros: 50, LogFidelity: -2},
	}
	front := Pareto(pts)
	if len(front) != 4 {
		t.Fatalf("frontier size = %d, want 4 (ties do not dominate)", len(front))
	}
	wantChains := []int{24, 32, 8, 16}
	for i, w := range wantChains {
		if front[i].ChainLength != w {
			t.Fatalf("frontier[%d].ChainLength = %d, want %d (order %v)",
				i, front[i].ChainLength, w, front)
		}
	}
	// Same input, permuted tied pairs: the frontier must follow the new
	// input order — stable, not value-dependent beyond the two axes.
	perm := []Point{pts[1], pts[0], pts[3], pts[2]}
	front = Pareto(perm)
	wantChains = []int{32, 24, 16, 8}
	for i, w := range wantChains {
		if front[i].ChainLength != w {
			t.Fatalf("permuted frontier[%d].ChainLength = %d, want %d", i, front[i].ChainLength, w)
		}
	}
	// Distinct times tied on fidelity: ascending time still governs.
	mixed := []Point{
		{ParallelMicros: 70, LogFidelity: -3},
		{ParallelMicros: 60, LogFidelity: -3},
	}
	front = Pareto(mixed)
	if len(front) != 1 || front[0].ParallelMicros != 60 {
		t.Fatalf("dominance on time tie-broken wrong: %v", front)
	}
}
