package pool

import (
	"context"
	"errors"
	"testing"
)

// The process-wide counters are monotonic totals, so tests assert deltas.
func TestStatsCounters(t *testing.T) {
	before := Stats()
	err := Run(context.Background(), 4, 10, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	errs := RunAll(context.Background(), 2, 3, func(i int) error {
		if i == 1 {
			panic("boom")
		}
		return nil
	})
	var pe *PanicError
	if errs == nil || !errors.As(errs[1], &pe) {
		t.Fatalf("errs = %v, want PanicError at index 1", errs)
	}
	after := Stats()
	if got := after.Batches - before.Batches; got != 2 {
		t.Errorf("batches delta = %d, want 2", got)
	}
	if got := after.Jobs - before.Jobs; got != 13 {
		t.Errorf("jobs delta = %d, want 13", got)
	}
	if got := after.Panics - before.Panics; got != 1 {
		t.Errorf("panics delta = %d, want 1", got)
	}
}
