package pool

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 100
		counts := make([]int32, n)
		err := Run(context.Background(), workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	fail := map[int]bool{7: true, 23: true, 61: true}
	for _, workers := range []int{1, 4, 8} {
		err := Run(context.Background(), workers, 100, func(i int) error {
			if fail[i] {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 7 failed" {
			t.Fatalf("workers=%d: err = %v, want job 7's", workers, err)
		}
	}
}

func TestRunStopsDispatchingAfterError(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	err := Run(context.Background(), 2, 10_000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got >= 10_000 {
		t.Fatalf("all %d jobs ran despite early failure", got)
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := Run(ctx, 4, 100_000, func(i int) error {
		if ran.Add(1) == 50 {
			cancel()
		}
		time.Sleep(10 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 100_000 {
		t.Fatalf("cancellation did not stop dispatch (ran %d)", got)
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := Run(ctx, 1, 10, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("ran %d jobs under a dead context", ran.Load())
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	err := Run(context.Background(), workers, 200, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(50 * time.Microsecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	limit := int64(workers)
	if p := int64(runtime.GOMAXPROCS(0)); p < limit {
		limit = p
	}
	if peak.Load() > limit {
		t.Fatalf("peak concurrency %d exceeds limit %d", peak.Load(), limit)
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(context.Background(), 8, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersKnob(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-2); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-2) = %d, want GOMAXPROCS", got)
	}
}

func TestRunRecoversPanicsInline(t *testing.T) {
	// workers=1 exercises the inline path: a panic must come back as a
	// *PanicError, not crash the caller.
	err := Run(context.Background(), 1, 5, func(i int) error {
		if i == 3 {
			panic("kaboom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 3 || pe.Value != "kaboom" {
		t.Fatalf("PanicError = index %d value %v", pe.Index, pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "pool_test") {
		t.Fatalf("stack should point at the panic site:\n%s", pe.Stack)
	}
	if !strings.Contains(pe.Error(), "job 3 panicked") {
		t.Fatalf("message = %q", pe.Error())
	}
}

func TestRunRecoversPanicsConcurrently(t *testing.T) {
	// A panicking job in a worker goroutine surfaces as the lowest-indexed
	// error while every other job's result lands untouched.
	for _, workers := range []int{2, 4, 8} {
		n := 64
		results := make([]int, n)
		err := Run(context.Background(), workers, n, func(i int) error {
			if i == 10 {
				panic(fmt.Sprintf("job %d exploded", i))
			}
			results[i] = i * i
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 10 {
			t.Fatalf("workers=%d: panic index = %d", workers, pe.Index)
		}
		for i, r := range results {
			if r != 0 && r != i*i {
				t.Fatalf("workers=%d: job %d result corrupted: %d", workers, i, r)
			}
		}
	}
}

func TestRunPanicLowestIndexWinsOverError(t *testing.T) {
	// Panics participate in the lowest-index-error rule like any error.
	err := Run(context.Background(), 1, 10, func(i int) error {
		switch i {
		case 2:
			return errors.New("plain failure")
		case 5:
			panic("later panic")
		}
		return nil
	})
	if err == nil || err.Error() != "plain failure" {
		t.Fatalf("err = %v, want the index-2 plain error", err)
	}
}

func TestRunAllCollectsPerIndexErrors(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n := 20
		results := make([]int, n)
		errs := RunAll(context.Background(), workers, n, func(i int) error {
			switch i {
			case 4:
				return fmt.Errorf("job %d failed", i)
			case 11:
				panic("job 11 blew up")
			}
			results[i] = 1
			return nil
		})
		if errs == nil {
			t.Fatalf("workers=%d: want non-nil error slice", workers)
		}
		if len(errs) != n {
			t.Fatalf("workers=%d: len(errs) = %d", workers, len(errs))
		}
		for i := 0; i < n; i++ {
			switch i {
			case 4:
				if errs[i] == nil || errs[i].Error() != "job 4 failed" {
					t.Fatalf("workers=%d: errs[4] = %v", workers, errs[4])
				}
			case 11:
				var pe *PanicError
				if !errors.As(errs[i], &pe) || pe.Index != 11 {
					t.Fatalf("workers=%d: errs[11] = %v", workers, errs[11])
				}
			default:
				if errs[i] != nil {
					t.Fatalf("workers=%d: errs[%d] = %v", workers, i, errs[i])
				}
				if results[i] != 1 {
					t.Fatalf("workers=%d: job %d skipped", workers, i)
				}
			}
		}
	}
}

func TestRunAllNilOnSuccess(t *testing.T) {
	for _, workers := range []int{1, 4} {
		if errs := RunAll(context.Background(), workers, 50, func(int) error { return nil }); errs != nil {
			t.Fatalf("workers=%d: errs = %v, want nil", workers, errs)
		}
	}
	if errs := RunAll(context.Background(), 4, 0, func(int) error { return errors.New("never") }); errs != nil {
		t.Fatalf("zero jobs: errs = %v", errs)
	}
}

func TestRunAllDeterministicAcrossWorkerCounts(t *testing.T) {
	// errs[i] must depend only on fn(i), never on scheduling.
	shape := func(workers int) []string {
		errs := RunAll(context.Background(), workers, 40, func(i int) error {
			if i%7 == 3 {
				return fmt.Errorf("mod7 %d", i)
			}
			if i == 25 {
				panic("deterministic panic")
			}
			return nil
		})
		out := make([]string, len(errs))
		for i, e := range errs {
			if e == nil {
				continue
			}
			var pe *PanicError
			if errors.As(e, &pe) {
				out[i] = fmt.Sprintf("panic@%d:%v", pe.Index, pe.Value)
			} else {
				out[i] = e.Error()
			}
		}
		return out
	}
	want := shape(1)
	for _, workers := range []int{2, 4, 8} {
		got := shape(workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: error shape diverged:\n%v\nvs\n%v", workers, got, want)
		}
	}
}

func TestRunAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	errs := RunAll(ctx, 1, 5, func(int) error { return nil })
	if errs == nil {
		t.Fatalf("cancelled context should mark jobs")
	}
	for i, e := range errs {
		if !errors.Is(e, context.Canceled) {
			t.Fatalf("errs[%d] = %v", i, e)
		}
	}
}
