package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 100
		counts := make([]int32, n)
		err := Run(context.Background(), workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	fail := map[int]bool{7: true, 23: true, 61: true}
	for _, workers := range []int{1, 4, 8} {
		err := Run(context.Background(), workers, 100, func(i int) error {
			if fail[i] {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 7 failed" {
			t.Fatalf("workers=%d: err = %v, want job 7's", workers, err)
		}
	}
}

func TestRunStopsDispatchingAfterError(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	err := Run(context.Background(), 2, 10_000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got >= 10_000 {
		t.Fatalf("all %d jobs ran despite early failure", got)
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := Run(ctx, 4, 100_000, func(i int) error {
		if ran.Add(1) == 50 {
			cancel()
		}
		time.Sleep(10 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 100_000 {
		t.Fatalf("cancellation did not stop dispatch (ran %d)", got)
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := Run(ctx, 1, 10, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("ran %d jobs under a dead context", ran.Load())
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	err := Run(context.Background(), workers, 200, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(50 * time.Microsecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	limit := int64(workers)
	if p := int64(runtime.GOMAXPROCS(0)); p < limit {
		limit = p
	}
	if peak.Load() > limit {
		t.Fatalf("peak concurrency %d exceeds limit %d", peak.Load(), limit)
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(context.Background(), 8, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersKnob(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-2); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-2) = %d, want GOMAXPROCS", got)
	}
}
