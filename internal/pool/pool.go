// Package pool provides the bounded worker-pool runner shared by
// VelociTI's trial loop (internal/core), experiment drivers
// (internal/expt), and design-space explorer (internal/dse).
//
// All three layers have the same shape: n independent, CPU-bound jobs
// whose results land in index-addressed slots. Run executes them across a
// bounded set of goroutines while keeping outputs deterministic — callers
// derive any randomness from the job index (stats.SplitSeed), so results
// are bit-identical at every worker count, a property the test suites pin.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Run executes fn(i) for every i in [0, n), using at most workers
// concurrent goroutines. workers is additionally bounded by n and by
// GOMAXPROCS (the jobs are CPU-bound; more goroutines only add scheduling
// noise); workers <= 1 runs everything inline on the calling goroutine.
//
// fn must write its result into an index-addressed slot rather than shared
// state; distinct indices never race. When any fn returns an error, the
// lowest-indexed error among all executed jobs is returned — the same
// error the serial order would surface — and remaining jobs may be
// skipped. When ctx is cancelled, Run stops dispatching and returns
// ctx.Err() (unless a job error with a lower index was already recorded).
func Run(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		failed  atomic.Bool
		mu      sync.Mutex
		firstI  = n
		firstEr error
		wg      sync.WaitGroup
	)
	record := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if i < firstI {
			firstI, firstEr = i, err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	return ctx.Err()
}

// Workers resolves a worker-count knob: values above zero are returned
// as-is, anything else selects GOMAXPROCS. It is the conventional
// interpretation of a -workers=0 / "auto" flag.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
