// Package pool provides the bounded worker-pool runner shared by
// VelociTI's trial loop (internal/core), experiment drivers
// (internal/expt), and design-space explorer (internal/dse).
//
// All three layers have the same shape: n independent, CPU-bound jobs
// whose results land in index-addressed slots. Run executes them across a
// bounded set of goroutines while keeping outputs deterministic — callers
// derive any randomness from the job index (stats.SplitSeed), so results
// are bit-identical at every worker count, a property the test suites pin.
//
// Jobs are panic-isolated: a panic inside fn is recovered and converted
// into a *PanicError carrying the offending index, the panic value, and
// the goroutine stack, so one crashing job cannot take down the process
// or silently strand sibling workers. Run keeps its lowest-index-error
// semantics for such errors; RunAll collects one error per job so callers
// can degrade gracefully on partial failure.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Package-level counters behind Stats. They are monotonic process-wide
// totals (the pool is a function API — there is no per-pool object to hang
// them on) and exist for observability surfaces like velociti-serve's
// /metrics endpoint; they never influence scheduling or results.
var (
	batchCount atomic.Uint64
	jobCount   atomic.Uint64
	panicCount atomic.Uint64
)

// Counters is a point-in-time snapshot of the pool's process-wide
// totals.
type Counters struct {
	// Batches counts Run/RunAll invocations that had work to do.
	Batches uint64 `json:"batches"`
	// Jobs counts individual job executions across all batches.
	Jobs uint64 `json:"jobs"`
	// Panics counts jobs whose panic was recovered into a *PanicError.
	Panics uint64 `json:"panics"`
}

// Stats snapshots the counters.
func Stats() Counters {
	return Counters{
		Batches: batchCount.Load(),
		Jobs:    jobCount.Load(),
		Panics:  panicCount.Load(),
	}
}

// PanicError is the error produced when a job passed to Run or RunAll
// panics. It records which job crashed, the recovered value, and the stack
// captured at the panic site, so the report points at the bug rather than
// at the pool machinery.
type PanicError struct {
	Index int    // job index whose fn panicked
	Value any    // the value passed to panic()
	Stack []byte // debug.Stack() captured inside the recovering goroutine
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: job %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// safeCall runs fn(i), converting a panic into a *PanicError. The recover
// happens here — inside the same goroutine frame as the panic — so the
// captured stack includes the panic site.
func safeCall(fn func(i int) error, i int) (err error) {
	jobCount.Add(1)
	defer func() {
		if v := recover(); v != nil {
			panicCount.Add(1)
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// Run executes fn(i) for every i in [0, n), using at most workers
// concurrent goroutines. workers is additionally bounded by n and by
// GOMAXPROCS (the jobs are CPU-bound; more goroutines only add scheduling
// noise); workers <= 1 runs everything inline on the calling goroutine.
//
// fn must write its result into an index-addressed slot rather than shared
// state; distinct indices never race. When any fn returns an error (or
// panics — see PanicError), the lowest-indexed error among all executed
// jobs is returned — the same error the serial order would surface — and
// remaining jobs may be skipped. When ctx is cancelled, Run stops
// dispatching and returns ctx.Err() (unless a job error with a lower index
// was already recorded).
func Run(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	batchCount.Add(1)
	if workers > n {
		workers = n
	}
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := safeCall(fn, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		failed  atomic.Bool
		mu      sync.Mutex
		firstI  = n
		firstEr error
		wg      sync.WaitGroup
	)
	record := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if i < firstI {
			firstI, firstEr = i, err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := safeCall(fn, i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	return ctx.Err()
}

// RunAll executes fn(i) for every i in [0, n) like Run, but never stops
// early on job failure: every job runs, and the result is a per-index
// error slice (nil on success, the job's error or *PanicError otherwise),
// or nil when every job succeeded. Use it when one bad job should degrade
// into one failed slot — e.g. a sweep where one malformed configuration
// must not discard the other data points.
//
// Context cancellation still short-circuits: jobs not yet started are
// marked with ctx.Err() and the slice is returned as soon as in-flight
// jobs drain. Determinism is preserved exactly as in Run — errs[i] depends
// only on fn(i), never on scheduling order.
func RunAll(ctx context.Context, workers, n int, fn func(i int) error) []error {
	if n <= 0 {
		return nil
	}
	batchCount.Add(1)
	errs := make([]error, n)
	any := false
	if workers > n {
		workers = n
	}
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				any = true
				continue
			}
			if err := safeCall(fn, i); err != nil {
				errs[i] = err
				any = true
			}
		}
		if any {
			return errs
		}
		return nil
	}

	var (
		next   atomic.Int64
		anyErr atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					anyErr.Store(true)
					continue
				}
				if err := safeCall(fn, i); err != nil {
					errs[i] = err
					anyErr.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if anyErr.Load() {
		return errs
	}
	return nil
}

// Workers resolves a worker-count knob: values above zero are returned
// as-is, anything else selects GOMAXPROCS. It is the conventional
// interpretation of a -workers=0 / "auto" flag.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
