package qasm

import (
	"reflect"
	"strings"
	"testing"
	"testing/iotest"

	"velociti/internal/circuit"
	"velociti/internal/verr"
)

// FuzzParseStream pins the streaming reader to the slurping parser:
// ParseReader and Parse must accept exactly the same inputs (both
// rejecting with input-kind diagnostics), and on success produce
// identical Results. The seeds are FuzzParse's, plus the CI corpus for
// both targets is shared.
func FuzzParseStream(f *testing.F) {
	f.Add("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n")
	f.Add("OPENQASM 2.0;\nqreg q[3];\ncreg c[3];\nrz(pi/2) q[1];\nmeasure q -> c;\n")
	f.Add("OPENQASM 2.0;\nqreg q[2];\ngate foo(t) a, b { rx(t) a; cx a, b; }\nfoo(0.5) q[0], q[1];\n")
	f.Add("OPENQASM 2.0;\nqreg q[1];\nbarrier q;\nreset q[0];\n")
	f.Add("OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[0];\n") // duplicate operand: must be rejected
	f.Add("OPENQASM 2.0;\nqreg q[1];\nh q[7];\n")        // out-of-range index: must be rejected
	f.Add("qreg q[2];\nh q[0];\n")                       // missing version header
	f.Add("")
	f.Add("OPENQASM 2.0;\n\x00\xff")
	f.Add("OPENQASM 2.0;\nqreg q[99999999999999999999];\n")
	f.Add("OPENQASM 2.0;\nqreg q[1];\nrx(1e) q[0];\n")   // dangling exponent: lexer pushback
	f.Add("OPENQASM 2.0;\nqreg q[1];\nrx(1e-4) q[0];\n") // real exponent

	f.Fuzz(func(t *testing.T, src string) {
		res, err := Parse("fuzz", src)
		sres, serr := ParseReader("fuzz", strings.NewReader(src))
		if (err == nil) != (serr == nil) {
			t.Fatalf("acceptance diverges: Parse err=%v, ParseReader err=%v", err, serr)
		}
		if err != nil {
			if !verr.IsInput(serr) {
				t.Fatalf("streaming rejection is not an input-kind error: %v", serr)
			}
			return
		}
		checkSameResult(t, res, sres)
	})
}

func checkSameResult(t *testing.T, want, got *Result) {
	t.Helper()
	if got.Circuit.Fingerprint() != want.Circuit.Fingerprint() {
		t.Fatalf("streamed circuit fingerprint %016x != slurped %016x",
			got.Circuit.Fingerprint(), want.Circuit.Fingerprint())
	}
	if !reflect.DeepEqual(got.Circuit.Gates(), want.Circuit.Gates()) {
		t.Fatalf("streamed gates diverge from slurped gates")
	}
	if got.Measurements != want.Measurements || got.Barriers != want.Barriers || got.Resets != want.Resets {
		t.Fatalf("streamed side counts (%d, %d, %d) != slurped (%d, %d, %d)",
			got.Measurements, got.Barriers, got.Resets,
			want.Measurements, want.Barriers, want.Resets)
	}
}

// TestParseReaderOneByte drives the incremental lexer through a reader
// that yields one byte per Read, so every token and every lookahead
// crosses a buffer refill.
func TestParseReaderOneByte(t *testing.T) {
	src := `// leading comment
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
gate foo(t) a, b { rx(t/2) a; cx a, b; }
h q;
foo(pi/8) q[0], q[2];
rx(1.5e-3) q[3];
swap q[1], q[2];
barrier q;
measure q -> c;
`
	want, err := Parse("t", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got, err := ParseReader("t", iotest.OneByteReader(strings.NewReader(src)))
	if err != nil {
		t.Fatalf("ParseReader: %v", err)
	}
	checkSameResult(t, want, got)
}

// TestParseReaderIncludes exercises include splicing through the
// streaming token source, including the resolver-error and cycle paths.
func TestParseReaderIncludes(t *testing.T) {
	lib := "gate bar a, b { cx a, b; cx b, a; }\n"
	resolve := func(name string) (string, error) {
		if name == "lib.inc" {
			return lib, nil
		}
		return "", verr.Inputf("no such include %q", name)
	}
	src := "OPENQASM 2.0;\ninclude \"lib.inc\";\nqreg q[2];\nbar q[0], q[1];\n"
	want, err := ParseWithIncludes("t", src, resolve)
	if err != nil {
		t.Fatalf("ParseWithIncludes: %v", err)
	}
	got, err := ParseReaderWithIncludes("t", iotest.OneByteReader(strings.NewReader(src)), resolve)
	if err != nil {
		t.Fatalf("ParseReaderWithIncludes: %v", err)
	}
	checkSameResult(t, want, got)

	if _, err := ParseReaderWithIncludes("t", strings.NewReader("include \"nope.inc\";\nqreg q[1];\n"), resolve); err == nil {
		t.Fatal("unresolvable include accepted")
	}
	cyclic := func(string) (string, error) { return "include \"self.inc\";\n", nil }
	if _, err := ParseReaderWithIncludes("t", strings.NewReader("include \"self.inc\";\nqreg q[1];\n"), cyclic); err == nil {
		t.Fatal("include cycle accepted")
	}
}

// TestParseReaderLexErrorAfterParseError: a lexical error behind the
// parser's failure point must still reject (the slurping path sees it
// first; the streaming path reports the parse error — either way the
// input is refused with an input-kind diagnostic).
func TestParseReaderLexError(t *testing.T) {
	for _, src := range []string{
		"OPENQASM 2.0;\nqreg q[1];\nh q[0];\n\x01",   // lex error at end
		"OPENQASM 2.0;\nqreg q[1];\nbogus q[0];\n =", // parse error, then lex error
		"OPENQASM 2.0;\nqreg q[1];\nh q[0]",          // EOF mid-statement
	} {
		_, err := Parse("t", src)
		_, serr := ParseReader("t", strings.NewReader(src))
		if err == nil || serr == nil {
			t.Fatalf("%q: Parse err=%v, ParseReader err=%v; want both non-nil", src, err, serr)
		}
		if !verr.IsInput(serr) {
			t.Fatalf("%q: streaming rejection is not input-kind: %v", src, serr)
		}
	}
}

// TestWriteMatchesSerialize pins the streaming writer to the in-memory
// serializer byte for byte, covering the non-qelib definition pre-pass.
func TestWriteMatchesSerialize(t *testing.T) {
	c := circuit.New("writer-test", 5)
	c.H(0)
	c.SWAP(1, 2)
	c.CP(0.25, 0, 3)
	c.RZ(1e-9, 4)
	c.CX(3, 4)
	c.SWAP(0, 4)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Write(&b, c); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got, want := b.String(), Serialize(c); got != want {
		t.Fatalf("Write output diverges from Serialize\n got:\n%s\nwant:\n%s", got, want)
	}
	// And the streamed output round-trips through the streaming reader.
	back, err := ParseReader("roundtrip", strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Circuit.NumGates() != c.NumGates() {
		t.Fatalf("round-trip gate count %d, want %d", back.Circuit.NumGates(), c.NumGates())
	}
}
