// Package qasm implements an OpenQASM 2.0 front end and serializer for
// VelociTI.
//
// The Go ecosystem has no quantum-circuit interchange tooling, so this
// package provides the subset of OpenQASM 2.0 needed to import real
// workloads into the framework's circuit IR and export generated circuits
// for use with other toolchains:
//
//   - OPENQASM 2.0 header and include directives (qelib1.inc's standard
//     gates are built in; other includes are rejected),
//   - qreg/creg declarations (multiple quantum registers are flattened
//     into one index space in declaration order),
//   - the U and CX primitives and the qelib1 standard gate set,
//   - user gate definitions with parameter and qubit substitution,
//     expanded at application time,
//   - parameter expressions over numbers and pi with + - * / ^ and unary
//     minus,
//   - whole-register broadcast (h q; cx a,b;),
//   - measure and barrier statements (parsed and counted, but not part of
//     the timing IR), and reset.
//
// Classically controlled operations (if (c==n) ...) are rejected: VelociTI
// is a timing model without classical control flow (§III-C).
package qasm

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // one of ; , ( ) { } [ ] + - * / ^ == ->
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokSymbol:
		return "symbol"
	default:
		return "token"
	}
}

// token is one lexical unit with its source line for diagnostics.
type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer splits OpenQASM source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

// errorf builds a positioned lexical error.
func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("qasm: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	b := l.src[l.pos]
	l.pos++
	if b == '\n' {
		l.line++
	}
	return b
}

// skipSpaceAndComments consumes whitespace and // line comments.
func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		b := l.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			l.advance()
		case b == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	start := l.pos
	line := l.line
	b := l.peekByte()
	switch {
	case isIdentStart(b):
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line}, nil
	case unicode.IsDigit(rune(b)) || b == '.':
		seenDot := false
		for l.pos < len(l.src) {
			c := l.peekByte()
			if unicode.IsDigit(rune(c)) {
				l.advance()
				continue
			}
			if c == '.' && !seenDot {
				seenDot = true
				l.advance()
				continue
			}
			if (c == 'e' || c == 'E') && l.pos > start {
				// Exponent: e[+-]?digits
				save := l.pos
				l.advance()
				if l.peekByte() == '+' || l.peekByte() == '-' {
					l.advance()
				}
				if !unicode.IsDigit(rune(l.peekByte())) {
					l.pos = save
					break
				}
				for l.pos < len(l.src) && unicode.IsDigit(rune(l.peekByte())) {
					l.advance()
				}
			}
			break
		}
		text := l.src[start:l.pos]
		if text == "." {
			return token{}, l.errorf("stray '.'")
		}
		return token{kind: tokNumber, text: text, line: line}, nil
	case b == '"':
		l.advance()
		for l.pos < len(l.src) && l.peekByte() != '"' {
			if l.peekByte() == '\n' {
				return token{}, l.errorf("unterminated string")
			}
			l.advance()
		}
		if l.pos >= len(l.src) {
			return token{}, l.errorf("unterminated string")
		}
		text := l.src[start+1 : l.pos]
		l.advance() // closing quote
		return token{kind: tokString, text: text, line: line}, nil
	case b == '-':
		l.advance()
		if l.peekByte() == '>' {
			l.advance()
			return token{kind: tokSymbol, text: "->", line: line}, nil
		}
		return token{kind: tokSymbol, text: "-", line: line}, nil
	case b == '=':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return token{kind: tokSymbol, text: "==", line: line}, nil
		}
		return token{}, l.errorf("unexpected '='")
	case strings.ContainsRune(";,(){}[]+*/^", rune(b)):
		l.advance()
		return token{kind: tokSymbol, text: string(b), line: line}, nil
	default:
		return token{}, l.errorf("unexpected character %q", string(b))
	}
}

// tokenize lexes the whole input.
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isIdentPart(b byte) bool {
	return isIdentStart(b) || (b >= '0' && b <= '9')
}
