// Corpus tests: realistic OpenQASM files parsed end to end, with
// functional checks through the state-vector simulator where the program's
// semantics are known. External test package so statevec can be imported.
package qasm_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"velociti/internal/qasm"
	"velociti/internal/statevec"
)

func parseCorpus(t *testing.T, name string) *qasm.Result {
	t.Helper()
	res, err := qasm.ParseFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

func TestCorpusBell(t *testing.T) {
	res := parseCorpus(t, "bell.qasm")
	c := res.Circuit
	if c.NumQubits() != 2 || c.NumGates() != 2 || res.Measurements != 2 {
		t.Fatalf("bell shape: %v, %d measurements", c.Spec(), res.Measurements)
	}
	s, err := statevec.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Probability(0)-0.5) > 1e-9 || math.Abs(s.Probability(3)-0.5) > 1e-9 {
		t.Fatalf("bell state wrong: %v %v", s.Probability(0), s.Probability(3))
	}
}

func TestCorpusGrover3(t *testing.T) {
	res := parseCorpus(t, "grover3.qasm")
	c := res.Circuit
	if c.NumQubits() != 3 {
		t.Fatalf("width = %d", c.NumQubits())
	}
	// Two ccz = 2 ccx expansions → 12 CX.
	if got := c.NumTwoQubitGates(); got != 12 {
		t.Fatalf("2q gates = %d, want 12", got)
	}
	s, err := statevec.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// One Grover iteration over 8 items: success probability 25/32.
	if p := s.Probability(0b111); math.Abs(p-25.0/32.0) > 1e-9 {
		t.Fatalf("P(|111>) = %v, want %v", p, 25.0/32.0)
	}
}

func TestCorpusVariational(t *testing.T) {
	res := parseCorpus(t, "variational.qasm")
	c := res.Circuit
	if c.NumQubits() != 4 || res.Barriers != 2 || res.Measurements != 4 {
		t.Fatalf("shape: %v, barriers %d, measurements %d", c.Spec(), res.Barriers, res.Measurements)
	}
	// 4 layer applications × 2 CX each.
	if got := c.NumTwoQubitGates(); got != 8 {
		t.Fatalf("2q gates = %d, want 8", got)
	}
	s, err := statevec.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Fatalf("norm = %v", s.Norm())
	}
}

func TestCorpusAdder4ComputesSum(t *testing.T) {
	res := parseCorpus(t, "adder4.qasm")
	c := res.Circuit
	// Registers flatten as cin[1], a[4], b[4], cout[1] → 10 qubits.
	if c.NumQubits() != 10 {
		t.Fatalf("width = %d", c.NumQubits())
	}
	if res.Measurements != 5 {
		t.Fatalf("measurements = %d", res.Measurements)
	}
	s, err := statevec.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// a=0001 (1), b=1111 (15): sum 16 → b register 0000, carry-out 1.
	// Qubit layout: cin=0, a=1..4, b=5..8, cout=9.
	var want uint64
	want |= 1 << 1 // a[0] preserved
	want |= 1 << 9 // carry out
	if p := s.Probability(want); math.Abs(p-1) > 1e-6 {
		t.Fatalf("P(expected adder state) = %v", p)
	}
}

func TestCorpusRoundTripsThroughSerializer(t *testing.T) {
	for _, name := range []string{"bell.qasm", "grover3.qasm", "variational.qasm", "adder4.qasm"} {
		res := parseCorpus(t, name)
		text := qasm.Serialize(res.Circuit)
		again, err := qasm.ParseCircuit(name, text)
		if err != nil {
			t.Fatalf("%s: reserialize failed: %v", name, err)
		}
		if again.NumGates() != res.Circuit.NumGates() {
			t.Fatalf("%s: gate count changed %d → %d", name, res.Circuit.NumGates(), again.NumGates())
		}
	}
}

func TestIncludeResolution(t *testing.T) {
	res := parseCorpus(t, "uses_include.qasm")
	c := res.Circuit
	// triple = bellpair (h + cx) + cx → 3 gates.
	if c.NumGates() != 3 || c.NumTwoQubitGates() != 2 {
		t.Fatalf("included gates expanded wrong: %v", c.Spec())
	}
	s, err := statevec.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// GHZ-like state over 3 qubits.
	if math.Abs(s.Probability(0)-0.5) > 1e-9 || math.Abs(s.Probability(7)-0.5) > 1e-9 {
		t.Fatalf("included circuit state wrong")
	}
}

func TestIncludeErrors(t *testing.T) {
	// Missing include file.
	if _, err := qasm.ParseWithIncludes("t", `include "nope.inc"; qreg q[1];`,
		func(string) (string, error) { return "", os.ErrNotExist }); err == nil {
		t.Fatalf("missing include should fail")
	}
	// Include cycle.
	loader := func(name string) (string, error) {
		return `include "self.inc";`, nil
	}
	if _, err := qasm.ParseWithIncludes("t", `include "self.inc"; qreg q[1];`, loader); err == nil {
		t.Fatalf("include cycle should fail")
	}
	// Nil resolver rejects non-qelib includes (Parse path).
	if _, err := qasm.Parse("t", `include "other.inc"; qreg q[1];`); err == nil {
		t.Fatalf("nil resolver should reject includes")
	}
}

// The built-in qelib1 composite definitions must implement the unitaries
// they claim. Each case prepares basis or superposition inputs and checks
// the state the composite produces against first principles.
func TestQelibCompositeSemantics(t *testing.T) {
	run := func(src string) *statevec.State {
		t.Helper()
		res, err := qasm.Parse("t", src)
		if err != nil {
			t.Fatal(err)
		}
		s, err := statevec.Run(res.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// cswap: |1⟩⊗|10⟩ → |1⟩⊗|01⟩ (control q0, swap q1 and q2).
	s := run(`qreg q[3]; x q[0]; x q[1]; cswap q[0],q[1],q[2];`)
	if p := s.Probability(0b101); math.Abs(p-1) > 1e-9 {
		t.Fatalf("cswap: P(|101>) = %v", p)
	}
	// cswap without control set: no swap.
	s = run(`qreg q[3]; x q[1]; cswap q[0],q[1],q[2];`)
	if p := s.Probability(0b010); math.Abs(p-1) > 1e-9 {
		t.Fatalf("cswap (control off): P(|010>) = %v", p)
	}

	// cy: control on → Y on target: |11⟩ with amplitude i.
	s = run(`qreg q[2]; x q[0]; cy q[0],q[1];`)
	a := s.Amplitude(0b11)
	if math.Abs(real(a)) > 1e-9 || math.Abs(imag(a)-1) > 1e-9 {
		t.Fatalf("cy: amplitude = %v, want i", a)
	}

	// ch: control off → identity.
	s = run(`qreg q[2]; ch q[0],q[1];`)
	if p := s.Probability(0); math.Abs(p-1) > 1e-9 {
		t.Fatalf("ch (control off): P(|00>) = %v", p)
	}
	// ch: control on → H on target: equal probabilities.
	s = run(`qreg q[2]; x q[0]; ch q[0],q[1];`)
	if p1, p3 := s.Probability(0b01), s.Probability(0b11); math.Abs(p1-0.5) > 1e-9 || math.Abs(p3-0.5) > 1e-9 {
		t.Fatalf("ch (control on): P = %v, %v", p1, p3)
	}

	// crz: phases e^{∓iλ/2} on the target conditioned on control=1.
	// Prepare control=1, target in |+>, apply crz(pi), expect |-> up to
	// global phase: probability of target=0 stays 1/2 and interference
	// with an H reveals the phase flip.
	s = run(`qreg q[2]; x q[0]; h q[1]; crz(pi) q[0],q[1]; h q[1];`)
	if p := s.Probability(0b11); math.Abs(p-1) > 1e-9 {
		t.Fatalf("crz(pi) should flip |+> to |->: P(|11>) = %v", p)
	}

	// cu1(λ) equals the native cp(λ): compare state fidelity.
	res1, err := qasm.Parse("a", `qreg q[2]; h q[0]; h q[1]; cu1(pi/3) q[0],q[1];`)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := qasm.Parse("b", `qreg q[2]; h q[0]; h q[1]; cp(pi/3) q[0],q[1];`)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := statevec.Run(res1.Circuit)
	s2, _ := statevec.Run(res2.Circuit)
	fid, err := s1.Fidelity(s2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fid-1) > 1e-9 {
		t.Fatalf("cu1 vs cp fidelity = %v", fid)
	}

	// cu3(θ,0,0) with control on acts as RY(θ): P(target=1) = sin²(θ/2).
	s = run(`qreg q[2]; x q[0]; cu3(pi/3,0,0) q[0],q[1];`)
	want := math.Pow(math.Sin(math.Pi/6), 2)
	got := s.MarginalProbability(0b10, 0b10)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("cu3: P(target=1) = %v, want %v", got, want)
	}
	// cu3 with control off: identity.
	s = run(`qreg q[2]; cu3(pi/3,0.4,0.9) q[0],q[1];`)
	if p := s.Probability(0); math.Abs(p-1) > 1e-9 {
		t.Fatalf("cu3 (control off): P(|00>) = %v", p)
	}

	// u(θ,φ,λ) is u3; p(λ) is u1.
	res1, _ = qasm.Parse("a", `qreg q[1]; u(1.1,0.2,0.3) q[0];`)
	res2, _ = qasm.Parse("b", `qreg q[1]; u3(1.1,0.2,0.3) q[0];`)
	s1, _ = statevec.Run(res1.Circuit)
	s2, _ = statevec.Run(res2.Circuit)
	if fid, _ := s1.Fidelity(s2); math.Abs(fid-1) > 1e-9 {
		t.Fatalf("u vs u3 fidelity = %v", fid)
	}
}
