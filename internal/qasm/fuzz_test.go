package qasm

import (
	"testing"

	"velociti/internal/verr"
)

// FuzzParse drives the lexer and parser with arbitrary source text. The
// contract under fuzz is the input boundary's: no input may panic, and
// every rejection must be an input-kind diagnostic (verr.ErrInput), never
// a bare internal error. Accepted programs must additionally round-trip
// through Serialize — the emitted QASM reparses to the same circuit shape.
func FuzzParse(f *testing.F) {
	f.Add("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n")
	f.Add("OPENQASM 2.0;\nqreg q[3];\ncreg c[3];\nrz(pi/2) q[1];\nmeasure q -> c;\n")
	f.Add("OPENQASM 2.0;\nqreg q[2];\ngate foo(t) a, b { rx(t) a; cx a, b; }\nfoo(0.5) q[0], q[1];\n")
	f.Add("OPENQASM 2.0;\nqreg q[1];\nbarrier q;\nreset q[0];\n")
	f.Add("OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[0];\n") // duplicate operand: must be rejected
	f.Add("OPENQASM 2.0;\nqreg q[1];\nh q[7];\n")        // out-of-range index: must be rejected
	f.Add("qreg q[2];\nh q[0];\n")                       // missing version header
	f.Add("")
	f.Add("OPENQASM 2.0;\n\x00\xff")
	f.Add("OPENQASM 2.0;\nqreg q[99999999999999999999];\n")

	f.Fuzz(func(t *testing.T, src string) {
		res, err := Parse("fuzz", src)
		if err != nil {
			if !verr.IsInput(err) {
				t.Fatalf("rejection is not an input-kind error: %v", err)
			}
			return
		}
		emitted := Serialize(res.Circuit)
		back, err := Parse("roundtrip", emitted)
		if err != nil {
			t.Fatalf("accepted program fails to reparse after Serialize: %v\n--- emitted ---\n%s", err, emitted)
		}
		if got, want := back.Circuit.NumGates(), res.Circuit.NumGates(); got != want {
			t.Fatalf("round-trip gate count = %d, want %d\n--- emitted ---\n%s", got, want, emitted)
		}
		if got, want := back.Circuit.NumQubits(), res.Circuit.NumQubits(); got != want {
			t.Fatalf("round-trip qubit count = %d, want %d\n--- emitted ---\n%s", got, want, emitted)
		}
	})
}
