package qasm

// This file is the streaming front half of the parser: a token source
// abstraction over either a fully lexed slice (the classic Parse path) or
// an incremental lexer pulling bytes off an io.Reader (ParseReader), so
// million-gate QASM files are parsed without slurping the source — peak
// memory for the text side is O(longest token), not O(file).
//
// Equivalence contract with Parse (pinned by FuzzParseStream): the two
// paths accept exactly the same inputs, and on success produce identical
// Results. Diagnostics can differ in one way only — Parse lexes the whole
// file up front, so a lexical error anywhere pre-empts an earlier parse
// error, while the streaming path reports whichever comes first in
// program order. Both are input-kind (verr.ErrInput) rejections.

import (
	"bufio"
	"fmt"
	"io"

	"velociti/internal/verr"
)

// tokenSource is the parser's view of its input: one token of lookahead
// plus include splicing. EOF is sticky — peek and advance return tokEOF
// forever once the input is exhausted.
type tokenSource interface {
	peek() token
	advance() token
	// splice inserts tokens (an include's body, already lexed) ahead of
	// the current position.
	splice(body []token)
}

// sliceSource replays a fully lexed token slice; it is the engine of the
// classic slurping Parse path and of prelude/include bodies.
type sliceSource struct {
	toks []token
	pos  int
}

func (s *sliceSource) peek() token { return s.toks[s.pos] }

func (s *sliceSource) advance() token {
	t := s.toks[s.pos]
	if t.kind != tokEOF {
		s.pos++
	}
	return t
}

func (s *sliceSource) splice(body []token) {
	rest := append([]token(nil), s.toks[s.pos:]...)
	s.toks = append(append(s.toks[:s.pos:s.pos], body...), rest...)
}

// streamSource lexes incrementally. A lexical error is recorded once and
// surfaces as a synthesized EOF so the parser winds down normally; the
// caller (ParseReader) reports the recorded error as the root cause.
type streamSource struct {
	lx      *streamLexer
	pending []token // spliced include tokens, drained before lexing resumes
	cur     token
	haveCur bool
	err     error
}

func (s *streamSource) fetch() {
	if s.haveCur {
		return
	}
	if len(s.pending) > 0 {
		s.cur, s.pending = s.pending[0], s.pending[1:]
		s.haveCur = true
		return
	}
	if s.err == nil {
		t, err := s.lx.next()
		if err == nil {
			s.cur, s.haveCur = t, true
			return
		}
		s.err = err
	}
	s.cur, s.haveCur = token{kind: tokEOF, line: s.lx.line}, true
}

func (s *streamSource) peek() token { s.fetch(); return s.cur }

func (s *streamSource) advance() token {
	s.fetch()
	if s.cur.kind != tokEOF {
		s.haveCur = false
	}
	return s.cur
}

func (s *streamSource) splice(body []token) {
	head := append([]token(nil), body...)
	if s.haveCur && s.cur.kind != tokEOF {
		head = append(head, s.cur)
	}
	// A held EOF is dropped: it is re-fetched from the lexer (sticky)
	// once the spliced body drains.
	s.haveCur = false
	s.pending = append(head, s.pending...)
}

// ParseReader parses OpenQASM 2.0 from r into a Result, lexing
// incrementally instead of slurping the input. The name is attached to
// the produced circuit. Includes other than qelib1.inc are rejected; use
// ParseReaderWithIncludes to resolve them.
func ParseReader(name string, r io.Reader) (*Result, error) {
	return ParseReaderWithIncludes(name, r, nil)
}

// ParseReaderWithIncludes is ParseReader with an include resolver, the
// streaming counterpart of ParseWithIncludes. Read failures from r are
// reported like lexical errors, positioned at the line being lexed.
func ParseReaderWithIncludes(name string, r io.Reader, resolve func(string) (string, error)) (*Result, error) {
	src := &streamSource{lx: newStreamLexer(r)}
	p := &parser{
		ts:      src,
		name:    name,
		regs:    make(map[string]qreg),
		cregs:   make(map[string]int),
		gates:   make(map[string]*gateDef),
		resolve: resolve,
	}
	if err := p.loadPrelude(); err != nil {
		return nil, fmt.Errorf("qasm: internal prelude: %w", err)
	}
	err := p.parseProgram()
	if src.err != nil {
		// Any parse error after a lexical error is downstream of the
		// synthesized EOF; the lexical error is the root cause.
		err = src.err
	}
	if err != nil {
		return nil, verr.Mark(err)
	}
	return p.finish()
}

// streamLexer mirrors lexer.next token for token, but pulls bytes from an
// io.Reader on demand. Lookahead (two bytes, for comment detection) and
// backtracking (two bytes, for a dangling exponent suffix) go through a
// small pushback buffer, so the reader is consumed strictly forward.
type streamLexer struct {
	r    *bufio.Reader
	buf  []byte // unconsumed lookahead/pushback, buf[0] is next
	eof  bool
	rerr error // sticky non-EOF read error
	line int
}

func newStreamLexer(r io.Reader) *streamLexer {
	return &streamLexer{r: bufio.NewReader(r), line: 1}
}

func (l *streamLexer) errorf(format string, args ...any) error {
	return fmt.Errorf("qasm: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

// fill tops the lookahead buffer up to n bytes, stopping at EOF or on a
// read error.
func (l *streamLexer) fill(n int) {
	for len(l.buf) < n && !l.eof && l.rerr == nil {
		b, err := l.r.ReadByte()
		if err != nil {
			if err != io.EOF {
				l.rerr = err
			}
			l.eof = true
			return
		}
		l.buf = append(l.buf, b)
	}
}

// atEOF reports whether no byte is available.
func (l *streamLexer) atEOF() bool {
	l.fill(1)
	return len(l.buf) == 0
}

// peekAt returns lookahead byte i, or 0 past the end of input — matching
// the string lexer's zero-value peek, which no token class treats as
// significant.
func (l *streamLexer) peekAt(i int) byte {
	l.fill(i + 1)
	if i < len(l.buf) {
		return l.buf[i]
	}
	return 0
}

func (l *streamLexer) peekByte() byte { return l.peekAt(0) }

func (l *streamLexer) advance() byte {
	b := l.buf[0]
	l.buf = l.buf[1:]
	if b == '\n' {
		l.line++
	}
	return b
}

// unread pushes bytes back in front of the remaining input. Callers never
// push '\n', so the line counter stays consistent.
func (l *streamLexer) unread(bs ...byte) {
	l.buf = append(append([]byte(nil), bs...), l.buf...)
}

func (l *streamLexer) skipSpaceAndComments() {
	for !l.atEOF() {
		b := l.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			l.advance()
		case b == '/' && l.peekAt(1) == '/':
			for !l.atEOF() && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token; it is byte-for-byte equivalent to
// lexer.next on the same input.
func (l *streamLexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.rerr != nil {
		return token{}, l.errorf("read: %v", l.rerr)
	}
	if l.atEOF() {
		return token{kind: tokEOF, line: l.line}, nil
	}
	line := l.line
	b := l.peekByte()
	switch {
	case isIdentStart(b):
		var text []byte
		for isIdentPart(l.peekByte()) {
			text = append(text, l.advance())
		}
		return token{kind: tokIdent, text: string(text), line: line}, nil
	case (b >= '0' && b <= '9') || b == '.':
		var text []byte
		seenDot := false
		for {
			c := l.peekByte()
			if c >= '0' && c <= '9' {
				text = append(text, l.advance())
				continue
			}
			if c == '.' && !seenDot {
				seenDot = true
				text = append(text, l.advance())
				continue
			}
			if c == 'e' || c == 'E' {
				// Exponent: e[+-]?digits, else push the suffix back.
				taken := []byte{l.advance()}
				if n := l.peekByte(); n == '+' || n == '-' {
					taken = append(taken, l.advance())
				}
				if d := l.peekByte(); d < '0' || d > '9' {
					l.unread(taken...)
					break
				}
				text = append(text, taken...)
				for c := l.peekByte(); c >= '0' && c <= '9'; c = l.peekByte() {
					text = append(text, l.advance())
				}
			}
			break
		}
		if string(text) == "." {
			return token{}, l.errorf("stray '.'")
		}
		return token{kind: tokNumber, text: string(text), line: line}, nil
	case b == '"':
		l.advance()
		var text []byte
		for !l.atEOF() && l.peekByte() != '"' {
			if l.peekByte() == '\n' {
				return token{}, l.errorf("unterminated string")
			}
			text = append(text, l.advance())
		}
		if l.atEOF() {
			return token{}, l.errorf("unterminated string")
		}
		l.advance() // closing quote
		return token{kind: tokString, text: string(text), line: line}, nil
	case b == '-':
		l.advance()
		if l.peekByte() == '>' {
			l.advance()
			return token{kind: tokSymbol, text: "->", line: line}, nil
		}
		return token{kind: tokSymbol, text: "-", line: line}, nil
	case b == '=':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return token{kind: tokSymbol, text: "==", line: line}, nil
		}
		return token{}, l.errorf("unexpected '='")
	case b == ';' || b == ',' || b == '(' || b == ')' || b == '{' || b == '}' ||
		b == '[' || b == ']' || b == '+' || b == '*' || b == '/' || b == '^':
		l.advance()
		return token{kind: tokSymbol, text: string(b), line: line}, nil
	default:
		return token{}, l.errorf("unexpected character %q", string(b))
	}
}
