package qasm

import (
	"math/rand"
	"strings"
	"testing"
)

// The parser must never panic: any input yields a circuit or an error.
// These tests throw random byte soup and mutated valid programs at it.

func parseNeverPanics(t *testing.T, src string) {
	t.Helper()
	defer func() {
		if rec := recover(); rec != nil {
			t.Fatalf("parser panicked: %v\ninput: %q", rec, src)
		}
	}()
	_, _ = Parse("fuzz", src)
}

func TestParserSurvivesRandomBytes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(200)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Intn(128))
		}
		parseNeverPanics(t, string(b))
	}
}

func TestParserSurvivesTokenSoup(t *testing.T) {
	tokens := []string{
		"OPENQASM", "2.0", "include", "\"qelib1.inc\"", "qreg", "creg",
		"gate", "measure", "barrier", "reset", "opaque", "if", "pi",
		"q", "c", "h", "cx", "rz", "ccx", "u1", "[", "]", "(", ")", "{",
		"}", ";", ",", "->", "==", "+", "-", "*", "/", "^", "0", "1",
		"5", "0.5", "1e3",
	}
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		for i := 0; i < r.Intn(60); i++ {
			b.WriteString(tokens[r.Intn(len(tokens))])
			b.WriteByte(' ')
		}
		parseNeverPanics(t, b.String())
	}
}

func TestParserSurvivesMutatedValidPrograms(t *testing.T) {
	base := `OPENQASM 2.0;
include "qelib1.inc";
gate pair(theta) a,b { cx a,b; rz(theta) b; cx a,b; }
qreg q[4];
creg c[4];
h q;
pair(pi/2) q[0],q[1];
ccx q[0],q[1],q[2];
barrier q;
measure q -> c;
`
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		b := []byte(base)
		for k := 0; k < 1+r.Intn(6); k++ {
			switch r.Intn(3) {
			case 0: // flip a byte
				b[r.Intn(len(b))] = byte(r.Intn(128))
			case 1: // delete a byte
				i := r.Intn(len(b))
				b = append(b[:i], b[i+1:]...)
			default: // duplicate a span
				i := r.Intn(len(b))
				j := i + r.Intn(len(b)-i)
				b = append(b[:j], append([]byte(string(b[i:j])), b[j:]...)...)
			}
			if len(b) == 0 {
				b = []byte(";")
			}
		}
		parseNeverPanics(t, string(b))
	}
}

func TestParserDeepNestingBounded(t *testing.T) {
	// Deeply nested parenthesized expressions must not blow the stack
	// unreasonably and must parse or fail cleanly.
	depth := 500
	src := "qreg q[1]; rz(" + strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth) + ") q[0];"
	parseNeverPanics(t, src)
}

func TestParserRecursiveGateDefRejected(t *testing.T) {
	// Mutual recursion through expansion must hit the depth guard, not
	// recurse forever. (Self-reference is use-before-def in OpenQASM, but
	// a definition can name itself textually; the expander must cope.)
	src := `qreg q[2];
gate loop a,b { loop a,b; }
loop q[0],q[1];`
	if _, err := Parse("rec", src); err == nil {
		t.Fatalf("recursive definition should be rejected")
	}
	parseNeverPanics(t, src)
}

func TestParserHugeRegisterRejectedGracefully(t *testing.T) {
	// A preposterous register size must not attempt the allocation path
	// blindly — the circuit is only materialized at finish, and gate
	// references bound-check against the declared size.
	parseNeverPanics(t, "qreg q[999999999999999999999];")
	parseNeverPanics(t, "qreg q[1000000]; x q[999999];")
}
