// 3-qubit Grover iteration marking |111>, one amplification round.
// Uses ccz built from a user definition over qelib1 gates.
OPENQASM 2.0;
include "qelib1.inc";

gate ccz a,b,c { h c; ccx a,b,c; h c; }

qreg q[3];
creg c[3];

// uniform superposition
h q;

// oracle: phase-flip |111>
ccz q[0],q[1],q[2];

// diffuser
h q;
x q;
ccz q[0],q[1],q[2];
x q;
h q;

measure q -> c;
