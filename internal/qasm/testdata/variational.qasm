// Two-layer hardware-efficient ansatz over 4 qubits with parameter
// expressions and barriers between layers.
OPENQASM 2.0;
include "qelib1.inc";

gate layer(t1,t2) a,b { ry(t1) a; ry(t2) b; cx a,b; rz(t1*t2/2) b; cx a,b; }

qreg q[4];
creg m[4];

layer(pi/3,pi/5) q[0],q[1];
layer(pi/7,-pi/4) q[2],q[3];
barrier q;
layer(0.25,1.5e-1) q[1],q[2];
layer(2^2/10,sqrt(2)) q[3],q[0];
barrier q;
measure q -> m;
