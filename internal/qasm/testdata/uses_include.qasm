OPENQASM 2.0;
include "qelib1.inc";
include "mylib.inc";

qreg q[3];
triple q[0],q[1],q[2];
