package qasm

import (
	"fmt"
	"math"

	"velociti/internal/circuit"
	"velociti/internal/verr"
)

// Result is the outcome of parsing an OpenQASM program: the timing-relevant
// circuit plus counts of the statements VelociTI models as free
// (measurement, barrier, reset — see §III-C: the tool predicts gate timing,
// not algorithm results).
type Result struct {
	Circuit      *circuit.Circuit
	Measurements int
	Barriers     int
	Resets       int
}

// Parse parses OpenQASM 2.0 source into a Result. The name is attached to
// the produced circuit. Includes other than qelib1.inc are rejected; use
// ParseWithIncludes or ParseFile to resolve them.
func Parse(name, src string) (*Result, error) {
	return ParseWithIncludes(name, src, nil)
}

// ParseWithIncludes parses OpenQASM 2.0 source, resolving include
// directives other than qelib1.inc through the given loader (which maps an
// include name to source text). A nil loader rejects such includes.
//
// All parse failures are input-kind errors (verr.ErrInput): QASM source is
// untrusted input, so every rejection is a diagnostic, never a panic.
func ParseWithIncludes(name, src string, resolve func(string) (string, error)) (*Result, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, verr.Mark(err)
	}
	p := &parser{
		ts:      &sliceSource{toks: toks},
		name:    name,
		regs:    make(map[string]qreg),
		cregs:   make(map[string]int),
		gates:   make(map[string]*gateDef),
		resolve: resolve,
	}
	if err := p.loadPrelude(); err != nil {
		// The prelude is compiled in; failing to parse it is a bug, not
		// bad input, so it stays unmarked.
		return nil, fmt.Errorf("qasm: internal prelude: %w", err)
	}
	if err := p.parseProgram(); err != nil {
		return nil, verr.Mark(err)
	}
	return p.finish()
}

// ParseCircuit is Parse returning only the circuit.
func ParseCircuit(name, src string) (*circuit.Circuit, error) {
	res, err := Parse(name, src)
	if err != nil {
		return nil, err
	}
	return res.Circuit, nil
}

// qelibComposites defines, in OpenQASM itself, the qelib1.inc composite
// gates that do not map 1:1 onto circuit kinds. They are parsed once per
// Parse call and expand like user definitions.
const qelibComposites = `
gate ccx a,b,c { h c; cx b,c; tdg c; cx a,c; t c; cx b,c; tdg c; cx a,c; t b; t c; h c; cx a,b; t a; tdg b; cx a,b; }
gate cu1(lambda) a,b { u1(lambda/2) a; cx a,b; u1(-lambda/2) b; cx a,b; u1(lambda/2) b; }
gate crz(lambda) a,b { u1(lambda/2) b; cx a,b; u1(-lambda/2) b; cx a,b; }
gate cy a,b { sdg b; cx a,b; s b; }
gate ch a,b { h b; sdg b; cx a,b; h b; t b; cx a,b; t b; h b; s b; x b; s a; }
gate cswap a,b,c { cx c,b; ccx a,b,c; cx c,b; }
gate u0(gamma) q { id q; }
gate u(theta,phi,lambda) q { u3(theta,phi,lambda) q; }
gate p(lambda) q { u1(lambda) q; }
gate cu3(theta,phi,lambda) c,t { u1((lambda+phi)/2) c; u1((lambda-phi)/2) t; cx c,t; u3(-theta/2,0,-(phi+lambda)/2) t; cx c,t; u3(theta/2,phi,0) t; }
`

// qreg is a declared quantum register: its flattened offset and size.
type qreg struct {
	offset, size int
}

// resolvedOp is a fully expanded primitive gate application.
type resolvedOp struct {
	kind   circuit.Kind
	qubits []int
	params []float64
}

// gateDef is a user (or built-in composite) gate definition.
type gateDef struct {
	name   string
	params []string
	qargs  []string
	body   []bodyStmt
}

// bodyStmt is one gate application inside a definition, with formal
// arguments still unresolved.
type bodyStmt struct {
	name  string
	exprs []expr
	args  []string
	line  int
}

// maxExpandDepth bounds gate-definition expansion to catch recursive
// definitions (illegal in OpenQASM 2.0 anyway).
const maxExpandDepth = 64

type parser struct {
	ts tokenSource

	name      string
	regs      map[string]qreg
	regOrder  []string
	numQubits int
	cregs     map[string]int
	gates     map[string]*gateDef
	opaque    map[string]bool

	ops          []resolvedOp
	measurements int
	barriers     int
	resets       int

	resolve  func(string) (string, error)
	included map[string]bool
}

// loadPrelude registers the qelib1 composite definitions.
func (p *parser) loadPrelude() error {
	toks, err := tokenize(qelibComposites)
	if err != nil {
		return err
	}
	sub := &parser{ts: &sliceSource{toks: toks}, gates: p.gates, regs: map[string]qreg{}, cregs: map[string]int{}}
	for sub.peek().kind != tokEOF {
		if err := sub.parseGateDef(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) peek() token { return p.ts.peek() }

func (p *parser) advance() token { return p.ts.advance() }

func (p *parser) errorf(t token, format string, args ...any) error {
	return fmt.Errorf("qasm: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

// expectSymbol consumes the given symbol or fails.
func (p *parser) expectSymbol(sym string) error {
	t := p.advance()
	if t.kind != tokSymbol || t.text != sym {
		return p.errorf(t, "expected %q, found %s", sym, t)
	}
	return nil
}

// expectIdent consumes an identifier or fails.
func (p *parser) expectIdent() (token, error) {
	t := p.advance()
	if t.kind != tokIdent {
		return t, p.errorf(t, "expected identifier, found %s", t)
	}
	return t, nil
}

// atSymbol reports whether the next token is the given symbol.
func (p *parser) atSymbol(sym string) bool {
	t := p.peek()
	return t.kind == tokSymbol && t.text == sym
}

// parseProgram parses the top-level statement list.
func (p *parser) parseProgram() error {
	// Optional OPENQASM 2.0; header.
	if t := p.peek(); t.kind == tokIdent && t.text == "OPENQASM" {
		p.advance()
		v := p.advance()
		if v.kind != tokNumber {
			return p.errorf(v, "expected version number after OPENQASM")
		}
		if v.text != "2.0" && v.text != "2" {
			return p.errorf(v, "unsupported OPENQASM version %s (only 2.0)", v.text)
		}
		if err := p.expectSymbol(";"); err != nil {
			return err
		}
	}
	for {
		t := p.peek()
		if t.kind == tokEOF {
			return nil
		}
		if err := p.parseStatement(); err != nil {
			return err
		}
	}
}

func (p *parser) parseStatement() error {
	t := p.peek()
	if t.kind != tokIdent {
		return p.errorf(t, "expected statement, found %s", t)
	}
	switch t.text {
	case "include":
		return p.parseInclude()
	case "qreg":
		return p.parseQreg()
	case "creg":
		return p.parseCreg()
	case "gate":
		return p.parseGateDef()
	case "opaque":
		return p.parseOpaque()
	case "measure":
		return p.parseMeasure()
	case "barrier":
		return p.parseBarrier()
	case "reset":
		return p.parseReset()
	case "if":
		return p.errorf(t, "classically controlled operations are not supported by the timing model")
	default:
		return p.parseGateApplication()
	}
}

func (p *parser) parseInclude() error {
	p.advance() // include
	t := p.advance()
	if t.kind != tokString {
		return p.errorf(t, "expected file name string after include")
	}
	if t.text == "qelib1.inc" {
		return p.expectSymbol(";")
	}
	if p.resolve == nil {
		return p.errorf(t, "unsupported include %q (only qelib1.inc, whose gates are built in; use ParseFile to resolve local includes)", t.text)
	}
	if p.included[t.text] {
		return p.errorf(t, "include cycle through %q", t.text)
	}
	if len(p.included) >= 16 {
		return p.errorf(t, "too many includes (max 16)")
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	src, err := p.resolve(t.text)
	if err != nil {
		return p.errorf(t, "include %q: %v", t.text, err)
	}
	toks, err := tokenize(src)
	if err != nil {
		return p.errorf(t, "include %q: %v", t.text, err)
	}
	if p.included == nil {
		p.included = make(map[string]bool)
	}
	p.included[t.text] = true
	// Splice the included tokens (minus their EOF) ahead of the current
	// position.
	p.ts.splice(toks[:len(toks)-1])
	return nil
}

func (p *parser) parseQreg() error {
	p.advance() // qreg
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if _, dup := p.regs[name.text]; dup {
		return p.errorf(name, "quantum register %q redeclared", name.text)
	}
	if _, dup := p.cregs[name.text]; dup {
		return p.errorf(name, "register name %q already used", name.text)
	}
	size, err := p.parseBracketInt()
	if err != nil {
		return err
	}
	if size <= 0 {
		return p.errorf(name, "register %q must have positive size", name.text)
	}
	p.regs[name.text] = qreg{offset: p.numQubits, size: size}
	p.regOrder = append(p.regOrder, name.text)
	p.numQubits += size
	return p.expectSymbol(";")
}

func (p *parser) parseCreg() error {
	p.advance() // creg
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if _, dup := p.cregs[name.text]; dup {
		return p.errorf(name, "classical register %q redeclared", name.text)
	}
	if _, dup := p.regs[name.text]; dup {
		return p.errorf(name, "register name %q already used", name.text)
	}
	size, err := p.parseBracketInt()
	if err != nil {
		return err
	}
	if size <= 0 {
		return p.errorf(name, "register %q must have positive size", name.text)
	}
	p.cregs[name.text] = size
	return p.expectSymbol(";")
}

// parseBracketInt parses "[n]" and returns n.
func (p *parser) parseBracketInt() (int, error) {
	if err := p.expectSymbol("["); err != nil {
		return 0, err
	}
	t := p.advance()
	if t.kind != tokNumber {
		return 0, p.errorf(t, "expected integer, found %s", t)
	}
	const maxIndex = 1 << 30 // caps register sizes and indexes sanely
	n := 0
	for _, c := range t.text {
		if c < '0' || c > '9' {
			return 0, p.errorf(t, "expected integer, found %s", t)
		}
		n = n*10 + int(c-'0')
		if n > maxIndex {
			return 0, p.errorf(t, "integer %s too large", t)
		}
	}
	if err := p.expectSymbol("]"); err != nil {
		return 0, err
	}
	return n, nil
}

func (p *parser) parseOpaque() error {
	p.advance() // opaque
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.opaque == nil {
		p.opaque = make(map[string]bool)
	}
	p.opaque[name.text] = true
	// Skip to the terminating semicolon.
	for !p.atSymbol(";") {
		if p.peek().kind == tokEOF {
			return p.errorf(p.peek(), "unterminated opaque declaration %q", name.text)
		}
		p.advance()
	}
	return p.expectSymbol(";")
}

// parseGateDef parses "gate name(params) qargs { body }".
func (p *parser) parseGateDef() error {
	gateTok := p.advance() // gate
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	def := &gateDef{name: name.text}
	if p.atSymbol("(") {
		p.advance()
		for !p.atSymbol(")") {
			id, err := p.expectIdent()
			if err != nil {
				return err
			}
			def.params = append(def.params, id.text)
			if p.atSymbol(",") {
				p.advance()
			}
		}
		p.advance() // )
	}
	for {
		id, err := p.expectIdent()
		if err != nil {
			return err
		}
		def.qargs = append(def.qargs, id.text)
		if !p.atSymbol(",") {
			break
		}
		p.advance()
	}
	if len(def.qargs) == 0 {
		return p.errorf(gateTok, "gate %q has no qubit arguments", def.name)
	}
	if err := p.expectSymbol("{"); err != nil {
		return err
	}
	formalQ := make(map[string]bool, len(def.qargs))
	for _, q := range def.qargs {
		formalQ[q] = true
	}
	formalP := make(map[string]bool, len(def.params))
	for _, q := range def.params {
		formalP[q] = true
	}
	for !p.atSymbol("}") {
		t := p.peek()
		if t.kind == tokEOF {
			return p.errorf(t, "unterminated body of gate %q", def.name)
		}
		if t.kind == tokIdent && t.text == "barrier" {
			// Barriers inside definitions are timing no-ops; skip them.
			for !p.atSymbol(";") {
				if p.peek().kind == tokEOF {
					return p.errorf(t, "unterminated barrier in gate %q", def.name)
				}
				p.advance()
			}
			p.advance()
			continue
		}
		stmt, err := p.parseBodyStmt(def, formalQ, formalP)
		if err != nil {
			return err
		}
		def.body = append(def.body, stmt)
	}
	p.advance() // }
	p.gates[def.name] = def
	return nil
}

// parseBodyStmt parses one gate application inside a definition.
func (p *parser) parseBodyStmt(def *gateDef, formalQ, formalP map[string]bool) (bodyStmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return bodyStmt{}, err
	}
	stmt := bodyStmt{name: name.text, line: name.line}
	if p.atSymbol("(") {
		p.advance()
		for !p.atSymbol(")") {
			e, err := p.parseExpr(formalP)
			if err != nil {
				return bodyStmt{}, err
			}
			stmt.exprs = append(stmt.exprs, e)
			if p.atSymbol(",") {
				p.advance()
			}
		}
		p.advance() // )
	}
	for {
		arg, err := p.expectIdent()
		if err != nil {
			return bodyStmt{}, err
		}
		if !formalQ[arg.text] {
			return bodyStmt{}, p.errorf(arg, "gate %q body references unknown qubit %q", def.name, arg.text)
		}
		stmt.args = append(stmt.args, arg.text)
		if !p.atSymbol(",") {
			break
		}
		p.advance()
	}
	if err := p.expectSymbol(";"); err != nil {
		return bodyStmt{}, err
	}
	return stmt, nil
}

// operand is a top-level qubit argument: a whole register or one element.
type operand struct {
	reg     qreg
	indexed bool
	index   int
	tok     token
}

// parseOperand parses "reg" or "reg[i]" against the declared registers.
func (p *parser) parseOperand() (operand, error) {
	name, err := p.expectIdent()
	if err != nil {
		return operand{}, err
	}
	r, ok := p.regs[name.text]
	if !ok {
		return operand{}, p.errorf(name, "unknown quantum register %q", name.text)
	}
	op := operand{reg: r, tok: name}
	if p.atSymbol("[") {
		idx, err := p.parseBracketInt()
		if err != nil {
			return operand{}, err
		}
		if idx >= r.size {
			return operand{}, p.errorf(name, "index %d out of range for register %q of size %d", idx, name.text, r.size)
		}
		op.indexed = true
		op.index = idx
	}
	return op, nil
}

// parseGateApplication parses a top-level gate application with optional
// parameters and broadcast semantics, then expands it into primitive ops.
func (p *parser) parseGateApplication() error {
	name := p.advance()
	if p.opaque[name.text] {
		return p.errorf(name, "cannot apply opaque gate %q (no definition)", name.text)
	}
	var vals []float64
	if p.atSymbol("(") {
		p.advance()
		for !p.atSymbol(")") {
			e, err := p.parseExpr(nil)
			if err != nil {
				return err
			}
			v, err := e.eval(nil)
			if err != nil {
				return p.errorf(name, "%v", err)
			}
			vals = append(vals, v)
			if p.atSymbol(",") {
				p.advance()
			}
		}
		p.advance() // )
	}
	var operands []operand
	for {
		op, err := p.parseOperand()
		if err != nil {
			return err
		}
		operands = append(operands, op)
		if !p.atSymbol(",") {
			break
		}
		p.advance()
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	// Broadcast: every whole-register operand must share one size.
	bcast := 1
	for _, op := range operands {
		if !op.indexed {
			if bcast == 1 {
				bcast = op.reg.size
			} else if op.reg.size != bcast {
				return p.errorf(op.tok, "broadcast register sizes differ (%d vs %d)", op.reg.size, bcast)
			}
		}
	}
	for i := 0; i < bcast; i++ {
		qubits := make([]int, len(operands))
		for j, op := range operands {
			if op.indexed {
				qubits[j] = op.reg.offset + op.index
			} else {
				qubits[j] = op.reg.offset + i
			}
		}
		if err := p.apply(name, name.text, vals, qubits, 0); err != nil {
			return err
		}
	}
	return nil
}

// builtinKind maps OpenQASM gate names onto circuit kinds, including the
// U/CX primitives and common aliases.
func builtinKind(name string) (circuit.Kind, bool) {
	switch name {
	case "U":
		return circuit.U3, true
	case "CX":
		return circuit.CX, true
	case "cp":
		return circuit.CP, true
	}
	return circuit.KindByName(name)
}

// apply expands one gate application into primitive resolvedOps, resolving
// user definitions recursively.
func (p *parser) apply(at token, name string, vals []float64, qubits []int, depth int) error {
	if depth > maxExpandDepth {
		return p.errorf(at, "gate %q expansion exceeds depth %d (recursive definition?)", name, maxExpandDepth)
	}
	// Built-in kinds take precedence over definitions: a textual
	// definition of a standard gate (e.g. a portable "swap" emitted by
	// Serialize) must still map onto the native kind so that circuits
	// round-trip gate for gate.
	if kind, ok := builtinKind(name); ok {
		if kind.Arity() != len(qubits) {
			return p.errorf(at, "gate %q wants %d qubits, got %d", name, kind.Arity(), len(qubits))
		}
		if kind.NumParams() != len(vals) {
			return p.errorf(at, "gate %q wants %d parameters, got %d", name, kind.NumParams(), len(vals))
		}
		if err := distinctQubits(qubits); err != nil {
			return p.errorf(at, "gate %q: %v", name, err)
		}
		p.ops = append(p.ops, resolvedOp{kind: kind, qubits: qubits, params: vals})
		return nil
	}
	if def, ok := p.gates[name]; ok {
		if len(vals) != len(def.params) {
			return p.errorf(at, "gate %q wants %d parameters, got %d", name, len(def.params), len(vals))
		}
		if len(qubits) != len(def.qargs) {
			return p.errorf(at, "gate %q wants %d qubits, got %d", name, len(def.qargs), len(qubits))
		}
		if err := distinctQubits(qubits); err != nil {
			return p.errorf(at, "gate %q: %v", name, err)
		}
		env := make(map[string]float64, len(def.params))
		for i, formal := range def.params {
			env[formal] = vals[i]
		}
		qbind := make(map[string]int, len(def.qargs))
		for i, formal := range def.qargs {
			qbind[formal] = qubits[i]
		}
		for _, stmt := range def.body {
			args := make([]int, len(stmt.args))
			for i, formal := range stmt.args {
				args[i] = qbind[formal]
			}
			sub := make([]float64, len(stmt.exprs))
			for i, e := range stmt.exprs {
				v, err := e.eval(env)
				if err != nil {
					return p.errorf(at, "gate %q: %v", name, err)
				}
				sub[i] = v
			}
			if err := p.apply(at, stmt.name, sub, args, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return p.errorf(at, "unknown gate %q", name)
}

func distinctQubits(qs []int) error {
	for i := 0; i < len(qs); i++ {
		for j := i + 1; j < len(qs); j++ {
			if qs[i] == qs[j] {
				return fmt.Errorf("duplicate qubit operand q%d", qs[i])
			}
		}
	}
	return nil
}

func (p *parser) parseMeasure() error {
	p.advance() // measure
	src, err := p.parseOperand()
	if err != nil {
		return err
	}
	if err := p.expectSymbol("->"); err != nil {
		return err
	}
	dst, err := p.expectIdent()
	if err != nil {
		return err
	}
	size, ok := p.cregs[dst.text]
	if !ok {
		return p.errorf(dst, "unknown classical register %q", dst.text)
	}
	if p.atSymbol("[") {
		idx, err := p.parseBracketInt()
		if err != nil {
			return err
		}
		if idx >= size {
			return p.errorf(dst, "index %d out of range for register %q of size %d", idx, dst.text, size)
		}
		if !src.indexed {
			return p.errorf(dst, "cannot measure a whole register into one bit")
		}
		p.measurements++
	} else {
		if src.indexed {
			p.measurements++
		} else {
			if src.reg.size != size {
				return p.errorf(dst, "measure sizes differ (%d qubits -> %d bits)", src.reg.size, size)
			}
			p.measurements += src.reg.size
		}
	}
	return p.expectSymbol(";")
}

func (p *parser) parseBarrier() error {
	p.advance() // barrier
	for {
		if _, err := p.parseOperand(); err != nil {
			return err
		}
		if !p.atSymbol(",") {
			break
		}
		p.advance()
	}
	p.barriers++
	return p.expectSymbol(";")
}

func (p *parser) parseReset() error {
	p.advance() // reset
	op, err := p.parseOperand()
	if err != nil {
		return err
	}
	if op.indexed {
		p.resets++
	} else {
		p.resets += op.reg.size
	}
	return p.expectSymbol(";")
}

// finish materializes the parsed operations into a circuit.
func (p *parser) finish() (*Result, error) {
	if p.numQubits == 0 {
		return nil, verr.Inputf("qasm: program declares no quantum registers")
	}
	c := circuit.New(p.name, p.numQubits)
	for _, op := range p.ops {
		c.Append(op.kind, op.qubits, op.params...)
	}
	// The parser validates arity, ranges, and operand distinctness before
	// ops reach the builder, but the builder's sticky error is re-checked
	// so no gap between the two validators can leak a malformed circuit.
	if err := c.Err(); err != nil {
		return nil, fmt.Errorf("qasm: %w", err)
	}
	return &Result{
		Circuit:      c,
		Measurements: p.measurements,
		Barriers:     p.barriers,
		Resets:       p.resets,
	}, nil
}

// ---- expressions ----

// expr is a parameter expression evaluated against a formal-parameter
// environment.
type expr interface {
	eval(env map[string]float64) (float64, error)
}

type numLit float64

func (n numLit) eval(map[string]float64) (float64, error) { return float64(n), nil }

type piLit struct{}

func (piLit) eval(map[string]float64) (float64, error) { return math.Pi, nil }

type paramRef string

func (p paramRef) eval(env map[string]float64) (float64, error) {
	v, ok := env[string(p)]
	if !ok {
		return 0, fmt.Errorf("unbound parameter %q", string(p))
	}
	return v, nil
}

type unaryNeg struct{ x expr }

func (u unaryNeg) eval(env map[string]float64) (float64, error) {
	v, err := u.x.eval(env)
	return -v, err
}

type binaryOp struct {
	op   byte
	l, r expr
}

func (b binaryOp) eval(env map[string]float64) (float64, error) {
	l, err := b.l.eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("division by zero in parameter expression")
		}
		return l / r, nil
	case '^':
		return math.Pow(l, r), nil
	default:
		return 0, fmt.Errorf("unknown operator %q", string(b.op))
	}
}

type funcCall struct {
	name string
	arg  expr
}

func (f funcCall) eval(env map[string]float64) (float64, error) {
	v, err := f.arg.eval(env)
	if err != nil {
		return 0, err
	}
	switch f.name {
	case "sin":
		return math.Sin(v), nil
	case "cos":
		return math.Cos(v), nil
	case "tan":
		return math.Tan(v), nil
	case "exp":
		return math.Exp(v), nil
	case "ln":
		if v <= 0 {
			return 0, fmt.Errorf("ln of non-positive value %g", v)
		}
		return math.Log(v), nil
	case "sqrt":
		if v < 0 {
			return 0, fmt.Errorf("sqrt of negative value %g", v)
		}
		return math.Sqrt(v), nil
	default:
		return 0, fmt.Errorf("unknown function %q", f.name)
	}
}

// parseExpr parses an additive expression. formals, when non-nil, names
// the identifiers allowed as parameter references.
func (p *parser) parseExpr(formals map[string]bool) (expr, error) {
	left, err := p.parseTerm(formals)
	if err != nil {
		return nil, err
	}
	for p.atSymbol("+") || p.atSymbol("-") {
		op := p.advance().text[0]
		right, err := p.parseTerm(formals)
		if err != nil {
			return nil, err
		}
		left = binaryOp{op: op, l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseTerm(formals map[string]bool) (expr, error) {
	left, err := p.parseFactor(formals)
	if err != nil {
		return nil, err
	}
	for p.atSymbol("*") || p.atSymbol("/") {
		op := p.advance().text[0]
		right, err := p.parseFactor(formals)
		if err != nil {
			return nil, err
		}
		left = binaryOp{op: op, l: left, r: right}
	}
	return left, nil
}

// parseFactor handles right-associative exponentiation.
func (p *parser) parseFactor(formals map[string]bool) (expr, error) {
	base, err := p.parseUnary(formals)
	if err != nil {
		return nil, err
	}
	if p.atSymbol("^") {
		p.advance()
		exp, err := p.parseFactor(formals)
		if err != nil {
			return nil, err
		}
		return binaryOp{op: '^', l: base, r: exp}, nil
	}
	return base, nil
}

func (p *parser) parseUnary(formals map[string]bool) (expr, error) {
	if p.atSymbol("-") {
		p.advance()
		x, err := p.parseUnary(formals)
		if err != nil {
			return nil, err
		}
		return unaryNeg{x: x}, nil
	}
	return p.parsePrimary(formals)
}

func (p *parser) parsePrimary(formals map[string]bool) (expr, error) {
	t := p.advance()
	switch t.kind {
	case tokNumber:
		var v float64
		if _, err := fmt.Sscanf(t.text, "%g", &v); err != nil {
			return nil, p.errorf(t, "malformed number %q", t.text)
		}
		return numLit(v), nil
	case tokIdent:
		if t.text == "pi" {
			return piLit{}, nil
		}
		switch t.text {
		case "sin", "cos", "tan", "exp", "ln", "sqrt":
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			arg, err := p.parseExpr(formals)
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return funcCall{name: t.text, arg: arg}, nil
		}
		if formals != nil && formals[t.text] {
			return paramRef(t.text), nil
		}
		return nil, p.errorf(t, "unknown identifier %q in expression", t.text)
	case tokSymbol:
		if t.text == "(" {
			e, err := p.parseExpr(formals)
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf(t, "expected expression, found %s", t)
}
