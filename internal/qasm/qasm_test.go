package qasm

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"velociti/internal/apps"
	"velociti/internal/circuit"
	"velociti/internal/workload"
)

func parse(t *testing.T, src string) *Result {
	t.Helper()
	res, err := Parse("test", src)
	if err != nil {
		t.Fatalf("parse failed: %v\nsource:\n%s", err, src)
	}
	return res
}

func parseErr(t *testing.T, name, src string) {
	t.Helper()
	if _, err := Parse("test", src); err == nil {
		t.Errorf("%s: expected parse error\nsource:\n%s", name, src)
	}
}

func TestParseMinimalProgram(t *testing.T) {
	res := parse(t, `
		OPENQASM 2.0;
		include "qelib1.inc";
		qreg q[2];
		h q[0];
		cx q[0],q[1];
	`)
	c := res.Circuit
	if c.NumQubits() != 2 || c.NumGates() != 2 {
		t.Fatalf("circuit = %v", c.Spec())
	}
	if c.Gate(0).Kind != circuit.H || c.Gate(1).Kind != circuit.CX {
		t.Fatalf("gates = %v", c.Gates())
	}
}

func TestHeaderOptional(t *testing.T) {
	res := parse(t, `qreg q[1]; x q[0];`)
	if res.Circuit.NumGates() != 1 {
		t.Fatalf("gates = %d", res.Circuit.NumGates())
	}
}

func TestVersionRejected(t *testing.T) {
	parseErr(t, "qasm3", `OPENQASM 3.0; qreg q[1];`)
}

func TestMultipleRegistersFlattened(t *testing.T) {
	res := parse(t, `
		qreg a[2];
		qreg b[3];
		cx a[1],b[0];
	`)
	c := res.Circuit
	if c.NumQubits() != 5 {
		t.Fatalf("width = %d", c.NumQubits())
	}
	g := c.Gate(0)
	if g.Qubits[0] != 1 || g.Qubits[1] != 2 {
		t.Fatalf("flattened operands = %v (a[1]→1, b[0]→2)", g.Qubits)
	}
}

func TestBroadcastWholeRegister(t *testing.T) {
	res := parse(t, `
		qreg q[4];
		h q;
	`)
	if res.Circuit.NumGates() != 4 {
		t.Fatalf("broadcast should apply per qubit: %d gates", res.Circuit.NumGates())
	}
}

func TestBroadcastTwoQubit(t *testing.T) {
	res := parse(t, `
		qreg a[3];
		qreg b[3];
		cx a,b;
	`)
	c := res.Circuit
	if c.NumGates() != 3 {
		t.Fatalf("pairwise broadcast: %d gates", c.NumGates())
	}
	for i := 0; i < 3; i++ {
		g := c.Gate(i)
		if g.Qubits[0] != i || g.Qubits[1] != 3+i {
			t.Fatalf("gate %d operands = %v", i, g.Qubits)
		}
	}
}

func TestBroadcastMixedRegAndIndex(t *testing.T) {
	res := parse(t, `
		qreg a[3];
		qreg b[1];
		cx a,b[0];
	`)
	if res.Circuit.NumGates() != 3 {
		t.Fatalf("mixed broadcast: %d gates", res.Circuit.NumGates())
	}
}

func TestBroadcastSizeMismatch(t *testing.T) {
	parseErr(t, "mismatch", `qreg a[2]; qreg b[3]; cx a,b;`)
}

func TestParameterExpressions(t *testing.T) {
	res := parse(t, `
		qreg q[1];
		rz(pi/2) q[0];
		rz(-pi/4) q[0];
		rz(2*pi) q[0];
		rz(pi^2) q[0];
		rz((1+2)*3) q[0];
		rz(1.5e2) q[0];
		rz(cos(0)) q[0];
		rz(sqrt(4)) q[0];
	`)
	want := []float64{math.Pi / 2, -math.Pi / 4, 2 * math.Pi, math.Pi * math.Pi, 9, 150, 1, 2}
	for i, w := range want {
		got := res.Circuit.Gate(i).Params[0]
		if math.Abs(got-w) > 1e-12 {
			t.Errorf("param %d = %v, want %v", i, got, w)
		}
	}
}

func TestExpressionErrors(t *testing.T) {
	parseErr(t, "division by zero", `qreg q[1]; rz(1/0) q[0];`)
	parseErr(t, "unknown identifier", `qreg q[1]; rz(theta) q[0];`)
	parseErr(t, "ln negative", `qreg q[1]; rz(ln(-1)) q[0];`)
}

func TestQelibCompositeGates(t *testing.T) {
	res := parse(t, `
		qreg q[3];
		ccx q[0],q[1],q[2];
	`)
	c := res.Circuit
	// Standard decomposition: 6 CX + 9 one-qubit gates.
	if c.NumTwoQubitGates() != 6 || c.NumOneQubitGates() != 9 {
		t.Fatalf("ccx expansion: %d 1q, %d 2q", c.NumOneQubitGates(), c.NumTwoQubitGates())
	}
}

func TestUserGateDefinition(t *testing.T) {
	res := parse(t, `
		qreg q[2];
		gate bell a,b { h a; cx a,b; }
		bell q[0],q[1];
		bell q[1],q[0];
	`)
	c := res.Circuit
	if c.NumGates() != 4 {
		t.Fatalf("gates = %d, want 4", c.NumGates())
	}
	if c.Gate(2).Kind != circuit.H || c.Gate(2).Qubits[0] != 1 {
		t.Fatalf("second expansion wrong: %v", c.Gate(2))
	}
}

func TestParameterizedUserGate(t *testing.T) {
	res := parse(t, `
		qreg q[1];
		gate shift(a,b) q { rz(a+b) q; rz(a*b) q; }
		shift(2,3) q[0];
	`)
	c := res.Circuit
	if c.Gate(0).Params[0] != 5 || c.Gate(1).Params[0] != 6 {
		t.Fatalf("substitution wrong: %v %v", c.Gate(0), c.Gate(1))
	}
}

func TestNestedUserGates(t *testing.T) {
	res := parse(t, `
		qreg q[3];
		gate pair a,b { cx a,b; }
		gate chaing a,b,c { pair a,b; pair b,c; }
		chaing q[0],q[1],q[2];
	`)
	if res.Circuit.NumGates() != 2 {
		t.Fatalf("nested expansion: %d gates", res.Circuit.NumGates())
	}
}

func TestUPrimitives(t *testing.T) {
	res := parse(t, `
		qreg q[2];
		U(pi/2,0,pi) q[0];
		CX q[0],q[1];
	`)
	c := res.Circuit
	if c.Gate(0).Kind != circuit.U3 || c.Gate(1).Kind != circuit.CX {
		t.Fatalf("primitives = %v", c.Gates())
	}
}

func TestMeasureBarrierReset(t *testing.T) {
	res := parse(t, `
		qreg q[3];
		creg c[3];
		h q;
		barrier q;
		measure q -> c;
		measure q[0] -> c[0];
		reset q[1];
		reset q;
	`)
	if res.Measurements != 4 {
		t.Errorf("measurements = %d, want 4", res.Measurements)
	}
	if res.Barriers != 1 {
		t.Errorf("barriers = %d, want 1", res.Barriers)
	}
	if res.Resets != 4 {
		t.Errorf("resets = %d, want 4", res.Resets)
	}
	if res.Circuit.NumGates() != 3 {
		t.Errorf("only the h broadcast should produce gates, got %d", res.Circuit.NumGates())
	}
}

func TestMeasureValidation(t *testing.T) {
	parseErr(t, "unknown creg", `qreg q[1]; measure q[0] -> c[0];`)
	parseErr(t, "size mismatch", `qreg q[2]; creg c[3]; measure q -> c;`)
	parseErr(t, "reg to bit", `qreg q[2]; creg c[2]; measure q -> c[0];`)
	parseErr(t, "bit index range", `qreg q[1]; creg c[1]; measure q[0] -> c[5];`)
}

func TestIfRejected(t *testing.T) {
	parseErr(t, "if", `qreg q[1]; creg c[1]; if (c==1) x q[0];`)
}

func TestOpaqueDeclarationAndUse(t *testing.T) {
	res := parse(t, `qreg q[1]; opaque mystery(a,b) x,y; x q[0];`)
	if res.Circuit.NumGates() != 1 {
		t.Fatalf("opaque decl should be skipped")
	}
	parseErr(t, "opaque use", `qreg q[2]; opaque mystery x,y; mystery q[0],q[1];`)
}

func TestCommentsIgnored(t *testing.T) {
	res := parse(t, `
		// leading comment
		qreg q[1]; // trailing comment
		// h q[0]; (commented out)
		x q[0];
	`)
	if res.Circuit.NumGates() != 1 || res.Circuit.Gate(0).Kind != circuit.X {
		t.Fatalf("comments mishandled: %v", res.Circuit.Gates())
	}
}

func TestParseErrorsCatalog(t *testing.T) {
	cases := map[string]string{
		"no registers":        `OPENQASM 2.0;`,
		"unknown register":    `qreg q[1]; x r[0];`,
		"index out of range":  `qreg q[2]; x q[5];`,
		"unknown gate":        `qreg q[1]; warp q[0];`,
		"duplicate operand":   `qreg q[2]; cx q[1],q[1];`,
		"bad include":         `include "other.inc"; qreg q[1];`,
		"redeclared register": `qreg q[1]; qreg q[2];`,
		"zero-size register":  `qreg q[0];`,
		"wrong gate arity":    `qreg q[2]; h q[0],q[1];`,
		"wrong param count":   `qreg q[1]; rz q[0];`,
		"extra params":        `qreg q[1]; x(0.5) q[0];`,
		"missing semicolon":   `qreg q[1] x q[0];`,
		"stray token":         `qreg q[1]; x q[0]; )`,
		"name collision":      `qreg q[1]; creg q[1];`,
		"unterminated string": "include \"qelib1.inc\n; qreg q[1];",
	}
	for name, src := range cases {
		parseErr(t, name, src)
	}
}

func TestSerializeRoundTripGenerated(t *testing.T) {
	circuits := []*circuit.Circuit{
		genc(t)(apps.GHZ(6)),
		genc(t)(apps.QFT(5)),
		genc(t)(apps.BernsteinVazirani(5, nil)),
		genc(t)(apps.CuccaroAdder(2)),
		genc(t)(workload.RandomCircuit(8, 60, 0.4, 3)),
	}
	for _, orig := range circuits {
		text := Serialize(orig)
		got, err := ParseCircuit(orig.Name, text)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", orig.Name, err, text)
		}
		if got.NumQubits() != orig.NumQubits() || got.NumGates() != orig.NumGates() {
			t.Fatalf("%s: round trip changed shape: %v vs %v", orig.Name, got.Spec(), orig.Spec())
		}
		for i := range orig.Gates() {
			a, b := orig.Gate(i), got.Gate(i)
			if a.Kind != b.Kind {
				t.Fatalf("%s gate %d: kind %v vs %v", orig.Name, i, a.Kind.Name(), b.Kind.Name())
			}
			for j := range a.Qubits {
				if a.Qubits[j] != b.Qubits[j] {
					t.Fatalf("%s gate %d: qubits %v vs %v", orig.Name, i, a.Qubits, b.Qubits)
				}
			}
			for j := range a.Params {
				if math.Abs(a.Params[j]-b.Params[j]) > 1e-12 {
					t.Fatalf("%s gate %d: params %v vs %v", orig.Name, i, a.Params, b.Params)
				}
			}
		}
	}
}

func TestSerializeEmitsPortableDefs(t *testing.T) {
	c := circuit.New("s", 2)
	c.SWAP(0, 1)
	c.CP(0.5, 0, 1)
	text := Serialize(c)
	for _, want := range []string{"gate swap", "gate cp"} {
		if !strings.Contains(text, want) {
			t.Errorf("serialized output missing %q:\n%s", want, text)
		}
	}
	// Each def exactly once even with repeated gates.
	c.SWAP(1, 0)
	text = Serialize(c)
	if strings.Count(text, "gate swap") != 1 {
		t.Errorf("swap def duplicated:\n%s", text)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ghz.qasm")
	orig := genc(t)(apps.GHZ(4))
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	res, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.NumGates() != orig.NumGates() {
		t.Fatalf("file round trip: %d gates", res.Circuit.NumGates())
	}
	if _, err := ParseFile(filepath.Join(dir, "missing.qasm")); err == nil {
		t.Fatalf("missing file should error")
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := tokenize(`rz(-1.5e-3) q[0]; // c`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind == tokEOF {
			break
		}
		texts = append(texts, tk.text)
	}
	want := []string{"rz", "(", "-", "1.5e-3", ")", "q", "[", "0", "]", ";"}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for name, src := range map[string]string{
		"bad char":  `qreg q[1]; x q[0]; #`,
		"stray dot": `qreg q[1]; rz(.) q[0];`,
		"single eq": `qreg q[1]; x = q[0];`,
	} {
		if _, err := Parse("t", src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestArrowToken(t *testing.T) {
	res := parse(t, `qreg q[1]; creg c[1]; measure q[0] -> c[0];`)
	if res.Measurements != 1 {
		t.Fatalf("measurements = %d", res.Measurements)
	}
}

func TestBigGeneratedCircuitParses(t *testing.T) {
	// QFT(16): 16 + 3·120 = 376 one-qubit gates, 240 CX.
	orig := genc(t)(apps.QFT(16))
	got, err := ParseCircuit("qft16", Serialize(orig))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTwoQubitGates() != orig.NumTwoQubitGates() {
		t.Fatalf("2q count = %d, want %d", got.NumTwoQubitGates(), orig.NumTwoQubitGates())
	}
}

// genc unwraps a circuit-generator result, failing the test on error.
func genc(t testing.TB) func(*circuit.Circuit, error) *circuit.Circuit {
	return func(c *circuit.Circuit, err error) *circuit.Circuit {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return c
	}
}
