// Package apps provides the quantum application workloads of the paper's
// evaluation (Table II, §VI): Supremacy, QAOA, SquareRoot (Grover's
// search), QFT, Adder, and Bernstein–Vazirani.
//
// VelociTI consumes a workload as its boundary conditions — qubit count and
// 1-/2-qubit gate counts (Table I) — so PaperSpecs returns exactly the
// Table II attributes. Table II reports no 1-qubit gate counts, and the
// paper's serial results pin q = 0: with w = 4 weak links used on 16-ion
// chains, Eq. 1–2 gives the 64-qubit QFT exactly
// 4·(2·100 µs) + 4028·100 µs = 403.6 ms — the paper's reported value to
// the digit — only when q·δ contributes nothing, and the six-application
// geometric-mean serial time then lands on the paper's 69.3 ms. PaperSpecs
// therefore carries q = 0; the gate-level generators below still emit real
// 1-qubit gates for the functional path (at δ = 1 µs against γ = 100 µs
// they would perturb runtimes by under 2% anyway).
//
// The gate-level generators themselves are an extension: they emit real
// circuits whose 2-qubit gate counts match Table II exactly where the
// construction is fully determined (QFT, Supremacy, QAOA) and approximately
// elsewhere (Grover, Adder, BV — see each generator's comment). They are
// functionally validated against the state-vector simulator in the test
// suites.
package apps

import (
	"fmt"
	"math"

	"velociti/internal/circuit"
	"velociti/internal/stats"
	"velociti/internal/verr"
)

// App couples a Table II workload's abstract spec with its gate-level
// generator.
type App struct {
	// Spec is the paper's boundary conditions for the workload
	// (Table II qubit and 2-qubit gate counts).
	Spec circuit.Spec
	// Build generates a concrete gate-level circuit for the workload,
	// returning an input-kind error when the fixed Table II parameters
	// would be invalid (they never are; the error path exists so callers
	// share one contract with the parameterized generators).
	Build func() (*circuit.Circuit, error)
	// Program returns the same generator as a streaming-capable
	// circuit.Program: the one body behind Build, so Program().Circuit()
	// and Build() produce bit-identical circuits and Program().Source()
	// emits the same gates without materializing them.
	Program func() (circuit.Program, error)
}

// materialize adapts a Program constructor into App.Build's contract.
func materialize(prog func() (circuit.Program, error)) func() (*circuit.Circuit, error) {
	return func() (*circuit.Circuit, error) {
		p, err := prog()
		if err != nil {
			return nil, err
		}
		return p.Circuit()
	}
}

// Name returns the workload name.
func (a App) Name() string { return a.Spec.Name }

// PaperSpecs returns the six Table II workloads in table order with the
// paper's exact qubit and 2-qubit gate counts.
func PaperSpecs() []circuit.Spec {
	return []circuit.Spec{
		{Name: "Supremacy", Qubits: 64, TwoQubitGates: 560},
		{Name: "QAOA", Qubits: 64, TwoQubitGates: 1260},
		{Name: "SquareRoot", Qubits: 78, TwoQubitGates: 1028},
		{Name: "QFT", Qubits: 64, TwoQubitGates: 4032},
		{Name: "Adder", Qubits: 64, TwoQubitGates: 545},
		{Name: "BV", Qubits: 64, TwoQubitGates: 64},
	}
}

// Catalog returns the six Table II workloads with their generators.
func Catalog() []App {
	specs := PaperSpecs()
	progs := []func() (circuit.Program, error){
		func() (circuit.Program, error) { return SupremacyProgram(8, 8, 20, 1) },
		func() (circuit.Program, error) {
			edges, err := RandomGraph(64, 315, 1)
			if err != nil {
				return circuit.Program{}, err
			}
			return QAOAProgram(64, edges, 2, 1)
		},
		func() (circuit.Program, error) { return GroverProgram(40, 1) },
		func() (circuit.Program, error) { return QFTProgram(64) },
		func() (circuit.Program, error) { return CuccaroAdderProgram(31) },
		func() (circuit.Program, error) { return BernsteinVaziraniProgram(64, nil) },
	}
	out := make([]App, len(specs))
	for i := range specs {
		out[i] = App{Spec: specs[i], Build: materialize(progs[i]), Program: progs[i]}
	}
	return out
}

// ByName returns the catalog entry with the given name (case-sensitive,
// matching Table II).
func ByName(name string) (App, error) {
	for _, a := range Catalog() {
		if a.Spec.Name == name {
			return a, nil
		}
	}
	return App{}, verr.Inputf("apps: unknown application %q (want one of Supremacy, QAOA, SquareRoot, QFT, Adder, BV)", name)
}

// QFT builds the n-qubit quantum Fourier transform with every controlled
// phase decomposed into its standard {rz, cx, rz, cx, rz} form, yielding
// exactly n(n−1) CX gates — 4032 for n = 64, matching Table II — and
// n + 3·n(n−1)/2 one-qubit gates. No terminal swap network is emitted
// (Table II's count excludes it).
func QFT(n int) (*circuit.Circuit, error) {
	p, err := QFTProgram(n)
	if err != nil {
		return nil, err
	}
	return p.Circuit()
}

// QFTProgram is QFT as a streaming-capable program: the identical gate
// sequence, emitted against any circuit.Builder.
func QFTProgram(n int) (circuit.Program, error) {
	if n < 1 {
		return circuit.Program{}, verr.Inputf("apps: QFT needs at least 1 qubit, got %d", n)
	}
	return circuit.Program{
		Name:   fmt.Sprintf("qft%d", n),
		Qubits: n,
		Body: func(c circuit.Builder) {
			for i := 0; i < n; i++ {
				c.H(i)
				for j := i + 1; j < n; j++ {
					theta := math.Pi / math.Pow(2, float64(j-i))
					appendCP(c, theta, j, i)
				}
			}
		},
	}, nil
}

// appendCP emits a controlled-phase gate decomposed into 1-qubit rotations
// and two CX gates.
func appendCP(c circuit.Builder, theta float64, ctrl, tgt int) {
	c.RZ(theta/2, ctrl)
	c.CX(ctrl, tgt)
	c.RZ(-theta/2, tgt)
	c.CX(ctrl, tgt)
	c.RZ(theta/2, tgt)
}

// Supremacy builds a Google-style random circuit sampling workload on a
// rows×cols grid: a layer of Hadamards, then `cycles` cycles each applying
// a random one-qubit gate (√X, √Y, or T) to every qubit followed by CZ
// gates on one of four alternating grid-edge patterns. On an 8×8 grid the
// four patterns cover 32+24+32+24 = 112 edges, so 20 cycles give exactly
// 560 CZ gates — Table II's count. The random 1-qubit gate choice is
// seeded for reproducibility.
func Supremacy(rows, cols, cycles int, seed int64) (*circuit.Circuit, error) {
	p, err := SupremacyProgram(rows, cols, cycles, seed)
	if err != nil {
		return nil, err
	}
	return p.Circuit()
}

// SupremacyProgram is Supremacy as a streaming-capable program. The body
// re-seeds its generator on every emission, so repeated streams yield the
// identical gate sequence.
func SupremacyProgram(rows, cols, cycles int, seed int64) (circuit.Program, error) {
	if rows < 1 || cols < 1 || cycles < 0 {
		return circuit.Program{}, verr.Inputf("apps: supremacy grid must be positive with non-negative cycles, got %dx%d over %d cycles", rows, cols, cycles)
	}
	n := rows * cols
	return circuit.Program{
		Name:   fmt.Sprintf("supremacy%dx%dx%d", rows, cols, cycles),
		Qubits: n,
		Body: func(c circuit.Builder) {
			supremacyBody(c, rows, cols, cycles, seed)
		},
	}, nil
}

func supremacyBody(c circuit.Builder, rows, cols, cycles int, seed int64) {
	n := rows * cols
	r := stats.NewRand(seed)
	at := func(row, col int) int { return row*cols + col }
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for cyc := 0; cyc < cycles; cyc++ {
		for q := 0; q < n; q++ {
			switch r.Intn(3) {
			case 0:
				c.RX(math.Pi/2, q)
			case 1:
				c.RY(math.Pi/2, q)
			default:
				c.T(q)
			}
		}
		switch cyc % 4 {
		case 0: // horizontal edges starting at even columns
			for row := 0; row < rows; row++ {
				for col := 0; col+1 < cols; col += 2 {
					c.CZ(at(row, col), at(row, col+1))
				}
			}
		case 1: // horizontal edges starting at odd columns
			for row := 0; row < rows; row++ {
				for col := 1; col+1 < cols; col += 2 {
					c.CZ(at(row, col), at(row, col+1))
				}
			}
		case 2: // vertical edges starting at even rows
			for row := 0; row+1 < rows; row += 2 {
				for col := 0; col < cols; col++ {
					c.CZ(at(row, col), at(row+1, col))
				}
			}
		default: // vertical edges starting at odd rows
			for row := 1; row+1 < rows; row += 2 {
				for col := 0; col < cols; col++ {
					c.CZ(at(row, col), at(row+1, col))
				}
			}
		}
	}
}

// RandomGraph returns m distinct undirected edges over n vertices drawn
// uniformly at random with the given seed, canonicalized (a < b) and in
// draw order. It rejects a request for more edges than the complete graph
// holds.
func RandomGraph(n, m int, seed int64) ([][2]int, error) {
	if n < 0 || m < 0 {
		return nil, verr.Inputf("apps: random graph sizes must be non-negative, got n=%d m=%d", n, m)
	}
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		return nil, verr.Inputf("apps: %d edges requested, only %d possible on %d vertices", m, maxEdges, n)
	}
	r := stats.NewRand(seed)
	seen := make(map[[2]int]bool, m)
	edges := make([][2]int, 0, m)
	for len(edges) < m {
		a, b := r.Intn(n), r.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		e := [2]int{a, b}
		if seen[e] {
			continue
		}
		seen[e] = true
		edges = append(edges, e)
	}
	return edges, nil
}

// QAOA builds a Quantum Approximate Optimization Algorithm circuit for
// MaxCut on the given graph: a Hadamard layer, then `rounds` rounds each
// applying a ZZ phase separator per edge (decomposed as cx·rz·cx, 2 CX
// gates) followed by an RX mixer on every qubit. Angles are drawn from the
// seeded generator, as QAOA parameters would come from a classical outer
// loop. With 315 edges and 2 rounds the CX count is 2·315·2 = 1260 —
// Table II's count for the 64-qubit QAOA.
func QAOA(n int, edges [][2]int, rounds int, seed int64) (*circuit.Circuit, error) {
	p, err := QAOAProgram(n, edges, rounds, seed)
	if err != nil {
		return nil, err
	}
	return p.Circuit()
}

// QAOAProgram is QAOA as a streaming-capable program; the edge list is
// validated here, once, and captured by the body.
func QAOAProgram(n int, edges [][2]int, rounds int, seed int64) (circuit.Program, error) {
	if n < 1 || rounds < 0 {
		return circuit.Program{}, verr.Inputf("apps: QAOA needs a positive qubit count and non-negative rounds, got n=%d rounds=%d", n, rounds)
	}
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n || e[0] == e[1] {
			return circuit.Program{}, verr.Inputf("apps: QAOA edge (%d,%d) invalid on %d vertices", e[0], e[1], n)
		}
	}
	return circuit.Program{
		Name:   fmt.Sprintf("qaoa%dq%de%dr", n, len(edges), rounds),
		Qubits: n,
		Body: func(c circuit.Builder) {
			r := stats.NewRand(seed)
			for q := 0; q < n; q++ {
				c.H(q)
			}
			for round := 0; round < rounds; round++ {
				gamma := r.Float64() * math.Pi
				beta := r.Float64() * math.Pi
				for _, e := range edges {
					c.CX(e[0], e[1])
					c.RZ(2*gamma, e[1])
					c.CX(e[0], e[1])
				}
				for q := 0; q < n; q++ {
					c.RX(2*beta, q)
				}
			}
		},
	}, nil
}

// BernsteinVazirani builds the Bernstein–Vazirani circuit over n qubits:
// n−1 data qubits plus one ancilla (the last qubit). A nil secret selects
// the all-ones string, maximizing the oracle's CX count at n−1 (Table II
// rounds this to 64 for the 64-qubit instance). The circuit is H on data,
// X·H on the ancilla, one CX per set secret bit, and a final H on data.
func BernsteinVazirani(n int, secret []bool) (*circuit.Circuit, error) {
	p, err := BernsteinVaziraniProgram(n, secret)
	if err != nil {
		return nil, err
	}
	return p.Circuit()
}

// BernsteinVaziraniProgram is BernsteinVazirani as a streaming-capable
// program; the secret is resolved and validated here, once.
func BernsteinVaziraniProgram(n int, secret []bool) (circuit.Program, error) {
	if n < 2 {
		return circuit.Program{}, verr.Inputf("apps: Bernstein–Vazirani needs at least 2 qubits, got %d", n)
	}
	data := n - 1
	if secret == nil {
		secret = make([]bool, data)
		for i := range secret {
			secret[i] = true
		}
	}
	if len(secret) != data {
		return circuit.Program{}, verr.Inputf("apps: secret length %d, want %d data bits", len(secret), data)
	}
	return circuit.Program{
		Name:   fmt.Sprintf("bv%d", n),
		Qubits: n,
		Body: func(c circuit.Builder) {
			anc := n - 1
			for q := 0; q < data; q++ {
				c.H(q)
			}
			c.X(anc)
			c.H(anc)
			for q := 0; q < data; q++ {
				if secret[q] {
					c.CX(q, anc)
				}
			}
			for q := 0; q < data; q++ {
				c.H(q)
			}
		},
	}, nil
}

// appendCCX emits a Toffoli gate in the standard 6-CX, 9-single-qubit-gate
// decomposition.
func appendCCX(c circuit.Builder, a, b, tgt int) {
	c.H(tgt)
	c.CX(b, tgt)
	c.Append(circuit.Tdg, []int{tgt})
	c.CX(a, tgt)
	c.T(tgt)
	c.CX(b, tgt)
	c.Append(circuit.Tdg, []int{tgt})
	c.CX(a, tgt)
	c.T(b)
	c.T(tgt)
	c.H(tgt)
	c.CX(a, b)
	c.T(a)
	c.Append(circuit.Tdg, []int{b})
	c.CX(a, b)
}

// CuccaroAdder builds the Cuccaro ripple-carry adder summing two bits-wide
// registers, using 2·bits + 2 qubits (registers a and b interleaved with a
// carry-in and carry-out qubit). Toffolis use the standard 6-CX
// decomposition, so the CX count is 16·bits + 1 (497 for the 64-qubit,
// 31-bit instance; Table II's 545 presumably includes input preparation —
// the abstract spec pins the paper's value).
//
// Register layout: qubit 0 is carry-in; qubits 1..bits are register b;
// qubits bits+1..2·bits are register a; qubit 2·bits+1 is carry-out.
func CuccaroAdder(bits int) (*circuit.Circuit, error) {
	p, err := CuccaroAdderProgram(bits)
	if err != nil {
		return nil, err
	}
	return p.Circuit()
}

// CuccaroAdderProgram is CuccaroAdder as a streaming-capable program.
func CuccaroAdderProgram(bits int) (circuit.Program, error) {
	if bits < 1 {
		return circuit.Program{}, verr.Inputf("apps: adder width must be positive, got %d", bits)
	}
	n := 2*bits + 2
	return circuit.Program{
		Name:   fmt.Sprintf("adder%d", bits),
		Qubits: n,
		Body: func(c circuit.Builder) {
			cin := 0
			b := func(i int) int { return 1 + i }
			a := func(i int) int { return 1 + bits + i }
			cout := 2*bits + 1

			maj := func(x, y, z int) {
				c.CX(z, y)
				c.CX(z, x)
				appendCCX(c, x, y, z)
			}
			uma := func(x, y, z int) {
				appendCCX(c, x, y, z)
				c.CX(z, x)
				c.CX(x, y)
			}

			maj(cin, b(0), a(0))
			for i := 1; i < bits; i++ {
				maj(a(i-1), b(i), a(i))
			}
			c.CX(a(bits-1), cout)
			for i := bits - 1; i >= 1; i-- {
				uma(a(i-1), b(i), a(i))
			}
			uma(cin, b(0), a(0))
		},
	}, nil
}

// Grover builds Grover's search (the paper's "SquareRoot") over dataQubits
// search qubits with the given number of amplification iterations. The
// oracle marks the all-ones state with a multi-controlled Z implemented via
// a CCX ladder over dataQubits−2 ancilla qubits, and the diffuser inverts
// about the mean with the same ladder, so the circuit uses
// 2·dataQubits − 2 qubits total — 78 for dataQubits = 40, matching
// Table II's SquareRoot width.
func Grover(dataQubits, iterations int) (*circuit.Circuit, error) {
	p, err := GroverProgram(dataQubits, iterations)
	if err != nil {
		return nil, err
	}
	return p.Circuit()
}

// GroverProgram is Grover as a streaming-capable program.
func GroverProgram(dataQubits, iterations int) (circuit.Program, error) {
	if dataQubits < 3 {
		return circuit.Program{}, verr.Inputf("apps: Grover needs at least 3 data qubits, got %d", dataQubits)
	}
	if iterations < 1 {
		return circuit.Program{}, verr.Inputf("apps: Grover needs at least 1 iteration, got %d", iterations)
	}
	n := 2*dataQubits - 2
	return circuit.Program{
		Name:   fmt.Sprintf("grover%dx%d", dataQubits, iterations),
		Qubits: n,
		Body: func(c circuit.Builder) {
			anc := func(i int) int { return dataQubits + i } // dataQubits-2 ancillas

			// multiControlledZ applies Z conditioned on all data qubits
			// being 1, via a compute/uncompute CCX ladder into the ancilla
			// register.
			multiControlledZ := func() {
				appendCCX(c, 0, 1, anc(0))
				for i := 2; i < dataQubits-1; i++ {
					appendCCX(c, i, anc(i-2), anc(i-1))
				}
				// Z on the last data qubit controlled by the final ancilla.
				c.CZ(anc(dataQubits-3), dataQubits-1)
				for i := dataQubits - 2; i >= 2; i-- {
					appendCCX(c, i, anc(i-2), anc(i-1))
				}
				appendCCX(c, 0, 1, anc(0))
			}

			for q := 0; q < dataQubits; q++ {
				c.H(q)
			}
			for it := 0; it < iterations; it++ {
				// Oracle: phase-flip the all-ones state.
				multiControlledZ()
				// Diffuser: H X (MCZ) X H on the data register.
				for q := 0; q < dataQubits; q++ {
					c.H(q)
					c.X(q)
				}
				multiControlledZ()
				for q := 0; q < dataQubits; q++ {
					c.X(q)
					c.H(q)
				}
			}
		},
	}, nil
}

// GHZ builds the n-qubit Greenberger–Horne–Zeilinger state preparation:
// one Hadamard followed by a CX ladder. It is not part of Table II but is
// the canonical smoke-test circuit used throughout the test benches and
// examples.
func GHZ(n int) (*circuit.Circuit, error) {
	p, err := GHZProgram(n)
	if err != nil {
		return nil, err
	}
	return p.Circuit()
}

// GHZProgram is GHZ as a streaming-capable program.
func GHZProgram(n int) (circuit.Program, error) {
	if n < 1 {
		return circuit.Program{}, verr.Inputf("apps: GHZ needs at least 1 qubit, got %d", n)
	}
	return circuit.Program{
		Name:   fmt.Sprintf("ghz%d", n),
		Qubits: n,
		Body: func(c circuit.Builder) {
			c.H(0)
			for i := 0; i+1 < n; i++ {
				c.CX(i, i+1)
			}
		},
	}, nil
}
