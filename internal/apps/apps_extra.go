package apps

import (
	"fmt"
	"math"

	"velociti/internal/circuit"
	"velociti/internal/stats"
	"velociti/internal/verr"
)

// This file extends the Table II catalog with further canonical workloads
// used by the examples and tests: quantum phase estimation, a
// hardware-efficient variational ansatz, and W-state preparation. They are
// not part of the paper's evaluation but exercise the same IR and are
// functionally validated against the state-vector simulator.

// QPE builds quantum phase estimation over countQubits counting qubits for
// the single-qubit unitary U = diag(1, e^{2πi·phase}): Hadamards on the
// counting register, controlled powers U^(2^k), and an inverse QFT on the
// counting register. The eigenstate register is one qubit prepared in |1⟩
// (U's eigenvector with eigenvalue e^{2πi·phase}). Total qubits:
// countQubits + 1, with the eigenstate qubit last. Measuring the counting
// register (LSB = qubit 0 holding the 2^(t-1) power) yields
// round(phase·2^t) when the phase is exactly representable.
func QPE(countQubits int, phase float64) (*circuit.Circuit, error) {
	if countQubits < 1 {
		return nil, verr.Inputf("apps: QPE needs at least 1 counting qubit, got %d", countQubits)
	}
	n := countQubits + 1
	eig := countQubits
	c := circuit.New(fmt.Sprintf("qpe%d", countQubits), n)
	c.X(eig) // prepare the |1⟩ eigenstate
	for q := 0; q < countQubits; q++ {
		c.H(q)
	}
	// Controlled powers: qubit q controls U^(2^q). Under this package's
	// QFT convention (amp(v) ∝ ω^(rev(x)·v)) the inverse QFT then leaves
	// the counting register in |rev(round(phase·2^t))⟩ — callers decode
	// by bit-reversing the readout.
	for q := 0; q < countQubits; q++ {
		theta := 2 * math.Pi * phase * math.Pow(2, float64(q))
		c.CP(theta, q, eig)
	}
	// Inverse QFT on the counting register: reversed QFT with negated
	// angles.
	appendInverseQFT(c, countQubits)
	return c, c.Err()
}

// appendInverseQFT emits the adjoint of this package's QFT construction
// restricted to qubits [0, m).
func appendInverseQFT(c *circuit.Circuit, m int) {
	for i := m - 1; i >= 0; i-- {
		for j := m - 1; j > i; j-- {
			theta := -math.Pi / math.Pow(2, float64(j-i))
			appendCP(c, theta, j, i)
		}
		c.H(i)
	}
}

// VQEAnsatz builds a hardware-efficient variational ansatz: `layers`
// repetitions of per-qubit RY·RZ rotations followed by a linear CX
// entangler ladder, with a final rotation layer. Angles are drawn from the
// seeded generator, standing in for a classical optimizer's parameters.
// Gate counts: 2·n·(layers+1) one-qubit rotations and (n−1)·layers CX.
func VQEAnsatz(n, layers int, seed int64) (*circuit.Circuit, error) {
	if n < 2 {
		return nil, verr.Inputf("apps: VQE ansatz needs at least 2 qubits, got %d", n)
	}
	if layers < 1 {
		return nil, verr.Inputf("apps: VQE ansatz needs at least 1 layer, got %d", layers)
	}
	r := stats.NewRand(seed)
	c := circuit.New(fmt.Sprintf("vqe%dx%d", n, layers), n)
	rotate := func() {
		for q := 0; q < n; q++ {
			c.RY(r.Float64()*2*math.Pi, q)
			c.RZ(r.Float64()*2*math.Pi, q)
		}
	}
	for l := 0; l < layers; l++ {
		rotate()
		for q := 0; q+1 < n; q++ {
			c.CX(q, q+1)
		}
	}
	rotate()
	return c, c.Err()
}

// WState prepares the n-qubit W state (the uniform superposition of all
// one-hot basis states) with the standard cascade: qubit 0 starts in |1⟩
// and the excitation is coherently shared down the register via controlled
// rotations (decomposed into RY and CX) followed by CNOTs.
func WState(n int) (*circuit.Circuit, error) {
	if n < 1 {
		return nil, verr.Inputf("apps: W state needs at least 1 qubit, got %d", n)
	}
	c := circuit.New(fmt.Sprintf("w%d", n), n)
	c.X(0)
	for k := 1; k < n; k++ {
		// Controlled-RY(θ) from qubit k−1 onto qubit k, then CX back to
		// shift the excitation. The cosine component keeps the
		// excitation at position k−1 with final amplitude 1/√n, so
		// cos(θ/2) = sqrt(1/(n−k+1)) of the remaining amplitude.
		theta := 2 * math.Acos(math.Sqrt(1/float64(n-k+1)))
		appendCRY(c, theta, k-1, k)
		c.CX(k, k-1)
	}
	return c, c.Err()
}

// appendCRY emits a controlled-RY via the standard 2-CX decomposition.
func appendCRY(c *circuit.Circuit, theta float64, ctrl, tgt int) {
	c.RY(theta/2, tgt)
	c.CX(ctrl, tgt)
	c.RY(-theta/2, tgt)
	c.CX(ctrl, tgt)
}
