package apps

import (
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/verr"
)

// must returns an unwrapper for a generator result, failing the test on
// error: must[*circuit.Circuit](t)(QFT(8)). Go only allows a multi-value
// call as the sole argument, hence the curried shape.
func must[T any](t testing.TB) func(T, error) T {
	return func(v T, err error) T {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return v
	}
}

// mc unwraps circuit-generator results, the common case.
func mc(t testing.TB) func(*circuit.Circuit, error) *circuit.Circuit {
	return must[*circuit.Circuit](t)
}

// mustReject asserts that a generator rejects its arguments with an
// input-kind error (not a panic — the errors-not-panics contract).
func mustReject(t *testing.T, name string, f func() error) {
	t.Helper()
	err := f()
	if err == nil {
		t.Errorf("%s: expected an error", name)
		return
	}
	if !verr.IsInput(err) {
		t.Errorf("%s: error should be input-kind, got %v", name, err)
	}
}

// Table II pins (qubits, 2-qubit gates) for every workload.
func TestPaperSpecsMatchTableII(t *testing.T) {
	want := []struct {
		name      string
		qubits, p int
	}{
		{"Supremacy", 64, 560},
		{"QAOA", 64, 1260},
		{"SquareRoot", 78, 1028},
		{"QFT", 64, 4032},
		{"Adder", 64, 545},
		{"BV", 64, 64},
	}
	specs := PaperSpecs()
	if len(specs) != len(want) {
		t.Fatalf("spec count = %d", len(specs))
	}
	for i, w := range want {
		s := specs[i]
		if s.Name != w.name || s.Qubits != w.qubits || s.TwoQubitGates != w.p {
			t.Errorf("spec %d = %+v, want %s/%d qubits/%d 2q gates", i, s, w.name, w.qubits, w.p)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("spec %s invalid: %v", s.Name, err)
		}
		if s.OneQubitGates != 0 {
			t.Errorf("spec %s: q = %d; the paper's serial anchors pin q = 0", s.Name, s.OneQubitGates)
		}
	}
}

func TestCatalogBuildersAgreeWithSpecWidth(t *testing.T) {
	for _, a := range Catalog() {
		c := mc(t)(a.Build())
		if c.NumQubits() != a.Spec.Qubits {
			t.Errorf("%s: generator width %d != spec %d", a.Name(), c.NumQubits(), a.Spec.Qubits)
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("QFT")
	if err != nil || a.Spec.TwoQubitGates != 4032 {
		t.Fatalf("ByName(QFT) = %+v, %v", a.Spec, err)
	}
	if _, err := ByName("Shor"); err == nil {
		t.Fatalf("unknown app should error")
	}
}

// QFT(n) must produce exactly n(n−1) CX gates and n + 3n(n−1)/2 1q gates.
func TestQFTGateCounts(t *testing.T) {
	for _, n := range []int{2, 4, 8, 64} {
		c := mc(t)(QFT(n))
		wantP := n * (n - 1)
		if got := c.NumTwoQubitGates(); got != wantP {
			t.Errorf("QFT(%d): 2q gates = %d, want %d", n, got, wantP)
		}
		wantQ := n + 3*n*(n-1)/2
		if got := c.NumOneQubitGates(); got != wantQ {
			t.Errorf("QFT(%d): 1q gates = %d, want %d", n, got, wantQ)
		}
	}
	// Table II: the 64-qubit QFT has 4032 2-qubit gates.
	if got := mc(t)(QFT(64)).NumTwoQubitGates(); got != 4032 {
		t.Fatalf("QFT(64) 2q gates = %d, want 4032", got)
	}
}

func TestSupremacyMatchesTableII(t *testing.T) {
	c := mc(t)(Supremacy(8, 8, 20, 1))
	if c.NumQubits() != 64 {
		t.Fatalf("width = %d", c.NumQubits())
	}
	if got := c.NumTwoQubitGates(); got != 560 {
		t.Fatalf("Supremacy 2q gates = %d, want 560", got)
	}
	if got := c.NumOneQubitGates(); got != 1344 {
		t.Fatalf("Supremacy 1q gates = %d, want 1344 (64 H + 20 cycles × 64)", got)
	}
}

func TestSupremacyEdgePatternsStayOnGrid(t *testing.T) {
	rows, cols := 3, 5
	c := mc(t)(Supremacy(rows, cols, 8, 2))
	for _, g := range c.Gates() {
		if !g.IsTwoQubit() {
			continue
		}
		a, b := g.Qubits[0], g.Qubits[1]
		ra, ca := a/cols, a%cols
		rb, cb := b/cols, b%cols
		manhattan := abs(ra-rb) + abs(ca-cb)
		if manhattan != 1 {
			t.Fatalf("CZ %v not between grid neighbours", g)
		}
	}
}

func TestSupremacyDeterministicPerSeed(t *testing.T) {
	a := mc(t)(Supremacy(4, 4, 6, 7))
	b := mc(t)(Supremacy(4, 4, 6, 7))
	if a.String() != b.String() {
		t.Fatalf("same seed should reproduce the circuit")
	}
	c := mc(t)(Supremacy(4, 4, 6, 8))
	if a.String() == c.String() {
		t.Fatalf("different seed should change 1q gate choices")
	}
}

func TestQAOAMatchesTableII(t *testing.T) {
	edges := must[[][2]int](t)(RandomGraph(64, 315, 1))
	c := mc(t)(QAOA(64, edges, 2, 1))
	if got := c.NumTwoQubitGates(); got != 1260 {
		t.Fatalf("QAOA 2q gates = %d, want 1260 (2 rounds × 315 edges × 2 CX)", got)
	}
	if got := c.NumOneQubitGates(); got != 822 {
		t.Fatalf("QAOA 1q gates = %d, want 822", got)
	}
}

func TestRandomGraphProperties(t *testing.T) {
	edges := must[[][2]int](t)(RandomGraph(10, 20, 3))
	if len(edges) != 20 {
		t.Fatalf("edge count = %d", len(edges))
	}
	seen := map[[2]int]bool{}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not canonical", e)
		}
		if e[0] < 0 || e[1] > 9 {
			t.Fatalf("edge %v out of range", e)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
	// Complete graph boundary.
	full := must[[][2]int](t)(RandomGraph(5, 10, 1))
	if len(full) != 10 {
		t.Fatalf("complete graph edges = %d", len(full))
	}
	mustReject(t, "too many edges", func() error { _, err := RandomGraph(4, 7, 1); return err })
}

func TestBernsteinVaziraniCounts(t *testing.T) {
	c := mc(t)(BernsteinVazirani(64, nil))
	if c.NumQubits() != 64 {
		t.Fatalf("width = %d", c.NumQubits())
	}
	// All-ones secret over 63 data bits → 63 CX (Table II rounds to 64).
	if got := c.NumTwoQubitGates(); got != 63 {
		t.Fatalf("BV 2q gates = %d, want 63", got)
	}
	if got := c.NumOneQubitGates(); got != 128 {
		t.Fatalf("BV 1q gates = %d, want 128", got)
	}
}

func TestBernsteinVaziraniCustomSecret(t *testing.T) {
	secret := []bool{true, false, true, false}
	c := mc(t)(BernsteinVazirani(5, secret))
	if got := c.NumTwoQubitGates(); got != 2 {
		t.Fatalf("2q gates = %d, want one per set bit", got)
	}
	for _, g := range c.Gates() {
		if g.IsTwoQubit() && g.Qubits[1] != 4 {
			t.Fatalf("oracle CX must target the ancilla: %v", g)
		}
	}
}

func TestBernsteinVaziraniValidation(t *testing.T) {
	mustReject(t, "too small", func() error { _, err := BernsteinVazirani(1, nil); return err })
	mustReject(t, "secret length", func() error { _, err := BernsteinVazirani(4, []bool{true}); return err })
}

func TestCuccaroAdderCounts(t *testing.T) {
	c := mc(t)(CuccaroAdder(31))
	if c.NumQubits() != 64 {
		t.Fatalf("width = %d, want 64 (2·31+2)", c.NumQubits())
	}
	// 16·bits + 1 CX with the 6-CX Toffoli decomposition.
	if got := c.NumTwoQubitGates(); got != 16*31+1 {
		t.Fatalf("Adder 2q gates = %d, want %d", got, 16*31+1)
	}
	if got := c.NumOneQubitGates(); got != 62*9 {
		t.Fatalf("Adder 1q gates = %d, want %d (62 Toffolis × 9)", got, 62*9)
	}
}

func TestCuccaroAdderValidation(t *testing.T) {
	mustReject(t, "zero bits", func() error { _, err := CuccaroAdder(0); return err })
}

func TestGroverCounts(t *testing.T) {
	c := mc(t)(Grover(40, 1))
	if c.NumQubits() != 78 {
		t.Fatalf("width = %d, want 78 (2·40−2)", c.NumQubits())
	}
	// Per multi-controlled Z: 76 Toffolis (6 CX each) + 1 CZ = 457; two
	// MCZs per iteration → 914.
	if got := c.NumTwoQubitGates(); got != 914 {
		t.Fatalf("Grover 2q gates = %d, want 914", got)
	}
}

func TestGroverValidation(t *testing.T) {
	mustReject(t, "small", func() error { _, err := Grover(2, 1); return err })
	mustReject(t, "no iterations", func() error { _, err := Grover(5, 0); return err })
}

func TestGHZ(t *testing.T) {
	c := mc(t)(GHZ(8))
	if c.NumTwoQubitGates() != 7 || c.NumOneQubitGates() != 1 {
		t.Fatalf("GHZ counts = %d/%d", c.NumOneQubitGates(), c.NumTwoQubitGates())
	}
	if c.Depth() != 8 {
		t.Fatalf("GHZ depth = %d, want 8 (fully serial ladder)", c.Depth())
	}
	mustReject(t, "zero", func() error { _, err := GHZ(0); return err })
}

func TestAllGeneratorsProduceValidCircuits(t *testing.T) {
	gens := map[string]*circuit.Circuit{
		"qft":       mc(t)(QFT(8)),
		"supremacy": mc(t)(Supremacy(3, 3, 4, 1)),
		"qaoa":      mc(t)(QAOA(6, must[[][2]int](t)(RandomGraph(6, 5, 1)), 1, 1)),
		"bv":        mc(t)(BernsteinVazirani(6, nil)),
		"adder":     mc(t)(CuccaroAdder(3)),
		"grover":    mc(t)(Grover(4, 2)),
		"ghz":       mc(t)(GHZ(5)),
	}
	for name, c := range gens {
		if c.NumGates() == 0 {
			t.Errorf("%s: empty circuit", name)
		}
		if c.Depth() <= 0 {
			t.Errorf("%s: nonpositive depth", name)
		}
		// Every gate already validated by the builder; smoke the
		// dependency extraction too.
		edges := c.DependencyEdges()
		for _, e := range edges {
			if e[0] >= e[1] {
				t.Errorf("%s: dependency edge %v not forward", name, e)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
