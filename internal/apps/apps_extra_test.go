// Validation of the extended app generators against the state-vector
// simulator; external test package to avoid an import cycle with statevec.
package apps_test

import (
	"math"
	"testing"

	"velociti/internal/apps"
	"velociti/internal/circuit"
	"velociti/internal/statevec"
	"velociti/internal/verr"
)

// mx unwraps a circuit-generator result, failing the test on error.
func mx(t testing.TB) func(*circuit.Circuit, error) *circuit.Circuit {
	return func(c *circuit.Circuit, err error) *circuit.Circuit {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return c
	}
}

func TestQPERecoversExactPhases(t *testing.T) {
	const tBits = 4
	N := 1 << tBits
	for _, k := range []int{0, 1, 3, 7, 12, 15} {
		phase := float64(k) / float64(N)
		c := mx(t)(apps.QPE(tBits, phase))
		s, err := statevec.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		// The counting register (qubits 0..tBits-1) must read a definite
		// value with probability ≈ 1; find it and decode.
		countMask := uint64(N - 1)
		bestVal, bestP := uint64(0), 0.0
		for v := uint64(0); v < uint64(N); v++ {
			if p := s.MarginalProbability(countMask, v); p > bestP {
				bestVal, bestP = v, p
			}
		}
		if bestP < 0.99 {
			t.Fatalf("phase %d/%d: peak probability %v too diffuse", k, N, bestP)
		}
		// Decode: the QFT convention leaves the result bit-reversed in
		// the register (qubit 0 = most significant counting bit).
		decoded := 0
		for b := 0; b < tBits; b++ {
			if bestVal&(1<<uint(b)) != 0 {
				decoded |= 1 << uint(tBits-1-b)
			}
		}
		if decoded != k {
			t.Fatalf("phase %d/%d decoded as %d (raw %04b, p=%v)", k, N, decoded, bestVal, bestP)
		}
	}
}

func TestQPEGateShape(t *testing.T) {
	c := mx(t)(apps.QPE(5, 0.25))
	if c.NumQubits() != 6 {
		t.Fatalf("width = %d", c.NumQubits())
	}
	if c.NumTwoQubitGates() == 0 || c.NumOneQubitGates() == 0 {
		t.Fatalf("degenerate QPE: %v", c.Spec())
	}
	mustRejectX(t, "no counting qubits", func() error { _, err := apps.QPE(0, 0.5); return err })
}

func TestVQEAnsatzCounts(t *testing.T) {
	c := mx(t)(apps.VQEAnsatz(8, 3, 1))
	if got := c.NumTwoQubitGates(); got != 7*3 {
		t.Fatalf("CX count = %d, want 21", got)
	}
	if got := c.NumOneQubitGates(); got != 2*8*4 {
		t.Fatalf("rotation count = %d, want 64", got)
	}
	mustRejectX(t, "narrow", func() error { _, err := apps.VQEAnsatz(1, 1, 1); return err })
	mustRejectX(t, "no layers", func() error { _, err := apps.VQEAnsatz(4, 0, 1); return err })
}

func TestVQEAnsatzDeterministicAndUnitary(t *testing.T) {
	a := mx(t)(apps.VQEAnsatz(5, 2, 9))
	b := mx(t)(apps.VQEAnsatz(5, 2, 9))
	if a.String() != b.String() {
		t.Fatalf("same seed must reproduce the ansatz")
	}
	s, err := statevec.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Fatalf("norm = %v", s.Norm())
	}
}

func TestWStateAmplitudes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		c := mx(t)(apps.WState(n))
		s, err := statevec.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		want := 1.0 / float64(n)
		total := 0.0
		for k := 0; k < n; k++ {
			p := s.Probability(1 << uint(k))
			if math.Abs(p-want) > 1e-9 {
				t.Fatalf("W%d: P(e_%d) = %v, want %v", n, k, p, want)
			}
			total += p
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("W%d: one-hot states carry %v of the probability", n, total)
		}
	}
	mustRejectX(t, "zero", func() error { _, err := apps.WState(0); return err })
}

// mustRejectX asserts a generator rejects its arguments with an input-kind
// error rather than panicking.
func mustRejectX(t *testing.T, name string, f func() error) {
	t.Helper()
	err := f()
	if err == nil {
		t.Errorf("%s: expected an error", name)
		return
	}
	if !verr.IsInput(err) {
		t.Errorf("%s: error should be input-kind, got %v", name, err)
	}
}
