package schedule

// Annealed: the search-based spec-mode placer. Gate synthesis is the
// paper's random baseline — the workload abstraction (§III-A) fixes only
// the gate counts, so the sequence itself stays calibration-compatible —
// but the placer additionally implements LayoutSearcher, which the stage
// pipeline (internal/core) uses to re-place the layout by simulated
// annealing against the synthesized circuit before binding. The searched
// layout minimizes the dependency DAG's longest path under the backend's
// delta weights (see internal/placement.AnnealLayout), not merely the
// cross-chain gate count.

import (
	"fmt"
	"math/rand"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/stats"
	"velociti/internal/ti"
)

// LayoutSearcher is the optional Placer extension the stage pipeline
// consults after synthesis: given the evaluator for the synthesized
// circuit and the trial's starting layout, it returns an improved layout
// for the same device. Implementations must be deterministic in seed —
// the pipeline derives it from the trial seed — and must not modify the
// input layout. Placers without the interface skip the search stage
// entirely.
type LayoutSearcher interface {
	SearchLayout(ev *perf.Evaluator, l *ti.Layout, backend perf.TimingBackend, seed int64) (*ti.Layout, error)
}

// Annealed synthesizes gates exactly like Random and then searches for a
// better layout by simulated annealing. It deliberately does not implement
// SweepPlacer: the searched layout differs per circuit, so batched
// synthesis over a shared layout cannot apply — the sweep layers fall back
// to per-cell evaluation.
type Annealed struct {
	// Latencies is the annealing objective's timing model; the zero value
	// selects perf.DefaultLatencies. This is the objective only — reported
	// results are always priced by the pipeline's own backend and model.
	Latencies perf.Latencies
	// Moves bounds the annealing swap attempts; zero selects the default
	// budget of placement.AnnealLayout.
	Moves int
}

// Name implements Placer.
func (Annealed) Name() string { return "annealed" }

// Place implements Placer: synthesis is bit-identical to Random's (same
// stream draws), so annealed-vs-random comparisons isolate the layout
// search.
func (p Annealed) Place(spec circuit.Spec, l *ti.Layout, r *rand.Rand) (*circuit.Circuit, error) {
	return Random{}.Place(spec, l, r)
}

// SearchLayout implements LayoutSearcher by annealing qubit-swap moves
// scored with the incremental delta evaluator. The seed fully determines
// the search; the trial's own RNG stream is untouched.
func (p Annealed) SearchLayout(ev *perf.Evaluator, l *ti.Layout, backend perf.TimingBackend, seed int64) (*ti.Layout, error) {
	lat := p.Latencies
	if lat == (perf.Latencies{}) {
		lat = perf.DefaultLatencies()
	}
	searched, _, err := placement.AnnealLayout(ev, l, backend, lat, stats.NewRand(seed), placement.AnnealOptions{Moves: p.Moves})
	return searched, err
}

// CacheKey implements cache.Keyer. Synthesis is Random's, but the key must
// still be distinct: the pipeline's search artifacts are keyed per placer,
// and the objective's knobs select different layouts.
func (p Annealed) CacheKey() string {
	lat := p.Latencies
	if lat == (perf.Latencies{}) {
		lat = perf.DefaultLatencies()
	}
	moves := p.Moves
	if moves < 0 {
		moves = 0
	}
	return fmt.Sprintf("annealed/obj={%s}/m=%d", lat.CacheKey(), moves)
}
