package schedule

import (
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/stats"
	"velociti/internal/ti"
)

func layout16x4(t *testing.T) *ti.Layout {
	t.Helper()
	d, err := ti.DeviceFor(64, 16, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	l, err := placement.Sequential{}.Place(d, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func spec(n, q, p int) circuit.Spec {
	return circuit.Spec{Name: "test", Qubits: n, OneQubitGates: q, TwoQubitGates: p}
}

// checkShape verifies counts and operand ranges common to all placers.
func checkShape(t *testing.T, name string, c *circuit.Circuit, s circuit.Spec) {
	t.Helper()
	if got := c.NumOneQubitGates(); got != s.OneQubitGates {
		t.Fatalf("%s: 1q gates = %d, want %d", name, got, s.OneQubitGates)
	}
	if got := c.NumTwoQubitGates(); got != s.TwoQubitGates {
		t.Fatalf("%s: 2q gates = %d, want %d", name, got, s.TwoQubitGates)
	}
	for _, g := range c.Gates() {
		for _, q := range g.Qubits {
			if q >= s.Qubits {
				t.Fatalf("%s: gate %v uses qubit beyond spec width %d", name, g, s.Qubits)
			}
		}
		if g.IsTwoQubit() && g.Qubits[0] == g.Qubits[1] {
			t.Fatalf("%s: degenerate 2q gate %v", name, g)
		}
	}
}

func TestAllPlacersProduceWellFormedCircuits(t *testing.T) {
	l := layout16x4(t)
	lat := perf.DefaultLatencies()
	s := spec(64, 20, 200)
	for _, p := range All(lat) {
		c, err := p.Place(s, l, stats.NewRand(42))
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		checkShape(t, p.Name(), c, s)
		if c.Name != "test" {
			t.Errorf("%s: circuit name = %q", p.Name(), c.Name)
		}
	}
}

func TestRandomPlacerDeterministicPerSeed(t *testing.T) {
	l := layout16x4(t)
	s := spec(64, 10, 50)
	c1, _ := Random{}.Place(s, l, stats.NewRand(9))
	c2, _ := Random{}.Place(s, l, stats.NewRand(9))
	if c1.String() != c2.String() {
		t.Fatalf("same seed must reproduce the same circuit")
	}
	c3, _ := Random{}.Place(s, l, stats.NewRand(10))
	if c1.String() == c3.String() {
		t.Fatalf("different seeds should differ")
	}
}

// The cross-chain probability of a uniform pair over 64 qubits in 16-ion
// chains is 1 − 15/63 ≈ 0.76; random placement must produce weak gates at
// roughly that rate — the mechanism behind the paper's chain-length effect.
func TestRandomPlacerCrossChainRate(t *testing.T) {
	l := layout16x4(t)
	s := spec(64, 0, 2000)
	c, err := Random{}.Place(s, l, stats.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	w := perf.WeakGates(c, l)
	frac := float64(w) / 2000
	if frac < 0.70 || frac > 0.83 {
		t.Fatalf("cross-chain fraction = %v, want ≈ 0.76", frac)
	}
}

func TestWeakAvoidingNeverUsesWeakLinks(t *testing.T) {
	l := layout16x4(t)
	s := spec(64, 10, 300)
	c, err := WeakAvoiding{}.Place(s, l, stats.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, "weak-avoiding", c, s)
	if w := perf.WeakGates(c, l); w != 0 {
		t.Fatalf("weak-avoiding placer used %d weak gates", w)
	}
}

func TestWeakAvoidingFailsWithoutLocalPairs(t *testing.T) {
	// Chains of length 1: every 2q pair crosses a weak link.
	d, err := ti.NewDevice(1, 4, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	l, err := placement.Sequential{}.Place(d, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (WeakAvoiding{}).Place(spec(4, 0, 5), l, stats.NewRand(1)); err == nil {
		t.Fatalf("expected failure when no intra-chain pairs exist")
	}
}

func TestEdgeConstrainedRespectsLegality(t *testing.T) {
	l := layout16x4(t)
	s := spec(64, 5, 500)
	c, err := EdgeConstrained{}.Place(s, l, stats.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, "edge-constrained", c, s)
	for _, g := range c.Gates() {
		if g.IsTwoQubit() && !l.Legal2Q(g.Qubits[0], g.Qubits[1]) {
			t.Fatalf("edge-constrained emitted illegal gate %v", g)
		}
	}
	// Weak usage is far rarer than Random's ≈76% — edge pairs are 4 of
	// 484 legal pairs (< 1%).
	if w := perf.WeakGates(c, l); float64(w)/500 > 0.10 {
		t.Fatalf("edge-constrained weak fraction = %v, should be rare", float64(w)/500)
	}
}

func TestLoadBalancedBeatsRandomOnAverage(t *testing.T) {
	l := layout16x4(t)
	lat := perf.DefaultLatencies()
	s := spec(64, 0, 400)
	var randTotal, lbTotal float64
	const runs = 10
	for i := 0; i < runs; i++ {
		cr, err := Random{}.Place(s, l, stats.NewRand(stats.SplitSeed(1, i)))
		if err != nil {
			t.Fatal(err)
		}
		cl, err := LoadBalanced{Latencies: lat}.Place(s, l, stats.NewRand(stats.SplitSeed(2, i)))
		if err != nil {
			t.Fatal(err)
		}
		randTotal += perf.ParallelTime(cr, l, lat)
		lbTotal += perf.ParallelTime(cl, l, lat)
	}
	if lbTotal >= randTotal {
		t.Fatalf("load-balanced mean %v should beat random mean %v", lbTotal/runs, randTotal/runs)
	}
}

func TestLoadBalancedDefaultsCandidates(t *testing.T) {
	l := layout16x4(t)
	lat := perf.DefaultLatencies()
	c, err := LoadBalanced{Latencies: lat}.Place(spec(64, 5, 20), l, stats.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, "load-balanced", c, spec(64, 5, 20))
}

func TestLoadBalancedValidatesLatencies(t *testing.T) {
	l := layout16x4(t)
	_, err := LoadBalanced{Latencies: perf.Latencies{WeakPenalty: 0.1, TwoQubit: 1}}.Place(spec(64, 0, 5), l, stats.NewRand(1))
	if err == nil {
		t.Fatalf("invalid latencies should fail")
	}
}

func TestPlacerValidation(t *testing.T) {
	l := layout16x4(t)
	cases := []circuit.Spec{
		{Name: "zero-qubits", Qubits: 0},
		{Name: "too-wide", Qubits: 200, TwoQubitGates: 1},
		{Name: "negative", Qubits: 4, OneQubitGates: -1},
	}
	for _, s := range cases {
		for _, p := range All(perf.DefaultLatencies()) {
			if _, err := p.Place(s, l, stats.NewRand(1)); err == nil {
				t.Errorf("%s: spec %q should fail", p.Name(), s.Name)
			}
		}
	}
}

func TestPlacerRespectsSpecSubsetOfLayout(t *testing.T) {
	// Layout places 64 qubits, spec only uses 10: gates must stay within
	// the first 10 qubits.
	l := layout16x4(t)
	s := spec(10, 5, 20)
	for _, p := range All(perf.DefaultLatencies()) {
		c, err := p.Place(s, l, stats.NewRand(2))
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		checkShape(t, p.Name(), c, s)
	}
}

func TestPlacerSingleQubitSpec(t *testing.T) {
	l := layout16x4(t)
	s := spec(1, 7, 0)
	c, err := Random{}.Place(s, l, stats.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 7 || c.NumTwoQubitGates() != 0 {
		t.Fatalf("single-qubit spec circuit: %v", c.Spec())
	}
}

func TestUniformPairDistribution(t *testing.T) {
	r := stats.NewRand(6)
	counts := map[[2]int]int{}
	const trials = 30000
	for i := 0; i < trials; i++ {
		a, b := uniformPair(r, 5)
		if a == b || a < 0 || b < 0 || a >= 5 || b >= 5 {
			t.Fatalf("bad pair (%d,%d)", a, b)
		}
		if a > b {
			a, b = b, a
		}
		counts[[2]int{a, b}]++
	}
	if len(counts) != 10 {
		t.Fatalf("pairs hit = %d, want all 10", len(counts))
	}
	for p, n := range counts {
		frac := float64(n) / trials
		if frac < 0.07 || frac > 0.13 {
			t.Fatalf("pair %v frequency %v, want ≈ 0.10", p, frac)
		}
	}
}

func TestOpOrderCountsAndShuffle(t *testing.T) {
	r := stats.NewRand(5)
	ops := opOrderInto(nil, spec(4, 30, 70), r)
	if len(ops) != 100 {
		t.Fatalf("ops length = %d", len(ops))
	}
	ones, twos := 0, 0
	for _, a := range ops {
		switch a {
		case 1:
			ones++
		case 2:
			twos++
		default:
			t.Fatalf("bad arity %d", a)
		}
	}
	if ones != 30 || twos != 70 {
		t.Fatalf("counts = %d/%d", ones, twos)
	}
	all1 := true
	for _, a := range ops[:30] {
		if a != 1 {
			all1 = false
			break
		}
	}
	if all1 {
		t.Fatalf("op order does not appear shuffled")
	}
	// The packed representation must consume the generator identically:
	// same seed, same arity sequence.
	bits := newOpBits(spec(4, 30, 70), stats.NewRand(5))
	if bits.n != len(ops) {
		t.Fatalf("opBits length = %d, want %d", bits.n, len(ops))
	}
	for i, a := range ops {
		if bits.arity(i) != a {
			t.Fatalf("opBits arity[%d] = %d, want %d", i, bits.arity(i), a)
		}
	}
}

func TestByName(t *testing.T) {
	lat := perf.DefaultLatencies()
	for _, name := range []string{"random", "weak-avoiding", "load-balanced", "edge-constrained"} {
		p, err := ByName(name, lat)
		if err != nil || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("optimal", lat); err == nil {
		t.Errorf("unknown placer should error")
	}
}
