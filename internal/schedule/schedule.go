// Package schedule implements VelociTI's gate placement and operation
// ordering (§III-B stage 2: the "op. list" of the hardware-implementation
// module).
//
// VelociTI abstracts a workload to its boundary conditions — the number of
// qubits and the counts of 1- and 2-qubit gates (Table I). A Placer turns
// those counts plus a qubit layout into a concrete gate sequence whose
// cross-chain ("weak-link") gates the performance models charge at α·γ.
//
// The paper's baseline is purely random scheduling: each 2-qubit gate
// draws a qubit pair uniformly at random, and pairs landing on different
// chains become weak-link operations (the physical communication happens
// over the link joining the chains). This calibration reproduces the
// paper's reported sensitivities — e.g. the 20% speedup from chain length
// 8→32 (Figure 7) follows directly from the cross-chain probability
// 1 − (L−1)/(n−1) falling as chains lengthen, and Figure 9(a)'s 48-qubit
// threshold falls exactly where a workload stops fitting in one 32-ion
// chain. The paper observes that random scheduling can cost more than 50%
// performance on low-density circuits, motivating smarter schedulers
// (§VI-B); the LoadBalanced and WeakAvoiding placers are such extensions,
// and EdgeConstrained explores a strict regime where cross-chain gates may
// only touch the edge qubits of a weak link. All are ablated in the
// benchmark suite.
//
// Synthesized gates use circuit.X for 1-qubit operations and circuit.CX for
// 2-qubit operations; the performance models only inspect arity and
// placement, never the gate kind (§III-C).
package schedule

import (
	"fmt"
	"math/rand"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/ti"
	"velociti/internal/verr"
)

// Placer synthesizes a gate sequence realizing a circuit spec on a layout.
type Placer interface {
	// Name identifies the placer in reports and benchmarks.
	Name() string
	// Place builds the gate sequence. The returned circuit has exactly
	// spec.OneQubitGates 1-qubit gates and spec.TwoQubitGates 2-qubit
	// gates over spec.Qubits qubits.
	Place(spec circuit.Spec, l *ti.Layout, r *rand.Rand) (*circuit.Circuit, error)
}

// StreamPlacer is the streaming capability of a Placer: synthesizing the
// gate sequence directly into a circuit.Builder — typically a
// circuit.Emitter feeding a frontier evaluation — without materializing
// the circuit. EmitPlace with the same spec, layout, and generator state
// produces exactly Place's gate sequence (the RNG draw order is shared,
// pinned by tests), so streamed and materialized evaluations agree bit
// for bit. Placers that genuinely need the materialized gate list do not
// implement it — the annealer, whose objective works over an incidence
// CSR of the synthesized circuit — and core falls back with a typed
// input error.
type StreamPlacer interface {
	Placer
	EmitPlace(spec circuit.Spec, l *ti.Layout, r *rand.Rand, b circuit.Builder) error
}

// placeViaEmit is the materialized path of every StreamPlacer: Place is
// EmitPlace into a scratch circuit.
func placeViaEmit(p StreamPlacer, spec circuit.Spec, l *ti.Layout, r *rand.Rand, grow bool) (*circuit.Circuit, error) {
	if err := validate(spec, l); err != nil {
		return nil, err
	}
	c := circuit.NewScratch(spec.Name, spec.Qubits)
	if grow {
		c.Grow(spec.TotalGates())
	}
	if err := p.EmitPlace(spec, l, r, c); err != nil {
		return nil, err
	}
	return c, nil
}

// validate performs the shared sanity checks for placers.
func validate(spec circuit.Spec, l *ti.Layout) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if spec.Qubits > l.NumQubits() {
		return fmt.Errorf("schedule: spec needs %d qubits, layout places %d", spec.Qubits, l.NumQubits())
	}
	return nil
}

// opOrderInto fills caller-provided storage (reused when its capacity
// allows) with a shuffled sequence of gate arities (1 or 2) realizing the
// spec's gate counts. The draw sequence is identical to newOpBits's.
func opOrderInto(dst []int, spec circuit.Spec, r *rand.Rand) []int {
	if cap(dst) < spec.TotalGates() {
		dst = make([]int, 0, spec.TotalGates())
	}
	ops := dst[:0]
	for i := 0; i < spec.OneQubitGates; i++ {
		ops = append(ops, 1)
	}
	for i := 0; i < spec.TwoQubitGates; i++ {
		ops = append(ops, 2)
	}
	r.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops
}

// uniformPair draws a uniformly random unordered pair of distinct qubits
// from [0, n).
func uniformPair(r *rand.Rand, n int) (int, int) {
	a := r.Intn(n)
	b := r.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

// opBits is opOrder packed one bit per gate (0 = 1-qubit, 1 = 2-qubit),
// so a streaming placer's only gate-count-proportional state is n/8
// bytes rather than a materialized []int. The shuffle consumes the
// generator exactly as opOrderInto's does (r.Shuffle's draw sequence is
// independent of element storage), so both representations stay
// interchangeable under a shared seed.
type opBits struct {
	bits []uint64
	n    int
}

func newOpBits(spec circuit.Spec, r *rand.Rand) opBits {
	n := spec.TotalGates()
	o := opBits{bits: make([]uint64, (n+63)/64), n: n}
	for i := spec.OneQubitGates; i < n; i++ {
		o.bits[i>>6] |= 1 << (uint(i) & 63)
	}
	r.Shuffle(n, o.swap)
	return o
}

func (o opBits) get(i int) bool { return o.bits[i>>6]>>(uint(i)&63)&1 == 1 }

func (o opBits) set(i int, v bool) {
	if v {
		o.bits[i>>6] |= 1 << (uint(i) & 63)
	} else {
		o.bits[i>>6] &^= 1 << (uint(i) & 63)
	}
}

func (o opBits) swap(i, j int) {
	bi, bj := o.get(i), o.get(j)
	o.set(i, bj)
	o.set(j, bi)
}

// arity returns 1 or 2 for gate i.
func (o opBits) arity(i int) int {
	if o.get(i) {
		return 2
	}
	return 1
}

// Random is the paper's placement policy: each 2-qubit gate acts on a
// uniformly random qubit pair (cross-chain pairs become weak-link
// operations), each 1-qubit gate on a uniformly random qubit, and the
// operations are interleaved in random order.
type Random struct{}

// Name implements Placer.
func (Random) Name() string { return "random" }

// Place implements Placer.
func (p Random) Place(spec circuit.Spec, l *ti.Layout, r *rand.Rand) (*circuit.Circuit, error) {
	return placeViaEmit(p, spec, l, r, true)
}

// EmitPlace implements StreamPlacer.
func (Random) EmitPlace(spec circuit.Spec, l *ti.Layout, r *rand.Rand, b circuit.Builder) error {
	if err := validate(spec, l); err != nil {
		return err
	}
	ops := newOpBits(spec, r)
	for i := 0; i < ops.n; i++ {
		if ops.arity(i) == 1 {
			b.X(r.Intn(spec.Qubits))
			continue
		}
		qa, qb := uniformPair(r, spec.Qubits)
		b.CX(qa, qb)
	}
	return b.Err()
}

// WeakAvoiding places 2-qubit gates only on intra-chain pairs, eliminating
// weak-link traffic entirely (w = 0). It is an extension that bounds how
// much of the runtime is attributable to the weak link; it fails when no
// chain holds two of the spec's qubits.
type WeakAvoiding struct{}

// Name implements Placer.
func (WeakAvoiding) Name() string { return "weak-avoiding" }

// Place implements Placer.
func (p WeakAvoiding) Place(spec circuit.Spec, l *ti.Layout, r *rand.Rand) (*circuit.Circuit, error) {
	return placeViaEmit(p, spec, l, r, true)
}

// EmitPlace implements StreamPlacer.
func (WeakAvoiding) EmitPlace(spec circuit.Spec, l *ti.Layout, r *rand.Rand, b circuit.Builder) error {
	if err := validate(spec, l); err != nil {
		return err
	}
	var local [][2]int
	if spec.TwoQubitGates > 0 {
		for _, p := range l.LegalPairs() {
			if p[0] < spec.Qubits && p[1] < spec.Qubits && l.SameChain(p[0], p[1]) {
				local = append(local, p)
			}
		}
		if len(local) == 0 {
			return fmt.Errorf("schedule: weak-avoiding placer has no intra-chain pairs among %d qubits", spec.Qubits)
		}
	}
	ops := newOpBits(spec, r)
	for i := 0; i < ops.n; i++ {
		if ops.arity(i) == 1 {
			b.X(r.Intn(spec.Qubits))
			continue
		}
		p := local[r.Intn(len(local))]
		b.CX(p[0], p[1])
	}
	return b.Err()
}

// EdgeConstrained restricts cross-chain gates to the edge qubits of weak
// links ("only the qubits on the edge of a weak link can be used for such
// communications", §III-B): every 2-qubit gate draws uniformly from the
// union of intra-chain pairs and weak-link edge pairs. Because edge pairs
// are a vanishing fraction of that set, weak-link usage is far rarer than
// under Random — this placer exists to quantify that strict regime as an
// ablation.
type EdgeConstrained struct{}

// Name implements Placer.
func (EdgeConstrained) Name() string { return "edge-constrained" }

// Place implements Placer.
func (p EdgeConstrained) Place(spec circuit.Spec, l *ti.Layout, r *rand.Rand) (*circuit.Circuit, error) {
	return placeViaEmit(p, spec, l, r, true)
}

// EmitPlace implements StreamPlacer.
func (EdgeConstrained) EmitPlace(spec circuit.Spec, l *ti.Layout, r *rand.Rand, b circuit.Builder) error {
	if err := validate(spec, l); err != nil {
		return err
	}
	var pairs [][2]int
	if spec.TwoQubitGates > 0 {
		for _, p := range l.LegalPairs() {
			if p[0] < spec.Qubits && p[1] < spec.Qubits {
				pairs = append(pairs, p)
			}
		}
		if len(pairs) == 0 {
			return fmt.Errorf("schedule: no legal 2-qubit pairs among the first %d qubits", spec.Qubits)
		}
	}
	ops := newOpBits(spec, r)
	for i := 0; i < ops.n; i++ {
		if ops.arity(i) == 1 {
			b.X(r.Intn(spec.Qubits))
			continue
		}
		p := pairs[r.Intn(len(pairs))]
		b.CX(p[0], p[1])
	}
	return b.Err()
}

// LoadBalanced is a greedy list-scheduling placer (extension): it tracks
// each qubit's busy-until time under the given latency model and, for every
// 2-qubit gate, samples Candidates random pairs and commits the one whose
// gate would finish earliest. This balances work across qubits and steers
// traffic away from weak links when they are the bottleneck, approximating
// the "robust scheduling optimizations" the paper calls for (§VI-B).
type LoadBalanced struct {
	// Latencies is the timing model used to estimate finish times.
	Latencies perf.Latencies
	// Candidates is the number of random pairs sampled per gate. Zero
	// selects the default of 8. Higher values schedule better and run
	// slower.
	Candidates int
}

// Name implements Placer.
func (LoadBalanced) Name() string { return "load-balanced" }

// Place implements Placer.
func (pl LoadBalanced) Place(spec circuit.Spec, l *ti.Layout, r *rand.Rand) (*circuit.Circuit, error) {
	return placeViaEmit(pl, spec, l, r, false)
}

// EmitPlace implements StreamPlacer. The greedy busy-until state is
// O(qubits), so the placer streams without gate-count-proportional
// memory.
func (pl LoadBalanced) EmitPlace(spec circuit.Spec, l *ti.Layout, r *rand.Rand, b circuit.Builder) error {
	if err := validate(spec, l); err != nil {
		return err
	}
	if err := pl.Latencies.Validate(); err != nil {
		return err
	}
	k := pl.Candidates
	if k <= 0 {
		k = 8
	}
	busy := make([]float64, spec.Qubits)
	latencyOf := func(a, b int) float64 {
		if l.SameChain(a, b) {
			return pl.Latencies.TwoQubit
		}
		return pl.Latencies.WeakPenalty * pl.Latencies.TwoQubit
	}
	ops := newOpBits(spec, r)
	for i := 0; i < ops.n; i++ {
		if ops.arity(i) == 1 {
			// Choose the least-busy of a few sampled qubits.
			best := r.Intn(spec.Qubits)
			for i := 1; i < k; i++ {
				q := r.Intn(spec.Qubits)
				if busy[q] < busy[best] {
					best = q
				}
			}
			busy[best] += pl.Latencies.OneQubit
			b.X(best)
			continue
		}
		var bestA, bestB int
		bestFinish := 0.0
		for i := 0; i < k; i++ {
			a, b := uniformPair(r, spec.Qubits)
			start := busy[a]
			if busy[b] > start {
				start = busy[b]
			}
			finish := start + latencyOf(a, b)
			if i == 0 || finish < bestFinish {
				bestFinish = finish
				bestA, bestB = a, b
			}
		}
		busy[bestA] = bestFinish
		busy[bestB] = bestFinish
		b.CX(bestA, bestB)
	}
	return b.Err()
}

// Every non-search placer streams; the annealer (annealed.go) is the
// deliberate exception — its objective needs the incidence CSR of the
// materialized circuit.
var (
	_ StreamPlacer = Random{}
	_ StreamPlacer = WeakAvoiding{}
	_ StreamPlacer = EdgeConstrained{}
	_ StreamPlacer = LoadBalanced{}
)

// All returns the full placer suite: the paper baseline first, then the
// extensions, using the given latency model where needed.
func All(lat perf.Latencies) []Placer {
	return []Placer{Random{}, WeakAvoiding{}, LoadBalanced{Latencies: lat}, EdgeConstrained{}}
}

// ByName returns the placer with the given name, defaulting LoadBalanced's
// latency model to lat.
func ByName(name string, lat perf.Latencies) (Placer, error) {
	for _, p := range All(lat) {
		if p.Name() == name {
			return p, nil
		}
	}
	// Annealed is resolvable by name but deliberately absent from All: the
	// ablation suites iterate All, and the search-based placer is compared
	// in its own experiment rather than silently added to every ablation.
	if a := (Annealed{Latencies: lat}); a.Name() == name {
		return a, nil
	}
	return nil, verr.Inputf("schedule: unknown placer %q (want random, weak-avoiding, load-balanced, edge-constrained, or annealed)", name)
}
