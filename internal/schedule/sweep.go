package schedule

// This file adds the batched synthesis path behind plan-grouped design-space
// exploration: a sweep over timing models that differ only in the weak-link
// penalty α needs one synthesized circuit per model, but almost everything
// about synthesis is latency-independent. PlaceAll exploits that:
//
//   - For the latency-free placers (Random, WeakAvoiding, EdgeConstrained)
//     the gate sequence cannot depend on the timing model at all, so every
//     lane shares ONE *circuit.Circuit — callers detect the pointer aliasing
//     and share the downstream gate-class binding too.
//   - LoadBalanced reads the timing model only when COMMITTING a gate, never
//     when DRAWING candidates: the shuffled op order and the per-gate
//     candidate samples consume the RNG stream identically for every α. The
//     multi-lane kernel therefore draws each gate's candidates once and lets
//     every lane pick its own winner against its own busy-until table.
//
// Bit-exactness contract: PlaceAll(spec, l, r, lats)[j] is identical — gate
// for gate — to At(lats[j]).Place(spec, l, r2) where r2 is a fresh RNG in
// the same state r was in, because every lane observes the same draw
// sequence and applies the same commit rule. The schedule property tests pin
// this for every placer.

import (
	"fmt"
	"math/rand"
	"sync"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/ti"
)

// SweepPlacer is implemented by placers that can synthesize a whole
// timing-model sweep in one coupled pass over a single RNG stream.
type SweepPlacer interface {
	Placer
	// At returns the placer reconfigured for one timing model. Placers
	// whose synthesis never reads the timing model return the receiver.
	At(lat perf.Latencies) Placer
	// PlaceAll synthesizes one gate sequence per timing model in lats,
	// consuming the RNG stream exactly once. Lane j equals what
	// At(lats[j]).Place would build from the same stream state; lanes whose
	// circuits must coincide may alias one *circuit.Circuit.
	PlaceAll(spec circuit.Spec, l *ti.Layout, r *rand.Rand, lats []perf.Latencies) ([]*circuit.Circuit, error)
}

// sharedLanes runs a latency-free placer once and aliases the resulting
// circuit across every lane.
func sharedLanes(p Placer, spec circuit.Spec, l *ti.Layout, r *rand.Rand, lats []perf.Latencies) ([]*circuit.Circuit, error) {
	if len(lats) == 0 {
		return nil, fmt.Errorf("schedule: PlaceAll requires at least one timing model")
	}
	c, err := p.Place(spec, l, r)
	if err != nil {
		return nil, err
	}
	out := make([]*circuit.Circuit, len(lats))
	for i := range out {
		out[i] = c
	}
	return out, nil
}

// At implements SweepPlacer: random synthesis ignores the timing model.
func (p Random) At(perf.Latencies) Placer { return p }

// PlaceAll implements SweepPlacer; every lane shares one circuit.
func (p Random) PlaceAll(spec circuit.Spec, l *ti.Layout, r *rand.Rand, lats []perf.Latencies) ([]*circuit.Circuit, error) {
	return sharedLanes(p, spec, l, r, lats)
}

// At implements SweepPlacer: weak-avoiding synthesis ignores the timing model.
func (p WeakAvoiding) At(perf.Latencies) Placer { return p }

// PlaceAll implements SweepPlacer; every lane shares one circuit.
func (p WeakAvoiding) PlaceAll(spec circuit.Spec, l *ti.Layout, r *rand.Rand, lats []perf.Latencies) ([]*circuit.Circuit, error) {
	return sharedLanes(p, spec, l, r, lats)
}

// At implements SweepPlacer: edge-constrained synthesis ignores the timing
// model.
func (p EdgeConstrained) At(perf.Latencies) Placer { return p }

// PlaceAll implements SweepPlacer; every lane shares one circuit.
func (p EdgeConstrained) PlaceAll(spec circuit.Spec, l *ti.Layout, r *rand.Rand, lats []perf.Latencies) ([]*circuit.Circuit, error) {
	return sharedLanes(p, spec, l, r, lats)
}

// At implements SweepPlacer: the timing model steers LoadBalanced's commit
// decisions, so each lane runs the greedy rule at its own latencies.
func (pl LoadBalanced) At(lat perf.Latencies) Placer {
	pl.Latencies = lat
	return pl
}

// lbScratch is the pooled working memory of one multi-lane load-balanced
// synthesis: the shuffled op order, the lane-major busy-until tables, the
// per-lane latency tables, and the per-gate candidate draws shared by all
// lanes. Ownership: a scratch is held by exactly one PlaceAll call; the
// synthesized circuits never reference it.
type lbScratch struct {
	ops      []int
	busy     []float64   // lane-major: lane j occupies [j*qubits, (j+1)*qubits)
	laneBusy [][]float64 // precomputed per-lane views into busy
	oneQLat  []float64
	twoQLat  []float64
	weakLat  []float64
	drawQ    []int // 1-qubit candidate draws for the current gate
	drawA    []int // 2-qubit candidate pairs for the current gate
	drawB    []int
	sameCh   []bool
}

var lbPool = sync.Pool{New: func() any { return new(lbScratch) }}

func (s *lbScratch) grow(lanes, qubits, k int) {
	if cap(s.busy) < lanes*qubits {
		s.busy = make([]float64, lanes*qubits)
	}
	s.busy = s.busy[:lanes*qubits]
	for i := range s.busy {
		s.busy[i] = 0
	}
	if cap(s.laneBusy) < lanes {
		s.laneBusy = make([][]float64, lanes)
	}
	s.laneBusy = s.laneBusy[:lanes]
	for j := range s.laneBusy {
		s.laneBusy[j] = s.busy[j*qubits : (j+1)*qubits]
	}
	if cap(s.oneQLat) < lanes {
		s.oneQLat = make([]float64, lanes)
		s.twoQLat = make([]float64, lanes)
		s.weakLat = make([]float64, lanes)
	}
	s.oneQLat = s.oneQLat[:lanes]
	s.twoQLat = s.twoQLat[:lanes]
	s.weakLat = s.weakLat[:lanes]
	if cap(s.drawQ) < k {
		s.drawQ = make([]int, k)
		s.drawA = make([]int, k)
		s.drawB = make([]int, k)
		s.sameCh = make([]bool, k)
	}
	s.drawQ = s.drawQ[:k]
	s.drawA = s.drawA[:k]
	s.drawB = s.drawB[:k]
	s.sameCh = s.sameCh[:k]
}

// PlaceAll implements SweepPlacer: the greedy list scheduler runs for every
// timing model at once. Per gate, the candidate samples are drawn once from
// the shared RNG stream, then each lane evaluates them against its own
// busy-until table and commits its own winner — the only α-dependent step.
// Lane j is gate-for-gate identical to what LoadBalanced{Latencies: lats[j],
// Candidates: pl.Candidates}.Place builds from the same stream state; the
// receiver's own Latencies field is not consulted.
func (pl LoadBalanced) PlaceAll(spec circuit.Spec, l *ti.Layout, r *rand.Rand, lats []perf.Latencies) ([]*circuit.Circuit, error) {
	nl := len(lats)
	if nl == 0 {
		return nil, fmt.Errorf("schedule: PlaceAll requires at least one timing model")
	}
	if err := validate(spec, l); err != nil {
		return nil, err
	}
	for _, lat := range lats {
		if err := lat.Validate(); err != nil {
			return nil, err
		}
	}
	k := pl.Candidates
	if k <= 0 {
		k = 8
	}
	nq := spec.Qubits

	s := lbPool.Get().(*lbScratch)
	s.grow(nl, nq, k)
	for j, lat := range lats {
		s.oneQLat[j] = lat.OneQubit
		s.twoQLat[j] = lat.TwoQubit
		// One multiply, exactly as Place's latencyOf computes it, so the
		// committed finish times match bit for bit.
		s.weakLat[j] = lat.WeakPenalty * lat.TwoQubit
	}
	circs := make([]*circuit.Circuit, nl)
	for j := range circs {
		circs[j] = circuit.NewScratch(spec.Name, nq)
		circs[j].Grow(spec.TotalGates())
	}

	s.ops = opOrderInto(s.ops, spec, r)
	drawQ, drawA, drawB, sameCh := s.drawQ[:k], s.drawA[:k], s.drawB[:k], s.sameCh[:k]
	laneBusy := s.laneBusy
	// Direct chain table: uniformPair's draws are in range by construction,
	// so the kernel skips SameChain's per-call validation.
	chainOf := l.ChainAssignments()
	for _, arity := range s.ops {
		if arity == 1 {
			for i := range drawQ {
				drawQ[i] = r.Intn(nq)
			}
			for j := 0; j < nl; j++ {
				busy := laneBusy[j]
				best := drawQ[0]
				bb := busy[best]
				for i := 1; i < len(drawQ); i++ {
					if q := drawQ[i]; busy[q] < bb {
						best, bb = q, busy[q]
					}
				}
				busy[best] = bb + s.oneQLat[j]
				circs[j].X(best)
			}
			continue
		}
		for i := range drawA {
			a, b := uniformPair(r, nq)
			drawA[i], drawB[i] = a, b
			sameCh[i] = chainOf[a] == chainOf[b]
		}
		for j := 0; j < nl; j++ {
			busy := laneBusy[j]
			// Hoisted lane latencies; the candidate loop starts from
			// candidate 0's finish so the scan is branch-light. The
			// strict < keeps the first of tied candidates, exactly as
			// Place's commit rule does.
			tq, wk := s.twoQLat[j], s.weakLat[j]
			bestA, bestB := drawA[0], drawB[0]
			bestFinish := busy[bestA]
			if f := busy[bestB]; f > bestFinish {
				bestFinish = f
			}
			if sameCh[0] {
				bestFinish += tq
			} else {
				bestFinish += wk
			}
			for i := 1; i < len(drawA); i++ {
				a, b := drawA[i], drawB[i]
				start := busy[a]
				if busy[b] > start {
					start = busy[b]
				}
				gl := tq
				if !sameCh[i] {
					gl = wk
				}
				if f := start + gl; f < bestFinish {
					bestFinish = f
					bestA, bestB = a, b
				}
			}
			busy[bestA] = bestFinish
			busy[bestB] = bestFinish
			circs[j].CX(bestA, bestB)
		}
	}
	lbPool.Put(s)
	return circs, nil
}
