package schedule

import (
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/stats"
)

// sweepLats builds an α sweep over the default timing model.
func sweepLats(alphas ...float64) []perf.Latencies {
	lats := make([]perf.Latencies, len(alphas))
	for i, a := range alphas {
		lats[i] = perf.DefaultLatencies()
		lats[i].WeakPenalty = a
	}
	return lats
}

// sameGates fails unless the two circuits are gate-for-gate identical.
func sameGates(t *testing.T, label string, got, want *circuit.Circuit) {
	t.Helper()
	if got.NumGates() != want.NumGates() {
		t.Fatalf("%s: %d gates, want %d", label, got.NumGates(), want.NumGates())
	}
	wg := want.Gates()
	for i, g := range got.Gates() {
		w := wg[i]
		if g.Kind != w.Kind || len(g.Qubits) != len(w.Qubits) {
			t.Fatalf("%s: gate %d = %v, want %v", label, i, g, w)
		}
		for k := range g.Qubits {
			if g.Qubits[k] != w.Qubits[k] {
				t.Fatalf("%s: gate %d = %v, want %v", label, i, g, w)
			}
		}
	}
}

// TestPlaceAllLanesMatchPerLanePlace pins the SweepPlacer contract: lane j
// of PlaceAll equals what At(lats[j]).Place builds from a fresh RNG in the
// same state, for every placer in the suite.
func TestPlaceAllLanesMatchPerLanePlace(t *testing.T) {
	l := layout16x4(t)
	lats := sweepLats(2.0, 1.5, 1.0, 3.5)
	s := spec(64, 40, 200)
	for _, p := range All(perf.DefaultLatencies()) {
		sp, ok := p.(SweepPlacer)
		if !ok {
			t.Fatalf("%s: does not implement SweepPlacer", p.Name())
		}
		for _, seed := range []int64{1, 7, 42} {
			circs, err := sp.PlaceAll(s, l, stats.NewRand(seed), lats)
			if err != nil {
				t.Fatalf("%s: PlaceAll: %v", p.Name(), err)
			}
			if len(circs) != len(lats) {
				t.Fatalf("%s: %d lanes, want %d", p.Name(), len(circs), len(lats))
			}
			for j, lat := range lats {
				want, err := sp.At(lat).Place(s, l, stats.NewRand(seed))
				if err != nil {
					t.Fatalf("%s: Place at lane %d: %v", p.Name(), j, err)
				}
				sameGates(t, p.Name(), circs[j], want)
			}
		}
	}
}

// TestPlaceAllSharesCircuitsWhenLatencyFree pins the aliasing contract the
// batched binder relies on: latency-free placers return one circuit for all
// lanes, and LoadBalanced returns distinct per-lane circuits.
func TestPlaceAllSharesCircuitsWhenLatencyFree(t *testing.T) {
	l := layout16x4(t)
	lats := sweepLats(2.0, 1.0)
	s := spec(64, 10, 60)
	for _, p := range []SweepPlacer{Random{}, WeakAvoiding{}, EdgeConstrained{}} {
		circs, err := p.PlaceAll(s, l, stats.NewRand(3), lats)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if circs[0] != circs[1] {
			t.Fatalf("%s: lanes should alias one circuit", p.Name())
		}
	}
	circs, err := LoadBalanced{}.PlaceAll(s, l, stats.NewRand(3), lats)
	if err != nil {
		t.Fatal(err)
	}
	if circs[0] == circs[1] {
		t.Fatal("load-balanced lanes must not alias: commits depend on α")
	}
}

// TestPlaceAllConsumesStreamLikePlace pins the coupling invariant: after
// PlaceAll, the shared RNG stream is in the same state as after one Place —
// so downstream stream consumers see identical draws either way.
func TestPlaceAllConsumesStreamLikePlace(t *testing.T) {
	l := layout16x4(t)
	lats := sweepLats(2.0, 1.5, 1.0)
	s := spec(64, 15, 80)
	for _, p := range All(perf.DefaultLatencies()) {
		sp := p.(SweepPlacer)
		rAll := stats.NewRand(11)
		if _, err := sp.PlaceAll(s, l, rAll, lats); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		rOne := stats.NewRand(11)
		if _, err := sp.At(lats[0]).Place(s, l, rOne); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		for i := 0; i < 8; i++ {
			if a, b := rAll.Int63(), rOne.Int63(); a != b {
				t.Fatalf("%s: stream diverged after synthesis (draw %d: %d vs %d)", p.Name(), i, a, b)
			}
		}
	}
}

// TestPlaceAllValidation mirrors Place's error behavior.
func TestPlaceAllValidation(t *testing.T) {
	l := layout16x4(t)
	if _, err := (LoadBalanced{}).PlaceAll(spec(64, 1, 1), l, stats.NewRand(1), nil); err == nil {
		t.Fatal("want error for empty lats")
	}
	bad := sweepLats(2.0)
	bad[0].TwoQubit = -1
	if _, err := (LoadBalanced{}).PlaceAll(spec(64, 1, 1), l, stats.NewRand(1), bad); err == nil {
		t.Fatal("want error for invalid lane latencies")
	}
	if _, err := (Random{}).PlaceAll(spec(128, 1, 1), l, stats.NewRand(1), sweepLats(2.0)); err == nil {
		t.Fatal("want error for spec wider than layout")
	}
}
