package schedule

// CacheKey methods implement internal/cache.Keyer (structurally) for the
// gate placers. Keys must cover everything that influences the produced
// circuit: LoadBalanced consults its latency model while scheduling, so its
// key embeds the model — without it, α-sweep cells would silently share
// circuits that should differ.

import "fmt"

// CacheKey implements cache.Keyer.
func (Random) CacheKey() string { return "random" }

// CacheKey implements cache.Keyer.
func (WeakAvoiding) CacheKey() string { return "weak-avoiding" }

// CacheKey implements cache.Keyer.
func (EdgeConstrained) CacheKey() string { return "edge-constrained" }

// CacheKey implements cache.Keyer. Candidates is normalized to its
// effective value so the zero default and an explicit 8 share artifacts.
func (pl LoadBalanced) CacheKey() string {
	k := pl.Candidates
	if k <= 0 {
		k = 8
	}
	return fmt.Sprintf("load-balanced/%s/k=%d", pl.Latencies.CacheKey(), k)
}
