// Package placement implements the qubit place-and-route stage of VelociTI
// (§III-B stage 2, §V-A "hardware implementation module").
//
// A placement policy assigns a workload's qubits to a device's ion chains,
// producing a ti.Layout (the paper's "netlist"). The paper's policy is
// pseudo-random placement onto the area-optimal number of chains; this
// package additionally provides a deterministic round-robin policy (useful
// in tests) and an interaction-aware greedy policy (an extension, ablated in
// the benchmarks) that co-locates frequently interacting qubits to reduce
// weak-link traffic.
package placement

import (
	"fmt"
	"math/rand"
	"sort"

	"velociti/internal/ti"
)

// Policy assigns numQubits qubits onto the chains of a device. Policies
// must be deterministic given the same *rand.Rand state.
type Policy interface {
	// Name identifies the policy in reports and benchmarks.
	Name() string
	// Place builds a layout. It fails if the workload does not fit the
	// device.
	Place(d *ti.Device, numQubits int, r *rand.Rand) (*ti.Layout, error)
}

// capacities returns the per-chain qubit counts for a balanced distribution
// of n qubits over the device's chains: chain sizes differ by at most one,
// and no chain exceeds the device chain length.
func capacities(d *ti.Device, n int) ([]int, error) {
	if !d.Fits(n) {
		return nil, fmt.Errorf("placement: %d qubits exceed device capacity %d", n, d.TotalCapacity())
	}
	c := d.NumChains()
	base, extra := n/c, n%c
	counts := make([]int, c)
	for i := range counts {
		counts[i] = base
		if i < extra {
			counts[i]++
		}
		if counts[i] > d.ChainLength() {
			return nil, fmt.Errorf("placement: balanced chain size %d exceeds chain length %d", counts[i], d.ChainLength())
		}
	}
	return counts, nil
}

// Random is the paper's placement policy: qubits are shuffled uniformly at
// random and dealt into chains in balanced fashion (§III-B: "we randomly
// place qubits and distribute them across the chains").
type Random struct{}

// Name implements Policy.
func (Random) Name() string { return "random" }

// Place implements Policy.
func (Random) Place(d *ti.Device, numQubits int, r *rand.Rand) (*ti.Layout, error) {
	counts, err := capacities(d, numQubits)
	if err != nil {
		return nil, err
	}
	perm := r.Perm(numQubits)
	chains := make([][]int, d.NumChains())
	at := 0
	for c, k := range counts {
		chains[c] = append([]int(nil), perm[at:at+k]...)
		at += k
	}
	return ti.NewLayout(d, chains)
}

// RoundRobin places qubit q on chain q mod c, preserving index order within
// each chain. It is deterministic and primarily useful for tests and as a
// predictable baseline.
type RoundRobin struct{}

// Name implements Policy.
func (RoundRobin) Name() string { return "round-robin" }

// Place implements Policy.
func (RoundRobin) Place(d *ti.Device, numQubits int, _ *rand.Rand) (*ti.Layout, error) {
	if !d.Fits(numQubits) {
		return nil, fmt.Errorf("placement: %d qubits exceed device capacity %d", numQubits, d.TotalCapacity())
	}
	chains := make([][]int, d.NumChains())
	for q := 0; q < numQubits; q++ {
		c := q % d.NumChains()
		if len(chains[c]) >= d.ChainLength() {
			return nil, fmt.Errorf("placement: round-robin overflows chain %d", c)
		}
		chains[c] = append(chains[c], q)
	}
	return ti.NewLayout(d, chains)
}

// Sequential fills chain 0 with qubits 0..L-1, chain 1 with the next L, and
// so on. Deterministic; used to pin corner cases in tests.
type Sequential struct{}

// Name implements Policy.
func (Sequential) Name() string { return "sequential" }

// Place implements Policy.
func (Sequential) Place(d *ti.Device, numQubits int, _ *rand.Rand) (*ti.Layout, error) {
	if !d.Fits(numQubits) {
		return nil, fmt.Errorf("placement: %d qubits exceed device capacity %d", numQubits, d.TotalCapacity())
	}
	chains := make([][]int, d.NumChains())
	for q := 0; q < numQubits; q++ {
		c := q / d.ChainLength()
		chains[c] = append(chains[c], q)
	}
	return ti.NewLayout(d, chains)
}

// InteractionAware is an extension policy that inspects the workload's
// qubit-interaction graph (how many 2-qubit gates each unordered qubit pair
// shares) and greedily clusters heavily interacting qubits onto the same
// chain, reducing weak-link gates for explicit circuits. Pairs are
// processed in decreasing interaction weight; each pair is merged into a
// chain when capacity allows. Remaining qubits are placed balanced.
type InteractionAware struct {
	// Interactions maps canonical qubit pairs (smaller index first) to the
	// number of 2-qubit gates they share, as produced by
	// circuit.InteractionGraph.
	Interactions map[[2]int]int
}

// Name implements Policy.
func (InteractionAware) Name() string { return "interaction-aware" }

// Place implements Policy.
func (p InteractionAware) Place(d *ti.Device, numQubits int, r *rand.Rand) (*ti.Layout, error) {
	counts, err := capacities(d, numQubits)
	if err != nil {
		return nil, err
	}
	type pair struct {
		a, b, weight int
	}
	pairs := make([]pair, 0, len(p.Interactions))
	for k, w := range p.Interactions {
		if k[0] < 0 || k[1] < 0 || k[0] >= numQubits || k[1] >= numQubits {
			return nil, fmt.Errorf("placement: interaction pair %v out of range [0,%d)", k, numQubits)
		}
		pairs = append(pairs, pair{a: k[0], b: k[1], weight: w})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].weight != pairs[j].weight {
			return pairs[i].weight > pairs[j].weight
		}
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})

	chainOf := make([]int, numQubits)
	for i := range chainOf {
		chainOf[i] = -1
	}
	used := make([]int, d.NumChains())
	room := func(c int) int { return counts[c] - used[c] }
	assign := func(q, c int) {
		chainOf[q] = c
		used[c]++
	}
	// Greedy merge: for each heavy pair, try to put both qubits on one
	// chain (joining an existing side's chain when possible).
	for _, pr := range pairs {
		ca, cb := chainOf[pr.a], chainOf[pr.b]
		switch {
		case ca == -1 && cb == -1:
			// Open the emptiest chain with room for two.
			best := -1
			for c := range counts {
				if room(c) >= 2 && (best == -1 || used[c] < used[best]) {
					best = c
				}
			}
			if best >= 0 {
				assign(pr.a, best)
				assign(pr.b, best)
			}
		case ca != -1 && cb == -1:
			if room(ca) >= 1 {
				assign(pr.b, ca)
			}
		case ca == -1 && cb != -1:
			if room(cb) >= 1 {
				assign(pr.a, cb)
			}
		}
		// Both already placed: nothing to do.
	}
	// Place any stragglers into remaining capacity, spreading evenly.
	for q := 0; q < numQubits; q++ {
		if chainOf[q] != -1 {
			continue
		}
		best := -1
		for c := range counts {
			if room(c) >= 1 && (best == -1 || room(c) > room(best)) {
				best = c
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("placement: no capacity left for qubit q%d", q)
		}
		assign(q, best)
	}
	chains := make([][]int, d.NumChains())
	for q := 0; q < numQubits; q++ {
		chains[chainOf[q]] = append(chains[chainOf[q]], q)
	}
	// Shuffle slot order within each chain so edge-qubit selection is not
	// systematically biased toward low qubit ids.
	if r != nil {
		for _, qs := range chains {
			r.Shuffle(len(qs), func(i, j int) { qs[i], qs[j] = qs[j], qs[i] })
		}
	}
	return ti.NewLayout(d, chains)
}

// CrossChainGates counts, for an explicit gate list described by the
// interaction multiset, how many 2-qubit interactions span chains under the
// given layout. It is the figure of merit interaction-aware placement
// minimizes; exposed for reports and tests.
func CrossChainGates(l *ti.Layout, interactions map[[2]int]int) int {
	total := 0
	for pairKey, w := range interactions {
		if !l.SameChain(pairKey[0], pairKey[1]) {
			total += w
		}
	}
	return total
}
