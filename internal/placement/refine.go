package placement

import (
	"fmt"
	"math/rand"

	"velociti/internal/ti"
)

// Refine improves a layout for an explicit workload by Kernighan–Lin-style
// local search: it repeatedly applies the best chain-swap of two qubits
// while doing so reduces the weighted cross-chain gate count, up to
// maxPasses sweeps (each sweep applies at most NumQubits swaps). Chain
// occupancies are preserved, so the refined layout is always valid for the
// same device. It returns the refined layout, its cross-chain gate weight,
// and whether the search converged: converged is true when a full pass
// found no improving swap, and false when the pass budget ran out while
// swaps were still improving — the result may then be short of the local
// optimum, and callers wanting it should retry with a larger maxPasses.
// The input layout is not modified.
//
// This is the iterative counterpart to the greedy InteractionAware policy:
// greedy construction gets within reach of a good cut, and refinement
// walks downhill from any starting point — including a random one.
func Refine(l *ti.Layout, interactions map[[2]int]int, maxPasses int) (_ *ti.Layout, cost int, converged bool, _ error) {
	if l == nil {
		return nil, 0, false, fmt.Errorf("placement: refine requires a layout")
	}
	if maxPasses <= 0 {
		maxPasses = 8
	}
	n := l.NumQubits()
	numChains := l.Device().NumChains()
	chainOf := make([]int, n)
	for q := 0; q < n; q++ {
		chainOf[q] = l.ChainOf(q)
	}
	// Adjacency with weights, and the per-qubit weight into each chain.
	adj := make([]map[int]int, n)
	for pair, w := range interactions {
		a, b := pair[0], pair[1]
		if a < 0 || b < 0 || a >= n || b >= n {
			return nil, 0, false, fmt.Errorf("placement: interaction pair %v out of range [0,%d)", pair, n)
		}
		if a == b || w == 0 {
			continue
		}
		if adj[a] == nil {
			adj[a] = make(map[int]int)
		}
		if adj[b] == nil {
			adj[b] = make(map[int]int)
		}
		adj[a][b] += w
		adj[b][a] += w
	}
	weightTo := make([][]int, n) // weightTo[q][c] = Σ w(q,x) for x on chain c
	for q := 0; q < n; q++ {
		weightTo[q] = make([]int, numChains)
		for x, w := range adj[q] {
			weightTo[q][chainOf[x]] += w
		}
	}
	cost = 0
	for pair, w := range interactions {
		if pair[0] != pair[1] && chainOf[pair[0]] != chainOf[pair[1]] {
			cost += w
		}
	}

	applySwap := func(u, v int) {
		cu, cv := chainOf[u], chainOf[v]
		for x, w := range adj[u] {
			weightTo[x][cu] -= w
			weightTo[x][cv] += w
		}
		for x, w := range adj[v] {
			weightTo[x][cv] -= w
			weightTo[x][cu] += w
		}
		chainOf[u], chainOf[v] = cv, cu
	}

	for pass := 0; pass < maxPasses; pass++ {
		improvedThisPass := false
		noImprovingSwap := false
		for step := 0; step < n; step++ {
			bestU, bestV, bestGain := -1, -1, 0
			for u := 0; u < n; u++ {
				cu := chainOf[u]
				for v := u + 1; v < n; v++ {
					cv := chainOf[v]
					if cu == cv {
						continue
					}
					gain := (weightTo[u][cv] - weightTo[u][cu]) +
						(weightTo[v][cu] - weightTo[v][cv]) -
						2*adj[u][v]
					if gain > bestGain {
						bestGain, bestU, bestV = gain, u, v
					}
				}
			}
			if bestU < 0 {
				noImprovingSwap = true
				break
			}
			applySwap(bestU, bestV)
			cost -= bestGain
			improvedThisPass = true
		}
		// A pass that ran out of improving swaps proves local optimality;
		// exhausting every pass while swaps were still improving does not,
		// and the caller can now tell the two apart.
		if noImprovingSwap || !improvedThisPass {
			converged = true
			break
		}
	}

	chains := make([][]int, numChains)
	// Preserve relative slot order within each chain where possible by
	// walking the original chains and substituting moved qubits in index
	// order.
	for q := 0; q < n; q++ {
		chains[chainOf[q]] = append(chains[chainOf[q]], q)
	}
	refined, err := ti.NewLayout(l.Device(), chains)
	if err != nil {
		return nil, 0, false, err
	}
	return refined, cost, converged, nil
}

// Refined is a placement policy that runs a base policy and then applies
// Refine, yielding locally optimal qubit-to-chain cuts for explicit
// circuits.
type Refined struct {
	// Base produces the starting layout; nil selects Random.
	Base Policy
	// Interactions is the workload's qubit-interaction graph.
	Interactions map[[2]int]int
	// Passes bounds the refinement sweeps; zero selects the default.
	Passes int
}

// Name implements Policy.
func (p Refined) Name() string { return "refined" }

// Place implements Policy.
func (p Refined) Place(d *ti.Device, numQubits int, r *rand.Rand) (*ti.Layout, error) {
	base := p.Base
	if base == nil {
		base = Random{}
	}
	l, err := base.Place(d, numQubits, r)
	if err != nil {
		return nil, err
	}
	refined, _, _, err := Refine(l, p.Interactions, p.Passes)
	return refined, err
}
