package placement

import (
	"math/rand"
	"testing"

	"velociti/internal/stats"
	"velociti/internal/ti"
)

// clusteredGraph builds k blocks of `size` qubits with dense intra-block
// interactions and sparse cross-block ones.
func clusteredGraph(k, size, intraW, crossW int) map[[2]int]int {
	ig := map[[2]int]int{}
	for b := 0; b < k; b++ {
		base := b * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				ig[[2]int{base + i, base + j}] = intraW
			}
		}
		if b+1 < k && crossW > 0 {
			ig[[2]int{base + size - 1, base + size}] = crossW
		}
	}
	return ig
}

func TestRefineReachesZeroCutOnSeparableWorkload(t *testing.T) {
	d := device(t, 8, 4)
	ig := clusteredGraph(4, 8, 5, 0)
	start, err := Random{}.Place(d, 32, stats.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	startCross := CrossChainGates(start, ig)
	refined, cost, converged, err := Refine(start, ig, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Fatalf("separable workload should refine to cut 0, got %d (from %d)", cost, startCross)
	}
	if !converged {
		t.Fatalf("refinement reached cut 0 but reported exhaustion")
	}
	if got := CrossChainGates(refined, ig); got != cost {
		t.Fatalf("reported cost %d != recomputed %d", cost, got)
	}
	checkComplete(t, refined, 32)
}

func TestRefineNeverIncreasesCost(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		chains := 2 + r.Intn(4)
		size := 2 + r.Intn(6)
		d := device(t, size, chains)
		n := chains * size
		// Random interaction graph.
		ig := map[[2]int]int{}
		for k := 0; k < n*2; k++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			ig[[2]int{a, b}] += 1 + r.Intn(4)
		}
		start, err := Random{}.Place(d, n, stats.NewRand(int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		before := CrossChainGates(start, ig)
		refined, cost, _, err := Refine(start, ig, 4)
		if err != nil {
			t.Fatal(err)
		}
		if cost > before {
			t.Fatalf("trial %d: refine increased cost %d → %d", trial, before, cost)
		}
		if got := CrossChainGates(refined, ig); got != cost {
			t.Fatalf("trial %d: cost bookkeeping drifted: %d vs %d", trial, cost, got)
		}
		// Chain occupancies preserved.
		for c := 0; c < chains; c++ {
			if len(refined.Chain(c)) != len(start.Chain(c)) {
				t.Fatalf("trial %d: chain %d size changed", trial, c)
			}
		}
		checkComplete(t, refined, n)
	}
}

func TestRefineBeatsGreedyOnAwkwardStart(t *testing.T) {
	// Round-robin scatters the blocks maximally; refinement must recover
	// the block structure that greedy InteractionAware finds natively.
	d := device(t, 8, 4)
	ig := clusteredGraph(4, 8, 5, 1)
	scattered, err := RoundRobin{}.Place(d, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := CrossChainGates(scattered, ig)
	_, cost, _, err := Refine(scattered, ig, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal cut leaves only the 3 inter-block bridges (weight 1 each).
	if cost > 3 {
		t.Fatalf("refined cut = %d (from %d), want ≤ 3", cost, before)
	}
}

func TestRefineValidation(t *testing.T) {
	if _, _, _, err := Refine(nil, nil, 1); err == nil {
		t.Fatalf("nil layout should fail")
	}
	d := device(t, 4, 2)
	l, _ := Sequential{}.Place(d, 8, nil)
	if _, _, _, err := Refine(l, map[[2]int]int{{0, 99}: 1}, 1); err == nil {
		t.Fatalf("out-of-range pair should fail")
	}
	// Empty interactions: refine is a no-op with zero cost.
	refined, cost, converged, err := Refine(l, nil, 1)
	if err != nil || cost != 0 {
		t.Fatalf("empty refine: %v %d", err, cost)
	}
	if !converged {
		t.Fatalf("no-op refine must report convergence")
	}
	checkComplete(t, refined, 8)
}

func TestRefinedPolicy(t *testing.T) {
	d := device(t, 8, 4)
	ig := clusteredGraph(4, 8, 5, 0)
	pol := Refined{Interactions: ig}
	l, err := pol.Place(d, 32, stats.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if got := CrossChainGates(l, ig); got != 0 {
		t.Fatalf("refined policy cut = %d, want 0", got)
	}
	if pol.Name() != "refined" {
		t.Fatalf("name = %q", pol.Name())
	}
	checkComplete(t, l, 32)
	// Base policy errors propagate.
	bad := Refined{Base: RoundRobin{}, Interactions: ig}
	if _, err := bad.Place(device(t, 2, 2), 5, nil); err == nil {
		t.Fatalf("base overflow should propagate")
	}
}

// TestRefineReportsExhaustion: with a single pass on a workload whose
// steepest-descent walk is at least NumQubits swaps long, Refine must
// return converged = false — previously exhaustion was indistinguishable
// from convergence — while a larger budget on the same input converges to
// a cost no worse. The instance below is pinned: its best-improvement walk
// from the alternating start is exactly 12 swaps (the one-pass budget for
// 12 qubits), found by searching weight matrices for long walks — random
// workloads almost never exceed n/2 swaps, since each swap settles two
// qubits at once.
func TestRefineReportsExhaustion(t *testing.T) {
	d := device(t, 6, 2)
	l, err := ti.NewLayout(d, [][]int{{0, 2, 4, 6, 8, 10}, {1, 3, 5, 7, 9, 11}})
	if err != nil {
		t.Fatal(err)
	}
	ig := map[[2]int]int{
		{0, 1}: 254, {0, 2}: 63, {0, 3}: 240, {0, 7}: 35, {0, 8}: 10, {0, 9}: 45, {0, 10}: 17,
		{1, 3}: 129, {1, 4}: 88, {1, 7}: 15, {1, 8}: 223, {1, 9}: 164, {1, 10}: 255, {1, 11}: 158,
		{2, 3}: 118, {2, 4}: 174, {2, 5}: 114, {2, 6}: 88, {2, 8}: 186, {2, 9}: 158, {2, 10}: 52, {2, 11}: 164,
		{3, 4}: 142, {3, 5}: 226, {3, 6}: 193, {3, 7}: 190, {3, 9}: 110, {3, 11}: 74,
		{4, 5}: 80, {4, 6}: 73, {4, 7}: 55, {4, 8}: 75, {4, 9}: 141, {4, 10}: 124, {4, 11}: 108,
		{5, 6}: 196, {5, 7}: 157, {5, 8}: 160, {5, 11}: 191,
		{6, 7}: 124, {6, 8}: 81, {6, 9}: 86, {6, 10}: 149,
		{7, 8}: 254, {7, 9}: 224, {7, 10}: 245, {7, 11}: 103,
		{8, 9}: 162, {8, 11}: 181,
		{9, 10}: 118, {10, 11}: 154,
	}
	_, costShort, convergedShort, err := Refine(l, ig, 1)
	if err != nil {
		t.Fatal(err)
	}
	if convergedShort {
		t.Fatalf("single pass claimed convergence on a 12-swap walk (cost %d)", costShort)
	}
	_, costLong, convergedLong, err := Refine(l, ig, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !convergedLong {
		t.Fatalf("8 passes did not converge (cost %d)", costLong)
	}
	if costLong > costShort {
		t.Fatalf("longer refinement worsened cost %d → %d", costShort, costLong)
	}
}
