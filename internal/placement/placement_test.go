package placement

import (
	"math/rand"
	"testing"

	"velociti/internal/stats"
	"velociti/internal/ti"
)

func device(t *testing.T, length, chains int) *ti.Device {
	t.Helper()
	d, err := ti.NewDevice(length, chains, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// checkComplete verifies the layout places each of n qubits exactly once.
func checkComplete(t *testing.T, l *ti.Layout, n int) {
	t.Helper()
	if l.NumQubits() != n {
		t.Fatalf("layout has %d qubits, want %d", l.NumQubits(), n)
	}
	seen := make(map[int]bool)
	for c := 0; c < l.Device().NumChains(); c++ {
		for _, q := range l.Chain(c) {
			if seen[q] {
				t.Fatalf("qubit q%d placed twice", q)
			}
			seen[q] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("placed %d distinct qubits, want %d", len(seen), n)
	}
}

func TestRandomPlacementBalanced(t *testing.T) {
	d := device(t, 16, 5)
	r := stats.NewRand(1)
	l, err := Random{}.Place(d, 78, r)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, l, 78)
	// 78 over 5 chains balanced: sizes 16,16,16,15,15.
	sizes := make([]int, 5)
	for c := range sizes {
		sizes[c] = len(l.Chain(c))
	}
	want := []int{16, 16, 16, 15, 15}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("chain sizes = %v, want %v", sizes, want)
		}
	}
}

func TestRandomPlacementDeterministicPerSeed(t *testing.T) {
	d := device(t, 8, 4)
	l1, _ := Random{}.Place(d, 30, stats.NewRand(7))
	l2, _ := Random{}.Place(d, 30, stats.NewRand(7))
	for q := 0; q < 30; q++ {
		if l1.ChainOf(q) != l2.ChainOf(q) || l1.SlotOf(q) != l2.SlotOf(q) {
			t.Fatalf("same seed must give identical placement (q%d differs)", q)
		}
	}
	l3, _ := Random{}.Place(d, 30, stats.NewRand(8))
	same := true
	for q := 0; q < 30; q++ {
		if l1.ChainOf(q) != l3.ChainOf(q) || l1.SlotOf(q) != l3.SlotOf(q) {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds should give different placements")
	}
}

func TestRandomPlacementRejectsOverflow(t *testing.T) {
	d := device(t, 8, 2)
	if _, err := (Random{}).Place(d, 17, stats.NewRand(1)); err == nil {
		t.Fatalf("17 qubits on 2x8 device should fail")
	}
}

func TestRoundRobin(t *testing.T) {
	d := device(t, 4, 3)
	l, err := RoundRobin{}.Place(d, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, l, 10)
	for q := 0; q < 10; q++ {
		if l.ChainOf(q) != q%3 {
			t.Fatalf("q%d on chain %d, want %d", q, l.ChainOf(q), q%3)
		}
	}
}

func TestRoundRobinOverflow(t *testing.T) {
	d := device(t, 2, 2)
	if _, err := (RoundRobin{}).Place(d, 5, nil); err == nil {
		t.Fatalf("overflow should fail")
	}
}

func TestSequential(t *testing.T) {
	d := device(t, 4, 3)
	l, err := Sequential{}.Place(d, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, l, 10)
	for q := 0; q < 10; q++ {
		if l.ChainOf(q) != q/4 {
			t.Fatalf("q%d on chain %d, want %d", q, l.ChainOf(q), q/4)
		}
		if l.SlotOf(q) != q%4 {
			t.Fatalf("q%d in slot %d, want %d", q, l.SlotOf(q), q%4)
		}
	}
}

func TestInteractionAwareClustersHotPairs(t *testing.T) {
	d := device(t, 4, 2)
	// Qubits 0-3 interact heavily among themselves, 4-7 among themselves.
	ig := map[[2]int]int{
		{0, 1}: 10, {1, 2}: 10, {2, 3}: 10, {0, 3}: 10,
		{4, 5}: 10, {5, 6}: 10, {6, 7}: 10, {4, 7}: 10,
		{3, 4}: 1, // single weak cross pair
	}
	l, err := InteractionAware{Interactions: ig}.Place(d, 8, stats.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, l, 8)
	if got := CrossChainGates(l, ig); got != 1 {
		t.Fatalf("interaction-aware placement leaves %d cross-chain gates, want 1\n%s", got, l)
	}
}

func TestInteractionAwareBeatsRandomOnClusteredWorkload(t *testing.T) {
	d := device(t, 8, 4)
	ig := map[[2]int]int{}
	// Four 8-qubit cliques of pairwise interactions.
	for block := 0; block < 4; block++ {
		base := block * 8
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				ig[[2]int{base + i, base + j}] = 5
			}
		}
	}
	aware, err := InteractionAware{Interactions: ig}.Place(d, 32, stats.NewRand(11))
	if err != nil {
		t.Fatal(err)
	}
	awareCross := CrossChainGates(aware, ig)

	var randomCross int
	for s := int64(0); s < 5; s++ {
		l, err := Random{}.Place(d, 32, stats.NewRand(s))
		if err != nil {
			t.Fatal(err)
		}
		randomCross += CrossChainGates(l, ig)
	}
	randomCross /= 5
	if awareCross >= randomCross {
		t.Fatalf("interaction-aware cross=%d should beat random cross=%d", awareCross, randomCross)
	}
	if awareCross != 0 {
		t.Fatalf("perfectly separable workload should have 0 cross-chain gates, got %d", awareCross)
	}
}

func TestInteractionAwareValidatesPairs(t *testing.T) {
	d := device(t, 4, 2)
	_, err := InteractionAware{Interactions: map[[2]int]int{{0, 99}: 1}}.Place(d, 8, stats.NewRand(1))
	if err == nil {
		t.Fatalf("out-of-range interaction pair should fail")
	}
}

func TestInteractionAwareHandlesEmptyGraph(t *testing.T) {
	d := device(t, 4, 2)
	l, err := InteractionAware{}.Place(d, 8, stats.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, l, 8)
}

func TestInteractionAwareNilRand(t *testing.T) {
	d := device(t, 4, 2)
	l, err := InteractionAware{Interactions: map[[2]int]int{{0, 1}: 3}}.Place(d, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, l, 6)
	if !l.SameChain(0, 1) {
		t.Fatalf("hot pair should share a chain")
	}
}

func TestCapacitiesErrors(t *testing.T) {
	d := device(t, 4, 2)
	if _, err := capacities(d, 9); err == nil {
		t.Fatalf("overflow should error")
	}
	counts, err := capacities(d, 7)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0]+counts[1] != 7 || counts[0]-counts[1] > 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestAllPoliciesPlaceAllQubits(t *testing.T) {
	policies := []Policy{Random{}, RoundRobin{}, Sequential{}, InteractionAware{}}
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		length := 2 + r.Intn(8)
		chains := 1 + r.Intn(5)
		d := device(t, length, chains)
		n := 1 + r.Intn(d.TotalCapacity())
		for _, p := range policies {
			l, err := p.Place(d, n, stats.NewRand(int64(trial)))
			if err != nil {
				t.Fatalf("%s: n=%d on %s: %v", p.Name(), n, d, err)
			}
			checkComplete(t, l, n)
			for c := 0; c < chains; c++ {
				if len(l.Chain(c)) > length {
					t.Fatalf("%s overfilled chain %d", p.Name(), c)
				}
			}
		}
	}
}

func TestPolicyNames(t *testing.T) {
	if (Random{}).Name() != "random" ||
		(RoundRobin{}).Name() != "round-robin" ||
		(Sequential{}).Name() != "sequential" ||
		(InteractionAware{}).Name() != "interaction-aware" {
		t.Fatalf("policy names drifted")
	}
}
