package placement

import (
	"math/rand"
	"strings"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/shuttle"
	"velociti/internal/stats"
	"velociti/internal/ti"
)

// annealCircuit synthesizes a deterministic random gate mix for the
// annealing tests.
func annealCircuit(r *rand.Rand, n, oneQ, twoQ int) *circuit.Circuit {
	c := circuit.NewScratch("anneal-test", n)
	for oneQ > 0 || twoQ > 0 {
		if twoQ > 0 && (oneQ == 0 || r.Intn(2) == 0) {
			a := r.Intn(n)
			b := r.Intn(n - 1)
			if b >= a {
				b++
			}
			c.CX(a, b)
			twoQ--
			continue
		}
		c.X(r.Intn(n))
		oneQ--
	}
	return c
}

// assignments flattens a layout to its qubit→chain map for comparison.
func assignments(l *ti.Layout) []int {
	out := make([]int, l.NumQubits())
	for q := range out {
		out[q] = l.ChainOf(q)
	}
	return out
}

// TestAnnealLayoutDeterministicPerSeed: the same seed must replay the
// search bit for bit — identical layout and identical objective — across
// repeated runs, and a different seed is allowed to (and here does)
// explore differently.
func TestAnnealLayoutDeterministicPerSeed(t *testing.T) {
	const qubits = 20
	r := stats.NewRand(17)
	c := annealCircuit(r, qubits, 30, 90)
	d := device(t, 5, 4)
	start, err := Random{}.Place(d, qubits, r)
	if err != nil {
		t.Fatal(err)
	}
	lat := perf.DefaultLatencies()
	run := func(seed int64) ([]int, float64) {
		ev := perf.NewEvaluator(c)
		l, cost, err := AnnealLayout(ev, start, perf.WeakLink{}, lat, stats.NewRand(seed), AnnealOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return assignments(l), cost
	}
	asg1, cost1 := run(42)
	asg2, cost2 := run(42)
	if cost1 != cost2 {
		t.Fatalf("same seed, different objective: %v != %v", cost1, cost2)
	}
	for q := range asg1 {
		if asg1[q] != asg2[q] {
			t.Fatalf("same seed, qubit %d on chain %d then %d", q, asg1[q], asg2[q])
		}
	}
}

// TestAnnealLayoutDeltaMatchesFullEval: the incremental scoring path and
// the from-scratch FullEval reference must walk the identical accept/reject
// sequence and land on the identical layout and cost — the bit-exactness
// contract that lets the benchmarks compare the two as like for like.
func TestAnnealLayoutDeltaMatchesFullEval(t *testing.T) {
	const qubits = 16
	lat := perf.DefaultLatencies()
	backends := map[string]perf.TimingBackend{
		"weaklink": perf.WeakLink{},
		"shuttle":  shuttle.Backend{Params: shuttle.Default()},
	}
	for name, backend := range backends {
		for _, seed := range []int64{1, 9} {
			r := stats.NewRand(seed)
			c := annealCircuit(r, qubits, 20, 70)
			d := device(t, 4, 4)
			start, err := Random{}.Place(d, qubits, r)
			if err != nil {
				t.Fatal(err)
			}
			opt := AnnealOptions{Moves: 300}
			ev := perf.NewEvaluator(c)
			fast, fastCost, err := AnnealLayout(ev, start, backend, lat, stats.NewRand(seed), opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.FullEval = true
			ref, refCost, err := AnnealLayout(ev, start, backend, lat, stats.NewRand(seed), opt)
			if err != nil {
				t.Fatal(err)
			}
			if fastCost != refCost {
				t.Fatalf("%s seed %d: delta cost %v, full-eval cost %v", name, seed, fastCost, refCost)
			}
			fa, ra := assignments(fast), assignments(ref)
			for q := range fa {
				if fa[q] != ra[q] {
					t.Fatalf("%s seed %d: qubit %d on chain %d (delta) vs %d (full)", name, seed, q, fa[q], ra[q])
				}
			}
		}
	}
}

// TestAnnealLayoutNeverWorsens: the returned objective is the best visited
// state, so it can never exceed the starting layout's cost, and the
// returned layout re-prices to exactly the reported objective.
func TestAnnealLayoutNeverWorsens(t *testing.T) {
	const qubits = 18
	lat := perf.DefaultLatencies()
	for _, seed := range []int64{2, 3, 4} {
		r := stats.NewRand(seed)
		c := annealCircuit(r, qubits, 25, 80)
		d := device(t, 6, 3)
		start, err := Random{}.Place(d, qubits, r)
		if err != nil {
			t.Fatal(err)
		}
		ev := perf.NewEvaluator(c)
		startCost := ev.LongestPath(start, lat)
		l, cost, err := AnnealLayout(ev, start, perf.WeakLink{}, lat, stats.NewRand(seed), AnnealOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if cost > startCost {
			t.Fatalf("seed %d: annealed cost %v worse than start %v", seed, cost, startCost)
		}
		if got := ev.LongestPath(l, lat); got != cost {
			t.Fatalf("seed %d: reported cost %v but layout prices at %v", seed, cost, got)
		}
		checkComplete(t, l, qubits)
	}
}

// TestAnnealedPolicy: the policy wires a random start into the search, so
// it must place every qubit, be deterministic per RNG stream, and reject a
// missing circuit with a clear error.
func TestAnnealedPolicy(t *testing.T) {
	const qubits = 12
	r := stats.NewRand(5)
	c := annealCircuit(r, qubits, 10, 40)
	d := device(t, 4, 3)
	p := Annealed{Circuit: c, Moves: 200}
	if p.Name() != "annealed" {
		t.Fatalf("policy name %q", p.Name())
	}
	l1, err := p.Place(d, qubits, stats.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, l1, qubits)
	l2, err := p.Place(d, qubits, stats.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := assignments(l1), assignments(l2)
	for q := range a1 {
		if a1[q] != a2[q] {
			t.Fatalf("same stream, qubit %d on chain %d then %d", q, a1[q], a2[q])
		}
	}
	if _, err := (Annealed{}).Place(d, qubits, stats.NewRand(1)); err == nil {
		t.Fatal("nil circuit accepted")
	}
}

// TestAnnealedCacheKey: keys must separate every behavioral knob —
// circuit, backend, timing model, and move budget — and normalize the
// zero-value defaults to the same key Place resolves them to.
func TestAnnealedCacheKey(t *testing.T) {
	r := stats.NewRand(6)
	c1 := annealCircuit(r, 8, 5, 15)
	c2 := annealCircuit(r, 8, 5, 15)
	base := Annealed{Circuit: c1}
	keys := map[string]string{
		"base":    base.CacheKey(),
		"circuit": Annealed{Circuit: c2}.CacheKey(),
		"backend": Annealed{Circuit: c1, Backend: shuttle.Backend{Params: shuttle.Default()}}.CacheKey(),
		"lat":     Annealed{Circuit: c1, Latencies: perf.Latencies{OneQubit: 1, TwoQubit: 2, WeakPenalty: 3}}.CacheKey(),
		"moves":   Annealed{Circuit: c1, Moves: 99}.CacheKey(),
		"start":   Annealed{Circuit: c1, Base: RoundRobin{}}.CacheKey(),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Fatalf("knobs %q and %q share cache key %q", prev, name, k)
		}
		seen[k] = name
		if !strings.HasPrefix(k, "annealed/") {
			t.Fatalf("key %q lacks the policy prefix", k)
		}
	}
	// Explicit defaults and the zero value must agree: same artifacts.
	explicit := Annealed{Circuit: c1, Backend: perf.WeakLink{}, Latencies: perf.DefaultLatencies(), Base: Random{}}
	if explicit.CacheKey() != base.CacheKey() {
		t.Fatalf("explicit defaults key %q != zero-value key %q", explicit.CacheKey(), base.CacheKey())
	}
	// A Base without a fingerprint of its own makes the search
	// unfingerprintable: empty key, which the pipeline reads as "do not
	// cache" (Refined deliberately provides no CacheKey).
	if k := (Annealed{Circuit: c1, Base: Refined{}}).CacheKey(); k != "" {
		t.Fatalf("unfingerprintable base should yield an empty key, got %q", k)
	}
}
