package placement

// Search-based placement: a simulated annealer over qubit-swap moves,
// scored by the delta evaluator (perf.DeltaEval) so each candidate costs
// O(gates-per-qubit) instead of a full DAG walk. The schedule is
// deterministic per seed — geometric cooling with a fixed move budget and
// the classic exp(-Δ/T) acceptance rule — so annealed placements replay
// bit-for-bit, matching the repo-wide reproducibility contract.
//
// The objective is the dependency DAG's longest path under the backend's
// delta weights: the paper's parallel model exactly for the weak-link
// backend, the contention-free transport cost for shuttle (see
// perf.DeltaWeigher). Because the longest path is a max over many tied
// critical paths it plateaus on regular circuits, so ties break on the
// total latency sum (perf.DeltaEval.LatencySum) — plateau moves drift
// toward cheaper layouts instead of stalling. Reported results are always
// re-priced by the full backend afterwards; the annealer only chooses the
// layout.

import (
	"fmt"
	"math"
	"math/rand"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/ti"
)

// defaultMovesPerQubit sets the annealing move budget when AnnealOptions
// leaves Moves zero: budget = defaultMovesPerQubit × placed qubits.
const defaultMovesPerQubit = 32

// Annealing schedule constants: the temperature decays geometrically from
// relT0 to relTend as fractions of the initial cost.
const (
	annealRelT0   = 0.05
	annealRelTend = 1e-4
)

// AnnealOptions tunes AnnealLayout. The zero value selects the defaults.
type AnnealOptions struct {
	// Moves is the swap-attempt budget; zero selects
	// defaultMovesPerQubit × qubits.
	Moves int
	// FullEval scores every candidate with a from-scratch evaluation
	// (perf.DeltaEval.FullCost) instead of the incremental path. The
	// accept/reject sequence and result are bit-identical either way —
	// that equivalence is pinned by tests — so this exists as the
	// reference oracle and as the legacy cost model the benchmarks gate
	// the delta path against.
	FullEval bool
	// ConeLimit overrides the delta kernel's full-recompute fallback
	// budget; zero keeps the kernel default.
	ConeLimit int
}

// moves resolves the effective move budget for n placed qubits.
func (o AnnealOptions) moves(n int) int {
	if o.Moves > 0 {
		return o.Moves
	}
	return defaultMovesPerQubit * n
}

// AnnealLayout improves a starting layout for ev's circuit by simulated
// annealing over qubit-swap moves, returning the best layout found and
// its objective value (the longest path; the latency-sum tie-breaker only
// orders equal-path states and is not reported). The search is
// deterministic given r's stream: each move draws one uniform qubit pair,
// plus one acceptance draw only when the move strictly worsens the
// longest path. Same-chain pairs are skipped
// (they cannot change any gate's class or hop count) but still consume
// the pair draw, keeping the stream layout-independent. The input layout
// is not modified.
func AnnealLayout(ev *perf.Evaluator, l *ti.Layout, backend perf.TimingBackend, lat perf.Latencies, r *rand.Rand, opt AnnealOptions) (*ti.Layout, float64, error) {
	de, err := perf.NewDeltaEval(ev, l, backend, lat)
	if err != nil {
		return nil, 0, err
	}
	if opt.ConeLimit > 0 {
		de.SetConeLimit(opt.ConeLimit)
	}
	// cost returns the primary objective (longest path) and the tie-break
	// objective (latency sum). Both modes read the SAME incremental
	// LatencySum, so FullEval changes only where the path comes from and the
	// accept/reject sequence stays bit-identical.
	cost := func() (float64, float64, error) {
		if opt.FullEval {
			p, err := de.FullCost()
			return p, de.LatencySum(), err
		}
		return de.Cost(), de.LatencySum(), nil
	}
	cur, curSum, err := cost()
	if err != nil {
		return nil, 0, err
	}
	n := de.NumQubits()
	if cur == 0 || n < 2 {
		// Nothing to improve (no gates on the critical path) or nothing
		// to swap.
		return l, cur, nil
	}
	best, bestSum := cur, curSum
	bestAsg := de.ChainAssignments(nil)

	moves := opt.moves(n)
	t0 := annealRelT0 * cur
	tEnd := annealRelTend * cur
	// Geometric decay factor so T(moves-1) = tEnd; a single-move budget
	// stays at t0.
	decay := 0.0
	if moves > 1 {
		decay = math.Pow(tEnd/t0, 1/float64(moves-1))
	}
	temp := t0
	for i := 0; i < moves; i++ {
		if i > 0 {
			temp *= decay
		}
		a := r.Intn(n)
		b := r.Intn(n - 1)
		if b >= a {
			b++
		}
		if de.SameChain(a, b) {
			continue
		}
		if _, err := de.Swap(a, b); err != nil {
			return nil, 0, err
		}
		cand, candSum, err := cost()
		if err != nil {
			return nil, 0, err
		}
		// Lexicographic acceptance on (longest path, latency sum). The
		// longest path is a max over many tied critical paths and plateaus
		// on regular circuits — most single swaps leave it unchanged — so
		// plateau moves (dE == 0) accept only when they do not raise the
		// latency sum, drifting sideways toward cheaper layouts without an
		// acceptance draw. Only strictly uphill path moves consume a draw.
		dE := cand - cur
		accept := dE < 0 || (dE == 0 && candSum <= curSum)
		if !accept && dE > 0 && temp > 0 {
			accept = r.Float64() < math.Exp(-dE/temp)
		}
		if !accept {
			// Revert without refreshing: the dirty cones of the swap and
			// its inverse merge and cancel at the next evaluation.
			if _, err := de.Swap(a, b); err != nil {
				return nil, 0, err
			}
			continue
		}
		cur, curSum = cand, candSum
		if cur < best || (cur == best && curSum < bestSum) {
			best, bestSum = cur, curSum
			bestAsg = de.ChainAssignments(bestAsg)
		}
	}
	// Materialize the recorded best assignment (the walk may have wandered
	// uphill since): group qubits by chain in ascending id order, exactly
	// like perf.DeltaEval.Layout — gate classes and hop counts depend only
	// on chain membership, so the layout prices at the recorded best.
	device := l.Device()
	chains := make([][]int, device.NumChains())
	for q, c := range bestAsg {
		chains[c] = append(chains[c], q)
	}
	nl, err := ti.NewLayout(device, chains)
	if err != nil {
		return nil, 0, err
	}
	return nl, best, nil
}

// Annealed is a placement policy for explicit circuits: it starts from a
// base random placement and runs AnnealLayout against the configured
// circuit, backend, and timing model. It is the search-based counterpart
// to InteractionAware/Refined — those minimize the cross-chain gate
// count; Annealed minimizes the parallel-model objective itself.
type Annealed struct {
	// Circuit is the explicit workload the layout is optimized for.
	// Required: placement quality is meaningless without gates to score.
	Circuit *circuit.Circuit
	// Base constructs the starting layout the search refines; nil selects
	// Random. A constructive policy here (e.g. InteractionAware) turns the
	// annealer into a refinement pass over that policy's output.
	Base Policy
	// Backend supplies the delta weights; nil selects the paper's
	// weak-link model (perf.WeakLink).
	Backend perf.TimingBackend
	// Latencies is the annealing objective's timing model; the zero value
	// selects perf.DefaultLatencies.
	Latencies perf.Latencies
	// Moves bounds the swap attempts; zero selects the default budget.
	Moves int
}

// Name implements Policy.
func (Annealed) Name() string { return "annealed" }

// Place implements Policy: the base policy's starting layout (Random by
// default, consuming the same stream draws as Random so trial replay stays
// aligned) followed by the annealing search.
func (p Annealed) Place(d *ti.Device, numQubits int, r *rand.Rand) (*ti.Layout, error) {
	if p.Circuit == nil {
		return nil, fmt.Errorf("placement: annealed policy requires a circuit")
	}
	base := p.Base
	if base == nil {
		base = Random{}
	}
	start, err := base.Place(d, numQubits, r)
	if err != nil {
		return nil, err
	}
	backend := p.Backend
	if backend == nil {
		backend = perf.WeakLink{}
	}
	lat := p.Latencies
	if lat == (perf.Latencies{}) {
		lat = perf.DefaultLatencies()
	}
	ev := perf.NewEvaluator(p.Circuit)
	annealed, _, err := AnnealLayout(ev, start, backend, lat, r, AnnealOptions{Moves: p.Moves})
	return annealed, err
}
