package placement

// CacheKey methods implement internal/cache.Keyer (structurally — no import
// needed) for the policies whose behavior is fully described by a canonical
// string. The stage pipeline (internal/core.Stages) only caches layouts
// produced by policies that provide one; Refined deliberately does not — its
// behavior depends on an arbitrary Base policy, so a universally correct
// fingerprint cannot be written for it and stage caching is bypassed.
// Annealed has the same problem one level down (its Base seeds the search)
// and resolves it with the empty-key convention: a CacheKey of "" means
// "no fingerprint exists" and the pipeline treats the policy as uncacheable.

import (
	"fmt"
	"hash/fnv"
	"sort"

	"velociti/internal/perf"
)

// CacheKey implements cache.Keyer. Random's behavior is fixed given the
// device, qubit count, and RNG stream, all of which the pipeline keys
// separately.
func (Random) CacheKey() string { return "random" }

// CacheKey implements cache.Keyer.
func (RoundRobin) CacheKey() string { return "round-robin" }

// CacheKey implements cache.Keyer.
func (Sequential) CacheKey() string { return "sequential" }

// CacheKey implements cache.Keyer: the annealed layout depends on the
// starting layout's policy, the circuit it is scored against, the
// backend's delta weights, the objective's timing model, and the move
// budget, so all five are folded in (normalized exactly as Place resolves
// them). A nil circuit can never produce an artifact — Place rejects it —
// so its key slot is a fixed sentinel. A Base policy without a fingerprint
// of its own makes the whole search unfingerprintable: the key is then ""
// and the pipeline bypasses stage caching (no key ⇒ no caching).
func (p Annealed) CacheKey() string {
	baseKey := "random"
	if p.Base != nil {
		k, ok := p.Base.(interface{ CacheKey() string })
		if !ok {
			return ""
		}
		if baseKey = k.CacheKey(); baseKey == "" {
			return ""
		}
	}
	circ := "nil"
	if p.Circuit != nil {
		circ = fmt.Sprintf("%016x", p.Circuit.Fingerprint())
	}
	be := "weaklink"
	if p.Backend != nil {
		be = p.Backend.CacheKey()
	}
	lat := p.Latencies
	if lat == (perf.Latencies{}) {
		lat = perf.DefaultLatencies()
	}
	moves := p.Moves
	if moves < 0 {
		moves = 0 // Place treats any non-positive budget as the default
	}
	return fmt.Sprintf("annealed/base={%s}/circ=%s/obj={%s}/be={%s}/m=%d", baseKey, circ, lat.CacheKey(), be, moves)
}

// CacheKey implements cache.Keyer: the interaction graph is part of the
// policy's behavior, so its content is hashed into the key in canonical
// (sorted-pair) order.
func (p InteractionAware) CacheKey() string {
	keys := make([][2]int, 0, len(p.Interactions))
	for k := range p.Interactions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	h := fnv.New64a()
	for _, k := range keys {
		fmt.Fprintf(h, "%d,%d=%d;", k[0], k[1], p.Interactions[k])
	}
	return fmt.Sprintf("interaction-aware/%016x", h.Sum64())
}
