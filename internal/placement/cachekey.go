package placement

// CacheKey methods implement internal/cache.Keyer (structurally — no import
// needed) for the policies whose behavior is fully described by a canonical
// string. The stage pipeline (internal/core.Stages) only caches layouts
// produced by policies that provide one; Refined deliberately does not — its
// behavior depends on an arbitrary Base policy, so a universally correct
// fingerprint cannot be written for it and stage caching is bypassed.

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// CacheKey implements cache.Keyer. Random's behavior is fixed given the
// device, qubit count, and RNG stream, all of which the pipeline keys
// separately.
func (Random) CacheKey() string { return "random" }

// CacheKey implements cache.Keyer.
func (RoundRobin) CacheKey() string { return "round-robin" }

// CacheKey implements cache.Keyer.
func (Sequential) CacheKey() string { return "sequential" }

// CacheKey implements cache.Keyer: the interaction graph is part of the
// policy's behavior, so its content is hashed into the key in canonical
// (sorted-pair) order.
func (p InteractionAware) CacheKey() string {
	keys := make([][2]int, 0, len(p.Interactions))
	for k := range p.Interactions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	h := fnv.New64a()
	for _, k := range keys {
		fmt.Fprintf(h, "%d,%d=%d;", k[0], k[1], p.Interactions[k])
	}
	return fmt.Sprintf("interaction-aware/%016x", h.Sum64())
}
