// Package viz renders VelociTI experiment results as standalone SVG
// figures, so the paper's bar charts (Figures 6–9) regenerate as actual
// images rather than tables. The renderer is dependency-free: it emits
// hand-written SVG with a fixed, readable layout — grouped bars with
// min/max error whiskers (the paper's presentation) on a labeled axis.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Value is one bar: a mean with optional min/max whiskers.
type Value struct {
	Mean, Min, Max float64
}

// Group is a cluster of bars sharing an x-axis label (e.g. one
// application, with one bar per chain length).
type Group struct {
	Label  string
	Values []Value
}

// Chart is a grouped bar chart specification.
type Chart struct {
	Title  string
	YLabel string
	// SeriesLabels names the bars within each group (legend entries);
	// its length must match every group's Values length.
	SeriesLabels []string
	Groups       []Group
	// LogScale selects a log10 y-axis, useful when one workload (QFT)
	// dwarfs the rest, as in the paper's Figure 6.
	LogScale bool
}

// Geometry constants (pixels).
const (
	chartWidth   = 860
	chartHeight  = 420
	marginLeft   = 70
	marginRight  = 20
	marginTop    = 50
	marginBottom = 60
	barGap       = 4
	groupGap     = 26
)

// palette cycles across series.
var palette = []string{"#4878cf", "#ee854a", "#6acc65", "#d65f5f", "#956cb4", "#8c613c"}

// Validate reports structural problems with the chart.
func (c *Chart) Validate() error {
	if len(c.Groups) == 0 {
		return fmt.Errorf("viz: chart %q has no groups", c.Title)
	}
	for _, g := range c.Groups {
		if len(g.Values) != len(c.SeriesLabels) {
			return fmt.Errorf("viz: chart %q group %q has %d values, want %d series",
				c.Title, g.Label, len(g.Values), len(c.SeriesLabels))
		}
		for _, v := range g.Values {
			if v.Mean < 0 || v.Min > v.Mean || v.Max < v.Mean {
				return fmt.Errorf("viz: chart %q group %q has inconsistent value %+v", c.Title, g.Label, v)
			}
			if c.LogScale && v.Mean <= 0 {
				return fmt.Errorf("viz: chart %q group %q: log scale requires positive means", c.Title, g.Label)
			}
		}
	}
	return nil
}

// yMax returns the largest whisker end across the chart.
func (c *Chart) yMax() float64 {
	top := 0.0
	for _, g := range c.Groups {
		for _, v := range g.Values {
			if v.Max > top {
				top = v.Max
			}
			if v.Mean > top {
				top = v.Mean
			}
		}
	}
	if top == 0 {
		top = 1
	}
	return top
}

func (c *Chart) yMinPositive() float64 {
	low := math.Inf(1)
	for _, g := range c.Groups {
		for _, v := range g.Values {
			m := v.Mean
			if v.Min > 0 && v.Min < m {
				m = v.Min
			}
			if m > 0 && m < low {
				low = m
			}
		}
	}
	if math.IsInf(low, 1) {
		return 0.1
	}
	return low
}

// SVG renders the chart.
func (c *Chart) SVG() (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	plotW := float64(chartWidth - marginLeft - marginRight)
	plotH := float64(chartHeight - marginTop - marginBottom)
	top := c.yMax() * 1.08

	var toY func(v float64) float64
	var ticks []float64
	if c.LogScale {
		lo := math.Pow(10, math.Floor(math.Log10(c.yMinPositive())))
		hi := math.Pow(10, math.Ceil(math.Log10(top)))
		logLo, logHi := math.Log10(lo), math.Log10(hi)
		toY = func(v float64) float64 {
			if v <= 0 {
				return float64(marginTop) + plotH
			}
			frac := (math.Log10(v) - logLo) / (logHi - logLo)
			return float64(marginTop) + plotH*(1-frac)
		}
		for e := logLo; e <= logHi+1e-9; e++ {
			ticks = append(ticks, math.Pow(10, e))
		}
	} else {
		step := niceStep(top / 5)
		toY = func(v float64) float64 {
			return float64(marginTop) + plotH*(1-v/top)
		}
		for v := 0.0; v <= top+1e-9; v += step {
			ticks = append(ticks, v)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		chartWidth, chartHeight, chartWidth, chartHeight)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="16" font-weight="bold">%s</text>`+"\n",
		marginLeft, escape(c.Title))
	// Y label, rotated.
	fmt.Fprintf(&b, `<text x="16" y="%v" font-family="sans-serif" font-size="12" transform="rotate(-90 16 %v)" text-anchor="middle">%s</text>`+"\n",
		float64(marginTop)+plotH/2, float64(marginTop)+plotH/2, escape(c.YLabel))
	// Gridlines + tick labels.
	for _, tv := range ticks {
		y := toY(tv)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginLeft, y, chartWidth-marginRight, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, formatTick(tv))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, float64(marginTop)+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
		marginLeft, float64(marginTop)+plotH, chartWidth-marginRight, float64(marginTop)+plotH)

	nGroups := len(c.Groups)
	nSeries := len(c.SeriesLabels)
	groupW := (plotW - float64((nGroups+1)*groupGap)) / float64(nGroups)
	barW := (groupW - float64((nSeries-1)*barGap)) / float64(nSeries)
	baseline := toY(0)
	if c.LogScale {
		baseline = float64(marginTop) + plotH
	}
	for gi, g := range c.Groups {
		gx := float64(marginLeft) + float64((gi+1)*groupGap) + float64(gi)*groupW
		for si, v := range g.Values {
			x := gx + float64(si)*(barW+barGap)
			y := toY(v.Mean)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, barW, baseline-y, palette[si%len(palette)])
			// Whiskers when min/max carry information.
			if v.Max > v.Mean || (v.Min > 0 && v.Min < v.Mean) {
				cx := x + barW/2
				yMin, yMaxPix := toY(v.Min), toY(v.Max)
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", cx, yMaxPix, cx, yMin)
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", cx-3, yMaxPix, cx+3, yMaxPix)
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", cx-3, yMin, cx+3, yMin)
			}
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
			gx+groupW/2, float64(marginTop)+plotH+18, escape(g.Label))
	}
	// Legend.
	lx := float64(marginLeft)
	ly := float64(chartHeight - 14)
	for si, label := range c.SeriesLabels {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="12" height="12" fill="%s"/>`+"\n",
			lx, ly-10, palette[si%len(palette)])
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			lx+16, ly, escape(label))
		lx += 20 + 8*float64(len(label)) + 16
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// niceStep rounds a raw step up to 1/2/5 × 10^k.
func niceStep(raw float64) float64 {
	if raw <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch {
	case raw/mag <= 1:
		return mag
	case raw/mag <= 2:
		return 2 * mag
	case raw/mag <= 5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

func formatTick(v float64) string {
	if v != 0 && (math.Abs(v) >= 1e4 || math.Abs(v) < 1e-2) {
		return fmt.Sprintf("%.0e", v)
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
