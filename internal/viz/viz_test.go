package viz

import (
	"encoding/xml"
	"strings"
	"testing"
)

func sample() *Chart {
	return &Chart{
		Title:        "Figure 6: serial vs parallel",
		YLabel:       "execution time [ms]",
		SeriesLabels: []string{"serial", "parallel"},
		Groups: []Group{
			{Label: "Supremacy", Values: []Value{{Mean: 56.4, Min: 56.4, Max: 56.4}, {Mean: 10.4, Min: 9.2, Max: 12.1}}},
			{Label: "QFT", Values: []Value{{Mean: 403.6, Min: 403.6, Max: 403.6}, {Mean: 74.1, Min: 71.5, Max: 78.1}}},
			{Label: "BV", Values: []Value{{Mean: 6.8, Min: 6.8, Max: 6.8}, {Mean: 1.4, Min: 1.0, Max: 1.8}}},
		},
	}
}

func TestSVGWellFormedXML(t *testing.T) {
	for _, logScale := range []bool{false, true} {
		c := sample()
		c.LogScale = logScale
		out, err := c.SVG()
		if err != nil {
			t.Fatal(err)
		}
		dec := xml.NewDecoder(strings.NewReader(out))
		for {
			_, err := dec.Token()
			if err != nil {
				if err.Error() == "EOF" {
					break
				}
				t.Fatalf("logScale=%v: invalid XML: %v", logScale, err)
			}
		}
		for _, want := range []string{"<svg", "Figure 6", "Supremacy", "serial", "rect"} {
			if !strings.Contains(out, want) {
				t.Errorf("logScale=%v: output missing %q", logScale, want)
			}
		}
	}
}

func TestSVGBarCounts(t *testing.T) {
	c := sample()
	out, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	// 1 background + 6 bars + 2 legend swatches = 9 rects.
	if n := strings.Count(out, "<rect"); n != 9 {
		t.Fatalf("rect count = %d, want 9", n)
	}
	// Whiskers appear for the parallel bars (3 × 3 lines), none for the
	// degenerate serial bars.
	if n := strings.Count(out, "stroke=\"black\""); n < 9+2 { // whiskers + axes
		t.Fatalf("whisker/axis line count = %d", n)
	}
}

func TestValidateRejectsBadCharts(t *testing.T) {
	cases := []*Chart{
		{Title: "empty", SeriesLabels: []string{"a"}},
		{Title: "ragged", SeriesLabels: []string{"a", "b"},
			Groups: []Group{{Label: "g", Values: []Value{{Mean: 1, Min: 1, Max: 1}}}}},
		{Title: "bad whiskers", SeriesLabels: []string{"a"},
			Groups: []Group{{Label: "g", Values: []Value{{Mean: 1, Min: 2, Max: 3}}}}},
		{Title: "log-nonpositive", LogScale: true, SeriesLabels: []string{"a"},
			Groups: []Group{{Label: "g", Values: []Value{{Mean: 0, Min: 0, Max: 0}}}}},
	}
	for _, c := range cases {
		if _, err := c.SVG(); err == nil {
			t.Errorf("chart %q should be rejected", c.Title)
		}
	}
}

func TestEscape(t *testing.T) {
	c := sample()
	c.Title = `a<b & "c"`
	out, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, `a<b`) {
		t.Fatalf("unescaped markup in output")
	}
	if !strings.Contains(out, "a&lt;b &amp; &quot;c&quot;") {
		t.Fatalf("escape mangled the title")
	}
}

func TestNiceStep(t *testing.T) {
	cases := map[float64]float64{
		0.7: 1, 1.3: 2, 3.1: 5, 7.2: 10, 23: 50, 81: 100, 0: 1,
	}
	for in, want := range cases {
		if got := niceStep(in); got != want {
			t.Errorf("niceStep(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestFormatTick(t *testing.T) {
	if formatTick(0.5) != "0.5" || formatTick(100) != "100" {
		t.Errorf("plain ticks mangled: %q %q", formatTick(0.5), formatTick(100))
	}
	if !strings.Contains(formatTick(1e5), "e+05") {
		t.Errorf("large tick = %q", formatTick(1e5))
	}
	if formatTick(0) != "0" {
		t.Errorf("zero tick = %q", formatTick(0))
	}
}
