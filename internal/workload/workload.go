// Package workload generates the synthetic workloads of the paper's
// evaluation: random circuits for the tool-scaling study (Figure 5),
// Quantum Volume circuits (Figure 8), and fixed-ratio random circuits
// (Figure 9).
//
// Workloads are expressed as circuit.Spec boundary conditions — exactly the
// abstraction VelociTI consumes (Table I). Because the paper does not
// report 1-qubit gate counts for synthetic workloads, each spec carries one
// 1-qubit gate per qubit; at δ = 1 µs against γ = 100 µs this perturbs
// runtimes by well under 1%. RandomCircuit additionally produces explicit
// gate-level random circuits for the QASM and functional-simulation test
// paths.
//
// Every constructor validates its arguments and returns an input-kind
// error (verr.ErrInput) on nonsense — workload parameters arrive straight
// from CLI flags, so rejection must be a diagnostic, never a panic.
package workload

import (
	"fmt"

	"velociti/internal/circuit"
	"velociti/internal/stats"
	"velociti/internal/verr"
)

// Random returns the spec of a random circuit with the given qubit and
// 2-qubit gate counts, as swept in the paper's Figure 5 tool-runtime study.
func Random(qubits, twoQubitGates int) circuit.Spec {
	return circuit.Spec{
		Name:          fmt.Sprintf("random-%dq-%dg", qubits, twoQubitGates),
		Qubits:        qubits,
		OneQubitGates: qubits,
		TwoQubitGates: twoQubitGates,
	}
}

// QuantumVolume returns the paper's quantum-volume workload: "a square
// quantum circuit with N qubits and N/2 2-qubit gates" (§VI-B). N must be
// even and at least 2.
func QuantumVolume(n int) (circuit.Spec, error) {
	if n < 2 || n%2 != 0 {
		return circuit.Spec{}, verr.Inputf("workload: quantum volume needs an even qubit count ≥ 2, got %d", n)
	}
	return circuit.Spec{
		Name:          fmt.Sprintf("qv%d", n),
		Qubits:        n,
		OneQubitGates: n,
		TwoQubitGates: n / 2,
	}, nil
}

// RatioCircuit returns an N-qubit random workload with ratio·N 2-qubit
// gates. The paper's Figure 9 uses ratio 2 ("N qubits to 2·N 2-qubit
// gates") to contrast with quantum volume's ratio of 1/2.
func RatioCircuit(n int, ratio float64) (circuit.Spec, error) {
	if n < 1 || ratio < 0 {
		return circuit.Spec{}, verr.Inputf("workload: invalid ratio circuit n=%d ratio=%g", n, ratio)
	}
	return circuit.Spec{
		Name:          fmt.Sprintf("ratio%g-%dq", ratio, n),
		Qubits:        n,
		OneQubitGates: n,
		TwoQubitGates: int(ratio * float64(n)),
	}, nil
}

// QVSweep returns quantum-volume specs for N = from, from+step, ..., ≤ to.
// The paper sweeps N from 8 to 128 in steps of 20 qubits (8, 28, 48, ...).
func QVSweep(from, to, step int) ([]circuit.Spec, error) {
	if step <= 0 {
		return nil, verr.Inputf("workload: sweep step must be positive, got %d", step)
	}
	var out []circuit.Spec
	for n := from; n <= to; n += step {
		spec, err := QuantumVolume(n)
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

// RatioSweep returns fixed-ratio specs over the same qubit range as
// QVSweep.
func RatioSweep(from, to, step int, ratio float64) ([]circuit.Spec, error) {
	if step <= 0 {
		return nil, verr.Inputf("workload: sweep step must be positive, got %d", step)
	}
	var out []circuit.Spec
	for n := from; n <= to; n += step {
		spec, err := RatioCircuit(n, ratio)
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

// Fig5Grid returns the (qubits, 2-qubit gates) grid of the paper's Figure 5
// software-runtime study: qubits from 25 to 100 in steps of 25 with 4
// 2-qubit gates per qubit (25/100 up to 100/400).
func Fig5Grid() []circuit.Spec {
	var out []circuit.Spec
	for n := 25; n <= 100; n += 25 {
		out = append(out, Random(n, 4*n))
	}
	return out
}

// RandomCircuit generates an explicit gate-level random circuit: `gates`
// operations over n qubits, each a 1-qubit gate with probability
// oneQubitFraction (an H, X, or T chosen uniformly) and otherwise a CX on a
// uniformly drawn distinct qubit pair. It exercises the QASM and
// functional-simulation paths; the performance experiments use abstract
// specs.
func RandomCircuit(n, gates int, oneQubitFraction float64, seed int64) (*circuit.Circuit, error) {
	p, err := RandomCircuitProgram(n, gates, oneQubitFraction, seed)
	if err != nil {
		return nil, err
	}
	return p.Circuit()
}

// RandomCircuitProgram is RandomCircuit as a streaming-capable program:
// the identical seeded gate sequence, emitted against any circuit.Builder
// without materializing it. The body re-seeds its generator on every
// emission, so repeated streams are bit-identical — this is the fixed-width
// scale workload behind the streaming memory benchmarks.
func RandomCircuitProgram(n, gates int, oneQubitFraction float64, seed int64) (circuit.Program, error) {
	if n < 2 {
		return circuit.Program{}, verr.Inputf("workload: random circuit needs at least 2 qubits, got %d", n)
	}
	if gates < 0 {
		return circuit.Program{}, verr.Inputf("workload: random circuit gate count must be non-negative, got %d", gates)
	}
	if oneQubitFraction < 0 || oneQubitFraction > 1 {
		return circuit.Program{}, verr.Inputf("workload: 1-qubit fraction %g out of [0,1]", oneQubitFraction)
	}
	return circuit.Program{
		Name:   fmt.Sprintf("random%dq%dg", n, gates),
		Qubits: n,
		Body: func(c circuit.Builder) {
			r := stats.NewRand(seed)
			oneQ := [...]circuit.Kind{circuit.H, circuit.X, circuit.T}
			q1 := [1]int{}
			for i := 0; i < gates; i++ {
				if r.Float64() < oneQubitFraction {
					// Draw order matches the original inline call: kind
					// first, then operand.
					k := oneQ[r.Intn(len(oneQ))]
					q1[0] = r.Intn(n)
					c.Append(k, q1[:])
					continue
				}
				a := r.Intn(n)
				b := r.Intn(n)
				for b == a {
					b = r.Intn(n)
				}
				c.CX(a, b)
			}
		},
	}, nil
}
