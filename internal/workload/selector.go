package workload

// Selector is the request-shaped workload description shared by the sweep
// CLI (cmd/velociti-sweep flags) and the sweep service (internal/serve
// JSON requests): exactly one source — a Table II application, a
// quantum-volume sweep, a fixed-ratio sweep, or explicit gate counts —
// resolved into the circuit.Spec list a grid evaluates. Keeping the
// resolution here is what lets the service guarantee byte-identical
// responses to the CLI: both front ends hand the same Selector to the
// same code.

import (
	"strconv"
	"strings"

	"velociti/internal/apps"
	"velociti/internal/circuit"
	"velociti/internal/verr"
)

// Selector names one workload source. Fields mirror the velociti-sweep
// flags of the same names; exactly one of App, QV, Ratio > 0, or
// Qubits > 0 must be set.
type Selector struct {
	// App selects a Table II application by name.
	App string `json:"app,omitempty"`
	// QV selects the quantum-volume sweep (N qubits, N/2 2-qubit gates).
	QV bool `json:"qv,omitempty"`
	// Ratio, when positive, selects the fixed-ratio sweep (N qubits,
	// Ratio·N 2-qubit gates).
	Ratio float64 `json:"ratio,omitempty"`
	// Qubits/OneQubitGates/TwoQubitGates describe an explicit workload.
	Qubits        int `json:"qubits,omitempty"`
	OneQubitGates int `json:"one_qubit_gates,omitempty"`
	TwoQubitGates int `json:"two_qubit_gates,omitempty"`
	// QubitRange is the "from:to:step" qubit sweep used with QV or Ratio;
	// empty selects the paper's 8:128:20.
	QubitRange string `json:"qubit_range,omitempty"`
}

// Specs resolves the selector into the workload spec list. All failures
// are input-kind: a Selector is assembled from CLI flags or request JSON.
func (s Selector) Specs() ([]circuit.Spec, error) {
	switch {
	case s.App != "":
		a, err := apps.ByName(s.App)
		if err != nil {
			return nil, err
		}
		return []circuit.Spec{a.Spec}, nil
	case s.QV || s.Ratio > 0:
		from, to, step, err := s.qubitRange()
		if err != nil {
			return nil, err
		}
		if s.QV {
			return QVSweep(from, to, step)
		}
		return RatioSweep(from, to, step, s.Ratio)
	case s.Qubits > 0:
		spec := circuit.Spec{Name: "sweep", Qubits: s.Qubits, OneQubitGates: s.OneQubitGates, TwoQubitGates: s.TwoQubitGates}
		return []circuit.Spec{spec}, spec.Validate()
	default:
		return nil, verr.Inputf("no workload: pass -app, -qv, -ratio, or -qubits (see -h)")
	}
}

// qubitRange parses QubitRange, defaulting to the paper's 8:128:20.
func (s Selector) qubitRange() (from, to, step int, err error) {
	from, to, step = 8, 128, 20
	if s.QubitRange == "" {
		return from, to, step, nil
	}
	parts := strings.Split(s.QubitRange, ":")
	if len(parts) != 3 {
		return 0, 0, 0, verr.Inputf("-qubit-range wants from:to:step, got %q", s.QubitRange)
	}
	vals := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return 0, 0, 0, verr.Inputf("-qubit-range: %w", err)
		}
		vals[i] = v
	}
	from, to, step = vals[0], vals[1], vals[2]
	if step <= 0 {
		return 0, 0, 0, verr.Inputf("-qubit-range step must be positive")
	}
	return from, to, step, nil
}
