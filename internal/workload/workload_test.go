package workload

import (
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/verr"
)

// ok unwraps a constructor result, failing the test on error.
func ok[T any](t *testing.T) func(T, error) T {
	return func(v T, err error) T {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return v
	}
}

// mustReject asserts that a constructor rejects its arguments with an
// input-kind error (the errors-not-panics contract).
func mustReject(t *testing.T, name string, f func() error) {
	t.Helper()
	err := f()
	if err == nil {
		t.Errorf("%s: expected an error", name)
		return
	}
	if !verr.IsInput(err) {
		t.Errorf("%s: error should be input-kind, got %v", name, err)
	}
}

func TestRandomSpec(t *testing.T) {
	s := Random(25, 100)
	if s.Qubits != 25 || s.TwoQubitGates != 100 || s.OneQubitGates != 25 {
		t.Fatalf("spec = %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuantumVolume(t *testing.T) {
	s := ok[circuit.Spec](t)(QuantumVolume(128))
	if s.Qubits != 128 || s.TwoQubitGates != 64 {
		t.Fatalf("QV spec = %+v, want N qubits, N/2 2q gates", s)
	}
	mustReject(t, "odd", func() error { _, err := QuantumVolume(7); return err })
	mustReject(t, "tiny", func() error { _, err := QuantumVolume(0); return err })
}

func TestRatioCircuit(t *testing.T) {
	s := ok[circuit.Spec](t)(RatioCircuit(64, 2))
	if s.TwoQubitGates != 128 {
		t.Fatalf("2:1 ratio spec = %+v", s)
	}
	if s.TwoQubitRatio() != 2 {
		t.Fatalf("ratio = %v", s.TwoQubitRatio())
	}
	half := ok[circuit.Spec](t)(RatioCircuit(64, 0.5))
	if half.TwoQubitGates != 32 {
		t.Fatalf("0.5 ratio = %+v", half)
	}
	mustReject(t, "negative", func() error { _, err := RatioCircuit(4, -1); return err })
}

func TestQVSweepRange(t *testing.T) {
	// The paper sweeps quantum volume from 8 to 128 qubits.
	specs := ok[[]circuit.Spec](t)(QVSweep(8, 128, 20))
	if len(specs) != 7 {
		t.Fatalf("sweep size = %d, want 7 (8,28,...,128)", len(specs))
	}
	if specs[0].Qubits != 8 || specs[6].Qubits != 128 {
		t.Fatalf("sweep endpoints = %d..%d", specs[0].Qubits, specs[6].Qubits)
	}
	for _, s := range specs {
		if s.TwoQubitGates != s.Qubits/2 {
			t.Errorf("spec %s: p = %d, want N/2", s.Name, s.TwoQubitGates)
		}
	}
	mustReject(t, "bad step", func() error { _, err := QVSweep(8, 128, 0); return err })
}

func TestRatioSweep(t *testing.T) {
	specs := ok[[]circuit.Spec](t)(RatioSweep(8, 128, 20, 2))
	if len(specs) != 7 {
		t.Fatalf("sweep size = %d", len(specs))
	}
	for _, s := range specs {
		if s.TwoQubitGates != 2*s.Qubits {
			t.Errorf("spec %s: p = %d, want 2N", s.Name, s.TwoQubitGates)
		}
	}
	mustReject(t, "bad step", func() error { _, err := RatioSweep(8, 128, -1, 2); return err })
}

func TestFig5Grid(t *testing.T) {
	grid := Fig5Grid()
	if len(grid) != 4 {
		t.Fatalf("grid size = %d, want 4", len(grid))
	}
	// Endpoints named in the paper: 25q/100g and 100q/400g.
	if grid[0].Qubits != 25 || grid[0].TwoQubitGates != 100 {
		t.Fatalf("grid[0] = %+v", grid[0])
	}
	if grid[3].Qubits != 100 || grid[3].TwoQubitGates != 400 {
		t.Fatalf("grid[3] = %+v", grid[3])
	}
}

func TestRandomCircuitComposition(t *testing.T) {
	c := ok[*circuit.Circuit](t)(RandomCircuit(10, 200, 0.3, 5))
	if c.NumGates() != 200 {
		t.Fatalf("gates = %d", c.NumGates())
	}
	oneQ := c.NumOneQubitGates()
	// With fraction 0.3 over 200 gates, expect roughly 60; allow wide
	// tolerance but catch systematic inversion.
	if oneQ < 30 || oneQ > 100 {
		t.Fatalf("1q gates = %d, outside plausible range for fraction 0.3", oneQ)
	}
	for _, g := range c.Gates() {
		if g.IsTwoQubit() && g.Qubits[0] == g.Qubits[1] {
			t.Fatalf("degenerate 2q gate %v", g)
		}
	}
}

func TestRandomCircuitExtremes(t *testing.T) {
	all1 := ok[*circuit.Circuit](t)(RandomCircuit(4, 50, 1.0, 1))
	if all1.NumTwoQubitGates() != 0 {
		t.Fatalf("fraction 1.0 should produce no 2q gates")
	}
	all2 := ok[*circuit.Circuit](t)(RandomCircuit(4, 50, 0.0, 1))
	if all2.NumOneQubitGates() != 0 {
		t.Fatalf("fraction 0.0 should produce no 1q gates")
	}
}

func TestRandomCircuitDeterminism(t *testing.T) {
	a := ok[*circuit.Circuit](t)(RandomCircuit(6, 40, 0.5, 9))
	b := ok[*circuit.Circuit](t)(RandomCircuit(6, 40, 0.5, 9))
	if a.String() != b.String() {
		t.Fatalf("same seed should reproduce the circuit")
	}
}

func TestRandomCircuitValidation(t *testing.T) {
	mustReject(t, "narrow", func() error { _, err := RandomCircuit(1, 5, 0.5, 1); return err })
	mustReject(t, "gates", func() error { _, err := RandomCircuit(4, -1, 0.5, 1); return err })
	mustReject(t, "fraction", func() error { _, err := RandomCircuit(4, 5, 1.5, 1); return err })
}
