package workload

import (
	"strings"
	"testing"

	"velociti/internal/verr"
)

func TestSelectorApp(t *testing.T) {
	specs, err := Selector{App: "BV"}.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "BV" {
		t.Fatalf("specs = %+v", specs)
	}
}

func TestSelectorQVDefaultRange(t *testing.T) {
	specs, err := Selector{QV: true}.Specs()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's default sweep: N = 8, 28, ..., 128.
	if len(specs) != 7 || specs[0].Qubits != 8 || specs[6].Qubits != 128 {
		t.Fatalf("qv specs = %+v", specs)
	}
}

func TestSelectorRatioRange(t *testing.T) {
	specs, err := Selector{Ratio: 2, QubitRange: "8:28:20"}.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[1].TwoQubitGates != 56 {
		t.Fatalf("ratio specs = %+v", specs)
	}
}

func TestSelectorExplicit(t *testing.T) {
	specs, err := Selector{Qubits: 16, TwoQubitGates: 32}.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Qubits != 16 || specs[0].Name != "sweep" {
		t.Fatalf("explicit specs = %+v", specs)
	}
}

func TestSelectorErrors(t *testing.T) {
	cases := []struct {
		name   string
		sel    Selector
		substr string
	}{
		{"empty", Selector{}, "no workload"},
		{"unknown app", Selector{App: "Nope"}, "unknown application"},
		{"bad range", Selector{QV: true, QubitRange: "banana"}, "-qubit-range"},
		{"bad range number", Selector{QV: true, QubitRange: "a:b:c"}, "-qubit-range"},
		{"zero step", Selector{QV: true, QubitRange: "8:32:0"}, "step must be positive"},
		{"odd qv qubits", Selector{QV: true, QubitRange: "9:9:1"}, "even qubit count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.sel.Specs()
			if err == nil || !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("err = %v, want mention of %q", err, tc.substr)
			}
			if !verr.IsInput(err) {
				t.Errorf("err = %v, want input-kind", err)
			}
		})
	}
}
