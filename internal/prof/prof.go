// Package prof wires the standard pprof profile destinations into
// VelociTI's CLIs as -cpuprofile/-memprofile flags, mirroring `go test`'s
// flags of the same names. Profiles go to the named files only — nothing
// is written to stdout or stderr — so enabling profiling never perturbs a
// command's observable output.
package prof

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"

	"velociti/internal/verr"
)

// Flags holds the requested profile destinations. Zero values disable
// profiling entirely.
type Flags struct {
	CPUPath string
	MemPath string

	cpuFile *os.File
}

// Register installs the -cpuprofile and -memprofile flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPUPath, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemPath, "memprofile", "", "write an allocation profile to this file on exit")
}

// Start begins CPU profiling when requested. Callers must pair it with
// Stop; on error nothing was started and Stop is a no-op.
func (f *Flags) Start() error {
	if f.CPUPath == "" {
		return nil
	}
	file, err := os.Create(f.CPUPath)
	if err != nil {
		return verr.Inputf("-cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		if cerr := file.Close(); cerr != nil {
			return verr.Inputf("-cpuprofile: %w (and closing the file: %v)", err, cerr)
		}
		return verr.Inputf("-cpuprofile: %w", err)
	}
	f.cpuFile = file
	return nil
}

// Stop finalizes both profiles: it ends CPU profiling and, when a
// -memprofile destination was given, collects garbage and writes the
// allocation profile (the "allocs" profile, like `go test -memprofile`).
// Safe to call when no profiling was requested; runs to the end through
// partial failures and returns the first error.
func (f *Flags) Stop() error {
	var first error
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil && first == nil {
			first = err
		}
		f.cpuFile = nil
	}
	if f.MemPath != "" {
		file, err := os.Create(f.MemPath)
		if err != nil {
			if first == nil {
				first = verr.Inputf("-memprofile: %w", err)
			}
			return first
		}
		runtime.GC() // materialize the final live set before snapshotting
		if err := pprof.Lookup("allocs").WriteTo(file, 0); err != nil && first == nil {
			first = err
		}
		if err := file.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
