package prof

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestDisabledIsNoOp(t *testing.T) {
	var f Flags
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterInstallsFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var f Flags
	f.Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", "cpu.out", "-memprofile", "mem.out"}); err != nil {
		t.Fatal(err)
	}
	if f.CPUPath != "cpu.out" || f.MemPath != "mem.out" {
		t.Fatalf("parsed = %+v", f)
	}
}

func TestProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	f := Flags{CPUPath: filepath.Join(dir, "cpu.pprof"), MemPath: filepath.Join(dir, "mem.pprof")}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	// A little work so the CPU profile has something to sample.
	sink := 0
	for i := 0; i < 1e6; i++ {
		sink += i * i
	}
	_ = sink
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{f.CPUPath, f.MemPath} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestStartRejectsBadPath(t *testing.T) {
	f := Flags{CPUPath: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")}
	if err := f.Start(); err == nil {
		t.Fatal("want error for uncreatable cpu profile path")
	}
	if err := f.Stop(); err != nil {
		t.Fatalf("Stop after failed Start must be a no-op: %v", err)
	}
}

func TestStopReportsBadMemPath(t *testing.T) {
	f := Flags{MemPath: filepath.Join(t.TempDir(), "no", "such", "dir", "mem.pprof")}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(); err == nil {
		t.Fatal("want error for uncreatable mem profile path")
	}
}

func TestStopIdempotent(t *testing.T) {
	dir := t.TempDir()
	f := Flags{CPUPath: filepath.Join(dir, "cpu.pprof")}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
}
