package core

// BindAll is the plan-grouped explorer's batched stage-3: one coupled trial
// (one RNG stream: placement, then synthesis over the stream state placement
// left behind) classified under every timing model of a sweep at once. The
// per-lane artifacts integrate with the same pipeline caches the per-cell
// path uses — keys are rebuilt per lane from the lane placer's fingerprint,
// so a grouped run and a per-cell run populate and hit identical entries.

import (
	"fmt"

	"velociti/internal/perf"
	"velociti/internal/schedule"
	"velociti/internal/stats"
)

// BindAll produces the gate-class bindings of one trial under every timing
// model in lats. The configured placer must implement schedule.SweepPlacer
// (every built-in placer does) unless the config is in explicit mode, where
// the circuit is fixed and every lane shares one binding.
//
// Bit-exactness contract: BindAll(seed, lats)[j] equals the Bind(seed) of a
// Stages whose Placer is sweepPlacer.At(lats[j]) — same layout, same gate
// sequence, same classes — because all lanes consume one shared RNG stream
// whose draws are latency-independent. Lanes whose synthesized circuits
// coincide (always, for latency-free placers) share one *perf.Binding.
func (s *Stages) BindAll(seed int64, lats []perf.Latencies) ([]*perf.Binding, error) {
	nl := len(lats)
	if nl == 0 {
		return nil, fmt.Errorf("core: BindAll requires at least one timing model")
	}
	out := make([]*perf.Binding, nl)
	if s.shared != nil {
		// Explicit mode: the binding depends on (circuit, layout) only.
		b, err := s.Bind(seed)
		if err != nil {
			return nil, err
		}
		for j := range out {
			out[j] = b
		}
		return out, nil
	}
	sp, ok := s.cfg.Placer.(schedule.SweepPlacer)
	if !ok {
		return nil, fmt.Errorf("core: placer %q does not support batched synthesis", s.cfg.Placer.Name())
	}

	// Per-lane bind/synth cache keys ("" disables caching for the lane).
	bindKeys := make([]string, nl)
	synthKeys := make([]string, nl)
	if s.pl != nil && s.keyPol != "" {
		for j := range lats {
			if pk, ok := policyKey(sp.At(lats[j])); ok {
				sk, bk := s.stageKeys(pk)
				synthKeys[j] = seedKey(sk, seed)
				bindKeys[j] = seedKey(bk, seed)
			}
		}
		// All-lanes-hit fast path; a partial hit recomputes everything,
		// since the coupled trial is one pass that produces all lanes.
		hit := true
		for j, key := range bindKeys {
			if key == "" {
				hit = false
				break
			}
			v, ok := s.pl.bind.Get(key)
			if !ok {
				hit = false
				break
			}
			out[j] = v.(*perf.Binding)
		}
		if hit {
			return out, nil
		}
	}

	// The generator never escapes the coupled trial, so its state storage
	// is pooled; PooledRand's stream is bit-identical to NewRand's.
	r := stats.PooledRand(seed)
	defer stats.RecycleRand(r)
	layout, err := s.cfg.Placement.Place(s.device, s.spec.Qubits, r)
	if err != nil {
		return nil, err
	}
	circs, err := sp.PlaceAll(s.spec, layout, r, lats)
	if err != nil {
		return nil, err
	}
	if s.pl != nil && s.placeKey != "" {
		s.pl.place.Put(seedKey(s.placeKey, seed), layout)
	}
	for j, c := range circs {
		// Lanes aliasing an earlier lane's circuit share its binding.
		aliased := false
		for i := 0; i < j; i++ {
			if circs[i] == c {
				out[j] = out[i]
				aliased = true
				break
			}
		}
		if aliased {
			continue
		}
		b, err := perf.BindCircuitScratch(c, layout)
		if err != nil {
			return nil, err
		}
		// Backend annotation happens before the binding reaches the cache
		// or any aliasing lane, matching bindCompute's publish contract.
		if err := s.cfg.Backend.Prepare(b, layout); err != nil {
			return nil, err
		}
		out[j] = b
		if s.pl != nil {
			if synthKeys[j] != "" {
				s.pl.synth.Put(synthKeys[j], b.Evaluator())
			}
			if bindKeys[j] != "" {
				s.pl.bind.Put(bindKeys[j], b)
			}
		}
	}
	return out, nil
}
