package core_test

// Streaming-path equivalence tests: Config.Stream must reproduce the
// materialized pipeline bit for bit — same trials, same floats, same
// report — for every workload form (explicit circuit, Program, spec +
// streaming placer), both timing backends, and any worker count. The one
// sanctioned deviation is Result.CriticalPath, which streaming does not
// recover; tests clear it from the materialized side before comparing.

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"velociti/internal/apps"
	"velociti/internal/circuit"
	"velociti/internal/core"
	"velociti/internal/perf"
	"velociti/internal/schedule"
	"velociti/internal/shuttle"
	"velociti/internal/ti"
	"velociti/internal/verr"
)

// stripReportPaths clears the sanctioned streaming deviation from a
// materialized report so DeepEqual checks everything else.
func stripReportPaths(rep *core.Report) *core.Report {
	for i := range rep.Trials {
		rep.Trials[i].Perf.CriticalPath = nil
	}
	return rep
}

// streamBackends returns the two shipped timing backends; both implement
// perf.SourceTimer.
func streamBackends() map[string]perf.TimingBackend {
	return map[string]perf.TimingBackend{
		"weaklink": perf.WeakLink{},
		"shuttle":  shuttle.Backend{Params: shuttle.Default()},
	}
}

// streamConfigs enumerates the three workload forms over a QFT workload:
// explicit circuit, Program, and spec + streaming placer.
func streamConfigs(t *testing.T) map[string]core.Config {
	t.Helper()
	prog, err := apps.QFTProgram(24)
	if err != nil {
		t.Fatal(err)
	}
	circ, err := prog.Circuit()
	if err != nil {
		t.Fatal(err)
	}
	base := core.Config{ChainLength: 8, Runs: 4, Seed: 99}
	explicit, program, spec := base, base, base
	explicit.Circuit = circ
	program.Program = &prog
	spec.Spec = circuit.Spec{Name: "spec", Qubits: 24, OneQubitGates: 40, TwoQubitGates: 160}
	spec.Placer = schedule.WeakAvoiding{}
	return map[string]core.Config{"explicit": explicit, "program": program, "spec": spec}
}

func TestStreamRunMatchesMaterialized(t *testing.T) {
	for mode, cfg := range streamConfigs(t) {
		for beName, be := range streamBackends() {
			for _, workers := range []int{1, 4} {
				mat := cfg
				mat.Backend = be
				mat.Workers = workers
				want, err := core.Run(mat)
				if err != nil {
					t.Fatalf("%s/%s/w%d materialized: %v", mode, beName, workers, err)
				}
				str := mat
				str.Stream = true
				got, err := core.Run(str)
				if err != nil {
					t.Fatalf("%s/%s/w%d streaming: %v", mode, beName, workers, err)
				}
				if !reflect.DeepEqual(got, stripReportPaths(want)) {
					t.Fatalf("%s/%s/w%d: streaming report diverges\ngot  %+v\nwant %+v",
						mode, beName, workers, got, want)
				}
			}
		}
	}
}

func TestStreamSweepMatchesMaterialized(t *testing.T) {
	lats := make([]perf.Latencies, 3)
	for i, alpha := range []float64{1, 4, 9.5} {
		lats[i] = perf.DefaultLatencies()
		lats[i].WeakPenalty = alpha
	}
	for mode, cfg := range streamConfigs(t) {
		for beName, be := range streamBackends() {
			mat := cfg
			mat.Backend = be
			mat.Workers = 4
			want, err := core.RunSweep(mat, lats)
			if err != nil {
				t.Fatalf("%s/%s materialized: %v", mode, beName, err)
			}
			str := mat
			str.Stream = true
			got, err := core.RunSweep(str, lats)
			if err != nil {
				t.Fatalf("%s/%s streaming: %v", mode, beName, err)
			}
			for j := range want {
				if !reflect.DeepEqual(got[j], stripReportPaths(want[j])) {
					t.Fatalf("%s/%s lane %d: streaming sweep diverges", mode, beName, j)
				}
			}
		}
	}
}

// TestStreamGridMatchesMaterialized pins the sweep surface end to end:
// the CSV a streaming grid renders is byte-identical to the materialized
// one (the CSV never contained critical paths).
func TestStreamGridMatchesMaterialized(t *testing.T) {
	grid := core.Grid{
		Specs: []circuit.Spec{
			{Name: "a", Qubits: 20, OneQubitGates: 30, TwoQubitGates: 90},
			{Name: "b", Qubits: 33, OneQubitGates: 10, TwoQubitGates: 140},
		},
		ChainLengths: []int{8, 12},
		Alphas:       []float64{1, 7},
		Placers:      []string{"random", "weak-avoiding"},
		Runs:         3,
		Seed:         5,
		Workers:      2,
	}
	res, err := core.RunGrid(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	grid.Stream = true
	sres, err := core.RunGrid(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := res.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if err := sres.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if res.Failed() != 0 || sres.Failed() != 0 {
		t.Fatalf("failed cells: materialized %d, streaming %d", res.Failed(), sres.Failed())
	}
	if want.String() != got.String() {
		t.Fatalf("streaming grid CSV diverges\ngot:\n%s\nwant:\n%s", got.String(), want.String())
	}
}

// TestStreamPipelineCaches: a second identical streaming run over a
// shared Pipeline must hit the stream cache instead of recomputing — in
// Program mode via the content fingerprint learned from the first run's
// rolling hash.
func TestStreamPipelineCaches(t *testing.T) {
	for mode, cfg := range streamConfigs(t) {
		pl := core.NewPipeline()
		cfg.Stream = true
		cfg.Pipeline = pl
		first, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("%s first run: %v", mode, err)
		}
		second, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("%s second run: %v", mode, err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("%s: cached streaming run diverges from the first", mode)
		}
		st := pl.Stats().Stream
		wantHits := uint64(cfg.Runs)
		if mode == "program" {
			// Each run's Stages learns the program fingerprint from its
			// own first evaluation, so the second run recomputes one
			// trial before the cache key exists and hits the rest.
			wantHits = uint64(cfg.Runs - 1)
		}
		if st.Hits < wantHits {
			t.Fatalf("%s: stream cache hits = %d, want >= %d", mode, st.Hits, wantHits)
		}
		if st.Entries == 0 {
			t.Fatalf("%s: stream cache retained nothing", mode)
		}
	}
}

func TestStreamValidateRejects(t *testing.T) {
	prog, err := apps.QFTProgram(8)
	if err != nil {
		t.Fatal(err)
	}
	circ, err := prog.Circuit()
	if err != nil {
		t.Fatal(err)
	}
	base := core.Config{ChainLength: 8, Runs: 2, Seed: 1,
		Spec: circuit.Spec{Name: "s", Qubits: 8, OneQubitGates: 4, TwoQubitGates: 12}}

	cases := map[string]struct {
		mutate func(*core.Config)
		want   string
	}{
		"backend cannot stream": {
			mutate: func(c *core.Config) {
				c.Stream = true
				c.Backend = bareBackend{}
			},
			want: "cannot stream (no StreamTimeAll)",
		},
		"searching placer cannot stream": {
			mutate: func(c *core.Config) {
				c.Stream = true
				c.Placer = schedule.Annealed{}
			},
			want: "cannot stream",
		},
		"circuit and program conflict": {
			mutate: func(c *core.Config) {
				c.Circuit = circ
				c.Program = &prog
			},
			want: "both Circuit and Program",
		},
		"program without body": {
			mutate: func(c *core.Config) {
				c.Program = &circuit.Program{Name: "empty", Qubits: 4}
				c.Stream = true
			},
			want: "no body",
		},
	}
	for name, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		_, err := core.Run(cfg)
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if !verr.IsInput(err) {
			t.Fatalf("%s: not an input-kind rejection: %v", name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}

	cfg := base
	cfg.Stream = true
	if _, _, _, err := core.RunOnce(cfg, 7); err == nil || !verr.IsInput(err) {
		t.Fatalf("RunOnce with Stream: err = %v, want input-kind rejection", err)
	}
}

// bareBackend implements perf.TimingBackend without SourceTimer.
type bareBackend struct{}

func (bareBackend) Name() string                            { return "bare" }
func (bareBackend) CacheKey() string                        { return "bare" }
func (bareBackend) Validate() error                         { return nil }
func (bareBackend) Prepare(*perf.Binding, *ti.Layout) error { return nil }
func (bareBackend) Time(b *perf.Binding, lat perf.Latencies) (perf.Result, error) {
	return perf.WeakLink{}.Time(b, lat)
}
func (bareBackend) TimeAll(b *perf.Binding, lats []perf.Latencies) ([]perf.Result, error) {
	return perf.WeakLink{}.TimeAll(b, lats)
}

// TestProgramModeMaterializedRun: a Program without Stream runs through
// the classic pipeline by materializing once — equal to the explicit
// circuit config, critical paths included.
func TestProgramModeMaterializedRun(t *testing.T) {
	prog, err := apps.QFTProgram(16)
	if err != nil {
		t.Fatal(err)
	}
	circ, err := prog.Circuit()
	if err != nil {
		t.Fatal(err)
	}
	progCfg := core.Config{Program: &prog, ChainLength: 8, Runs: 3, Seed: 3}
	circCfg := core.Config{Circuit: circ, ChainLength: 8, Runs: 3, Seed: 3}
	got, err := core.Run(progCfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(circCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("program-mode materialized run diverges from explicit circuit")
	}
}
