package core

import (
	"testing"

	"velociti/internal/apps"
)

// TestBVParallelBoundedBySerialPerGate is the regression guard for the
// "BV speedup 0.54x" report: a serial/parallel speedup below 1× is
// expected model behavior for Bernstein–Vazirani, not a bug, because
// Eq. 1–2 charges the α·γ weak-link penalty only once per distinct link
// while the parallel model charges every cross-chain gate (see the
// SerialTime doc in internal/perf). What must hold instead, in every
// trial, is the physical bound: the parallel time can never exceed the
// per-gate-charged serial worst case.
func TestBVParallelBoundedBySerialPerGate(t *testing.T) {
	a, err := apps.ByName("BV")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{
		Spec:        a.Spec,
		ChainLength: 16,
		Runs:        20,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range rep.Trials {
		if tr.Perf.ParallelMicros > tr.Perf.SerialPerGateMicros {
			t.Errorf("trial %d: parallel %.3f µs exceeds per-gate serial bound %.3f µs",
				i, tr.Perf.ParallelMicros, tr.Perf.SerialPerGateMicros)
		}
	}
	// The gate-level generator (velociti -app BV -app-gates) is where the
	// sub-1× speedup shows up: the oracle CXs all share the ancilla, so
	// the dependency chain is as long as the gate list and the critical
	// path pays α·γ per cross-chain gate.
	c, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	grep, err := Run(Config{Circuit: c, ChainLength: 16, Runs: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range grep.Trials {
		if tr.Perf.ParallelMicros > tr.Perf.SerialPerGateMicros {
			t.Errorf("gate-level trial %d: parallel %.3f µs exceeds per-gate bound %.3f µs",
				i, tr.Perf.ParallelMicros, tr.Perf.SerialPerGateMicros)
		}
	}
	// Pin the documented expectation: the Eq. 1–2 baseline genuinely sits
	// below the parallel time here (speedup < 1 is correct, not a bug).
	if s := grep.MeanSpeedup(); s >= 1 {
		t.Errorf("gate-level BV speedup = %.2fx; expected < 1 (Eq. 1's Γ charges only w link-uses — did the model or defaults change?)", s)
	}
}
