package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"velociti/internal/apps"
	"velociti/internal/circuit"
)

// TestReportBitIdenticalAcrossWorkerCounts is the determinism regression
// guard for the worker-pool trial runner: for a fixed master seed, the
// whole Report — every trial, every summary, the critical-path labels —
// must be reflect.DeepEqual between serial (Workers: 1) and concurrent
// (Workers: 8) execution, in both spec and explicit-circuit modes.
func TestReportBitIdenticalAcrossWorkerCounts(t *testing.T) {
	qaoa, err := apps.QAOA(24, nil, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"spec-mode", Config{
			Spec:        circuit.Spec{Name: "det", Qubits: 48, OneQubitGates: 30, TwoQubitGates: 150},
			ChainLength: 16,
			Runs:        16,
			Seed:        99,
		}},
		{"explicit-mode", Config{
			Circuit:     qaoa,
			ChainLength: 8,
			Runs:        16,
			Seed:        99,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := tc.cfg
			serial.Workers = 1
			serialRep, err := Run(serial)
			if err != nil {
				t.Fatal(err)
			}
			concurrent := tc.cfg
			concurrent.Workers = 8
			concurrentRep, err := Run(concurrent)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serialRep, concurrentRep) {
				t.Fatalf("reports differ between Workers=1 and Workers=8:\nserial:     %+v\nconcurrent: %+v", serialRep, concurrentRep)
			}
		})
	}
}

// TestRunContextCancellation checks the pool path surfaces a dead context
// instead of running trials.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := baseConfig()
	cfg.Runs = 50
	cfg.Workers = 4
	if _, err := RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
