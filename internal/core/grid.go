package core

// This file gives the sweep workflow a request-shaped entry point: a Grid
// value describes the whole (spec × chain length × α × placer) product the
// way cmd/velociti-sweep's flags do, RunGrid evaluates it cell by cell with
// per-cell error isolation, and GridResult.WriteCSV renders exactly the
// CSV the CLI prints. The sweep CLI and the sweep service (internal/serve)
// both run through here, which is what makes the service's CLI-equivalence
// guarantee — byte-identical bodies for the same request — hold by
// construction rather than by parallel maintenance.

import (
	"context"
	"fmt"
	"io"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/pool"
	"velociti/internal/schedule"
	"velociti/internal/ti"
	"velociti/internal/verr"
)

// Grid describes a design-space sweep: every combination of a workload
// spec, a chain length, a weak-link penalty α, and a gate placer. Fields
// mirror the velociti-sweep flags.
type Grid struct {
	// Specs are the workload boundary conditions to sweep.
	Specs []circuit.Spec
	// ChainLengths are the ions-per-chain values to sweep.
	ChainLengths []int
	// Alphas are the weak-link penalty values to sweep; each cell prices
	// the base timing model with WeakPenalty overridden to its α.
	Alphas []float64
	// Placers are gate-placer names resolved via schedule.ByName.
	Placers []string
	// Topology is the weak-link arrangement shared by every cell.
	Topology ti.Topology
	// Latencies is the base timing model; the zero value selects
	// perf.DefaultLatencies (δ=1, γ=100).
	Latencies perf.Latencies
	// Runs, Seed, and Workers are passed to every cell's Config; zero
	// Runs selects DefaultRuns, and Workers parallelizes trials inside a
	// cell (cells themselves run in order — CSV rows and derived seeds
	// match the serial sweep exactly).
	Runs    int
	Seed    int64
	Workers int
	// Pipeline is the shared stage-artifact store; nil runs cache-free.
	// Cells that differ only in α share placement, synthesis, and binding
	// work through it without changing any byte of the output.
	Pipeline *Pipeline
	// Backend is the timing backend shared by every cell; nil selects the
	// weak-link model (perf.WeakLink). It is not a grid axis — a sweep
	// prices one backend, and callers comparing backends run one grid per
	// backend (the DSE explorer has a proper backend axis).
	Backend perf.TimingBackend
	// Stream evaluates every cell through the memory-bounded streaming
	// path (Config.Stream): identical CSV bytes — the sweep never renders
	// critical paths — with peak memory independent of the gate counts.
	// Cells whose placer or backend cannot stream fail per-cell, like any
	// other invalid configuration.
	Stream bool
}

// GridCell is one fully resolved configuration of a Grid.
type GridCell struct {
	Spec        circuit.Spec
	ChainLength int
	Alpha       float64
	Placer      string
}

// GridResult holds a sweep's outcome with per-cell error isolation: one
// bad configuration degrades into one nil report and one non-nil error,
// never an aborted sweep.
type GridResult struct {
	// Cells lists every configuration in canonical (spec, chain length,
	// α, placer) order.
	Cells []GridCell
	// Reports holds the per-cell reports; Reports[i] is nil when Errs[i]
	// is non-nil.
	Reports []*Report
	// Errs holds the per-cell failures (nil entries for successes). It is
	// nil when every cell succeeded.
	Errs []error
}

// cells expands the grid product in canonical order.
func (g Grid) cells() []GridCell {
	var out []GridCell
	for _, spec := range g.Specs {
		for _, L := range g.ChainLengths {
			for _, alpha := range g.Alphas {
				for _, placer := range g.Placers {
					out = append(out, GridCell{Spec: spec, ChainLength: L, Alpha: alpha, Placer: placer})
				}
			}
		}
	}
	return out
}

// baseLatencies resolves the grid's base timing model.
func (g Grid) baseLatencies() perf.Latencies {
	if g.Latencies == (perf.Latencies{}) {
		return perf.DefaultLatencies()
	}
	return g.Latencies
}

// RunGrid evaluates every cell of the grid in canonical order. The
// returned error is non-nil only for request-level failures (an empty
// grid, or ctx cancellation before any cell could run); individual cell
// failures land in GridResult.Errs so the rest of the sweep survives.
func RunGrid(ctx context.Context, g Grid) (*GridResult, error) {
	cells := g.cells()
	if len(cells) == 0 {
		return nil, verr.Inputf("empty sweep grid")
	}
	base := g.baseLatencies()
	res := &GridResult{
		Cells:   cells,
		Reports: make([]*Report, len(cells)),
	}
	// Trials parallelize inside each cell (Workers); cells run one at a
	// time so row order — and every trial's derived seed — matches the
	// serial sweep exactly. RunAll gives per-cell error isolation.
	res.Errs = pool.RunAll(ctx, 1, len(cells), func(i int) error {
		c := cells[i]
		lat := base
		lat.WeakPenalty = c.Alpha
		placer, err := schedule.ByName(c.Placer, lat)
		if err != nil {
			return err
		}
		cfg := Config{
			Spec:        c.Spec,
			ChainLength: c.ChainLength,
			Topology:    g.Topology,
			Latencies:   lat,
			Placer:      placer,
			Runs:        g.Runs,
			Seed:        g.Seed,
			Workers:     g.Workers,
			Pipeline:    g.Pipeline,
			Backend:     g.Backend,
			Stream:      g.Stream,
		}
		rep, err := RunContext(ctx, cfg)
		if err != nil {
			return err
		}
		res.Reports[i] = rep
		return nil
	})
	return res, nil
}

// Failed counts the cells that produced no report.
func (g *GridResult) Failed() int {
	n := 0
	for _, err := range g.Errs {
		if err != nil {
			n++
		}
	}
	return n
}

// Err returns the sweep-level failure when no cell at all succeeded (the
// first cell's error, wrapped with the count), and nil otherwise — the
// same degradation contract the sweep CLI has always had.
func (g *GridResult) Err() error {
	if failed := g.Failed(); failed == len(g.Cells) {
		return fmt.Errorf("all %d sweep configurations failed; first: %w", failed, g.Errs[0])
	}
	return nil
}

// EachSkip invokes fn for every failed cell in order — the hook the CLI
// uses to print per-row skip diagnostics to stderr and the service uses
// to count skipped cells, keeping both off the CSV byte stream.
func (g *GridResult) EachSkip(fn func(c GridCell, err error)) {
	for i, err := range g.Errs {
		if err != nil {
			fn(g.Cells[i], err)
		}
	}
}

// CSVHeader is the first line of every sweep rendering.
const CSVHeader = "workload,qubits,two_qubit_gates,chain_length,chains,weak_links,alpha,placer,serial_us,parallel_us,parallel_min_us,parallel_max_us,speedup,weak_gates"

// WriteCSV renders the sweep as the CLI's CSV: the header, then one row
// per successful cell in canonical order (failed cells are skipped — see
// EachSkip for surfacing them). The bytes written are identical to
// velociti-sweep's stdout for the same Grid.
func (g *GridResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, CSVHeader); err != nil {
		return err
	}
	for i, c := range g.Cells {
		if g.Errs != nil && g.Errs[i] != nil {
			continue
		}
		rep := g.Reports[i]
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%g,%s,%.3f,%.3f,%.3f,%.3f,%.3f,%.1f\n",
			c.Spec.Name, c.Spec.Qubits, c.Spec.TwoQubitGates,
			c.ChainLength, rep.Device.NumChains, rep.Device.MaxWeakLinks, c.Alpha, c.Placer,
			rep.Serial.Mean, rep.Parallel.Mean, rep.Parallel.Min, rep.Parallel.Max,
			rep.MeanSpeedup(), rep.WeakGates.Mean); err != nil {
			return err
		}
	}
	return nil
}
