package core

import (
	"testing"
	"testing/quick"

	"velociti/internal/circuit"
	"velociti/internal/perf"
)

// Property tests on the end-to-end pipeline: invariants that must hold for
// any workload, machine, and latency configuration.

// boundedConfig maps arbitrary quick-generated integers onto a valid
// configuration space.
func boundedConfig(nRaw, pRaw, lRaw uint8, alphaRaw uint8, seed int64) Config {
	n := 2 + int(nRaw)%96                  // 2..97 qubits
	p := int(pRaw) % 200                   // 0..199 2q gates
	l := 1 + int(lRaw)%32                  // 1..32 ions per chain
	alpha := 1 + float64(alphaRaw%40)/10.0 // 1.0..4.9
	return Config{
		Spec:        circuit.Spec{Name: "prop", Qubits: n, OneQubitGates: int(nRaw) % 50, TwoQubitGates: p},
		ChainLength: l,
		Latencies:   perf.Latencies{OneQubit: 1, TwoQubit: 100, WeakPenalty: alpha},
		Runs:        3,
		Seed:        seed,
	}
}

// Property: for every trial, parallel ≤ per-gate serial, Eq. 1–2 serial ≤
// per-gate serial, weak gates ≤ p, and links used ≤ w_max.
func TestPipelineInvariants(t *testing.T) {
	f := func(nRaw, pRaw, lRaw, alphaRaw uint8, seed int64) bool {
		cfg := boundedConfig(nRaw, pRaw, lRaw, alphaRaw, seed)
		rep, err := Run(cfg)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		for _, tr := range rep.Trials {
			if tr.Perf.ParallelMicros > tr.Perf.SerialPerGateMicros+1e-9 {
				return false
			}
			if tr.Perf.SerialMicros > tr.Perf.SerialPerGateMicros+1e-9 {
				return false
			}
			if tr.Perf.WeakGates > cfg.Spec.TwoQubitGates {
				return false
			}
			if tr.Perf.LinksUsed > rep.Device.MaxWeakLinks {
				return false
			}
			if tr.Perf.ParallelMicros < 0 || tr.Perf.SerialMicros < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: raising α never speeds anything up (same seeds, same
// placement draws — α only scales weak-gate latency).
func TestAlphaMonotonicityProperty(t *testing.T) {
	f := func(nRaw, pRaw, lRaw uint8, seed int64) bool {
		lo := boundedConfig(nRaw, pRaw, lRaw, 0, seed) // α = 1.0
		hi := lo
		hi.Latencies.WeakPenalty = 2.5
		repLo, err := Run(lo)
		if err != nil {
			return false
		}
		repHi, err := Run(hi)
		if err != nil {
			return false
		}
		return repLo.Parallel.Mean <= repHi.Parallel.Mean+1e-9 &&
			repLo.Serial.Mean <= repHi.Serial.Mean+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the derived machine always satisfies Table I's area formula
// c = ⌈n/L⌉ and the ring's w_max rule.
func TestDerivedMachineProperty(t *testing.T) {
	f := func(nRaw, lRaw uint8, seed int64) bool {
		cfg := boundedConfig(nRaw, 10, lRaw, 5, seed)
		rep, err := Run(cfg)
		if err != nil {
			return false
		}
		n, l := cfg.Spec.Qubits, cfg.ChainLength
		wantChains := (n + l - 1) / l
		if rep.Device.NumChains != wantChains {
			return false
		}
		wantLinks := wantChains
		if wantChains == 1 {
			wantLinks = 0
		}
		return rep.Device.MaxWeakLinks == wantLinks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a single-chain machine never reports weak gates and its serial
// model reduces to q·δ + p·γ.
func TestSingleChainProperty(t *testing.T) {
	f := func(nRaw, pRaw uint8, seed int64) bool {
		n := 2 + int(nRaw)%31 // ≤ 32 fits one 32-ion chain
		p := int(pRaw) % 100
		cfg := Config{
			Spec:        circuit.Spec{Name: "one", Qubits: n, OneQubitGates: 5, TwoQubitGates: p},
			ChainLength: 32,
			Runs:        2,
			Seed:        seed,
		}
		rep, err := Run(cfg)
		if err != nil {
			return false
		}
		if rep.WeakGates.Max != 0 || rep.LinksUsed.Max != 0 {
			return false
		}
		want := float64(5)*1 + float64(p)*100
		return rep.Serial.Min == want && rep.Serial.Max == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
