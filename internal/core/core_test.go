package core

import (
	"math"
	"testing"

	"velociti/internal/apps"
	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/schedule"
	"velociti/internal/ti"
)

func baseConfig() Config {
	return Config{
		Spec:        circuit.Spec{Name: "t", Qubits: 64, OneQubitGates: 10, TwoQubitGates: 200},
		ChainLength: 16,
		Runs:        5,
		Seed:        1,
	}
}

func TestRunBasicReport(t *testing.T) {
	rep, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 5 {
		t.Fatalf("trials = %d", len(rep.Trials))
	}
	if rep.Device.NumChains != 4 || rep.Device.MaxWeakLinks != 4 || rep.Device.Topology != "ring" {
		t.Fatalf("device = %+v", rep.Device)
	}
	if rep.Serial.N != 5 || rep.Parallel.N != 5 {
		t.Fatalf("summaries not over all trials: %+v", rep)
	}
	if rep.Parallel.Mean <= 0 || rep.Serial.Mean < rep.Parallel.Mean {
		t.Fatalf("times implausible: serial=%v parallel=%v", rep.Serial.Mean, rep.Parallel.Mean)
	}
	if rep.MeanSpeedup() < 1 {
		t.Fatalf("speedup = %v, want ≥ 1", rep.MeanSpeedup())
	}
	if rep.Spec.Name != "t" {
		t.Fatalf("spec echo = %+v", rep.Spec)
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	cfg := Config{
		Spec:        circuit.Spec{Name: "d", Qubits: 8, OneQubitGates: 2, TwoQubitGates: 10},
		ChainLength: 4,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != DefaultRuns {
		t.Fatalf("default runs = %d, want %d", len(rep.Trials), DefaultRuns)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cfg := baseConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Serial.Mean != b.Serial.Mean || a.Parallel.Mean != b.Parallel.Mean {
		t.Fatalf("same seed must reproduce summaries: %v vs %v", a.Parallel, b.Parallel)
	}
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Parallel.Mean == c.Parallel.Mean {
		t.Fatalf("different master seed should perturb results")
	}
}

func TestRunTrialSeedsRecorded(t *testing.T) {
	rep, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, tr := range rep.Trials {
		if seen[tr.Seed] {
			t.Fatalf("duplicate trial seed %d", tr.Seed)
		}
		seen[tr.Seed] = true
	}
}

func TestRunValidation(t *testing.T) {
	bad := []Config{
		{Spec: circuit.Spec{Qubits: 0}, ChainLength: 16},
		{Spec: circuit.Spec{Qubits: 4, TwoQubitGates: 2}, ChainLength: 0},
		{Spec: circuit.Spec{Qubits: 4, TwoQubitGates: 2}, ChainLength: 8,
			Latencies: perf.Latencies{OneQubit: 1, TwoQubit: 100, WeakPenalty: 0.2}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestSerialMatchesEquationOnTrials(t *testing.T) {
	// Each trial's serial time must satisfy Eq. 1–2 exactly given its
	// reported weak-gate count.
	cfg := baseConfig()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lat := perf.DefaultLatencies()
	for i, tr := range rep.Trials {
		want := perf.SerialTimeFromCounts(cfg.Spec.OneQubitGates, cfg.Spec.TwoQubitGates, tr.Perf.LinksUsed, lat)
		if math.Abs(tr.Perf.SerialMicros-want) > 1e-9 {
			t.Fatalf("trial %d: serial %v != Eq.1-2 value %v (w=%d)", i, tr.Perf.SerialMicros, want, tr.Perf.LinksUsed)
		}
		if tr.Perf.SerialPerGateMicros < tr.Perf.ParallelMicros {
			t.Fatalf("trial %d: per-gate serial %v below parallel %v", i, tr.Perf.SerialPerGateMicros, tr.Perf.ParallelMicros)
		}
	}
}

func TestSingleChainHasNoWeakGates(t *testing.T) {
	cfg := Config{
		Spec:        circuit.Spec{Name: "1chain", Qubits: 16, OneQubitGates: 8, TwoQubitGates: 100},
		ChainLength: 16,
		Runs:        5,
		Seed:        3,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Device.NumChains != 1 || rep.Device.MaxWeakLinks != 0 {
		t.Fatalf("device = %+v", rep.Device)
	}
	if rep.WeakGates.Max != 0 {
		t.Fatalf("single-chain workload must have zero weak gates, got %v", rep.WeakGates)
	}
}

func TestExplicitCircuitMode(t *testing.T) {
	c, err := apps.GHZ(16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Circuit:     c,
		ChainLength: 8,
		Runs:        5,
		Seed:        4,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spec.Qubits != 16 || rep.Spec.TwoQubitGates != 15 {
		t.Fatalf("spec derived from circuit = %+v", rep.Spec)
	}
	// GHZ ladder is fully serial: parallel time equals the per-gate
	// serial time in every trial (single dependency chain; Eq. 1–2's
	// serial can sit below both since it charges α once per link used).
	for i, tr := range rep.Trials {
		if math.Abs(tr.Perf.ParallelMicros-tr.Perf.SerialPerGateMicros) > 1e-9 {
			t.Fatalf("trial %d: GHZ ladder should have no parallelism: %v vs %v",
				i, tr.Perf.ParallelMicros, tr.Perf.SerialPerGateMicros)
		}
	}
}

func TestExplicitModeChargesCrossChainGates(t *testing.T) {
	// Two qubits forced onto different chains with a gate between them:
	// explicit mode charges α·γ per hop instead of rejecting.
	c := circuit.New("cross", 4)
	c.CX(0, 1) // round-robin places q0 on chain 0 and q1 on chain 1
	cfg := Config{
		Circuit:     c,
		ChainLength: 2,
		Placement:   placement.RoundRobin{},
		Runs:        1,
		Seed:        1,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Trials[0].Perf
	if tr.WeakGates == 0 {
		t.Fatalf("cross-chain gate should count weak traversals: %+v", tr)
	}
	if tr.SerialMicros <= 100 {
		t.Fatalf("cross-chain gate should cost more than γ: %v", tr.SerialMicros)
	}
}

func TestRunOnceInspectables(t *testing.T) {
	cfg := baseConfig()
	c, layout, res, err := RunOnce(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumTwoQubitGates() != 200 {
		t.Fatalf("placed circuit 2q gates = %d", c.NumTwoQubitGates())
	}
	if layout.NumQubits() != 64 {
		t.Fatalf("layout qubits = %d", layout.NumQubits())
	}
	if res.ParallelMicros <= 0 || len(res.CriticalPath) == 0 {
		t.Fatalf("result = %+v", res)
	}
	// The critical path's length is consistent with the parallel time:
	// it has at least parallel/maxGateLatency gates.
	if res.ParallelMicros > float64(len(res.CriticalPath))*200 {
		t.Fatalf("critical path too short (%d gates) for parallel time %v",
			len(res.CriticalPath), res.ParallelMicros)
	}
}

func TestRunOnceValidates(t *testing.T) {
	if _, _, _, err := RunOnce(Config{}, 1); err == nil {
		t.Fatalf("empty config should fail")
	}
}

func TestAlternativePoliciesWork(t *testing.T) {
	cfg := baseConfig()
	cfg.Placement = placement.RoundRobin{}
	cfg.Placer = schedule.WeakAvoiding{}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WeakGates.Max != 0 {
		t.Fatalf("weak-avoiding placer must never cross links: %v", rep.WeakGates)
	}
}

func TestLineTopology(t *testing.T) {
	cfg := baseConfig()
	cfg.Topology = ti.Line
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Device.MaxWeakLinks != 3 {
		t.Fatalf("line topology links = %d, want 3", rep.Device.MaxWeakLinks)
	}
}

// The paper's Case Study 1 shape: the parallel model beats serial by
// several-fold on Table II-sized workloads.
func TestParallelSpeedupIsSubstantial(t *testing.T) {
	cfg := Config{
		Spec:        apps.PaperSpecs()[0], // Supremacy
		ChainLength: 16,
		Runs:        10,
		Seed:        7,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.MeanSpeedup(); s < 2 {
		t.Fatalf("Supremacy speedup = %v, expected well above 2x", s)
	}
}

func TestWorkersProduceIdenticalResults(t *testing.T) {
	cfg := baseConfig()
	cfg.Runs = 12
	serialRep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parRep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serialRep.Trials) != len(parRep.Trials) {
		t.Fatalf("trial counts differ")
	}
	for i := range serialRep.Trials {
		a, b := serialRep.Trials[i], parRep.Trials[i]
		if a.Seed != b.Seed || a.Perf.ParallelMicros != b.Perf.ParallelMicros ||
			a.Perf.SerialMicros != b.Perf.SerialMicros || a.Perf.WeakGates != b.Perf.WeakGates {
			t.Fatalf("trial %d differs between serial and concurrent runs:\n%+v\n%+v", i, a, b)
		}
	}
	if serialRep.Parallel != parRep.Parallel {
		t.Fatalf("summaries differ: %+v vs %+v", serialRep.Parallel, parRep.Parallel)
	}
}

func TestWorkersExceedingRuns(t *testing.T) {
	cfg := baseConfig()
	cfg.Runs = 2
	cfg.Workers = 16
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 2 {
		t.Fatalf("trials = %d", len(rep.Trials))
	}
}

func TestWorkersSurfaceTrialErrors(t *testing.T) {
	// Weak-avoiding placement on 1-ion chains fails in every trial; the
	// concurrent path must surface the error rather than hang or panic.
	cfg := Config{
		Spec:        circuit.Spec{Name: "bad", Qubits: 4, TwoQubitGates: 5},
		ChainLength: 1,
		Placer:      schedule.WeakAvoiding{},
		Runs:        8,
		Workers:     4,
		Seed:        1,
	}
	if _, err := Run(cfg); err == nil {
		t.Fatalf("expected trial failure to propagate")
	}
}
