// Package core wires VelociTI's stages together: setup (boundary
// conditions), hardware implementation (place-and-route), and performance
// modeling — the software flow of the paper's Figures 2 and 4.
//
// A Config describes one simulation: a workload (an abstract circuit.Spec,
// or an explicit gate-level circuit in extension mode), a machine (chain
// length and weak-link topology; the chain count is derived area-optimally),
// a timing model, and the placement/scheduling policies. Run executes the
// configured number of independent randomized trials — the paper uses 35 —
// and aggregates serial/parallel times into summary statistics with
// min/max spread, matching how every figure in the evaluation reports data.
package core

import (
	"context"
	"fmt"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/pool"
	"velociti/internal/schedule"
	"velociti/internal/stats"
	"velociti/internal/ti"
	"velociti/internal/verr"
)

// DefaultRuns is the number of randomized trials the paper averages over
// for every reported bar (§V-B, §VI-A).
const DefaultRuns = 35

// Config is the boundary-condition input of one VelociTI simulation
// (Table I plus policy choices).
type Config struct {
	// Spec is the abstract workload (qubits, 1q gates, 2q gates). It is
	// ignored when Circuit is set.
	Spec circuit.Spec
	// Circuit, when non-nil, selects explicit mode: the gate sequence is
	// fixed and only qubit placement is randomized per trial. Cross-chain
	// gates are charged α·γ per weak link traversed (forgiving routing).
	Circuit *circuit.Circuit
	// Program, when non-nil, selects program mode: the workload is a
	// deterministic generator body (circuit.Program) instead of a stored
	// gate list. Streaming runs (Stream=true) re-emit it gate by gate per
	// trial without ever materializing; the materialized entry points
	// convert it to a Circuit once up front. Mutually exclusive with
	// Circuit.
	Program *circuit.Program
	// ChainLength is the maximum ions per chain (paper range: 8–32,
	// scaled to 64 in §VI-B).
	ChainLength int
	// Topology is the weak-link arrangement; the zero value (ti.Ring)
	// matches the paper's weak-link counts.
	Topology ti.Topology
	// Latencies is the Table III timing model; zero value is replaced by
	// perf.DefaultLatencies.
	Latencies perf.Latencies
	// Placement assigns qubits to chains; nil selects the paper's random
	// policy.
	Placement placement.Policy
	// Placer synthesizes hardware-legal gate sequences from the spec;
	// nil selects the paper's random placer. Unused in explicit mode.
	Placer schedule.Placer
	// Runs is the number of independent randomized trials; zero selects
	// DefaultRuns (35).
	Runs int
	// Seed is the master seed; trial i uses stats.SplitSeed(Seed, i).
	Seed int64
	// Workers bounds the number of trials executed concurrently (further
	// capped at GOMAXPROCS by the shared pool runner). Zero or one runs
	// serially. Results are bit-identical regardless of worker count:
	// every trial derives its own seed and the report preserves trial
	// order.
	Workers int
	// Pipeline, when non-nil, memoizes latency-independent stage artifacts
	// (layouts, synthesized circuits, gate-class bindings) across runs that
	// share it. Caching never changes results — artifacts are keyed by
	// everything that influences them — it only skips recomputation; see
	// stages.go.
	Pipeline *Pipeline
	// Backend selects the timing backend that prices bound circuits at
	// the Bind/Time seam: nil selects the paper's weak-link parallel
	// model (perf.WeakLink). Alternate backends (internal/shuttle) price
	// cross-chain gates as explicit ion transport; the Bind stage runs
	// the backend's Prepare hook before a binding is cached or shared,
	// and bind cache keys embed the backend fingerprint so bindings from
	// different backends never collide in a shared Pipeline.
	Backend perf.TimingBackend
	// Stream selects the memory-bounded evaluation path: gates flow from
	// the workload (explicit circuit, Program, or a streaming placer over
	// the spec) straight through the backend's frontier kernel, with peak
	// memory independent of the gate count. Results are bit-identical to
	// the materialized path except that per-trial critical paths are not
	// recovered (Result.CriticalPath stays empty — reconstructing the
	// argmax path needs memory linear in the gate count). Requires a
	// backend implementing perf.SourceTimer and, in spec mode, a placer
	// implementing schedule.StreamPlacer; Validate rejects the rest.
	Stream bool
}

// normalized returns a copy of the config with defaults filled in.
func (c Config) normalized() Config {
	if c.Latencies == (perf.Latencies{}) {
		c.Latencies = perf.DefaultLatencies()
	}
	if c.Placement == nil {
		c.Placement = placement.Random{}
	}
	if c.Placer == nil {
		c.Placer = schedule.Random{}
	}
	if c.Runs <= 0 {
		c.Runs = DefaultRuns
	}
	if c.Backend == nil {
		c.Backend = perf.WeakLink{}
	}
	return c
}

// workloadSpec returns the effective spec: the explicit circuit's when in
// explicit mode, the program's identity (gate counts unknown until the
// stream is consumed) in program mode, the configured one otherwise.
func (c Config) workloadSpec() circuit.Spec {
	if c.Circuit != nil {
		return c.Circuit.Spec()
	}
	if c.Program != nil {
		return circuit.Spec{Name: c.Program.Name, Qubits: c.Program.Qubits}
	}
	return c.Spec
}

// materializeProgram converts program mode to explicit mode for the
// materialized entry points: a Program without Stream is built into a
// Circuit once, so every downstream stage sees the classic explicit-mode
// shape. Streaming configs keep the Program — that is the point.
func (c Config) materializeProgram() (Config, error) {
	if c.Program == nil || c.Stream {
		return c, nil
	}
	circ, err := c.Program.Circuit()
	if err != nil {
		return c, fmt.Errorf("core: program %q: %w", c.Program.Name, err)
	}
	c.Circuit = circ
	c.Program = nil
	return c, nil
}

// Validate reports configuration errors without running anything. All
// failures are input-kind (verr.ErrInput): a Config is assembled from user
// input (flags, JSON files), so rejection is a diagnostic, never a panic.
func (c Config) Validate() error {
	n := c.normalized()
	if n.Circuit != nil && n.Program != nil {
		return verr.Inputf("core: config sets both Circuit and Program; pick one workload form")
	}
	if n.Circuit != nil {
		if err := n.Circuit.Err(); err != nil {
			return fmt.Errorf("core: invalid circuit: %w", err)
		}
	}
	if n.Program != nil && n.Program.Body == nil {
		return verr.Inputf("core: program %q has no body", n.Program.Name)
	}
	spec := n.workloadSpec()
	if err := spec.Validate(); err != nil {
		return err
	}
	if n.ChainLength <= 0 {
		return verr.Inputf("core: chain length must be positive, got %d", n.ChainLength)
	}
	if err := n.Latencies.Validate(); err != nil {
		return err
	}
	if err := n.Backend.Validate(); err != nil {
		return err
	}
	if n.Stream {
		if _, ok := n.Backend.(perf.SourceTimer); !ok {
			return verr.Inputf("core: timing backend %q cannot stream (no StreamTimeAll); disable Stream or pick a streaming backend", n.Backend.CacheKey())
		}
		if n.Circuit == nil && n.Program == nil {
			// Spec mode streams through the placer's emitter; placers
			// that search layouts need the materialized circuit (the
			// annealer's incidence structure), so they cannot stream.
			if _, ok := n.Placer.(schedule.LayoutSearcher); ok {
				return verr.Inputf("core: placer %T searches layouts over a materialized circuit and cannot stream; disable Stream or pick a non-searching placer", n.Placer)
			}
			if _, ok := n.Placer.(schedule.StreamPlacer); !ok {
				return verr.Inputf("core: placer %T cannot stream (no EmitPlace); disable Stream or pick a streaming placer", n.Placer)
			}
		}
	}
	return nil
}

// TrialResult is the outcome of one randomized trial.
type TrialResult struct {
	// Seed is the trial's derived seed, for exact replay.
	Seed int64 `json:"seed"`
	// Perf carries the serial/parallel times and weak-link statistics.
	Perf perf.Result `json:"perf"`
}

// Report aggregates a full multi-trial simulation.
type Report struct {
	// Spec is the workload's boundary conditions.
	Spec circuit.Spec `json:"spec"`
	// Device describes the derived machine.
	Device DeviceInfo `json:"device"`
	// Trials holds every per-trial result in order.
	Trials []TrialResult `json:"trials"`
	// Serial and Parallel summarize execution times in µs across trials.
	Serial   stats.Summary `json:"serial_us"`
	Parallel stats.Summary `json:"parallel_us"`
	// SerialPerGate summarizes the per-gate-charged serial worst case.
	SerialPerGate stats.Summary `json:"serial_per_gate_us"`
	// WeakGates summarizes cross-chain 2-qubit gate counts across trials.
	WeakGates stats.Summary `json:"weak_gates"`
	// LinksUsed summarizes Table I's w (distinct weak links used).
	LinksUsed stats.Summary `json:"links_used"`
}

// DeviceInfo is the derived machine description recorded in reports
// (Table I's computed parameters).
type DeviceInfo struct {
	ChainLength  int    `json:"chain_length"`
	NumChains    int    `json:"num_chains"`
	Topology     string `json:"topology"`
	MaxWeakLinks int    `json:"max_weak_links"`
}

// MeanSpeedup returns the ratio of mean serial to mean parallel time — the
// per-application speedup the paper reports in Case Study 1.
func (r Report) MeanSpeedup() float64 {
	if r.Parallel.Mean == 0 {
		return 0
	}
	return r.Serial.Mean / r.Parallel.Mean
}

// Run executes the configured simulation: derive the area-optimal device,
// then for each trial place qubits, synthesize or reuse the gate sequence,
// and evaluate both performance models.
func Run(cfg Config) (*Report, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled the trial
// pool stops dispatching and ctx's error is returned. Results are
// bit-identical to Run at every worker count.
func RunContext(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var err error
	if cfg, err = cfg.materializeProgram(); err != nil {
		return nil, err
	}
	spec := cfg.workloadSpec()
	device, err := ti.DeviceFor(spec.Qubits, cfg.ChainLength, cfg.Topology)
	if err != nil {
		return nil, err
	}
	if cfg.Stream {
		trials, sst, err := runStreamTrials(ctx, cfg, newStages(cfg, spec, device))
		if err != nil {
			return nil, err
		}
		return buildReport(fillStreamedSpec(cfg, spec, sst), device, trials), nil
	}
	trials, err := runTrials(ctx, cfg, spec, device)
	if err != nil {
		return nil, err
	}
	return buildReport(spec, device, trials), nil
}

// buildReport aggregates per-trial results into summary statistics, in
// trial order.
func buildReport(spec circuit.Spec, device *ti.Device, trials []TrialResult) *Report {
	report := &Report{
		Spec: spec,
		Device: DeviceInfo{
			ChainLength:  device.ChainLength(),
			NumChains:    device.NumChains(),
			Topology:     device.Topology().String(),
			MaxWeakLinks: device.MaxWeakLinks(),
		},
		Trials: trials,
	}
	serial := make([]float64, 0, len(trials))
	serialPG := make([]float64, 0, len(trials))
	parallel := make([]float64, 0, len(trials))
	weak := make([]float64, 0, len(trials))
	links := make([]float64, 0, len(trials))
	for _, tr := range trials {
		serial = append(serial, tr.Perf.SerialMicros)
		serialPG = append(serialPG, tr.Perf.SerialPerGateMicros)
		parallel = append(parallel, tr.Perf.ParallelMicros)
		weak = append(weak, float64(tr.Perf.WeakGates))
		links = append(links, float64(tr.Perf.LinksUsed))
	}
	report.Serial = stats.Summarize(serial)
	report.SerialPerGate = stats.Summarize(serialPG)
	report.Parallel = stats.Summarize(parallel)
	report.WeakGates = stats.Summarize(weak)
	report.LinksUsed = stats.Summarize(links)
	return report
}

// runTrials executes every trial through the shared worker-pool runner and
// the stage pipeline, preserving trial order in the result. Trial i derives
// its own seed from the master seed, so results are bit-identical at every
// worker count. Each trial binds its gate classes once (Place → Synthesize
// → Bind, memoized when cfg.Pipeline is set) and prices them under the
// configured timing model.
func runTrials(ctx context.Context, cfg Config, spec circuit.Spec, device *ti.Device) ([]TrialResult, error) {
	trials := make([]TrialResult, cfg.Runs)
	st := newStages(cfg, spec, device)
	err := pool.Run(ctx, cfg.Workers, cfg.Runs, func(i int) error {
		seed := stats.SplitSeed(cfg.Seed, i)
		b, err := st.Bind(seed)
		if err != nil {
			return fmt.Errorf("core: trial %d: %w", i, err)
		}
		res, err := st.Time(b, cfg.Latencies)
		if err != nil {
			return fmt.Errorf("core: trial %d: %w", i, err)
		}
		trials[i] = TrialResult{Seed: seed, Perf: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return trials, nil
}

// RunOnce executes a single trial with an explicit seed, returning the
// placed circuit and layout alongside the evaluation — the building block
// for detailed inspection (critical paths, DOT dumps, timelines).
func RunOnce(cfg Config, seed int64) (*circuit.Circuit, *ti.Layout, perf.Result, error) {
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, nil, perf.Result{}, err
	}
	if cfg.Stream {
		return nil, nil, perf.Result{}, verr.Inputf("core: RunOnce inspects materialized artifacts (circuit, critical path); disable Stream")
	}
	var merr error
	if cfg, merr = cfg.materializeProgram(); merr != nil {
		return nil, nil, perf.Result{}, merr
	}
	spec := cfg.workloadSpec()
	device, err := ti.DeviceFor(spec.Qubits, cfg.ChainLength, cfg.Topology)
	if err != nil {
		return nil, nil, perf.Result{}, err
	}
	r := stats.NewRand(seed)
	layout, err := cfg.Placement.Place(device, spec.Qubits, r)
	if err != nil {
		return nil, nil, perf.Result{}, err
	}
	var c *circuit.Circuit
	if cfg.Circuit != nil {
		c = cfg.Circuit
	} else {
		c, err = cfg.Placer.Place(spec, layout, r)
		if err != nil {
			return nil, nil, perf.Result{}, err
		}
		// Search-capable placers re-place the layout against the
		// synthesized circuit, exactly like the stage pipeline's search
		// stage: the search seed is split off the trial seed, so the
		// trial's own stream stays untouched.
		if searcher, ok := cfg.Placer.(schedule.LayoutSearcher); ok {
			layout, err = searcher.SearchLayout(perf.NewEvaluator(c), layout, cfg.Backend, stats.SplitSeed(seed, searchSeedTag))
			if err != nil {
				return nil, nil, perf.Result{}, err
			}
		}
	}
	var res perf.Result
	if _, weak := cfg.Backend.(perf.WeakLink); weak {
		// The classic path: bind-and-price in one call.
		res, err = perf.Evaluate(c, layout, cfg.Latencies)
	} else {
		var b *perf.Binding
		ev := perf.NewEvaluator(c)
		b, err = ev.Bind(layout)
		if err == nil {
			err = cfg.Backend.Prepare(b, layout)
		}
		if err == nil {
			res, err = cfg.Backend.Time(b, cfg.Latencies)
		}
	}
	if err != nil {
		return nil, nil, perf.Result{}, err
	}
	return c, layout, res, nil
}
