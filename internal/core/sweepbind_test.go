package core

import (
	"strings"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/schedule"
)

func sweepLats(alphas ...float64) []perf.Latencies {
	lats := make([]perf.Latencies, len(alphas))
	for i, a := range alphas {
		lats[i] = perf.DefaultLatencies()
		lats[i].WeakPenalty = a
	}
	return lats
}

func sameBinding(t *testing.T, label string, got, want *perf.Binding) {
	t.Helper()
	gc, wc := got.Classes(), want.Classes()
	if len(gc) != len(wc) {
		t.Fatalf("%s: %d classes, want %d", label, len(gc), len(wc))
	}
	for i := range gc {
		if gc[i] != wc[i] {
			t.Fatalf("%s: class %d = %v, want %v", label, i, gc[i], wc[i])
		}
	}
	if got.WeakGates() != want.WeakGates() {
		t.Fatalf("%s: weak gates %d, want %d", label, got.WeakGates(), want.WeakGates())
	}
}

// TestBindAllMatchesPerLaneBind pins the batched binder's contract: lane j of
// BindAll(seed, lats) equals Bind(seed) of a Stages whose placer is
// At(lats[j]), for every built-in placer, with and without a pipeline.
func TestBindAllMatchesPerLaneBind(t *testing.T) {
	lats := sweepLats(3.0, 2.0, 1.0)
	spec := circuit.Spec{Name: "ba", Qubits: 32, OneQubitGates: 30, TwoQubitGates: 120}
	for _, pl := range []*Pipeline{nil, NewPipeline()} {
		for _, p := range schedule.All(perf.DefaultLatencies()) {
			cfg := Config{Spec: spec, ChainLength: 8, Placer: p, Pipeline: pl}
			s, err := NewStages(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range []int64{2, 19} {
				got, err := s.BindAll(seed, lats)
				if err != nil {
					t.Fatalf("%s: BindAll: %v", p.Name(), err)
				}
				for j, lat := range lats {
					lane := cfg
					lane.Placer = p.(schedule.SweepPlacer).At(lat)
					lane.Pipeline = nil
					ls, err := NewStages(lane)
					if err != nil {
						t.Fatal(err)
					}
					want, err := ls.Bind(seed)
					if err != nil {
						t.Fatal(err)
					}
					sameBinding(t, p.Name(), got[j], want)
				}
				// Second call: with a pipeline this exercises the
				// all-lanes-hit path; it must return the same artifacts.
				again, err := s.BindAll(seed, lats)
				if err != nil {
					t.Fatal(err)
				}
				for j := range lats {
					if pl != nil && again[j] != got[j] {
						t.Fatalf("%s: cached BindAll returned a different binding", p.Name())
					}
					sameBinding(t, p.Name()+" (again)", again[j], got[j])
				}
			}
		}
	}
}

// TestBindAllSharesBindingsAcrossAliasedLanes pins the aliasing optimization:
// latency-free placers yield one binding shared by every lane.
func TestBindAllSharesBindingsAcrossAliasedLanes(t *testing.T) {
	spec := circuit.Spec{Name: "alias", Qubits: 16, OneQubitGates: 10, TwoQubitGates: 40}
	s, err := NewStages(Config{Spec: spec, ChainLength: 8, Placer: schedule.Random{}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.BindAll(4, sweepLats(2.0, 1.5, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != out[1] || out[1] != out[2] {
		t.Fatal("latency-free lanes should share one binding")
	}
	lb, err := NewStages(Config{Spec: spec, ChainLength: 8, Placer: schedule.LoadBalanced{}})
	if err != nil {
		t.Fatal(err)
	}
	out, err = lb.BindAll(4, sweepLats(2.0, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] == out[1] {
		t.Fatal("load-balanced lanes must not share bindings")
	}
}

// TestBindAllExplicitMode: a fixed circuit means one binding for all lanes.
func TestBindAllExplicitMode(t *testing.T) {
	c := circuit.New("fixed", 8)
	c.CX(0, 5)
	c.X(2)
	s, err := NewStages(Config{Circuit: c, ChainLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.BindAll(1, sweepLats(2.0, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != out[1] {
		t.Fatal("explicit mode lanes should share one binding")
	}
	want, err := s.Bind(1)
	if err != nil {
		t.Fatal(err)
	}
	sameBinding(t, "explicit", out[0], want)
}

func TestBindAllValidation(t *testing.T) {
	spec := circuit.Spec{Name: "v", Qubits: 8, OneQubitGates: 2, TwoQubitGates: 2}
	s, err := NewStages(Config{Spec: spec, ChainLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BindAll(1, nil); err == nil || !strings.Contains(err.Error(), "at least one") {
		t.Fatalf("empty lats: %v", err)
	}
}
