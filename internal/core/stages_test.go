package core_test

import (
	"reflect"
	"testing"

	"velociti/internal/apps"
	"velociti/internal/core"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/schedule"
	"velociti/internal/workload"
)

func sweepLats(alphas []float64) []perf.Latencies {
	lats := make([]perf.Latencies, len(alphas))
	for i, a := range alphas {
		lats[i] = perf.DefaultLatencies()
		lats[i].WeakPenalty = a
	}
	return lats
}

// stageConfigs is the config matrix the pipeline equivalence properties run
// over: spec mode with each keyable placer, and explicit mode.
func stageConfigs(t *testing.T) []core.Config {
	t.Helper()
	qv, err := workload.QuantumVolume(24)
	if err != nil {
		t.Fatal(err)
	}
	qft, err := apps.QFT(16)
	if err != nil {
		t.Fatal(err)
	}
	lat := perf.DefaultLatencies()
	return []core.Config{
		{Spec: workload.Random(20, 80), ChainLength: 8, Runs: 6, Seed: 11},
		{Spec: qv, ChainLength: 8, Runs: 5, Seed: 23, Placer: schedule.WeakAvoiding{}},
		{Spec: qv, ChainLength: 8, Runs: 5, Seed: 23, Placer: schedule.LoadBalanced{Latencies: lat}},
		{Spec: qv, ChainLength: 8, Runs: 5, Seed: 23, Placer: schedule.Annealed{Moves: 300}},
		{Circuit: qft, ChainLength: 4, Runs: 6, Seed: 42},
	}
}

// TestCachedPipelineMatchesUncached is the refactor's headline property:
// attaching a Pipeline never changes a Report — bit for bit, trials
// included — at any worker count, whether the cache is cold, warm, or
// thrashing under a tiny capacity.
func TestCachedPipelineMatchesUncached(t *testing.T) {
	for _, cfg := range stageConfigs(t) {
		base := cfg
		base.Pipeline = nil
		want, err := core.Run(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, pl := range []*core.Pipeline{core.NewPipeline(), core.NewPipelineCapacity(2)} {
			for _, workers := range []int{1, 3, 8} {
				cached := cfg
				cached.Pipeline = pl
				cached.Workers = workers
				for pass := 0; pass < 2; pass++ { // cold then warm
					got, err := core.Run(cached)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("spec %q workers=%d pass=%d: cached report diverges from uncached",
							workloadName(cfg), workers, pass)
					}
				}
			}
		}
	}
}

// workloadName is a test-only label helper.
func workloadName(c core.Config) string {
	if c.Circuit != nil {
		return c.Circuit.Name
	}
	return c.Spec.Name
}

// TestRunSweepMatchesPerAlphaRuns pins the α-sweep engine: RunSweep(cfg,
// lats)[j] must equal Run with cfg.Latencies = lats[j], bit for bit, with
// and without a shared pipeline and across worker counts.
func TestRunSweepMatchesPerAlphaRuns(t *testing.T) {
	lats := sweepLats([]float64{2.0, 1.8, 1.6, 1.4, 1.2, 1.0})
	for _, cfg := range stageConfigs(t) {
		want := make([]*core.Report, len(lats))
		for j, lat := range lats {
			perAlpha := cfg
			perAlpha.Pipeline = nil
			perAlpha.Latencies = lat
			r, err := core.Run(perAlpha)
			if err != nil {
				t.Fatal(err)
			}
			want[j] = r
		}
		for _, pl := range []*core.Pipeline{nil, core.NewPipeline()} {
			for _, workers := range []int{1, 4} {
				swept := cfg
				swept.Pipeline = pl
				swept.Workers = workers
				got, err := core.RunSweep(swept, lats)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("spec %q workers=%d cached=%v: RunSweep diverges from per-α runs",
						workloadName(cfg), workers, pl != nil)
				}
			}
		}
	}
}

// TestPipelineSharesAcrossAlphaCells checks the caching actually bites:
// running α-only-differing configs against one pipeline hits the Bind cache
// on every cell after the first.
func TestPipelineSharesAcrossAlphaCells(t *testing.T) {
	pl := core.NewPipeline()
	cfg := core.Config{Spec: workload.Random(20, 80), ChainLength: 8, Runs: 6, Seed: 11, Pipeline: pl}
	for _, lat := range sweepLats([]float64{2.0, 1.5, 1.0}) {
		cfg.Latencies = lat
		if _, err := core.Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
	st := pl.Stats()
	if st.Bind.Misses != uint64(cfg.Runs) {
		t.Fatalf("Bind misses = %d, want one per trial (%d)", st.Bind.Misses, cfg.Runs)
	}
	if st.Bind.Hits != uint64(2*cfg.Runs) {
		t.Fatalf("Bind hits = %d, want %d (two warm α cells)", st.Bind.Hits, 2*cfg.Runs)
	}
}

// TestPipelineKeysSeparateLatDependentPlacers guards against false sharing:
// LoadBalanced consults its latency model during synthesis, so cells whose
// placers embed different models must not share artifacts.
func TestPipelineKeysSeparateLatDependentPlacers(t *testing.T) {
	qv, err := workload.QuantumVolume(24)
	if err != nil {
		t.Fatal(err)
	}
	pl := core.NewPipeline()
	run := func(alpha float64) *core.Report {
		lat := perf.DefaultLatencies()
		lat.WeakPenalty = alpha
		r, err := core.Run(core.Config{
			Spec: qv, ChainLength: 8, Runs: 4, Seed: 9,
			Latencies: lat,
			Placer:    schedule.LoadBalanced{Latencies: lat},
			Pipeline:  pl,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	gotA, gotB := run(2.0), run(1.0)
	wantB, err := core.Run(core.Config{
		Spec: qv, ChainLength: 8, Runs: 4, Seed: 9,
		Latencies: sweepLats([]float64{1.0})[0],
		Placer:    schedule.LoadBalanced{Latencies: sweepLats([]float64{1.0})[0]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotB, wantB) {
		t.Fatal("α=1.0 cell polluted by α=2.0 placer artifacts")
	}
	if reflect.DeepEqual(gotA.Parallel, gotB.Parallel) {
		t.Fatal("suspicious: α=2.0 and α=1.0 load-balanced cells agree exactly")
	}
	if st := pl.Stats(); st.Bind.Hits != 0 {
		t.Fatalf("Bind hits = %d across lat-dependent placers, want 0", st.Bind.Hits)
	}
}

// TestUnkeyablePolicyBypassesCache checks the safety rule: a policy without
// a CacheKey disables caching (no artifacts stored) instead of guessing,
// and results still match the uncached path.
func TestUnkeyablePolicyBypassesCache(t *testing.T) {
	cfg := core.Config{
		Spec: workload.Random(16, 60), ChainLength: 8, Runs: 4, Seed: 3,
		Placement: placement.Refined{}, // no CacheKey: base policy is open-ended
	}
	want, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl := core.NewPipeline()
	cfg.Pipeline = pl
	got, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("bypassed pipeline changed results")
	}
	if st := pl.Stats(); st.Place.Entries+st.Synthesize.Entries+st.Bind.Entries != 0 {
		t.Fatalf("unkeyable policy stored artifacts: %+v", st)
	}
}

// TestSearchStageCachesAnnealedLayouts pins the search stage's cache
// behavior: one miss per trial on a cold pipeline, pure hits on a warm
// one, and the searched layouts actually change the outcome relative to
// the same config under the plain random placer.
func TestSearchStageCachesAnnealedLayouts(t *testing.T) {
	pl := core.NewPipeline()
	cfg := core.Config{
		Spec: workload.Random(20, 80), ChainLength: 4, Runs: 6, Seed: 11,
		Placer: schedule.Annealed{Moves: 400}, Pipeline: pl,
	}
	annealed, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	if st.Search.Misses != uint64(cfg.Runs) || st.Search.Hits != 0 {
		t.Fatalf("cold search stats = %+v, want %d misses and no hits", st.Search, cfg.Runs)
	}
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
	// The warm pass short-circuits at Bind, so the search cache simply must
	// not recompute; any new miss means the key failed to round-trip.
	if st = pl.Stats(); st.Search.Misses != uint64(cfg.Runs) {
		t.Fatalf("warm search stats = %+v, want no new misses", st.Search)
	}
	random := cfg
	random.Placer = schedule.Random{}
	random.Pipeline = core.NewPipeline()
	baseline, err := core.Run(random)
	if err != nil {
		t.Fatal(err)
	}
	if annealed.Parallel.Mean >= baseline.Parallel.Mean {
		t.Fatalf("annealed mean %v did not beat random mean %v", annealed.Parallel.Mean, baseline.Parallel.Mean)
	}
}

// TestNewStagesValidates mirrors Run's input contract at the stage API.
func TestNewStagesValidates(t *testing.T) {
	if _, err := core.NewStages(core.Config{Spec: workload.Random(8, 10)}); err == nil {
		t.Fatal("expected chain-length validation error")
	}
	if _, err := core.RunSweep(core.Config{Spec: workload.Random(8, 10), ChainLength: 4}, nil); err == nil {
		t.Fatal("expected empty-sweep error")
	}
	bad := perf.DefaultLatencies()
	bad.WeakPenalty = 0.5
	if _, err := core.RunSweep(core.Config{Spec: workload.Random(8, 10), ChainLength: 4}, []perf.Latencies{bad}); err == nil {
		t.Fatal("expected latency validation error")
	}
}

// TestStagesExplicitCircuitSharing checks explicit mode: the fixed
// circuit's binding is cached per seed and RunOnce-style artifacts stay
// reachable through the stage API.
func TestStagesExplicitCircuitSharing(t *testing.T) {
	qft, err := apps.QFT(12)
	if err != nil {
		t.Fatal(err)
	}
	pl := core.NewPipeline()
	cfg := core.Config{Circuit: qft, ChainLength: 4, Runs: 5, Seed: 17, Pipeline: pl}
	st, err := core.NewStages(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Spec().Qubits != qft.NumQubits() {
		t.Fatalf("stage spec width %d, circuit width %d", st.Spec().Qubits, qft.NumQubits())
	}
	want, err := core.Run(core.Config{Circuit: qft, ChainLength: 4, Runs: 5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("explicit-mode cached run diverges")
	}
	if st2 := pl.Stats(); st2.Bind.Entries != 5 {
		t.Fatalf("Bind entries = %d, want one per trial seed", st2.Bind.Entries)
	}
}
