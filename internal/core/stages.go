package core

// This file decomposes the monolithic trial path (spec+seed → circuit →
// layout → evaluate) into an explicit stage graph with typed, individually
// cacheable artifacts:
//
//	Place      device+spec+seed      → *ti.Layout
//	Synthesize spec+layout+seed      → *perf.Evaluator (explicit mode: fixed)
//	Search     evaluator+layout+seed → *ti.Layout (placers implementing
//	           schedule.LayoutSearcher only; all others skip the stage)
//	Bind       circuit+layout        → *perf.Binding (per-gate latency classes)
//	Time       binding + Latencies   → perf.Result
//
// The weak-link penalty α enters only at Time, so sweep cells that differ
// only in α share every earlier artifact and re-run just the pricing step —
// the refactor the ROADMAP's caching north star calls for.
//
// Cache keys and the RNG stream. A trial draws placement and synthesis from
// ONE seeded RNG stream: the placer consumes whatever randomness the
// placement policy left behind. A cached stage must therefore never skip
// the stream consumption of an earlier stage — Synthesize's compute replays
// placement from the trial seed instead of reusing a cached layout. Keys
// embed the canonical fingerprints of everything that influences an
// artifact: device geometry, workload, policy configurations
// (cache.Keyer), and the trial seed. A policy that cannot describe itself
// as a canonical string disables caching for the stages it feeds — a wrong
// key would silently corrupt results, so "no key" means "no caching".

import (
	"context"
	"fmt"
	"sync/atomic"

	"velociti/internal/cache"
	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/pool"
	"velociti/internal/schedule"
	"velociti/internal/stats"
	"velociti/internal/ti"
	"velociti/internal/verr"
)

// DefaultStageCapacity bounds each stage cache of NewPipeline. Sweeps
// revisit (spec, seed) pairs across α and policy cells, so the working set
// is trials × specs — comfortably inside the bound for every experiment in
// the repo; the deterministic retention policy keeps behavior reproducible
// if a caller overflows it.
const DefaultStageCapacity = 1 << 14

// Pipeline is the shared artifact store of a stage-graph evaluation: one
// deterministic memo cache per cacheable stage. A single Pipeline is safe
// for concurrent use and is meant to be shared across every Config of a
// sweep (attach it via Config.Pipeline); artifacts are content-keyed, so
// configs that disagree on any behavior-relevant input never share them.
type Pipeline struct {
	synth  *cache.Cache
	place  *cache.Cache
	search *cache.Cache
	bind   *cache.Cache
	stream *cache.Cache
}

// NewPipeline returns a Pipeline with DefaultStageCapacity per stage.
func NewPipeline() *Pipeline {
	return NewPipelineCapacity(DefaultStageCapacity)
}

// NewPipelineCapacity returns a Pipeline bounding each stage cache at
// perStage entries; perStage <= 0 disables the bound.
func NewPipelineCapacity(perStage int) *Pipeline {
	return &Pipeline{
		synth:  cache.New(perStage),
		place:  cache.New(perStage),
		search: cache.New(perStage),
		bind:   cache.New(perStage),
		stream: cache.New(perStage),
	}
}

// StageStats is a point-in-time snapshot of a pipeline's per-stage cache
// counters. Time is not listed: it is the parametric step that is always
// recomputed.
type StageStats struct {
	Synthesize cache.Stats
	Place      cache.Stats
	Search     cache.Stats
	Bind       cache.Stats
	// Stream counts the fused streaming-evaluation stage (place + emit +
	// price in one pass); unlike the others its artifacts are
	// latency-bearing, so keys embed the priced lats.
	Stream cache.Stats
}

// Stats snapshots the per-stage counters.
func (p *Pipeline) Stats() StageStats {
	return StageStats{
		Synthesize: p.synth.Stats(),
		Place:      p.place.Stats(),
		Search:     p.search.Stats(),
		Bind:       p.bind.Stats(),
		Stream:     p.stream.Stats(),
	}
}

// Stages executes the stage graph for one validated Config. It is
// immutable after construction and safe for concurrent use — the
// worker-pool trial runner calls Bind/Time from many goroutines.
type Stages struct {
	cfg    Config
	spec   circuit.Spec
	device *ti.Device
	pl     *Pipeline

	// shared is the explicit-mode evaluator, built once for the fixed
	// circuit (it is immutable and concurrency-safe).
	shared *perf.Evaluator

	// placeKey/synthKey are canonical key prefixes ("" = stage not
	// cacheable); the trial seed is appended per artifact. searchKey is
	// non-empty only when the placer implements schedule.LayoutSearcher
	// and can fingerprint itself.
	placeKey  string
	synthKey  string
	searchKey string
	bindKey   string
	// streamKey is the streaming-evaluation prefix (stream.go); in
	// Program mode it lacks the content component until progFP learns the
	// rolling fingerprint from the first evaluation.
	streamKey string
	progFP    *atomic.Uint64

	// Key components retained for BindAll, which rebuilds synth/bind
	// prefixes per sweep lane (the placer fingerprint varies with the
	// lane's timing model). keyPol is "" when the placement policy cannot
	// fingerprint itself, which disables caching everywhere. keyBackend
	// ("|be=<fingerprint>") is appended to every bind key: a binding
	// carries backend-prepared annotations (the shuttle transport plan),
	// so bindings prepared for different timing backends must never
	// collide in a shared Pipeline.
	keyDev      string
	keyWorkload string
	keyPol      string
	keyBackend  string
}

// NewStages validates cfg, derives the area-optimal device, and returns the
// stage executor. Caching is active only when cfg.Pipeline is set and the
// configured policies can fingerprint themselves (cache.Keyer).
func NewStages(cfg Config) (*Stages, error) {
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec := cfg.workloadSpec()
	device, err := ti.DeviceFor(spec.Qubits, cfg.ChainLength, cfg.Topology)
	if err != nil {
		return nil, err
	}
	return newStages(cfg, spec, device), nil
}

// newStages builds the executor for an already normalized+validated config
// and derived device.
func newStages(cfg Config, spec circuit.Spec, device *ti.Device) *Stages {
	s := &Stages{cfg: cfg, spec: spec, device: device, pl: cfg.Pipeline}
	if cfg.Circuit != nil {
		s.shared = perf.NewEvaluator(cfg.Circuit)
	}
	if cfg.Program != nil {
		// Program mode (always streaming — materialized runs convert the
		// program to a Circuit up front): the body is opaque, so the
		// content component of the stream key is learned, not derived.
		s.progFP = new(atomic.Uint64)
	}
	if s.pl == nil {
		return s
	}
	polKey, ok := policyKey(cfg.Placement)
	if !ok {
		return s
	}
	dev := fmt.Sprintf("dev=%s/L%d/c%d", device.Topology(), device.ChainLength(), device.NumChains())
	s.keyDev = dev
	s.keyPol = polKey
	s.keyBackend = "|be=" + cfg.Backend.CacheKey()
	s.placeKey = fmt.Sprintf("place|%s|q%d|pol=%s", dev, spec.Qubits, polKey)
	if cfg.Circuit != nil {
		// Explicit mode: the circuit is fixed, so Synthesize needs no cache
		// and Bind depends only on the layout inputs plus circuit content
		// (and the backend, whose Prepare annotates the binding).
		s.bindKey = fmt.Sprintf("bind|%s|circ=%016x|pol=%s", dev, cfg.Circuit.Fingerprint(), polKey) + s.keyBackend
		s.streamKey = fmt.Sprintf("stream|%s|circ=%016x|pol=%s", dev, cfg.Circuit.Fingerprint(), polKey) + s.keyBackend
		return s
	}
	if cfg.Program != nil {
		// The learned fingerprint is appended per evaluation by
		// streamEvalKey once progFP is populated.
		s.streamKey = fmt.Sprintf("stream|%s|q%d|pol=%s", dev, spec.Qubits, polKey) + s.keyBackend
		return s
	}
	s.keyWorkload = fmt.Sprintf("spec=%q/q%d/1q%d/2q%d", spec.Name, spec.Qubits, spec.OneQubitGates, spec.TwoQubitGates)
	placerKey, ok := policyKey(cfg.Placer)
	if !ok {
		return s
	}
	s.synthKey, s.bindKey = s.stageKeys(placerKey)
	s.streamKey = fmt.Sprintf("stream|%s|%s|pol=%s|placer=%s", s.keyDev, s.keyWorkload, s.keyPol, placerKey) + s.keyBackend
	if _, ok := cfg.Placer.(schedule.LayoutSearcher); ok {
		s.searchKey = searchKey{
			dev:      s.keyDev,
			workload: s.keyWorkload,
			pol:      s.keyPol,
			placer:   placerKey,
			backend:  cfg.Backend.CacheKey(),
		}.CacheKey()
	}
	return s
}

// searchKey fingerprints a search-stage artifact: the searched layout is a
// function of the device, the workload, the placement policy (it seeds the
// starting layout), the placer (whose fingerprint covers the search
// objective and budget), and the timing backend (whose delta weights score
// the moves). The trial seed is appended per artifact via seedKey.
type searchKey struct {
	dev      string
	workload string
	pol      string
	placer   string
	backend  string
}

// CacheKey implements cache.Keyer.
func (k searchKey) CacheKey() string {
	return fmt.Sprintf("search|%s|%s|pol=%s|placer=%s|be=%s", k.dev, k.workload, k.pol, k.placer, k.backend)
}

// stageKeys builds the synth/bind key prefixes for one placer fingerprint
// over the stages' device, workload, and placement-policy components.
func (s *Stages) stageKeys(placerKey string) (synthKey, bindKey string) {
	synthKey = fmt.Sprintf("synth|%s|%s|pol=%s|placer=%s", s.keyDev, s.keyWorkload, s.keyPol, placerKey)
	bindKey = fmt.Sprintf("bind|%s|%s|pol=%s|placer=%s", s.keyDev, s.keyWorkload, s.keyPol, placerKey) + s.keyBackend
	return synthKey, bindKey
}

// policyKey returns a policy's canonical fingerprint when it provides one.
// An empty fingerprint means the policy's behavior cannot be canonically
// described (e.g. placement.Annealed over an unfingerprintable Base) and is
// treated the same as providing none: no key ⇒ no caching.
func policyKey(v any) (string, bool) {
	k, ok := v.(cache.Keyer)
	if !ok {
		return "", false
	}
	key := k.CacheKey()
	return key, key != ""
}

// Device returns the derived machine.
func (s *Stages) Device() *ti.Device { return s.device }

// Spec returns the effective workload spec.
func (s *Stages) Spec() circuit.Spec { return s.spec }

// placeCompute runs the placement policy on a fresh RNG stream for seed.
func (s *Stages) placeCompute(seed int64) (*ti.Layout, error) {
	return s.cfg.Placement.Place(s.device, s.spec.Qubits, stats.NewRand(seed))
}

// Place produces the trial's layout (stage 1). The layout equals what the
// coupled trial path computes for the same seed: placement draws from the
// head of the trial's RNG stream.
func (s *Stages) Place(seed int64) (*ti.Layout, error) {
	if s.pl == nil || s.placeKey == "" {
		return s.placeCompute(seed)
	}
	v, err := s.pl.place.GetOrCompute(seedKey(s.placeKey, seed), func() (any, error) {
		return s.placeCompute(seed)
	})
	if err != nil {
		return nil, err
	}
	return v.(*ti.Layout), nil
}

// searchSeedTag derives the layout-search seed from the trial seed via
// stats.SplitSeed: the search draws from its own stream, so adding (or
// re-running) the search stage never perturbs the trial's placement and
// synthesis draws.
const searchSeedTag = 0x5ea2c4

// trial runs the coupled place+synthesize path exactly as one randomized
// trial does: one RNG stream, placement first, then the gate placer over
// whatever stream state placement left behind, then — for placers that
// implement schedule.LayoutSearcher — the layout search over the
// synthesized circuit. It returns the evaluator and the layout the trial
// binds against (the searched one when the stage applies). The pre-search
// layout is stored into the Place cache as a side effect: that cache holds
// stage-1 artifacts, and the searched layout lives in the search cache.
func (s *Stages) trial(seed int64) (*ti.Layout, *perf.Evaluator, error) {
	r := stats.NewRand(seed)
	layout, err := s.cfg.Placement.Place(s.device, s.spec.Qubits, r)
	if err != nil {
		return nil, nil, err
	}
	if s.pl != nil && s.placeKey != "" {
		s.pl.place.Put(seedKey(s.placeKey, seed), layout)
	}
	if s.shared != nil {
		return layout, s.shared, nil
	}
	c, err := s.cfg.Placer.Place(s.spec, layout, r)
	if err != nil {
		return nil, nil, err
	}
	ev := perf.NewEvaluator(c)
	layout, err = s.searchLayout(ev, layout, seed)
	if err != nil {
		return nil, nil, err
	}
	return layout, ev, nil
}

// searchLayout runs the optional search stage: placers that implement
// schedule.LayoutSearcher re-place the trial's layout against the
// synthesized circuit; all others pass the layout through unchanged. The
// result is content-keyed in the pipeline's search cache when the placer
// can fingerprint itself.
func (s *Stages) searchLayout(ev *perf.Evaluator, l *ti.Layout, seed int64) (*ti.Layout, error) {
	searcher, ok := s.cfg.Placer.(schedule.LayoutSearcher)
	if !ok {
		return l, nil
	}
	searchSeed := stats.SplitSeed(seed, searchSeedTag)
	if s.pl == nil || s.searchKey == "" {
		return searcher.SearchLayout(ev, l, s.cfg.Backend, searchSeed)
	}
	v, err := s.pl.search.GetOrCompute(seedKey(s.searchKey, seed), func() (any, error) {
		return searcher.SearchLayout(ev, l, s.cfg.Backend, searchSeed)
	})
	if err != nil {
		return nil, err
	}
	return v.(*ti.Layout), nil
}

// Synthesize produces the trial's evaluator-wrapped circuit (stage 2). In
// explicit mode the fixed circuit's shared evaluator is returned. In spec
// mode the compute must replay placement first — the gate placer consumes
// the RNG stream where the placement policy left it — and trial feeds the
// Place (and, when applicable, search) caches as a side effect.
func (s *Stages) Synthesize(seed int64) (*perf.Evaluator, error) {
	if s.shared != nil {
		return s.shared, nil
	}
	if s.pl == nil || s.synthKey == "" {
		_, ev, err := s.trial(seed)
		return ev, err
	}
	v, err := s.pl.synth.GetOrCompute(seedKey(s.synthKey, seed), func() (any, error) {
		_, ev, err := s.trial(seed)
		if err != nil {
			return nil, err
		}
		return ev, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*perf.Evaluator), nil
}

// Bind classifies the trial's gates against its layout (stage 3) — the last
// latency-independent artifact, shared by every timing model evaluated for
// the trial.
func (s *Stages) Bind(seed int64) (*perf.Binding, error) {
	if s.pl == nil || s.bindKey == "" {
		return s.bindCompute(seed)
	}
	v, err := s.pl.bind.GetOrCompute(seedKey(s.bindKey, seed), func() (any, error) {
		return s.bindCompute(seed)
	})
	if err != nil {
		return nil, err
	}
	return v.(*perf.Binding), nil
}

// bindCompute runs the coupled trial once and feeds the earlier stage
// caches on the way (trial itself stores the place and search artifacts).
func (s *Stages) bindCompute(seed int64) (*perf.Binding, error) {
	layout, ev, err := s.trial(seed)
	if err != nil {
		return nil, err
	}
	if s.pl != nil && s.synthKey != "" {
		s.pl.synth.Put(seedKey(s.synthKey, seed), ev)
	}
	b, err := ev.Bind(layout)
	if err != nil {
		return nil, err
	}
	// The backend's Prepare hook runs here, before the binding escapes to
	// the bind cache or to other goroutines: a published binding is fully
	// annotated (e.g. the shuttle transport plan) and immutable.
	if err := s.cfg.Backend.Prepare(b, layout); err != nil {
		return nil, err
	}
	return b, nil
}

// Time prices a binding under one timing model (stage 4) — the only stage
// where the timing model enters, and the only one re-run across an α
// sweep. Pricing is delegated to the configured timing backend; the
// default perf.WeakLink is the paper's model.
func (s *Stages) Time(b *perf.Binding, lat perf.Latencies) (perf.Result, error) {
	return s.cfg.Backend.Time(b, lat)
}

// TimeAll prices a binding under every timing model in lats with the
// backend's one-pass parametric kernel; lane j equals Time(b, lats[j])
// bit for bit — every backend owes that contract.
func (s *Stages) TimeAll(b *perf.Binding, lats []perf.Latencies) ([]perf.Result, error) {
	return s.cfg.Backend.TimeAll(b, lats)
}

func seedKey(prefix string, seed int64) string {
	return fmt.Sprintf("%s|seed=%d", prefix, seed)
}

// RunSweep executes the configured simulation under every timing model in
// lats, sharing the latency-independent stages across models: each trial is
// placed, synthesized, and bound once, then priced for all models by the
// parametric kernel. RunSweep(cfg, lats)[j] is bit-identical to Run with
// cfg.Latencies = lats[j] — same seeds, same trials, same floats — because
// only the Time stage reads the timing model.
func RunSweep(cfg Config, lats []perf.Latencies) ([]*Report, error) {
	return RunSweepContext(context.Background(), cfg, lats)
}

// RunSweepContext is RunSweep with cancellation, mirroring RunContext.
func RunSweepContext(ctx context.Context, cfg Config, lats []perf.Latencies) ([]*Report, error) {
	if len(lats) == 0 {
		return nil, verr.Inputf("core: sweep requires at least one timing model")
	}
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for _, lat := range lats {
		if err := lat.Validate(); err != nil {
			return nil, err
		}
	}
	var err error
	if cfg, err = cfg.materializeProgram(); err != nil {
		return nil, err
	}
	spec := cfg.workloadSpec()
	device, err := ti.DeviceFor(spec.Qubits, cfg.ChainLength, cfg.Topology)
	if err != nil {
		return nil, err
	}
	st := newStages(cfg, spec, device)
	var perTrial [][]perf.Result
	var seeds []int64
	if cfg.Stream {
		var sst perf.StreamStats
		perTrial, seeds, sst, err = streamSweep(ctx, cfg, st, lats)
		if err != nil {
			return nil, err
		}
		spec = fillStreamedSpec(cfg, spec, sst)
	} else {
		perTrial = make([][]perf.Result, cfg.Runs)
		seeds = make([]int64, cfg.Runs)
		err = pool.Run(ctx, cfg.Workers, cfg.Runs, func(i int) error {
			seed := stats.SplitSeed(cfg.Seed, i)
			b, err := st.Bind(seed)
			if err != nil {
				return fmt.Errorf("core: trial %d: %w", i, err)
			}
			rs, err := st.TimeAll(b, lats)
			if err != nil {
				return fmt.Errorf("core: trial %d: %w", i, err)
			}
			seeds[i] = seed
			perTrial[i] = rs
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	reports := make([]*Report, len(lats))
	for j := range lats {
		trials := make([]TrialResult, cfg.Runs)
		for i := range trials {
			trials[i] = TrialResult{Seed: seeds[i], Perf: perTrial[i][j]}
		}
		reports[j] = buildReport(spec, device, trials)
	}
	return reports, nil
}
