package core

// This file is the streaming trial path: the counterpart of the coupled
// Place → Synthesize → Bind → Time stages for workloads too large to
// materialize. One streaming trial places qubits, then pushes the
// workload's gates straight through the backend's frontier kernel
// (perf.SourceTimer), pricing every requested timing model in one pass.
// Peak memory is O(qubits + chunk), independent of the gate count.
//
// Equivalence contract (pinned by stream_test.go): for every workload
// form — explicit circuit, circuit.Program, or spec+placer — a streaming
// trial produces the same perf.Result as the materialized trial for the
// same seed, bit for bit, except that CriticalPath is empty (recovering
// the argmax path needs Θ(gates) memory, exactly what streaming exists
// to avoid). The RNG discipline is the one stages.go documents: one
// stream per trial, placement first, then the gate placer over whatever
// stream state placement left behind. schedule.StreamPlacer guarantees
// EmitPlace draws the stream identically to Place.

import (
	"context"
	"fmt"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/pool"
	"velociti/internal/schedule"
	"velociti/internal/stats"
	"velociti/internal/ti"
	"velociti/internal/verr"
)

// streamArtifact is the cached product of one streaming trial: the
// per-lane results plus the stream statistics (gate counts and the
// rolling content fingerprint). Cached artifacts are shared read-only.
type streamArtifact struct {
	rs []perf.Result
	st perf.StreamStats
}

// StreamEval runs one streaming trial: place the trial's qubits, stream
// the workload's gates through the backend's frontier kernel, and price
// every timing model in lats (lane j equals the materialized
// Time(b, lats[j]) minus CriticalPath). Results are memoized in the
// pipeline's stream cache when the configuration can describe itself
// canonically; in Program mode the content identity is the rolling
// fingerprint learned from the first evaluation, so the first trial per
// (seed, lats) computes and later ones hit.
func (s *Stages) StreamEval(seed int64, lats []perf.Latencies) ([]perf.Result, perf.StreamStats, error) {
	timer, ok := s.cfg.Backend.(perf.SourceTimer)
	if !ok {
		// Validate rejects this up front; kept as a typed failure for
		// callers that skip Validate.
		return nil, perf.StreamStats{}, verr.Inputf(
			"core: timing backend %q cannot stream (no StreamTimeAll); disable Stream or pick a streaming backend",
			s.cfg.Backend.CacheKey())
	}
	if key := s.streamEvalKey(seed, lats); key != "" {
		if v, ok := s.pl.stream.Get(key); ok {
			a := v.(streamArtifact)
			return a.rs, a.st, nil
		}
	}
	src, layout, err := s.streamSource(seed)
	if err != nil {
		return nil, perf.StreamStats{}, err
	}
	rs, sst, err := timer.StreamTimeAll(src, layout, lats)
	if err != nil {
		return nil, perf.StreamStats{}, err
	}
	if s.progFP != nil {
		// Program emission is deterministic and placement-independent, so
		// every trial streams the same content: the fingerprint learned
		// here is the program's content identity for all later cache keys.
		s.progFP.Store(sst.Fingerprint)
	}
	if key := s.streamEvalKey(seed, lats); key != "" {
		s.pl.stream.Put(key, streamArtifact{rs: rs, st: sst})
	}
	return rs, sst, nil
}

// streamEvalKey builds the full stream-cache key for one (seed, lats)
// evaluation, or "" when the stage is uncacheable. In Program mode the
// key additionally needs the learned content fingerprint; before the
// first evaluation completes (fingerprint still zero) the stage computes
// uncached.
func (s *Stages) streamEvalKey(seed int64, lats []perf.Latencies) string {
	if s.pl == nil || s.streamKey == "" {
		return ""
	}
	prefix := s.streamKey
	if s.progFP != nil {
		fp := s.progFP.Load()
		if fp == 0 {
			return ""
		}
		prefix = fmt.Sprintf("%s|prog=%016x", prefix, fp)
	}
	return fmt.Sprintf("%s|seed=%d|lats=%v", prefix, seed, lats)
}

// streamSource resolves the trial's gate stream and layout. Placement
// draws from the head of the trial's RNG stream exactly as the
// materialized path does; in spec mode the returned Source is
// SINGLE-USE — its Emit consumes the same RNG stream where placement
// left it, and the frontier kernels call Emit exactly once.
func (s *Stages) streamSource(seed int64) (circuit.Source, *ti.Layout, error) {
	r := stats.NewRand(seed)
	layout, err := s.cfg.Placement.Place(s.device, s.spec.Qubits, r)
	if err != nil {
		return circuit.Source{}, nil, err
	}
	if s.pl != nil && s.placeKey != "" {
		s.pl.place.Put(seedKey(s.placeKey, seed), layout)
	}
	if s.cfg.Circuit != nil {
		return s.cfg.Circuit.Source(), layout, nil
	}
	if s.cfg.Program != nil {
		return s.cfg.Program.Source(), layout, nil
	}
	sp, ok := s.cfg.Placer.(schedule.StreamPlacer)
	if !ok {
		// Validate rejects this up front; kept as a typed failure for
		// callers that skip Validate.
		return circuit.Source{}, nil, verr.Inputf(
			"core: placer %T cannot stream (no EmitPlace); disable Stream or pick a streaming placer", s.cfg.Placer)
	}
	spec, l := s.spec, layout
	return circuit.Source{
		Name:   spec.Name,
		Qubits: spec.Qubits,
		Emit: func(yield func(*circuit.Gate) error) error {
			e := circuit.NewEmitter(spec.Name, spec.Qubits, yield)
			if err := sp.EmitPlace(spec, l, r, e); err != nil {
				return err
			}
			return e.Err()
		},
	}, layout, nil
}

// streamSweep executes every trial through the streaming path, pricing
// all lats lanes per trial. It returns the per-trial lane results in
// trial order, the derived seeds, and trial 0's stream statistics (every
// trial of a deterministic workload streams the same gate counts; spec
// mode synthesizes per seed, where trial 0 is the conventional
// representative for report metadata).
func streamSweep(ctx context.Context, cfg Config, st *Stages, lats []perf.Latencies) ([][]perf.Result, []int64, perf.StreamStats, error) {
	perTrial := make([][]perf.Result, cfg.Runs)
	seeds := make([]int64, cfg.Runs)
	perStats := make([]perf.StreamStats, cfg.Runs)
	err := pool.Run(ctx, cfg.Workers, cfg.Runs, func(i int) error {
		seed := stats.SplitSeed(cfg.Seed, i)
		rs, sst, err := st.StreamEval(seed, lats)
		if err != nil {
			return fmt.Errorf("core: trial %d: %w", i, err)
		}
		seeds[i] = seed
		perTrial[i] = rs
		perStats[i] = sst
		return nil
	})
	if err != nil {
		return nil, nil, perf.StreamStats{}, err
	}
	return perTrial, seeds, perStats[0], nil
}

// runStreamTrials is the streaming counterpart of runTrials: one lane
// (cfg.Latencies) per trial.
func runStreamTrials(ctx context.Context, cfg Config, st *Stages) ([]TrialResult, perf.StreamStats, error) {
	perTrial, seeds, sst, err := streamSweep(ctx, cfg, st, []perf.Latencies{cfg.Latencies})
	if err != nil {
		return nil, perf.StreamStats{}, err
	}
	trials := make([]TrialResult, cfg.Runs)
	for i := range trials {
		trials[i] = TrialResult{Seed: seeds[i], Perf: perTrial[i][0]}
	}
	return trials, sst, nil
}

// fillStreamedSpec backfills report gate counts that a streamed Program
// cannot know up front: the spec carries the counts observed by the
// frontier kernel (identical across trials — Program emission is
// deterministic).
func fillStreamedSpec(cfg Config, spec circuit.Spec, sst perf.StreamStats) circuit.Spec {
	if cfg.Program != nil {
		spec.OneQubitGates = sst.OneQubitGates
		spec.TwoQubitGates = sst.TwoQubitGates
	}
	return spec
}
