package core

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/verr"
)

func testGrid() Grid {
	return Grid{
		Specs:        []circuit.Spec{{Name: "g", Qubits: 12, OneQubitGates: 12, TwoQubitGates: 24}},
		ChainLengths: []int{4, 6},
		Alphas:       []float64{2.0, 1.0},
		Placers:      []string{"random"},
		Runs:         3,
		Seed:         7,
	}
}

// The grid renderer must produce exactly the per-cell rendering the sweep
// CLI inlined before RunGrid existed: one header, then canonical-order
// rows computed from RunContext reports.
func TestRunGridCSVMatchesPerCellRuns(t *testing.T) {
	g := testGrid()
	res, err := RunGrid(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := res.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}

	var want bytes.Buffer
	fmt.Fprintln(&want, CSVHeader)
	for _, c := range res.Cells {
		lat := g.baseLatencies()
		lat.WeakPenalty = c.Alpha
		cfg := Config{
			Spec: c.Spec, ChainLength: c.ChainLength, Latencies: lat,
			Runs: g.Runs, Seed: g.Seed,
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&want, "%s,%d,%d,%d,%d,%d,%g,%s,%.3f,%.3f,%.3f,%.3f,%.3f,%.1f\n",
			c.Spec.Name, c.Spec.Qubits, c.Spec.TwoQubitGates,
			c.ChainLength, rep.Device.NumChains, rep.Device.MaxWeakLinks, c.Alpha, c.Placer,
			rep.Serial.Mean, rep.Parallel.Mean, rep.Parallel.Min, rep.Parallel.Max,
			rep.MeanSpeedup(), rep.WeakGates.Mean)
	}
	if got.String() != want.String() {
		t.Errorf("grid CSV diverges from per-cell runs:\ngot:\n%s\nwant:\n%s", got.String(), want.String())
	}
	if res.Failed() != 0 || res.Err() != nil {
		t.Errorf("Failed() = %d, Err() = %v on an all-good grid", res.Failed(), res.Err())
	}
}

// One bad cell must degrade into one skipped row, not abort the sweep.
func TestRunGridCellIsolation(t *testing.T) {
	g := testGrid()
	g.Placers = []string{"random", "no-such-placer"}
	res, err := RunGrid(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(res.Cells) / 2; res.Failed() != want {
		t.Fatalf("Failed() = %d, want %d", res.Failed(), want)
	}
	if res.Err() != nil {
		t.Errorf("Err() = %v with surviving cells", res.Err())
	}
	skips := 0
	res.EachSkip(func(c GridCell, err error) {
		skips++
		if c.Placer != "no-such-placer" {
			t.Errorf("skip on cell %+v", c)
		}
		if !verr.IsInput(err) {
			t.Errorf("skip error not input-kind: %v", err)
		}
	})
	if skips != res.Failed() {
		t.Errorf("EachSkip visited %d cells, Failed() = %d", skips, res.Failed())
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if rows := strings.Count(buf.String(), "\n") - 1; rows != len(res.Cells)-res.Failed() {
		t.Errorf("CSV rows = %d, want %d", rows, len(res.Cells)-res.Failed())
	}
}

func TestRunGridAllFailedAndEmpty(t *testing.T) {
	g := testGrid()
	g.Placers = []string{"no-such-placer"}
	res, err := RunGrid(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err == nil || !strings.Contains(err.Error(), "all 4 sweep configurations failed") {
		t.Errorf("Err() = %v, want all-failed diagnostic", err)
	}

	if _, err := RunGrid(context.Background(), Grid{}); !verr.IsInput(err) {
		t.Errorf("empty grid error = %v, want input-kind", err)
	}
}

// A shared pipeline must not change a single output byte.
func TestRunGridPipelineByteIdentical(t *testing.T) {
	g := testGrid()
	plain, err := RunGrid(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	g.Pipeline = NewPipeline()
	g.Workers = 4
	cached, err := RunGrid(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := plain.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := cached.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("pipeline/workers changed CSV bytes:\n%s\nvs\n%s", a.String(), b.String())
	}
}
