package core_test

// Backend-seam tests: the shuttle timing backend threaded through Run /
// RunSweep / shared pipelines must degenerate exactly to the weak-link
// model at zero transport cost, stay bit-identical between batched and
// per-cell pricing at any worker count, and never share cached bindings
// with another backend.

import (
	"reflect"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/core"
	"velociti/internal/perf"
	"velociti/internal/shuttle"
)

func backendSpec() circuit.Spec {
	return circuit.Spec{Name: "be", Qubits: 40, OneQubitGates: 60, TwoQubitGates: 180}
}

// TestZeroCostShuttleRunEqualsWeakLinkAlphaOne: with free transport a
// cross-chain gate costs exactly the local γ, so the whole Report — every
// trial, every critical path — must match the weak-link model at α = 1,
// whatever α the shuttle run's timing model carries.
func TestZeroCostShuttleRunEqualsWeakLinkAlphaOne(t *testing.T) {
	shuttleCfg := core.Config{
		Spec:        backendSpec(),
		ChainLength: 8,
		Runs:        6,
		Seed:        17,
		Backend:     shuttle.Backend{}, // zero-cost transport
	}
	shuttleCfg.Latencies = perf.DefaultLatencies()
	shuttleCfg.Latencies.WeakPenalty = 2.0 // must be ignored: transport replaces α
	weakCfg := shuttleCfg
	weakCfg.Backend = nil // weak-link default
	weakCfg.Latencies.WeakPenalty = 1.0
	got, err := core.Run(shuttleCfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(weakCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("zero-cost shuttle report != weak-link α=1 report\ngot  %+v\nwant %+v", got, want)
	}
}

// TestRunSweepShuttleMatchesPerCellRuns pins the batched shuttle kernel
// through the full stage pipeline: RunSweep lane j equals an independent
// Run with that lane's timing model, bit for bit, at several worker
// counts.
func TestRunSweepShuttleMatchesPerCellRuns(t *testing.T) {
	base := core.Config{
		Spec:        backendSpec(),
		ChainLength: 8,
		Runs:        5,
		Seed:        29,
		Backend:     shuttle.Backend{Params: shuttle.Default()},
	}
	lats := sweepLats([]float64{2.0, 1.5, 1.0})
	want := make([]*core.Report, len(lats))
	for j, lat := range lats {
		cfg := base
		cfg.Latencies = lat
		rep, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[j] = rep
	}
	for _, workers := range []int{1, 4} {
		cfg := base
		cfg.Latencies = lats[0]
		cfg.Workers = workers
		got, err := core.RunSweep(cfg, lats)
		if err != nil {
			t.Fatal(err)
		}
		for j := range lats {
			if !reflect.DeepEqual(got[j], want[j]) {
				t.Fatalf("workers=%d lane %d: sweep report != per-cell report\ngot  %+v\nwant %+v",
					workers, j, got[j], want[j])
			}
		}
	}
}

// TestPipelineSeparatesBackends: a pipeline shared between a weak-link run
// and a shuttle run must key their bindings apart — the shuttle run's
// results have to match a cache-free shuttle run exactly, and the
// weak-link run must be unaffected by warm shuttle artifacts (and vice
// versa, in both orders).
func TestPipelineSeparatesBackends(t *testing.T) {
	mk := func(backend perf.TimingBackend, pipeline *core.Pipeline) *core.Report {
		t.Helper()
		cfg := core.Config{
			Spec:        backendSpec(),
			ChainLength: 8,
			Runs:        5,
			Seed:        7,
			Backend:     backend,
			Pipeline:    pipeline,
		}
		rep, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	sb := shuttle.Backend{Params: shuttle.Default()}
	wantWeak := mk(nil, nil)
	wantShuttle := mk(sb, nil)
	for _, order := range []string{"weak-first", "shuttle-first"} {
		pipeline := core.NewPipeline()
		var gotWeak, gotShuttle *core.Report
		if order == "weak-first" {
			gotWeak = mk(nil, pipeline)
			gotShuttle = mk(sb, pipeline)
		} else {
			gotShuttle = mk(sb, pipeline)
			gotWeak = mk(nil, pipeline)
		}
		if !reflect.DeepEqual(gotWeak, wantWeak) {
			t.Fatalf("%s: weak-link report changed under shared pipeline", order)
		}
		if !reflect.DeepEqual(gotShuttle, wantShuttle) {
			t.Fatalf("%s: shuttle report changed under shared pipeline", order)
		}
	}
}

// TestShuttleBackendChangesResults is the sanity complement of the
// equivalence tests: with real (non-zero) transport costs the shuttle
// backend must actually produce different timings than the weak-link
// model — the backend axis is not decorative.
func TestShuttleBackendChangesResults(t *testing.T) {
	cfg := core.Config{Spec: backendSpec(), ChainLength: 8, Runs: 4, Seed: 3}
	weak, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Backend = shuttle.Backend{Params: shuttle.Default()}
	shut, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if weak.Parallel.Mean == shut.Parallel.Mean {
		t.Fatalf("expected different parallel means, both %v", weak.Parallel.Mean)
	}
	if weak.WeakGates.Mean != shut.WeakGates.Mean {
		t.Fatalf("weak-gate counts are timing-independent: %v vs %v",
			weak.WeakGates.Mean, shut.WeakGates.Mean)
	}
}
