package dag

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func buildDiamond() *Graph {
	// a -> b -> d
	// a -> c -> d   with heavier path through c
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.AddEdge(a, b, 1)
	g.AddEdge(a, c, 2)
	g.AddEdge(b, d, 1)
	g.AddEdge(c, d, 3)
	return g
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		if id := g.AddNode("n"); id != i {
			t.Fatalf("AddNode returned %d, want %d", id, i)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestLabels(t *testing.T) {
	g := New()
	id := g.AddNode("q1q2")
	if g.Label(id) != "q1q2" {
		t.Fatalf("Label = %q", g.Label(id))
	}
	g.SetLabel(id, "q1q2.2")
	if g.Label(id) != "q1q2.2" {
		t.Fatalf("after SetLabel, Label = %q", g.Label(id))
	}
}

func TestLabelPanicsOnBadID(t *testing.T) {
	g := New()
	defer func() {
		if recover() == nil {
			t.Fatalf("Label on missing node should panic")
		}
	}()
	g.Label(0)
}

func TestAddEdgeOverwrites(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(a, b, 1)
	g.AddEdge(a, b, 9)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (overwrite)", g.NumEdges())
	}
	w, ok := g.Weight(a, b)
	if !ok || w != 9 {
		t.Fatalf("Weight = %v,%v want 9,true", w, ok)
	}
}

func TestHasEdgeAndWeightMissing(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	if g.HasEdge(a, b) {
		t.Fatalf("edge should not exist yet")
	}
	if _, ok := g.Weight(b, a); ok {
		t.Fatalf("Weight of missing edge should report false")
	}
}

func TestSuccessorsPredecessorsSorted(t *testing.T) {
	g := New()
	ids := make([]int, 5)
	for i := range ids {
		ids[i] = g.AddNode("n")
	}
	g.AddEdge(ids[0], ids[3], 1)
	g.AddEdge(ids[0], ids[1], 1)
	g.AddEdge(ids[0], ids[4], 1)
	g.AddEdge(ids[2], ids[4], 1)
	if got := g.Successors(ids[0]); !reflect.DeepEqual(got, []int{1, 3, 4}) {
		t.Fatalf("Successors = %v", got)
	}
	if got := g.Predecessors(ids[4]); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Predecessors = %v", got)
	}
	if g.OutDegree(ids[0]) != 3 || g.InDegree(ids[4]) != 2 {
		t.Fatalf("degrees wrong: out=%d in=%d", g.OutDegree(ids[0]), g.InDegree(ids[4]))
	}
}

func TestEdgesOrdered(t *testing.T) {
	g := buildDiamond()
	edges := g.Edges()
	want := []Edge{{0, 1, 1}, {0, 2, 2}, {1, 3, 1}, {2, 3, 3}}
	if !reflect.DeepEqual(edges, want) {
		t.Fatalf("Edges = %v, want %v", edges, want)
	}
}

func TestStartAndEndNodes(t *testing.T) {
	g := buildDiamond()
	if got := g.StartNodes(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("StartNodes = %v", got)
	}
	if got := g.EndNodes(); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("EndNodes = %v", got)
	}
	lone := New()
	x := lone.AddNode("x")
	if got := lone.StartNodes(); !reflect.DeepEqual(got, []int{x}) {
		t.Fatalf("isolated node should be a start node, got %v", got)
	}
	if got := lone.EndNodes(); !reflect.DeepEqual(got, []int{x}) {
		t.Fatalf("isolated node should be an end node, got %v", got)
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := buildDiamond()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3}) {
		t.Fatalf("TopoSort = %v", order)
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %v violates topological order %v", e, order)
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(a, b, 1)
	g.AddEdge(b, a, 1)
	if _, err := g.TopoSort(); err != ErrCycle {
		t.Fatalf("want ErrCycle, got %v", err)
	}
	if g.IsAcyclic() {
		t.Fatalf("cyclic graph reported acyclic")
	}
}

func TestSelfLoopIsCycle(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	g.AddEdge(a, a, 1)
	if g.IsAcyclic() {
		t.Fatalf("self-loop should be a cycle")
	}
}

func TestLongestPathDiamond(t *testing.T) {
	g := buildDiamond()
	res, err := g.LongestPath()
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != 5 {
		t.Fatalf("Length = %v, want 5", res.Length)
	}
	if !reflect.DeepEqual(res.Path, []int{0, 2, 3}) {
		t.Fatalf("Path = %v, want [0 2 3]", res.Path)
	}
}

func TestLongestPathEmptyAndIsolated(t *testing.T) {
	g := New()
	res, err := g.LongestPath()
	if err != nil || res.Length != 0 || len(res.Path) != 0 {
		t.Fatalf("empty graph: %v %v", res, err)
	}
	g.AddNode("only")
	res, err = g.LongestPath()
	if err != nil || res.Length != 0 {
		t.Fatalf("isolated: %v %v", res, err)
	}
	if !reflect.DeepEqual(res.Path, []int{0}) {
		t.Fatalf("isolated path = %v", res.Path)
	}
}

func TestLongestPathCycleError(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(a, b, 1)
	g.AddEdge(b, a, 1)
	if _, err := g.LongestPath(); err != ErrCycle {
		t.Fatalf("want ErrCycle, got %v", err)
	}
	if _, err := g.LongestPathFrom(); err != ErrCycle {
		t.Fatalf("want ErrCycle from LongestPathFrom, got %v", err)
	}
	if _, err := g.CriticalNodes(); err != ErrCycle {
		t.Fatalf("want ErrCycle from CriticalNodes, got %v", err)
	}
	if _, err := g.AllPathsLongestBruteForce(); err != ErrCycle {
		t.Fatalf("want ErrCycle from brute force, got %v", err)
	}
}

func TestLongestPathParallelChains(t *testing.T) {
	// Two disconnected chains; the heavier one must win.
	g := New()
	a0, a1, a2 := g.AddNode("a0"), g.AddNode("a1"), g.AddNode("a2")
	b0, b1 := g.AddNode("b0"), g.AddNode("b1")
	g.AddEdge(a0, a1, 10)
	g.AddEdge(a1, a2, 10)
	g.AddEdge(b0, b1, 100)
	res, err := g.LongestPath()
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != 100 {
		t.Fatalf("Length = %v, want 100", res.Length)
	}
	if !reflect.DeepEqual(res.Path, []int{b0, b1}) {
		t.Fatalf("Path = %v", res.Path)
	}
	_ = a2
}

func TestLongestPathFromPerNode(t *testing.T) {
	g := buildDiamond()
	dist, err := g.LongestPathFrom()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 2, 5}
	if !reflect.DeepEqual(dist, want) {
		t.Fatalf("LongestPathFrom = %v, want %v", dist, want)
	}
}

func TestCriticalNodesDiamond(t *testing.T) {
	g := buildDiamond()
	crit, err := g.CriticalNodes()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 2, 3} {
		if !crit[id] {
			t.Errorf("node %d should be critical", id)
		}
	}
	if crit[1] {
		t.Errorf("node 1 (light branch) should not be critical")
	}
}

func TestDOTOutput(t *testing.T) {
	g := buildDiamond()
	dot := g.DOT("fig3")
	for _, want := range []string{"digraph \"fig3\"", "doublecircle", "n0 -> n1", "n2 -> n3"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Exactly one start node in the diamond → exactly one doublecircle.
	if n := strings.Count(dot, "doublecircle"); n != 1 {
		t.Errorf("expected 1 doublecircle, got %d", n)
	}
}

// randomDAG builds a DAG by only adding forward edges under a random node
// permutation, guaranteeing acyclicity.
func randomDAG(r *rand.Rand, n, extraEdges int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode("n")
	}
	perm := r.Perm(n)
	for k := 0; k < extraEdges; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		if perm[i] > perm[j] {
			i, j = j, i
		}
		g.AddEdge(i, j, float64(r.Intn(10)+1))
	}
	return g
}

// Property: DP longest path equals exhaustive enumeration on small DAGs.
func TestLongestPathMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 200; trial++ {
		g := randomDAG(r, 2+r.Intn(8), r.Intn(14))
		dp, err := g.LongestPath()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bf, err := g.AllPathsLongestBruteForce()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if dp.Length != bf {
			t.Fatalf("trial %d: DP=%v brute=%v\n%s", trial, dp.Length, bf, g.DOT("t"))
		}
	}
}

// Property: the reported path's edge weights sum to the reported length and
// every hop is a real edge.
func TestLongestPathIsConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		g := randomDAG(r, 2+r.Intn(15), r.Intn(30))
		res, err := g.LongestPath()
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := 0; i+1 < len(res.Path); i++ {
			w, ok := g.Weight(res.Path[i], res.Path[i+1])
			if !ok {
				t.Fatalf("trial %d: path hop %d->%d not an edge", trial, res.Path[i], res.Path[i+1])
			}
			sum += w
		}
		if sum != res.Length {
			t.Fatalf("trial %d: path sums to %v, reported %v", trial, sum, res.Length)
		}
		if len(res.Path) > 0 && g.InDegree(res.Path[0]) != 0 {
			t.Fatalf("trial %d: longest path must begin at a start node", trial)
		}
	}
}

// Property: random DAGs always topo-sort and the order respects all edges.
func TestTopoSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 1+r.Intn(20), r.Intn(40))
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := make(map[int]int)
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return len(order) == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIntHeapOrdering(t *testing.T) {
	h := &intHeap{}
	in := []int{5, 3, 8, 1, 9, 2, 7, 0, 6, 4}
	for _, v := range in {
		h.push(v)
	}
	for want := 0; want < 10; want++ {
		if got := h.pop(); got != want {
			t.Fatalf("heap pop = %d, want %d", got, want)
		}
	}
}

func BenchmarkLongestPathLayered(b *testing.B) {
	// A layered DAG approximating a deep circuit: 100 layers x 50 nodes.
	g := New()
	const layers, width = 100, 50
	ids := make([][]int, layers)
	for l := 0; l < layers; l++ {
		ids[l] = make([]int, width)
		for w := 0; w < width; w++ {
			ids[l][w] = g.AddNode("n")
		}
	}
	r := rand.New(rand.NewSource(1))
	for l := 0; l+1 < layers; l++ {
		for w := 0; w < width; w++ {
			g.AddEdge(ids[l][w], ids[l+1][r.Intn(width)], float64(r.Intn(100)))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.LongestPath(); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: memoized DFS agrees with the topological DP on random DAGs.
func TestLongestPathMemoizedMatchesDP(t *testing.T) {
	r := rand.New(rand.NewSource(314))
	for trial := 0; trial < 200; trial++ {
		g := randomDAG(r, 2+r.Intn(20), r.Intn(40))
		dp, err := g.LongestPath()
		if err != nil {
			t.Fatal(err)
		}
		memo, err := g.LongestPathMemoized()
		if err != nil {
			t.Fatal(err)
		}
		if dp.Length != memo {
			t.Fatalf("trial %d: DP %v != memoized %v", trial, dp.Length, memo)
		}
	}
}

func TestLongestPathMemoizedCycle(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(a, b, 1)
	g.AddEdge(b, a, 1)
	if _, err := g.LongestPathMemoized(); err != ErrCycle {
		t.Fatalf("want ErrCycle, got %v", err)
	}
}

func BenchmarkLongestPathMemoizedLayered(b *testing.B) {
	g := New()
	const layers, width = 100, 50
	ids := make([][]int, layers)
	for l := 0; l < layers; l++ {
		ids[l] = make([]int, width)
		for w := 0; w < width; w++ {
			ids[l][w] = g.AddNode("n")
		}
	}
	r := rand.New(rand.NewSource(1))
	for l := 0; l+1 < layers; l++ {
		for w := 0; w < width; w++ {
			g.AddEdge(ids[l][w], ids[l+1][r.Intn(width)], float64(r.Intn(100)))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.LongestPathMemoized(); err != nil {
			b.Fatal(err)
		}
	}
}
