// Package dag implements the weighted directed-graph machinery that
// VelociTI's parallel performance model is built on (§IV-C/D of the paper).
//
// The original VelociTI used the Python NetworkX library; this package is a
// from-scratch, dependency-free replacement providing exactly the operations
// the framework needs: node/edge bookkeeping, topological ordering, cycle
// detection, start-node ("source") tracking, and longest weighted paths over
// a DAG — the quantity that determines a circuit's parallel execution time.
//
// Nodes are dense non-negative integers assigned by AddNode in insertion
// order; an arbitrary string label may be attached for diagnostics and DOT
// export. Edges carry a float64 weight (a latency in microseconds in the
// performance model). Parallel edges are not supported: adding an edge that
// already exists overwrites its weight.
package dag

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrCycle is returned by algorithms that require acyclicity when the graph
// contains a directed cycle.
var ErrCycle = errors.New("dag: graph contains a cycle")

// Edge is a directed, weighted connection between two nodes.
type Edge struct {
	From, To int
	Weight   float64
}

// Graph is a mutable directed graph with weighted edges.
// The zero value is not usable; construct with New.
type Graph struct {
	labels []string
	succ   []map[int]float64 // succ[u][v] = weight of edge u->v
	pred   []map[int]struct{}
	edges  int
}

// New returns an empty directed graph.
func New() *Graph {
	return &Graph{}
}

// AddNode adds a node with the given label and returns its id. Ids are
// assigned densely starting from 0.
func (g *Graph) AddNode(label string) int {
	id := len(g.labels)
	g.labels = append(g.labels, label)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges returns the number of edges in the graph.
func (g *Graph) NumEdges() int { return g.edges }

// Label returns the label attached to node id. It panics if id is invalid.
func (g *Graph) Label(id int) string {
	g.check(id)
	return g.labels[id]
}

// SetLabel replaces the label of node id.
func (g *Graph) SetLabel(id int, label string) {
	g.check(id)
	g.labels[id] = label
}

func (g *Graph) check(id int) {
	if id < 0 || id >= len(g.labels) {
		panic(fmt.Sprintf("dag: node %d out of range [0,%d)", id, len(g.labels)))
	}
}

// AddEdge inserts the directed edge from→to with the given weight. If the
// edge already exists its weight is overwritten. Self-loops are allowed at
// this layer (they are rejected by the acyclic algorithms). It panics if
// either endpoint does not exist.
func (g *Graph) AddEdge(from, to int, weight float64) {
	g.check(from)
	g.check(to)
	if g.succ[from] == nil {
		g.succ[from] = make(map[int]float64)
	}
	if _, exists := g.succ[from][to]; !exists {
		g.edges++
	}
	g.succ[from][to] = weight
	if g.pred[to] == nil {
		g.pred[to] = make(map[int]struct{})
	}
	g.pred[to][from] = struct{}{}
}

// HasEdge reports whether the edge from→to exists.
func (g *Graph) HasEdge(from, to int) bool {
	g.check(from)
	g.check(to)
	_, ok := g.succ[from][to]
	return ok
}

// Weight returns the weight of edge from→to and whether it exists.
func (g *Graph) Weight(from, to int) (float64, bool) {
	g.check(from)
	g.check(to)
	w, ok := g.succ[from][to]
	return w, ok
}

// Successors returns the ids of all nodes v with an edge id→v, in ascending
// order. The slice is freshly allocated.
func (g *Graph) Successors(id int) []int {
	g.check(id)
	out := make([]int, 0, len(g.succ[id]))
	for v := range g.succ[id] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Predecessors returns the ids of all nodes u with an edge u→id, in
// ascending order.
func (g *Graph) Predecessors(id int) []int {
	g.check(id)
	out := make([]int, 0, len(g.pred[id]))
	for u := range g.pred[id] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// InDegree returns the number of incoming edges of node id.
func (g *Graph) InDegree(id int) int {
	g.check(id)
	return len(g.pred[id])
}

// OutDegree returns the number of outgoing edges of node id.
func (g *Graph) OutDegree(id int) int {
	g.check(id)
	return len(g.succ[id])
}

// Edges returns every edge in the graph ordered by (From, To).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u := range g.succ {
		for v, w := range g.succ[u] {
			out = append(out, Edge{From: u, To: v, Weight: w})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// StartNodes returns every node with no incoming edges, in ascending order.
// In the performance-model graph these are the paper's "start nodes" —
// gates that act directly on input qubits (§IV-C).
func (g *Graph) StartNodes() []int {
	var out []int
	for id := range g.labels {
		if len(g.pred[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// EndNodes returns every node with no outgoing edges, in ascending order.
func (g *Graph) EndNodes() []int {
	var out []int
	for id := range g.labels {
		if len(g.succ[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// TopoSort returns a topological ordering of the nodes using Kahn's
// algorithm, or ErrCycle if the graph is cyclic. Ties are broken by node id
// so the ordering is deterministic.
func (g *Graph) TopoSort() ([]int, error) {
	n := len(g.labels)
	indeg := make([]int, n)
	for id := range g.labels {
		indeg[id] = len(g.pred[id])
	}
	// Min-heap behaviour via sorted frontier: for our graph sizes a sorted
	// slice is simpler and fast enough; use a stack of ready nodes kept
	// sorted by repeatedly scanning is O(n^2) — instead maintain a slice
	// used as a binary heap keyed by id.
	h := &intHeap{}
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			h.push(id)
		}
	}
	order := make([]int, 0, n)
	for h.len() > 0 {
		u := h.pop()
		order = append(order, u)
		for v := range g.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				h.push(v)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// IsAcyclic reports whether the graph has no directed cycles.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoSort()
	return err == nil
}

// LongestPathResult describes the heaviest weighted path in a DAG.
type LongestPathResult struct {
	// Length is the total weight along the heaviest path. Zero if the
	// graph is empty.
	Length float64
	// Path is the node sequence of one heaviest path, from a start node to
	// an end node. When several paths tie, the lexicographically smallest
	// node sequence is returned, making results deterministic.
	Path []int
}

// LongestPath computes the maximum-weight directed path in the graph using
// dynamic programming over a topological order. Node weights are not a
// concept at this layer — only edge weights contribute, matching the
// paper's encoding where a gate's latency lives on its incoming edges
// (§IV-C). Isolated nodes yield a zero-length path consisting of that node.
// Returns ErrCycle for cyclic graphs.
func (g *Graph) LongestPath() (LongestPathResult, error) {
	order, err := g.TopoSort()
	if err != nil {
		return LongestPathResult{}, err
	}
	n := len(order)
	if n == 0 {
		return LongestPathResult{}, nil
	}
	dist := make([]float64, n) // best distance ending at node
	prev := make([]int, n)
	for i := range prev {
		prev[i] = -1
	}
	for _, u := range order {
		for _, v := range g.Successors(u) {
			w := g.succ[u][v]
			cand := dist[u] + w
			if cand > dist[v] || (cand == dist[v] && better(prev[v], u)) {
				dist[v] = cand
				prev[v] = u
			}
		}
	}
	best := -1
	for id := 0; id < n; id++ {
		if best == -1 || dist[id] > dist[best] || (dist[id] == dist[best] && id < best) {
			best = id
		}
	}
	var path []int
	for at := best; at != -1; at = prev[at] {
		path = append(path, at)
	}
	reverse(path)
	return LongestPathResult{Length: dist[best], Path: path}, nil
}

// better reports whether candidate predecessor u should replace cur on a
// weight tie (prefer the smaller id; -1 means unset).
func better(cur, u int) bool { return cur == -1 || u < cur }

// LongestPathFrom computes, for every node, the maximum total edge weight of
// a path ending at that node. This is the per-gate "ready + finish" time in
// the performance model. Returns ErrCycle for cyclic graphs.
func (g *Graph) LongestPathFrom() ([]float64, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	dist := make([]float64, len(order))
	for _, u := range order {
		for v, w := range g.succ[u] {
			if d := dist[u] + w; d > dist[v] {
				dist[v] = d
			}
		}
	}
	return dist, nil
}

// LongestPathMemoized computes the maximum-weight path length via memoized
// depth-first search instead of the topological DP — the alternative
// strategy ablated in the benchmark suite (results are identical; the DP
// avoids recursion and wins on deep graphs). Returns ErrCycle for cyclic
// graphs.
func (g *Graph) LongestPathMemoized() (float64, error) {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	n := len(g.labels)
	state := make([]int8, n)
	memo := make([]float64, n) // heaviest path starting at node
	var cyclic bool
	var dfs func(u int) float64
	dfs = func(u int) float64 {
		switch state[u] {
		case done:
			return memo[u]
		case inStack:
			cyclic = true
			return 0
		}
		state[u] = inStack
		best := 0.0
		for v, w := range g.succ[u] {
			if d := w + dfs(v); d > best {
				best = d
			}
		}
		state[u] = done
		memo[u] = best
		return best
	}
	overall := 0.0
	for u := 0; u < n; u++ {
		if d := dfs(u); d > overall {
			overall = d
		}
		if cyclic {
			return 0, ErrCycle
		}
	}
	return overall, nil
}

// AllPathsLongestBruteForce enumerates every directed path in the graph and
// returns the maximum total weight. It is exponential and intended only for
// cross-checking LongestPath in tests on small graphs. Returns ErrCycle for
// cyclic graphs.
func (g *Graph) AllPathsLongestBruteForce() (float64, error) {
	if !g.IsAcyclic() {
		return 0, ErrCycle
	}
	best := 0.0
	var dfs func(u int, acc float64)
	dfs = func(u int, acc float64) {
		if acc > best {
			best = acc
		}
		for v, w := range g.succ[u] {
			dfs(v, acc+w)
		}
	}
	for id := range g.labels {
		dfs(id, 0)
	}
	if len(g.labels) == 0 {
		return 0, nil
	}
	return best, nil
}

// CriticalNodes returns the set of nodes that lie on at least one
// maximum-weight path. It is used for critical-path reporting.
func (g *Graph) CriticalNodes() (map[int]bool, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	n := len(order)
	if n == 0 {
		return map[int]bool{}, nil
	}
	fwd := make([]float64, n) // heaviest path ending at node
	for _, u := range order {
		for v, w := range g.succ[u] {
			if d := fwd[u] + w; d > fwd[v] {
				fwd[v] = d
			}
		}
	}
	bwd := make([]float64, n) // heaviest path starting at node
	for i := n - 1; i >= 0; i-- {
		u := order[i]
		for v, w := range g.succ[u] {
			if d := bwd[v] + w; d > bwd[u] {
				bwd[u] = d
			}
		}
	}
	total := 0.0
	for id := 0; id < n; id++ {
		if t := fwd[id] + bwd[id]; t > total {
			total = t
		}
	}
	crit := make(map[int]bool)
	const eps = 1e-9
	for id := 0; id < n; id++ {
		if math.Abs(fwd[id]+bwd[id]-total) <= eps {
			crit[id] = true
		}
	}
	return crit, nil
}

// DOT renders the graph in Graphviz DOT format. Start nodes are drawn with a
// double circle, matching the paper's Figure 3 convention.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	starts := make(map[int]bool)
	for _, s := range g.StartNodes() {
		starts[s] = true
	}
	for id, label := range g.labels {
		shape := "circle"
		if starts[id] {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", id, label, shape)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", e.From, e.To, trimFloat(e.Weight))
	}
	b.WriteString("}\n")
	return b.String()
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

func reverse(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// intHeap is a minimal binary min-heap of ints used by TopoSort for
// deterministic tie-breaking without importing container/heap's interface
// boilerplate.
type intHeap struct{ xs []int }

func (h *intHeap) len() int { return len(h.xs) }

func (h *intHeap) push(x int) {
	h.xs = append(h.xs, x)
	i := len(h.xs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.xs[parent] <= h.xs[i] {
			break
		}
		h.xs[parent], h.xs[i] = h.xs[i], h.xs[parent]
		i = parent
	}
}

func (h *intHeap) pop() int {
	top := h.xs[0]
	last := len(h.xs) - 1
	h.xs[0] = h.xs[last]
	h.xs = h.xs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.xs) && h.xs[l] < h.xs[smallest] {
			smallest = l
		}
		if r < len(h.xs) && h.xs[r] < h.xs[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.xs[i], h.xs[smallest] = h.xs[smallest], h.xs[i]
		i = smallest
	}
	return top
}
