package dag

// This file adds an incremental (delta) longest-path evaluator over the CSR
// kernel. Search-based placement (internal/placement's annealer) prices
// thousands of candidate layouts that each differ from the previous one by a
// single qubit swap — a handful of changed edge weights — so re-walking the
// whole DAG per candidate wastes almost all of its work. Delta keeps the
// per-node distances (heaviest path ending at each node) of the last
// evaluation and, given the set of edges whose weights changed, recomputes
// only the affected cone: the nodes whose distance actually changes, plus
// their immediate frontier.
//
// Correctness is bit-exact against CSR.LongestPathInto, not merely
// approximate: a node's distance is max(0, dist[src]+w) over its in-edges in
// ascending source order — the same comparisons, in the same order, as the
// full forward relaxation — and floating-point max is insensitive to whether
// the unchanged terms were re-examined. The test suite pins delta ≡ full on
// randomized weight-change sequences.
//
// When a change cone stops damping out (many dirty nodes near the root of a
// deep graph), incremental processing degenerates to the full walk plus heap
// overhead; Refresh therefore falls back to one full forward recomputation
// once the cone exceeds a configurable node budget. The fallback computes
// the identical distances, so callers never observe which path ran.

import (
	"fmt"
)

// defaultConeDivisor sets the fallback budget: a Refresh that pops more
// than NumNodes/defaultConeDivisor dirty nodes abandons incremental
// propagation for one full forward pass.
const defaultConeDivisor = 2

// Delta is an incremental longest-path evaluator over one Forward CSR
// snapshot. It owns the snapshot's Weights slice: after NewDelta the caller
// must route every weight change through SetWeight. A Delta is stateful and
// not safe for concurrent use.
type Delta struct {
	heads   []int32
	targets []int32
	weights []float64
	n       int

	// In-edge CSR grouped by target: the in-edges of node v are
	// inEdge[inHeads[v]:inHeads[v+1]] (edge indices into targets/weights)
	// with parallel sources in inSrc. Sources appear in ascending order, so
	// recomputing a node replays the full kernel's relaxation order.
	inHeads []int32
	inEdge  []int32
	inSrc   []int32

	// dist[v] is the heaviest path ending at v under the current weights
	// (after Refresh). tree is a max segment tree over dist with leaf
	// capacity size, so the global best survives point decreases in
	// O(log n).
	dist []float64
	tree []float64
	size int

	// dirty is a min-heap of node ids whose distance may be stale; inHeap
	// dedupes pushes.
	dirty  []int32
	inHeap []bool

	coneLimit int
	fullRuns  int
	popped    int
}

// NewDelta builds the incremental evaluator and runs the initial full
// evaluation. The snapshot must be Forward (node ids topologically ordered);
// Delta takes ownership of c.Weights.
func NewDelta(c CSR) (*Delta, error) {
	n := c.NumNodes()
	if !c.Forward && n > 0 {
		return nil, fmt.Errorf("dag: delta evaluation requires a Forward CSR")
	}
	d := &Delta{
		heads:   c.Heads,
		targets: c.Targets,
		weights: c.Weights,
		n:       n,
	}
	d.coneLimit = n / defaultConeDivisor
	if d.coneLimit < 1 {
		d.coneLimit = 1
	}
	// In-edge CSR: counting pass, prefix sum, fill pass. Filling in
	// ascending source order groups each target's in-edges by ascending
	// source automatically.
	d.inHeads = make([]int32, n+1)
	for _, v := range c.Targets {
		d.inHeads[v+1]++
	}
	for v := 0; v < n; v++ {
		d.inHeads[v+1] += d.inHeads[v]
	}
	d.inEdge = make([]int32, len(c.Targets))
	d.inSrc = make([]int32, len(c.Targets))
	cursor := make([]int32, n)
	for u := 0; u < n; u++ {
		for e := c.Heads[u]; e < c.Heads[u+1]; e++ {
			v := c.Targets[e]
			at := d.inHeads[v] + cursor[v]
			d.inEdge[at] = e
			d.inSrc[at] = int32(u)
			cursor[v]++
		}
	}
	d.dist = make([]float64, n)
	size := 1
	for size < n {
		size <<= 1
	}
	d.size = size
	d.tree = make([]float64, 2*size)
	d.inHeap = make([]bool, n)
	d.recomputeFull()
	d.fullRuns = 0 // the constructor's pass is not a fallback
	return d, nil
}

// NumNodes returns the node count of the snapshot.
func (d *Delta) NumNodes() int { return d.n }

// SetConeLimit overrides the fallback budget: a Refresh popping more than
// limit dirty nodes switches to one full forward pass. Values < 1 are
// clamped to 1. Results are identical at any limit; only the work split
// between incremental and full recomputation changes.
func (d *Delta) SetConeLimit(limit int) {
	if limit < 1 {
		limit = 1
	}
	d.coneLimit = limit
}

// Weight returns the current weight of edge e.
func (d *Delta) Weight(e int32) float64 { return d.weights[e] }

// SetWeight updates edge e's weight and marks its target stale. The change
// takes effect at the next Refresh.
func (d *Delta) SetWeight(e int32, w float64) {
	d.weights[e] = w
	d.push(d.targets[e])
}

// InEdges returns the edge indices of v's in-edges (indices into the
// snapshot's Targets/Weights arrays), grouped by ascending source. The
// slice aliases Delta-owned storage and must not be modified.
func (d *Delta) InEdges(v int32) []int32 {
	return d.inEdge[d.inHeads[v]:d.inHeads[v+1]]
}

// Dist returns the per-node distances as of the last Refresh. The slice
// aliases Delta-owned storage and must not be modified.
func (d *Delta) Dist() []float64 { return d.dist }

// Best returns the longest-path length as of the last Refresh.
func (d *Delta) Best() float64 {
	if d.n == 0 {
		return 0
	}
	return d.tree[1]
}

// FullRecomputes reports how many Refresh calls fell back to a full
// forward pass (cone budget exceeded).
func (d *Delta) FullRecomputes() int { return d.fullRuns }

// Popped reports the total dirty nodes processed incrementally across all
// Refresh calls — the work metric the cone fallback bounds.
func (d *Delta) Popped() int { return d.popped }

// Refresh propagates every pending weight change and returns the new
// longest-path length. Distances and the returned best are bit-identical
// to a from-scratch CSR.LongestPathInto over the current weights.
func (d *Delta) Refresh() float64 {
	processed := 0
	for len(d.dirty) > 0 {
		if processed >= d.coneLimit {
			d.popped += processed
			d.recomputeFull()
			d.fullRuns++
			return d.Best()
		}
		u := d.pop()
		processed++
		nd := 0.0
		for k := d.inHeads[u]; k < d.inHeads[u+1]; k++ {
			if x := d.dist[d.inSrc[k]] + d.weights[d.inEdge[k]]; x > nd {
				nd = x
			}
		}
		if nd != d.dist[u] {
			d.dist[u] = nd
			d.update(int(u), nd)
			for e := d.heads[u]; e < d.heads[u+1]; e++ {
				d.push(d.targets[e])
			}
		}
	}
	d.popped += processed
	return d.Best()
}

// recomputeFull runs the plain forward relaxation (CSR.LongestPath's
// Forward branch) over the current weights, rebuilds the segment tree, and
// clears the dirty set.
func (d *Delta) recomputeFull() {
	for i := range d.dist {
		d.dist[i] = 0
	}
	for u := 0; u < d.n; u++ {
		du := d.dist[u]
		for e := d.heads[u]; e < d.heads[u+1]; e++ {
			v := d.targets[e]
			if x := du + d.weights[e]; x > d.dist[v] {
				d.dist[v] = x
			}
		}
	}
	for i := range d.tree {
		d.tree[i] = 0
	}
	copy(d.tree[d.size:], d.dist)
	for i := d.size - 1; i >= 1; i-- {
		l, r := d.tree[2*i], d.tree[2*i+1]
		if l >= r {
			d.tree[i] = l
		} else {
			d.tree[i] = r
		}
	}
	for _, u := range d.dirty {
		d.inHeap[u] = false
	}
	d.dirty = d.dirty[:0]
}

// update is the segment-tree point update for dist[u] = v.
func (d *Delta) update(u int, v float64) {
	i := d.size + u
	d.tree[i] = v
	for i > 1 {
		i >>= 1
		l, r := d.tree[2*i], d.tree[2*i+1]
		if l >= r {
			d.tree[i] = l
		} else {
			d.tree[i] = r
		}
	}
}

// push marks node v stale, deduplicating repeats.
func (d *Delta) push(v int32) {
	if d.inHeap[v] {
		return
	}
	d.inHeap[v] = true
	d.dirty = append(d.dirty, v)
	i := len(d.dirty) - 1
	for i > 0 {
		p := (i - 1) / 2
		if d.dirty[p] <= d.dirty[i] {
			break
		}
		d.dirty[p], d.dirty[i] = d.dirty[i], d.dirty[p]
		i = p
	}
}

// pop removes and returns the smallest stale node id. Popping in ascending
// id order over a Forward CSR guarantees every predecessor of the popped
// node is already final — staleness only ever propagates to higher ids.
func (d *Delta) pop() int32 {
	u := d.dirty[0]
	last := len(d.dirty) - 1
	d.dirty[0] = d.dirty[last]
	d.dirty = d.dirty[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= last {
			break
		}
		if c+1 < last && d.dirty[c+1] < d.dirty[c] {
			c++
		}
		if d.dirty[i] <= d.dirty[c] {
			break
		}
		d.dirty[i], d.dirty[c] = d.dirty[c], d.dirty[i]
		i = c
	}
	d.inHeap[u] = false
	return u
}
