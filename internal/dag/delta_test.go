package dag

import (
	"math/rand"
	"testing"
)

// randomForwardCSR builds a random Forward DAG with n nodes and roughly
// density out-edges per node, weights in [0, 100).
func randomForwardCSR(r *rand.Rand, n, density int) CSR {
	type edge struct {
		u, v int32
		w    float64
	}
	var edges []edge
	for u := 0; u < n-1; u++ {
		for k := 0; k < density; k++ {
			if r.Intn(2) == 0 {
				continue
			}
			v := u + 1 + r.Intn(n-1-u)
			edges = append(edges, edge{int32(u), int32(v), float64(r.Intn(10000)) / 100})
		}
	}
	// Group by source in ascending order; emission order above is already
	// ascending by u.
	heads := make([]int32, n+1)
	for _, e := range edges {
		heads[e.u+1]++
	}
	for u := 0; u < n; u++ {
		heads[u+1] += heads[u]
	}
	targets := make([]int32, len(edges))
	weights := make([]float64, len(edges))
	cursor := make([]int32, n)
	for _, e := range edges {
		at := heads[e.u] + cursor[e.u]
		targets[at] = e.v
		weights[at] = e.w
		cursor[e.u]++
	}
	return CSR{Heads: heads, Targets: targets, Weights: weights, Forward: true}
}

// cloneCSR deep-copies a snapshot so the full-evaluation oracle sees the
// same weights without sharing storage with the Delta under test.
func cloneCSR(c CSR) CSR {
	return CSR{
		Heads:   append([]int32(nil), c.Heads...),
		Targets: append([]int32(nil), c.Targets...),
		Weights: append([]float64(nil), c.Weights...),
		Forward: c.Forward,
	}
}

// TestDeltaMatchesFullOnRandomWeightChanges: after every batch of random
// weight changes, Refresh must reproduce LongestPathInto bit for bit —
// best and every per-node distance — at both a generous cone budget and a
// tiny one that forces the full-recompute fallback.
func TestDeltaMatchesFullOnRandomWeightChanges(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		for _, cone := range []int{0, 1, 16} { // 0 = keep the default
			r := rand.New(rand.NewSource(seed))
			csr := randomForwardCSR(r, 200, 3)
			oracle := cloneCSR(csr)
			d, err := NewDelta(csr)
			if err != nil {
				t.Fatal(err)
			}
			if cone > 0 {
				d.SetConeLimit(cone)
			}
			var scratch Scratch
			for round := 0; round < 60; round++ {
				batch := 1 + r.Intn(5)
				for k := 0; k < batch; k++ {
					e := int32(r.Intn(len(oracle.Weights)))
					w := float64(r.Intn(10000)) / 100
					oracle.Weights[e] = w
					d.SetWeight(e, w)
				}
				got := d.Refresh()
				want, dist, err := oracle.LongestPathInto(&scratch)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("seed %d cone %d round %d: delta best %v, full %v", seed, cone, round, got, want)
				}
				for v, dv := range d.Dist() {
					if dv != dist[v] {
						t.Fatalf("seed %d cone %d round %d: dist[%d] delta %v, full %v", seed, cone, round, v, dv, dist[v])
					}
				}
			}
			if cone == 1 && d.FullRecomputes() == 0 {
				t.Fatalf("seed %d: cone limit 1 never triggered the full-recompute fallback", seed)
			}
		}
	}
}

// TestDeltaRefreshIsIdempotent: a Refresh with no pending changes returns
// the same best and touches nothing.
func TestDeltaRefreshIsIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	d, err := NewDelta(randomForwardCSR(r, 100, 2))
	if err != nil {
		t.Fatal(err)
	}
	first := d.Refresh()
	popped := d.Popped()
	if again := d.Refresh(); again != first {
		t.Fatalf("idle refresh changed best: %v != %v", again, first)
	}
	if d.Popped() != popped {
		t.Fatalf("idle refresh processed nodes: %d != %d", d.Popped(), popped)
	}
}

// TestDeltaRejectsNonForward: delta evaluation is only defined over
// topologically numbered snapshots.
func TestDeltaRejectsNonForward(t *testing.T) {
	c := CSR{Heads: []int32{0, 1, 1}, Targets: []int32{0}, Weights: []float64{1}, Forward: false}
	if _, err := NewDelta(c); err == nil {
		t.Fatal("NewDelta accepted a non-Forward CSR")
	}
}

// TestDeltaEmpty: the zero-node snapshot evaluates to 0.
func TestDeltaEmpty(t *testing.T) {
	d, err := NewDelta(CSR{Forward: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Refresh(); got != 0 {
		t.Fatalf("empty delta best = %v", got)
	}
}

// TestDeltaInEdges: InEdges must enumerate exactly the snapshot's in-edges
// in ascending source order.
func TestDeltaInEdges(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	csr := randomForwardCSR(r, 64, 3)
	d, err := NewDelta(cloneCSR(csr))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]bool)
	for v := int32(0); v < int32(csr.NumNodes()); v++ {
		prevSrc := int32(-1)
		for _, e := range d.InEdges(v) {
			if csr.Targets[e] != v {
				t.Fatalf("InEdges(%d) lists edge %d targeting %d", v, e, csr.Targets[e])
			}
			if seen[e] {
				t.Fatalf("edge %d listed twice", e)
			}
			seen[e] = true
			// Recover the source from the forward CSR.
			src := int32(0)
			for csr.Heads[src+1] <= e {
				src++
			}
			if src < prevSrc {
				t.Fatalf("InEdges(%d) sources out of order", v)
			}
			prevSrc = src
		}
	}
	if len(seen) != csr.NumEdges() {
		t.Fatalf("InEdges covered %d of %d edges", len(seen), csr.NumEdges())
	}
}
