package dag

// This file is the streaming counterpart of csr.go: a bounded window of
// the gate-dependency DAG in compressed-sparse-row form, built
// incrementally as gates arrive and discarded after one longest-path
// relaxation. The key observation behind it: the ASAP finish-time
// recurrence only ever reads a node's immediate predecessors, and in a
// gate-dependency DAG those are the last writers of the node's operand
// qubits — so the only state that must survive a window is the per-qubit
// frontier (one finish time per qubit per lane). Everything else — node
// ids, edges, distances — is O(window), not O(gates).
//
// A Chunk therefore splits each node's dependencies in two: operands whose
// last writer lives inside the window become internal predecessor edges
// (CSR over window-local ids, forward by construction since writers
// precede readers in program order), and operands whose last writer has
// already been evicted read the external frontier instead. Run relaxes the
// window in one ascending pass — dist[i] = max(frontier of external
// operands, dist of internal predecessors) + cost[i] — which is exactly
// csr.go's Forward fast path restricted to the window, so finish times are
// bit-identical to the fully materialized kernel: max distributes over +
// exactly for finite floats, and the per-node max is order-insensitive for
// values.

// Chunk is a reusable bounded window of a gate-dependency DAG. Nodes are
// appended in program order with Add and carry at most two operand qubits;
// after a window is priced (Run) and its frontier harvested (Writers), Reset
// prepares the chunk for the next window.
type Chunk struct {
	limit int
	n     int

	heads []int32 // internal-predecessor CSR offsets, len n+1
	preds []int32 // window-local ids of internal predecessors
	extq  []int32 // flat [2]int32 per node: qubits read from the external frontier, -1 = none

	last    []int32 // last[q] = window-local id of q's last writer, -1 = none this window
	touched []int32 // qubits written this window, in first-write order
	wq      []int32 // flat [2]int32 per node: qubits the node writes, -1 = none
}

// NewChunk returns a chunk windowing at most limit nodes over a register
// of numQubits qubits. limit and numQubits must be positive.
func NewChunk(limit, numQubits int) *Chunk {
	c := &Chunk{
		limit: limit,
		heads: make([]int32, 1, limit+1),
		preds: make([]int32, 0, 2*limit),
		extq:  make([]int32, 0, 2*limit),
		wq:    make([]int32, 0, 2*limit),
		last:  make([]int32, numQubits),
	}
	for i := range c.last {
		c.last[i] = -1
	}
	return c
}

// Len returns the number of nodes in the current window.
func (c *Chunk) Len() int { return c.n }

// Full reports whether the window has reached its node limit.
func (c *Chunk) Full() bool { return c.n >= c.limit }

// Add appends a node reading (and then writing) qubits a and b, in that
// operand order; b is -1 for 1-qubit nodes. It returns the node's
// window-local id. Qubit ids must be in [0, numQubits); callers append
// gates that were already validated at construction time.
func (c *Chunk) Add(a, b int32) int {
	id := int32(c.n)
	for _, q := range [2]int32{a, b} {
		if q < 0 {
			c.extq = append(c.extq, -1)
			continue
		}
		if p := c.last[q]; p >= 0 {
			c.preds = append(c.preds, p)
			c.extq = append(c.extq, -1)
		} else {
			c.extq = append(c.extq, q)
		}
	}
	c.heads = append(c.heads, int32(len(c.preds)))
	for _, q := range [2]int32{a, b} {
		c.wq = append(c.wq, q)
		if q < 0 {
			continue
		}
		if c.last[q] < 0 {
			c.touched = append(c.touched, q)
		}
		c.last[q] = id
	}
	c.n++
	return int(id)
}

// Run relaxes the window for one lane: dist[i] becomes the finish time of
// node i — the maximum over the node's external-frontier reads and
// internal predecessors' finish times, plus cost[i]. front is the external
// per-qubit frontier, laid out lane-interleaved: qubit q's value for this
// lane is front[int(q)*stride+off]. cost and dist must have at least Len()
// entries; dist is fully overwritten.
func (c *Chunk) Run(cost, front []float64, stride, off int, dist []float64) {
	for i := 0; i < c.n; i++ {
		ready := 0.0
		if q := c.extq[2*i]; q >= 0 {
			if v := front[int(q)*stride+off]; v > ready {
				ready = v
			}
		}
		if q := c.extq[2*i+1]; q >= 0 {
			if v := front[int(q)*stride+off]; v > ready {
				ready = v
			}
		}
		for e := c.heads[i]; e < c.heads[i+1]; e++ {
			if v := dist[c.preds[e]]; v > ready {
				ready = v
			}
		}
		dist[i] = ready + cost[i]
	}
}

// Writers returns, for every qubit written in the window (in first-write
// order), the qubit id and the window-local id of its last writer. After
// Run, the harvested frontier update is front[q] = dist[writer]. Both
// slices alias the chunk and are valid until Reset.
func (c *Chunk) Writers() (qubits, nodes []int32) {
	// wq's storage is reused for the writer list: its contents were folded
	// into last/touched at Add time, and touched (≤ 2·n entries) always
	// fits in wq's exactly-2·n capacity.
	nodes = c.wq[:0]
	for _, q := range c.touched {
		nodes = append(nodes, c.last[q])
	}
	return c.touched, nodes
}

// Reset clears the window for the next batch of nodes, retaining storage.
// The per-qubit last-writer table is cleared sparsely (only qubits touched
// this window), so a reset costs O(window), not O(qubits).
func (c *Chunk) Reset() {
	for _, q := range c.touched {
		c.last[q] = -1
	}
	c.touched = c.touched[:0]
	c.n = 0
	c.heads = c.heads[:1]
	c.preds = c.preds[:0]
	c.extq = c.extq[:0]
	c.wq = c.wq[:0]
}
