package dag

// This file holds the index-based longest-path kernel the performance
// model's hot path runs on. The map-backed Graph is convenient to build and
// mutate, but the evaluation loop (35 randomized trials per data point,
// thousands of data points per sweep) only ever needs one read-only
// traversal per graph — for that, a compressed-sparse-row layout over dense
// int32 ids beats pointer-chasing through maps by an order of magnitude and
// allocates nothing when the caller reuses a Scratch.

// CSR is a compressed-sparse-row snapshot of a weighted directed graph.
// Node ids are dense [0, NumNodes). The successors of node u are
// Targets[Heads[u]:Heads[u+1]] with matching edge weights in
// Weights[Heads[u]:Heads[u+1]].
type CSR struct {
	// Heads has length NumNodes+1; Heads[0] is 0 and Heads[len(Heads)-1]
	// is the edge count.
	Heads []int32
	// Targets holds destination node ids grouped by source.
	Targets []int32
	// Weights holds the edge weight parallel to Targets.
	Weights []float64
	// Forward records that every edge satisfies source < target, i.e. the
	// node numbering is already a topological order. Builders that emit
	// gates in program order (the performance model does) set it to let
	// LongestPath skip Kahn's algorithm entirely.
	Forward bool
}

// NumNodes returns the number of nodes in the snapshot.
func (c *CSR) NumNodes() int {
	if len(c.Heads) == 0 {
		return 0
	}
	return len(c.Heads) - 1
}

// NumEdges returns the number of edges in the snapshot.
func (c *CSR) NumEdges() int { return len(c.Targets) }

// CSR converts the graph into its compressed-sparse-row form. Successors of
// each node appear in ascending target order, matching Successors. Forward
// is set when every edge points from a lower to a higher id.
func (g *Graph) CSR() CSR {
	n := len(g.labels)
	heads := make([]int32, n+1)
	for u := 0; u < n; u++ {
		heads[u+1] = heads[u] + int32(len(g.succ[u]))
	}
	targets := make([]int32, g.edges)
	weights := make([]float64, g.edges)
	forward := true
	for u := 0; u < n; u++ {
		at := heads[u]
		for _, v := range g.Successors(u) {
			targets[at] = int32(v)
			weights[at] = g.succ[u][v]
			if v <= u {
				forward = false
			}
			at++
		}
	}
	return CSR{Heads: heads, Targets: targets, Weights: weights, Forward: forward}
}

// Scratch holds the reusable working memory of the CSR kernels. The zero
// value is ready to use; buffers grow on demand and are retained across
// calls, so a Scratch kept in a sync.Pool makes repeated longest-path
// evaluations allocation-free.
type Scratch struct {
	dist  []float64
	indeg []int32
	queue []int32
}

// grow returns the three buffers sized for n nodes, reusing capacity.
func (s *Scratch) grow(n int) (dist []float64, indeg, queue []int32) {
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
		s.indeg = make([]int32, n)
		s.queue = make([]int32, 0, n)
	}
	s.dist = s.dist[:n]
	s.indeg = s.indeg[:n]
	for i := range s.dist {
		s.dist[i] = 0
		s.indeg[i] = 0
	}
	return s.dist, s.indeg, s.queue[:0]
}

// LongestPath computes the maximum total edge weight over all directed
// paths in the snapshot — the same quantity as Graph.LongestPath().Length,
// without building path bookkeeping. scratch may be nil (a temporary one is
// used); passing one kept in a pool makes the call allocation-free. Returns
// ErrCycle when the snapshot is cyclic.
func (c *CSR) LongestPath(scratch *Scratch) (float64, error) {
	n := c.NumNodes()
	if n == 0 {
		return 0, nil
	}
	if scratch == nil {
		scratch = &Scratch{}
	}
	if c.Forward {
		dist, _, _ := scratch.grow(n)
		best := 0.0
		for u := 0; u < n; u++ {
			du := dist[u]
			if du > best {
				best = du
			}
			for i := c.Heads[u]; i < c.Heads[u+1]; i++ {
				v := c.Targets[i]
				if d := du + c.Weights[i]; d > dist[v] {
					dist[v] = d
				}
			}
		}
		return best, nil
	}
	dist, indeg, queue := scratch.grow(n)
	for _, v := range c.Targets {
		indeg[v]++
	}
	for u := 0; u < n; u++ {
		if indeg[u] == 0 {
			queue = append(queue, int32(u))
		}
	}
	best := 0.0
	processed := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		du := dist[u]
		if du > best {
			best = du
		}
		for i := c.Heads[u]; i < c.Heads[u+1]; i++ {
			v := c.Targets[i]
			if d := du + c.Weights[i]; d > dist[v] {
				dist[v] = d
			}
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	scratch.queue = queue
	if processed != n {
		return 0, ErrCycle
	}
	return best, nil
}

// LongestPathInto runs the kernel and additionally exposes the per-node
// distances (heaviest path ending at each node) in scratch's dist buffer.
// The returned slice aliases scratch and is valid until the next call using
// the same Scratch. scratch must not be nil.
func (c *CSR) LongestPathInto(scratch *Scratch) (float64, []float64, error) {
	best, err := c.LongestPath(scratch)
	if err != nil {
		return 0, nil, err
	}
	return best, scratch.dist[:c.NumNodes()], nil
}
