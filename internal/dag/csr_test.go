package dag

import (
	"errors"
	"math/rand"
	"testing"
)

// randomForwardDAG builds a random forward-edged DAG and an equivalent Graph.
func randomForwardDAG(r *rand.Rand, n int, p float64) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode("")
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				g.AddEdge(u, v, float64(r.Intn(200))+r.Float64())
			}
		}
	}
	return g
}

func TestCSRMatchesGraph(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := randomForwardDAG(r, 1+r.Intn(40), r.Float64()*0.4)
		c := g.CSR()
		if c.NumNodes() != g.NumNodes() {
			t.Fatalf("nodes %d != %d", c.NumNodes(), g.NumNodes())
		}
		if c.NumEdges() != g.NumEdges() {
			t.Fatalf("edges %d != %d", c.NumEdges(), g.NumEdges())
		}
		if !c.Forward {
			t.Fatalf("forward-edged graph not marked Forward")
		}
		i := 0
		for _, e := range g.Edges() {
			// Edges() orders by (From, To); CSR groups by source with
			// ascending targets, so the flattened order must agree.
			if int(c.Targets[i]) != e.To || c.Weights[i] != e.Weight {
				t.Fatalf("edge %d: got (%d, %g), want (%d, %g)", i, c.Targets[i], c.Weights[i], e.To, e.Weight)
			}
			i++
		}
	}
}

func TestCSRLongestPathMatchesGraph(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var scratch Scratch
	for trial := 0; trial < 100; trial++ {
		g := randomForwardDAG(r, r.Intn(60), r.Float64()*0.3)
		want, err := g.LongestPath()
		if err != nil {
			t.Fatal(err)
		}
		c := g.CSR()
		got, err := c.LongestPath(&scratch)
		if err != nil {
			t.Fatal(err)
		}
		if got != want.Length {
			t.Fatalf("trial %d: CSR longest path %g, Graph %g", trial, got, want.Length)
		}
		// The generic (Kahn) branch must agree with the forward fast path.
		c.Forward = false
		slow, err := c.LongestPath(nil)
		if err != nil {
			t.Fatal(err)
		}
		if slow != want.Length {
			t.Fatalf("trial %d: Kahn branch %g, want %g", trial, slow, want.Length)
		}
	}
}

func TestCSRLongestPathInto(t *testing.T) {
	g := New()
	for i := 0; i < 4; i++ {
		g.AddNode("")
	}
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 4)
	g.AddEdge(0, 3, 10)
	c := g.CSR()
	var s Scratch
	best, dist, err := c.LongestPathInto(&s)
	if err != nil {
		t.Fatal(err)
	}
	if best != 10 {
		t.Fatalf("best = %g", best)
	}
	want := []float64{0, 3, 7, 10}
	for i, d := range dist {
		if d != want[i] {
			t.Fatalf("dist[%d] = %g, want %g", i, d, want[i])
		}
	}
	fromGraph, err := g.LongestPathFrom()
	if err != nil {
		t.Fatal(err)
	}
	for i := range fromGraph {
		if fromGraph[i] != dist[i] {
			t.Fatalf("dist[%d] = %g, LongestPathFrom %g", i, dist[i], fromGraph[i])
		}
	}
}

func TestCSRCycleDetected(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(a, b, 1)
	g.AddEdge(b, c, 1)
	g.AddEdge(c, a, 1)
	snap := g.CSR()
	if snap.Forward {
		t.Fatalf("cyclic graph marked Forward")
	}
	if _, err := snap.LongestPath(nil); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestCSREmptyAndIsolated(t *testing.T) {
	empty := New().CSR()
	if got, err := empty.LongestPath(nil); err != nil || got != 0 {
		t.Fatalf("empty: %g, %v", got, err)
	}
	g := New()
	g.AddNode("only")
	c := g.CSR()
	if got, err := c.LongestPath(nil); err != nil || got != 0 {
		t.Fatalf("isolated: %g, %v", got, err)
	}
}

func TestScratchReuseAcrossSizes(t *testing.T) {
	var s Scratch
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{50, 5, 120, 1} {
		g := randomForwardDAG(r, n, 0.2)
		want, err := g.LongestPath()
		if err != nil {
			t.Fatal(err)
		}
		c := g.CSR()
		got, err := c.LongestPath(&s)
		if err != nil {
			t.Fatal(err)
		}
		if got != want.Length {
			t.Fatalf("n=%d: %g != %g", n, got, want.Length)
		}
	}
}
