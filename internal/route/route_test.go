package route

import (
	"math"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/statevec"
	"velociti/internal/ti"
	"velociti/internal/workload"
)

func layout(t *testing.T, qubits, chainLen int) *ti.Layout {
	t.Helper()
	d, err := ti.DeviceFor(qubits, chainLen, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	l, err := placement.Sequential{}.Place(d, qubits, nil)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBreakEven(t *testing.T) {
	if got := breakEven(perf.DefaultLatencies()); got != 6 {
		t.Fatalf("break-even at α=2 = %v, want 6", got)
	}
	if !math.IsInf(breakEven(perf.Latencies{OneQubit: 1, TwoQubit: 100, WeakPenalty: 1}), 1) {
		t.Fatalf("α=1 should never migrate")
	}
}

func TestLocalizeMigratesHotCrossPair(t *testing.T) {
	// Ten gates between qubits 0 and 4 across a chain boundary
	// (sequential placement, chains of 4): migration saves
	// 10·αγ − (3αγ + 10γ) = 2000 − 1600 = 400 µs.
	l := layout(t, 8, 4)
	c := circuit.New("hot", 8)
	for i := 0; i < 10; i++ {
		c.CX(0, 4)
	}
	lat := perf.DefaultLatencies()
	orig, routed, res, err := Evaluate(c, l, lat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 1 || res.SwapsInserted != 1 {
		t.Fatalf("migrations = %d, swaps = %d", res.Migrations, res.SwapsInserted)
	}
	if orig != 2000 {
		t.Fatalf("original = %v, want 2000", orig)
	}
	// Routed: SWAP (3 weak CX... the SWAP itself is a cross-chain gate at
	// αγ in this model) then 10 local gates.
	if routed >= orig {
		t.Fatalf("routing did not help: %v vs %v", routed, orig)
	}
}

func TestLocalizeLeavesColdGatesAlone(t *testing.T) {
	// A single cross-chain gate is below the break-even: no migration.
	l := layout(t, 8, 4)
	c := circuit.New("cold", 8)
	c.CX(0, 4)
	c.CX(1, 2)
	res, err := Localize(c, l, perf.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Fatalf("cold circuit migrated %d times", res.Migrations)
	}
	if res.Routed.NumGates() != 2 {
		t.Fatalf("gates = %d", res.Routed.NumGates())
	}
}

func TestLocalizeNeverMigratesAtAlphaOne(t *testing.T) {
	l := layout(t, 8, 4)
	c := circuit.New("a1", 8)
	for i := 0; i < 20; i++ {
		c.CX(0, 4)
	}
	lat := perf.Latencies{OneQubit: 1, TwoQubit: 100, WeakPenalty: 1}
	res, err := Localize(c, l, lat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Fatalf("α=1 migrated %d times", res.Migrations)
	}
}

func TestLocalizeStreakBrokenByThirdParty(t *testing.T) {
	// Cross-pair gates interleaved with third-party interactions: the
	// streak never reaches 6, so no migration.
	l := layout(t, 8, 4)
	c := circuit.New("broken", 8)
	for i := 0; i < 10; i++ {
		c.CX(0, 4)
		c.CX(0, 1) // breaks the streak every time
	}
	res, err := Localize(c, l, perf.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Fatalf("broken streak migrated %d times", res.Migrations)
	}
}

func TestLocalizeIntraChainUnchanged(t *testing.T) {
	l := layout(t, 8, 8) // single chain: nothing to route
	c := genc(t)(workload.RandomCircuit(8, 60, 0.3, 4))
	res, err := Localize(c, l, perf.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 || res.Routed.NumGates() != c.NumGates() {
		t.Fatalf("single-chain circuit was rewritten: %+v", res)
	}
	for i := range c.Gates() {
		if res.Routed.Gate(i).String() != c.Gate(i).String() {
			t.Fatalf("gate %d changed", i)
		}
	}
}

// Functional equivalence: the routed circuit computes the same state up to
// the returned qubit permutation.
func TestLocalizePreservesSemantics(t *testing.T) {
	l := layout(t, 8, 4)
	lat := perf.DefaultLatencies()
	for seed := int64(0); seed < 10; seed++ {
		c := genc(t)(workload.RandomCircuit(8, 40, 0.3, seed))
		// Add a hot cross pair so migrations actually occur sometimes.
		for i := 0; i < 8; i++ {
			c.CX(0, 4)
		}
		res, err := Localize(c, l, lat)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := statevec.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		routed, err := statevec.Run(res.Routed)
		if err != nil {
			t.Fatal(err)
		}
		// Compare amplitudes: logical qubit q's bit lives at physical
		// position FinalPosition[q] in the routed state.
		n := c.NumQubits()
		for x := uint64(0); x < 1<<uint(n); x++ {
			var mapped uint64
			for q := 0; q < n; q++ {
				if x&(1<<uint(q)) != 0 {
					mapped |= 1 << uint(res.FinalPosition[q])
				}
			}
			a := orig.Amplitude(x)
			b := routed.Amplitude(mapped)
			dr, di := real(a)-real(b), imag(a)-imag(b)
			if dr*dr+di*di > 1e-18 {
				t.Fatalf("seed %d: amplitude mismatch at %b: %v vs %v (migrations %d)",
					seed, x, a, b, res.Migrations)
			}
		}
	}
}

func TestLocalizeValidation(t *testing.T) {
	l := layout(t, 4, 2)
	c := circuit.New("v", 4)
	if _, err := Localize(c, l, perf.Latencies{}); err == nil {
		t.Fatalf("bad latencies should fail")
	}
	wide := circuit.New("wide", 99)
	if _, err := Localize(wide, l, perf.DefaultLatencies()); err == nil {
		t.Fatalf("width mismatch should fail")
	}
}

func TestLocalizeRoutedNeverSlowerOnItsOwnModel(t *testing.T) {
	// The router's decision rule guarantees no regression under the
	// serial per-gate cost model it reasons about; check the parallel
	// model too across random workloads (allowing equality).
	lat := perf.DefaultLatencies()
	for seed := int64(0); seed < 15; seed++ {
		l := layout(t, 16, 4)
		c := genc(t)(workload.RandomCircuit(16, 80, 0.2, seed))
		origSerial := perf.SerialTimePerGate(c, l, lat)
		res, err := Localize(c, l, lat)
		if err != nil {
			t.Fatal(err)
		}
		routedSerial := perf.SerialTimePerGate(res.Routed, l, lat)
		if routedSerial > origSerial+1e-9 {
			t.Fatalf("seed %d: routing regressed per-gate serial %v → %v (migrations %d)",
				seed, origSerial, routedSerial, res.Migrations)
		}
	}
}

// Routing is idempotent: a second pass over a routed circuit finds nothing
// left to migrate.
func TestLocalizeIdempotent(t *testing.T) {
	l := layout(t, 16, 4)
	lat := perf.DefaultLatencies()
	for seed := int64(0); seed < 8; seed++ {
		c := genc(t)(workload.RandomCircuit(16, 60, 0.2, seed))
		for i := 0; i < 8; i++ {
			c.CX(1, 9) // hot cross pair under sequential placement
		}
		first, err := Localize(c, l, lat)
		if err != nil {
			t.Fatal(err)
		}
		second, err := Localize(first.Routed, l, lat)
		if err != nil {
			t.Fatal(err)
		}
		if second.Migrations != 0 {
			t.Fatalf("seed %d: second pass migrated %d times", seed, second.Migrations)
		}
	}
}

// genc unwraps a circuit-generator result, failing the test on error.
func genc(t testing.TB) func(*circuit.Circuit, error) *circuit.Circuit {
	return func(c *circuit.Circuit, err error) *circuit.Circuit {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return c
	}
}
