// Package route implements a localizing router for explicit circuits — a
// transpiler pass that decides, per cross-chain 2-qubit gate, whether to
// execute it remotely over the weak link (α·γ) or to first migrate one
// operand into the other operand's chain by swapping it with a resident
// qubit (three cross-chain CX, then local gates at γ).
//
// Migration pays off when the pair keeps interacting: k consecutive
// remote gates cost k·α·γ, while migrating costs 3·α·γ once plus k·γ
// locally, so the break-even is k ≥ 3α/(α−1) (6 gates at the paper's
// α = 2). The router scans ahead in program order and migrates exactly
// when the lookahead clears that threshold, so it never loses to the
// migrate-nothing baseline under its own cost model.
//
// The pass rewrites the circuit over physical qubits: the logical→physical
// assignment evolves as SWAPs are inserted, and the final permutation is
// returned so functional equivalence is checkable (the test suite verifies
// it with the state-vector simulator).
package route

import (
	"fmt"
	"math"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/ti"
)

// Result carries the routed circuit and its bookkeeping.
type Result struct {
	// Routed is the rewritten circuit over physical qubits, including
	// inserted SWAP gates.
	Routed *circuit.Circuit
	// FinalPosition maps each logical qubit to its physical position
	// after the routed circuit runs (initially logical q sits at
	// physical q).
	FinalPosition []int
	// Migrations counts qubit relocations performed.
	Migrations int
	// SwapsInserted counts inserted SWAP gates (one per migration).
	SwapsInserted int
}

// breakEven returns the minimum number of consecutive remote interactions
// that justifies a migration under the latency model: 3α/(α−1), or +Inf
// when α = 1 (remote gates are free of penalty, migration never pays).
func breakEven(lat perf.Latencies) float64 {
	if lat.WeakPenalty <= 1 {
		return math.Inf(1)
	}
	return 3 * lat.WeakPenalty / (lat.WeakPenalty - 1)
}

// Localize routes circuit c against layout l under the latency model lat.
// The input circuit and layout are not modified; gate operands in the
// returned circuit refer to physical qubits of the same layout.
func Localize(c *circuit.Circuit, l *ti.Layout, lat perf.Latencies) (*Result, error) {
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	if c.NumQubits() > l.NumQubits() {
		return nil, fmt.Errorf("route: circuit has %d qubits but layout places only %d", c.NumQubits(), l.NumQubits())
	}
	n := l.NumQubits()
	// position[logical] = physical slot; occupant[physical] = logical.
	position := make([]int, n)
	occupant := make([]int, n)
	for i := 0; i < n; i++ {
		position[i] = i
		occupant[i] = i
	}
	threshold := breakEven(lat)
	gates := c.Gates()
	out := circuit.New(c.Name+"-routed", n)
	res := &Result{}

	// lookaheadRun counts how many of the upcoming gates on logical pair
	// (a, b) occur before either qubit participates with a third party —
	// the streak a migration would localize.
	lookaheadRun := func(from int, a, b int) int {
		run := 0
		for i := from; i < len(gates); i++ {
			g := gates[i]
			ta, tb := g.Touches(a), g.Touches(b)
			if !ta && !tb {
				continue
			}
			if g.IsTwoQubit() && ta && tb {
				run++
				continue
			}
			if g.IsTwoQubit() {
				// One of the pair interacts elsewhere: streak over.
				break
			}
			// 1-qubit gates on a or b do not break the streak.
		}
		return run
	}

	for idx, g := range gates {
		if !g.IsTwoQubit() {
			out.Append(g.Kind, []int{position[g.Qubits[0]]}, g.Params...)
			continue
		}
		la, lb := g.Qubits[0], g.Qubits[1]
		pa, pb := position[la], position[lb]
		if !l.SameChain(pa, pb) && float64(lookaheadRun(idx, la, lb)) >= threshold {
			// Migrate logical la into lb's chain by swapping it with a
			// resident of that chain. Victim choice: the physical slot in
			// lb's chain whose occupant interacts least with that chain's
			// residents — approximated by picking the occupant with the
			// fewest remaining gates (cheap heuristic: first slot whose
			// occupant is not lb).
			victim := -1
			for _, slot := range l.Chain(l.ChainOf(pb)) {
				if slot != pb {
					victim = slot
					break
				}
			}
			if victim >= 0 {
				out.SWAP(pa, victim)
				lv := occupant[victim]
				position[la], position[lv] = victim, pa
				occupant[victim], occupant[pa] = la, lv
				pa = position[la]
				res.Migrations++
				res.SwapsInserted++
			}
		}
		out.Append(g.Kind, []int{pa, pb}, g.Params...)
	}
	res.Routed = out
	res.FinalPosition = position[:c.NumQubits()]
	return res, nil
}

// Evaluate compares the routed circuit against executing the original
// remotely, both under the parallel model on the same layout.
func Evaluate(c *circuit.Circuit, l *ti.Layout, lat perf.Latencies) (original, routed float64, res *Result, err error) {
	res, err = Localize(c, l, lat)
	if err != nil {
		return 0, 0, nil, err
	}
	return perf.ParallelTime(c, l, lat), perf.ParallelTime(res.Routed, l, lat), res, nil
}
