package shuttle

// This file adapts Params into the core.Stages timing-backend seam
// (perf.TimingBackend). The heavy lifting — per-gate transport paths,
// junction contention, the multi-lane pricing kernel — lives in
// internal/perf (Binding.AttachTransport / TimeTransportAll) so that the
// kernel can share the weak-link sweep's pooled scratch; this file only
// carries the parameters across the boundary and names the backend for
// flags, request schemas, and cache keys.

import (
	"strconv"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/ti"
	"velociti/internal/verr"
)

// Backend prices cross-chain 2-qubit gates as explicit ion transport:
// split + per-hop move + merge + recool, serialized through shared
// weak-link segments, followed by the gate at the LOCAL γ (the weak
// penalty α never applies — transport replaces it). It implements
// perf.TimingBackend; select it by name via ByName or the CLIs'
// -backend shuttle.
type Backend struct {
	Params Params
}

// Name returns "shuttle".
func (Backend) Name() string { return "shuttle" }

// CacheKey fingerprints the backend name and every transport cost, so
// bindings prepared under different shuttle pricings (or under the
// weak-link backend) never collide in a shared artifact cache.
func (b Backend) CacheKey() string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return "shuttle|split=" + f(b.Params.SplitMicros) +
		"|move=" + f(b.Params.MovePerHopMicros) +
		"|merge=" + f(b.Params.MergeMicros) +
		"|recool=" + f(b.Params.RecoolMicros)
}

// Validate rejects unusable transport costs with a typed input error.
func (b Backend) Validate() error { return b.Params.Validate() }

// Prepare attaches the per-gate transport plan to the binding
// (perf.Binding.AttachTransport): deterministic shortest weak-link paths
// per operand chain pair, with disconnected pairs surfaced as typed
// input errors at bind time rather than priced with a fabricated cost.
func (Backend) Prepare(bd *perf.Binding, l *ti.Layout) error { return bd.AttachTransport(l) }

// Time prices the binding under one timing model.
func (b Backend) Time(bd *perf.Binding, lat perf.Latencies) (perf.Result, error) {
	return bd.TimeTransport(b.costs(), lat)
}

// TimeAll prices the binding under every timing model in one pass; entry
// j equals Time(lats[j]) bit for bit.
func (b Backend) TimeAll(bd *perf.Binding, lats []perf.Latencies) ([]perf.Result, error) {
	return bd.TimeTransportAll(b.costs(), lats)
}

// DeltaWeights implements perf.DeltaWeigher, enabling incremental
// (delta) evaluation for search-based placement. The delta objective is
// the CONTENTION-FREE transport cost: a cross-chain gate prices as
// split + hops·move + merge + recool + the local γ (α never applies —
// transport replaces it), which is Time's cost when no two transports
// queue on a shared segment. Junction contention is sequence-dependent
// and cannot be carried by a static edge weight, so the annealer searches
// on this surrogate; reported results are always re-priced by Time.
func (b Backend) DeltaWeights(lat perf.Latencies) ([perf.NumGateClasses]float64, float64, error) {
	if err := lat.Validate(); err != nil {
		return [perf.NumGateClasses]float64{}, 0, err
	}
	if err := b.Params.Validate(); err != nil {
		return [perf.NumGateClasses]float64{}, 0, err
	}
	var base [perf.NumGateClasses]float64
	base[perf.ClassOneQ] = lat.OneQubit
	base[perf.ClassTwoQIntra] = lat.TwoQubit
	base[perf.ClassTwoQWeak] = lat.TwoQubit + b.Params.SplitMicros + b.Params.MergeMicros + b.Params.RecoolMicros
	return base, b.Params.MovePerHopMicros, nil
}

func (b Backend) costs() perf.TransportCosts {
	return perf.TransportCosts{
		SplitMicros:      b.Params.SplitMicros,
		MovePerHopMicros: b.Params.MovePerHopMicros,
		MergeMicros:      b.Params.MergeMicros,
		RecoolMicros:     b.Params.RecoolMicros,
	}
}

// StreamTimeAll prices a gate stream directly (perf.SourceTimer): the
// transport busy-until recurrence over the per-qubit frontier, in memory
// independent of gate count.
func (b Backend) StreamTimeAll(src circuit.Source, l *ti.Layout, lats []perf.Latencies) ([]perf.Result, perf.StreamStats, error) {
	return perf.StreamTransportAll(src, l, b.costs(), lats)
}

var (
	_ perf.TimingBackend = Backend{}
	_ perf.SourceTimer   = Backend{}
)

// ByName resolves a timing backend from its selector name, the single
// lowering point for the -backend flags, config.Params.Backend, and the
// serve request schemas. The empty name selects the default weak-link
// model; "shuttle" selects a transport backend priced by p (validated
// here, at the input boundary). Unknown names are typed input errors.
func ByName(name string, p Params) (perf.TimingBackend, error) {
	switch name {
	case "", perf.WeakLink{}.Name():
		return perf.WeakLink{}, nil
	case Backend{}.Name():
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return Backend{Params: p}, nil
	default:
		return nil, verr.Inputf("shuttle: unknown timing backend %q (want %q or %q)",
			name, perf.WeakLink{}.Name(), Backend{}.Name())
	}
}
