package shuttle

import (
	"math"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/schedule"
	"velociti/internal/stats"
	"velociti/internal/ti"
)

func layout(t *testing.T, qubits, chainLen int) *ti.Layout {
	t.Helper()
	d, err := ti.DeviceFor(qubits, chainLen, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	l, err := placement.Sequential{}.Place(d, qubits, nil)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestDefaultsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateNegativeCosts(t *testing.T) {
	bad := []Params{
		{SplitMicros: -1},
		{MergeMicros: -1},
		{MovePerHopMicros: -1},
		{RecoolMicros: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %d should be invalid", i)
		}
	}
}

func TestCrossChainOverhead(t *testing.T) {
	p := Params{SplitMicros: 50, MergeMicros: 40, MovePerHopMicros: 10, RecoolMicros: 100}
	if got := p.CrossChainOverhead(0); got != 0 {
		t.Errorf("0 hops = %v", got)
	}
	if got := p.CrossChainOverhead(1); got != 200 {
		t.Errorf("1 hop = %v, want 200", got)
	}
	if got := p.CrossChainOverhead(3); got != 220 {
		t.Errorf("3 hops = %v, want 220", got)
	}
}

func TestGateLatencyClasses(t *testing.T) {
	l := layout(t, 8, 4) // 2 chains of 4
	p := Default()
	lat := perf.DefaultLatencies()
	c := circuit.New("t", 8)
	oneQ := c.H(0)
	intra := c.CX(0, 1)
	cross := c.CX(3, 4)
	if got, err := p.GateLatency(c.Gate(oneQ), l, lat); err != nil || got != 1 {
		t.Errorf("1q = %v, %v", got, err)
	}
	if got, err := p.GateLatency(c.Gate(intra), l, lat); err != nil || got != 100 {
		t.Errorf("intra = %v, %v", got, err)
	}
	want := 80 + 10 + 80 + 100 + 100 // split+move+merge+recool+gate
	if got, err := p.GateLatency(c.Gate(cross), l, lat); err != nil || got != float64(want) {
		t.Errorf("cross = %v (%v), want %d", got, err, want)
	}
}

func TestCompareHandCase(t *testing.T) {
	l := layout(t, 4, 2)
	c := circuit.New("t", 4)
	c.CX(1, 2) // cross-chain
	res, err := Compare(c, l, perf.DefaultLatencies(), Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.WeakLinkMicros != 200 {
		t.Errorf("weak link = %v, want α·γ = 200", res.WeakLinkMicros)
	}
	if res.ShuttleMicros != 370 {
		t.Errorf("shuttle = %v, want 80+10+80+100+100 = 370", res.ShuttleMicros)
	}
	if res.CrossGates != 1 {
		t.Errorf("cross gates = %d", res.CrossGates)
	}
	if !res.WeakLinkWins() {
		t.Errorf("weak link should win at α = 2 with default shuttle costs")
	}
}

func TestWeakLinkLosesAtHighAlpha(t *testing.T) {
	l := layout(t, 4, 2)
	c := circuit.New("t", 4)
	c.CX(1, 2)
	lat := perf.DefaultLatencies()
	lat.WeakPenalty = 5 // a very slow photonic link
	res, err := Compare(c, l, lat, Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.WeakLinkWins() {
		t.Errorf("shuttle (%v) should beat a 500µs weak gate (%v)", res.ShuttleMicros, res.WeakLinkMicros)
	}
}

func TestBreakEvenAlpha(t *testing.T) {
	p := Default()
	lat := perf.DefaultLatencies()
	// overhead(1) = 270, so break-even α = (270+100)/100 = 3.7.
	got, err := p.BreakEvenAlpha(lat)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3.7) > 1e-12 {
		t.Fatalf("break-even α = %v, want 3.7", got)
	}
	// At exactly break-even the two mechanisms tie on a 1-hop gate.
	l := layout(t, 4, 2)
	c := circuit.New("t", 4)
	c.CX(1, 2)
	lat.WeakPenalty = got
	res, err := Compare(c, l, lat, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.WeakLinkMicros-res.ShuttleMicros) > 1e-9 {
		t.Fatalf("break-even mismatch: %v vs %v", res.WeakLinkMicros, res.ShuttleMicros)
	}
}

func TestCompareOnRandomWorkload(t *testing.T) {
	d, err := ti.DeviceFor(64, 16, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(2)
	l, err := placement.Random{}.Place(d, 64, r)
	if err != nil {
		t.Fatal(err)
	}
	spec := circuit.Spec{Name: "w", Qubits: 64, TwoQubitGates: 300}
	c, err := schedule.Random{}.Place(spec, l, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compare(c, l, perf.DefaultLatencies(), Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossGates == 0 {
		t.Fatalf("expected cross-chain gates")
	}
	// Shuttle parallel time never exceeds its own serial baseline.
	if res.ShuttleMicros > res.ShuttleSerialMicros+1e-9 {
		t.Fatalf("shuttle parallel %v > serial %v", res.ShuttleMicros, res.ShuttleSerialMicros)
	}
	// Default shuttle costs are slower than α=2 weak links per gate, so
	// the whole circuit follows.
	if !res.WeakLinkWins() {
		t.Fatalf("weak link should win: %v vs %v", res.WeakLinkMicros, res.ShuttleMicros)
	}
}

func TestCompareValidation(t *testing.T) {
	l := layout(t, 4, 2)
	c := circuit.New("t", 4)
	if _, err := Compare(c, l, perf.DefaultLatencies(), Params{SplitMicros: -1}); err == nil {
		t.Errorf("bad params should fail")
	}
	if _, err := Compare(c, l, perf.Latencies{}, Default()); err == nil {
		t.Errorf("bad latencies should fail")
	}
	wide := circuit.New("wide", 99)
	if _, err := Compare(wide, l, perf.DefaultLatencies(), Default()); err == nil {
		t.Errorf("width mismatch should fail")
	}
}

func TestMultiHopShuttleCheaperThanMultiWeak(t *testing.T) {
	// On a 4-chain ring, a 2-hop transport adds only one extra move step
	// (10 µs), while the flat weak-link model charges distance-blind α·γ.
	d, err := ti.NewDevice(2, 4, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	l, err := placement.Sequential{}.Place(d, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("far", 8)
	c.CX(0, 4) // chains 0 and 2: distance 2
	p := Default()
	lat := perf.DefaultLatencies()
	oneHop := p.CrossChainOverhead(1)
	twoHop := p.CrossChainOverhead(2)
	if twoHop-oneHop != p.MovePerHopMicros {
		t.Fatalf("hop increment = %v", twoHop-oneHop)
	}
	res, err := Compare(c, l, lat, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShuttleMicros != twoHop+lat.TwoQubit {
		t.Fatalf("2-hop shuttle = %v, want %v", res.ShuttleMicros, twoHop+lat.TwoQubit)
	}
}
