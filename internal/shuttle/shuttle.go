// Package shuttle models ion transport as the alternative cross-chain
// communication mechanism in QCCD trapped-ion machines.
//
// The VelociTI paper models cross-chain gates over photonic weak links at a
// flat α·γ penalty. The QCCD literature it builds on (Kielpinski et al.'s
// original architecture, Pino et al.'s demonstration — the paper's
// references [35] and [52] — and Murali et al.'s ISCA'20 study [48])
// instead physically *shuttles* ions between traps: the ion is split out of
// its chain, moved through the trap array, merged into the destination
// chain, the chain is recooled, and the 2-qubit gate then executes locally
// at the ordinary γ. This package prices that sequence so the two
// mechanisms can be compared head-to-head on the same placed circuits —
// a design-space axis the paper leaves open.
//
// Default constants follow the QCCD literature's order of magnitude:
// split/merge ≈ 80 µs each, per-hop transport ≈ 10 µs, and a recooling
// step ≈ 100 µs after motion.
package shuttle

import (
	"fmt"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/ti"
	"velociti/internal/verr"
)

// Params prices the primitive shuttling operations, in µs.
type Params struct {
	// SplitMicros extracts the ion from its chain.
	SplitMicros float64 `json:"split_us"`
	// MergeMicros inserts the ion into the destination chain.
	MergeMicros float64 `json:"merge_us"`
	// MovePerHopMicros transports the ion across one inter-chain segment.
	MovePerHopMicros float64 `json:"move_per_hop_us"`
	// RecoolMicros re-cools the destination chain after the merge;
	// motion heats the chain and gate fidelity requires cooling first.
	RecoolMicros float64 `json:"recool_us"`
}

// Default returns literature-order-of-magnitude shuttling costs.
func Default() Params {
	return Params{
		SplitMicros:      80,
		MergeMicros:      80,
		MovePerHopMicros: 10,
		RecoolMicros:     100,
	}
}

// Validate reports a typed input error (verr) for negative or NaN costs.
// Config loading and the serve layer call it at the input boundary, so a
// bad cost in a params file or request body surfaces as an "invalid
// input" diagnostic rather than a computed garbage result.
func (p Params) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"split", p.SplitMicros},
		{"merge", p.MergeMicros},
		{"move per hop", p.MovePerHopMicros},
		{"recool", p.RecoolMicros},
	} {
		if !(f.v >= 0) {
			return verr.Inputf("shuttle: %s cost must be a non-negative number, got %g", f.name, f.v)
		}
	}
	return nil
}

// CrossChainOverhead returns the transport time added to a 2-qubit gate
// whose operands sit `hops` chains apart: one split, the multi-hop move,
// one merge, and one recool. Zero hops cost nothing.
func (p Params) CrossChainOverhead(hops int) float64 {
	if hops <= 0 {
		return 0
	}
	return p.SplitMicros + float64(hops)*p.MovePerHopMicros + p.MergeMicros + p.RecoolMicros
}

// GateLatency prices gate g under layout l: 1-qubit gates cost δ,
// intra-chain 2-qubit gates cost γ, and cross-chain gates cost the
// transport overhead plus a local γ gate. A cross-chain gate whose
// operand chains are disconnected is an impossible gate for this device
// and returns a typed input error — an earlier revision silently priced
// it with a fabricated finite hop count.
func (p Params) GateLatency(g circuit.Gate, l *ti.Layout, lat perf.Latencies) (float64, error) {
	if !g.IsTwoQubit() {
		return lat.OneQubit, nil
	}
	hops, err := l.PathHops(g.Qubits[0], g.Qubits[1])
	if err != nil {
		return 0, err
	}
	return p.CrossChainOverhead(hops) + lat.TwoQubit, nil
}

// Result compares the weak-link and shuttling mechanisms on one placed
// circuit.
type Result struct {
	// WeakLinkMicros is the parallel time with cross-chain gates at α·γ
	// (the paper's model).
	WeakLinkMicros float64 `json:"weak_link_us"`
	// ShuttleMicros is the parallel time with cross-chain gates paying
	// transport overhead plus a local gate.
	ShuttleMicros float64 `json:"shuttle_us"`
	// ShuttleSerialMicros is the back-to-back shuttling baseline.
	ShuttleSerialMicros float64 `json:"shuttle_serial_us"`
	// CrossGates counts the gates that needed transport.
	CrossGates int `json:"cross_gates"`
}

// WeakLinkWins reports whether the photonic weak link is the faster
// mechanism for this circuit and placement.
func (r Result) WeakLinkWins() bool { return r.WeakLinkMicros <= r.ShuttleMicros }

// Compare evaluates both communication mechanisms on the same placed
// circuit.
func Compare(c *circuit.Circuit, l *ti.Layout, lat perf.Latencies, p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if err := lat.Validate(); err != nil {
		return Result{}, err
	}
	if c.NumQubits() > l.NumQubits() {
		return Result{}, fmt.Errorf("shuttle: circuit has %d qubits but layout places only %d", c.NumQubits(), l.NumQubits())
	}
	// Per-gate shuttle latencies are priced once up front so a
	// disconnected operand pair surfaces as an input error instead of
	// being silently folded into a timing sum.
	gates := c.Gates()
	shuttleLat := make([]float64, len(gates))
	for i := range gates {
		v, err := p.GateLatency(gates[i], l, lat)
		if err != nil {
			return Result{}, err
		}
		shuttleLat[gates[i].ID] = v
	}
	byID := func(g circuit.Gate) float64 { return shuttleLat[g.ID] }
	res := Result{
		WeakLinkMicros:      perf.ParallelTime(c, l, lat),
		ShuttleMicros:       perf.ParallelTimeFunc(c, byID),
		ShuttleSerialMicros: perf.SerialTimeFunc(c, byID),
		CrossGates:          perf.WeakGates(c, l),
	}
	return res, nil
}

// BreakEvenAlpha returns the weak-link penalty α at which a single-hop
// cross-chain gate costs the same under both mechanisms:
// α·γ = overhead(1) + γ. Above this α, shuttling wins on adjacent
// chains. The latencies are validated first: an earlier revision divided
// by γ unchecked and returned ±Inf/NaN for γ ≤ 0.
func (p Params) BreakEvenAlpha(lat perf.Latencies) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if err := lat.Validate(); err != nil {
		return 0, err
	}
	return (p.CrossChainOverhead(1) + lat.TwoQubit) / lat.TwoQubit, nil
}
