package shuttle

import (
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/ti"
	"velociti/internal/verr"
)

// TestBreakEvenAlphaRejectsZeroGamma pins the division-by-γ regression:
// a zero or negative 2-qubit latency used to produce ±Inf/NaN break-even
// values; it must now be a typed input error before any division runs.
func TestBreakEvenAlphaRejectsZeroGamma(t *testing.T) {
	p := Default()
	for _, gamma := range []float64{0, -100} {
		lat := perf.DefaultLatencies()
		lat.TwoQubit = gamma
		v, err := p.BreakEvenAlpha(lat)
		if err == nil {
			t.Fatalf("γ=%g: BreakEvenAlpha = %v, want error", gamma, v)
		}
		if !verr.IsInput(err) {
			t.Fatalf("γ=%g: error should be input-kind, got %v", gamma, err)
		}
	}
	// Bad transport costs are rejected too, before the latency check.
	if _, err := (Params{SplitMicros: -1}).BreakEvenAlpha(perf.DefaultLatencies()); err == nil {
		t.Fatal("negative costs should fail")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"", "weaklink"} {
		be, err := ByName(name, Default())
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if _, ok := be.(perf.WeakLink); !ok {
			t.Fatalf("ByName(%q) = %T, want perf.WeakLink", name, be)
		}
	}
	be, err := ByName("shuttle", Default())
	if err != nil {
		t.Fatal(err)
	}
	if sb, ok := be.(Backend); !ok || sb.Params != Default() {
		t.Fatalf("ByName(shuttle) = %#v", be)
	}
	if _, err := ByName("shuttle", Params{SplitMicros: -1}); err == nil {
		t.Fatal("shuttle with bad params should fail")
	}
	_, err = ByName("bogus", Default())
	if err == nil {
		t.Fatal("unknown backend should fail")
	}
	if !verr.IsInput(err) {
		t.Fatalf("unknown-backend error should be input-kind, got %v", err)
	}
}

// TestBackendCacheKeys: the cache key must separate the weak-link model,
// the default shuttle pricing, and any altered shuttle pricing — bindings
// prepared under one must never be reused under another.
func TestBackendCacheKeys(t *testing.T) {
	def := Backend{Params: Default()}
	alt := Backend{Params: Params{SplitMicros: 1, MovePerHopMicros: 2, MergeMicros: 3, RecoolMicros: 4}}
	keys := map[string]string{
		"weaklink":    perf.WeakLink{}.CacheKey(),
		"shuttle-def": def.CacheKey(),
		"shuttle-alt": alt.CacheKey(),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if k == "" {
			t.Errorf("%s: empty cache key", name)
		}
		if prior, dup := seen[k]; dup {
			t.Errorf("cache key collision between %s and %s: %q", prior, name, k)
		}
		seen[k] = name
	}
	if def.Name() != "shuttle" {
		t.Errorf("backend name = %q", def.Name())
	}
}

// TestGateLatencyDisconnected: pricing a weak gate across disconnected
// chains is an input error, not a finite cost.
func TestGateLatencyDisconnected(t *testing.T) {
	d, err := ti.NewDeviceLinks(2, 3, []ti.WeakLink{
		{A: ti.Port{Chain: 0, Side: ti.Right}, B: ti.Port{Chain: 1, Side: ti.Left}},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := ti.NewLayout(d, [][]int{{0, 1}, {2, 3}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("disc", 6)
	id := c.CX(0, 4) // chain 0 ↔ chain 2: no path
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	_, err = Default().GateLatency(c.Gate(id), l, perf.DefaultLatencies())
	if err == nil {
		t.Fatal("disconnected gate should fail")
	}
	if !verr.IsInput(err) {
		t.Fatalf("error should be input-kind, got %v", err)
	}
	// Compare propagates the same rejection.
	if _, err := Compare(c, l, perf.DefaultLatencies(), Default()); err == nil {
		t.Fatal("Compare over a disconnected gate should fail")
	}
}
