// Package verr defines VelociTI's error-kind contract: every validation
// failure that can be provoked by user input — CLI flags, QASM files, JSON
// circuits and configs, API arguments — is marked as an *input* error, so
// that CLIs (and future servers) can distinguish "the request was bad" from
// "the framework has a bug" with errors.Is(err, verr.ErrInput).
//
// The contract, repo-wide:
//
//   - Input-reachable validation returns an error marked with ErrInput
//     (construct with Inputf, or mark an existing error with Mark).
//   - panic() remains only for genuine programmer-bug invariants that no
//     external input can reach (e.g. dag node-id range, ti layout qubit
//     range), each documented as such at the panic site.
//
// Wrapping an input error with fmt.Errorf("...: %w", err) preserves the
// kind, so callers can add context freely.
package verr

import (
	"errors"
	"fmt"
)

// ErrInput is the sentinel all user-input validation errors match via
// errors.Is. It is never returned directly; use Inputf or Mark.
var ErrInput = errors.New("invalid input")

// inputError marks an underlying error as input-kind while preserving its
// message and unwrap chain.
type inputError struct {
	err error
}

func (e *inputError) Error() string { return e.err.Error() }

func (e *inputError) Unwrap() error { return e.err }

// Is makes errors.Is(err, ErrInput) true for every marked error without
// ErrInput appearing in the message text.
func (e *inputError) Is(target error) bool { return target == ErrInput }

// Inputf returns a new input-kind error with a fmt.Sprintf-style message.
// %w verbs work as in fmt.Errorf.
func Inputf(format string, args ...any) error {
	return &inputError{err: fmt.Errorf(format, args...)}
}

// Mark wraps err as input-kind, preserving its message verbatim. A nil err
// stays nil.
func Mark(err error) error {
	if err == nil {
		return nil
	}
	return &inputError{err: err}
}

// IsInput reports whether err is (or wraps) an input-kind error.
func IsInput(err error) bool { return errors.Is(err, ErrInput) }
