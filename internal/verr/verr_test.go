package verr

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"strings"
	"testing"
)

func TestInputfMatchesSentinel(t *testing.T) {
	err := Inputf("qubits must be positive, got %d", -3)
	if !IsInput(err) {
		t.Fatalf("Inputf error should be input-kind")
	}
	if !errors.Is(err, ErrInput) {
		t.Fatalf("errors.Is(err, ErrInput) should hold")
	}
	if want := "qubits must be positive, got -3"; err.Error() != want {
		t.Fatalf("message = %q, want %q", err.Error(), want)
	}
	if strings.Contains(err.Error(), ErrInput.Error()) {
		t.Fatalf("sentinel text should not leak into the message: %q", err.Error())
	}
}

func TestWrappingPreservesKind(t *testing.T) {
	inner := Inputf("bad ratio %g", -1.0)
	wrapped := fmt.Errorf("workload: %w", wrapErr{inner})
	if !IsInput(wrapped) {
		t.Fatalf("kind should survive fmt.Errorf wrapping")
	}
	twice := fmt.Errorf("cmd: %w", wrapped)
	if !IsInput(twice) {
		t.Fatalf("kind should survive double wrapping")
	}
}

// wrapErr exercises the unwrap chain through a custom error type too.
type wrapErr struct{ err error }

func (w wrapErr) Error() string { return w.err.Error() }
func (w wrapErr) Unwrap() error { return w.err }

func TestMark(t *testing.T) {
	if Mark(nil) != nil {
		t.Fatalf("Mark(nil) should be nil")
	}
	_, err := os.Open("/nonexistent/velociti-test-file")
	marked := Mark(err)
	if !IsInput(marked) {
		t.Fatalf("marked error should be input-kind")
	}
	if marked.Error() != err.Error() {
		t.Fatalf("Mark should preserve the message: %q vs %q", marked.Error(), err.Error())
	}
	// The original error chain stays intact for callers matching concrete
	// kinds (e.g. fs.ErrNotExist).
	if !errors.Is(marked, fs.ErrNotExist) {
		t.Fatalf("underlying error chain should survive marking")
	}
}

func TestNonInputErrorsDoNotMatch(t *testing.T) {
	if IsInput(errors.New("internal invariant broken")) {
		t.Fatalf("plain errors must not be input-kind")
	}
	if IsInput(nil) {
		t.Fatalf("nil is not an input error")
	}
}

func TestInputfSupportsWrapVerb(t *testing.T) {
	cause := errors.New("unexpected EOF")
	err := Inputf("parsing circuit: %w", cause)
	if !IsInput(err) || !errors.Is(err, cause) {
		t.Fatalf("Inputf %%w should preserve both kinds")
	}
}
