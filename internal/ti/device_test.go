package ti

import (
	"testing"
)

func TestNewDeviceValidation(t *testing.T) {
	cases := []struct {
		name           string
		length, chains int
		topo           Topology
		wantErr        bool
	}{
		{"ok", 16, 4, Ring, false},
		{"zero length", 0, 4, Ring, true},
		{"negative chains", 16, -1, Ring, true},
		{"bad topology", 16, 4, Topology(9), true},
		{"single chain", 32, 1, Ring, false},
	}
	for _, c := range cases {
		_, err := NewDevice(c.length, c.chains, c.topo)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", c.name, err, c.wantErr)
		}
	}
}

// The paper's weak-link counts (§VI-B): 64-qubit apps on chains of
// 8/16/24/32 have 8/4/3/2 weak links; 78-qubit SquareRoot has 10/5/4/3.
func TestWeakLinkCountsMatchPaper(t *testing.T) {
	cases := []struct {
		qubits, chainLen, wantChains, wantLinks int
	}{
		{64, 8, 8, 8},
		{64, 16, 4, 4},
		{64, 24, 3, 3},
		{64, 32, 2, 2},
		{78, 8, 10, 10},
		{78, 16, 5, 5},
		{78, 24, 4, 4},
		{78, 32, 3, 3},
	}
	for _, c := range cases {
		d, err := DeviceFor(c.qubits, c.chainLen, Ring)
		if err != nil {
			t.Fatalf("DeviceFor(%d,%d): %v", c.qubits, c.chainLen, err)
		}
		if d.NumChains() != c.wantChains {
			t.Errorf("%d qubits, chain %d: chains = %d, want %d", c.qubits, c.chainLen, d.NumChains(), c.wantChains)
		}
		if d.MaxWeakLinks() != c.wantLinks {
			t.Errorf("%d qubits, chain %d: links = %d, want %d", c.qubits, c.chainLen, d.MaxWeakLinks(), c.wantLinks)
		}
	}
}

func TestSingleChainHasNoLinks(t *testing.T) {
	for _, topo := range []Topology{Ring, Line} {
		d, err := NewDevice(32, 1, topo)
		if err != nil {
			t.Fatal(err)
		}
		if d.MaxWeakLinks() != 0 {
			t.Errorf("%v single chain: links = %d, want 0", topo, d.MaxWeakLinks())
		}
	}
}

func TestLineTopologyLinkCount(t *testing.T) {
	for c := 2; c <= 8; c++ {
		d, err := NewDevice(8, c, Line)
		if err != nil {
			t.Fatal(err)
		}
		if d.MaxWeakLinks() != c-1 {
			t.Errorf("line %d chains: links = %d, want %d", c, d.MaxWeakLinks(), c-1)
		}
	}
}

func TestRingTwoChainsHasTwoLinks(t *testing.T) {
	d, err := NewDevice(32, 2, Ring)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxWeakLinks() != 2 {
		t.Fatalf("2-chain ring: links = %d, want 2 (paper reports 2 for 64 qubits @ 32)", d.MaxWeakLinks())
	}
	links := d.WeakLinks()
	if links[0].A.Chain != 0 || links[0].B.Chain != 1 || links[1].A.Chain != 1 || links[1].B.Chain != 0 {
		t.Fatalf("2-chain ring link endpoints wrong: %+v", links)
	}
}

func TestLinkPortsWellFormed(t *testing.T) {
	d, _ := NewDevice(8, 5, Ring)
	for i, l := range d.WeakLinks() {
		if l.ID != i {
			t.Errorf("link %d has ID %d", i, l.ID)
		}
		if l.A.Side != Right || l.B.Side != Left {
			t.Errorf("link %d: ports %v -> %v, want Right -> Left", i, l.A, l.B)
		}
		if l.B.Chain != (l.A.Chain+1)%5 {
			t.Errorf("link %d joins %d and %d, want successive chains", i, l.A.Chain, l.B.Chain)
		}
	}
}

func TestLinksOf(t *testing.T) {
	d, _ := NewDevice(8, 4, Ring)
	for c := 0; c < 4; c++ {
		if got := len(d.LinksOf(c)); got != 2 {
			t.Errorf("ring chain %d has %d links, want 2", c, got)
		}
	}
	dl, _ := NewDevice(8, 4, Line)
	if got := len(dl.LinksOf(0)); got != 1 {
		t.Errorf("line end chain has %d links, want 1", got)
	}
	if got := len(dl.LinksOf(1)); got != 2 {
		t.Errorf("line middle chain has %d links, want 2", got)
	}
}

func TestChainsAdjacent(t *testing.T) {
	d, _ := NewDevice(8, 5, Ring)
	if !d.ChainsAdjacent(0, 1) || !d.ChainsAdjacent(1, 0) {
		t.Errorf("successive chains should be adjacent both ways")
	}
	if !d.ChainsAdjacent(4, 0) {
		t.Errorf("ring wraparound chains should be adjacent")
	}
	if d.ChainsAdjacent(0, 2) {
		t.Errorf("non-neighbouring chains should not be adjacent")
	}
	dl, _ := NewDevice(8, 5, Line)
	if dl.ChainsAdjacent(4, 0) {
		t.Errorf("line has no wraparound adjacency")
	}
}

func TestChainDistance(t *testing.T) {
	ring, _ := NewDevice(8, 6, Ring)
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {0, 5, 1}, {0, 4, 2},
	}
	for _, c := range cases {
		if got := ring.ChainDistance(c.a, c.b); got != c.want {
			t.Errorf("ring distance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	line, _ := NewDevice(8, 6, Line)
	if got := line.ChainDistance(0, 5); got != 5 {
		t.Errorf("line distance(0,5) = %d, want 5", got)
	}
	if got := ring.ChainDistance(-1, 2); got != -1 {
		t.Errorf("invalid chain distance should be -1, got %d", got)
	}
}

// TestChainDistancesMatchesPairwise pins the all-pairs matrix against the
// per-pair BFS, disconnected chains included.
func TestChainDistancesMatchesPairwise(t *testing.T) {
	ring, _ := NewDevice(8, 6, Ring)
	line, _ := NewDevice(8, 6, Line)
	split, err := NewDeviceLinks(8, 4, []WeakLink{
		{A: Port{Chain: 0, Side: Right}, B: Port{Chain: 1, Side: Left}},
		{A: Port{Chain: 2, Side: Right}, B: Port{Chain: 3, Side: Left}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Device{ring, line, split} {
		nc := d.NumChains()
		m := d.ChainDistances()
		if len(m) != nc*nc {
			t.Fatalf("matrix size %d, want %d", len(m), nc*nc)
		}
		for a := 0; a < nc; a++ {
			for b := 0; b < nc; b++ {
				if got, want := m[a*nc+b], int32(d.ChainDistance(a, b)); got != want {
					t.Errorf("%s: matrix(%d,%d) = %d, want %d", d, a, b, got, want)
				}
			}
		}
	}
}

func TestDeviceForCapacity(t *testing.T) {
	d, err := DeviceFor(78, 16, Ring)
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalCapacity() != 80 {
		t.Errorf("capacity = %d, want 80", d.TotalCapacity())
	}
	if !d.Fits(78) || !d.Fits(80) || d.Fits(81) || d.Fits(-1) {
		t.Errorf("Fits misbehaves for capacity 80")
	}
}

func TestDeviceForValidation(t *testing.T) {
	if _, err := DeviceFor(0, 16, Ring); err == nil {
		t.Errorf("zero qubits should fail")
	}
	if _, err := DeviceFor(10, 0, Ring); err == nil {
		t.Errorf("zero chain length should fail")
	}
}

func TestTopologyParseAndString(t *testing.T) {
	for _, name := range []string{"ring", "line"} {
		topo, err := ParseTopology(name)
		if err != nil {
			t.Fatal(err)
		}
		if topo.String() != name {
			t.Errorf("round trip %q -> %q", name, topo.String())
		}
	}
	if _, err := ParseTopology("mesh"); err == nil {
		t.Errorf("unknown topology should fail to parse")
	}
}

func TestDeviceString(t *testing.T) {
	d, _ := NewDevice(16, 4, Ring)
	want := "4x16-ion chains (ring, 4 weak links)"
	if d.String() != want {
		t.Errorf("String = %q, want %q", d.String(), want)
	}
}

func TestPathLinksLine(t *testing.T) {
	d, _ := NewDevice(4, 5, Line)
	path := d.PathLinks(0, 3)
	if len(path) != 3 {
		t.Fatalf("path length = %d, want 3", len(path))
	}
	// Consecutive links share the intermediate chains 1 and 2.
	for i, l := range path {
		if l.A.Chain != i || l.B.Chain != i+1 {
			t.Fatalf("hop %d joins %d-%d", i, l.A.Chain, l.B.Chain)
		}
	}
	if got := d.PathLinks(2, 2); got != nil {
		t.Fatalf("same chain should give empty path")
	}
	if got := d.PathLinks(-1, 2); got != nil {
		t.Fatalf("invalid chain should give nil")
	}
}

func TestPathLinksRingTakesShortSide(t *testing.T) {
	d, _ := NewDevice(4, 6, Ring)
	// 0 → 5 is one hop around the wrap link.
	path := d.PathLinks(0, 5)
	if len(path) != 1 {
		t.Fatalf("wraparound path length = %d, want 1", len(path))
	}
	// 0 → 3 is three hops either way; path must still be length 3 and
	// consistent with ChainDistance.
	path = d.PathLinks(0, 3)
	if len(path) != d.ChainDistance(0, 3) {
		t.Fatalf("path length %d != distance %d", len(path), d.ChainDistance(0, 3))
	}
	// Determinism.
	again := d.PathLinks(0, 3)
	for i := range path {
		if path[i].ID != again[i].ID {
			t.Fatalf("PathLinks not deterministic")
		}
	}
}

func TestTapeTopology(t *testing.T) {
	// A linear tape has the Line's link structure: c−1 links, no
	// wraparound — but names the ion-transport interconnect.
	d := mustDevice(t, 4, 5, Tape)
	if got := d.MaxWeakLinks(); got != 4 {
		t.Errorf("tape links = %d, want 4", got)
	}
	if d.String() == "" || d.Topology().String() != "tape" {
		t.Errorf("tape String = %q", d.Topology().String())
	}
	// Hop counts are the defining difference from the ring: the tape has
	// no short way around, so end-to-end distance is c−1, not 1.
	ring := mustDevice(t, 4, 5, Ring)
	if got := d.ChainDistance(0, 4); got != 4 {
		t.Errorf("tape end-to-end distance = %d, want 4", got)
	}
	if got := ring.ChainDistance(0, 4); got != 1 {
		t.Errorf("ring wraparound distance = %d, want 1", got)
	}
	if got := len(d.PathLinks(0, 4)); got != 4 {
		t.Errorf("tape end-to-end path = %d links, want 4", got)
	}
	if got := len(ring.PathLinks(0, 4)); got != 1 {
		t.Errorf("ring end-to-end path = %d links, want 1", got)
	}
}

func TestParseTopologyTape(t *testing.T) {
	topo, err := ParseTopology("tape")
	if err != nil || topo != Tape {
		t.Fatalf("ParseTopology(tape) = %v, %v", topo, err)
	}
	// "custom" is a constructor-only topology, not a parseable name.
	if _, err := ParseTopology("custom"); err == nil {
		t.Fatal("custom should not parse")
	}
}

func TestNewDeviceLinksValidation(t *testing.T) {
	if _, err := NewDeviceLinks(0, 2, nil); err == nil {
		t.Error("zero chain length should fail")
	}
	if _, err := NewDeviceLinks(4, 0, nil); err == nil {
		t.Error("zero chains should fail")
	}
	if _, err := NewDeviceLinks(4, 2, []WeakLink{
		{A: Port{Chain: 5, Side: Right}, B: Port{Chain: 1, Side: Left}},
	}); err == nil {
		t.Error("out-of-range chain should fail")
	}
	if _, err := NewDeviceLinks(4, 2, []WeakLink{
		{A: Port{Chain: 0, Side: 7}, B: Port{Chain: 1, Side: Left}},
	}); err == nil {
		t.Error("invalid side should fail")
	}
	d, err := NewDeviceLinks(4, 3, []WeakLink{
		{ID: 99, A: Port{Chain: 0, Side: Right}, B: Port{Chain: 1, Side: Left}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Topology() != Custom {
		t.Errorf("topology = %v, want Custom", d.Topology())
	}
	if d.WeakLinks()[0].ID != 0 {
		t.Errorf("link ID should be renumbered in input order, got %d", d.WeakLinks()[0].ID)
	}
	// Disconnected chain pairs are permitted and report distance −1.
	if got := d.ChainDistance(0, 2); got != -1 {
		t.Errorf("disconnected distance = %d, want -1", got)
	}
}
