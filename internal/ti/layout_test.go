package ti

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func mustDevice(t *testing.T, length, chains int, topo Topology) *Device {
	t.Helper()
	d, err := NewDevice(length, chains, topo)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustLayout(t *testing.T, d *Device, chains [][]int) *Layout {
	t.Helper()
	l, err := NewLayout(d, chains)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLayoutValidation(t *testing.T) {
	d := mustDevice(t, 4, 2, Ring)
	cases := []struct {
		name   string
		chains [][]int
	}{
		{"wrong chain count", [][]int{{0, 1}}},
		{"chain too long", [][]int{{0, 1, 2, 3, 4}, {5}}},
		{"duplicate qubit", [][]int{{0, 1}, {1, 2}}},
		{"qubit out of range", [][]int{{0, 9}, {1}}},
		{"negative qubit", [][]int{{0, -1}, {1}}},
	}
	for _, c := range cases {
		if _, err := NewLayout(d, c.chains); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := NewLayout(nil, nil); err == nil {
		t.Errorf("nil device should be rejected")
	}
}

func TestLayoutAccessors(t *testing.T) {
	d := mustDevice(t, 4, 2, Ring)
	l := mustLayout(t, d, [][]int{{3, 0, 2}, {1, 4}})
	if l.NumQubits() != 5 {
		t.Fatalf("NumQubits = %d", l.NumQubits())
	}
	if l.ChainOf(3) != 0 || l.ChainOf(4) != 1 {
		t.Errorf("ChainOf wrong: %d %d", l.ChainOf(3), l.ChainOf(4))
	}
	if l.SlotOf(0) != 1 || l.SlotOf(2) != 2 {
		t.Errorf("SlotOf wrong: %d %d", l.SlotOf(0), l.SlotOf(2))
	}
	if !reflect.DeepEqual(l.Chain(1), []int{1, 4}) {
		t.Errorf("Chain(1) = %v", l.Chain(1))
	}
	if l.Device() != d {
		t.Errorf("Device accessor broken")
	}
}

func TestEdgeQubits(t *testing.T) {
	d := mustDevice(t, 4, 3, Ring)
	l := mustLayout(t, d, [][]int{{3, 0, 2}, {1}, {}})
	if q, ok := l.EdgeQubit(0, Left); !ok || q != 3 {
		t.Errorf("left edge of chain 0 = %d,%v", q, ok)
	}
	if q, ok := l.EdgeQubit(0, Right); !ok || q != 2 {
		t.Errorf("right edge of chain 0 = %d,%v", q, ok)
	}
	if q, ok := l.EdgeQubit(1, Left); !ok || q != 1 {
		t.Errorf("single-qubit chain left edge = %d,%v", q, ok)
	}
	if q, ok := l.EdgeQubit(1, Right); !ok || q != 1 {
		t.Errorf("single-qubit chain right edge = %d,%v", q, ok)
	}
	if _, ok := l.EdgeQubit(2, Left); ok {
		t.Errorf("empty chain should have no edge qubit")
	}
	if !l.IsEdge(3) || !l.IsEdge(2) || l.IsEdge(0) {
		t.Errorf("IsEdge wrong: 3=%v 2=%v 0=%v", l.IsEdge(3), l.IsEdge(2), l.IsEdge(0))
	}
}

func TestLegal2QSameChain(t *testing.T) {
	d := mustDevice(t, 4, 2, Ring)
	l := mustLayout(t, d, [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}})
	// All-to-all within a chain.
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if a != b && !l.Legal2Q(a, b) {
				t.Errorf("intra-chain pair (%d,%d) should be legal", a, b)
			}
		}
	}
	if l.Legal2Q(1, 1) {
		t.Errorf("same-qubit pair must be illegal")
	}
}

func TestLegal2QWeakLink(t *testing.T) {
	d := mustDevice(t, 4, 2, Ring)
	l := mustLayout(t, d, [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}})
	// Ring of 2 chains: link0 joins right(chain0)=3 with left(chain1)=4;
	// link1 joins right(chain1)=7 with left(chain0)=0.
	legalCross := [][2]int{{3, 4}, {4, 3}, {7, 0}, {0, 7}}
	for _, p := range legalCross {
		if !l.Legal2Q(p[0], p[1]) {
			t.Errorf("weak-link pair (%d,%d) should be legal", p[0], p[1])
		}
	}
	illegalCross := [][2]int{{1, 4}, {3, 5}, {2, 6}, {0, 4}, {3, 7}}
	for _, p := range illegalCross {
		if l.Legal2Q(p[0], p[1]) {
			t.Errorf("non-edge cross pair (%d,%d) must be illegal", p[0], p[1])
		}
	}
	if wl, ok := l.WeakLinkFor(3, 4); !ok || wl.ID != 0 {
		t.Errorf("WeakLinkFor(3,4) = %+v,%v", wl, ok)
	}
	if wl, ok := l.WeakLinkFor(0, 7); !ok || wl.ID != 1 {
		t.Errorf("WeakLinkFor(0,7) = %+v,%v", wl, ok)
	}
	if _, ok := l.WeakLinkFor(1, 5); ok {
		t.Errorf("interior qubits must not form a weak link")
	}
}

func TestLinkQubits(t *testing.T) {
	d := mustDevice(t, 4, 3, Ring)
	l := mustLayout(t, d, [][]int{{0, 1}, {2, 3}, {}})
	links := d.WeakLinks()
	a, b, ok := l.LinkQubits(links[0]) // chain0.right -> chain1.left
	if !ok || a != 1 || b != 2 {
		t.Errorf("LinkQubits(link0) = %d,%d,%v", a, b, ok)
	}
	if _, _, ok := l.LinkQubits(links[1]); ok {
		t.Errorf("link into empty chain should report !ok")
	}
}

func TestLegalPairsEnumeration(t *testing.T) {
	d := mustDevice(t, 3, 2, Ring)
	l := mustLayout(t, d, [][]int{{0, 1, 2}, {3, 4, 5}})
	pairs := l.LegalPairs()
	// Intra-chain: C(3,2)*2 = 6. Weak links: (2,3) and (0,5). Total 8.
	if len(pairs) != 8 {
		t.Fatalf("LegalPairs count = %d, want 8: %v", len(pairs), pairs)
	}
	for _, p := range pairs {
		if !l.Legal2Q(p[0], p[1]) {
			t.Errorf("enumerated pair %v not legal", p)
		}
		if p[0] >= p[1] {
			t.Errorf("pair %v not canonical", p)
		}
	}
	// Spot-check sortedness.
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1][0] > pairs[i][0] ||
			(pairs[i-1][0] == pairs[i][0] && pairs[i-1][1] >= pairs[i][1]) {
			t.Errorf("pairs not sorted at %d: %v", i, pairs)
		}
	}
}

func TestLegalPairsMatchesLegal2QExhaustively(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		chainLen := 2 + r.Intn(4)
		numChains := 1 + r.Intn(4)
		topo := Ring
		if r.Intn(2) == 0 {
			topo = Line
		}
		d := mustDevice(t, chainLen, numChains, topo)
		n := 1 + r.Intn(d.TotalCapacity())
		perm := r.Perm(n)
		chains := make([][]int, numChains)
		for i, q := range perm {
			c := i % numChains
			if len(chains[c]) < chainLen {
				chains[c] = append(chains[c], q)
			} else {
				// Find any chain with room.
				for cc := 0; cc < numChains; cc++ {
					if len(chains[cc]) < chainLen {
						chains[cc] = append(chains[cc], q)
						break
					}
				}
			}
		}
		l := mustLayout(t, d, chains)
		want := make(map[[2]int]bool)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if l.Legal2Q(a, b) {
					want[[2]int{a, b}] = true
				}
			}
		}
		got := l.LegalPairs()
		if len(got) != len(want) {
			t.Fatalf("trial %d: enumerated %d pairs, exhaustive says %d\n%s", trial, len(got), len(want), l)
		}
		for _, p := range got {
			if !want[p] {
				t.Fatalf("trial %d: pair %v enumerated but not legal", trial, p)
			}
		}
	}
}

func TestHops(t *testing.T) {
	d := mustDevice(t, 2, 4, Ring)
	l := mustLayout(t, d, [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}})
	if l.Hops(0, 1) != 0 {
		t.Errorf("same-chain hops = %d", l.Hops(0, 1))
	}
	if l.Hops(1, 2) != 1 {
		t.Errorf("adjacent-chain hops = %d", l.Hops(1, 2))
	}
	if l.Hops(0, 4) != 2 {
		t.Errorf("opposite-chain hops = %d, want 2", l.Hops(0, 4))
	}
	if l.Hops(0, 6) != 1 {
		t.Errorf("ring wraparound hops = %d, want 1", l.Hops(0, 6))
	}
}

func TestLayoutString(t *testing.T) {
	d := mustDevice(t, 2, 2, Ring)
	l := mustLayout(t, d, [][]int{{0}, {1}})
	s := l.String()
	if !strings.Contains(s, "chain 0: q0") || !strings.Contains(s, "chain 1: q1") {
		t.Errorf("layout string malformed:\n%s", s)
	}
}

func TestLayoutPanicsOnBadQubit(t *testing.T) {
	d := mustDevice(t, 2, 1, Ring)
	l := mustLayout(t, d, [][]int{{0, 1}})
	defer func() {
		if recover() == nil {
			t.Fatalf("ChainOf on invalid qubit should panic")
		}
	}()
	l.ChainOf(5)
}

func TestHopsDisconnected(t *testing.T) {
	// Chains {0,1} linked, chain 2 isolated: Hops must report the
	// disconnect as −1, never a fabricated finite cost (an earlier
	// revision returned NumChains() here, silently under-pricing
	// impossible transports).
	d, err := NewDeviceLinks(2, 3, []WeakLink{
		{A: Port{Chain: 0, Side: Right}, B: Port{Chain: 1, Side: Left}},
	})
	if err != nil {
		t.Fatal(err)
	}
	l := mustLayout(t, d, [][]int{{0, 1}, {2, 3}, {4, 5}})
	if got := l.Hops(0, 2); got != 1 {
		t.Errorf("connected hops = %d, want 1", got)
	}
	if got := l.Hops(0, 4); got != -1 {
		t.Errorf("disconnected hops = %d, want -1", got)
	}
	if _, err := l.PathHops(0, 2); err != nil {
		t.Errorf("connected PathHops: %v", err)
	}
	if _, err := l.PathHops(0, 4); err == nil {
		t.Error("disconnected PathHops should fail")
	}
}
