package ti

import (
	"fmt"
	"sort"
	"strings"
	"velociti/internal/verr"
)

// Layout is a concrete assignment of a workload's qubits onto a device's
// chains — the paper's "netlist" produced by the hardware-implementation
// module (§V-A). Each chain holds an ordered sequence of qubits; the first
// and last qubits of a chain are its edge qubits, the only ones that may
// participate in weak-link gates.
type Layout struct {
	device  *Device
	chains  [][]int // chains[c] = qubit ids in slot order
	chainOf []int   // chainOf[q] = chain index
	slotOf  []int   // slotOf[q] = position within chain
}

// NewLayout builds a layout from an explicit chain assignment: chains[c]
// lists the qubits placed on chain c in slot order. Every qubit id in
// [0, n) must appear exactly once, where n is the total count; chain counts
// and lengths must respect the device.
func NewLayout(d *Device, chains [][]int) (*Layout, error) {
	if d == nil {
		return nil, fmt.Errorf("ti: layout requires a device")
	}
	if len(chains) != d.NumChains() {
		return nil, fmt.Errorf("ti: layout has %d chains, device has %d", len(chains), d.NumChains())
	}
	n := 0
	for c, qs := range chains {
		if len(qs) > d.ChainLength() {
			return nil, fmt.Errorf("ti: chain %d holds %d qubits, exceeds chain length %d", c, len(qs), d.ChainLength())
		}
		n += len(qs)
	}
	l := &Layout{
		device:  d,
		chains:  make([][]int, len(chains)),
		chainOf: make([]int, n),
		slotOf:  make([]int, n),
	}
	for i := range l.chainOf {
		l.chainOf[i] = -1
	}
	for c, qs := range chains {
		l.chains[c] = append([]int(nil), qs...)
		for s, q := range qs {
			if q < 0 || q >= n {
				return nil, fmt.Errorf("ti: qubit id q%d out of range [0,%d)", q, n)
			}
			if l.chainOf[q] != -1 {
				return nil, fmt.Errorf("ti: qubit q%d placed twice", q)
			}
			l.chainOf[q] = c
			l.slotOf[q] = s
		}
	}
	return l, nil
}

// Device returns the device this layout targets.
func (l *Layout) Device() *Device { return l.device }

// NumQubits returns the number of placed qubits.
func (l *Layout) NumQubits() int { return len(l.chainOf) }

// ChainOf returns the chain holding qubit q. It panics on an invalid id.
func (l *Layout) ChainOf(q int) int {
	l.check(q)
	return l.chainOf[q]
}

// ChainAssignments returns the per-qubit chain table: entry q is ChainOf(q).
// The returned slice is the layout's backing store and must not be modified;
// hot classification kernels index it directly instead of paying ChainOf's
// per-call validation.
func (l *Layout) ChainAssignments() []int { return l.chainOf }

// SlotOf returns qubit q's position within its chain.
func (l *Layout) SlotOf(q int) int {
	l.check(q)
	return l.slotOf[q]
}

func (l *Layout) check(q int) {
	if q < 0 || q >= len(l.chainOf) {
		panic(fmt.Sprintf("ti: qubit q%d out of range [0,%d)", q, len(l.chainOf)))
	}
}

// Chain returns the qubits on chain c in slot order. The slice is shared;
// callers must not modify it.
func (l *Layout) Chain(c int) []int {
	if c < 0 || c >= len(l.chains) {
		panic(fmt.Sprintf("ti: chain %d out of range [0,%d)", c, len(l.chains)))
	}
	return l.chains[c]
}

// EdgeQubit returns the qubit sitting at the given side of chain c, and
// false if the chain is empty. For a single-qubit chain both sides return
// that qubit.
func (l *Layout) EdgeQubit(c int, s Side) (int, bool) {
	qs := l.Chain(c)
	if len(qs) == 0 {
		return 0, false
	}
	if s == Left {
		return qs[0], true
	}
	return qs[len(qs)-1], true
}

// IsEdge reports whether qubit q sits at either end of its chain.
func (l *Layout) IsEdge(q int) bool {
	l.check(q)
	qs := l.chains[l.chainOf[q]]
	return l.slotOf[q] == 0 || l.slotOf[q] == len(qs)-1
}

// LinkQubits returns the pair of qubits sitting at the two ports of weak
// link wl, and false if either port's chain is empty.
func (l *Layout) LinkQubits(wl WeakLink) (a, b int, ok bool) {
	a, okA := l.EdgeQubit(wl.A.Chain, wl.A.Side)
	b, okB := l.EdgeQubit(wl.B.Chain, wl.B.Side)
	return a, b, okA && okB
}

// SameChain reports whether qubits a and b sit on the same chain.
func (l *Layout) SameChain(a, b int) bool {
	l.check(a)
	l.check(b)
	return l.chainOf[a] == l.chainOf[b]
}

// WeakLinkFor returns the weak link whose two ports are exactly qubits
// a and b (in either order), and false when no such link exists. This is
// the legality test for cross-chain gates: "communication between two
// chains via a gate must occur via the weak link connection, and only the
// qubits on the edge of a weak link can be used" (§III-B).
func (l *Layout) WeakLinkFor(a, b int) (WeakLink, bool) {
	l.check(a)
	l.check(b)
	for _, wl := range l.device.WeakLinks() {
		qa, qb, ok := l.LinkQubits(wl)
		if !ok {
			continue
		}
		if (qa == a && qb == b) || (qa == b && qb == a) {
			return wl, true
		}
	}
	return WeakLink{}, false
}

// Legal2Q reports whether a 2-qubit gate may operate on qubits a and b:
// both on the same chain, or spanning a weak link.
func (l *Layout) Legal2Q(a, b int) bool {
	if a == b {
		return false
	}
	if l.SameChain(a, b) {
		return true
	}
	_, ok := l.WeakLinkFor(a, b)
	return ok
}

// LegalPairs returns every unordered qubit pair on which a 2-qubit gate may
// operate, sorted lexicographically. Random gate placement draws uniformly
// from this set.
func (l *Layout) LegalPairs() [][2]int {
	var out [][2]int
	for _, qs := range l.chains {
		for i := 0; i < len(qs); i++ {
			for j := i + 1; j < len(qs); j++ {
				a, b := qs[i], qs[j]
				if a > b {
					a, b = b, a
				}
				out = append(out, [2]int{a, b})
			}
		}
	}
	seen := make(map[[2]int]bool, len(out))
	for _, p := range out {
		seen[p] = true
	}
	for _, wl := range l.device.WeakLinks() {
		a, b, ok := l.LinkQubits(wl)
		if !ok || a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		p := [2]int{a, b}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Hops returns the number of weak links a 2-qubit interaction between a and
// b must traverse: 0 for same-chain pairs, 1 for weak-link pairs, and the
// chain distance for non-adjacent pairs (used only by the forgiving routing
// mode for explicit circuits; the paper's placement never generates such
// gates). Pairs on adjacent chains that are not the link's edge qubits also
// count 1 hop in forgiving mode. Disconnected pairs return -1: an earlier
// revision fabricated a finite "extreme cost" (NumChains), which let the
// shuttle path silently price an impossible gate. Callers that must not
// see a sentinel use PathHops, which surfaces disconnection as a typed
// input error.
func (l *Layout) Hops(a, b int) int {
	l.check(a)
	l.check(b)
	if l.chainOf[a] == l.chainOf[b] {
		return 0
	}
	return l.device.ChainDistance(l.chainOf[a], l.chainOf[b])
}

// PathHops is Hops with disconnection made unignorable: it returns a typed
// input error (verr) when no weak-link path joins the operands' chains,
// instead of a sentinel a pricing model could mistake for a cost. The
// shuttle timing path prices per-hop transport through this method.
func (l *Layout) PathHops(a, b int) (int, error) {
	h := l.Hops(a, b)
	if h < 0 {
		return 0, verr.Inputf("ti: qubits q%d and q%d sit on disconnected chains %d and %d; no weak-link path exists",
			a, b, l.chainOf[a], l.chainOf[b])
	}
	return h, nil
}

// String renders the layout chain by chain.
func (l *Layout) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "layout on %s:\n", l.device)
	for c, qs := range l.chains {
		fmt.Fprintf(&b, "  chain %d:", c)
		for _, q := range qs {
			fmt.Fprintf(&b, " q%d", q)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
