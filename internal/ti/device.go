// Package ti models the hardware organization of a QCCD-based trapped-ion
// quantum computer as abstracted by the VelociTI paper (§II-B, Figure 1,
// Table I).
//
// The machine is a set of ion chains. Each chain holds up to ChainLength
// ions (qubits) and offers all-to-all connectivity between the qubits it
// holds. Chains are joined by weak links — slow optical connections — and a
// 2-qubit gate may only operate on two qubits in the same chain or on the
// two edge qubits facing each other across a weak link. Weak-link gates pay
// the latency penalty factor α.
//
// Weak-link topology. The paper reports that 64-qubit applications mapped
// onto chains of length 8/16/24/32 have 8/4/3/2 weak links and the 78-qubit
// SquareRoot has 10/5/4/3 (§VI-B) — i.e. the number of weak links equals
// the number of chains. That corresponds to chains arranged in a ring, with
// one link between each pair of neighbouring chains (two parallel links for
// the degenerate 2-chain ring). Ring is therefore the default topology;
// Line (c−1 links, no wraparound) is available as an ablation.
package ti

import (
	"fmt"
	"velociti/internal/verr"
)

// Topology selects how chains are joined by weak links.
type Topology int

const (
	// Ring joins chain i to chain (i+1) mod c, giving c weak links for
	// c ≥ 2 chains. This matches the weak-link counts in the paper.
	Ring Topology = iota
	// Line joins chain i to chain i+1 only, giving c−1 weak links.
	Line
	// Tape is the linear-tape arrangement of the TILT architecture: the
	// chains sit along one physical tape and chain i connects to chain
	// i+1 only, giving c−1 inter-chain segments. The link structure
	// equals Line; the distinct name exists because the tape is the
	// natural geometry for the shuttle timing backend — a cross-chain
	// interaction between chains i and j must traverse every segment in
	// between, and hop counts grow linearly instead of wrapping around.
	Tape
	// Custom marks a device built from an explicit weak-link list
	// (NewDeviceLinks) rather than a named arrangement. It is not
	// parseable from configuration.
	Custom
)

// String returns the topology name.
func (t Topology) String() string {
	switch t {
	case Ring:
		return "ring"
	case Line:
		return "line"
	case Tape:
		return "tape"
	case Custom:
		return "custom"
	default:
		return fmt.Sprintf("topology(%d)", int(t))
	}
}

// ParseTopology converts a name ("ring", "line", or "tape") to a Topology.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "ring":
		return Ring, nil
	case "line":
		return Line, nil
	case "tape":
		return Tape, nil
	default:
		return 0, verr.Inputf("ti: unknown topology %q (want \"ring\", \"line\", or \"tape\")", s)
	}
}

// Side identifies one end of an ion chain.
type Side int

const (
	// Left is the low-index end of a chain.
	Left Side = iota
	// Right is the high-index end of a chain.
	Right
)

// String returns "left" or "right".
func (s Side) String() string {
	if s == Left {
		return "left"
	}
	return "right"
}

// Port names one endpoint of a weak link: a specific end of a specific
// chain.
type Port struct {
	Chain int
	Side  Side
}

// WeakLink is a connection between the facing ends of two chains. Only the
// edge qubits sitting at the two ports may participate in a cross-chain
// 2-qubit gate, and such gates pay the α latency penalty.
type WeakLink struct {
	// ID numbers the link within the device, 0-based.
	ID int
	A  Port
	B  Port
}

// Device describes a fixed QCCD trapped-ion machine: a number of chains of
// a given maximum length, joined by weak links in the given topology.
type Device struct {
	chainLength int
	numChains   int
	topology    Topology
	links       []WeakLink
}

// NewDevice constructs a device with the given chain length (maximum ions
// per chain, the paper's presently achievable range being 8–32), number of
// chains, and weak-link topology.
func NewDevice(chainLength, numChains int, topo Topology) (*Device, error) {
	if chainLength <= 0 {
		return nil, verr.Inputf("ti: chain length must be positive, got %d", chainLength)
	}
	if numChains <= 0 {
		return nil, verr.Inputf("ti: number of chains must be positive, got %d", numChains)
	}
	if topo != Ring && topo != Line && topo != Tape {
		return nil, verr.Inputf("ti: invalid topology %d", topo)
	}
	d := &Device{chainLength: chainLength, numChains: numChains, topology: topo}
	d.links = buildLinks(numChains, topo)
	return d, nil
}

// NewDeviceLinks constructs a device from an explicit weak-link list
// instead of a named topology — the hook for modeling irregular QCCD
// interconnects. Link IDs are renumbered 0..len(links)-1 in input order;
// every port must name a valid chain. Unlike the named topologies the
// link set is allowed to leave chain groups disconnected; consumers that
// need a transport path between every chain pair (the shuttle timing
// backend) surface that as an input error at pricing time.
func NewDeviceLinks(chainLength, numChains int, links []WeakLink) (*Device, error) {
	if chainLength <= 0 {
		return nil, verr.Inputf("ti: chain length must be positive, got %d", chainLength)
	}
	if numChains <= 0 {
		return nil, verr.Inputf("ti: number of chains must be positive, got %d", numChains)
	}
	d := &Device{chainLength: chainLength, numChains: numChains, topology: Custom}
	d.links = make([]WeakLink, len(links))
	for i, l := range links {
		for _, p := range [2]Port{l.A, l.B} {
			if p.Chain < 0 || p.Chain >= numChains {
				return nil, verr.Inputf("ti: weak link %d names chain %d, out of range [0,%d)", i, p.Chain, numChains)
			}
			if p.Side != Left && p.Side != Right {
				return nil, verr.Inputf("ti: weak link %d has invalid side %d", i, p.Side)
			}
		}
		l.ID = i
		d.links[i] = l
	}
	return d, nil
}

// DeviceFor constructs the area-optimal device for a workload: the minimum
// number of chains of the given length that hold numQubits qubits
// (c = ⌈numQubits / chainLength⌉), the paper's `opt = area` target (§III-B).
func DeviceFor(numQubits, chainLength int, topo Topology) (*Device, error) {
	if numQubits <= 0 {
		return nil, verr.Inputf("ti: number of qubits must be positive, got %d", numQubits)
	}
	if chainLength <= 0 {
		return nil, verr.Inputf("ti: chain length must be positive, got %d", chainLength)
	}
	chains := (numQubits + chainLength - 1) / chainLength
	return NewDevice(chainLength, chains, topo)
}

func buildLinks(c int, topo Topology) []WeakLink {
	var links []WeakLink
	switch {
	case c == 1:
		// A single chain has no weak links.
	case topo == Line || topo == Tape:
		for i := 0; i+1 < c; i++ {
			links = append(links, WeakLink{
				ID: i,
				A:  Port{Chain: i, Side: Right},
				B:  Port{Chain: i + 1, Side: Left},
			})
		}
	default: // Ring
		for i := 0; i < c; i++ {
			links = append(links, WeakLink{
				ID: i,
				A:  Port{Chain: i, Side: Right},
				B:  Port{Chain: (i + 1) % c, Side: Left},
			})
		}
	}
	return links
}

// ChainLength returns the maximum number of ions per chain.
func (d *Device) ChainLength() int { return d.chainLength }

// NumChains returns the number of chains (the paper's computed parameter c).
func (d *Device) NumChains() int { return d.numChains }

// Topology returns the weak-link topology.
func (d *Device) Topology() Topology { return d.topology }

// TotalCapacity returns the maximum number of qubits the device holds.
func (d *Device) TotalCapacity() int { return d.chainLength * d.numChains }

// MaxWeakLinks returns the paper's computed parameter w_max: the number of
// weak links present in the device.
func (d *Device) MaxWeakLinks() int { return len(d.links) }

// WeakLinks returns the device's weak links. The returned slice is shared;
// callers must not modify it.
func (d *Device) WeakLinks() []WeakLink { return d.links }

// LinksOf returns the weak links that have an endpoint on the given chain.
func (d *Device) LinksOf(chain int) []WeakLink {
	var out []WeakLink
	for _, l := range d.links {
		if l.A.Chain == chain || l.B.Chain == chain {
			out = append(out, l)
		}
	}
	return out
}

// ChainsAdjacent reports whether a weak link directly joins chains a and b.
func (d *Device) ChainsAdjacent(a, b int) bool {
	for _, l := range d.links {
		if (l.A.Chain == a && l.B.Chain == b) || (l.A.Chain == b && l.B.Chain == a) {
			return true
		}
	}
	return false
}

// ChainDistance returns the minimum number of weak links that must be
// traversed to move between chains a and b (0 when a == b). It returns -1
// if the chains are disconnected (cannot happen for Ring/Line devices but
// kept for safety). Used by the forgiving routing mode for explicit
// circuits whose mapped gates span non-adjacent chains.
func (d *Device) ChainDistance(a, b int) int {
	if a == b {
		return 0
	}
	if a < 0 || a >= d.numChains || b < 0 || b >= d.numChains {
		return -1
	}
	// BFS over the chain adjacency induced by weak links.
	adj := make([][]int, d.numChains)
	for _, l := range d.links {
		adj[l.A.Chain] = append(adj[l.A.Chain], l.B.Chain)
		adj[l.B.Chain] = append(adj[l.B.Chain], l.A.Chain)
	}
	dist := make([]int, d.numChains)
	for i := range dist {
		dist[i] = -1
	}
	dist[a] = 0
	queue := []int{a}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == b {
			return dist[u]
		}
		for _, v := range adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist[b]
}

// ChainDistances returns the all-pairs chain-hop matrix in row-major order:
// entry a*NumChains()+b is ChainDistance(a, b). One adjacency build plus one
// BFS per source chain — callers that need the whole matrix (the delta
// evaluator prices every cross-chain gate against it) would otherwise pay
// an adjacency rebuild per pair.
func (d *Device) ChainDistances() []int32 {
	adj := make([][]int, d.numChains)
	for _, l := range d.links {
		adj[l.A.Chain] = append(adj[l.A.Chain], l.B.Chain)
		adj[l.B.Chain] = append(adj[l.B.Chain], l.A.Chain)
	}
	out := make([]int32, d.numChains*d.numChains)
	queue := make([]int, 0, d.numChains)
	for a := 0; a < d.numChains; a++ {
		row := out[a*d.numChains : (a+1)*d.numChains]
		for i := range row {
			row[i] = -1
		}
		row[a] = 0
		queue = append(queue[:0], a)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if row[v] == -1 {
					row[v] = row[u] + 1
					queue = append(queue, v)
				}
			}
		}
	}
	return out
}

// PathLinks returns the weak links along a deterministic shortest path
// between chains a and b (empty when a == b). Ties between equally short
// paths are broken toward the lower-numbered neighbouring chain. A
// cross-chain interaction "uses" exactly these links for the purposes of
// Table I's computed parameter w.
func (d *Device) PathLinks(a, b int) []WeakLink {
	if a == b || a < 0 || b < 0 || a >= d.numChains || b >= d.numChains {
		return nil
	}
	// BFS with parent tracking; neighbours visited in link order makes
	// the chosen path deterministic.
	type hop struct {
		prevChain int
		link      WeakLink
	}
	parent := make([]hop, d.numChains)
	visited := make([]bool, d.numChains)
	visited[a] = true
	queue := []int{a}
	for len(queue) > 0 && !visited[b] {
		u := queue[0]
		queue = queue[1:]
		for _, l := range d.links {
			var v int
			switch {
			case l.A.Chain == u:
				v = l.B.Chain
			case l.B.Chain == u:
				v = l.A.Chain
			default:
				continue
			}
			if !visited[v] {
				visited[v] = true
				parent[v] = hop{prevChain: u, link: l}
				queue = append(queue, v)
			}
		}
	}
	if !visited[b] {
		return nil
	}
	var rev []WeakLink
	for at := b; at != a; at = parent[at].prevChain {
		rev = append(rev, parent[at].link)
	}
	out := make([]WeakLink, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Fits reports whether a workload with numQubits qubits fits on the device.
func (d *Device) Fits(numQubits int) bool {
	return numQubits >= 0 && numQubits <= d.TotalCapacity()
}

// String renders the device, e.g. "4x16-ion chains (ring, 4 weak links)".
func (d *Device) String() string {
	return fmt.Sprintf("%dx%d-ion chains (%s, %d weak links)",
		d.numChains, d.chainLength, d.topology, len(d.links))
}
