// Optimizer tests live in an external test package so they can use the
// state-vector simulator (which imports circuit) for equivalence checking.
package circuit_test

import (
	"math"
	"math/rand"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/statevec"
)

func TestOptimizeCancelsSelfInversePairs(t *testing.T) {
	c := circuit.New("t", 2)
	c.H(0)
	c.H(0)
	c.X(1)
	c.X(1)
	c.CX(0, 1)
	c.CX(0, 1)
	opt, stats := c.Optimize()
	if opt.NumGates() != 0 {
		t.Fatalf("gates left = %d:\n%s", opt.NumGates(), opt)
	}
	if stats.Cancelled != 6 {
		t.Fatalf("cancelled = %d, want 6", stats.Cancelled)
	}
}

func TestOptimizeCancelsNestedRuns(t *testing.T) {
	// H X X H collapses completely: the inner XX cancellation exposes the
	// outer HH pair within one pass.
	c := circuit.New("t", 1)
	c.H(0)
	c.X(0)
	c.X(0)
	c.H(0)
	opt, _ := c.Optimize()
	if opt.NumGates() != 0 {
		t.Fatalf("nested cancellation failed:\n%s", opt)
	}
}

func TestOptimizePairInverses(t *testing.T) {
	c := circuit.New("t", 1)
	c.S(0)
	c.Append(circuit.Sdg, []int{0})
	c.T(0)
	c.Append(circuit.Tdg, []int{0})
	opt, _ := c.Optimize()
	if opt.NumGates() != 0 {
		t.Fatalf("S·Sdg / T·Tdg should cancel:\n%s", opt)
	}
}

func TestOptimizeCXDirectionMatters(t *testing.T) {
	c := circuit.New("t", 2)
	c.CX(0, 1)
	c.CX(1, 0) // reversed: must NOT cancel
	opt, _ := c.Optimize()
	if opt.NumGates() != 2 {
		t.Fatalf("reversed CX pair must survive, got %d gates", opt.NumGates())
	}
}

func TestOptimizeSymmetricCancel(t *testing.T) {
	c := circuit.New("t", 2)
	c.CZ(0, 1)
	c.CZ(1, 0) // CZ is symmetric: cancels
	c.SWAP(0, 1)
	c.SWAP(1, 0)
	opt, _ := c.Optimize()
	if opt.NumGates() != 0 {
		t.Fatalf("symmetric pairs should cancel:\n%s", opt)
	}
}

func TestOptimizeInterveningGateBlocksCancel(t *testing.T) {
	c := circuit.New("t", 2)
	c.X(0)
	c.CX(0, 1) // touches qubit 0: blocks the X pair
	c.X(0)
	opt, _ := c.Optimize()
	if opt.NumGates() != 3 {
		t.Fatalf("blocked cancellation removed gates: %d left", opt.NumGates())
	}
}

func TestOptimizeIndependentQubitDoesNotBlock(t *testing.T) {
	c := circuit.New("t", 2)
	c.X(0)
	c.H(1) // disjoint qubit: does not block
	c.X(0)
	opt, _ := c.Optimize()
	if opt.NumGates() != 1 || opt.Gate(0).Kind != circuit.H {
		t.Fatalf("disjoint gate should not block cancellation:\n%s", opt)
	}
}

func TestOptimizeFusesRotations(t *testing.T) {
	c := circuit.New("t", 2)
	c.RZ(0.3, 0)
	c.RZ(0.4, 0)
	c.RZ(0.5, 0)
	c.CP(0.1, 0, 1)
	c.CP(0.2, 1, 0) // symmetric: fuses across operand order
	opt, stats := c.Optimize()
	if opt.NumGates() != 2 {
		t.Fatalf("gates = %d, want 2:\n%s", opt.NumGates(), opt)
	}
	if math.Abs(opt.Gate(0).Params[0]-1.2) > 1e-12 {
		t.Fatalf("fused rz angle = %v", opt.Gate(0).Params[0])
	}
	if math.Abs(opt.Gate(1).Params[0]-0.3) > 1e-12 {
		t.Fatalf("fused cp angle = %v", opt.Gate(1).Params[0])
	}
	if stats.Fused != 3 {
		t.Fatalf("fused = %d, want 3", stats.Fused)
	}
}

func TestOptimizeOppositeRotationsCancel(t *testing.T) {
	c := circuit.New("t", 1)
	c.RX(0.7, 0)
	c.RX(-0.7, 0)
	opt, stats := c.Optimize()
	if opt.NumGates() != 0 {
		t.Fatalf("opposite rotations should vanish:\n%s", opt)
	}
	if stats.Cancelled != 2 {
		t.Fatalf("cancelled = %d", stats.Cancelled)
	}
}

func TestOptimizeDropsIdentities(t *testing.T) {
	c := circuit.New("t", 1)
	c.Append(circuit.I, []int{0})
	c.RZ(0, 0)
	c.Append(circuit.U3, []int{0}, 0, 0, 0)
	c.X(0)
	opt, stats := c.Optimize()
	if opt.NumGates() != 1 || opt.Gate(0).Kind != circuit.X {
		t.Fatalf("identities survived:\n%s", opt)
	}
	if stats.Identities != 3 {
		t.Fatalf("identities = %d", stats.Identities)
	}
	if stats.Total() != 3 {
		t.Fatalf("total = %d", stats.Total())
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	c := circuit.New("t", 1)
	c.RZ(0.3, 0)
	c.RZ(0.4, 0)
	_, _ = c.Optimize()
	if c.NumGates() != 2 || c.Gate(0).Params[0] != 0.3 {
		t.Fatalf("input mutated: %s", c)
	}
}

func TestOptimizePreservesName(t *testing.T) {
	c := circuit.New("keepme", 1)
	c.H(0)
	opt, _ := c.Optimize()
	if opt.Name != "keepme" || opt.NumQubits() != 1 {
		t.Fatalf("metadata lost: %q %d", opt.Name, opt.NumQubits())
	}
}

// randomOptimizableCircuit draws gates from the kinds the optimizer
// touches, biased toward creating cancellation opportunities.
func randomOptimizableCircuit(r *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New("fuzz", n)
	kinds1 := []circuit.Kind{circuit.H, circuit.X, circuit.Y, circuit.Z,
		circuit.S, circuit.Sdg, circuit.T, circuit.Tdg, circuit.I}
	for i := 0; i < gates; i++ {
		switch r.Intn(5) {
		case 0:
			c.Append(kinds1[r.Intn(len(kinds1))], []int{r.Intn(n)})
		case 1:
			c.RZ(math.Round(r.NormFloat64()*4)/4, r.Intn(n)) // often 0 or repeated values
		case 2:
			a, b := r.Intn(n), r.Intn(n)
			for b == a {
				b = r.Intn(n)
			}
			c.CX(a, b)
		case 3:
			a, b := r.Intn(n), r.Intn(n)
			for b == a {
				b = r.Intn(n)
			}
			c.CZ(a, b)
		default:
			a, b := r.Intn(n), r.Intn(n)
			for b == a {
				b = r.Intn(n)
			}
			c.CP(math.Round(r.NormFloat64()*4)/4, a, b)
		}
	}
	return c
}

// Property: optimization preserves the circuit's unitary action, checked
// by state-vector fidelity from the all-zeros input and from a scrambled
// input.
func TestOptimizeEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(4)
		c := randomOptimizableCircuit(r, n, 10+r.Intn(60))
		opt, stats := c.Optimize()
		if opt.NumGates()+stats.Total() > c.NumGates() {
			t.Fatalf("trial %d: optimizer added gates", trial)
		}
		// Compare on two input states: |0...0> and a scrambled state.
		for _, prep := range []*circuit.Circuit{nil, randomOptimizableCircuit(r, n, 8)} {
			runFull := func(body *circuit.Circuit) *statevec.State {
				full := circuit.New("full", n)
				if prep != nil {
					for _, g := range prep.Gates() {
						full.Append(g.Kind, g.Qubits, g.Params...)
					}
				}
				for _, g := range body.Gates() {
					full.Append(g.Kind, g.Qubits, g.Params...)
				}
				s, err := statevec.Run(full)
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			ref := runFull(c)
			got := runFull(opt)
			fid, err := ref.Fidelity(got)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(fid-1) > 1e-9 {
				t.Fatalf("trial %d: fidelity %v after optimization\noriginal:\n%s\noptimized:\n%s",
					trial, fid, c, opt)
			}
		}
	}
}

// Optimizing QFT (no adjacent redundancy) must be a no-op.
func TestOptimizeQFTNoop(t *testing.T) {
	// Build via the apps package would cycle; inline a mini-QFT.
	c := circuit.New("qft3", 3)
	c.H(0)
	c.CP(math.Pi/2, 1, 0)
	c.CP(math.Pi/4, 2, 0)
	c.H(1)
	c.CP(math.Pi/2, 2, 1)
	c.H(2)
	opt, stats := c.Optimize()
	if opt.NumGates() != c.NumGates() || stats.Total() != 0 {
		t.Fatalf("QFT should be irreducible: %d gates, stats %+v", opt.NumGates(), stats)
	}
}
