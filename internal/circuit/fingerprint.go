package circuit

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Fingerprint returns a 64-bit FNV-1a content hash of the circuit: name,
// register width, and every gate's kind, operands, and parameter bit
// patterns, in gate order. Two circuits with equal fingerprints time
// identically under every layout and latency model (up to hash collision),
// so the stage pipeline uses the fingerprint to key explicit-circuit
// artifacts.
func (c *Circuit) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:]) //vet:allow errcheck-lite -- hash.Hash.Write never returns an error
	}
	h.Write([]byte(c.Name)) //vet:allow errcheck-lite -- hash.Hash.Write never returns an error
	writeInt(c.numQubits)
	for _, g := range c.gates {
		writeInt(int(g.Kind))
		writeInt(len(g.Qubits))
		for _, q := range g.Qubits {
			writeInt(q)
		}
		for _, p := range g.Params {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
			h.Write(buf[:]) //vet:allow errcheck-lite -- hash.Hash.Write never returns an error
		}
	}
	return h.Sum64()
}
