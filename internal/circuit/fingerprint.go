package circuit

import "math"

// FNV-1a parameters (hash/fnv's 64-bit variant, inlined so the rolling
// accumulator below is a plain value with no hash.Hash allocation).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// FingerprintAccum is a rolling FNV-1a accumulator over the circuit
// content-hash byte sequence: name, register width, then each gate's kind,
// operand count, operands, and parameter bit patterns, in gate order. It
// lets the streaming evaluation path key caches by circuit content without
// buffering gates — feed every yielded gate through AddGate and Sum at end
// of stream equals Circuit.Fingerprint of the materialized circuit, bit
// for bit (Circuit.Fingerprint itself is implemented on this accumulator,
// so the two can never drift).
type FingerprintAccum struct {
	sum uint64
}

// NewFingerprintAccum starts an accumulator over the circuit header: the
// name and register width.
func NewFingerprintAccum(name string, numQubits int) FingerprintAccum {
	a := FingerprintAccum{sum: fnvOffset64}
	for i := 0; i < len(name); i++ {
		a.addByte(name[i])
	}
	a.addUint64(uint64(numQubits))
	return a
}

func (a *FingerprintAccum) addByte(b byte) {
	a.sum = (a.sum ^ uint64(b)) * fnvPrime64
}

// addUint64 hashes v's little-endian byte representation, matching the
// encoding/binary layout the pre-streaming implementation wrote.
func (a *FingerprintAccum) addUint64(v uint64) {
	for i := 0; i < 8; i++ {
		a.addByte(byte(v >> (8 * i)))
	}
}

// AddGate folds one gate into the hash. Gates must be added in program
// order; the gate's ID is positional and therefore not hashed.
func (a *FingerprintAccum) AddGate(g *Gate) {
	a.addUint64(uint64(g.Kind))
	a.addUint64(uint64(len(g.Qubits)))
	for _, q := range g.Qubits {
		a.addUint64(uint64(q))
	}
	for _, p := range g.Params {
		a.addUint64(math.Float64bits(p))
	}
}

// Sum returns the hash of everything added so far.
func (a *FingerprintAccum) Sum() uint64 { return a.sum }

// Fingerprint returns a 64-bit FNV-1a content hash of the circuit: name,
// register width, and every gate's kind, operands, and parameter bit
// patterns, in gate order. Two circuits with equal fingerprints time
// identically under every layout and latency model (up to hash collision),
// so the stage pipeline uses the fingerprint to key explicit-circuit
// artifacts.
func (c *Circuit) Fingerprint() uint64 {
	a := NewFingerprintAccum(c.Name, c.numQubits)
	for i := range c.gates {
		a.AddGate(&c.gates[i])
	}
	return a.Sum()
}
