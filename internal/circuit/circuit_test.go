package circuit

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"velociti/internal/verr"
)

func TestKindMetadata(t *testing.T) {
	cases := []struct {
		k      Kind
		name   string
		arity  int
		params int
	}{
		{H, "h", 1, 0},
		{RZ, "rz", 1, 1},
		{U3, "u3", 1, 3},
		{CX, "cx", 2, 0},
		{XX, "rxx", 2, 1},
		{SWAP, "swap", 2, 0},
	}
	for _, c := range cases {
		if c.k.Name() != c.name {
			t.Errorf("%v.Name = %q, want %q", c.k, c.k.Name(), c.name)
		}
		if c.k.Arity() != c.arity {
			t.Errorf("%s.Arity = %d, want %d", c.name, c.k.Arity(), c.arity)
		}
		if c.k.NumParams() != c.params {
			t.Errorf("%s.NumParams = %d, want %d", c.name, c.k.NumParams(), c.params)
		}
	}
}

func TestKindByName(t *testing.T) {
	for _, k := range Kinds() {
		got, ok := KindByName(k.Name())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v,%v", k.Name(), got, ok)
		}
	}
	if _, ok := KindByName("nonsense"); ok {
		t.Errorf("KindByName should reject unknown names")
	}
}

func TestAllKindsHaveMetadata(t *testing.T) {
	for _, k := range Kinds() {
		if k.Name() == "" {
			t.Errorf("kind %d has empty name", k)
		}
		if a := k.Arity(); a != 1 && a != 2 {
			t.Errorf("kind %s has arity %d", k.Name(), a)
		}
	}
	if Kind(-1).Arity() != 0 || Kind(999).NumParams() != 0 {
		t.Errorf("out-of-range kinds should have zero metadata")
	}
	if !strings.Contains(Kind(999).Name(), "kind(") {
		t.Errorf("out-of-range kind name should be diagnostic")
	}
}

func TestNewRejectsNonPositiveWidth(t *testing.T) {
	c := New("bad", 0)
	if err := c.Err(); !verr.IsInput(err) {
		t.Fatalf("New(0) should poison the circuit with an input-kind error, got %v", err)
	}
	// A poisoned circuit stays inert: appends fail, nothing mutates.
	if id := c.H(0); id != -1 {
		t.Fatalf("append on poisoned circuit returned id %d", id)
	}
	if c.NumGates() != 0 {
		t.Fatalf("poisoned circuit accumulated gates")
	}
}

func TestAppendValidation(t *testing.T) {
	mustFail := func(name string, f func(c *Circuit) int) {
		t.Helper()
		c := New("t", 3)
		if id := f(c); id != -1 {
			t.Errorf("%s: id = %d, want -1", name, id)
		}
		if err := c.Err(); !verr.IsInput(err) {
			t.Errorf("%s: want input-kind error, got %v", name, err)
		}
		if c.NumGates() != 0 {
			t.Errorf("%s: failed append mutated the circuit", name)
		}
	}
	mustFail("unknown kind", func(c *Circuit) int { return c.Append(Kind(999), []int{0}) })
	mustFail("wrong arity", func(c *Circuit) int { return c.Append(CX, []int{0}) })
	mustFail("missing params", func(c *Circuit) int { return c.Append(RZ, []int{0}) })
	mustFail("extra params", func(c *Circuit) int { return c.Append(H, []int{0}, 1.0) })
	mustFail("qubit out of range", func(c *Circuit) int { return c.H(3) })
	mustFail("negative qubit", func(c *Circuit) int { return c.H(-1) })
	mustFail("identical 2q operands", func(c *Circuit) int { return c.CX(1, 1) })

	// The first error sticks: later valid appends stay rejected and Err()
	// keeps reporting the original cause.
	c := New("t", 2)
	c.H(9)
	first := c.Err()
	if id := c.H(0); id != -1 {
		t.Fatalf("append after failure returned id %d", id)
	}
	if c.Err() != first {
		t.Fatalf("Err() changed after subsequent appends")
	}
	// Clone carries the poison with it.
	if err := c.Clone().Err(); err != first {
		t.Fatalf("Clone dropped the sticky error: %v", err)
	}
}

func TestAppendAssignsSequentialIDs(t *testing.T) {
	c := New("t", 2)
	if id := c.H(0); id != 0 {
		t.Fatalf("first gate id = %d", id)
	}
	if id := c.CX(0, 1); id != 1 {
		t.Fatalf("second gate id = %d", id)
	}
	if g := c.Gate(1); g.Kind != CX || g.ID != 1 {
		t.Fatalf("Gate(1) = %+v", g)
	}
}

func TestAppendCopiesArguments(t *testing.T) {
	c := New("t", 2)
	qs := []int{0, 1}
	c.Append(CX, qs)
	qs[0] = 1
	if got := c.Gate(0).Qubits[0]; got != 0 {
		t.Fatalf("Append must copy qubit slice; got q%d", got)
	}
}

func TestGateCounts(t *testing.T) {
	c := New("t", 4)
	c.H(0)
	c.H(1)
	c.RZ(0.5, 2)
	c.CX(0, 1)
	c.CX(2, 3)
	if q := c.NumOneQubitGates(); q != 3 {
		t.Errorf("q = %d, want 3", q)
	}
	if p := c.NumTwoQubitGates(); p != 2 {
		t.Errorf("p = %d, want 2", p)
	}
	spec := c.Spec()
	if spec.Qubits != 4 || spec.OneQubitGates != 3 || spec.TwoQubitGates != 2 {
		t.Errorf("Spec = %+v", spec)
	}
	if spec.TotalGates() != 5 {
		t.Errorf("TotalGates = %d", spec.TotalGates())
	}
}

func TestDepth(t *testing.T) {
	c := New("t", 4)
	if c.Depth() != 0 {
		t.Fatalf("empty depth = %d", c.Depth())
	}
	c.H(0)     // layer 1
	c.H(1)     // layer 1 (parallel)
	c.CX(0, 1) // layer 2
	c.CX(2, 3) // layer 1
	c.CX(1, 2) // layer 3 (waits on both)
	if d := c.Depth(); d != 3 {
		t.Fatalf("Depth = %d, want 3", d)
	}
}

func TestQubitKeyCanonical(t *testing.T) {
	c := New("t", 8)
	c.CX(5, 3)
	if key := c.Gate(0).QubitKey(); key != "q3q5" {
		t.Fatalf("QubitKey = %q, want q3q5 (sorted)", key)
	}
	c.H(7)
	if key := c.Gate(1).QubitKey(); key != "q7" {
		t.Fatalf("QubitKey = %q", key)
	}
}

func TestLabelsSSA(t *testing.T) {
	// Figure 3 style: repeated gates on the same pair get instance suffixes.
	c := New("t", 3)
	c.CX(0, 1)
	c.CX(1, 2)
	c.CX(1, 0) // same pair as gate 0, reversed direction
	c.CX(0, 1) // third instance
	labels := c.Labels()
	want := []string{"q0q1", "q1q2", "q0q1.2", "q0q1.3"}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("Labels = %v, want %v", labels, want)
	}
}

func TestDependencyEdgesChain(t *testing.T) {
	// The paper's Figure 3 example: 7 qubits, 6 2-qubit gates.
	// Gates: q1q2, q3q4, q6q7, q4q5, q5q6, q2q3 (0-indexed here as q0..q6).
	c := New("fig3", 7)
	c.CX(0, 1) // g0: q1q2
	c.CX(2, 3) // g1: q3q4
	c.CX(5, 6) // g2: q6q7
	c.CX(3, 4) // g3: q4q5 (depends on g1 via q4)
	c.CX(4, 5) // g4: q5q6 (depends on g3 via q5, g2 via q6)
	c.CX(1, 2) // g5: q2q3 (depends on g0 via q2, g1 via q3)
	edges := c.DependencyEdges()
	want := [][2]int{{0, 5}, {1, 3}, {1, 5}, {2, 4}, {3, 4}}
	if !reflect.DeepEqual(edges, want) {
		t.Fatalf("DependencyEdges = %v, want %v", edges, want)
	}
}

func TestDependencyEdgesDeduplicated(t *testing.T) {
	// Two consecutive gates sharing BOTH qubits must produce one edge.
	c := New("t", 2)
	c.CX(0, 1)
	c.CX(1, 0)
	edges := c.DependencyEdges()
	if !reflect.DeepEqual(edges, [][2]int{{0, 1}}) {
		t.Fatalf("edges = %v, want single deduplicated edge", edges)
	}
}

func TestDependencyEdgesEmptyAndIndependent(t *testing.T) {
	c := New("t", 4)
	if len(c.DependencyEdges()) != 0 {
		t.Fatalf("empty circuit should have no edges")
	}
	c.CX(0, 1)
	c.CX(2, 3)
	if len(c.DependencyEdges()) != 0 {
		t.Fatalf("disjoint gates should have no edges")
	}
}

func TestInteractionGraph(t *testing.T) {
	c := New("t", 4)
	c.CX(0, 1)
	c.CX(1, 0)
	c.CX(2, 3)
	c.H(0)
	ig := c.InteractionGraph()
	if ig[[2]int{0, 1}] != 2 {
		t.Errorf("pair (0,1) count = %d, want 2 (direction-insensitive)", ig[[2]int{0, 1}])
	}
	if ig[[2]int{2, 3}] != 1 {
		t.Errorf("pair (2,3) count = %d, want 1", ig[[2]int{2, 3}])
	}
	if len(ig) != 2 {
		t.Errorf("interaction graph has %d pairs, want 2", len(ig))
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := New("orig", 2)
	c.RZ(0.25, 0)
	c.CX(0, 1)
	d := c.Clone()
	d.Gates()[0].Params[0] = 9
	d.Gates()[1].Qubits[0] = 1
	if c.Gate(0).Params[0] != 0.25 || c.Gate(1).Qubits[0] != 0 {
		t.Fatalf("Clone must deep-copy gates")
	}
	if d.Name != "orig" || d.NumQubits() != 2 {
		t.Fatalf("Clone metadata wrong: %q %d", d.Name, d.NumQubits())
	}
}

func TestReordered(t *testing.T) {
	c := New("t", 3)
	c.H(0)     // 0
	c.CX(0, 1) // 1
	c.CX(1, 2) // 2
	r := c.Reordered([]int{2, 0, 1})
	if r.Gate(0).Kind != CX || r.Gate(0).Qubits[0] != 1 {
		t.Fatalf("reordered gate 0 = %v", r.Gate(0))
	}
	if r.Gate(1).Kind != H {
		t.Fatalf("reordered gate 1 = %v", r.Gate(1))
	}
	for i := 0; i < 3; i++ {
		if r.Gate(i).ID != i {
			t.Fatalf("ids must be reassigned; gate %d has id %d", i, r.Gate(i).ID)
		}
	}
}

func TestReorderedRejectsBadPermutations(t *testing.T) {
	c := New("t", 2)
	c.H(0)
	c.H(1)
	for _, perm := range [][]int{{0}, {0, 0}, {0, 2}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("perm %v should panic", perm)
				}
			}()
			c.Reordered(perm)
		}()
	}
}

func TestDecomposeSWAPs(t *testing.T) {
	c := New("t", 3)
	c.H(0)
	c.SWAP(0, 2)
	d := c.DecomposeSWAPs()
	if d.NumGates() != 4 {
		t.Fatalf("gates after decomposition = %d, want 4", d.NumGates())
	}
	if d.Gate(1).Kind != CX || d.Gate(2).Kind != CX || d.Gate(3).Kind != CX {
		t.Fatalf("SWAP should become 3 CX: %v", d.Gates())
	}
	if d.Gate(1).Qubits[0] != 0 || d.Gate(2).Qubits[0] != 2 || d.Gate(3).Qubits[0] != 0 {
		t.Fatalf("CX directions should alternate: %v", d.Gates())
	}
}

func TestStringRendering(t *testing.T) {
	c := New("demo", 2)
	c.RZ(0.5, 0)
	c.CX(0, 1)
	s := c.String()
	for _, want := range []string{"circuit demo", "rz(0.5) q0", "cx q0,q1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q in:\n%s", want, s)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Name: "ok", Qubits: 4, OneQubitGates: 2, TwoQubitGates: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Name: "no-qubits", Qubits: 0},
		{Name: "neg-q", Qubits: 4, OneQubitGates: -1},
		{Name: "neg-p", Qubits: 4, TwoQubitGates: -1},
		{Name: "2q-on-1", Qubits: 1, TwoQubitGates: 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %q should be invalid", s.Name)
		}
	}
}

func TestSpecRatio(t *testing.T) {
	s := Spec{Qubits: 64, TwoQubitGates: 128}
	if s.TwoQubitRatio() != 2 {
		t.Fatalf("ratio = %v, want 2", s.TwoQubitRatio())
	}
}

// Property: depth never exceeds gate count and is at least
// ceil(gates touching the busiest qubit).
func TestDepthBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		c := New("p", n)
		gates := r.Intn(50)
		for i := 0; i < gates; i++ {
			if r.Intn(2) == 0 {
				c.H(r.Intn(n))
			} else {
				a := r.Intn(n)
				b := r.Intn(n)
				for b == a {
					b = r.Intn(n)
				}
				c.CX(a, b)
			}
		}
		depth := c.Depth()
		if depth > c.NumGates() {
			return false
		}
		busy := make([]int, n)
		for _, g := range c.Gates() {
			for _, q := range g.Qubits {
				busy[q]++
			}
		}
		maxBusy := 0
		for _, b := range busy {
			if b > maxBusy {
				maxBusy = b
			}
		}
		return depth >= maxBusy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: dependency edges always point forward in program order and
// every non-first gate on a qubit has a predecessor.
func TestDependencyEdgesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		c := New("p", n)
		for i := 0; i < r.Intn(40); i++ {
			a := r.Intn(n)
			b := r.Intn(n)
			for b == a {
				b = r.Intn(n)
			}
			c.CX(a, b)
		}
		for _, e := range c.DependencyEdges() {
			if e[0] >= e[1] {
				return false
			}
			// Endpoint gates must share a qubit.
			shared := false
			for _, q := range c.Gate(e[0]).Qubits {
				if c.Gate(e[1]).Touches(q) {
					shared = true
				}
			}
			if !shared {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
