package circuit

import (
	"math"
)

// OptimizeStats reports what an optimization pass removed.
type OptimizeStats struct {
	// Cancelled counts gates removed as adjacent inverse pairs (both
	// gates of each pair are counted).
	Cancelled int
	// Fused counts rotation gates merged into a predecessor.
	Fused int
	// Identities counts identity gates and zero-angle rotations dropped.
	Identities int
}

// Total returns the number of gates removed.
func (s OptimizeStats) Total() int { return s.Cancelled + s.Fused + s.Identities }

// angleEps is the threshold below which a rotation angle is treated as
// zero during optimization.
const angleEps = 1e-12

// rotationKinds are the single-parameter gates whose consecutive
// applications on the same operands fuse by angle addition.
var rotationKinds = map[Kind]bool{
	RX: true, RY: true, RZ: true, U1: true, CP: true, RZZ: true, XX: true,
}

// symmetricKinds are 2-qubit gates insensitive to operand order.
var symmetricKinds = map[Kind]bool{
	CZ: true, SWAP: true, CP: true, RZZ: true, XX: true,
}

// inverseKind returns the kind whose application undoes k when applied to
// the same operands, for the parameter-free self- or pair-inverse kinds.
func inverseKind(k Kind) (Kind, bool) {
	switch k {
	case H, X, Y, Z, CX, CZ, SWAP:
		return k, true
	case S:
		return Sdg, true
	case Sdg:
		return S, true
	case T:
		return Tdg, true
	case Tdg:
		return T, true
	default:
		return 0, false
	}
}

// sameOperands reports whether gates a and b act on the same qubits, in
// the same order for direction-sensitive kinds and as a set for symmetric
// ones.
func sameOperands(a, b Gate) bool {
	if len(a.Qubits) != len(b.Qubits) {
		return false
	}
	if len(a.Qubits) == 1 {
		return a.Qubits[0] == b.Qubits[0]
	}
	if a.Qubits[0] == b.Qubits[0] && a.Qubits[1] == b.Qubits[1] {
		return true
	}
	return symmetricKinds[a.Kind] &&
		a.Qubits[0] == b.Qubits[1] && a.Qubits[1] == b.Qubits[0]
}

// isIdentity reports whether the gate provably does nothing: the I kind or
// a zero-angle rotation.
func isIdentity(g Gate) bool {
	if g.Kind == I {
		return true
	}
	if rotationKinds[g.Kind] && math.Abs(g.Params[0]) < angleEps {
		return true
	}
	if g.Kind == U3 && math.Abs(g.Params[0]) < angleEps &&
		math.Abs(g.Params[1]) < angleEps && math.Abs(g.Params[2]) < angleEps {
		return true
	}
	return false
}

// Optimize returns a semantically equivalent circuit with adjacent inverse
// pairs cancelled, consecutive same-axis rotations fused, and identity
// gates removed, plus statistics on what was eliminated. "Adjacent" means
// no intervening gate touches any shared qubit, so cancellations cascade
// (X·X inside H···H collapses the whole run). The input is not modified.
//
// This is an extension: the paper's timing model is gate-count driven
// (§III-C), so optimization directly shortens both the serial and parallel
// estimates; the test suite proves equivalence against the state-vector
// simulator.
func (c *Circuit) Optimize() (*Circuit, OptimizeStats) {
	var stats OptimizeStats
	type slot struct {
		gate Gate
		dead bool
	}
	out := make([]slot, 0, len(c.gates))
	// top[q] is the index in out of the most recent live gate touching q,
	// maintained as a stack per qubit so cancellation can rewind.
	tops := make([][]int, c.numQubits)

	topOf := func(q int) int {
		s := tops[q]
		if len(s) == 0 {
			return -1
		}
		return s[len(s)-1]
	}
	push := func(idx int, g Gate) {
		for _, q := range g.Qubits {
			tops[q] = append(tops[q], idx)
		}
	}
	pop := func(g Gate) {
		for _, q := range g.Qubits {
			tops[q] = tops[q][:len(tops[q])-1]
		}
	}

	for _, g := range c.gates {
		if isIdentity(g) {
			stats.Identities++
			continue
		}
		// The candidate predecessor must be the top of every operand
		// qubit's stack — i.e. truly adjacent on all shared qubits.
		prevIdx := topOf(g.Qubits[0])
		adjacent := prevIdx >= 0
		for _, q := range g.Qubits[1:] {
			if topOf(q) != prevIdx {
				adjacent = false
				break
			}
		}
		if adjacent && !out[prevIdx].dead {
			prev := out[prevIdx].gate
			// The predecessor must touch no other qubits.
			if len(prev.Qubits) == len(g.Qubits) && sameOperands(prev, g) {
				if inv, ok := inverseKind(prev.Kind); ok && inv == g.Kind &&
					// Direction matters for CX: only exact operand order
					// cancels.
					(prev.Kind != CX || (prev.Qubits[0] == g.Qubits[0] && prev.Qubits[1] == g.Qubits[1])) {
					out[prevIdx].dead = true
					pop(prev)
					stats.Cancelled += 2
					continue
				}
				if rotationKinds[g.Kind] && prev.Kind == g.Kind {
					merged := prev.Params[0] + g.Params[0]
					if math.Abs(merged) < angleEps {
						out[prevIdx].dead = true
						pop(prev)
						stats.Cancelled += 2
					} else {
						out[prevIdx].gate.Params = []float64{merged}
						stats.Fused++
					}
					continue
				}
			}
		}
		out = append(out, slot{gate: g})
		push(len(out)-1, g)
	}

	res := New(c.Name, c.numQubits)
	for _, s := range out {
		if !s.dead {
			res.Append(s.gate.Kind, s.gate.Qubits, s.gate.Params...)
		}
	}
	return res, stats
}
