// Package circuit defines VelociTI's quantum-circuit intermediate
// representation.
//
// VelociTI is a timing and performance tool, not a functional simulator
// (§III-C of the paper): for performance purposes a gate is characterized by
// the number of qubits it touches, not by its unitary. The IR nevertheless
// records the concrete gate kind and parameters so that the same circuit
// objects can be pretty-printed, serialized to OpenQASM, functionally
// validated on small systems by internal/statevec, and abstracted to the
// paper's (qubits, #1-qubit gates, #2-qubit gates) boundary conditions.
//
// Gates are identified SSA-style: each gate instance acting on a given qubit
// set receives an incrementing instance number, so the gate label "q3q4.2"
// names the second gate operating on qubits 3 and 4 — the labeling scheme of
// the paper's Figure 3 (§IV-C).
package circuit

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"velociti/internal/verr"
)

// Kind identifies the logical operation a gate performs.
type Kind int

// Supported gate kinds. One-qubit kinds come first, then two-qubit kinds.
const (
	// One-qubit gates.
	I   Kind = iota // identity
	H               // Hadamard
	X               // Pauli-X
	Y               // Pauli-Y
	Z               // Pauli-Z
	S               // phase sqrt(Z)
	Sdg             // S-dagger
	T               // pi/8
	Tdg             // T-dagger
	RX              // rotation about X (1 param)
	RY              // rotation about Y (1 param)
	RZ              // rotation about Z (1 param)
	U1              // diagonal phase (1 param)
	U2              // generic single-qubit (2 params)
	U3              // generic single-qubit (3 params)
	SX              // sqrt(X)

	// Two-qubit gates.
	CX   // controlled-X (CNOT)
	CZ   // controlled-Z
	SWAP // qubit exchange
	XX   // Mølmer–Sørensen XX interaction (1 param), the native TI entangler
	CP   // controlled phase (1 param)
	RZZ  // ZZ interaction (1 param)

	numKinds
)

var kindInfo = [numKinds]struct {
	name   string
	arity  int
	params int
}{
	I:    {"id", 1, 0},
	H:    {"h", 1, 0},
	X:    {"x", 1, 0},
	Y:    {"y", 1, 0},
	Z:    {"z", 1, 0},
	S:    {"s", 1, 0},
	Sdg:  {"sdg", 1, 0},
	T:    {"t", 1, 0},
	Tdg:  {"tdg", 1, 0},
	RX:   {"rx", 1, 1},
	RY:   {"ry", 1, 1},
	RZ:   {"rz", 1, 1},
	U1:   {"u1", 1, 1},
	U2:   {"u2", 1, 2},
	U3:   {"u3", 1, 3},
	SX:   {"sx", 1, 0},
	CX:   {"cx", 2, 0},
	CZ:   {"cz", 2, 0},
	SWAP: {"swap", 2, 0},
	XX:   {"rxx", 2, 1},
	CP:   {"cp", 2, 1},
	RZZ:  {"rzz", 2, 1},
}

// Name returns the OpenQASM-style lowercase mnemonic of the kind.
func (k Kind) Name() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindInfo[k].name
}

// Arity returns the number of qubits the kind operates on (1 or 2).
func (k Kind) Arity() int {
	if k < 0 || k >= numKinds {
		return 0
	}
	return kindInfo[k].arity
}

// NumParams returns the number of real parameters (rotation angles) the
// kind requires.
func (k Kind) NumParams() int {
	if k < 0 || k >= numKinds {
		return 0
	}
	return kindInfo[k].params
}

// KindByName returns the Kind with the given mnemonic and whether it exists.
func KindByName(name string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if kindInfo[k].name == name {
			return k, true
		}
	}
	return 0, false
}

// Kinds returns all supported gate kinds in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Gate is a single operation in a circuit.
type Gate struct {
	// ID is the gate's position in the circuit's gate list (0-based). It
	// is unique within a circuit and assigned by the builder.
	ID int
	// Kind is the logical operation.
	Kind Kind
	// Qubits are the operand qubits; len(Qubits) == Kind.Arity(). For
	// controlled gates, Qubits[0] is the control and Qubits[1] the target.
	Qubits []int
	// Params are rotation angles in radians; len == Kind.NumParams().
	Params []float64
}

// IsTwoQubit reports whether the gate touches two qubits.
func (g Gate) IsTwoQubit() bool { return g.Kind.Arity() == 2 }

// Touches reports whether the gate operates on qubit q.
func (g Gate) Touches(q int) bool {
	for _, x := range g.Qubits {
		if x == q {
			return true
		}
	}
	return false
}

// QubitKey returns the canonical label fragment for the gate's qubit set,
// e.g. "q3q4" (lower qubit index first) or "q7" for a 1-qubit gate. Gate
// direction is deliberately erased: the paper labels nodes by the qubit
// pair, not by control/target roles.
func (g Gate) QubitKey() string {
	qs := append([]int(nil), g.Qubits...)
	sort.Ints(qs)
	var b strings.Builder
	for _, q := range qs {
		fmt.Fprintf(&b, "q%d", q)
	}
	return b.String()
}

// String renders the gate as e.g. "cx q0,q1" or "rz(0.5) q3".
func (g Gate) String() string {
	var b strings.Builder
	b.WriteString(g.Kind.Name())
	if len(g.Params) > 0 {
		b.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", p)
		}
		b.WriteByte(')')
	}
	b.WriteByte(' ')
	for i, q := range g.Qubits {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "q%d", q)
	}
	return b.String()
}

// Circuit is an ordered list of gates over a fixed qubit register.
//
// The builder follows a sticky-error contract (like bufio.Writer): invalid
// construction — a non-positive register width, a gate with the wrong
// operand or parameter count, an out-of-range qubit — records the first
// error instead of panicking, the offending gate is dropped, and Err
// returns the diagnostic. Code assembling circuits from untrusted input
// checks Err (or Validate) once at the end instead of guarding every
// append.
type Circuit struct {
	// Name identifies the circuit in reports (e.g. "qft64").
	Name string

	numQubits int
	gates     []Gate
	// arena backs the Qubits slices of appended gates so synthesis loops
	// don't allocate per gate. Gates receive disjoint capacity-clipped
	// windows; when a block fills, a fresh one is started and earlier gates
	// keep referencing the old block.
	//vet:keyexempt arena -- allocation backing store; its contents are exactly the gates' operand slices, which Fingerprint already hashes
	arena []int
	//vet:keyexempt err -- sticky construction error; a poisoned circuit is rejected by Validate before any keyed artifact is built
	err error
}

// New returns an empty circuit over numQubits qubits. A non-positive width
// yields an empty zero-qubit circuit whose Err reports the problem; every
// subsequent Append fails against the empty register, so the poisoned
// circuit stays inert rather than crashing the caller.
func New(name string, numQubits int) *Circuit {
	return (&Circuit{}).init(name, numQubits)
}

// init resets a circuit to the empty state New produces, keeping whatever
// gate and arena capacity the struct already carries.
func (c *Circuit) init(name string, numQubits int) *Circuit {
	c.Name = name
	c.numQubits = 0
	c.gates = c.gates[:0]
	c.arena = c.arena[:0]
	c.err = nil
	if numQubits <= 0 {
		c.fail(verr.Inputf("circuit %q: numQubits must be positive, got %d", name, numQubits))
		return c
	}
	c.numQubits = numQubits
	return c
}

// scratchPool holds retired circuits for hot synthesis loops. It only ever
// contains circuits explicitly handed back through Recycle, so ordinary
// construction is unaffected.
var scratchPool sync.Pool

// NewScratch is New, but reuses a recycled circuit's gate and arena storage
// when one is available. The returned circuit is indistinguishable from a
// fresh New result.
func NewScratch(name string, numQubits int) *Circuit {
	if c, _ := scratchPool.Get().(*Circuit); c != nil {
		return c.init(name, numQubits)
	}
	return New(name, numQubits)
}

// Recycle retires c's storage for reuse by NewScratch. The caller must own
// every live reference into c — the circuit itself, its Gates slice, and
// each gate's Qubits view — because a later NewScratch will overwrite them
// in place. Trial loops that synthesize, price, and discard circuits use
// this to stay allocation-flat; anything cached or returned to a caller
// must never be recycled.
func Recycle(c *Circuit) {
	if c == nil {
		return
	}
	scratchPool.Put(c)
}

// fail records the first construction error.
func (c *Circuit) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// Err returns the first construction error recorded by New or Append, or
// nil if the circuit was built cleanly.
func (c *Circuit) Err() error { return c.err }

// NumQubits returns the register width.
func (c *Circuit) NumQubits() int { return c.numQubits }

// NumGates returns the total gate count.
func (c *Circuit) NumGates() int { return len(c.gates) }

// Gates returns the gate list in program order. The returned slice is the
// circuit's backing store and must not be modified.
func (c *Circuit) Gates() []Gate { return c.gates }

// Gate returns the gate with the given id.
//
// Invariant, not input validation: gate ids are produced by this package's
// builder and by the framework's schedulers, never by external input, so an
// out-of-range id is a programmer bug and panics deliberately (the
// errors-not-panics contract applies to input-reachable paths only).
func (c *Circuit) Gate(id int) Gate {
	if id < 0 || id >= len(c.gates) {
		panic(fmt.Sprintf("circuit: gate %d out of range [0,%d)", id, len(c.gates)))
	}
	return c.gates[id]
}

// Append adds a gate of the given kind and returns its id. A malformed gate
// — operand or parameter count not matching the kind, a qubit index out of
// range, or a 2-qubit gate naming the same qubit twice — is dropped: Append
// records the first such error (see Err) and returns -1.
func (c *Circuit) Append(k Kind, qubits []int, params ...float64) int {
	if c.err != nil {
		// Once poisoned, the circuit stays inert so a long builder chain
		// degrades into one Err() check at the end.
		return -1
	}
	if err := checkGate(c.numQubits, k, qubits, params); err != nil {
		c.fail(err)
		return -1
	}
	id := len(c.gates)
	c.gates = append(c.gates, Gate{
		ID:     id,
		Kind:   k,
		Qubits: c.internQubits(qubits),
		Params: append([]float64(nil), params...),
	})
	return id
}

// checkGate validates one gate against the register width: the single
// source of Append's rules and diagnostics, shared by *Circuit and the
// streaming *Emitter so both sinks reject exactly the same gates with
// exactly the same errors, in the same order.
func checkGate(numQubits int, k Kind, qubits []int, params []float64) error {
	if k < 0 || k >= numKinds {
		return verr.Inputf("circuit: unknown gate kind %d", int(k))
	}
	if len(qubits) != k.Arity() {
		return verr.Inputf("circuit: gate %s wants %d qubits, got %d", k.Name(), k.Arity(), len(qubits))
	}
	if len(params) != k.NumParams() {
		return verr.Inputf("circuit: gate %s wants %d params, got %d", k.Name(), k.NumParams(), len(params))
	}
	for _, q := range qubits {
		if q < 0 || q >= numQubits {
			return verr.Inputf("circuit: qubit q%d out of range [0,%d)", q, numQubits)
		}
	}
	if len(qubits) == 2 && qubits[0] == qubits[1] {
		return verr.Inputf("circuit: 2-qubit gate %s on identical qubits q%d", k.Name(), qubits[0])
	}
	return nil
}

// internQubits copies an operand list into the circuit's arena. The window
// is capacity-clipped so growing one gate's slice can never clobber a
// neighbour's operands.
func (c *Circuit) internQubits(qubits []int) []int {
	if len(qubits) == 0 {
		return nil
	}
	c.ensureArena(len(qubits))
	start := len(c.arena)
	c.arena = append(c.arena, qubits...)
	return c.arena[start:len(c.arena):len(c.arena)]
}

// ensureArena makes room for n more arena ints, starting a fresh block when
// the current one is full (earlier gates keep referencing the old block).
func (c *Circuit) ensureArena(n int) {
	if cap(c.arena)-len(c.arena) >= n {
		return
	}
	g := 2 * cap(c.arena)
	if g < 64 {
		g = 64
	}
	if g < n {
		g = n
	}
	c.arena = make([]int, 0, g)
}

// append1 is Append specialized for a parameterless 1-qubit kind: same
// sticky-error contract, same diagnostics, no generic dispatch. Synthesis
// loops emit millions of these, so the rejection paths are outlined to
// keep the common path branch-light.
func (c *Circuit) append1(k Kind, q int) int {
	if c.err != nil || uint(q) >= uint(c.numQubits) {
		return c.append1Err(q)
	}
	c.ensureArena(1)
	start := len(c.arena)
	c.arena = append(c.arena, q)
	id := len(c.gates)
	c.gates = append(c.gates, Gate{ID: id, Kind: k, Qubits: c.arena[start : start+1 : start+1]})
	return id
}

// append1Err records append1's rejection: a no-op on an already-failed
// circuit, an input error otherwise.
func (c *Circuit) append1Err(q int) int {
	if c.err == nil {
		c.fail(verr.Inputf("circuit: qubit q%d out of range [0,%d)", q, c.numQubits))
	}
	return -1
}

// append2 is Append specialized for a parameterless 2-qubit kind.
func (c *Circuit) append2(k Kind, a, b int) int {
	if c.err != nil || uint(a) >= uint(c.numQubits) || uint(b) >= uint(c.numQubits) || a == b {
		return c.append2Err(k, a, b)
	}
	c.ensureArena(2)
	start := len(c.arena)
	c.arena = append(c.arena, a, b)
	id := len(c.gates)
	c.gates = append(c.gates, Gate{ID: id, Kind: k, Qubits: c.arena[start : start+2 : start+2]})
	return id
}

// append2Err records append2's rejection with Append's exact diagnostics,
// checked in Append's order: operand range first, then the identical-qubit
// rule.
func (c *Circuit) append2Err(k Kind, a, b int) int {
	if c.err != nil {
		return -1
	}
	if a < 0 || a >= c.numQubits {
		c.fail(verr.Inputf("circuit: qubit q%d out of range [0,%d)", a, c.numQubits))
		return -1
	}
	if b < 0 || b >= c.numQubits {
		c.fail(verr.Inputf("circuit: qubit q%d out of range [0,%d)", b, c.numQubits))
		return -1
	}
	c.fail(verr.Inputf("circuit: 2-qubit gate %s on identical qubits q%d", k.Name(), a))
	return -1
}

// Grow reserves capacity for n additional gates and their operands, so a
// synthesis loop of n Appends performs no per-gate allocation. It never
// changes the circuit's contents; non-positive n and poisoned circuits are
// no-ops.
func (c *Circuit) Grow(n int) {
	if c.err != nil || n <= 0 {
		return
	}
	if free := cap(c.gates) - len(c.gates); free < n {
		gates := make([]Gate, len(c.gates), len(c.gates)+n)
		copy(gates, c.gates)
		c.gates = gates
	}
	if free := cap(c.arena) - len(c.arena); free < 2*n {
		c.arena = make([]int, 0, 2*n)
	}
}

// Convenience builders for the common gates.

func (c *Circuit) H(q int) int                    { return c.append1(H, q) }
func (c *Circuit) X(q int) int                    { return c.append1(X, q) }
func (c *Circuit) Y(q int) int                    { return c.append1(Y, q) }
func (c *Circuit) Z(q int) int                    { return c.append1(Z, q) }
func (c *Circuit) S(q int) int                    { return c.append1(S, q) }
func (c *Circuit) T(q int) int                    { return c.append1(T, q) }
func (c *Circuit) RX(theta float64, q int) int    { return c.Append(RX, []int{q}, theta) }
func (c *Circuit) RY(theta float64, q int) int    { return c.Append(RY, []int{q}, theta) }
func (c *Circuit) RZ(theta float64, q int) int    { return c.Append(RZ, []int{q}, theta) }
func (c *Circuit) CX(ctrl, tgt int) int           { return c.append2(CX, ctrl, tgt) }
func (c *Circuit) CZ(a, b int) int                { return c.append2(CZ, a, b) }
func (c *Circuit) SWAP(a, b int) int              { return c.append2(SWAP, a, b) }
func (c *Circuit) CP(theta float64, a, b int) int { return c.Append(CP, []int{a, b}, theta) }
func (c *Circuit) XX(theta float64, a, b int) int { return c.Append(XX, []int{a, b}, theta) }

// NumOneQubitGates returns the count of 1-qubit gates (the paper's q).
func (c *Circuit) NumOneQubitGates() int {
	n := 0
	for _, g := range c.gates {
		if g.Kind.Arity() == 1 {
			n++
		}
	}
	return n
}

// NumTwoQubitGates returns the count of 2-qubit gates (the paper's p).
func (c *Circuit) NumTwoQubitGates() int {
	n := 0
	for _, g := range c.gates {
		if g.Kind.Arity() == 2 {
			n++
		}
	}
	return n
}

// Spec abstracts the circuit down to the paper's boundary conditions: the
// register width and the 1- and 2-qubit gate counts (Table I).
func (c *Circuit) Spec() Spec {
	return Spec{
		Name:          c.Name,
		Qubits:        c.numQubits,
		OneQubitGates: c.NumOneQubitGates(),
		TwoQubitGates: c.NumTwoQubitGates(),
	}
}

// Depth returns the logical circuit depth: the length of the longest chain
// of gates linked by shared qubits, counting every gate as one time step.
// An empty circuit has depth 0.
func (c *Circuit) Depth() int {
	frontier := make([]int, c.numQubits)
	depth := 0
	for _, g := range c.gates {
		level := 0
		for _, q := range g.Qubits {
			if frontier[q] > level {
				level = frontier[q]
			}
		}
		level++
		for _, q := range g.Qubits {
			frontier[q] = level
		}
		if level > depth {
			depth = level
		}
	}
	return depth
}

// TwoQubitRatio returns the ratio of 2-qubit gates to qubits, the circuit
// composition metric the paper's scalability analysis turns on (§VI-B).
func (c *Circuit) TwoQubitRatio() float64 {
	return float64(c.NumTwoQubitGates()) / float64(c.numQubits)
}

// Labels returns the SSA-style label of every gate, in program order. The
// i-th instance (1-based) of a gate on a qubit set gets suffix ".i", with
// the suffix omitted for the first instance, e.g. "q3q4", "q3q4.2". This is
// the labeling scheme of the paper's Figure 3.
func (c *Circuit) Labels() []string {
	counts := make(map[string]int)
	labels := make([]string, len(c.gates))
	for i, g := range c.gates {
		key := g.QubitKey()
		counts[key]++
		if counts[key] == 1 {
			labels[i] = key
		} else {
			labels[i] = fmt.Sprintf("%s.%d", key, counts[key])
		}
	}
	return labels
}

// DependencyEdges returns the gate-ordering edges used to build the
// performance-model DAG: an edge (a, b) means gate b is the next gate after
// gate a that touches one of a's qubits. Each gate has at most one
// predecessor per operand qubit, and duplicate (a, b) pairs are emitted
// once. Edges are ordered by (a, b).
func (c *Circuit) DependencyEdges() [][2]int {
	last := make([]int, c.numQubits)
	for i := range last {
		last[i] = -1
	}
	seen := make(map[[2]int]bool)
	var edges [][2]int
	for _, g := range c.gates {
		for _, q := range g.Qubits {
			if p := last[q]; p >= 0 {
				e := [2]int{p, g.ID}
				if !seen[e] {
					seen[e] = true
					edges = append(edges, e)
				}
			}
		}
		for _, q := range g.Qubits {
			last[q] = g.ID
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}

// InteractionGraph returns, for each unordered qubit pair that shares at
// least one 2-qubit gate, the number of such gates. Keys are [2]int with
// the smaller qubit first. Placement policies use this to co-locate
// frequently interacting qubits.
func (c *Circuit) InteractionGraph() map[[2]int]int {
	out := make(map[[2]int]int)
	for _, g := range c.gates {
		if !g.IsTwoQubit() {
			continue
		}
		a, b := g.Qubits[0], g.Qubits[1]
		if a > b {
			a, b = b, a
		}
		out[[2]int{a, b}]++
	}
	return out
}

// Clone returns a deep copy of the circuit, including any recorded
// construction error.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Name: c.Name, numQubits: c.numQubits, err: c.err}
	out.gates = make([]Gate, len(c.gates))
	for i, g := range c.gates {
		out.gates[i] = Gate{
			ID:     g.ID,
			Kind:   g.Kind,
			Qubits: append([]int(nil), g.Qubits...),
			Params: append([]float64(nil), g.Params...),
		}
	}
	return out
}

// Reordered returns a copy of the circuit whose gates appear in the order
// given by perm (a permutation of gate ids); gate ids are reassigned to the
// new positions. Schedulers use this to realize an operation order.
//
// Invariant, not input validation: permutations come from the framework's
// schedulers, never from external input, so a malformed perm is a
// programmer bug and panics deliberately.
func (c *Circuit) Reordered(perm []int) *Circuit {
	if len(perm) != len(c.gates) {
		panic(fmt.Sprintf("circuit: permutation length %d != gate count %d", len(perm), len(c.gates)))
	}
	seen := make([]bool, len(perm))
	out := New(c.Name, c.numQubits)
	out.gates = make([]Gate, len(perm))
	for pos, id := range perm {
		if id < 0 || id >= len(c.gates) || seen[id] {
			panic(fmt.Sprintf("circuit: invalid permutation entry %d", id))
		}
		seen[id] = true
		g := c.gates[id]
		out.gates[pos] = Gate{
			ID:     pos,
			Kind:   g.Kind,
			Qubits: append([]int(nil), g.Qubits...),
			Params: append([]float64(nil), g.Params...),
		}
	}
	return out
}

// DecomposeSWAPs returns a copy of the circuit with every SWAP expanded into
// three CX gates, the standard decomposition. Other gates are untouched.
func (c *Circuit) DecomposeSWAPs() *Circuit {
	out := New(c.Name, c.numQubits)
	for _, g := range c.gates {
		if g.Kind == SWAP {
			a, b := g.Qubits[0], g.Qubits[1]
			out.CX(a, b)
			out.CX(b, a)
			out.CX(a, b)
			continue
		}
		out.Append(g.Kind, g.Qubits, g.Params...)
	}
	return out
}

// String renders the circuit as a program listing.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %s: %d qubits, %d gates\n", c.Name, c.numQubits, len(c.gates))
	for _, g := range c.gates {
		fmt.Fprintf(&b, "  %s\n", g.String())
	}
	return b.String()
}

// Spec is the paper's abstract circuit description (Table I): the boundary
// conditions VelociTI needs to model a workload without its gate-level
// structure.
type Spec struct {
	// Name identifies the workload in reports.
	Name string `json:"name"`
	// Qubits is the register width.
	Qubits int `json:"qubits"`
	// OneQubitGates is q, the number of 1-qubit gate operations.
	OneQubitGates int `json:"one_qubit_gates"`
	// TwoQubitGates is p, the number of 2-qubit gate operations.
	TwoQubitGates int `json:"two_qubit_gates"`
}

// Validate reports an input error if the spec is not physically
// meaningful.
func (s Spec) Validate() error {
	if s.Qubits <= 0 {
		return verr.Inputf("circuit spec %q: qubits must be positive, got %d", s.Name, s.Qubits)
	}
	if s.OneQubitGates < 0 || s.TwoQubitGates < 0 {
		return verr.Inputf("circuit spec %q: gate counts must be non-negative (q=%d, p=%d)",
			s.Name, s.OneQubitGates, s.TwoQubitGates)
	}
	if s.TwoQubitGates > 0 && s.Qubits < 2 {
		return verr.Inputf("circuit spec %q: 2-qubit gates require at least 2 qubits", s.Name)
	}
	return nil
}

// TotalGates returns q + p.
func (s Spec) TotalGates() int { return s.OneQubitGates + s.TwoQubitGates }

// TwoQubitRatio returns p / qubits (§VI-B's circuit-composition metric).
func (s Spec) TwoQubitRatio() float64 {
	return float64(s.TwoQubitGates) / float64(s.Qubits)
}

// String renders the spec in Table II style.
func (s Spec) String() string {
	return fmt.Sprintf("%s: %d qubits, %d 1q gates, %d 2q gates", s.Name, s.Qubits, s.OneQubitGates, s.TwoQubitGates)
}
