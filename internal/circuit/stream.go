package circuit

// This file is the streaming half of the IR: the same generator bodies that
// materialize a Circuit can instead push gates one at a time through a
// Source, so million-gate workloads evaluate in O(frontier) memory instead
// of O(gates). Three pieces cooperate:
//
//   - Builder names the gate-emission surface *Circuit already exposes, so
//     a generator written against Builder runs unchanged on either sink.
//   - Emitter is the streaming Builder: it validates exactly like
//     Circuit.Append (same checks, same order, same diagnostics — the
//     checkGate helper is shared) but forwards each gate to a yield
//     callback instead of storing it.
//   - Source is the package's pull-side handle: a named, re-emittable gate
//     stream in program order. Program couples a generator body with its
//     register width and derives both a Circuit and a Source from the one
//     body, which is what keeps the two paths bit-identical by
//     construction.
//
// Emission must be deterministic: every call to Emit yields the same gate
// sequence (generator bodies re-seed their own RNGs), because multi-trial
// evaluation re-emits the source once per trial.

import "velociti/internal/verr"

// Builder is the gate-emission interface shared by *Circuit and *Emitter.
// It carries Circuit's sticky-error contract: a malformed gate records the
// first error, drops the gate, and returns -1; Err reports the diagnostic
// once at the end.
type Builder interface {
	// Append adds a gate of the given kind and returns its id, or -1 on
	// rejection (see Circuit.Append for the validation rules).
	Append(k Kind, qubits []int, params ...float64) int
	// Grow reserves capacity for n additional gates where that is
	// meaningful (a no-op for streaming sinks).
	Grow(n int)

	H(q int) int
	X(q int) int
	Y(q int) int
	Z(q int) int
	S(q int) int
	T(q int) int
	RX(theta float64, q int) int
	RY(theta float64, q int) int
	RZ(theta float64, q int) int
	CX(ctrl, tgt int) int
	CZ(a, b int) int
	SWAP(a, b int) int
	CP(theta float64, a, b int) int
	XX(theta float64, a, b int) int

	// Err returns the first construction error, or nil.
	Err() error
	// NumQubits returns the register width.
	NumQubits() int
}

var (
	_ Builder = (*Circuit)(nil)
	_ Builder = (*Emitter)(nil)
)

// Source is a re-emittable gate stream in program order — the streaming
// counterpart of *Circuit. Emit pushes every gate to yield, stopping early
// with yield's error if the consumer fails. Each call to Emit must produce
// the same sequence (deterministic generators); consumers may not retain
// the *Gate they are handed — its operand and parameter storage is reused
// for the next gate.
type Source struct {
	// Name identifies the stream in reports and cache keys (Circuit.Name's
	// role).
	Name string
	// Qubits is the register width.
	Qubits int
	// Emit runs the stream: it calls yield once per gate in program order
	// and returns the first error — a construction error from the
	// generator, or the error yield returned to stop early.
	Emit func(yield func(*Gate) error) error
	// Fingerprint, when non-nil, returns the stream's content hash —
	// bit-identical to Circuit.Fingerprint of the materialized circuit —
	// without consuming the stream. Adapters over materialized circuits
	// provide it; pure generators leave it nil and consumers fall back to
	// the rolling accumulator computed during evaluation.
	Fingerprint func() uint64
}

// Source adapts a materialized circuit into a stream over its gate list.
// A poisoned circuit yields nothing and Emit returns its sticky error.
func (c *Circuit) Source() Source {
	return Source{
		Name:   c.Name,
		Qubits: c.numQubits,
		Emit: func(yield func(*Gate) error) error {
			if c.err != nil {
				return c.err
			}
			for i := range c.gates {
				if err := yield(&c.gates[i]); err != nil {
					return err
				}
			}
			return nil
		},
		Fingerprint: c.Fingerprint,
	}
}

// Program is a generator body bound to its register width. The one body
// drives both evaluation paths: Circuit materializes it, Source streams it.
type Program struct {
	// Name identifies the workload (Circuit.Name's role).
	Name string
	// Qubits is the register width.
	Qubits int
	// Body emits the program's gates against b in program order. It must
	// be deterministic across calls (re-seed any RNG inside the body) and
	// must not retain b.
	Body func(b Builder)
}

// Circuit materializes the program and returns the built circuit or its
// first construction error.
func (p Program) Circuit() (*Circuit, error) {
	c := New(p.Name, p.Qubits)
	if c.Err() == nil {
		p.Body(c)
	}
	return c, c.Err()
}

// Source returns the streaming view of the program: each Emit runs Body
// against a fresh Emitter.
func (p Program) Source() Source {
	return Source{
		Name:   p.Name,
		Qubits: p.Qubits,
		Emit: func(yield func(*Gate) error) error {
			e := NewEmitter(p.Name, p.Qubits, yield)
			if e.Err() == nil {
				p.Body(e)
			}
			return e.Err()
		},
	}
}

// Emitter is the streaming Builder: gates are validated with Circuit's
// exact rules and diagnostics, then handed to a yield callback instead of
// being stored. The yielded *Gate reuses one backing buffer, so consumers
// must copy anything they keep. An error returned by yield becomes the
// emitter's sticky error and stops further emission.
type Emitter struct {
	name      string
	numQubits int
	yield     func(*Gate) error
	err       error
	next      int // next gate id
	gate      Gate
	qbuf      [2]int
	pbuf      [3]float64
}

// NewEmitter returns a streaming builder over numQubits qubits forwarding
// to yield. A non-positive width poisons the emitter with Circuit.New's
// exact diagnostic, so the two sinks reject the same inputs identically.
func NewEmitter(name string, numQubits int, yield func(*Gate) error) *Emitter {
	e := &Emitter{name: name, yield: yield}
	if numQubits <= 0 {
		e.fail(verr.Inputf("circuit %q: numQubits must be positive, got %d", name, numQubits))
		return e
	}
	e.numQubits = numQubits
	return e
}

func (e *Emitter) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Err returns the first construction or consumer error, or nil.
func (e *Emitter) Err() error { return e.err }

// NumQubits returns the register width.
func (e *Emitter) NumQubits() int { return e.numQubits }

// NumGates returns the number of gates emitted so far.
func (e *Emitter) NumGates() int { return e.next }

// Grow is a no-op: a stream has nothing to reserve.
func (e *Emitter) Grow(int) {}

// emit forwards the assembled gate, assigning its id.
func (e *Emitter) emit() int {
	id := e.next
	e.gate.ID = id
	if err := e.yield(&e.gate); err != nil {
		e.fail(err)
		return -1
	}
	e.next++
	return id
}

// Append validates and forwards a gate of the given kind; same contract as
// Circuit.Append.
func (e *Emitter) Append(k Kind, qubits []int, params ...float64) int {
	if e.err != nil {
		return -1
	}
	if err := checkGate(e.numQubits, k, qubits, params); err != nil {
		e.fail(err)
		return -1
	}
	e.gate.Kind = k
	e.gate.Qubits = e.qbuf[:copy(e.qbuf[:], qubits)]
	e.gate.Params = e.pbuf[:copy(e.pbuf[:], params)]
	return e.emit()
}

// append1 mirrors Circuit.append1: the parameterless 1-qubit fast path.
func (e *Emitter) append1(k Kind, q int) int {
	if e.err != nil || uint(q) >= uint(e.numQubits) {
		return e.append1Err(q)
	}
	e.qbuf[0] = q
	e.gate.Kind = k
	e.gate.Qubits = e.qbuf[:1]
	e.gate.Params = nil
	return e.emit()
}

func (e *Emitter) append1Err(q int) int {
	if e.err == nil {
		e.fail(verr.Inputf("circuit: qubit q%d out of range [0,%d)", q, e.numQubits))
	}
	return -1
}

// append2 mirrors Circuit.append2: the parameterless 2-qubit fast path.
func (e *Emitter) append2(k Kind, a, b int) int {
	if e.err != nil || uint(a) >= uint(e.numQubits) || uint(b) >= uint(e.numQubits) || a == b {
		return e.append2Err(k, a, b)
	}
	e.qbuf[0], e.qbuf[1] = a, b
	e.gate.Kind = k
	e.gate.Qubits = e.qbuf[:2]
	e.gate.Params = nil
	return e.emit()
}

func (e *Emitter) append2Err(k Kind, a, b int) int {
	if e.err != nil {
		return -1
	}
	if a < 0 || a >= e.numQubits {
		e.fail(verr.Inputf("circuit: qubit q%d out of range [0,%d)", a, e.numQubits))
		return -1
	}
	if b < 0 || b >= e.numQubits {
		e.fail(verr.Inputf("circuit: qubit q%d out of range [0,%d)", b, e.numQubits))
		return -1
	}
	e.fail(verr.Inputf("circuit: 2-qubit gate %s on identical qubits q%d", k.Name(), a))
	return -1
}

func (e *Emitter) H(q int) int                    { return e.append1(H, q) }
func (e *Emitter) X(q int) int                    { return e.append1(X, q) }
func (e *Emitter) Y(q int) int                    { return e.append1(Y, q) }
func (e *Emitter) Z(q int) int                    { return e.append1(Z, q) }
func (e *Emitter) S(q int) int                    { return e.append1(S, q) }
func (e *Emitter) T(q int) int                    { return e.append1(T, q) }
func (e *Emitter) RX(theta float64, q int) int    { return e.Append(RX, []int{q}, theta) }
func (e *Emitter) RY(theta float64, q int) int    { return e.Append(RY, []int{q}, theta) }
func (e *Emitter) RZ(theta float64, q int) int    { return e.Append(RZ, []int{q}, theta) }
func (e *Emitter) CX(ctrl, tgt int) int           { return e.append2(CX, ctrl, tgt) }
func (e *Emitter) CZ(a, b int) int                { return e.append2(CZ, a, b) }
func (e *Emitter) SWAP(a, b int) int              { return e.append2(SWAP, a, b) }
func (e *Emitter) CP(theta float64, a, b int) int { return e.Append(CP, []int{a, b}, theta) }
func (e *Emitter) XX(theta float64, a, b int) int { return e.Append(XX, []int{a, b}, theta) }
