package stats

// Seeded-state memoization for PooledRand. Seeding a math/rand generator
// runs a 607-step Lehmer warmup inside rngSource.Seed — about 10µs — and
// the plan-grouped explorer re-seeds one generator per (plan, seed) job
// even though a grid has only Runs distinct seeds. This file caches the
// post-Seed feedback register for recently used seeds and restores it by
// copy, which is an order of magnitude cheaper than re-deriving it.
//
// The restore path reaches through math/rand's unexported state with
// unsafe, so it is gated hard: seedMemoEnabled is true only after the
// runtime's actual rand.Rand and rngSource layouts have been verified
// field by field via reflection AND a restored generator has reproduced
// a freshly seeded generator's stream. On any mismatch PooledRand falls
// back to plain Seed, which is always correct. math/rand is frozen under
// the Go 1 compatibility promise (math/rand/v2 is where evolution
// happens), so in practice the gate stays open; the stats property tests
// additionally pin restored-vs-fresh stream equality on every run.

import (
	"math/rand"
	"reflect"
	"sync"
	"unsafe"
)

// rngLen is math/rand's feedback register length, verified against the
// runtime's rngSource by verifyRandLayout before use.
const rngLen = 607

// rngState mirrors math/rand.rngSource.
type rngState struct {
	tap  int
	feed int
	vec  [rngLen]int64
}

// randHeader mirrors math/rand.Rand: two interface fields (src, s64),
// then the Read bookkeeping. verifyRandLayout checks every offset.
type randHeader struct {
	srcTyp  unsafe.Pointer
	srcDat  unsafe.Pointer
	s64Typ  unsafe.Pointer
	s64Dat  unsafe.Pointer
	readVal int64
	readPos int8
}

// seedMemoEnabled reports whether the memoized restore path is safe on
// this runtime.
var seedMemoEnabled = verifyRandLayout()

// rngSrcTab and rngS64Tab are the itab words a rand.Rand carries when it
// wraps math/rand's own rngSource (as every NewRand generator does).
// Itabs are unique per (interface, concrete type) pair, so comparing
// them identifies the dynamic source type without a reflective check per
// call. Captured by verifyRandLayout.
var rngSrcTab, rngS64Tab unsafe.Pointer

// verifyRandLayout proves the mirrored layouts match the runtime before
// any unsafe access: rand.Rand's fields must sit at randHeader's
// offsets, the dynamic source behind rand.NewSource must be a pointer to
// a struct laid out exactly like rngState, and a state restore must
// reproduce a freshly seeded stream bit for bit.
func verifyRandLayout() bool {
	rt := reflect.TypeOf(rand.Rand{})
	if rt.NumField() != 4 || rt.Size() != unsafe.Sizeof(randHeader{}) {
		return false
	}
	want := []struct {
		name   string
		offset uintptr
	}{
		{"src", unsafe.Offsetof(randHeader{}.srcTyp)},
		{"s64", unsafe.Offsetof(randHeader{}.s64Typ)},
		{"readVal", unsafe.Offsetof(randHeader{}.readVal)},
		{"readPos", unsafe.Offsetof(randHeader{}.readPos)},
	}
	for i, w := range want {
		f := rt.Field(i)
		if f.Name != w.name || f.Offset != w.offset {
			return false
		}
	}

	// The dynamic source: *rngSource with {tap int; feed int; vec [607]int64}.
	r := rand.New(rand.NewSource(1))
	src := reflect.ValueOf(r).Elem().Field(0)
	if src.IsNil() {
		return false
	}
	pt := src.Elem().Type()
	if pt.Kind() != reflect.Pointer {
		return false
	}
	st := pt.Elem()
	if st.Kind() != reflect.Struct || st.NumField() != 3 || st.Size() != unsafe.Sizeof(rngState{}) {
		return false
	}
	srcFields := []struct {
		name   string
		offset uintptr
		kind   reflect.Kind
	}{
		{"tap", unsafe.Offsetof(rngState{}.tap), reflect.Int},
		{"feed", unsafe.Offsetof(rngState{}.feed), reflect.Int},
		{"vec", unsafe.Offsetof(rngState{}.vec), reflect.Array},
	}
	for i, w := range srcFields {
		f := st.Field(i)
		if f.Name != w.name || f.Offset != w.offset || f.Type.Kind() != w.kind {
			return false
		}
	}
	if vec := st.Field(2).Type; vec.Len() != rngLen || vec.Elem().Kind() != reflect.Int64 {
		return false
	}

	// Record the itab words that identify an rngSource-backed generator.
	ph := (*randHeader)(unsafe.Pointer(r))
	if ph.srcTyp == nil || ph.s64Typ == nil || ph.srcDat == nil || ph.srcDat != ph.s64Dat {
		return false
	}
	rngSrcTab, rngS64Tab = ph.srcTyp, ph.s64Typ

	// Behavioral proof: restoring a snapshot reproduces the fresh stream.
	const probeSeed = 0x5eed1e55
	donor := rand.New(rand.NewSource(probeSeed))
	ds := sourceState(donor)
	if ds == nil {
		return false
	}
	snap := *ds
	target := rand.New(rand.NewSource(1))
	target.Int63() // desynchronize so the copy is doing the work
	ts := sourceState(target)
	if ts == nil {
		return false
	}
	*ts = snap
	h := (*randHeader)(unsafe.Pointer(target))
	h.readVal, h.readPos = 0, 0
	ref := rand.New(rand.NewSource(probeSeed))
	for i := 0; i < 64; i++ {
		if target.Int63() != ref.Int63() {
			return false
		}
	}
	return true
}

// sourceState returns r's feedback register, or nil when r does not wrap
// a plain rngSource. The itab comparison is the type check: a generator
// built on any other Source carries different type words. (The data
// words alone would not do — a failed Source64 assertion in rand.New
// copies the data word and nils only the type word.) Callers must have
// seen verifyRandLayout succeed.
func sourceState(r *rand.Rand) *rngState {
	h := (*randHeader)(unsafe.Pointer(r))
	if h.srcTyp != rngSrcTab || h.s64Typ != rngS64Tab || h.srcDat == nil || h.srcDat != h.s64Dat {
		return nil
	}
	return (*rngState)(h.srcDat)
}

// seedMemoSize bounds the snapshot cache: a ring of recently seeded
// states (~4.8KB each). Grid-shaped workloads cycle through a handful of
// seeds, so a small ring captures all the reuse.
const seedMemoSize = 64

var seedMemo struct {
	mu     sync.Mutex
	snaps  map[int64]*rngState
	ring   [seedMemoSize]int64
	cursor int
	full   bool
}

// seedFromMemo seeds r like r.Seed(seed) using the snapshot cache. It
// returns false when the fast path is unavailable for r, in which case
// the caller must fall back to r.Seed.
func seedFromMemo(r *rand.Rand, seed int64) bool {
	if !seedMemoEnabled {
		return false
	}
	st := sourceState(r)
	if st == nil {
		return false
	}
	seedMemo.mu.Lock()
	snap := seedMemo.snaps[seed]
	if snap != nil {
		// Copy under the lock: eviction recycles snapshot storage, so an
		// unlocked read could observe a torn overwrite.
		*st = *snap
	}
	seedMemo.mu.Unlock()
	if snap != nil {
		h := (*randHeader)(unsafe.Pointer(r))
		h.readVal, h.readPos = 0, 0
		return true
	}
	r.Seed(seed) // also clears readVal/readPos
	storeSnapshot(seed, st)
	return true
}

// memoizeSeed caches r's current state as the snapshot for seed. The
// caller must have just seeded r (NewRand or Seed) and not drawn from it.
func memoizeSeed(r *rand.Rand, seed int64) {
	if !seedMemoEnabled {
		return
	}
	if st := sourceState(r); st != nil {
		storeSnapshot(seed, st)
	}
}

// storeSnapshot copies *st into the ring cache under seed. Once the
// ring is full, each insert evicts the oldest entry and recycles its
// storage, so the steady state allocates nothing.
func storeSnapshot(seed int64, st *rngState) {
	seedMemo.mu.Lock()
	if _, dup := seedMemo.snaps[seed]; !dup {
		if seedMemo.snaps == nil {
			seedMemo.snaps = make(map[int64]*rngState, seedMemoSize)
		}
		var snap *rngState
		if seedMemo.full {
			old := seedMemo.ring[seedMemo.cursor]
			snap = seedMemo.snaps[old]
			delete(seedMemo.snaps, old)
		} else {
			snap = new(rngState)
		}
		*snap = *st
		seedMemo.snaps[seed] = snap
		seedMemo.ring[seedMemo.cursor] = seed
		seedMemo.cursor++
		if seedMemo.cursor == seedMemoSize {
			seedMemo.cursor, seedMemo.full = 0, true
		}
	}
	seedMemo.mu.Unlock()
}
