package stats

import (
	"math/rand"
	"sync"
	"testing"
)

// TestSeedMemoEnabledOnThisRuntime pins that the layout verification
// passes on the toolchain the repo builds with. If this fails after a Go
// upgrade the memo path has disabled itself (PooledRand stays correct via
// the Seed fallback) — but the perf baseline should then be re-measured.
func TestSeedMemoEnabledOnThisRuntime(t *testing.T) {
	if !seedMemoEnabled {
		t.Fatalf("seed memoization disabled: math/rand internals no longer match; PooledRand falls back to plain Seed")
	}
}

// TestPooledRandMatchesNewRandRepeatedSeeds drives PooledRand through the
// grid shape that motivates the memo — few distinct seeds, many trials —
// and checks every stream against a fresh NewRand bit for bit, covering
// both the miss (capture) and hit (restore) paths.
func TestPooledRandMatchesNewRandRepeatedSeeds(t *testing.T) {
	seeds := []int64{42, -7, 0, 1 << 40, 42} // repeat 42: hit path
	for round := 0; round < 3; round++ {
		for _, seed := range seeds {
			r := PooledRand(seed)
			ref := NewRand(seed)
			for i := 0; i < 200; i++ {
				if got, want := r.Int63(), ref.Int63(); got != want {
					t.Fatalf("round %d seed %d draw %d: PooledRand %d != NewRand %d", round, seed, i, got, want)
				}
			}
			// Float64 and Intn exercise different Source entry points.
			if got, want := r.Float64(), ref.Float64(); got != want {
				t.Fatalf("seed %d: Float64 %v != %v", seed, got, want)
			}
			if got, want := r.Intn(63), ref.Intn(63); got != want {
				t.Fatalf("seed %d: Intn %d != %d", seed, got, want)
			}
			RecycleRand(r)
		}
	}
}

// TestPooledRandReadAfterRestore checks the Read bookkeeping is reset on
// the restore path: a generator recycled mid-Read must not leak buffered
// bytes into the next seed's stream.
func TestPooledRandReadAfterRestore(t *testing.T) {
	r := PooledRand(11)
	var buf [3]byte
	if _, err := r.Read(buf[:]); err != nil {
		t.Fatalf("Read: %v", err)
	}
	RecycleRand(r)

	r = PooledRand(11) // same seed: restore path on a dirty generator
	ref := NewRand(11)
	var got, want [16]byte
	if _, err := r.Read(got[:]); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if _, err := ref.Read(want[:]); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got != want {
		t.Fatalf("post-restore Read diverged from fresh stream: %x != %x", got, want)
	}
	RecycleRand(r)
}

// TestSeedMemoEviction cycles through more seeds than the ring holds and
// re-checks every stream, so restores that survive eviction and recycled
// snapshot storage both stay bit-exact.
func TestSeedMemoEviction(t *testing.T) {
	const n = seedMemoSize*2 + 5
	for round := 0; round < 2; round++ {
		for i := 0; i < n; i++ {
			seed := int64(1000 + i)
			r := PooledRand(seed)
			ref := NewRand(seed)
			for d := 0; d < 20; d++ {
				if got, want := r.Int63(), ref.Int63(); got != want {
					t.Fatalf("round %d seed %d draw %d: %d != %d", round, seed, d, got, want)
				}
			}
			RecycleRand(r)
		}
	}
}

// TestSeedMemoConcurrent hammers one hot seed and a spread of cold seeds
// from many goroutines; under -race this doubles as the locking proof for
// the recycled-snapshot design.
func TestSeedMemoConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				seed := int64(77) // hot seed shared by all goroutines
				if i%3 == 0 {
					seed = int64(g*1000 + i)
				}
				r := PooledRand(seed)
				ref := NewRand(seed)
				for d := 0; d < 10; d++ {
					if got, want := r.Int63(), ref.Int63(); got != want {
						t.Errorf("seed %d draw %d: %d != %d", seed, d, got, want)
						break
					}
				}
				RecycleRand(r)
			}
		}(g)
	}
	wg.Wait()
}

// TestSeedFromMemoRejectsForeignSource checks the guard that keeps the
// unsafe restore away from generators whose source is not a plain
// rngSource shared between the src and s64 fields.
func TestSeedFromMemoRejectsForeignSource(t *testing.T) {
	if !seedMemoEnabled {
		t.Skip("memo disabled on this runtime")
	}
	r := rand.New(constSource{})
	if sourceState(r) != nil {
		t.Fatalf("sourceState accepted a non-rngSource generator")
	}
	if seedFromMemo(r, 5) {
		t.Fatalf("seedFromMemo claimed the fast path for a non-rngSource generator")
	}
}

// constSource is a Source that is not a Source64, so rand.New leaves the
// Rand's s64 field nil and the restore guard must reject it.
type constSource struct{}

func (constSource) Int63() int64 { return 1 }
func (constSource) Seed(int64)   {}
