// Package stats provides the summary statistics and deterministic random
// number generation used throughout VelociTI.
//
// The paper reports every experiment as the mean over 35 simulation runs
// with error bars spanning the minimum and maximum observed execution time
// (§V-B, §VI). Summary captures exactly that shape. All randomness in the
// framework flows through *rand.Rand instances created by NewRand so that
// experiments are reproducible from a single seed.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"velociti/internal/verr"
)

// Summary holds the aggregate statistics of a sample of observations.
// Times in VelociTI are expressed in microseconds, but Summary itself is
// unit-agnostic.
type Summary struct {
	N      int     // number of observations
	Mean   float64 // arithmetic mean
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64 // smallest observation
	Max    float64 // largest observation
	Median float64 // 50th percentile
	Sum    float64 // total
	// CI95 is the half-width of the 95% confidence interval of the mean
	// (Student-t for small samples); Mean ± CI95 brackets the true mean.
	CI95 float64
}

// Summarize computes a Summary over xs. It returns a zero Summary when xs is
// empty.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Percentile(xs, 50)
	s.CI95 = s.halfWidth95()
	return s
}

// halfWidth95 returns the half-width of the 95% confidence interval of the
// mean: t(n−1)·s/√n, using a small critical-value table for tiny samples
// and the normal approximation beyond it. Zero for n < 2.
func (s Summary) halfWidth95() float64 {
	if s.N < 2 || s.Std == 0 {
		return 0
	}
	// Two-sided 95% Student-t critical values for df = 1..30.
	tTable := [...]float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	df := s.N - 1
	t := 1.960
	if df <= len(tTable) {
		t = tTable[df-1]
	}
	return t * s.Std / math.Sqrt(float64(s.N))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Speedup returns base/improved, the conventional speedup factor. It returns
// +Inf when improved is zero and base is positive, and NaN when both are
// zero, mirroring IEEE-754 division.
func Speedup(base, improved float64) float64 {
	return base / improved
}

// GeoMean returns the geometric mean of xs. All observations must be
// positive; a non-positive observation yields NaN. The geometric mean is the
// standard way to average speedup factors across benchmarks.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// RelativeSpread returns (Max-Mean)/Mean, the paper's measure of run-to-run
// variance ("the maximum difference between average execution time and
// maximum execution time ... surpassing 50%", §VI-B). Zero mean yields 0.
func (s Summary) RelativeSpread() float64 {
	if s.Mean == 0 {
		return 0
	}
	return (s.Max - s.Mean) / s.Mean
}

// String renders the summary as "mean ± std [min, max] (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.3g [%.4g, %.4g] (n=%d)", s.Mean, s.Std, s.Min, s.Max, s.N)
}

// NewRand returns a deterministic PRNG for the given seed. Every stochastic
// component of VelociTI (qubit placement, gate placement, random workloads)
// accepts one of these so that whole experiments replay bit-for-bit.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// randPool holds retired generators for hot trial loops; only generators
// handed back through RecycleRand ever land here.
var randPool sync.Pool

// PooledRand returns a PRNG seeded like NewRand(seed), reusing a recycled
// generator's state storage when one is available. Seeding goes through the
// snapshot cache in rngstate.go when the seed was used recently; either way
// the stream is bit-identical to NewRand's, so the two are interchangeable.
func PooledRand(seed int64) *rand.Rand {
	if r, _ := randPool.Get().(*rand.Rand); r != nil {
		if !seedFromMemo(r, seed) {
			r.Seed(seed)
		}
		return r
	}
	r := NewRand(seed)
	memoizeSeed(r, seed) // the fresh state is exactly the snapshot to cache
	return r
}

// RecycleRand retires r for reuse by PooledRand. The caller must not use r
// afterwards.
func RecycleRand(r *rand.Rand) {
	if r != nil {
		randPool.Put(r)
	}
}

// SplitSeed derives the seed for the i-th independent run of an experiment
// from a master seed. The multiplier is an arbitrary large odd constant; the
// only requirement is that distinct runs get distinct, well-mixed seeds.
func SplitSeed(master int64, i int) int64 {
	x := uint64(master) + uint64(i+1)*0x9E3779B97F4A7C15
	// SplitMix64 finalizer.
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// MeanOf applies f to each element of xs and returns the mean of the
// results. It is a convenience for aggregating per-run metrics.
func MeanOf[T any](xs []T, f func(T) float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += f(x)
	}
	return sum / float64(len(xs))
}

// Shuffle permutes xs in place using r.
func Shuffle[T any](r *rand.Rand, xs []T) {
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// SampleWithoutReplacement returns k distinct values drawn uniformly from
// [0, n). It rejects k > n and negative arguments with an input-kind
// error.
func SampleWithoutReplacement(r *rand.Rand, n, k int) ([]int, error) {
	if k < 0 || n < 0 || k > n {
		return nil, verr.Inputf("stats: invalid sample request k=%d n=%d", k, n)
	}
	perm := r.Perm(n)
	return perm[:k], nil
}
