package stats

import (
	"math"
	"testing"
	"testing/quick"

	"velociti/internal/verr"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Sum != 0 {
		t.Fatalf("empty summary should be zero, got %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Min != 42 || s.Max != 42 || s.Median != 42 || s.Std != 0 {
		t.Fatalf("unexpected single-element summary %+v", s)
	}
}

func TestSummarizeKnownSample(t *testing.T) {
	// Sample with easily hand-checked moments.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// Sample std with n-1: variance = 32/7.
	want := math.Sqrt(32.0 / 7.0)
	if !almostEqual(s.Std, want, 1e-12) {
		t.Errorf("Std = %v, want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeUnorderedInputUnchanged(t *testing.T) {
	xs := []float64{9, 1, 5}
	_ = Summarize(xs)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Fatalf("Summarize must not mutate its input, got %v", xs)
	}
}

func TestPercentileEdges(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {-5, 10}, {150, 40},
		{50, 25}, {25, 17.5}, {75, 32.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Errorf("Percentile of empty sample should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile must not sort its input, got %v", xs)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(100, 50); got != 2 {
		t.Errorf("Speedup(100,50) = %v, want 2", got)
	}
	if got := Speedup(10, 0); !math.IsInf(got, 1) {
		t.Errorf("Speedup(10,0) = %v, want +Inf", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almostEqual(got, 10, 1e-9) {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Errorf("GeoMean(nil) should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Errorf("GeoMean with negative input should be NaN")
	}
}

func TestRelativeSpread(t *testing.T) {
	s := Summarize([]float64{100, 100, 160})
	if !almostEqual(s.RelativeSpread(), (160.0-120.0)/120.0, 1e-12) {
		t.Errorf("RelativeSpread = %v", s.RelativeSpread())
	}
	var zero Summary
	if zero.RelativeSpread() != 0 {
		t.Errorf("zero-mean spread should be 0")
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("same seed must yield identical streams (diverged at %d)", i)
		}
	}
	c := NewRand(8)
	same := true
	a = NewRand(7)
	for i := 0; i < 10; i++ {
		if a.Int63() != c.Int63() {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds should yield different streams")
	}
}

func TestSplitSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := SplitSeed(42, i)
		if seen[s] {
			t.Fatalf("SplitSeed collision at run %d", i)
		}
		seen[s] = true
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Fatalf("different masters should give different run seeds")
	}
}

func TestMeanOf(t *testing.T) {
	type obs struct{ v float64 }
	xs := []obs{{1}, {2}, {3}}
	if got := MeanOf(xs, func(o obs) float64 { return o.v }); !almostEqual(got, 2, 1e-12) {
		t.Errorf("MeanOf = %v, want 2", got)
	}
	if MeanOf(nil, func(o obs) float64 { return o.v }) != 0 {
		t.Errorf("MeanOf(nil) should be 0")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRand(1)
	got, err := SampleWithoutReplacement(r, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("want 5 samples, got %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("sample %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample %d", v)
		}
		seen[v] = true
	}
	if _, err := SampleWithoutReplacement(r, 3, 4); !verr.IsInput(err) {
		t.Fatalf("k > n should be an input-kind error, got %v", err)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRand(3)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	orig := append([]int(nil), xs...)
	Shuffle(r, xs)
	counts := map[int]int{}
	for _, v := range xs {
		counts[v]++
	}
	for _, v := range orig {
		if counts[v] != 1 {
			t.Fatalf("shuffle lost or duplicated element %d: %v", v, xs)
		}
	}
}

// Property: mean always lies within [min, max] and min ≤ median ≤ max.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				// Keep magnitudes sane to avoid float overflow in sums.
				xs = append(xs, math.Mod(v, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6 &&
			s.Min <= s.Median && s.Median <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCI95KnownValues(t *testing.T) {
	// n=5, std=2: t(4)=2.776 → CI = 2.776·2/√5.
	xs := []float64{8, 9, 10, 11, 12} // mean 10, sample std sqrt(2.5)
	s := Summarize(xs)
	want := 2.776 * s.Std / math.Sqrt(5)
	if !almostEqual(s.CI95, want, 1e-9) {
		t.Fatalf("CI95 = %v, want %v", s.CI95, want)
	}
	// Large n falls back to 1.96.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 10)
	}
	sb := Summarize(big)
	wantBig := 1.960 * sb.Std / 10
	if !almostEqual(sb.CI95, wantBig, 1e-9) {
		t.Fatalf("large-n CI95 = %v, want %v", sb.CI95, wantBig)
	}
	// Degenerate cases.
	if Summarize([]float64{5}).CI95 != 0 {
		t.Fatalf("single sample CI must be 0")
	}
	if Summarize([]float64{3, 3, 3}).CI95 != 0 {
		t.Fatalf("zero-variance CI must be 0")
	}
}
