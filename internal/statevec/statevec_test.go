package statevec

import (
	"math"
	"math/cmplx"
	"testing"

	"velociti/internal/apps"
	"velociti/internal/circuit"
	"velociti/internal/stats"
	"velociti/internal/workload"
)

const eps = 1e-9

func run(t *testing.T, c *circuit.Circuit) *State {
	t.Helper()
	s, err := Run(c)
	if err != nil {
		t.Fatalf("run %s: %v", c.Name, err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Errorf("zero qubits should fail")
	}
	if _, err := New(MaxQubits + 1); err == nil {
		t.Errorf("too many qubits should fail")
	}
	s, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Probability(0) != 1 {
		t.Fatalf("initial state should be |000>")
	}
}

func TestHadamardTwiceIsIdentity(t *testing.T) {
	c := circuit.New("hh", 1)
	c.H(0)
	c.H(0)
	s := run(t, c)
	if math.Abs(s.Probability(0)-1) > eps {
		t.Fatalf("H² != I: P(0) = %v", s.Probability(0))
	}
}

func TestBellState(t *testing.T) {
	c := circuit.New("bell", 2)
	c.H(0)
	c.CX(0, 1)
	s := run(t, c)
	if math.Abs(s.Probability(0b00)-0.5) > eps || math.Abs(s.Probability(0b11)-0.5) > eps {
		t.Fatalf("Bell state probabilities: %v %v", s.Probability(0), s.Probability(3))
	}
	if s.Probability(0b01) > eps || s.Probability(0b10) > eps {
		t.Fatalf("Bell state has weight on odd-parity terms")
	}
}

func TestGHZState(t *testing.T) {
	s := run(t, genc(t)(apps.GHZ(5)))
	all := uint64(1<<5 - 1)
	if math.Abs(s.Probability(0)-0.5) > eps || math.Abs(s.Probability(all)-0.5) > eps {
		t.Fatalf("GHZ probabilities: %v %v", s.Probability(0), s.Probability(all))
	}
	if math.Abs(s.Norm()-1) > eps {
		t.Fatalf("norm = %v", s.Norm())
	}
}

func TestPauliAlgebra(t *testing.T) {
	// X|0> = |1>, Z|1> = -|1>, Y|0> = i|1>.
	c := circuit.New("x", 1)
	c.X(0)
	s := run(t, c)
	if math.Abs(s.Probability(1)-1) > eps {
		t.Fatalf("X|0> != |1>")
	}
	c2 := circuit.New("y", 1)
	c2.Y(0)
	s2 := run(t, c2)
	if cmplx.Abs(s2.Amplitude(1)-1i) > eps {
		t.Fatalf("Y|0> amplitude = %v, want i", s2.Amplitude(1))
	}
	c3 := circuit.New("xz", 1)
	c3.X(0)
	c3.Z(0)
	s3 := run(t, c3)
	if cmplx.Abs(s3.Amplitude(1)+1) > eps {
		t.Fatalf("ZX|0> amplitude = %v, want -1", s3.Amplitude(1))
	}
}

func TestRotationIdentities(t *testing.T) {
	// RX(2π) = -I (global phase), so probabilities return to |0>.
	c := circuit.New("rx", 1)
	c.RX(2*math.Pi, 0)
	s := run(t, c)
	if math.Abs(s.Probability(0)-1) > eps {
		t.Fatalf("RX(2π) changed probabilities")
	}
	// RY(π)|0> = |1>.
	c2 := circuit.New("ry", 1)
	c2.RY(math.Pi, 0)
	s2 := run(t, c2)
	if math.Abs(s2.Probability(1)-1) > eps {
		t.Fatalf("RY(π)|0> != |1>")
	}
	// S = T², Z = S².
	c3 := circuit.New("tt", 1)
	c3.H(0)
	c3.T(0)
	c3.T(0)
	c3.Append(circuit.Sdg, []int{0})
	c3.H(0)
	s3 := run(t, c3)
	if math.Abs(s3.Probability(0)-1) > eps {
		t.Fatalf("H·Sdg·T·T·H != I")
	}
}

func TestSXSquaredIsX(t *testing.T) {
	c := circuit.New("sx2", 1)
	c.Append(circuit.SX, []int{0})
	c.Append(circuit.SX, []int{0})
	s := run(t, c)
	if math.Abs(s.Probability(1)-1) > eps {
		t.Fatalf("SX² != X: P(1) = %v", s.Probability(1))
	}
}

func TestSwapGate(t *testing.T) {
	c := circuit.New("swap", 2)
	c.X(0)
	c.SWAP(0, 1)
	s := run(t, c)
	if math.Abs(s.Probability(0b10)-1) > eps {
		t.Fatalf("SWAP failed: P = %v %v %v %v",
			s.Probability(0), s.Probability(1), s.Probability(2), s.Probability(3))
	}
}

func TestCZAndCPPhases(t *testing.T) {
	// CZ on |11> flips sign; CP(π) equals CZ.
	prep := func() *circuit.Circuit {
		c := circuit.New("p", 2)
		c.X(0)
		c.X(1)
		return c
	}
	cz := prep()
	cz.CZ(0, 1)
	s := run(t, cz)
	if cmplx.Abs(s.Amplitude(3)+1) > eps {
		t.Fatalf("CZ|11> amplitude = %v", s.Amplitude(3))
	}
	cp := prep()
	cp.CP(math.Pi, 0, 1)
	s2 := run(t, cp)
	if cmplx.Abs(s2.Amplitude(3)+1) > eps {
		t.Fatalf("CP(π)|11> amplitude = %v", s2.Amplitude(3))
	}
}

func TestXXGate(t *testing.T) {
	// RXX(π) maps |00> to -i|11>.
	c := circuit.New("xx", 2)
	c.XX(math.Pi, 0, 1)
	s := run(t, c)
	if cmplx.Abs(s.Amplitude(3)-(-1i)) > eps {
		t.Fatalf("RXX(π)|00> amplitude at |11> = %v, want -i", s.Amplitude(3))
	}
}

// Bernstein–Vazirani must recover the secret string deterministically.
func TestBernsteinVaziraniRecoversSecret(t *testing.T) {
	secrets := [][]bool{
		{true, true, true, true, true},
		{true, false, true, false, true},
		{false, false, false, false, true},
		{false, false, false, false, false},
	}
	for _, secret := range secrets {
		c := genc(t)(apps.BernsteinVazirani(6, secret))
		s := run(t, c)
		var want uint64
		for i, b := range secret {
			if b {
				want |= 1 << uint(i)
			}
		}
		dataMask := uint64(1<<5 - 1)
		p := s.MarginalProbability(dataMask, want)
		if math.Abs(p-1) > eps {
			t.Fatalf("secret %v: P(data=%b) = %v, want 1", secret, want, p)
		}
	}
}

// The Cuccaro adder must compute b ← a + b exactly.
func TestCuccaroAdderAdds(t *testing.T) {
	const bits = 3
	for a := 0; a < 1<<bits; a++ {
		for b := 0; b < 1<<bits; b++ {
			c := circuit.New("prep", 2*bits+2)
			// Register layout matches apps.CuccaroAdder: qubit 0 carry-in,
			// 1..bits = b, bits+1..2bits = a, last = carry-out.
			for i := 0; i < bits; i++ {
				if b&(1<<uint(i)) != 0 {
					c.X(1 + i)
				}
				if a&(1<<uint(i)) != 0 {
					c.X(1 + bits + i)
				}
			}
			adder := genc(t)(apps.CuccaroAdder(bits))
			for _, g := range adder.Gates() {
				c.Append(g.Kind, g.Qubits, g.Params...)
			}
			s := run(t, c)
			sum := a + b
			var want uint64
			for i := 0; i < bits; i++ {
				if sum&(1<<uint(i)) != 0 {
					want |= 1 << uint(1+i) // b register
				}
				if a&(1<<uint(i)) != 0 {
					want |= 1 << uint(1+bits+i) // a register unchanged
				}
			}
			if sum&(1<<bits) != 0 {
				want |= 1 << uint(2*bits+1) // carry-out
			}
			if p := s.Probability(want); math.Abs(p-1) > 1e-6 {
				t.Fatalf("a=%d b=%d: P(expected state %b) = %v", a, b, want, p)
			}
		}
	}
}

// QFT applied to |0…0> must give the uniform superposition, and QFT
// followed by its inverse must be the identity.
func TestQFTProperties(t *testing.T) {
	const n = 5
	qft := genc(t)(apps.QFT(n))
	s := run(t, qft)
	want := 1.0 / float64(uint64(1)<<n)
	for i := 0; i < 1<<n; i++ {
		if math.Abs(s.Probability(uint64(i))-want) > eps {
			t.Fatalf("QFT|0>: P(%d) = %v, want uniform %v", i, s.Probability(uint64(i)), want)
		}
	}
	inv, err := InverseCircuit(qft)
	if err != nil {
		t.Fatal(err)
	}
	// Random input state via a prefix of gates, then QFT · QFT†.
	c := genc(t)(workload.RandomCircuit(n, 30, 0.5, 7))
	ref := run(t, c)
	full := c.Clone()
	for _, g := range qft.Gates() {
		full.Append(g.Kind, g.Qubits, g.Params...)
	}
	for _, g := range inv.Gates() {
		full.Append(g.Kind, g.Qubits, g.Params...)
	}
	got := run(t, full)
	fid, err := ref.Fidelity(got)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fid-1) > 1e-6 {
		t.Fatalf("QFT†·QFT fidelity = %v, want 1", fid)
	}
}

// QFT on a basis state |x> must produce the DFT phases. The generator
// follows the textbook construction, which under this simulator's
// LSB-first indexing (and without a terminal swap network — Table II's
// count excludes it) realizes amp(y) = ω^(rev(x)·y)/√N up to a global
// phase contributed by the rz-based controlled-phase decomposition. The
// test factors the global phase out via amp(0).
func TestQFTMatchesDFT(t *testing.T) {
	const n = 4
	N := 1 << n
	for _, x := range []int{0, 1, 5, 10, 15} {
		c := circuit.New("prep", n)
		for i := 0; i < n; i++ {
			if x&(1<<uint(i)) != 0 {
				c.X(i)
			}
		}
		qft := genc(t)(apps.QFT(n))
		for _, g := range qft.Gates() {
			c.Append(g.Kind, g.Qubits, g.Params...)
		}
		s := run(t, c)
		base := s.Amplitude(0)
		if cmplx.Abs(base) < 1e-12 {
			t.Fatalf("QFT|%d>: zero amplitude at 0", x)
		}
		rx := bitReverse(x, n)
		for y := 0; y < N; y++ {
			want := cmplx.Exp(complex(0, 2*math.Pi*float64(rx)*float64(y)/float64(N)))
			got := s.Amplitude(uint64(y)) / base
			if cmplx.Abs(got-want) > 1e-9 {
				t.Fatalf("QFT|%d>: relative amplitude at %d = %v, want %v", x, y, got, want)
			}
		}
	}
}

// Grover's single iteration on 3 data qubits must amplify the all-ones
// state well above the uniform 1/8 and above 1/2.
func TestGroverAmplifies(t *testing.T) {
	c := genc(t)(apps.Grover(3, 1))
	s := run(t, c)
	dataMask := uint64(0b111)
	p := s.MarginalProbability(dataMask, 0b111)
	if p < 0.5 {
		t.Fatalf("Grover success probability = %v, want > 0.5", p)
	}
	// Ancillas must be returned to |0> by uncomputation.
	ancMask := uint64(0b1000) // 2*3-2 = 4 qubits; qubit 3 is the ancilla
	if pa := s.MarginalProbability(ancMask, 0); math.Abs(pa-1) > 1e-6 {
		t.Fatalf("ancilla not uncomputed: P(anc=0) = %v", pa)
	}
}

// Every generator circuit must preserve the norm (unitarity smoke test).
func TestGeneratorsPreserveNorm(t *testing.T) {
	edges, err := apps.RandomGraph(5, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	circuits := []*circuit.Circuit{
		genc(t)(apps.QFT(6)),
		genc(t)(apps.Supremacy(2, 3, 4, 1)),
		genc(t)(apps.QAOA(5, edges, 2, 1)),
		genc(t)(apps.BernsteinVazirani(5, nil)),
		genc(t)(apps.CuccaroAdder(2)),
		genc(t)(apps.Grover(3, 2)),
		genc(t)(workload.RandomCircuit(6, 80, 0.5, 2)),
	}
	for _, c := range circuits {
		s := run(t, c)
		if math.Abs(s.Norm()-1) > 1e-6 {
			t.Errorf("%s: norm = %v", c.Name, s.Norm())
		}
	}
}

// InverseCircuit must invert every supported kind.
func TestInverseCircuitAllKinds(t *testing.T) {
	c := circuit.New("all", 3)
	c.Append(circuit.I, []int{0})
	c.H(0)
	c.X(1)
	c.Y(2)
	c.Z(0)
	c.S(1)
	c.Append(circuit.Sdg, []int{2})
	c.T(0)
	c.Append(circuit.Tdg, []int{1})
	c.Append(circuit.SX, []int{2})
	c.RX(0.3, 0)
	c.RY(0.7, 1)
	c.RZ(1.1, 2)
	c.Append(circuit.U1, []int{0}, 0.4)
	c.Append(circuit.U2, []int{1}, 0.5, 0.6)
	c.Append(circuit.U3, []int{2}, 0.7, 0.8, 0.9)
	c.CX(0, 1)
	c.CZ(1, 2)
	c.SWAP(0, 2)
	c.CP(0.2, 0, 1)
	c.Append(circuit.RZZ, []int{1, 2}, 0.3)
	c.XX(0.4, 0, 2)
	inv, err := InverseCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	full := c.Clone()
	for _, g := range inv.Gates() {
		full.Append(g.Kind, g.Qubits, g.Params...)
	}
	s := run(t, full)
	ref, _ := New(3)
	fid, err := ref.Fidelity(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fid-1) > 1e-9 {
		t.Fatalf("C†·C fidelity = %v, want 1", fid)
	}
}

func TestSampleFollowsDistribution(t *testing.T) {
	s := run(t, genc(t)(apps.GHZ(3)))
	r := stats.NewRand(1)
	counts := map[uint64]int{}
	const trials = 2000
	for i := 0; i < trials; i++ {
		counts[s.Sample(r)]++
	}
	if len(counts) != 2 {
		t.Fatalf("GHZ samples hit %d distinct outcomes, want 2", len(counts))
	}
	frac := float64(counts[0]) / trials
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("P(000) sampled at %v, want ≈ 0.5", frac)
	}
}

func TestApplyValidation(t *testing.T) {
	s, _ := New(2)
	bad := circuit.New("b", 5)
	id := bad.H(4)
	if err := s.Apply(bad.Gate(id)); err == nil {
		t.Fatalf("out-of-range gate should fail")
	}
}

func TestFidelityWidthMismatch(t *testing.T) {
	a, _ := New(2)
	b, _ := New(3)
	if _, err := a.Fidelity(b); err == nil {
		t.Fatalf("width mismatch should fail")
	}
}

func bitReverse(x, n int) int {
	out := 0
	for i := 0; i < n; i++ {
		if x&(1<<uint(i)) != 0 {
			out |= 1 << uint(n-1-i)
		}
	}
	return out
}

// genc unwraps a circuit-generator result, failing the test on error.
func genc(t testing.TB) func(*circuit.Circuit, error) *circuit.Circuit {
	return func(c *circuit.Circuit, err error) *circuit.Circuit {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return c
	}
}
