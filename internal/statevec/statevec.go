// Package statevec is a small dense state-vector simulator for functionally
// validating circuits on few qubits.
//
// The VelociTI paper explicitly scopes the framework to performance and
// timing, deferring "functional simulation for small systems" to future
// work (§III-C). This package implements that extension: it executes the
// circuit IR exactly (complex amplitudes, all supported gate kinds) so the
// test suite can prove the application generators in internal/apps compute
// what they claim — Bernstein–Vazirani recovers its secret, the Cuccaro
// adder adds, QFT implements the discrete Fourier transform, Grover
// amplifies the marked state.
//
// Qubit 0 is the least significant bit of a basis-state index. The
// simulator is O(2^n) in memory and per-gate time and refuses circuits
// wider than MaxQubits.
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"velociti/internal/circuit"
)

// MaxQubits bounds simulator width; 24 qubits is 16M amplitudes (256 MiB),
// the practical ceiling for a test-support tool.
const MaxQubits = 24

// State is a normalized pure quantum state over n qubits.
type State struct {
	n   int
	amp []complex128
}

// New returns the all-zeros computational basis state |0…0⟩ over n qubits.
func New(n int) (*State, error) {
	if n < 1 {
		return nil, fmt.Errorf("statevec: need at least 1 qubit, got %d", n)
	}
	if n > MaxQubits {
		return nil, fmt.Errorf("statevec: %d qubits exceeds simulator limit of %d", n, MaxQubits)
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s, nil
}

// NumQubits returns the register width.
func (s *State) NumQubits() int { return s.n }

// Amplitude returns the amplitude of the given basis state.
func (s *State) Amplitude(basis uint64) complex128 {
	return s.amp[basis]
}

// Probability returns |amplitude|² of the given basis state.
func (s *State) Probability(basis uint64) float64 {
	a := s.amp[basis]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Norm returns the state's 2-norm (1.0 up to rounding for valid states).
func (s *State) Norm() float64 {
	var sum float64
	for _, a := range s.amp {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// Fidelity returns |⟨s|o⟩|², the squared overlap with another state of the
// same width.
func (s *State) Fidelity(o *State) (float64, error) {
	if s.n != o.n {
		return 0, fmt.Errorf("statevec: width mismatch %d vs %d", s.n, o.n)
	}
	var dot complex128
	for i := range s.amp {
		dot += cmplx.Conj(s.amp[i]) * o.amp[i]
	}
	return real(dot)*real(dot) + imag(dot)*imag(dot), nil
}

// MarginalProbability returns the probability that measuring the qubits
// selected by mask yields the bits of value (value is read under the same
// mask; other bits are traced out).
func (s *State) MarginalProbability(mask, value uint64) float64 {
	var p float64
	for i, a := range s.amp {
		if uint64(i)&mask == value&mask {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// Sample draws one measurement outcome of all qubits from the state's
// distribution without collapsing the state.
func (s *State) Sample(r *rand.Rand) uint64 {
	x := r.Float64()
	var acc float64
	for i, a := range s.amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
		if x < acc {
			return uint64(i)
		}
	}
	return uint64(len(s.amp) - 1)
}

// Apply executes one gate on the state.
func (s *State) Apply(g circuit.Gate) error {
	for _, q := range g.Qubits {
		if q < 0 || q >= s.n {
			return fmt.Errorf("statevec: gate %s touches qubit q%d outside register of %d", g, q, s.n)
		}
	}
	if g.Kind.Arity() == 1 {
		m, err := oneQubitMatrix(g)
		if err != nil {
			return err
		}
		s.apply1(g.Qubits[0], m)
		return nil
	}
	m, err := twoQubitMatrix(g)
	if err != nil {
		return err
	}
	s.apply2(g.Qubits[0], g.Qubits[1], m)
	return nil
}

// Run executes an entire circuit from |0…0⟩ and returns the final state.
func Run(c *circuit.Circuit) (*State, error) {
	s, err := New(c.NumQubits())
	if err != nil {
		return nil, err
	}
	for _, g := range c.Gates() {
		if err := s.Apply(g); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// apply1 applies the 2×2 matrix m to qubit k.
func (s *State) apply1(k int, m [2][2]complex128) {
	mask := 1 << uint(k)
	for i := range s.amp {
		if i&mask != 0 {
			continue
		}
		a0, a1 := s.amp[i], s.amp[i|mask]
		s.amp[i] = m[0][0]*a0 + m[0][1]*a1
		s.amp[i|mask] = m[1][0]*a0 + m[1][1]*a1
	}
}

// apply2 applies the 4×4 matrix m to qubits (hi, lo), where the row index
// of m is hiBit·2 + loBit.
func (s *State) apply2(hi, lo int, m [4][4]complex128) {
	hm, lm := 1<<uint(hi), 1<<uint(lo)
	for i := range s.amp {
		if i&hm != 0 || i&lm != 0 {
			continue
		}
		idx := [4]int{i, i | lm, i | hm, i | hm | lm}
		var in [4]complex128
		for r := 0; r < 4; r++ {
			in[r] = s.amp[idx[r]]
		}
		for r := 0; r < 4; r++ {
			var acc complex128
			for c := 0; c < 4; c++ {
				acc += m[r][c] * in[c]
			}
			s.amp[idx[r]] = acc
		}
	}
}

var invSqrt2 = complex(1/math.Sqrt2, 0)

// oneQubitMatrix returns the unitary of a 1-qubit gate.
func oneQubitMatrix(g circuit.Gate) ([2][2]complex128, error) {
	p := func(i int) float64 { return g.Params[i] }
	switch g.Kind {
	case circuit.I:
		return [2][2]complex128{{1, 0}, {0, 1}}, nil
	case circuit.H:
		return [2][2]complex128{{invSqrt2, invSqrt2}, {invSqrt2, -invSqrt2}}, nil
	case circuit.X:
		return [2][2]complex128{{0, 1}, {1, 0}}, nil
	case circuit.Y:
		return [2][2]complex128{{0, -1i}, {1i, 0}}, nil
	case circuit.Z:
		return [2][2]complex128{{1, 0}, {0, -1}}, nil
	case circuit.S:
		return [2][2]complex128{{1, 0}, {0, 1i}}, nil
	case circuit.Sdg:
		return [2][2]complex128{{1, 0}, {0, -1i}}, nil
	case circuit.T:
		return [2][2]complex128{{1, 0}, {0, phase(math.Pi / 4)}}, nil
	case circuit.Tdg:
		return [2][2]complex128{{1, 0}, {0, phase(-math.Pi / 4)}}, nil
	case circuit.SX:
		return [2][2]complex128{
			{complex(0.5, 0.5), complex(0.5, -0.5)},
			{complex(0.5, -0.5), complex(0.5, 0.5)},
		}, nil
	case circuit.RX:
		c, s := cosSinHalf(p(0))
		return [2][2]complex128{{c, -1i * s}, {-1i * s, c}}, nil
	case circuit.RY:
		c, s := cosSinHalf(p(0))
		return [2][2]complex128{{c, -s}, {s, c}}, nil
	case circuit.RZ:
		return [2][2]complex128{{phase(-p(0) / 2), 0}, {0, phase(p(0) / 2)}}, nil
	case circuit.U1:
		return [2][2]complex128{{1, 0}, {0, phase(p(0))}}, nil
	case circuit.U2:
		phi, lam := p(0), p(1)
		return [2][2]complex128{
			{invSqrt2, -invSqrt2 * phase(lam)},
			{invSqrt2 * phase(phi), invSqrt2 * phase(phi+lam)},
		}, nil
	case circuit.U3:
		theta, phi, lam := p(0), p(1), p(2)
		c, s := cosSinHalf(theta)
		return [2][2]complex128{
			{c, -s * phase(lam)},
			{s * phase(phi), c * phase(phi+lam)},
		}, nil
	default:
		return [2][2]complex128{}, fmt.Errorf("statevec: no unitary for 1-qubit kind %s", g.Kind.Name())
	}
}

// twoQubitMatrix returns the unitary of a 2-qubit gate in the basis
// |q0 q1⟩ where q0 = Qubits[0] is the high bit (control first).
func twoQubitMatrix(g circuit.Gate) ([4][4]complex128, error) {
	switch g.Kind {
	case circuit.CX:
		return [4][4]complex128{
			{1, 0, 0, 0},
			{0, 1, 0, 0},
			{0, 0, 0, 1},
			{0, 0, 1, 0},
		}, nil
	case circuit.CZ:
		return diag4(1, 1, 1, -1), nil
	case circuit.SWAP:
		return [4][4]complex128{
			{1, 0, 0, 0},
			{0, 0, 1, 0},
			{0, 1, 0, 0},
			{0, 0, 0, 1},
		}, nil
	case circuit.CP:
		return diag4(1, 1, 1, phase(g.Params[0])), nil
	case circuit.RZZ:
		t := g.Params[0]
		return diag4(phase(-t/2), phase(t/2), phase(t/2), phase(-t/2)), nil
	case circuit.XX:
		c, s := cosSinHalf(g.Params[0])
		is := -1i * s
		return [4][4]complex128{
			{c, 0, 0, is},
			{0, c, is, 0},
			{0, is, c, 0},
			{is, 0, 0, c},
		}, nil
	default:
		return [4][4]complex128{}, fmt.Errorf("statevec: no unitary for 2-qubit kind %s", g.Kind.Name())
	}
}

func diag4(a, b, c, d complex128) [4][4]complex128 {
	var m [4][4]complex128
	m[0][0], m[1][1], m[2][2], m[3][3] = a, b, c, d
	return m
}

func phase(theta float64) complex128 {
	return cmplx.Exp(complex(0, theta))
}

func cosSinHalf(theta float64) (complex128, complex128) {
	return complex(math.Cos(theta/2), 0), complex(math.Sin(theta/2), 0)
}

// InverseCircuit returns the circuit implementing the inverse unitary of c:
// gates reversed with each gate replaced by its adjoint. It is used to test
// that generators are unitary (C† C = identity). Gates whose adjoint is not
// expressible in the IR return an error (none of the supported kinds do).
func InverseCircuit(c *circuit.Circuit) (*circuit.Circuit, error) {
	inv := circuit.New(c.Name+"-inverse", c.NumQubits())
	gates := c.Gates()
	for i := len(gates) - 1; i >= 0; i-- {
		g := gates[i]
		switch g.Kind {
		case circuit.I, circuit.H, circuit.X, circuit.Y, circuit.Z, circuit.CX, circuit.CZ, circuit.SWAP:
			inv.Append(g.Kind, g.Qubits)
		case circuit.S:
			inv.Append(circuit.Sdg, g.Qubits)
		case circuit.Sdg:
			inv.Append(circuit.S, g.Qubits)
		case circuit.T:
			inv.Append(circuit.Tdg, g.Qubits)
		case circuit.Tdg:
			inv.Append(circuit.T, g.Qubits)
		case circuit.RX, circuit.RY, circuit.RZ, circuit.U1, circuit.CP, circuit.RZZ, circuit.XX:
			inv.Append(g.Kind, g.Qubits, -g.Params[0])
		case circuit.U3:
			theta, phi, lam := g.Params[0], g.Params[1], g.Params[2]
			inv.Append(circuit.U3, g.Qubits, -theta, -lam, -phi)
		case circuit.U2:
			phi, lam := g.Params[0], g.Params[1]
			inv.Append(circuit.U3, g.Qubits, -math.Pi/2, -lam, -phi)
		case circuit.SX:
			// SX = Sdg·H·Sdg up to global phase, so SX† = S·H·S up to
			// global phase (irrelevant to fidelity-based checks).
			inv.Append(circuit.S, g.Qubits)
			inv.Append(circuit.H, g.Qubits)
			inv.Append(circuit.S, g.Qubits)
		default:
			return nil, fmt.Errorf("statevec: no adjoint for kind %s", g.Kind.Name())
		}
	}
	return inv, nil
}
