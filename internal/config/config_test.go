package config

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"velociti/internal/apps"
	"velociti/internal/circuit"
	"velociti/internal/core"
	"velociti/internal/shuttle"
	"velociti/internal/verr"
)

func TestDefaultParamsAreValidOnceWorkloadSet(t *testing.T) {
	p := Default()
	p.Workload = circuit.Spec{Name: "w", Qubits: 32, OneQubitGates: 10, TwoQubitGates: 50}
	cfg, err := p.ToCoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ChainLength != 16 || cfg.Runs != core.DefaultRuns {
		t.Fatalf("core config = %+v", cfg)
	}
	if cfg.Latencies.TwoQubit != 100 {
		t.Fatalf("latencies = %+v", cfg.Latencies)
	}
}

func TestParamsRoundTrip(t *testing.T) {
	p := Default()
	p.Workload = circuit.Spec{Name: "rt", Qubits: 64, OneQubitGates: 5, TwoQubitGates: 100}
	p.Placer = "load-balanced"
	p.Placement = "round-robin"
	p.Topology = "line"
	p.Seed = 42
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestParamsFileRoundTrip(t *testing.T) {
	p := Default()
	p.Workload = circuit.Spec{Name: "file", Qubits: 8, TwoQubitGates: 4}
	path := filepath.Join(t.TempDir(), "params.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadParams(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload.Name != "file" {
		t.Fatalf("loaded = %+v", got)
	}
}

func TestReadParamsRejectsUnknownFields(t *testing.T) {
	_, err := ReadParams(strings.NewReader(`{"workload":{"name":"x","qubits":4},"chain_lenght":16}`))
	if err == nil {
		t.Fatalf("typo'd field should be rejected")
	}
}

func TestToCoreConfigPolicyResolution(t *testing.T) {
	base := Default()
	base.Workload = circuit.Spec{Name: "w", Qubits: 16, TwoQubitGates: 10}
	cases := []struct {
		mutate  func(*Params)
		wantErr bool
	}{
		{func(p *Params) { p.Placement = "sequential" }, false},
		{func(p *Params) { p.Placement = "magic" }, true},
		{func(p *Params) { p.Placer = "weak-avoiding" }, false},
		{func(p *Params) { p.Placer = "optimal" }, true},
		{func(p *Params) { p.Topology = "mesh" }, true},
		{func(p *Params) { p.Topology = "" }, false}, // defaults to ring
		{func(p *Params) { p.ChainLength = 0 }, true},
	}
	for i, c := range cases {
		p := base
		c.mutate(&p)
		_, err := p.ToCoreConfig()
		if (err != nil) != c.wantErr {
			t.Errorf("case %d: err = %v, wantErr = %v", i, err, c.wantErr)
		}
	}
}

func TestToCoreConfigDefaultsLatencies(t *testing.T) {
	p := Params{
		Workload:    circuit.Spec{Name: "w", Qubits: 8, TwoQubitGates: 4},
		ChainLength: 8,
	}
	cfg, err := p.ToCoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Latencies.TwoQubit != 100 || cfg.Latencies.WeakPenalty != 2 {
		t.Fatalf("zero latencies should default to Table III: %+v", cfg.Latencies)
	}
}

func TestCircuitRoundTrip(t *testing.T) {
	orig, err := apps.QFT(6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCircuit(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCircuit(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != orig.String() {
		t.Fatalf("circuit round trip mismatch:\n%s\nvs\n%s", got, orig)
	}
}

func TestCircuitFileRoundTrip(t *testing.T) {
	orig, err := apps.GHZ(5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ghz.json")
	if err := SaveCircuit(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCircuit(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumGates() != orig.NumGates() || got.Name != orig.Name {
		t.Fatalf("loaded circuit = %v", got.Spec())
	}
}

func TestReadCircuitErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"zero qubits":   `{"name":"x","qubits":0,"gates":[]}`,
		"unknown kind":  `{"name":"x","qubits":2,"gates":[{"kind":"frobnicate","qubits":[0]}]}`,
		"bad arity":     `{"name":"x","qubits":2,"gates":[{"kind":"cx","qubits":[0]}]}`,
		"out of range":  `{"name":"x","qubits":2,"gates":[{"kind":"h","qubits":[5]}]}`,
		"missing param": `{"name":"x","qubits":2,"gates":[{"kind":"rz","qubits":[0]}]}`,
		"same qubits":   `{"name":"x","qubits":2,"gates":[{"kind":"cx","qubits":[1,1]}]}`,
		"unknown field": `{"name":"x","qubits":2,"gattes":[]}`,
	}
	for name, body := range cases {
		if _, err := ReadCircuit(strings.NewReader(body)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLoadMissingFiles(t *testing.T) {
	if _, err := LoadParams("/nonexistent/params.json"); err == nil {
		t.Errorf("missing params file should error")
	}
	if _, err := LoadCircuit("/nonexistent/circuit.json"); err == nil {
		t.Errorf("missing circuit file should error")
	}
}

func TestParamsExecuteEndToEnd(t *testing.T) {
	p := Default()
	p.Workload = circuit.Spec{Name: "e2e", Qubits: 32, OneQubitGates: 8, TwoQubitGates: 60}
	p.Runs = 3
	cfg, err := p.ToCoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 3 || rep.Parallel.Mean <= 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestParamsBackendRoundTrip(t *testing.T) {
	p := Default()
	p.Workload = circuit.Spec{Name: "be", Qubits: 16, TwoQubitGates: 12}
	p.Backend = "shuttle"
	p.Shuttle = &shuttle.Params{SplitMicros: 5, MergeMicros: 6, MovePerHopMicros: 7, RecoolMicros: 8}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Backend != "shuttle" || got.Shuttle == nil || *got.Shuttle != *p.Shuttle {
		t.Fatalf("round trip mismatch: %+v (shuttle %+v)", got, got.Shuttle)
	}
	cfg, err := got.ToCoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	sb, ok := cfg.Backend.(shuttle.Backend)
	if !ok || sb.Params != *p.Shuttle {
		t.Fatalf("core backend = %#v", cfg.Backend)
	}
}

func TestToCoreConfigRejectsBadBackend(t *testing.T) {
	base := Default()
	base.Workload = circuit.Spec{Name: "bad", Qubits: 16, TwoQubitGates: 12}

	p := base
	p.Backend = "bogus"
	if _, err := p.ToCoreConfig(); !verr.IsInput(err) {
		t.Errorf("unknown backend: err = %v, want input-kind", err)
	}

	p = base
	p.Backend = "shuttle"
	p.Shuttle = &shuttle.Params{SplitMicros: -1}
	if _, err := p.ToCoreConfig(); !verr.IsInput(err) {
		t.Errorf("negative shuttle cost: err = %v, want input-kind", err)
	}

	// A shuttle block under the default weak-link backend is still
	// validated — bad costs never load silently.
	p = base
	p.Shuttle = &shuttle.Params{RecoolMicros: -3}
	if _, err := p.ToCoreConfig(); !verr.IsInput(err) {
		t.Errorf("bad costs under weak-link backend: err = %v, want input-kind", err)
	}
}
