// Package config provides JSON persistence for VelociTI's boundary
// conditions and circuits, mirroring the original tool's "functionality to
// configure, save, and load existing circuits to the software via json
// configuration files" (§V-A).
//
// Params captures everything in Table I's configured section plus the
// policy and replication choices; it converts to a core.Config for
// execution. Circuits round-trip through a stable gate-list JSON schema.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"velociti/internal/circuit"
	"velociti/internal/core"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/schedule"
	"velociti/internal/shuttle"
	"velociti/internal/ti"
	"velociti/internal/verr"
)

// Params is the serializable form of a simulation configuration.
type Params struct {
	// Workload is the abstract circuit description (Table I: number of
	// qubits, 1-qubit gates q, 2-qubit gates p).
	Workload circuit.Spec `json:"workload"`
	// ChainLength is the maximum ions per chain.
	ChainLength int `json:"chain_length"`
	// Topology is "ring" (default) or "line".
	Topology string `json:"topology,omitempty"`
	// Latencies is the Table III timing model (δ, γ, α).
	Latencies perf.Latencies `json:"latencies"`
	// Placement names the qubit-placement policy: "random" (default),
	// "round-robin", or "sequential".
	Placement string `json:"placement,omitempty"`
	// Placer names the gate-placement policy: "random" (default),
	// "weak-avoiding", "load-balanced", "edge-constrained", or the
	// search-based "annealed".
	Placer string `json:"placer,omitempty"`
	// Runs is the number of randomized trials (default 35).
	Runs int `json:"runs,omitempty"`
	// Seed is the master random seed.
	Seed int64 `json:"seed,omitempty"`
	// Backend names the timing backend: "weaklink" (default; cross-chain
	// gates at α·γ) or "shuttle" (explicit ion transport: split +
	// per-hop move + merge + recool + local γ).
	Backend string `json:"backend,omitempty"`
	// Shuttle prices the shuttle backend's transport primitives; nil
	// selects shuttle.Default(). It is validated whenever present, even
	// under the weaklink backend, so a config that carries bad costs is
	// rejected regardless of which backend is selected.
	Shuttle *shuttle.Params `json:"shuttle,omitempty"`
	// Stream selects the memory-bounded streaming evaluation path
	// (core.Config.Stream): bit-identical results at any gate count, minus
	// per-trial critical paths.
	Stream bool `json:"stream,omitempty"`
}

// Default returns the paper's evaluation configuration: Table III
// latencies, 16-ion chains, ring topology, random policies, 35 runs.
func Default() Params {
	return Params{
		ChainLength: 16,
		Topology:    ti.Ring.String(),
		Latencies:   perf.DefaultLatencies(),
		Placement:   "random",
		Placer:      "random",
		Runs:        core.DefaultRuns,
	}
}

// placementByName resolves the placement policy names accepted in configs.
func placementByName(name string) (placement.Policy, error) {
	switch name {
	case "", "random":
		return placement.Random{}, nil
	case "round-robin":
		return placement.RoundRobin{}, nil
	case "sequential":
		return placement.Sequential{}, nil
	default:
		return nil, verr.Inputf("config: unknown placement policy %q (want random, round-robin, or sequential)", name)
	}
}

// ShuttleParams resolves the effective shuttle transport costs: the
// configured ones when present, shuttle.Default() otherwise.
func (p Params) ShuttleParams() shuttle.Params {
	if p.Shuttle != nil {
		return *p.Shuttle
	}
	return shuttle.Default()
}

// ToCoreConfig resolves the named policies and returns an executable
// core.Config.
func (p Params) ToCoreConfig() (core.Config, error) {
	return p.ToCoreConfigWithCircuit(nil)
}

// ToCoreConfigWithCircuit resolves like ToCoreConfig and, when c is
// non-nil, attaches it as an explicit gate-level workload (the configured
// abstract workload is then ignored).
func (p Params) ToCoreConfigWithCircuit(c *circuit.Circuit) (core.Config, error) {
	return p.toCoreConfig(c, nil)
}

// ToCoreConfigWithProgram resolves like ToCoreConfig and attaches prog as
// a generator-driven workload (core.Config.Program) — the streaming
// counterpart of an explicit circuit.
func (p Params) ToCoreConfigWithProgram(prog *circuit.Program) (core.Config, error) {
	return p.toCoreConfig(nil, prog)
}

func (p Params) toCoreConfig(c *circuit.Circuit, prog *circuit.Program) (core.Config, error) {
	topoName := p.Topology
	if topoName == "" {
		topoName = ti.Ring.String()
	}
	topo, err := ti.ParseTopology(topoName)
	if err != nil {
		return core.Config{}, err
	}
	pol, err := placementByName(p.Placement)
	if err != nil {
		return core.Config{}, err
	}
	lat := p.Latencies
	if lat == (perf.Latencies{}) {
		lat = perf.DefaultLatencies()
	}
	placerName := p.Placer
	if placerName == "" {
		placerName = "random"
	}
	placer, err := schedule.ByName(placerName, lat)
	if err != nil {
		return core.Config{}, err
	}
	if p.Shuttle != nil {
		if err := p.Shuttle.Validate(); err != nil {
			return core.Config{}, err
		}
	}
	backend, err := shuttle.ByName(p.Backend, p.ShuttleParams())
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		Spec:        p.Workload,
		Circuit:     c,
		Program:     prog,
		ChainLength: p.ChainLength,
		Topology:    topo,
		Latencies:   lat,
		Placement:   pol,
		Placer:      placer,
		Runs:        p.Runs,
		Seed:        p.Seed,
		Backend:     backend,
		Stream:      p.Stream,
	}
	return cfg, cfg.Validate()
}

// Write serializes the params as indented JSON.
func (p Params) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// Save writes the params to a file.
func (p Params) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return p.Write(f)
}

// ReadParams parses params from JSON. Unknown fields are rejected to catch
// config typos early. All failures are input-kind errors: a config file is
// untrusted input.
func ReadParams(r io.Reader) (Params, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Params
	if err := dec.Decode(&p); err != nil {
		return Params{}, verr.Inputf("config: parsing params: %w", err)
	}
	return p, nil
}

// LoadParams reads params from a file.
func LoadParams(path string) (Params, error) {
	f, err := os.Open(path)
	if err != nil {
		return Params{}, verr.Mark(err)
	}
	defer f.Close()
	return ReadParams(f)
}

// gateJSON is the serialized form of one gate.
type gateJSON struct {
	Kind   string    `json:"kind"`
	Qubits []int     `json:"qubits"`
	Params []float64 `json:"params,omitempty"`
}

// circuitJSON is the serialized form of a circuit.
type circuitJSON struct {
	Name   string     `json:"name"`
	Qubits int        `json:"qubits"`
	Gates  []gateJSON `json:"gates"`
}

// WriteCircuit serializes a circuit as indented JSON.
func WriteCircuit(w io.Writer, c *circuit.Circuit) error {
	out := circuitJSON{
		Name:   c.Name,
		Qubits: c.NumQubits(),
		Gates:  make([]gateJSON, 0, c.NumGates()),
	}
	for _, g := range c.Gates() {
		out.Gates = append(out.Gates, gateJSON{
			Kind:   g.Kind.Name(),
			Qubits: g.Qubits,
			Params: g.Params,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SaveCircuit writes a circuit to a file.
func SaveCircuit(path string, c *circuit.Circuit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteCircuit(f, c)
}

// ReadCircuit parses a circuit from JSON, validating gate kinds, arities,
// and qubit ranges through the circuit builder's sticky-error contract.
// Every rejection is an input-kind diagnostic; no JSON input can panic.
func ReadCircuit(r io.Reader) (*circuit.Circuit, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var in circuitJSON
	if err := dec.Decode(&in); err != nil {
		return nil, verr.Inputf("config: parsing circuit: %w", err)
	}
	if in.Qubits <= 0 {
		return nil, verr.Inputf("config: circuit %q has non-positive qubit count %d", in.Name, in.Qubits)
	}
	out := circuit.New(in.Name, in.Qubits)
	for i, g := range in.Gates {
		kind, ok := circuit.KindByName(g.Kind)
		if !ok {
			return nil, verr.Inputf("config: circuit %q gate %d: unknown kind %q", in.Name, i, g.Kind)
		}
		if out.Append(kind, g.Qubits, g.Params...) < 0 {
			return nil, fmt.Errorf("config: circuit %q gate %d: %w", in.Name, i, out.Err())
		}
	}
	return out, nil
}

// LoadCircuit reads a circuit from a file.
func LoadCircuit(path string) (*circuit.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, verr.Mark(err)
	}
	defer f.Close()
	return ReadCircuit(f)
}
