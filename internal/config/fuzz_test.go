package config

import (
	"bytes"
	"testing"

	"velociti/internal/verr"
)

// FuzzReadCircuit drives the JSON circuit loader with arbitrary bytes.
// No input may panic: either the bytes decode into a well-formed circuit,
// or the loader returns an input-kind diagnostic.
func FuzzReadCircuit(f *testing.F) {
	f.Add([]byte(`{"name":"bell","qubits":2,"gates":[{"kind":"H","qubits":[0]},{"kind":"CX","qubits":[0,1]}]}`))
	f.Add([]byte(`{"name":"rot","qubits":1,"gates":[{"kind":"RZ","qubits":[0],"params":[1.5707]}]}`))
	f.Add([]byte(`{"name":"bad-kind","qubits":1,"gates":[{"kind":"WARP","qubits":[0]}]}`))
	f.Add([]byte(`{"name":"bad-index","qubits":2,"gates":[{"kind":"H","qubits":[9]}]}`))
	f.Add([]byte(`{"qubits":0,"gates":[]}`))
	f.Add([]byte(`{not json`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte{0x00, 0xff, 0x7b})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCircuit(bytes.NewReader(data))
		if err != nil {
			if !verr.IsInput(err) {
				t.Fatalf("rejection is not an input-kind error: %v", err)
			}
			return
		}
		if c.Err() != nil {
			t.Fatalf("ReadCircuit returned nil error but a poisoned circuit: %v", c.Err())
		}
		if c.NumQubits() <= 0 {
			t.Fatalf("accepted circuit has non-positive width %d", c.NumQubits())
		}
	})
}

// FuzzReadParams drives the JSON params loader. Beyond the no-panic
// invariant, any params that decode must survive ToCoreConfig without
// panicking — validation failures there must be errors too.
func FuzzReadParams(f *testing.F) {
	f.Add([]byte(`{"chain_length":16,"topology":"ring","runs":5,"seed":1}`))
	f.Add([]byte(`{"workload":{"name":"w","qubits":8,"two_qubit_gates":12},"chain_length":8}`))
	f.Add([]byte(`{"latencies":{"one_qubit":1,"two_qubit":100,"weak_penalty":2}}`))
	f.Add([]byte(`{"chain_length":-4}`))
	f.Add([]byte(`{"topology":"torus"}`))
	f.Add([]byte(`{"placement":"bogus"}`))
	f.Add([]byte(`{not json`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadParams(bytes.NewReader(data))
		if err != nil {
			if !verr.IsInput(err) {
				t.Fatalf("rejection is not an input-kind error: %v", err)
			}
			return
		}
		// Decoded params may still be semantically invalid; turning them
		// into a core config must reject with an error, never panic.
		_, _ = p.ToCoreConfig()
	})
}
