package expt

import (
	"context"
	"fmt"

	"velociti/internal/apps"
	"velociti/internal/circuit"
	"velociti/internal/core"
	"velociti/internal/placement"
	"velociti/internal/schedule"
	"velociti/internal/shuttle"
	"velociti/internal/stats"
	"velociti/internal/ti"
)

// AblationRow compares one policy variant.
type AblationRow struct {
	Variant   string
	Parallel  stats.Summary // µs
	WeakGates stats.Summary
	Speedup   float64 // mean serial / mean parallel
}

// AblationResult is one ablation study over policy variants.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// Table renders the ablation as ASCII.
func (r *AblationResult) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Variant, ms(row.Parallel.Mean), ms(row.Parallel.Min), ms(row.Parallel.Max),
			fmt.Sprintf("%.1f", row.WeakGates.Mean), fmt.Sprintf("%.1fx", row.Speedup),
		})
	}
	return renderTable(r.Name,
		[]string{"Variant", "Parallel [ms]", "min", "max", "weak gates", "vs serial"}, rows)
}

// CSV renders the ablation as CSV.
func (r *AblationResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Variant,
			fmt.Sprintf("%.3f", row.Parallel.Mean), fmt.Sprintf("%.3f", row.Parallel.Min), fmt.Sprintf("%.3f", row.Parallel.Max),
			fmt.Sprintf("%.2f", row.WeakGates.Mean), fmt.Sprintf("%.3f", row.Speedup),
		})
	}
	return renderCSV([]string{"variant", "parallel_us", "parallel_min_us", "parallel_max_us", "weak_gates", "speedup_vs_serial"}, rows)
}

func ablationRow(ctx context.Context, variant string, cfg core.Config) (AblationRow, error) {
	rep, err := core.RunContext(ctx, cfg)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Variant:   variant,
		Parallel:  rep.Parallel,
		WeakGates: rep.WeakGates,
		Speedup:   rep.MeanSpeedup(),
	}, nil
}

// AblationSchedulers compares the paper's random gate placement against
// the weak-avoiding and load-balanced extensions on the densest Table II
// workload (QAOA), quantifying how much of the random-scheduling
// performance loss smarter schedulers recover (§VI-B's motivation).
func AblationSchedulers(opt Options) (*AblationResult, error) {
	return AblationSchedulersContext(context.Background(), opt)
}

// AblationSchedulersContext is AblationSchedulers with cancellation.
func AblationSchedulersContext(ctx context.Context, opt Options) (*AblationResult, error) {
	opt = opt.normalized()
	spec := apps.PaperSpecs()[1] // QAOA: highest 2q-gate pressure per qubit after QFT
	res := &AblationResult{Name: "Ablation: gate scheduling policy (QAOA, 16-ion chains)"}
	for _, placer := range schedule.All(opt.Latencies) {
		cfg := opt.baseConfig(spec, 16)
		cfg.Placer = placer
		row, err := ablationRow(ctx, placer.Name(), cfg)
		if err != nil {
			return nil, fmt.Errorf("expt: scheduler ablation %s: %w", placer.Name(), err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationPlacement compares qubit-placement policies on an explicit
// gate-level circuit (the 8×8 Supremacy workload, whose grid structure
// gives interaction-aware placement real locality to exploit).
func AblationPlacement(opt Options) (*AblationResult, error) {
	return AblationPlacementContext(context.Background(), opt)
}

// AblationPlacementContext is AblationPlacement with cancellation.
func AblationPlacementContext(ctx context.Context, opt Options) (*AblationResult, error) {
	opt = opt.normalized()
	c, err := apps.Supremacy(8, 8, 20, opt.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("expt: placement ablation workload: %w", err)
	}
	ig := c.InteractionGraph()
	variants := []struct {
		name string
		pol  placement.Policy
	}{
		{"random", placement.Random{}},
		{"sequential", placement.Sequential{}},
		{"interaction-aware", placement.InteractionAware{Interactions: ig}},
		// Local search from a random start gets stuck on grid workloads;
		// seeded with the greedy result it can only improve on it.
		{"refined(random)", placement.Refined{Interactions: ig}},
		{"refined(greedy)", placement.Refined{Base: placement.InteractionAware{Interactions: ig}, Interactions: ig}},
	}
	res := &AblationResult{Name: "Ablation: qubit placement policy (gate-level Supremacy, 16-ion chains)"}
	for _, v := range variants {
		cfg := core.Config{
			Circuit:     c,
			ChainLength: 16,
			Latencies:   opt.Latencies,
			Placement:   v.pol,
			Runs:        opt.Runs,
			Seed:        opt.Seed,
			Pipeline:    opt.Pipeline,
			Backend:     opt.Backend,
		}
		row, err := ablationRow(ctx, v.name, cfg)
		if err != nil {
			return nil, fmt.Errorf("expt: placement ablation %s: %w", v.name, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// CommRow is one weak-link-penalty point of the communication-mechanism
// comparison.
type CommRow struct {
	Alpha     float64
	WeakMs    float64 // mean parallel time with weak-link gates at α·γ
	ShuttleMs float64 // mean parallel time with ion shuttling (α-independent)
	Winner    string
}

// CommResult compares photonic weak links against physical ion shuttling
// across the Table III α sweep.
type CommResult struct {
	Name string
	Rows []CommRow
	// BreakEvenAlpha is the analytic single-hop crossover.
	BreakEvenAlpha float64
}

// Table renders the comparison as ASCII.
func (r *CommResult) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", row.Alpha),
			fmt.Sprintf("%.2f", row.WeakMs),
			fmt.Sprintf("%.2f", row.ShuttleMs),
			row.Winner,
		})
	}
	t := renderTable(r.Name, []string{"α", "weak link [ms]", "shuttling [ms]", "winner"}, rows)
	t += fmt.Sprintf("analytic single-hop break-even: α = %.2f\n", r.BreakEvenAlpha)
	return t
}

// CSV renders the comparison as CSV.
func (r *CommResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%g", row.Alpha),
			fmt.Sprintf("%.3f", row.WeakMs),
			fmt.Sprintf("%.3f", row.ShuttleMs),
			row.Winner,
		})
	}
	return renderCSV([]string{"alpha", "weak_link_ms", "shuttle_ms", "winner"}, rows)
}

// AblationComm compares the paper's weak-link model against the QCCD
// shuttling alternative (internal/shuttle) on the QAOA workload across the
// α sweep: as the photonic link degrades (α grows), physical transport
// becomes the better mechanism. Per-trial circuits and placements are
// shared between the two mechanisms.
func AblationComm(opt Options) (*CommResult, error) {
	return AblationCommContext(context.Background(), opt)
}

// AblationCommContext is AblationComm with cancellation.
func AblationCommContext(ctx context.Context, opt Options) (*CommResult, error) {
	opt = opt.normalized()
	spec := apps.PaperSpecs()[1] // QAOA
	params := shuttle.Default()
	breakEven, err := params.BreakEvenAlpha(opt.Latencies)
	if err != nil {
		return nil, err
	}
	res := &CommResult{
		Name:           "Ablation: cross-chain communication mechanism (QAOA, 16-ion chains)",
		BreakEvenAlpha: breakEven,
	}
	// The per-trial circuit and placement depend only on the seed, never on
	// α, so synthesize each trial once and re-price it under every α —
	// shuttle.Compare sees the identical (circuit, layout) pair the per-α
	// loop used to rebuild.
	type commTrial struct {
		c      *circuit.Circuit
		layout *ti.Layout
	}
	device, err := ti.DeviceFor(spec.Qubits, 16, ti.Ring)
	if err != nil {
		return nil, err
	}
	trials := make([]commTrial, opt.Runs)
	for i := range trials {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := stats.NewRand(stats.SplitSeed(opt.Seed, i))
		layout, err := placement.Random{}.Place(device, spec.Qubits, r)
		if err != nil {
			return nil, err
		}
		c, err := schedule.Random{}.Place(spec, layout, r)
		if err != nil {
			return nil, err
		}
		trials[i] = commTrial{c: c, layout: layout}
	}
	// Extend the sweep above Table III's range to expose the crossover.
	alphas := append(append([]float64{}, ScalingAlphas...), 3.0, 4.0, 5.0)
	for _, alpha := range alphas {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lat := opt.Latencies
		lat.WeakPenalty = alpha
		var weakSum, shuttleSum float64
		for _, tr := range trials {
			cmp, err := shuttle.Compare(tr.c, tr.layout, lat, params)
			if err != nil {
				return nil, err
			}
			weakSum += cmp.WeakLinkMicros
			shuttleSum += cmp.ShuttleMicros
		}
		row := CommRow{
			Alpha:     alpha,
			WeakMs:    weakSum / float64(opt.Runs) / 1000,
			ShuttleMs: shuttleSum / float64(opt.Runs) / 1000,
		}
		if row.WeakMs <= row.ShuttleMs {
			row.Winner = "weak link"
		} else {
			row.Winner = "shuttling"
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationTopology compares the paper's ring of weak links against a line.
// Under the calibrated model a cross-chain gate costs a flat α·γ wherever
// the chains sit, so topology is only visible where it changes the
// scheduler's choices — the edge-constrained regime, where a line's
// missing wraparound link removes cross-chain pair options (and the w of
// Eq. 2 drops from c to c−1).
func AblationTopology(opt Options) (*AblationResult, error) {
	return AblationTopologyContext(context.Background(), opt)
}

// AblationTopologyContext is AblationTopology with cancellation.
func AblationTopologyContext(ctx context.Context, opt Options) (*AblationResult, error) {
	opt = opt.normalized()
	spec := circuit.Spec{Name: "ratio2-64q", Qubits: 64, OneQubitGates: 64, TwoQubitGates: 128}
	res := &AblationResult{Name: "Ablation: weak-link topology (64-qubit 2:1 circuit, 16-ion chains, edge-constrained placer)"}
	for _, topo := range []ti.Topology{ti.Ring, ti.Line} {
		cfg := opt.baseConfig(spec, 16)
		cfg.Topology = topo
		cfg.Placer = schedule.EdgeConstrained{}
		row, err := ablationRow(ctx, topo.String(), cfg)
		if err != nil {
			return nil, fmt.Errorf("expt: topology ablation %s: %w", topo, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
