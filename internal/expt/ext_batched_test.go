package expt

// Driver-level bit-exactness pins for the extension studies' batched
// pricing: each test re-derives a study's numbers with the per-item
// kernels the drivers used before batching (Model.EstimateBinding per
// trial, ParallelTimeConstrained per level) and requires float equality,
// not tolerance. The kernel-level contracts are pinned in the fidelity
// and perf packages; these tests pin the drivers' wiring on top.

import (
	"math"
	"testing"

	"velociti/internal/apps"
	"velociti/internal/core"
	"velociti/internal/fidelity"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/schedule"
	"velociti/internal/stats"
	"velociti/internal/ti"
)

func TestExtFidelityMatchesPerTrialOracle(t *testing.T) {
	opt := Options{Runs: 3, Seed: 123}
	got, err := ExtFidelityContext(t.Context(), opt)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: the pre-batching driver loop, priced with EstimateBinding.
	opt = opt.normalized()
	model := fidelity.Default()
	for ri, spec := range apps.PaperSpecs() {
		row := got.Rows[ri]
		for li, L := range got.ChainLengths {
			st, err := core.NewStages(opt.baseConfig(spec, L))
			if err != nil {
				t.Fatal(err)
			}
			var parSum, logSum, errSum float64
			for i := 0; i < opt.Runs; i++ {
				b, err := st.Bind(stats.SplitSeed(opt.Seed, i))
				if err != nil {
					t.Fatal(err)
				}
				est, err := model.EstimateBinding(b, opt.Latencies)
				if err != nil {
					t.Fatal(err)
				}
				parSum += est.MakespanMicros
				logSum += est.LogTotal
				errSum += est.ExpectedErrors
			}
			n := float64(opt.Runs)
			if want := parSum / n / 1000; row.ParallelMs[li] != want {
				t.Errorf("%s L=%d: ParallelMs %v != oracle %v", spec.Name, L, row.ParallelMs[li], want)
			}
			if want := logSum / n; row.LogFidelity[li] != want {
				t.Errorf("%s L=%d: LogFidelity bits %x != oracle %x", spec.Name, L,
					math.Float64bits(row.LogFidelity[li]), math.Float64bits(want))
			}
			if want := errSum / n; row.ExpectedErrors[li] != want {
				t.Errorf("%s L=%d: ExpectedErrors %v != oracle %v", spec.Name, L, row.ExpectedErrors[li], want)
			}
		}
	}
}

func TestExtControlCapacityMatchesPerLevelOracle(t *testing.T) {
	opt := Options{Runs: 3, Seed: 77}
	got, err := ExtControlCapacityContext(t.Context(), opt)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: the pre-batching driver loop — a fresh generator per trial
	// and one ParallelTimeConstrained call per capacity level.
	opt = opt.normalized()
	for ri, spec := range apps.PaperSpecs() {
		device, err := ti.DeviceFor(spec.Qubits, 16, ti.Ring)
		if err != nil {
			t.Fatal(err)
		}
		sums := make([]float64, len(CapacityLevels))
		for i := 0; i < opt.Runs; i++ {
			r := stats.NewRand(stats.SplitSeed(opt.Seed, i))
			layout, err := placement.Random{}.Place(device, spec.Qubits, r)
			if err != nil {
				t.Fatal(err)
			}
			c, err := schedule.Random{}.Place(spec, layout, r)
			if err != nil {
				t.Fatal(err)
			}
			for k, capacity := range CapacityLevels {
				pt, err := perf.ParallelTimeConstrained(c, layout, opt.Latencies, capacity)
				if err != nil {
					t.Fatal(err)
				}
				sums[k] += pt
			}
		}
		row := got.Rows[ri]
		for k := range CapacityLevels {
			if want := sums[k] / float64(opt.Runs) / 1000; row.ParallelMs[k] != want {
				t.Errorf("%s K=%d: ParallelMs bits %x != oracle %x", spec.Name, CapacityLevels[k],
					math.Float64bits(row.ParallelMs[k]), math.Float64bits(want))
			}
		}
	}
}
