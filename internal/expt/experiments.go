package expt

import (
	"context"
	"fmt"
	"time"

	"velociti/internal/apps"
	"velociti/internal/circuit"
	"velociti/internal/core"
	"velociti/internal/perf"
	"velociti/internal/pool"
	"velociti/internal/stats"
	"velociti/internal/ti"
	"velociti/internal/workload"
)

// Options configures the experiment drivers.
type Options struct {
	// Runs is the number of randomized trials per data point; zero
	// selects the paper's 35.
	Runs int
	// Seed is the master seed for all randomness.
	Seed int64
	// Latencies is the timing model; the zero value selects Table III.
	Latencies perf.Latencies
	// Workers bounds the experiment drivers' concurrency (results are
	// bit-identical at any worker count); zero runs serially. Drivers
	// with many independent data points (Fig6, Fig7, the Fig8/9 scaling
	// studies) spread the points themselves across the shared worker
	// pool; single-point drivers pass the budget down to core.Run's
	// trial pool instead.
	Workers int
	// Pipeline, when non-nil, is the shared stage-artifact store threaded
	// into every simulation the drivers run (except Fig5, which measures
	// cold simulation wall time). Caching never changes any figure —
	// artifacts are content-keyed — it only skips recomputation of
	// layouts, synthesized circuits, and gate-class bindings that repeat
	// across cells.
	Pipeline *core.Pipeline
	// Backend is the timing backend every driver prices with; nil selects
	// the weak-link model (the paper's). Alternate backends reproduce the
	// same tables under their own timing semantics — figures are then
	// comparable across backends, not to the paper.
	Backend perf.TimingBackend
}

func (o Options) normalized() Options {
	if o.Runs <= 0 {
		o.Runs = core.DefaultRuns
	}
	if o.Latencies == (perf.Latencies{}) {
		o.Latencies = perf.DefaultLatencies()
	}
	return o
}

// baseConfig builds the standard evaluation configuration: random
// placement and scheduling on an area-optimized ring of chains.
func (o Options) baseConfig(spec circuit.Spec, chainLength int) core.Config {
	return core.Config{
		Spec:        spec,
		ChainLength: chainLength,
		Topology:    ti.Ring,
		Latencies:   o.Latencies,
		Runs:        o.Runs,
		Seed:        o.Seed,
		Workers:     o.Workers,
		Pipeline:    o.Pipeline,
		Backend:     o.Backend,
	}
}

// ---- Table I ----

// TableI renders the model-parameter table for a concrete workload and
// machine: the configured parameters (q, p, δ, γ, α·γ, opt) and the
// computed ones (c, w_max, and the mean w over opt.Runs trials).
func TableI(opt Options, spec circuit.Spec, chainLength int) (string, error) {
	return TableIContext(context.Background(), opt, spec, chainLength)
}

// TableIContext is TableI with cancellation.
func TableIContext(ctx context.Context, opt Options, spec circuit.Spec, chainLength int) (string, error) {
	opt = opt.normalized()
	rep, err := core.RunContext(ctx, opt.baseConfig(spec, chainLength))
	if err != nil {
		return "", fmt.Errorf("expt: table I: %w", err)
	}
	lat := opt.Latencies
	rows := [][]string{
		{"configured", "q", "number of 1-qubit gates", itoa(spec.OneQubitGates)},
		{"", "p", "number of 2-qubit gates", itoa(spec.TwoQubitGates)},
		{"", "δ", "latency for 1-qubit gate [µs]", ftoa(lat.OneQubit)},
		{"", "γ", "latency for 2-qubit gate inside chain [µs]", ftoa(lat.TwoQubit)},
		{"", "αγ", "latency for 2-qubit gate between chains [µs]", ftoa(lat.WeakPenalty * lat.TwoQubit)},
		{"", "opt", "chain optimization target", "area (minimal chains)"},
		{"computed", "c", "number of chains", itoa(rep.Device.NumChains)},
		{"", "w_max", "maximum number of weak links", itoa(rep.Device.MaxWeakLinks)},
		{"", "w", "number of weak links used (mean)", fmt.Sprintf("%.1f", rep.LinksUsed.Mean)},
	}
	title := fmt.Sprintf("Table I: model parameters for %s on %d-ion chains", spec.Name, chainLength)
	return renderTable(title, []string{"", "parameter", "meaning", "value"}, rows), nil
}

// ---- Table II ----

// TableII renders the application attributes used in the evaluation.
func TableII() string {
	rows := make([][]string, 0, 6)
	for _, s := range apps.PaperSpecs() {
		rows = append(rows, []string{s.Name, itoa(s.Qubits), itoa(s.TwoQubitGates)})
	}
	return renderTable("Table II: applications with attributes used in the evaluation",
		[]string{"Application", "Qubits", "2-qubit Gates"}, rows)
}

// ---- Table III ----

// TableIII renders the evaluation's gate latencies.
func TableIII(lat perf.Latencies) string {
	rows := [][]string{
		{"Latency for 1-qubit gate [us]", ftoa(lat.OneQubit)},
		{"Latency for 2-qubit gate [us]", ftoa(lat.TwoQubit)},
		{"Penalty for weak link (swept 2.0 .. 1.0)", ftoa(lat.WeakPenalty)},
	}
	return renderTable("Table III: latency of gates in the evaluation", []string{"Gate Latencies", "Value"}, rows)
}

// ---- Figure 5 ----

// Fig5Row is one bar of the tool-runtime study: the mean wall-clock time to
// simulate one random circuit of the given size.
type Fig5Row struct {
	Spec        circuit.Spec
	MeanSeconds float64
}

// Fig5Result is the software-runtime-versus-circuit-size study.
type Fig5Result struct {
	Rows []Fig5Row
	// ScalingFactor is the ratio of the largest grid point's runtime to
	// the smallest's. The paper measured 9.89× between (25q, 100g) and
	// (100q, 400g) for the Python implementation; the Go implementation
	// is much faster in absolute terms, so the shape is the comparable
	// quantity.
	ScalingFactor float64
}

// Fig5 measures this implementation's simulation wall time over the
// paper's circuit-size grid. Each data point runs opt.Runs simulations of
// a fresh random circuit and reports the mean per-simulation time.
func Fig5(opt Options) (*Fig5Result, error) {
	return Fig5Context(context.Background(), opt)
}

// Fig5Context is Fig5 with cancellation.
func Fig5Context(ctx context.Context, opt Options) (*Fig5Result, error) {
	opt = opt.normalized()
	// Fig5's measured quantity is cold simulation wall time; a warm
	// artifact cache would measure cache lookups instead, so the pipeline
	// is deliberately not attached here.
	opt.Pipeline = nil
	res := &Fig5Result{}
	for _, spec := range workload.Fig5Grid() {
		cfg := opt.baseConfig(spec, 16)
		start := time.Now() //vet:allow determinism -- Fig5 reproduces the paper's tool-runtime study: the wall clock IS the measured quantity
		if _, err := core.RunContext(ctx, cfg); err != nil {
			return nil, fmt.Errorf("expt: fig5 %s: %w", spec.Name, err)
		}
		elapsed := time.Since(start).Seconds() / float64(opt.Runs) //vet:allow determinism -- Fig5 reproduces the paper's tool-runtime study: the wall clock IS the measured quantity
		res.Rows = append(res.Rows, Fig5Row{Spec: spec, MeanSeconds: elapsed})
	}
	if first, last := res.Rows[0].MeanSeconds, res.Rows[len(res.Rows)-1].MeanSeconds; first > 0 {
		res.ScalingFactor = last / first
	}
	return res, nil
}

// Table renders the study as ASCII.
func (r *Fig5Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			itoa(row.Spec.Qubits), itoa(row.Spec.TwoQubitGates),
			fmt.Sprintf("%.6f", row.MeanSeconds),
		})
	}
	t := renderTable("Figure 5: simulation wall time vs circuit size",
		[]string{"Qubits", "2q Gates", "Mean sim time [s]"}, rows)
	return t + fmt.Sprintf("scaling factor (largest/smallest): %.2fx (paper: 9.89x in Python)\n", r.ScalingFactor)
}

// CSV renders the study as CSV.
func (r *Fig5Result) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			itoa(row.Spec.Qubits), itoa(row.Spec.TwoQubitGates),
			fmt.Sprintf("%.9f", row.MeanSeconds),
		})
	}
	return renderCSV([]string{"qubits", "two_qubit_gates", "mean_sim_seconds"}, rows)
}

// ---- Figure 6 ----

// Fig6Row is one application's serial and parallel estimate.
type Fig6Row struct {
	App      string
	Serial   stats.Summary // µs
	Parallel stats.Summary // µs
	Speedup  float64       // mean serial / mean parallel
}

// Fig6Result is Case Study 1: best estimated performance on a fixed
// machine (16-ion chains, area-optimized, random scheduling).
type Fig6Result struct {
	Rows []Fig6Row
	// ArithMeanSerialMs / ArithMeanParallelMs are arithmetic means of the
	// per-app mean times, in ms.
	ArithMeanSerialMs   float64
	ArithMeanParallelMs float64
	// GeoMeanSerialMs / GeoMeanParallelMs are geometric means — the
	// aggregation consistent with the paper's reported 69.3 ms / 11.2 ms
	// (the arithmetic means are dominated by QFT's 403 ms).
	GeoMeanSerialMs   float64
	GeoMeanParallelMs float64
	// GeoMeanSpeedup aggregates per-app speedups (paper: 6.2×).
	GeoMeanSpeedup float64
}

// Fig6 runs the six Table II applications through both models on 16-ion
// chains. Applications are independent data points and run across the
// worker pool.
func Fig6(opt Options) (*Fig6Result, error) {
	return Fig6Context(context.Background(), opt)
}

// Fig6Context is Fig6 with cancellation.
func Fig6Context(ctx context.Context, opt Options) (*Fig6Result, error) {
	opt = opt.normalized()
	res := &Fig6Result{}
	specs := apps.PaperSpecs()
	res.Rows = make([]Fig6Row, len(specs))
	err := pool.Run(ctx, opt.Workers, len(specs), func(i int) error {
		spec := specs[i]
		// The pool budget is spent across applications here; per-point
		// trials run serially to avoid nesting worker pools.
		cfg := opt.baseConfig(spec, 16)
		cfg.Workers = 1
		rep, err := core.RunContext(ctx, cfg)
		if err != nil {
			return fmt.Errorf("expt: fig6 %s: %w", spec.Name, err)
		}
		res.Rows[i] = Fig6Row{
			App:      spec.Name,
			Serial:   rep.Serial,
			Parallel: rep.Parallel,
			Speedup:  rep.MeanSpeedup(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var serials, parallels, speedups []float64
	for _, row := range res.Rows {
		serials = append(serials, row.Serial.Mean)
		parallels = append(parallels, row.Parallel.Mean)
		speedups = append(speedups, row.Speedup)
	}
	res.ArithMeanSerialMs = stats.Summarize(serials).Mean / 1000
	res.ArithMeanParallelMs = stats.Summarize(parallels).Mean / 1000
	res.GeoMeanSerialMs = stats.GeoMean(serials) / 1000
	res.GeoMeanParallelMs = stats.GeoMean(parallels) / 1000
	res.GeoMeanSpeedup = stats.GeoMean(speedups)
	return res, nil
}

// Table renders Case Study 1 as ASCII.
func (r *Fig6Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.App,
			ms(row.Serial.Mean), ms(row.Serial.Min), ms(row.Serial.Max),
			ms(row.Parallel.Mean), ms(row.Parallel.Min), ms(row.Parallel.Max),
			fmt.Sprintf("%.1fx", row.Speedup),
		})
	}
	t := renderTable("Figure 6: estimated performance on 16-ion chains (times in ms)",
		[]string{"App", "Serial", "S.min", "S.max", "Parallel", "P.min", "P.max", "Speedup"}, rows)
	t += fmt.Sprintf("geomean serial %.1f ms, geomean parallel %.1f ms, geomean speedup %.1fx (paper: 69.3 ms, 11.2 ms, 6.2x)\n",
		r.GeoMeanSerialMs, r.GeoMeanParallelMs, r.GeoMeanSpeedup)
	return t
}

// CSV renders Case Study 1 as CSV.
func (r *Fig6Result) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.App,
			fmt.Sprintf("%.3f", row.Serial.Mean), fmt.Sprintf("%.3f", row.Serial.Min), fmt.Sprintf("%.3f", row.Serial.Max),
			fmt.Sprintf("%.3f", row.Parallel.Mean), fmt.Sprintf("%.3f", row.Parallel.Min), fmt.Sprintf("%.3f", row.Parallel.Max),
			fmt.Sprintf("%.3f", row.Speedup),
		})
	}
	return renderCSV([]string{"app", "serial_us", "serial_min_us", "serial_max_us",
		"parallel_us", "parallel_min_us", "parallel_max_us", "speedup"}, rows)
}

// ---- Figure 7 ----

// Fig7ChainLengths is the presently achievable chain-length range swept in
// Case Study 2's first experiment.
var Fig7ChainLengths = []int{8, 16, 24, 32}

// Fig7Row is one application's parallel time across chain lengths.
type Fig7Row struct {
	App      string
	Parallel []stats.Summary // µs, aligned with Fig7ChainLengths
	// Speedup8to32 is time(L=8)/time(L=32) − 1, the improvement from the
	// shortest to the longest achievable chain (paper: 20% average, 11%
	// for BV).
	Speedup8to32 float64
}

// Fig7Result is the chain-length sweep over the Table II applications.
type Fig7Result struct {
	ChainLengths []int
	Rows         []Fig7Row
	// AvgSpeedup8to32 averages the per-app improvement (paper: 20%).
	AvgSpeedup8to32 float64
}

// Fig7 sweeps chain length over the application suite, parallel model only
// (the paper disregards the serial model here as consistently worse). The
// (application × chain length) product forms independent data points that
// run across the worker pool.
func Fig7(opt Options) (*Fig7Result, error) {
	return Fig7Context(context.Background(), opt)
}

// Fig7Context is Fig7 with cancellation.
func Fig7Context(ctx context.Context, opt Options) (*Fig7Result, error) {
	opt = opt.normalized()
	res := &Fig7Result{ChainLengths: Fig7ChainLengths}
	specs := apps.PaperSpecs()
	nL := len(res.ChainLengths)
	cells := make([]stats.Summary, len(specs)*nL)
	err := pool.Run(ctx, opt.Workers, len(cells), func(i int) error {
		spec, L := specs[i/nL], res.ChainLengths[i%nL]
		cfg := opt.baseConfig(spec, L)
		cfg.Workers = 1
		rep, err := core.RunContext(ctx, cfg)
		if err != nil {
			return fmt.Errorf("expt: fig7 %s L=%d: %w", spec.Name, L, err)
		}
		cells[i] = rep.Parallel
		return nil
	})
	if err != nil {
		return nil, err
	}
	var improvements []float64
	for si, spec := range specs {
		row := Fig7Row{App: spec.Name, Parallel: cells[si*nL : (si+1)*nL]}
		first := row.Parallel[0].Mean
		last := row.Parallel[len(row.Parallel)-1].Mean
		if last > 0 {
			row.Speedup8to32 = first/last - 1
		}
		improvements = append(improvements, row.Speedup8to32)
		res.Rows = append(res.Rows, row)
	}
	res.AvgSpeedup8to32 = stats.Summarize(improvements).Mean
	return res, nil
}

// Table renders the sweep as ASCII.
func (r *Fig7Result) Table() string {
	headers := []string{"App"}
	for _, L := range r.ChainLengths {
		headers = append(headers, fmt.Sprintf("L=%d [ms]", L))
	}
	headers = append(headers, "8→32 speedup")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.App}
		for _, s := range row.Parallel {
			cells = append(cells, ms(s.Mean))
		}
		cells = append(cells, pct(row.Speedup8to32))
		rows = append(rows, cells)
	}
	t := renderTable("Figure 7: parallel time vs chain length", headers, rows)
	t += fmt.Sprintf("average speedup from chain length 8 to 32: %s (paper: 20%%, BV 11%%)\n", pct(r.AvgSpeedup8to32))
	return t
}

// CSV renders the sweep as CSV.
func (r *Fig7Result) CSV() string {
	headers := []string{"app"}
	for _, L := range r.ChainLengths {
		headers = append(headers, fmt.Sprintf("parallel_us_L%d", L))
	}
	headers = append(headers, "speedup_8_to_32")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.App}
		for _, s := range row.Parallel {
			cells = append(cells, fmt.Sprintf("%.3f", s.Mean))
		}
		cells = append(cells, fmt.Sprintf("%.4f", row.Speedup8to32))
		rows = append(rows, cells)
	}
	return renderCSV(headers, rows)
}

// ---- Figures 8 and 9 (shared scaling-study machinery) ----

// ScalingChainLengths is the beyond-achievable chain-length sweep of
// Figures 8(a)/9(a): 32 ions doubled to 64 in increments of 8.
var ScalingChainLengths = []int{32, 40, 48, 56, 64}

// ScalingAlphas is the weak-link penalty sweep of Figures 8(b)/9(b)
// (Table III's penalty row).
var ScalingAlphas = []float64{2.0, 1.8, 1.6, 1.4, 1.2, 1.0}

// ScalingResult is a chain-length × α scaling study over a qubit sweep
// (Figure 8 for quantum volume, Figure 9 for 2:1-ratio circuits).
type ScalingResult struct {
	Name   string
	Qubits []int
	// ByChain[i][j] is the parallel-time summary for Qubits[i] at
	// ScalingChainLengths[j], α = 2.
	ByChain [][]stats.Summary
	// ByAlpha[i][j] is the summary for Qubits[i] at ScalingAlphas[j],
	// chain length 32.
	ByAlpha [][]stats.Summary
	// ChainSpeedups[i] is time(L=32)/time(L=64) − 1 for Qubits[i].
	ChainSpeedups []float64
	// AlphaSpeedups[i] is time(α=2)/time(α=1) − 1 for Qubits[i].
	AlphaSpeedups []float64
	// Averages of the two speedup series.
	AvgChainSpeedup float64
	AvgAlphaSpeedup float64
	// MaxRelSpread is the largest (max−mean)/mean across all cells — the
	// paper observes this surpassing 50% for quantum volume.
	MaxRelSpread float64
}

// scalingAlphaLats expands ScalingAlphas into the timing models of the (b)
// panel: the base model with only WeakPenalty varied.
func scalingAlphaLats(base perf.Latencies) []perf.Latencies {
	lats := make([]perf.Latencies, len(ScalingAlphas))
	for j, alpha := range ScalingAlphas {
		lats[j] = base
		lats[j].WeakPenalty = alpha
	}
	return lats
}

// runScaling executes the scaling study for the given spec generator. Each
// spec contributes one worker-pool job per chain length plus a single α-sweep
// job: the six α cells differ only in WeakPenalty, so they share one pass of
// placement, synthesis, and gate classification through core.RunSweepContext
// and re-price just the timing model per α (RunSweep(cfg, lats)[j] is pinned
// bit-identical to Run with cfg.Latencies = lats[j], which is exactly what
// the per-α cells computed before). Aggregation happens afterwards in
// deterministic order, so results are identical at any worker count.
func runScaling(ctx context.Context, name string, opt Options, specs []circuit.Spec) (*ScalingResult, error) {
	opt = opt.normalized()
	res := &ScalingResult{Name: name}
	nChain, nAlpha := len(ScalingChainLengths), len(ScalingAlphas)
	perSpec := nChain + nAlpha
	alphaLats := scalingAlphaLats(opt.Latencies)
	cells := make([]stats.Summary, len(specs)*perSpec)
	jobsPerSpec := nChain + 1 // chain cells, plus one sweep covering every α
	err := pool.Run(ctx, opt.Workers, len(specs)*jobsPerSpec, func(i int) error {
		si, k := i/jobsPerSpec, i%jobsPerSpec
		spec := specs[si]
		if k < nChain {
			L := ScalingChainLengths[k]
			cfg := opt.baseConfig(spec, L)
			cfg.Workers = 1
			rep, err := core.RunContext(ctx, cfg)
			if err != nil {
				return fmt.Errorf("expt: %s chain L=%d %s: %w", name, L, spec.Name, err)
			}
			cells[si*perSpec+k] = rep.Parallel
			return nil
		}
		cfg := opt.baseConfig(spec, 32)
		cfg.Workers = 1
		reps, err := core.RunSweepContext(ctx, cfg, alphaLats)
		if err != nil {
			return fmt.Errorf("expt: %s alpha sweep %s: %w", name, spec.Name, err)
		}
		for j, rep := range reps {
			cells[si*perSpec+nChain+j] = rep.Parallel
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, spec := range specs {
		res.Qubits = append(res.Qubits, spec.Qubits)
		chainRow := cells[si*perSpec : si*perSpec+nChain]
		alphaRow := cells[si*perSpec+nChain : (si+1)*perSpec]
		for _, s := range chainRow {
			if sp := s.RelativeSpread(); sp > res.MaxRelSpread {
				res.MaxRelSpread = sp
			}
		}
		for _, s := range alphaRow {
			if sp := s.RelativeSpread(); sp > res.MaxRelSpread {
				res.MaxRelSpread = sp
			}
		}
		res.ByChain = append(res.ByChain, chainRow)
		res.ByAlpha = append(res.ByAlpha, alphaRow)
		chainImp := 0.0
		if last := chainRow[len(chainRow)-1].Mean; last > 0 {
			chainImp = chainRow[0].Mean/last - 1
		}
		alphaImp := 0.0
		if last := alphaRow[len(alphaRow)-1].Mean; last > 0 {
			alphaImp = alphaRow[0].Mean/last - 1
		}
		res.ChainSpeedups = append(res.ChainSpeedups, chainImp)
		res.AlphaSpeedups = append(res.AlphaSpeedups, alphaImp)
	}
	res.AvgChainSpeedup = stats.Summarize(res.ChainSpeedups).Mean
	res.AvgAlphaSpeedup = stats.Summarize(res.AlphaSpeedups).Mean
	return res, nil
}

// Fig8 runs the quantum-volume scaling study (N qubits, N/2 2-qubit
// gates, N = 8 … 128).
func Fig8(opt Options) (*ScalingResult, error) {
	return Fig8Context(context.Background(), opt)
}

// Fig8Context is Fig8 with cancellation.
func Fig8Context(ctx context.Context, opt Options) (*ScalingResult, error) {
	specs, err := workload.QVSweep(8, 128, 20)
	if err != nil {
		return nil, fmt.Errorf("expt: figure 8 workload: %w", err)
	}
	return runScaling(ctx, "Figure 8 (quantum volume)", opt, specs)
}

// Fig9 runs the 2:1-ratio scaling study (N qubits, 2N 2-qubit gates).
func Fig9(opt Options) (*ScalingResult, error) {
	return Fig9Context(context.Background(), opt)
}

// Fig9Context is Fig9 with cancellation.
func Fig9Context(ctx context.Context, opt Options) (*ScalingResult, error) {
	specs, err := workload.RatioSweep(8, 128, 20, 2)
	if err != nil {
		return nil, fmt.Errorf("expt: figure 9 workload: %w", err)
	}
	return runScaling(ctx, "Figure 9 (2:1 ratio circuits)", opt, specs)
}

// Table renders both panels of the scaling study.
func (r *ScalingResult) Table() string {
	headers := []string{"Qubits"}
	for _, L := range ScalingChainLengths {
		headers = append(headers, fmt.Sprintf("L=%d", L))
	}
	headers = append(headers, "32→64")
	rows := make([][]string, 0, len(r.Qubits))
	for i, n := range r.Qubits {
		cells := []string{itoa(n)}
		for _, s := range r.ByChain[i] {
			cells = append(cells, ms(s.Mean))
		}
		cells = append(cells, pct(r.ChainSpeedups[i]))
		rows = append(rows, cells)
	}
	t := renderTable(r.Name+" (a): parallel time [ms] vs chain length (α=2)", headers, rows)

	headers = []string{"Qubits"}
	for _, a := range ScalingAlphas {
		headers = append(headers, fmt.Sprintf("α=%.1f", a))
	}
	headers = append(headers, "2.0→1.0")
	rows = rows[:0]
	for i, n := range r.Qubits {
		cells := []string{itoa(n)}
		for _, s := range r.ByAlpha[i] {
			cells = append(cells, ms(s.Mean))
		}
		cells = append(cells, pct(r.AlphaSpeedups[i]))
		rows = append(rows, cells)
	}
	t += renderTable(r.Name+" (b): parallel time [ms] vs weak-link penalty (L=32)", headers, rows)
	t += fmt.Sprintf("avg chain-length speedup %s, avg α speedup %s, max run spread %s\n",
		pct(r.AvgChainSpeedup), pct(r.AvgAlphaSpeedup), pct(r.MaxRelSpread))
	return t
}

// CSV renders both panels as one CSV with a panel column.
func (r *ScalingResult) CSV() string {
	headers := []string{"panel", "qubits", "knob", "parallel_us_mean", "parallel_us_min", "parallel_us_max"}
	var rows [][]string
	for i, n := range r.Qubits {
		for j, L := range ScalingChainLengths {
			s := r.ByChain[i][j]
			rows = append(rows, []string{"chain", itoa(n), itoa(L),
				fmt.Sprintf("%.3f", s.Mean), fmt.Sprintf("%.3f", s.Min), fmt.Sprintf("%.3f", s.Max)})
		}
		for j, a := range ScalingAlphas {
			s := r.ByAlpha[i][j]
			rows = append(rows, []string{"alpha", itoa(n), ftoa(a),
				fmt.Sprintf("%.3f", s.Mean), fmt.Sprintf("%.3f", s.Min), fmt.Sprintf("%.3f", s.Max)})
		}
	}
	return renderCSV(headers, rows)
}
