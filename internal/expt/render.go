// Package expt reproduces every table and figure of the VelociTI paper's
// evaluation (§V-B and §VI): the application table (Table II), the latency
// configuration (Table III), the tool-runtime scaling study (Figure 5),
// Case Study 1's serial-versus-parallel comparison (Figure 6), the
// chain-length sweep (Figure 7), the quantum-volume scaling study
// (Figure 8), and the 2:1-ratio scaling study (Figure 9), plus the ablation
// experiments DESIGN.md calls out for the extension policies.
//
// Every driver takes Options (replication count, seed, latencies) and
// returns a typed result that renders as an aligned ASCII table and as
// CSV, so cmd/velociti-repro can regenerate the paper's data series
// verbatim and EXPERIMENTS.md can quote them.
package expt

import (
	"fmt"
	"strings"
)

// renderTable lays out rows under headers with aligned columns.
func renderTable(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// renderCSV emits headers plus rows as comma-separated values. Cells
// containing commas or quotes are quoted.
func renderCSV(headers []string, rows [][]string) string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// ms renders microseconds as milliseconds with 2 decimals, the unit of the
// paper's figures.
func ms(us float64) string {
	return fmt.Sprintf("%.2f", us/1000)
}

// pct renders a fraction as a percentage with 1 decimal.
func pct(f float64) string {
	return fmt.Sprintf("%.1f%%", f*100)
}

func itoa(i int) string { return fmt.Sprintf("%d", i) }

func ftoa(f float64) string { return fmt.Sprintf("%g", f) }
