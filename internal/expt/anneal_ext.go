package expt

// Extension experiment: search-based placement. The paper's placement
// policies are constructive (random, round-robin, greedy
// interaction-aware); PR 9's delta-evaluation stack makes a search-based
// policy affordable, so this driver quantifies what simulated annealing
// over the actual parallel-time objective buys on the gate-level Fig 6–9
// application drivers. Unlike InteractionAware — which minimizes the
// cross-chain gate count, a proxy — the annealed policy minimizes the
// dependency-DAG longest path itself (see internal/placement.AnnealLayout).

import (
	"context"
	"fmt"

	"velociti/internal/apps"
	"velociti/internal/circuit"
	"velociti/internal/core"
	"velociti/internal/placement"
)

// annealAblationMoves is the swap budget per annealing run in the ablation:
// large enough that the search converges on the 64-qubit drivers (the
// default 32·n budget leaves it well short of the constructive policies).
const annealAblationMoves = 20000

// AblationAnnealedPlacement compares annealed placement against the
// random, round-robin, and greedy interaction-aware policies on explicit
// gate-level workloads from the application catalog, plus the hybrid that
// refines the interaction-aware layout by annealing.
func AblationAnnealedPlacement(opt Options) (*AblationResult, error) {
	return AblationAnnealedPlacementContext(context.Background(), opt)
}

// AblationAnnealedPlacementContext is AblationAnnealedPlacement with
// cancellation.
func AblationAnnealedPlacementContext(ctx context.Context, opt Options) (*AblationResult, error) {
	opt = opt.normalized()
	qft, err := apps.QFT(32)
	if err != nil {
		return nil, fmt.Errorf("expt: annealed ablation workload: %w", err)
	}
	sup, err := apps.Supremacy(8, 8, 20, opt.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("expt: annealed ablation workload: %w", err)
	}
	res := &AblationResult{Name: "Extension: search-based (annealed) placement vs constructive policies (16-ion chains)"}
	for _, c := range []*circuit.Circuit{qft, sup} {
		ig := c.InteractionGraph()
		variants := []struct {
			name string
			pol  placement.Policy
		}{
			{"random", placement.Random{}},
			{"round-robin", placement.RoundRobin{}},
			{"interaction-aware", placement.InteractionAware{Interactions: ig}},
			{"annealed", placement.Annealed{Circuit: c, Backend: opt.Backend, Latencies: opt.Latencies, Moves: annealAblationMoves}},
			{"interaction+annealed", placement.Annealed{Circuit: c, Base: placement.InteractionAware{Interactions: ig}, Backend: opt.Backend, Latencies: opt.Latencies, Moves: annealAblationMoves}},
		}
		for _, v := range variants {
			cfg := core.Config{
				Circuit:     c,
				ChainLength: 16,
				Latencies:   opt.Latencies,
				Placement:   v.pol,
				Runs:        opt.Runs,
				Seed:        opt.Seed,
				Pipeline:    opt.Pipeline,
				Backend:     opt.Backend,
			}
			row, err := ablationRow(ctx, c.Name+"/"+v.name, cfg)
			if err != nil {
				return nil, fmt.Errorf("expt: annealed ablation %s %s: %w", c.Name, v.name, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}
