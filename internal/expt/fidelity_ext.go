package expt

import (
	"context"
	"fmt"
	"math"

	"velociti/internal/apps"
	"velociti/internal/core"
	"velociti/internal/fidelity"
	"velociti/internal/stats"
)

// FidelityRow is one application's timing/fidelity trade-off across chain
// lengths.
type FidelityRow struct {
	App string
	// ParallelMs[i] is the mean parallel time at Fig7ChainLengths[i].
	ParallelMs []float64
	// LogFidelity[i] is the mean natural-log success probability at
	// Fig7ChainLengths[i] (log-domain: these underflow linearly, not to
	// zero).
	LogFidelity []float64
	// ExpectedErrors[i] is the mean expected gate-error count.
	ExpectedErrors []float64
}

// FidelityResult is the chain-length sweep of the fidelity extension: the
// same knob the paper sweeps for performance (Figure 7) also governs the
// error budget, because longer chains mean fewer weak-link gates and the
// weak link is the noisiest operation (Murali et al.'s central fidelity
// observation, reproduced inside VelociTI's abstractions).
type FidelityResult struct {
	ChainLengths []int
	Rows         []FidelityRow
	// AvgErrorReduction is the mean fractional drop in expected errors
	// from the shortest to the longest chain.
	AvgErrorReduction float64
}

// ExtFidelity sweeps chain length over the Table II applications and
// reports both axes: parallel time and estimated fidelity.
func ExtFidelity(opt Options) (*FidelityResult, error) {
	return ExtFidelityContext(context.Background(), opt)
}

// ExtFidelityContext is ExtFidelity with cancellation. Trials run through
// the stage pipeline: the (application × chain length) grid here is exactly
// Figure 7's, so with a shared Options.Pipeline the layouts, circuits, and
// bindings are reused rather than regenerated, and only the fidelity pricing
// is new work. Pricing rides the batched estimator: one Estimator tabulates
// the per-class error terms for the whole study, and EstimateOne is pinned
// bit-identical to Model.EstimateBinding (which is itself pinned to Estimate
// on the trial's (circuit, layout) pair), so the figures are unchanged.
func ExtFidelityContext(ctx context.Context, opt Options) (*FidelityResult, error) {
	opt = opt.normalized()
	model, err := fidelity.NewEstimator(fidelity.Default())
	if err != nil {
		return nil, err
	}
	res := &FidelityResult{ChainLengths: Fig7ChainLengths}
	var reductions []float64
	for _, spec := range apps.PaperSpecs() {
		row := FidelityRow{App: spec.Name}
		for _, L := range res.ChainLengths {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			st, err := core.NewStages(opt.baseConfig(spec, L))
			if err != nil {
				return nil, err
			}
			var parSum, logSum, errSum float64
			for i := 0; i < opt.Runs; i++ {
				b, err := st.Bind(stats.SplitSeed(opt.Seed, i))
				if err != nil {
					return nil, err
				}
				est, err := model.EstimateOne(b, opt.Latencies)
				if err != nil {
					return nil, err
				}
				parSum += est.MakespanMicros
				logSum += est.LogTotal
				errSum += est.ExpectedErrors
			}
			n := float64(opt.Runs)
			row.ParallelMs = append(row.ParallelMs, parSum/n/1000)
			row.LogFidelity = append(row.LogFidelity, logSum/n)
			row.ExpectedErrors = append(row.ExpectedErrors, errSum/n)
		}
		first := row.ExpectedErrors[0]
		last := row.ExpectedErrors[len(row.ExpectedErrors)-1]
		if first > 0 {
			reductions = append(reductions, 1-last/first)
		}
		res.Rows = append(res.Rows, row)
	}
	res.AvgErrorReduction = stats.Summarize(reductions).Mean
	return res, nil
}

// Table renders the extension study as ASCII.
func (r *FidelityResult) Table() string {
	headers := []string{"App"}
	for _, L := range r.ChainLengths {
		headers = append(headers, fmt.Sprintf("errs L=%d", L))
	}
	headers = append(headers, "ln(fid) L=8", fmt.Sprintf("ln(fid) L=%d", r.ChainLengths[len(r.ChainLengths)-1]))
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.App}
		for _, e := range row.ExpectedErrors {
			cells = append(cells, fmt.Sprintf("%.1f", e))
		}
		cells = append(cells,
			fmt.Sprintf("%.1f", row.LogFidelity[0]),
			fmt.Sprintf("%.1f", row.LogFidelity[len(row.LogFidelity)-1]))
		rows = append(rows, cells)
	}
	t := renderTable("Extension: expected gate errors and log-fidelity vs chain length", headers, rows)
	t += fmt.Sprintf("average expected-error reduction from L=8 to L=32: %s\n", pct(r.AvgErrorReduction))
	return t
}

// CSV renders the extension study as CSV.
func (r *FidelityResult) CSV() string {
	headers := []string{"app", "chain_length", "parallel_ms", "log_fidelity", "expected_errors"}
	var rows [][]string
	for _, row := range r.Rows {
		for i, L := range r.ChainLengths {
			rows = append(rows, []string{
				row.App, itoa(L),
				fmt.Sprintf("%.3f", row.ParallelMs[i]),
				fmt.Sprintf("%.3f", row.LogFidelity[i]),
				fmt.Sprintf("%.3f", row.ExpectedErrors[i]),
			})
		}
	}
	return renderCSV(headers, rows)
}

// sanity guard used by tests: log-fidelity must be finite everywhere.
func (r *FidelityResult) finite() bool {
	for _, row := range r.Rows {
		for _, v := range row.LogFidelity {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}
