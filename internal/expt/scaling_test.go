package expt

import (
	"context"
	"reflect"
	"testing"

	"velociti/internal/core"
	"velociti/internal/workload"
)

// TestScalingAlphaPanelMatchesPerCellRuns pins the restructured α panel:
// runScaling now prices all of ScalingAlphas through one core.RunSweep per
// spec, and every cell must stay bit-identical to what the old per-α
// core.Run cells computed.
func TestScalingAlphaPanelMatchesPerCellRuns(t *testing.T) {
	opt := Options{Runs: 3, Seed: 11}.normalized()
	specs, err := workload.QVSweep(8, 40, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runScaling(context.Background(), "test", opt, specs)
	if err != nil {
		t.Fatal(err)
	}
	for si, spec := range specs {
		for j, alpha := range ScalingAlphas {
			cfg := opt.baseConfig(spec, 32)
			cfg.Latencies.WeakPenalty = alpha
			cfg.Workers = 1
			rep, err := core.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.ByAlpha[si][j], rep.Parallel) {
				t.Errorf("spec %s α=%g: sweep cell diverges from per-cell run", spec.Name, alpha)
			}
		}
	}
}

// TestScalingWithPipelineMatchesWithout checks that attaching a shared
// artifact store to the scaling study changes nothing but the work done: the
// L=32 chain cells and the α sweep share (spec, seed) bindings, so the Bind
// cache must see hits, and every figure must stay bit-identical.
func TestScalingWithPipelineMatchesWithout(t *testing.T) {
	specs, err := workload.QVSweep(8, 40, 16)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Runs: 3, Seed: 5}
	want, err := runScaling(context.Background(), "test", base, specs)
	if err != nil {
		t.Fatal(err)
	}
	cached := base
	cached.Pipeline = core.NewPipeline()
	cached.Workers = 6
	got, err := runScaling(context.Background(), "test", cached, specs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("pipeline-attached scaling study diverges from uncached")
	}
	if st := cached.Pipeline.Stats(); st.Bind.Hits == 0 {
		t.Fatalf("expected Bind cache hits between the L=32 cell and the α sweep, got stats %+v", st)
	}
}

// TestDriversHonorCancelledContext checks every *Context entry point returns
// promptly with an error when its context is already cancelled.
func TestDriversHonorCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{Runs: 2, Seed: 1}
	drivers := map[string]func() error{
		"tableI": func() error {
			_, err := TableIContext(ctx, opt, workload.Random(8, 16), 4)
			return err
		},
		"fig5": func() error { _, err := Fig5Context(ctx, opt); return err },
		"fig6": func() error { _, err := Fig6Context(ctx, opt); return err },
		"fig7": func() error { _, err := Fig7Context(ctx, opt); return err },
		"fig8": func() error { _, err := Fig8Context(ctx, opt); return err },
		"fig9": func() error { _, err := Fig9Context(ctx, opt); return err },
		"ablation-schedulers": func() error {
			_, err := AblationSchedulersContext(ctx, opt)
			return err
		},
		"ablation-placement": func() error {
			_, err := AblationPlacementContext(ctx, opt)
			return err
		},
		"ablation-comm": func() error { _, err := AblationCommContext(ctx, opt); return err },
		"ablation-topology": func() error {
			_, err := AblationTopologyContext(ctx, opt)
			return err
		},
		"ext-fidelity": func() error { _, err := ExtFidelityContext(ctx, opt); return err },
		"ext-capacity": func() error { _, err := ExtControlCapacityContext(ctx, opt); return err },
	}
	for name, run := range drivers {
		if err := run(); err == nil {
			t.Errorf("%s: expected error from cancelled context", name)
		}
	}
}
