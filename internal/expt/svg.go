package expt

import (
	"fmt"

	"velociti/internal/stats"
	"velociti/internal/viz"
)

// SVG figure builders: each paper figure renders as a grouped bar chart
// with the paper's min/max whiskers. Times are converted to milliseconds.

func value(s stats.Summary) viz.Value {
	return viz.Value{Mean: s.Mean / 1000, Min: s.Min / 1000, Max: s.Max / 1000}
}

// SVG renders Case Study 1 (Figure 6) with a log axis, since QFT dwarfs BV
// by 60×.
func (r *Fig6Result) SVG() (string, error) {
	chart := &viz.Chart{
		Title:        "Figure 6: estimated performance per application (16-ion chains)",
		YLabel:       "execution time [ms], log scale",
		SeriesLabels: []string{"serial", "parallel"},
		LogScale:     true,
	}
	for _, row := range r.Rows {
		chart.Groups = append(chart.Groups, viz.Group{
			Label:  row.App,
			Values: []viz.Value{value(row.Serial), value(row.Parallel)},
		})
	}
	return chart.SVG()
}

// SVG renders the chain-length sweep (Figure 7).
func (r *Fig7Result) SVG() (string, error) {
	chart := &viz.Chart{
		Title:    "Figure 7: parallel time vs chain length",
		YLabel:   "execution time [ms], log scale",
		LogScale: true,
	}
	for _, L := range r.ChainLengths {
		chart.SeriesLabels = append(chart.SeriesLabels, fmt.Sprintf("L=%d", L))
	}
	for _, row := range r.Rows {
		g := viz.Group{Label: row.App}
		for _, s := range row.Parallel {
			g.Values = append(g.Values, value(s))
		}
		chart.Groups = append(chart.Groups, g)
	}
	return chart.SVG()
}

// SVGChain renders panel (a) of a scaling study: parallel time vs chain
// length across the qubit sweep.
func (r *ScalingResult) SVGChain() (string, error) {
	chart := &viz.Chart{
		Title:  r.Name + " (a): chain-length scaling",
		YLabel: "execution time [ms]",
	}
	for _, L := range ScalingChainLengths {
		chart.SeriesLabels = append(chart.SeriesLabels, fmt.Sprintf("L=%d", L))
	}
	for i, n := range r.Qubits {
		g := viz.Group{Label: fmt.Sprintf("%dq", n)}
		for _, s := range r.ByChain[i] {
			g.Values = append(g.Values, value(s))
		}
		chart.Groups = append(chart.Groups, g)
	}
	return chart.SVG()
}

// SVGAlpha renders panel (b): parallel time vs weak-link penalty.
func (r *ScalingResult) SVGAlpha() (string, error) {
	chart := &viz.Chart{
		Title:  r.Name + " (b): weak-link penalty scaling",
		YLabel: "execution time [ms]",
	}
	for _, a := range ScalingAlphas {
		chart.SeriesLabels = append(chart.SeriesLabels, fmt.Sprintf("α=%.1f", a))
	}
	for i, n := range r.Qubits {
		g := viz.Group{Label: fmt.Sprintf("%dq", n)}
		for _, s := range r.ByAlpha[i] {
			g.Values = append(g.Values, value(s))
		}
		chart.Groups = append(chart.Groups, g)
	}
	return chart.SVG()
}

// SVG renders the tool-runtime study (Figure 5) on a log axis.
func (r *Fig5Result) SVG() (string, error) {
	chart := &viz.Chart{
		Title:        "Figure 5: simulation wall time vs circuit size",
		YLabel:       "seconds per simulation, log scale",
		SeriesLabels: []string{"mean sim time"},
		LogScale:     true,
	}
	for _, row := range r.Rows {
		v := row.MeanSeconds
		chart.Groups = append(chart.Groups, viz.Group{
			Label:  fmt.Sprintf("%dq/%dg", row.Spec.Qubits, row.Spec.TwoQubitGates),
			Values: []viz.Value{{Mean: v, Min: v, Max: v}},
		})
	}
	return chart.SVG()
}
