package expt

import (
	"context"
	"fmt"

	"velociti/internal/apps"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/schedule"
	"velociti/internal/stats"
	"velociti/internal/ti"
)

// CapacityLevels is the per-chain concurrent-gate budget sweep of the
// control-capacity extension. Zero means unlimited (the paper's model).
var CapacityLevels = []int{1, 2, 4, 8, 0}

// CapacityRow is one application's sensitivity to the per-chain control
// budget.
type CapacityRow struct {
	App string
	// ParallelMs[i] is the mean constrained parallel time at
	// CapacityLevels[i].
	ParallelMs []float64
	// Slowdown1 is time(capacity=1)/time(unlimited) − the price of fully
	// serialized per-chain control.
	Slowdown1 float64
}

// CapacityResult is the control-capacity extension study: the paper's
// parallel model assumes a chain can drive unlimited simultaneous gates,
// but real systems multiplex a finite number of AOM control channels
// (§II-B mentions 32-channel AOMs). This experiment quantifies how much
// of the paper's parallel speedup survives under per-chain concurrency
// budgets.
type CapacityResult struct {
	Levels []int
	Rows   []CapacityRow
	// AvgSlowdown1 averages Slowdown1 across applications.
	AvgSlowdown1 float64
}

// ExtControlCapacity sweeps the per-chain budget over the Table II
// applications on 16-ion chains.
func ExtControlCapacity(opt Options) (*CapacityResult, error) {
	return ExtControlCapacityContext(context.Background(), opt)
}

// ExtControlCapacityContext is ExtControlCapacity with cancellation. The
// constrained scheduler needs the explicit gate list per trial, which the
// stage pipeline's bindings do not carry, so this driver keeps its own trial
// loop; pricing rides the batched kernel instead, which replays the list
// scheduler once per capacity level over a single shared event-state build.
func ExtControlCapacityContext(ctx context.Context, opt Options) (*CapacityResult, error) {
	opt = opt.normalized()
	res := &CapacityResult{Levels: CapacityLevels}
	var slowdowns []float64
	for _, spec := range apps.PaperSpecs() {
		device, err := ti.DeviceFor(spec.Qubits, 16, ti.Ring)
		if err != nil {
			return nil, err
		}
		row := CapacityRow{App: spec.Name}
		sums := make([]float64, len(CapacityLevels))
		for i := 0; i < opt.Runs; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r := stats.PooledRand(stats.SplitSeed(opt.Seed, i))
			layout, err := placement.Random{}.Place(device, spec.Qubits, r)
			if err != nil {
				stats.RecycleRand(r)
				return nil, err
			}
			c, err := schedule.Random{}.Place(spec, layout, r)
			stats.RecycleRand(r)
			if err != nil {
				return nil, err
			}
			// One batched call prices every level; entry k is pinned equal
			// to ParallelTimeConstrained at CapacityLevels[k].
			ts, err := perf.ParallelTimeConstrainedAll(c, layout, opt.Latencies, CapacityLevels)
			if err != nil {
				return nil, err
			}
			for k, t := range ts {
				sums[k] += t
			}
		}
		for _, s := range sums {
			row.ParallelMs = append(row.ParallelMs, s/float64(opt.Runs)/1000)
		}
		unlimited := row.ParallelMs[len(row.ParallelMs)-1]
		if unlimited > 0 {
			row.Slowdown1 = row.ParallelMs[0] / unlimited
		}
		slowdowns = append(slowdowns, row.Slowdown1)
		res.Rows = append(res.Rows, row)
	}
	res.AvgSlowdown1 = stats.Summarize(slowdowns).Mean
	return res, nil
}

// Table renders the study as ASCII.
func (r *CapacityResult) Table() string {
	headers := []string{"App"}
	for _, k := range r.Levels {
		if k == 0 {
			headers = append(headers, "K=∞ [ms]")
		} else {
			headers = append(headers, fmt.Sprintf("K=%d [ms]", k))
		}
	}
	headers = append(headers, "K=1 slowdown")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.App}
		for _, v := range row.ParallelMs {
			cells = append(cells, fmt.Sprintf("%.2f", v))
		}
		cells = append(cells, fmt.Sprintf("%.1fx", row.Slowdown1))
		rows = append(rows, cells)
	}
	t := renderTable("Extension: parallel time vs per-chain control capacity (16-ion chains)", headers, rows)
	t += fmt.Sprintf("average K=1 slowdown over unlimited control: %.1fx\n", r.AvgSlowdown1)
	return t
}

// CSV renders the study as CSV.
func (r *CapacityResult) CSV() string {
	headers := []string{"app", "capacity", "parallel_ms"}
	var rows [][]string
	for _, row := range r.Rows {
		for i, k := range r.Levels {
			rows = append(rows, []string{row.App, itoa(k), fmt.Sprintf("%.3f", row.ParallelMs[i])})
		}
	}
	return renderCSV(headers, rows)
}
