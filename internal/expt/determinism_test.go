package expt

import (
	"reflect"
	"testing"
)

// TestDriversBitIdenticalAcrossWorkerCounts guards the point-level worker
// pool in the multi-point experiment drivers: for a fixed seed, the full
// result structure must be reflect.DeepEqual between serial and concurrent
// execution.
func TestDriversBitIdenticalAcrossWorkerCounts(t *testing.T) {
	opt := Options{Runs: 4, Seed: 42}
	serialOpt, poolOpt := opt, opt
	serialOpt.Workers = 1
	poolOpt.Workers = 8

	t.Run("fig6", func(t *testing.T) {
		a, err := Fig6(serialOpt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Fig6(poolOpt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Fig6 differs between Workers=1 and Workers=8")
		}
	})
	t.Run("fig7", func(t *testing.T) {
		a, err := Fig7(serialOpt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Fig7(poolOpt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Fig7 differs between Workers=1 and Workers=8")
		}
	})
	t.Run("fig8", func(t *testing.T) {
		a, err := Fig8(serialOpt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Fig8(poolOpt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Fig8 differs between Workers=1 and Workers=8")
		}
	})
}
