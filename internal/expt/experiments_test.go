package expt

import (
	"strings"
	"testing"

	"velociti/internal/apps"
	"velociti/internal/circuit"
	"velociti/internal/perf"
)

// testOpts keeps experiment tests fast while preserving the qualitative
// shapes (the full 35-run versions run in the benches and cmd tools).
func testOpts() Options {
	return Options{Runs: 8, Seed: 42}
}

func TestTableIIRendering(t *testing.T) {
	out := TableII()
	for _, want := range []string{"Supremacy", "QAOA", "SquareRoot", "QFT", "Adder", "BV", "4032", "78"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIIRendering(t *testing.T) {
	out := TableIII(perf.DefaultLatencies())
	for _, want := range []string{"1-qubit", "2-qubit", "100", "weak link"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q:\n%s", want, out)
		}
	}
}

func TestFig5ShapesAndRendering(t *testing.T) {
	res, err := Fig5(Options{Runs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 grid points", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MeanSeconds < 0 {
			t.Errorf("%s: negative sim time", row.Spec.Name)
		}
	}
	// Bigger circuits must not simulate faster by an order of magnitude;
	// the paper's trend is monotonically increasing.
	if res.ScalingFactor <= 0 {
		t.Errorf("scaling factor = %v", res.ScalingFactor)
	}
	out := res.Table()
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "scaling factor") {
		t.Errorf("table malformed:\n%s", out)
	}
	csv := res.CSV()
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 5 {
		t.Errorf("csv should have header + 4 rows:\n%s", csv)
	}
}

func TestFig6PaperShapes(t *testing.T) {
	res, err := Fig6(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byApp := map[string]Fig6Row{}
	for _, row := range res.Rows {
		byApp[row.App] = row
		// Parallel beats serial for every app.
		if row.Speedup <= 1 {
			t.Errorf("%s: speedup %v, want > 1", row.App, row.Speedup)
		}
		if row.Serial.Min > row.Serial.Max || row.Parallel.Min > row.Parallel.Max {
			t.Errorf("%s: summary ordering broken", row.App)
		}
	}
	// QFT (most 2q gates) is the slowest application in both models, and
	// BV (fewest) the fastest — the paper's ordering.
	for _, row := range res.Rows {
		if row.App != "QFT" && row.Serial.Mean >= byApp["QFT"].Serial.Mean {
			t.Errorf("%s serial %v should be below QFT %v", row.App, row.Serial.Mean, byApp["QFT"].Serial.Mean)
		}
		if row.App != "BV" && row.Parallel.Mean <= byApp["BV"].Parallel.Mean {
			t.Errorf("%s parallel %v should exceed BV %v", row.App, row.Parallel.Mean, byApp["BV"].Parallel.Mean)
		}
	}
	// The aggregate speedup is several-fold (paper: 6.2x; see
	// EXPERIMENTS.md for the BV deviation that pulls ours slightly low).
	if res.GeoMeanSpeedup < 4 || res.GeoMeanSpeedup > 8 {
		t.Errorf("geomean speedup = %v, outside plausible band around 6.2x", res.GeoMeanSpeedup)
	}
	// QFT serial is 403.6 ms exactly when all 4 weak links are used
	// (Eq. 1–2 with w = 4): 4·200 + 4028·100 = 403,600 µs.
	if q := byApp["QFT"]; q.Serial.Mean < 403_000 || q.Serial.Mean > 403_600 {
		t.Errorf("QFT serial = %v µs, expected ≈ 403,600 µs (paper: 403.6 ms)", q.Serial.Mean)
	}
	// QFT parallel ≈ 74.5 ms in the paper; the model lands within a few
	// percent of it.
	if q := byApp["QFT"]; q.Parallel.Mean < 65_000 || q.Parallel.Mean > 85_000 {
		t.Errorf("QFT parallel = %v µs, expected ≈ 74,500 µs (paper: 74.5 ms)", q.Parallel.Mean)
	}
	// Geometric-mean serial time lands on the paper's 69.3 ms.
	if res.GeoMeanSerialMs < 67 || res.GeoMeanSerialMs > 72 {
		t.Errorf("geomean serial = %v ms, expected ≈ 69.3 ms", res.GeoMeanSerialMs)
	}
	// Geometric-mean parallel time lands near the paper's 11.2 ms.
	if res.GeoMeanParallelMs < 9 || res.GeoMeanParallelMs > 15 {
		t.Errorf("geomean parallel = %v ms, expected ≈ 11.2 ms", res.GeoMeanParallelMs)
	}
	out := res.Table()
	if !strings.Contains(out, "geomean") || !strings.Contains(out, "Speedup") {
		t.Errorf("table malformed:\n%s", out)
	}
	if lines := strings.Split(strings.TrimSpace(res.CSV()), "\n"); len(lines) != 7 {
		t.Errorf("csv lines = %d, want 7", len(lines))
	}
}

func TestFig7PaperShapes(t *testing.T) {
	res, err := Fig7(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 || len(res.ChainLengths) != 4 {
		t.Fatalf("shape = %dx%d", len(res.Rows), len(res.ChainLengths))
	}
	for _, row := range res.Rows {
		if len(row.Parallel) != 4 {
			t.Fatalf("%s: %d cells", row.App, len(row.Parallel))
		}
		// Longer chains help: L=32 is faster than L=8 for every app.
		if row.Parallel[3].Mean >= row.Parallel[0].Mean {
			t.Errorf("%s: L=32 (%v) not faster than L=8 (%v)", row.App, row.Parallel[3].Mean, row.Parallel[0].Mean)
		}
	}
	// Paper: 20% average speedup from chain length 8 to 32.
	if res.AvgSpeedup8to32 < 0.10 || res.AvgSpeedup8to32 > 0.35 {
		t.Errorf("average speedup = %v, expected ≈ 20%%", res.AvgSpeedup8to32)
	}
	out := res.Table()
	if !strings.Contains(out, "L=8") || !strings.Contains(out, "average speedup") {
		t.Errorf("table malformed:\n%s", out)
	}
}

func TestFig8PaperShapes(t *testing.T) {
	res, err := Fig8(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Qubits) != 7 {
		t.Fatalf("qubit sweep = %v", res.Qubits)
	}
	// Reducing α always helps: α=1 column is never slower than α=2.
	for i, n := range res.Qubits {
		row := res.ByAlpha[i]
		if row[len(row)-1].Mean > row[0].Mean {
			t.Errorf("N=%d: α=1 (%v) slower than α=2 (%v)", n, row[len(row)-1].Mean, row[0].Mean)
		}
	}
	// α scaling helps more than chain-length scaling for quantum volume
	// (paper: 24% vs trivial).
	if res.AvgAlphaSpeedup <= res.AvgChainSpeedup {
		t.Errorf("α speedup %v should exceed chain speedup %v for QV", res.AvgAlphaSpeedup, res.AvgChainSpeedup)
	}
	if res.AvgAlphaSpeedup < 0.05 {
		t.Errorf("α speedup %v implausibly small (paper: 24%%)", res.AvgAlphaSpeedup)
	}
	// Chain-length scaling is trivial for QV (paper's observation); allow
	// a loose bound.
	if res.AvgChainSpeedup > 0.20 {
		t.Errorf("chain speedup %v should be small for QV", res.AvgChainSpeedup)
	}
	// Run-to-run variance is large under random scheduling (paper: >50%
	// at 35 runs; with 8 runs demand a weaker bound).
	if res.MaxRelSpread < 0.15 {
		t.Errorf("max relative spread %v implausibly small", res.MaxRelSpread)
	}
	out := res.Table()
	for _, want := range []string{"(a)", "(b)", "α=2.0", "L=64"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(res.CSV(), "alpha,8") {
		t.Errorf("csv malformed:\n%s", res.CSV())
	}
}

func TestFig9PaperShapes(t *testing.T) {
	qv, err := Fig8(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fig9(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Denser circuits benefit more from α scaling than quantum volume
	// (paper: up to 49% vs 24% average).
	if res.AvgAlphaSpeedup <= qv.AvgAlphaSpeedup {
		t.Errorf("2:1 α speedup %v should exceed QV's %v", res.AvgAlphaSpeedup, qv.AvgAlphaSpeedup)
	}
	// The paper's 48-qubit threshold: below 48 qubits the workload fits
	// in a single 32-ion chain at every swept length, so chain scaling
	// has exactly no effect; at and above 48 qubits it becomes
	// substantial (paper: up to 34%).
	var bigChain float64
	for i, n := range res.Qubits {
		if n < 48 {
			if res.ChainSpeedups[i] != 0 {
				t.Errorf("N=%d: chain speedup %v, want exactly 0 (single chain)", n, res.ChainSpeedups[i])
			}
			continue
		}
		if res.ChainSpeedups[i] > bigChain {
			bigChain = res.ChainSpeedups[i]
		}
	}
	if bigChain < 0.10 {
		t.Errorf("max chain speedup for ≥48 qubits = %v, paper shows up to 34%%", bigChain)
	}
}

func TestAblationSchedulers(t *testing.T) {
	res, err := AblationSchedulers(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]AblationRow{}
	for _, row := range res.Rows {
		byName[row.Variant] = row
	}
	if byName["weak-avoiding"].WeakGates.Max != 0 {
		t.Errorf("weak-avoiding must never use weak links: %v", byName["weak-avoiding"].WeakGates)
	}
	if byName["edge-constrained"].WeakGates.Mean >= byName["random"].WeakGates.Mean {
		t.Errorf("edge-constrained weak gates %v should be far below random %v",
			byName["edge-constrained"].WeakGates.Mean, byName["random"].WeakGates.Mean)
	}
	if byName["load-balanced"].Parallel.Mean >= byName["random"].Parallel.Mean {
		t.Errorf("load-balanced (%v) should beat random (%v)",
			byName["load-balanced"].Parallel.Mean, byName["random"].Parallel.Mean)
	}
	if !strings.Contains(res.Table(), "scheduling") {
		t.Errorf("table malformed:\n%s", res.Table())
	}
}

func TestAblationPlacement(t *testing.T) {
	res, err := AblationPlacement(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, row := range res.Rows {
		byName[row.Variant] = row
	}
	// Interaction-aware placement must cut cross-chain traffic versus
	// random placement on the grid-structured Supremacy circuit.
	if byName["interaction-aware"].WeakGates.Mean >= byName["random"].WeakGates.Mean {
		t.Errorf("interaction-aware weak gates %v should be below random %v",
			byName["interaction-aware"].WeakGates.Mean, byName["random"].WeakGates.Mean)
	}
}

func TestAblationTopology(t *testing.T) {
	res, err := AblationTopology(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Variant != "ring" || res.Rows[1].Variant != "line" {
		t.Fatalf("variants = %v", res.Rows)
	}
	if !strings.Contains(res.CSV(), "ring") {
		t.Errorf("csv missing variants")
	}
}

func TestRenderHelpers(t *testing.T) {
	tab := renderTable("T", []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(tab, "T\n") || !strings.Contains(tab, "333") {
		t.Errorf("renderTable:\n%s", tab)
	}
	csv := renderCSV([]string{"x"}, [][]string{{`va"l,ue`}})
	if !strings.Contains(csv, `"va""l,ue"`) {
		t.Errorf("CSV quoting broken: %q", csv)
	}
	if ms(1500) != "1.50" {
		t.Errorf("ms = %q", ms(1500))
	}
	if pct(0.249) != "24.9%" {
		t.Errorf("pct = %q", pct(0.249))
	}
}

func TestAblationComm(t *testing.T) {
	res, err := AblationComm(Options{Runs: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(ScalingAlphas)+3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Shuttling time is α-independent; weak-link time grows with α. At
	// Table III's α=2 the weak link must win, and by α=5 (beyond the
	// analytic 3.7 break-even) shuttling must win.
	byAlpha := map[float64]CommRow{}
	for _, row := range res.Rows {
		byAlpha[row.Alpha] = row
	}
	if byAlpha[2.0].Winner != "weak link" {
		t.Errorf("α=2: %+v", byAlpha[2.0])
	}
	if byAlpha[5.0].Winner != "shuttling" {
		t.Errorf("α=5: %+v", byAlpha[5.0])
	}
	if res.BreakEvenAlpha < 3 || res.BreakEvenAlpha > 4.5 {
		t.Errorf("break-even α = %v", res.BreakEvenAlpha)
	}
	// Shuttle column constant across α (same seeds → same circuits).
	if byAlpha[2.0].ShuttleMs != byAlpha[1.0].ShuttleMs {
		t.Errorf("shuttle time should not depend on α: %v vs %v",
			byAlpha[2.0].ShuttleMs, byAlpha[1.0].ShuttleMs)
	}
	if !strings.Contains(res.Table(), "break-even") || !strings.Contains(res.CSV(), "winner") {
		t.Errorf("rendering broken")
	}
}

func TestTableIRendering(t *testing.T) {
	specs := []string{}
	_ = specs
	out, err := TableI(Options{Runs: 3, Seed: 1}, fig6Spec(t, "QFT"), 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table I", "number of chains", "4", "w_max", "weak links used"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

// fig6Spec fetches a Table II spec by name for test convenience.
func fig6Spec(t *testing.T, name string) circuit.Spec {
	t.Helper()
	for _, s := range apps.PaperSpecs() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("unknown app %q", name)
	return circuit.Spec{}
}

func TestAblationPlacementRefinedAtopGreedy(t *testing.T) {
	res, err := AblationPlacement(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, row := range res.Rows {
		byName[row.Variant] = row
	}
	// Refinement seeded with the greedy layout never does worse than
	// greedy alone.
	if byName["refined(greedy)"].WeakGates.Mean > byName["interaction-aware"].WeakGates.Mean {
		t.Errorf("refined(greedy) weak gates %v exceed greedy's %v",
			byName["refined(greedy)"].WeakGates.Mean, byName["interaction-aware"].WeakGates.Mean)
	}
	// And local search from random still beats raw random placement.
	if byName["refined(random)"].WeakGates.Mean >= byName["random"].WeakGates.Mean {
		t.Errorf("refined(random) weak gates %v should beat random %v",
			byName["refined(random)"].WeakGates.Mean, byName["random"].WeakGates.Mean)
	}
}

func TestExtFidelityShapes(t *testing.T) {
	res, err := ExtFidelity(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !res.finite() {
		t.Fatalf("log-fidelity not finite")
	}
	for _, row := range res.Rows {
		// Longer chains mean fewer weak gates, hence fewer expected
		// errors and higher (less negative) log-fidelity.
		n := len(row.ExpectedErrors)
		if row.ExpectedErrors[n-1] >= row.ExpectedErrors[0] {
			t.Errorf("%s: errors did not drop with chain length: %v", row.App, row.ExpectedErrors)
		}
		if row.LogFidelity[n-1] <= row.LogFidelity[0] {
			t.Errorf("%s: fidelity did not improve with chain length: %v", row.App, row.LogFidelity)
		}
	}
	if res.AvgErrorReduction < 0.2 {
		t.Errorf("average error reduction = %v, expected substantial", res.AvgErrorReduction)
	}
	if !strings.Contains(res.Table(), "error reduction") || !strings.Contains(res.CSV(), "log_fidelity") {
		t.Errorf("rendering broken")
	}
}

func TestExtControlCapacityShapes(t *testing.T) {
	res, err := ExtControlCapacity(Options{Runs: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Times fall (weakly) as capacity grows.
		for i := 1; i < len(row.ParallelMs); i++ {
			if row.ParallelMs[i] > row.ParallelMs[i-1]+1e-9 {
				t.Errorf("%s: capacity level %d slower than level %d: %v",
					row.App, i, i-1, row.ParallelMs)
			}
		}
		if row.Slowdown1 < 1 {
			t.Errorf("%s: K=1 slowdown %v below 1", row.App, row.Slowdown1)
		}
	}
	// Fully serialized control must cost something substantial on the
	// dense workloads.
	if res.AvgSlowdown1 < 1.5 {
		t.Errorf("average K=1 slowdown = %v, implausibly small", res.AvgSlowdown1)
	}
	if !strings.Contains(res.Table(), "control capacity") || !strings.Contains(res.CSV(), "capacity") {
		t.Errorf("rendering broken")
	}
}

func TestFigureSVGRenderers(t *testing.T) {
	opt := Options{Runs: 3, Seed: 4}
	f5, err := Fig5(opt)
	if err != nil {
		t.Fatal(err)
	}
	f6, err := Fig6(opt)
	if err != nil {
		t.Fatal(err)
	}
	f7, err := Fig7(opt)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := Fig8(opt)
	if err != nil {
		t.Fatal(err)
	}
	renders := map[string]func() (string, error){
		"fig5":  f5.SVG,
		"fig6":  f6.SVG,
		"fig7":  f7.SVG,
		"fig8a": f8.SVGChain,
		"fig8b": f8.SVGAlpha,
	}
	for name, render := range renders {
		out, err := render()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
			t.Errorf("%s: not an SVG document", name)
		}
	}
	// Fig7 CSV covered here too.
	if !strings.Contains(f7.CSV(), "parallel_us_L8") {
		t.Errorf("fig7 csv malformed")
	}
}
