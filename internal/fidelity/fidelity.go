// Package fidelity estimates the success probability of a placed circuit —
// an extension pairing VelociTI's timing models with the reliability
// dimension its companion literature (Murali et al., ISCA'20, the paper's
// reference [48]) identifies as the other axis of QCCD design.
//
// The model is the standard aggregate estimate: each gate succeeds
// independently with probability (1 − ε) for its class, and each qubit
// additionally dephases over the circuit's wall-clock duration with
// characteristic time T2, contributing exp(−t_idle/T2). Weak-link gates
// carry a much larger ε than intra-chain gates (the photonic interconnect
// fidelities of Stephenson et al., the paper's reference [57], are ≈ 94%
// against ≥ 99.9% for local gates), so the same weak-link pressure that
// slows a mapping also degrades it — the estimate makes that coupling
// quantitative.
//
// All probabilities are accumulated in log space so wide circuits do not
// underflow.
package fidelity

import (
	"fmt"
	"math"
	"math/rand"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/ti"
)

// Model holds per-class error rates and the coherence time.
type Model struct {
	// OneQubitError is ε for 1-qubit gates (default 1e-4, Ballance et
	// al.-class single-qubit fidelities).
	OneQubitError float64 `json:"one_qubit_error"`
	// TwoQubitError is ε for intra-chain 2-qubit gates (default 1e-3).
	TwoQubitError float64 `json:"two_qubit_error"`
	// WeakLinkError is ε for cross-chain 2-qubit gates (default 0.06,
	// the ≈94% entanglement fidelity of photonic links).
	WeakLinkError float64 `json:"weak_link_error"`
	// T2Micros is the dephasing time in µs (default 1e6 µs = 1 s; the
	// paper cites hour-scale demonstrations, but 1 s is a conservative
	// operating figure).
	T2Micros float64 `json:"t2_us"`
}

// Default returns literature-typical trapped-ion error rates.
func Default() Model {
	return Model{
		OneQubitError: 1e-4,
		TwoQubitError: 1e-3,
		WeakLinkError: 0.06,
		T2Micros:      1e6,
	}
}

// Validate reports an error for non-physical rates.
func (m Model) Validate() error {
	for _, e := range []struct {
		name string
		v    float64
	}{
		{"one-qubit error", m.OneQubitError},
		{"two-qubit error", m.TwoQubitError},
		{"weak-link error", m.WeakLinkError},
	} {
		if e.v < 0 || e.v >= 1 {
			return fmt.Errorf("fidelity: %s must be in [0,1), got %g", e.name, e.v)
		}
	}
	if m.T2Micros <= 0 {
		return fmt.Errorf("fidelity: T2 must be positive, got %g", m.T2Micros)
	}
	return nil
}

// Estimate is the fidelity breakdown of one placed circuit.
type Estimate struct {
	// GateFidelity is the product of per-gate success probabilities.
	GateFidelity float64 `json:"gate_fidelity"`
	// CoherenceFidelity is the dephasing survival over the circuit's
	// parallel execution time, across all qubits.
	CoherenceFidelity float64 `json:"coherence_fidelity"`
	// Total is the overall success probability estimate.
	Total float64 `json:"total"`
	// LogTotal is ln(Total), exact even when Total underflows to zero.
	LogTotal float64 `json:"log_total"`
	// WeakGateErrorShare is the fraction of the gate-error budget (in
	// log space) attributable to weak-link gates — how much of the
	// unreliability the interconnect causes.
	WeakGateErrorShare float64 `json:"weak_gate_error_share"`
	// ExpectedErrors is the mean number of gate errors (Σ ε).
	ExpectedErrors float64 `json:"expected_errors"`
	// MakespanMicros is the parallel execution time used for dephasing.
	MakespanMicros float64 `json:"makespan_us"`
}

// Estimate computes the success-probability breakdown of circuit c placed
// by layout l, with execution time taken from the parallel performance
// model under lat.
func (m Model) Estimate(c *circuit.Circuit, l *ti.Layout, lat perf.Latencies) (Estimate, error) {
	if err := m.Validate(); err != nil {
		return Estimate{}, err
	}
	if err := lat.Validate(); err != nil {
		return Estimate{}, err
	}
	if c.NumQubits() > l.NumQubits() {
		return Estimate{}, fmt.Errorf("fidelity: circuit has %d qubits but layout places only %d", c.NumQubits(), l.NumQubits())
	}
	var logGate, logWeak, expected float64
	for _, g := range c.Gates() {
		var eps float64
		switch {
		case !g.IsTwoQubit():
			eps = m.OneQubitError
		case l.SameChain(g.Qubits[0], g.Qubits[1]):
			eps = m.TwoQubitError
		default:
			eps = m.WeakLinkError
		}
		expected += eps
		lg := math.Log1p(-eps)
		logGate += lg
		if g.IsTwoQubit() && !l.SameChain(g.Qubits[0], g.Qubits[1]) {
			logWeak += lg
		}
	}
	makespan := perf.ParallelTime(c, l, lat)
	// Every qubit dephases for the full window; busy time is not
	// protected, which errs conservative.
	logCoherence := -float64(c.NumQubits()) * makespan / m.T2Micros
	est := Estimate{
		GateFidelity:      math.Exp(logGate),
		CoherenceFidelity: math.Exp(logCoherence),
		LogTotal:          logGate + logCoherence,
		ExpectedErrors:    expected,
		MakespanMicros:    makespan,
	}
	est.Total = math.Exp(est.LogTotal)
	if logGate != 0 {
		est.WeakGateErrorShare = logWeak / logGate
	}
	return est, nil
}

// EstimateBinding computes the same success-probability breakdown from a
// stage-pipeline binding: the per-gate latency classes already encode
// exactly the 1q / intra-chain / weak-link distinction the error model
// prices, and the classes are iterated in gate order, so every log-space
// sum — and therefore every field of the Estimate — is bit-identical to
// Estimate on the (circuit, layout) pair the binding was built from.
// Sweep engines reuse one binding across latency models; only the
// makespan-dependent dephasing term is re-priced per model.
func (m Model) EstimateBinding(b *perf.Binding, lat perf.Latencies) (Estimate, error) {
	if err := m.Validate(); err != nil {
		return Estimate{}, err
	}
	if err := lat.Validate(); err != nil {
		return Estimate{}, err
	}
	return m.estimateBindingMakespan(b, b.ParallelTime(lat)), nil
}

// EstimateBindingMakespan is EstimateBinding with the dephasing window
// supplied by the caller instead of derived from the weak-link parallel
// model — the per-cell hook for alternate timing backends, which compute
// their own makespans. EstimateBinding(b, lat) equals
// EstimateBindingMakespan(b, b.ParallelTime(lat)) exactly.
func (m Model) EstimateBindingMakespan(b *perf.Binding, makespanMicros float64) (Estimate, error) {
	if err := m.Validate(); err != nil {
		return Estimate{}, err
	}
	return m.estimateBindingMakespan(b, makespanMicros), nil
}

func (m Model) estimateBindingMakespan(b *perf.Binding, makespan float64) Estimate {
	var logGate, logWeak, expected float64
	for i := 0; i < b.NumGates(); i++ {
		var eps float64
		weak := false
		switch b.Class(i) {
		case perf.ClassOneQ:
			eps = m.OneQubitError
		case perf.ClassTwoQIntra:
			eps = m.TwoQubitError
		default:
			eps = m.WeakLinkError
			weak = true
		}
		expected += eps
		lg := math.Log1p(-eps)
		logGate += lg
		if weak {
			logWeak += lg
		}
	}
	// Every qubit dephases for the full window; busy time is not
	// protected, which errs conservative.
	logCoherence := -float64(b.NumQubits()) * makespan / m.T2Micros
	est := Estimate{
		GateFidelity:      math.Exp(logGate),
		CoherenceFidelity: math.Exp(logCoherence),
		LogTotal:          logGate + logCoherence,
		ExpectedErrors:    expected,
		MakespanMicros:    makespan,
	}
	est.Total = math.Exp(est.LogTotal)
	if logGate != 0 {
		est.WeakGateErrorShare = logWeak / logGate
	}
	return est
}

// Sample performs one Monte-Carlo execution of the placed circuit: each
// gate independently fails with its class's ε, and dephasing kills the run
// with probability 1 − exp(−n·makespan/T2). It reports whether the run
// succeeded. Used to validate the analytic Estimate (the test suite checks
// agreement to binomial tolerance) and to build success distributions.
func (m Model) Sample(c *circuit.Circuit, l *ti.Layout, lat perf.Latencies, r *rand.Rand) (bool, error) {
	est, err := m.Estimate(c, l, lat)
	if err != nil {
		return false, err
	}
	for _, g := range c.Gates() {
		var eps float64
		switch {
		case !g.IsTwoQubit():
			eps = m.OneQubitError
		case l.SameChain(g.Qubits[0], g.Qubits[1]):
			eps = m.TwoQubitError
		default:
			eps = m.WeakLinkError
		}
		if r.Float64() < eps {
			return false, nil
		}
	}
	return r.Float64() < est.CoherenceFidelity, nil
}

// SuccessRate runs `trials` Monte-Carlo executions and returns the
// observed success fraction.
func (m Model) SuccessRate(c *circuit.Circuit, l *ti.Layout, lat perf.Latencies, trials int, r *rand.Rand) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("fidelity: trials must be positive, got %d", trials)
	}
	successes := 0
	for i := 0; i < trials; i++ {
		ok, err := m.Sample(c, l, lat, r)
		if err != nil {
			return 0, err
		}
		if ok {
			successes++
		}
	}
	return float64(successes) / float64(trials), nil
}

// String renders the estimate compactly.
func (e Estimate) String() string {
	return fmt.Sprintf("fidelity %.3g (gates %.3g, coherence %.3g; %.1f expected errors, %.0f%% from weak links)",
		e.Total, e.GateFidelity, e.CoherenceFidelity, e.ExpectedErrors, e.WeakGateErrorShare*100)
}
