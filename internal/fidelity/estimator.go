package fidelity

// This file adds the batched counterpart of Model.EstimateBinding for
// latency sweeps. A binding's gate-error terms are latency-independent —
// only the dephasing window (the parallel-model makespan) changes with the
// timing model — so pricing an α axis needs the log-space gate sums once
// and one batched makespan kernel, not len(lats) full passes.
//
// Bit-exactness contract: the per-class ε and log1p(−ε) values are
// tabulated once from the same expressions EstimateBinding evaluates per
// gate, and gateTerms accumulates them in the same gate order, so
// EstimateAll(b, lats)[j] equals EstimateBinding(b, lats[j]) field for
// field, float bits included. The fidelity property tests pin this.

import (
	"fmt"
	"math"

	"velociti/internal/perf"
)

// Estimator is a reusable, preprocessed form of a Model: the per-class
// error rates and their log-space contributions are tabulated once, and the
// estimator owns scratch buffers so batched estimation is allocation-free
// in steady state. An Estimator is NOT safe for concurrent use — give each
// worker its own.
type Estimator struct {
	m   Model
	eps [perf.NumGateClasses]float64 // per-class expected-error contribution
	lg  [perf.NumGateClasses]float64 // per-class log1p(−ε) contribution

	times   []float64
	ests    []Estimate
	one     [1]perf.Latencies
	oneTime [1]float64
}

// NewEstimator validates m and tabulates its per-class terms.
func NewEstimator(m Model) (*Estimator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	e := &Estimator{m: m}
	e.eps[perf.ClassOneQ] = m.OneQubitError
	e.eps[perf.ClassTwoQIntra] = m.TwoQubitError
	e.eps[perf.ClassTwoQWeak] = m.WeakLinkError
	for c, v := range e.eps {
		e.lg[c] = math.Log1p(-v)
	}
	return e, nil
}

// Model returns the model the estimator was built from.
func (e *Estimator) Model() Model { return e.m }

// gateTerms accumulates the latency-independent log-space sums in gate
// order — the same order and operations as Model.EstimateBinding, so every
// sum is bit-identical.
func (e *Estimator) gateTerms(b *perf.Binding) (logGate, logWeak, expected float64) {
	for _, c := range b.Classes() {
		expected += e.eps[c]
		lg := e.lg[c]
		logGate += lg
		if c == perf.ClassTwoQWeak {
			logWeak += lg
		}
	}
	return logGate, logWeak, expected
}

// EstimateAll prices the binding's fidelity under every timing model in
// lats: the gate-error sums are computed once and the dephasing windows
// come from the batched parallel-time kernel. Entry j is bit-identical to
// Model.EstimateBinding(b, lats[j]). The returned slice is owned by the
// estimator and valid until its next call.
func (e *Estimator) EstimateAll(b *perf.Binding, lats []perf.Latencies) ([]Estimate, error) {
	if len(lats) == 0 {
		return nil, fmt.Errorf("fidelity: EstimateAll requires at least one timing model")
	}
	for _, lat := range lats {
		if err := lat.Validate(); err != nil {
			return nil, err
		}
	}
	e.times = b.ParallelTimeAll(lats, e.times)
	return e.estimate(b, e.times), nil
}

// EstimateTimes prices the binding's fidelity with externally supplied
// dephasing windows — the hook for alternate timing backends (the
// shuttle backend's makespans are not the weak-link parallel model's).
// Entry j uses times[j] µs as the dephasing window; the gate-error sums
// are the same latency-independent terms EstimateAll computes, so for
// equal windows the two agree bit for bit. The returned slice is owned
// by the estimator and valid until its next call.
func (e *Estimator) EstimateTimes(b *perf.Binding, times []float64) ([]Estimate, error) {
	if len(times) == 0 {
		return nil, fmt.Errorf("fidelity: EstimateTimes requires at least one makespan")
	}
	return e.estimate(b, times), nil
}

// estimate combines the binding's latency-independent gate-error terms
// with one dephasing window per entry of times.
func (e *Estimator) estimate(b *perf.Binding, times []float64) []Estimate {
	logGate, logWeak, expected := e.gateTerms(b)
	gateFid := math.Exp(logGate)
	var weakShare float64
	if logGate != 0 {
		weakShare = logWeak / logGate
	}
	if cap(e.ests) < len(times) {
		e.ests = make([]Estimate, len(times))
	}
	e.ests = e.ests[:len(times)]
	nq := float64(b.NumQubits())
	for j, makespan := range times {
		// Every qubit dephases for the full window; busy time is not
		// protected, which errs conservative.
		logCoherence := -nq * makespan / e.m.T2Micros
		est := Estimate{
			GateFidelity:       gateFid,
			CoherenceFidelity:  math.Exp(logCoherence),
			LogTotal:           logGate + logCoherence,
			WeakGateErrorShare: weakShare,
			ExpectedErrors:     expected,
			MakespanMicros:     makespan,
		}
		est.Total = math.Exp(est.LogTotal)
		e.ests[j] = est
	}
	return e.ests
}

// EstimateOne is EstimateAll for a single timing model, returning the
// estimate by value. It equals Model.EstimateBinding(b, lat) bit for bit.
func (e *Estimator) EstimateOne(b *perf.Binding, lat perf.Latencies) (Estimate, error) {
	e.one[0] = lat
	ests, err := e.EstimateAll(b, e.one[:])
	if err != nil {
		return Estimate{}, err
	}
	return ests[0], nil
}

// EstimateTime is EstimateTimes for a single dephasing window, returning
// the estimate by value. It equals Model.EstimateBindingMakespan(b,
// makespanMicros) bit for bit.
func (e *Estimator) EstimateTime(b *perf.Binding, makespanMicros float64) (Estimate, error) {
	e.oneTime[0] = makespanMicros
	ests, err := e.EstimateTimes(b, e.oneTime[:])
	if err != nil {
		return Estimate{}, err
	}
	return ests[0], nil
}
