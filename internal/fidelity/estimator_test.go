package fidelity

import (
	"strings"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/schedule"
	"velociti/internal/stats"
)

// estBinding synthesizes a representative mixed circuit and binds it, so the
// estimator tests exercise every gate class (1q, 2q, weak).
func estBinding(t *testing.T, seed int64) *perf.Binding {
	t.Helper()
	l := layout(t, 32, 8)
	s := circuit.Spec{Name: "est", Qubits: 32, OneQubitGates: 40, TwoQubitGates: 160}
	c, err := schedule.Random{}.Place(s, l, stats.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	b, err := perf.NewEvaluator(c).Bind(l)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sameEstimate(t *testing.T, label string, got, want Estimate) {
	t.Helper()
	if got != want {
		t.Fatalf("%s:\n got %+v\nwant %+v", label, got, want)
	}
}

// TestEstimateAllMatchesEstimateBinding pins the batched estimator's
// bit-exactness contract: lane j of EstimateAll equals the per-α
// EstimateBinding field for field, including at lane count 1.
func TestEstimateAllMatchesEstimateBinding(t *testing.T) {
	b := estBinding(t, 5)
	m := Default()
	e, err := NewEstimator(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, alphas := range [][]float64{{2.0}, {3.0, 2.0, 1.5, 1.2, 1.0}} {
		lats := make([]perf.Latencies, len(alphas))
		for j, a := range alphas {
			lats[j] = perf.DefaultLatencies()
			lats[j].WeakPenalty = a
		}
		ests, err := e.EstimateAll(b, lats)
		if err != nil {
			t.Fatal(err)
		}
		if len(ests) != len(lats) {
			t.Fatalf("%d estimates, want %d", len(ests), len(lats))
		}
		for j, lat := range lats {
			want, err := m.EstimateBinding(b, lat)
			if err != nil {
				t.Fatal(err)
			}
			sameEstimate(t, "EstimateAll lane", ests[j], want)
			one, err := e.EstimateOne(b, lat)
			if err != nil {
				t.Fatal(err)
			}
			sameEstimate(t, "EstimateOne", one, want)
		}
	}
}

// TestEstimatorReuse verifies the estimator's internal buffers are reusable:
// a second call with different lane counts still matches the reference.
func TestEstimatorReuse(t *testing.T) {
	b := estBinding(t, 9)
	e, err := NewEstimator(Default())
	if err != nil {
		t.Fatal(err)
	}
	wide := make([]perf.Latencies, 4)
	for j := range wide {
		wide[j] = perf.DefaultLatencies()
		wide[j].WeakPenalty = 1.0 + float64(j)
	}
	if _, err := e.EstimateAll(b, wide); err != nil {
		t.Fatal(err)
	}
	narrow := wide[:2]
	ests, err := e.EstimateAll(b, narrow)
	if err != nil {
		t.Fatal(err)
	}
	for j, lat := range narrow {
		want, err := Default().EstimateBinding(b, lat)
		if err != nil {
			t.Fatal(err)
		}
		sameEstimate(t, "after reuse", ests[j], want)
	}
}

func TestEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(Model{T2Micros: 0}); err == nil {
		t.Fatal("want error for invalid model")
	}
	b := estBinding(t, 1)
	e, err := NewEstimator(Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EstimateAll(b, nil); err == nil || !strings.Contains(err.Error(), "at least one") {
		t.Fatalf("empty lats: %v", err)
	}
	bad := []perf.Latencies{perf.DefaultLatencies()}
	bad[0].OneQubit = -1
	if _, err := e.EstimateAll(b, bad); err == nil {
		t.Fatal("want error for invalid lane latencies")
	}
}
