package fidelity

import (
	"math"
	"strings"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/schedule"
	"velociti/internal/stats"
	"velociti/internal/ti"
)

func layout(t *testing.T, qubits, chainLen int) *ti.Layout {
	t.Helper()
	d, err := ti.DeviceFor(qubits, chainLen, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	l, err := placement.Sequential{}.Place(d, qubits, nil)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestDefaultModelValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadRates(t *testing.T) {
	bad := []Model{
		{OneQubitError: -0.1, T2Micros: 1},
		{TwoQubitError: 1.0, T2Micros: 1},
		{WeakLinkError: 2, T2Micros: 1},
		{T2Micros: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d should be invalid", i)
		}
	}
}

func TestEstimateHandComputed(t *testing.T) {
	// One intra-chain CX and one weak CX on a 2x2 device.
	l := layout(t, 4, 2)
	c := circuit.New("t", 4)
	c.CX(0, 1) // same chain
	c.CX(1, 2) // cross chain
	m := Model{OneQubitError: 0, TwoQubitError: 0.01, WeakLinkError: 0.1, T2Micros: 1e12}
	est, err := m.Estimate(c, l, perf.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	wantGate := (1 - 0.01) * (1 - 0.1)
	if math.Abs(est.GateFidelity-wantGate) > 1e-12 {
		t.Fatalf("gate fidelity = %v, want %v", est.GateFidelity, wantGate)
	}
	if math.Abs(est.ExpectedErrors-0.11) > 1e-12 {
		t.Fatalf("expected errors = %v, want 0.11", est.ExpectedErrors)
	}
	// With huge T2 coherence fidelity ≈ 1 and total ≈ gate fidelity.
	if math.Abs(est.CoherenceFidelity-1) > 1e-6 {
		t.Fatalf("coherence = %v, want ≈ 1", est.CoherenceFidelity)
	}
	// Weak share: ln(0.9)/(ln(0.99)+ln(0.9)).
	wantShare := math.Log(0.9) / (math.Log(0.99) + math.Log(0.9))
	if math.Abs(est.WeakGateErrorShare-wantShare) > 1e-12 {
		t.Fatalf("weak share = %v, want %v", est.WeakGateErrorShare, wantShare)
	}
}

func TestCoherenceUsesMakespan(t *testing.T) {
	l := layout(t, 2, 2)
	c := circuit.New("t", 2)
	for i := 0; i < 10; i++ {
		c.CX(0, 1) // all intra-chain? qubits 0,1: sequential on 2x1... chainLen=2 → one chain? DeviceFor(2,2)=1 chain.
	}
	m := Default()
	est, err := m.Estimate(c, l, perf.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if est.MakespanMicros != 1000 {
		t.Fatalf("makespan = %v, want 1000", est.MakespanMicros)
	}
	wantCoh := math.Exp(-2 * 1000 / m.T2Micros)
	if math.Abs(est.CoherenceFidelity-wantCoh) > 1e-12 {
		t.Fatalf("coherence = %v, want %v", est.CoherenceFidelity, wantCoh)
	}
}

func TestWeakLinkPressureDegradesFidelity(t *testing.T) {
	// The same abstract workload on longer chains (fewer weak gates) must
	// have higher fidelity — the timing/fidelity coupling.
	spec := circuit.Spec{Name: "w", Qubits: 64, TwoQubitGates: 200}
	m := Default()
	lat := perf.DefaultLatencies()
	fidelityAt := func(chainLen int) float64 {
		d, err := ti.DeviceFor(64, chainLen, ti.Ring)
		if err != nil {
			t.Fatal(err)
		}
		r := stats.NewRand(3)
		l, err := placement.Random{}.Place(d, 64, r)
		if err != nil {
			t.Fatal(err)
		}
		c, err := schedule.Random{}.Place(spec, l, r)
		if err != nil {
			t.Fatal(err)
		}
		est, err := m.Estimate(c, l, lat)
		if err != nil {
			t.Fatal(err)
		}
		return est.LogTotal
	}
	if fidelityAt(32) <= fidelityAt(8) {
		t.Fatalf("longer chains should improve fidelity: L=32 %v vs L=8 %v", fidelityAt(32), fidelityAt(8))
	}
}

func TestLogTotalSurvivesUnderflow(t *testing.T) {
	// 20,000 weak gates at 6% error: the total underflows float64 but
	// LogTotal stays finite and exact.
	l := layout(t, 64, 16)
	c := circuit.New("big", 64)
	for i := 0; i < 20000; i++ {
		c.CX(15, 16) // cross-chain pair under sequential placement
	}
	m := Default()
	est, err := m.Estimate(c, l, perf.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if est.Total != 0 {
		t.Fatalf("total should underflow to 0, got %v", est.Total)
	}
	// Gate term plus dephasing: 64 qubits over 20000 serialized weak
	// gates of 200 µs each with T2 = 1 s.
	wantLog := 20000*math.Log1p(-0.06) - 64*(20000*200)/1e6
	if math.Abs(est.LogTotal-wantLog) > 1 {
		t.Fatalf("log total = %v, want ≈ %v", est.LogTotal, wantLog)
	}
	if math.Abs(est.WeakGateErrorShare-1) > 1e-9 {
		t.Fatalf("all error should be weak-link: share = %v", est.WeakGateErrorShare)
	}
}

func TestEstimateValidation(t *testing.T) {
	l := layout(t, 4, 2)
	c := circuit.New("t", 4)
	if _, err := (Model{T2Micros: -1}).Estimate(c, l, perf.DefaultLatencies()); err == nil {
		t.Errorf("bad model should fail")
	}
	if _, err := Default().Estimate(c, l, perf.Latencies{}); err == nil {
		t.Errorf("bad latencies should fail")
	}
	wide := circuit.New("wide", 100)
	if _, err := Default().Estimate(wide, l, perf.DefaultLatencies()); err == nil {
		t.Errorf("width mismatch should fail")
	}
}

func TestEmptyCircuitPerfectGateFidelity(t *testing.T) {
	l := layout(t, 2, 2)
	c := circuit.New("empty", 2)
	est, err := Default().Estimate(c, l, perf.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if est.GateFidelity != 1 || est.Total != 1 || est.WeakGateErrorShare != 0 {
		t.Fatalf("empty estimate = %+v", est)
	}
}

func TestEstimateString(t *testing.T) {
	l := layout(t, 4, 2)
	c := circuit.New("t", 4)
	c.CX(0, 1)
	est, _ := Default().Estimate(c, l, perf.DefaultLatencies())
	s := est.String()
	if !strings.Contains(s, "fidelity") || !strings.Contains(s, "expected errors") {
		t.Fatalf("string = %q", s)
	}
}

// Monte-Carlo sampling must agree with the analytic estimate to binomial
// tolerance.
func TestSampleAgreesWithEstimate(t *testing.T) {
	l := layout(t, 16, 8)
	c := circuit.New("mc", 16)
	r := stats.NewRand(4)
	for i := 0; i < 60; i++ {
		a, b := r.Intn(16), r.Intn(16)
		for b == a {
			b = r.Intn(16)
		}
		c.CX(a, b)
	}
	// Milder error rates so the success probability is mid-range and the
	// binomial check is informative.
	m := Model{OneQubitError: 1e-4, TwoQubitError: 2e-3, WeakLinkError: 0.01, T2Micros: 1e6}
	lat := perf.DefaultLatencies()
	est, err := m.Estimate(c, l, lat)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 20000
	rate, err := m.SuccessRate(c, l, lat, trials, stats.NewRand(99))
	if err != nil {
		t.Fatal(err)
	}
	// 5-sigma binomial band.
	sigma := math.Sqrt(est.Total * (1 - est.Total) / trials)
	if math.Abs(rate-est.Total) > 5*sigma+1e-3 {
		t.Fatalf("MC rate %v vs analytic %v (σ=%v)", rate, est.Total, sigma)
	}
}

func TestSuccessRateValidation(t *testing.T) {
	l := layout(t, 4, 2)
	c := circuit.New("t", 4)
	if _, err := Default().SuccessRate(c, l, perf.DefaultLatencies(), 0, stats.NewRand(1)); err == nil {
		t.Fatalf("zero trials should fail")
	}
	if _, err := (Model{T2Micros: -1}).SuccessRate(c, l, perf.DefaultLatencies(), 5, stats.NewRand(1)); err == nil {
		t.Fatalf("bad model should fail")
	}
}
