package analysis

// Per-function summaries: the facts the interprocedural passes need about
// a function body, computed once per module load so that keycover,
// ctxflow, and lockguard can reason across function boundaries without
// re-walking every AST per query.
//
// A summary is a deliberate over/under-approximation tuned for a lite
// checker: field reads and escapes over-approximate (a field counted as
// read may be read on a dead path), while blocking under-approximates
// for unknown callees (calls through function values and interfaces are
// assumed non-blocking — the engine cannot see their bodies). The
// fixtures pin the cases the approximations must get right.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FuncSummary is the per-function fact sheet the engine computes for
// every declared function and method of the module.
type FuncSummary struct {
	// Func is the type-checker object; Decl its declaration; Pkg the
	// declaring package.
	Func *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// FieldsRead holds every struct field object the body reads through
	// a selector, with promoted selections expanded to every field on
	// the selection path (reading r.ChainLength through an embedded
	// config.Params marks both Params and ChainLength read).
	FieldsRead map[*types.Var]bool

	// escapes holds named struct types whose values the body hands
	// whole to code the engine cannot see through: interface-typed
	// parameters (fmt, encoding/json — reflection reads every field),
	// non-module callees, and calls through function values.
	escapes map[*types.Named]bool

	// Callees lists the statically resolved synchronous callees in
	// source order, deduplicated. Targets of `go` statements are
	// excluded (the caller does not block on them, and their effects
	// happen on another goroutine); deferred calls are included (they
	// run before the caller returns).
	Callees []*types.Func

	// TakesContext reports whether the signature has a context.Context
	// parameter.
	TakesContext bool

	// blocksDirect records an intrinsic blocking point in the body: a
	// channel send/receive/select outside `go` statements, or a call to
	// a known-blocking stdlib function (time.Sleep, WaitGroup.Wait,
	// net/http serving and writing, ...). The transitive answer is
	// Engine.Blocking.
	blocksDirect bool
	// blocking is the fixpoint result: the function blocks directly or
	// through some synchronous module callee.
	blocking bool

	calleeSet map[*types.Func]bool
}

// blockingCallees names non-module functions the engine treats as
// blocking: operations that park the goroutine on a channel, timer,
// socket, or child process. Interface entries use the
// "(pkg.Interface).Method" full-name form go/types produces.
var blockingCallees = map[string]bool{
	"time.Sleep":                        true,
	"(*sync.WaitGroup).Wait":            true,
	"(*sync.Cond).Wait":                 true,
	"net/http.ListenAndServe":           true,
	"net/http.Serve":                    true,
	"net/http.Error":                    true,
	"net/http.Get":                      true,
	"net/http.Head":                     true,
	"net/http.Post":                     true,
	"net/http.PostForm":                 true,
	"(*net/http.Server).ListenAndServe": true,
	"(*net/http.Server).Serve":          true,
	"(*net/http.Server).Shutdown":       true,
	"(*net/http.Client).Do":             true,
	"(net/http.ResponseWriter).Write":   true,
	"(net.Listener).Accept":             true,
	"(net.Conn).Read":                   true,
	"(net.Conn).Write":                  true,
	"(*os/exec.Cmd).Run":                true,
	"(*os/exec.Cmd).Wait":               true,
	"(*os/exec.Cmd).Output":             true,
	"(*os/exec.Cmd).CombinedOutput":     true,
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasContextParam reports whether sig has a context.Context parameter.
func hasContextParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// namedStructOf unwraps pointers and reports the named struct type of t,
// or nil when t is not a (pointer to a) named struct.
func namedStructOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return nil
	}
	return n
}

// buildSummary walks one function declaration. isModuleFunc reports
// whether a callee is declared in the loaded module (its body will have
// its own summary).
func buildSummary(pkg *Package, decl *ast.FuncDecl, fn *types.Func, isModuleFunc func(*types.Func) bool) *FuncSummary {
	s := &FuncSummary{
		Func:       fn,
		Decl:       decl,
		Pkg:        pkg,
		FieldsRead: map[*types.Var]bool{},
		escapes:    map[*types.Named]bool{},
		calleeSet:  map[*types.Func]bool{},
	}
	if sig, ok := fn.Type().(*types.Signature); ok {
		s.TakesContext = hasContextParam(sig)
	}
	if decl.Body == nil {
		return s
	}
	// Channel operations inside the comm clauses of a select WITH a
	// default case never park the goroutine: the select falls through.
	// Pre-collect those nodes so the main walk skips them.
	nonBlockingComm := map[ast.Node]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || !selectHasDefault(sel) {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch m.(type) {
				case *ast.SendStmt, *ast.UnaryExpr:
					nonBlockingComm[m] = true
				}
				return true
			})
		}
		return true
	})
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.GoStmt:
			// The spawned call runs on another goroutine: the caller
			// neither blocks on it nor reads fields through it
			// synchronously. Skip the whole subtree.
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(node) {
				s.blocksDirect = true
			}
		case *ast.SendStmt:
			if !nonBlockingComm[node] {
				s.blocksDirect = true
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && !nonBlockingComm[node] {
				s.blocksDirect = true
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[node.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					s.blocksDirect = true
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[node]; ok {
				s.recordSelectionFields(sel)
			}
		case *ast.CallExpr:
			s.recordCall(pkg, node, isModuleFunc)
		}
		return true
	}
	ast.Inspect(decl.Body, walk)
	return s
}

// recordSelectionFields marks every struct field on a selection's path
// as read: all indices for a field selection, all but the final (method)
// index for a method selection through embedded fields.
func (s *FuncSummary) recordSelectionFields(sel *types.Selection) {
	idx := sel.Index()
	if sel.Kind() != types.FieldVal {
		if len(idx) == 0 {
			return
		}
		idx = idx[:len(idx)-1]
	}
	t := sel.Recv()
	for _, i := range idx {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return
		}
		f := st.Field(i)
		s.FieldsRead[f] = true
		t = f.Type()
	}
}

// recordCall registers the callee and the escape effects of one call.
func (s *FuncSummary) recordCall(pkg *Package, call *ast.CallExpr, isModuleFunc func(*types.Func) bool) {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return // type conversion, not a call
	}
	f := calleeFunc(pkg, call)
	if f != nil {
		if !s.calleeSet[f] {
			s.calleeSet[f] = true
			s.Callees = append(s.Callees, f)
		}
		if blockingCallees[f.FullName()] {
			s.blocksDirect = true
		}
	}
	var sig *types.Signature
	if f != nil {
		sig, _ = f.Type().(*types.Signature)
	}
	for i, arg := range call.Args {
		tv, ok := pkg.Info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		named := namedStructOf(tv.Type)
		if named == nil {
			continue
		}
		if escapesThroughCall(f, sig, i, isModuleFunc) {
			s.escapes[named] = true
		}
	}
}

// escapesThroughCall decides whether argument i of a call hands its
// value to code the coverage walk cannot follow: unknown callees,
// non-module callees, and interface-typed parameters (reflection reads
// every field, as encoding/json and fmt do).
func escapesThroughCall(f *types.Func, sig *types.Signature, i int, isModuleFunc func(*types.Func) bool) bool {
	if f == nil || sig == nil {
		return true // call through a function value
	}
	params := sig.Params()
	var pt types.Type
	switch {
	case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
		pt = params.At(i).Type()
	case params.Len() > 0:
		pt = params.At(params.Len() - 1).Type()
		if sig.Variadic() {
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
	default:
		return true
	}
	if _, ok := pt.Underlying().(*types.Interface); ok {
		return true
	}
	return !isModuleFunc(f)
}

// escapesNamed reports whether values of named type n escape whole from
// this function.
func (s *FuncSummary) escapesNamed(n *types.Named) bool {
	return s.escapes[n]
}

// selectHasDefault reports whether a select statement has a default
// clause (and therefore never blocks).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
