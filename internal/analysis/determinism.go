package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces the reproducible-runs contract behind the
// paper's 35-run averages (§V-B/§VI): model code may draw randomness
// only through seeded *rand.Rand values (internal/stats.NewRand), never
// the global math/rand source, the wall clock, or the environment; and
// nothing may emit output or grow a slice in map-iteration order.
//
// The randomness/clock/environment clauses apply only to model packages
// (ModelPackage); the map-iteration-order clause applies everywhere the
// pass runs, because output ordering is part of every CLI's observable
// contract.
type Determinism struct {
	// ModelPackage reports whether a package path is model code. nil
	// treats every package as model code (used by fixture tests).
	ModelPackage func(path string) bool
}

func (*Determinism) Name() string { return "determinism" }

// randConstructors are the math/rand functions that build seeded
// generators rather than touching the global source; they are the one
// sanctioned way in (via internal/stats.NewRand).
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// Run applies the determinism clauses to one package.
func (p *Determinism) Run(pkg *Package) []Diagnostic {
	model := p.ModelPackage == nil || p.ModelPackage(pkg.Path)
	var diags []Diagnostic
	for _, file := range pkg.Files {
		if model {
			diags = append(diags, p.checkRandClockEnv(pkg, file)...)
		}
		forEachMapRange(pkg, file, func(rs *ast.RangeStmt) {
			diags = append(diags, p.checkMapRange(pkg, file, rs)...)
		})
	}
	return diags
}

// checkRandClockEnv flags global-source math/rand calls and wall-clock
// or environment reads.
func (p *Determinism) checkRandClockEnv(pkg *Package, file *ast.File) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pkg, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		sig, ok := f.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return true
		}
		path, name := f.Pkg().Path(), f.Name()
		var msg string
		switch {
		case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name]:
			msg = fmt.Sprintf("global math/rand source via rand.%s; model code must thread a seeded *rand.Rand from internal/stats.NewRand", name)
		case path == "time" && (name == "Now" || name == "Since"):
			msg = fmt.Sprintf("wall-clock read via time.%s in model code breaks run-to-run reproducibility; inject the value or justify with //vet:allow", name)
		case path == "os" && (name == "Getenv" || name == "LookupEnv" || name == "Environ"):
			msg = fmt.Sprintf("environment read via os.%s in model code makes results host-dependent; plumb configuration explicitly", name)
		default:
			return true
		}
		diags = append(diags, Diagnostic{Pos: pkg.Fset.Position(call.Pos()), Pass: p.Name(), Message: msg})
		return true
	})
	return diags
}

// outputMethods are writer-shaped method names whose invocation inside
// a map range emits data in iteration order.
var outputMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// fmtPrinters are the fmt functions that emit to a stream.
var fmtPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// checkMapRange flags ranges over map literals (the contents are fixed
// at the call site, so the order scramble buys nothing), and map ranges
// whose body appends to a slice (unless a sort follows later in the
// enclosing function) or writes output.
func (p *Determinism) checkMapRange(pkg *Package, file *ast.File, rs *ast.RangeStmt) []Diagnostic {
	var diags []Diagnostic
	if lit, ok := ast.Unparen(rs.X).(*ast.CompositeLit); ok {
		if tv, ok := pkg.Info.Types[lit]; ok && isMapType(tv.Type) {
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(rs.Pos()),
				Pass: p.Name(),
				Message: "range over a map literal runs its body in nondeterministic order for contents " +
					"fixed at the call site; use a slice literal",
			})
			return diags
		}
	}
	appendSeen := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && isBuiltin(pkg, id, "append") && !appendSeen {
			appendSeen = true
			if !sortFollows(pkg, file, rs) {
				diags = append(diags, Diagnostic{
					Pos:  pkg.Fset.Position(rs.Pos()),
					Pass: p.Name(),
					Message: "map iteration order drives append; range over a sorted key slice " +
						"(or sort the result before it is observed)",
				})
			}
			return true
		}
		f := calleeFunc(pkg, call)
		isPrinter := f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" && fmtPrinters[f.Name()]
		isWriter := false
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && outputMethods[sel.Sel.Name] {
			if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				isWriter = true
			}
		}
		if isPrinter || isWriter {
			diags = append(diags, Diagnostic{
				Pos:     pkg.Fset.Position(call.Pos()),
				Pass:    p.Name(),
				Message: "output written in map-iteration order is nondeterministic run-to-run; iterate a sorted key slice",
			})
			return false // one finding per write site, don't descend into args
		}
		return true
	})
	return diags
}

// sortFollows reports whether the enclosing function calls into
// package sort or slices anywhere at or after the range body — the
// collect-then-sort idiom that restores a deterministic order before
// the appended slice can be observed. The check is deliberately
// function-granular: precise post-dominance is out of scope for a lite
// checker, and the repo's determinism property tests pin actual
// behavior.
func sortFollows(pkg *Package, file *ast.File, rs *ast.RangeStmt) bool {
	fn := enclosingFuncBody(file, rs.Pos())
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.Pos() {
			return true
		}
		if f := calleeFunc(pkg, call); f != nil && f.Pkg() != nil {
			if p := f.Pkg().Path(); p == "sort" || p == "slices" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// enclosingFuncBody returns the body of the innermost function
// declaration or literal containing pos.
func enclosingFuncBody(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return n == file // keep scanning top-level siblings
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		return true
	})
	return body
}

// forEachMapRange calls fn for every `range` statement over a map in
// file.
func forEachMapRange(pkg *Package, file *ast.File, fn func(rs *ast.RangeStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if tv, ok := pkg.Info.Types[rs.X]; ok && isMapType(tv.Type) {
			fn(rs)
		}
		return true
	})
}
