package analysis

import (
	"strings"
	"testing"
)

func TestLockGuardFixture(t *testing.T) {
	checkFixture(t, loadFixture(t, "lockguardfix"), &LockGuard{})
}

// TestLockGuardCatchesSeededHeldAcrossPoolWait seeds the bug class the
// pass exists for: taking the cache lock across a WaitGroup-backed
// fan-out, which would serialize every request behind one computation.
func TestLockGuardCatchesSeededHeldAcrossPoolWait(t *testing.T) {
	src := `package lg

import "sync"

type store struct {
	mu sync.Mutex
	m  map[string]int
}

func fanOut(fns []func()) {
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(f func()) { defer wg.Done(); f() }(fn)
	}
	wg.Wait()
}

func (s *store) FillLocked(fns []func()) {
	s.mu.Lock()
	fanOut(fns)
	s.mu.Unlock()
}

func (s *store) FillUnlocked(fns []func()) {
	fanOut(fns)
	s.mu.Lock()
	s.m["done"] = 1
	s.mu.Unlock()
}
`
	pkg := loadSrc(t, "lg", src)
	runner := &Runner{Passes: []Pass{&LockGuard{}}}
	diags := runner.Run([]*Package{pkg})
	if len(diags) != 1 {
		t.Fatalf("findings = %d, want exactly the held-across-wait site:\n%s", len(diags), render(diags))
	}
	if !strings.Contains(diags[0].Message, "s.mu is held across a blocking call to fanOut") {
		t.Fatalf("finding does not name the blocking callee: %s", diags[0].Message)
	}
}

// TestLockGuardUnlockOnAllPaths pins the pairing clause against the
// early-return shapes the cache and coalescer use.
func TestLockGuardUnlockOnAllPaths(t *testing.T) {
	src := `package lg

import "sync"

type c struct {
	mu sync.Mutex
	m  map[string]int
}

func (x *c) Get(k string) (int, bool) {
	x.mu.Lock()
	if v, ok := x.m[k]; ok {
		x.mu.Unlock()
		return v, true
	}
	x.mu.Unlock()
	return 0, false
}

func (x *c) Leak(k string) int {
	x.mu.Lock()
	return x.m[k]
}
`
	pkg := loadSrc(t, "lg", src)
	runner := &Runner{Passes: []Pass{&LockGuard{}}}
	diags := runner.Run([]*Package{pkg})
	if len(diags) != 1 {
		t.Fatalf("findings = %d, want only the Leak site:\n%s", len(diags), render(diags))
	}
	if !strings.Contains(diags[0].Message, "still held at return") {
		t.Fatalf("wrong clause: %s", diags[0].Message)
	}
}
