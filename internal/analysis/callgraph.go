package analysis

// The interprocedural engine: a deterministic call graph over every
// function declared in the loaded module, with per-function summaries
// (summary.go) and derived facts — transitive blocking, cache-key field
// coverage, context-variant lookup. Built once per Runner.Run and shared
// by every EnginePass, so module-wide reasoning costs one extra AST walk
// rather than one per pass per query.

import (
	"go/ast"
	"go/types"
)

// Engine holds the module-wide call graph and summaries.
type Engine struct {
	// funcs lists every summarized function in deterministic order:
	// packages sorted by import path (the loader's order), files and
	// declarations in source order within each package.
	funcs     []*types.Func
	summaries map[*types.Func]*FuncSummary
}

// NewEngine builds summaries for every function declaration in pkgs and
// runs the blocking fixpoint. pkgs should be the full module (the
// loader's sorted order makes the result deterministic); a subset
// degrades gracefully — callees outside the subset are treated like
// external functions.
func NewEngine(pkgs []*Package) *Engine {
	e := &Engine{summaries: map[*types.Func]*FuncSummary{}}

	// Phase 1: collect declarations so isModuleFunc is total before any
	// summary is built.
	type declSite struct {
		pkg  *Package
		decl *ast.FuncDecl
		fn   *types.Func
	}
	var sites []declSite
	inModule := map[*types.Func]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sites = append(sites, declSite{pkg, fd, fn})
				inModule[fn] = true
			}
		}
	}
	isModuleFunc := func(f *types.Func) bool { return inModule[f] }

	// Phase 2: summarize each body.
	for _, site := range sites {
		s := buildSummary(site.pkg, site.decl, site.fn, isModuleFunc)
		e.funcs = append(e.funcs, site.fn)
		e.summaries[site.fn] = s
	}

	// Phase 3: transitive blocking as an iterative fixpoint. A fixpoint
	// (rather than memoized DFS) makes the result independent of visit
	// order in the presence of call cycles.
	for _, f := range e.funcs {
		e.summaries[f].blocking = e.summaries[f].blocksDirect
	}
	for changed := true; changed; {
		changed = false
		for _, f := range e.funcs {
			s := e.summaries[f]
			if s.blocking {
				continue
			}
			for _, callee := range s.Callees {
				if cs := e.summaries[callee]; cs != nil && cs.blocking {
					s.blocking = true
					changed = true
					break
				}
			}
		}
	}
	return e
}

// Summary returns the summary for a module function, or nil for
// functions declared outside the analyzed packages.
func (e *Engine) Summary(f *types.Func) *FuncSummary {
	return e.summaries[f]
}

// Blocking reports whether calling f can park the goroutine: for module
// functions, the fixpoint answer; for external functions, membership in
// the known-blocker table.
func (e *Engine) Blocking(f *types.Func) bool {
	if f == nil {
		return false
	}
	if s := e.summaries[f]; s != nil {
		return s.blocking
	}
	return blockingCallees[f.FullName()]
}

// ContextVariant returns the sibling of f named <Name>Context — same
// package, same receiver type, taking a context.Context — when f itself
// does not take one. This is the convenience-wrapper idiom the module
// uses (Run → RunContext): the ctxflow pass flags calls to f from
// context-holding functions when such a variant exists.
func (e *Engine) ContextVariant(f *types.Func) *types.Func {
	if f == nil || f.Pkg() == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || hasContextParam(sig) {
		return nil
	}
	want := f.Name() + "Context"
	for _, cand := range e.funcs {
		if cand.Name() != want || cand.Pkg() != f.Pkg() {
			continue
		}
		csig, ok := cand.Type().(*types.Signature)
		if !ok || !hasContextParam(csig) {
			continue
		}
		if recvNamed(sig) == recvNamed(csig) {
			return cand
		}
	}
	return nil
}

// recvNamed returns the named receiver type of a signature (pointer
// receivers unwrapped), or nil for package-level functions.
func recvNamed(sig *types.Signature) *types.Named {
	recv := sig.Recv()
	if recv == nil {
		return nil
	}
	return namedStructOfAny(recv.Type())
}

// namedStructOfAny unwraps pointers to the named type without requiring
// a struct underlying (receivers may be defined on any named type).
func namedStructOfAny(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// Coverage walks the synchronous call closure of root and reports which
// fields of the named struct recv the closure reads — the keycover
// question "which fields does this CacheKey computation depend on?".
// all is true when some function in the closure lets recv values escape
// whole (passed to an interface parameter, an external callee, or a
// function value): reflection or unseen code may then read every field.
func (e *Engine) Coverage(root *types.Func, recv *types.Named) (covered map[*types.Var]bool, all bool) {
	covered = map[*types.Var]bool{}
	seen := map[*types.Func]bool{}
	queue := []*types.Func{root}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		if seen[f] {
			continue
		}
		seen[f] = true
		s := e.summaries[f]
		if s == nil {
			continue
		}
		if s.escapesNamed(recv) {
			all = true
		}
		st, ok := recv.Underlying().(*types.Struct)
		if ok {
			for i := 0; i < st.NumFields(); i++ {
				fv := st.Field(i)
				if s.FieldsRead[fv] {
					covered[fv] = true
				}
			}
		}
		queue = append(queue, s.Callees...)
	}
	return covered, all
}
