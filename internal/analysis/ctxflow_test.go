package analysis

import (
	"strings"
	"testing"
)

func TestCtxFlowFixture(t *testing.T) {
	checkFixture(t, loadFixture(t, "ctxflowfix"), &CtxFlow{})
}

func TestCtxFlowSanctionedRootIsExempt(t *testing.T) {
	src := `package serveish

import "context"

type Server struct {
	cancel context.CancelFunc
}

func New() *Server {
	_, stop := context.WithCancel(context.Background())
	return &Server{cancel: stop}
}
`
	pkg := loadSrc(t, "serveish", src)

	strict := &Runner{Passes: []Pass{&CtxFlow{}}}
	if diags := strict.Run([]*Package{pkg}); len(diags) != 1 {
		t.Fatalf("without an exemption the root must be flagged, got:\n%s", render(diags))
	}

	exempt := &Runner{Passes: []Pass{&CtxFlow{AllowBackground: map[string]bool{"serveish.New": true}}}}
	if diags := exempt.Run([]*Package{pkg}); len(diags) != 0 {
		t.Fatalf("sanctioned root still flagged:\n%s", render(diags))
	}
}

func TestCtxFlowMainPackageIsExempt(t *testing.T) {
	pkg := loadSrc(t, "mainprog", `package main

import "context"

func run() context.Context { return context.Background() }

func main() { _ = run() }
`)
	runner := &Runner{Passes: []Pass{&CtxFlow{}}}
	if diags := runner.Run([]*Package{pkg}); len(diags) != 0 {
		t.Fatalf("package main must be exempt:\n%s", render(diags))
	}
}

// TestCtxFlowWrapperBodyMustBeMinimal pins the wrapper idiom boundary:
// a Background root next to other statements is not the sanctioned
// single-return bridge.
func TestCtxFlowWrapperBodyMustBeMinimal(t *testing.T) {
	diags := runCtxFlow(t, `package cf

import "context"

func DoContext(ctx context.Context, n int) int { return n }

func Do(n int) int {
	n++
	return DoContext(context.Background(), n)
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "uncancellable") {
		t.Fatalf("non-minimal wrapper must be flagged, got:\n%s", render(diags))
	}
}

func runCtxFlow(t *testing.T, src string) []Diagnostic {
	t.Helper()
	pkg := loadSrc(t, "cf", src)
	runner := &Runner{Passes: []Pass{&CtxFlow{}}}
	return runner.Run([]*Package{pkg})
}
