package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrCheck (errcheck-lite) closes the gap the (T, error) migration
// opened: a call whose error result is silently discarded defeats the
// errors-not-panics boundary. It flags
//
//   - expression statements whose call returns an error,
//   - assignments that send an error result to the blank identifier, and
//   - go statements whose spawned call returns an error — the goroutine
//     evaporates and its error with it; nothing can ever observe the
//     failure,
//
// except for callees on the never-fails list below. Deferred calls
// (defer f.Close() on read paths) are deliberately out of scope — the
// accepted idiom predates this checker and closing a read handle has
// no recovery path.
type ErrCheck struct{}

func (*ErrCheck) Name() string { return "errcheck-lite" }

// droppableCallees never return a non-nil error in practice (the fmt
// print family only fails when the underlying writer does, and the CLIs
// write to stdout/stderr; strings.Builder and bytes.Buffer document
// err as always nil), so dropping their error is accepted idiom.
var droppableCallees = map[string]bool{
	"fmt.Print":                      true,
	"fmt.Printf":                     true,
	"fmt.Println":                    true,
	"fmt.Fprint":                     true,
	"fmt.Fprintf":                    true,
	"fmt.Fprintln":                   true,
	"(*strings.Builder).Write":       true,
	"(*strings.Builder).WriteString": true,
	"(*strings.Builder).WriteByte":   true,
	"(*strings.Builder).WriteRune":   true,
	"(*bytes.Buffer).Write":          true,
	"(*bytes.Buffer).WriteString":    true,
	"(*bytes.Buffer).WriteByte":      true,
	"(*bytes.Buffer).WriteRune":      true,
}

// Run scans every function body for dropped error results.
func (c *ErrCheck) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if idx := errorResultIndex(pkg, call); idx >= 0 && !c.droppable(pkg, call) {
					diags = append(diags, Diagnostic{
						Pos:  pkg.Fset.Position(call.Pos()),
						Pass: c.Name(),
						Message: fmt.Sprintf("error result of %s is dropped; handle it (or assign and check it)",
							calleeName(pkg, call)),
					})
				}
			case *ast.AssignStmt:
				diags = append(diags, c.checkAssign(pkg, stmt)...)
			case *ast.GoStmt:
				// A goroutine's return values are discarded by the
				// runtime; an error result silently vanishes. (The
				// spawned body is still inspected for its own drops.)
				if idx := errorResultIndex(pkg, stmt.Call); idx >= 0 && !c.droppable(pkg, stmt.Call) {
					diags = append(diags, Diagnostic{
						Pos:  pkg.Fset.Position(stmt.Call.Pos()),
						Pass: c.Name(),
						Message: fmt.Sprintf("error result of %s is dropped by the go statement; "+
							"wrap the call in a closure that sends the error somewhere it is checked",
							calleeName(pkg, stmt.Call)),
					})
				}
			}
			return true
		})
	}
	return diags
}

// checkAssign flags `_`-assignments whose corresponding value is an
// error result of a call.
func (c *ErrCheck) checkAssign(pkg *Package, stmt *ast.AssignStmt) []Diagnostic {
	var diags []Diagnostic
	flag := func(call *ast.CallExpr) {
		if c.droppable(pkg, call) {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:  pkg.Fset.Position(call.Pos()),
			Pass: c.Name(),
			Message: fmt.Sprintf("error result of %s is assigned to _; handle it or justify with //vet:allow",
				calleeName(pkg, call)),
		})
	}
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		// v, _ := f() — multi-value call; map each blank LHS to its
		// tuple slot.
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return nil
		}
		tuple, ok := pkg.Info.Types[call].Type.(*types.Tuple)
		if !ok {
			return nil
		}
		for i, lhs := range stmt.Lhs {
			if isBlank(lhs) && i < tuple.Len() && isErrorType(tuple.At(i).Type()) {
				flag(call)
				break
			}
		}
		return diags
	}
	for i, lhs := range stmt.Lhs {
		if !isBlank(lhs) || i >= len(stmt.Rhs) {
			continue
		}
		call, ok := ast.Unparen(stmt.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if t := pkg.Info.Types[call].Type; t != nil && isErrorType(t) {
			flag(call)
		}
	}
	return diags
}

// droppable reports whether the call's callee is on the never-fails
// list.
func (c *ErrCheck) droppable(pkg *Package, call *ast.CallExpr) bool {
	f := calleeFunc(pkg, call)
	return f != nil && droppableCallees[f.FullName()]
}

// errorResultIndex returns the index of the first error in the call's
// result types, or -1.
func errorResultIndex(pkg *Package, call *ast.CallExpr) int {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
	default:
		if isErrorType(t) {
			return 0
		}
	}
	return -1
}

// isErrorType reports whether t is the predeclared error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// calleeName renders the callee for a message: the qualified function
// name when resolvable, else the source text of the call target.
func calleeName(pkg *Package, call *ast.CallExpr) string {
	if f := calleeFunc(pkg, call); f != nil {
		return f.FullName()
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
