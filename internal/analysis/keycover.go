package analysis

// keycover enforces cache-key completeness: every struct field of a type
// that computes a content key (a CacheKey, Fingerprint, or coalescing
// key method) must be transitively read by that computation, or carry an
// explicit exemption marker naming it:
//
//	//vet:keyexempt <field> -- <reason>
//
// placed inside the struct declaration. The bug class this closes is the
// PR-7 retrofit: a new behavior-relevant field (the timing backend) that
// two artifacts could differ on while sharing one cache entry, because
// the key never read it. "Transitively read" is answered by the
// interprocedural engine: the coverage walk follows the key method's
// synchronous call closure, expands promoted-field selections, and
// treats a receiver handed whole to reflection (json.Marshal, fmt) or to
// code outside the module as reading every field.
//
// Like //vet:allow and the panic allowlist, markers cannot rot silently:
// a marker naming a field the key computation does read, naming no field
// of the struct, sitting outside any key-bearing struct, or failing to
// parse is itself a finding.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// keyMethodNames are the method names keycover treats as key
// computations when they take no parameters and return one value:
// cache.Keyer's CacheKey() string, circuit's Fingerprint() uint64, and
// the serve layer's coalescing key() string.
var keyMethodNames = map[string]bool{
	"CacheKey":    true,
	"Fingerprint": true,
	"key":         true,
}

var keyexemptRE = regexp.MustCompile(`^//vet:keyexempt ([A-Za-z_][A-Za-z0-9_]*) -- \S`)

// KeyCover is the cache-key completeness pass.
type KeyCover struct {
	engine *Engine
}

func (*KeyCover) Name() string { return "keycover" }

// SetEngine satisfies EnginePass.
func (k *KeyCover) SetEngine(e *Engine) { k.engine = e }

// keyexemptMarker is one parsed //vet:keyexempt comment.
type keyexemptMarker struct {
	field   string
	pos     token.Position
	claimed bool // sat inside some key-bearing struct declaration
	stale   bool // the named field is covered anyway
}

// Run checks every key-bearing struct type declared in pkg.
func (k *KeyCover) Run(pkg *Package) []Diagnostic {
	if k.engine == nil {
		return nil
	}
	var diags []Diagnostic

	// Parse every keyexempt marker in the package up front; struct spans
	// claim them below.
	var markers []*keyexemptMarker
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, "//vet:keyexempt") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := keyexemptRE.FindStringSubmatch(c.Text)
				if m == nil {
					diags = append(diags, Diagnostic{
						Pos:     pos,
						Pass:    k.Name(),
						Message: `malformed //vet:keyexempt comment: want "//vet:keyexempt <field> -- <reason>"`,
					})
					continue
				}
				markers = append(markers, &keyexemptMarker{field: m[1], pos: pos})
			}
		}
	}

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				diags = append(diags, k.checkType(pkg, ts, markers)...)
			}
		}
	}

	// Markers no key-bearing struct claimed are dead weight; markers
	// whose field the key computation reads anyway are stale.
	for _, m := range markers {
		switch {
		case !m.claimed:
			diags = append(diags, Diagnostic{
				Pos:     m.pos,
				Pass:    k.Name(),
				Message: fmt.Sprintf("//vet:keyexempt %s is not inside a struct with a key method (CacheKey/Fingerprint/key); remove it", m.field),
			})
		case m.stale:
			diags = append(diags, Diagnostic{
				Pos:     m.pos,
				Pass:    k.Name(),
				Message: fmt.Sprintf("stale //vet:keyexempt marker: field %s is read by the key computation; remove the exemption", m.field),
			})
		}
	}
	return diags
}

// checkType reports uncovered fields of one type declaration when it is
// a struct with a key method.
func (k *KeyCover) checkType(pkg *Package, ts *ast.TypeSpec, markers []*keyexemptMarker) []Diagnostic {
	tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	// An alias (type Circuit = circuit.Circuit in the facade) is not a
	// declaration of the named type; checking it would duplicate the
	// declaring package's findings.
	if tn.IsAlias() || named.Obj() != tn {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	keyFn := keyMethod(named)
	if keyFn == nil || k.engine.Summary(keyFn) == nil {
		return nil
	}

	// Claim the markers sitting inside this struct's declaration span.
	structStart := pkg.Fset.Position(ts.Pos())
	structEnd := pkg.Fset.Position(ts.End())
	exempt := map[string]*keyexemptMarker{}
	for _, m := range markers {
		if m.pos.Filename != structStart.Filename ||
			m.pos.Line < structStart.Line || m.pos.Line > structEnd.Line {
			continue
		}
		m.claimed = true
		exempt[m.field] = m
	}

	covered, all := k.engine.Coverage(keyFn, named)
	var diags []Diagnostic
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		isCovered := all || covered[f]
		if m := exempt[f.Name()]; m != nil {
			if isCovered {
				m.stale = true
			}
			delete(exempt, f.Name())
			continue
		}
		if isCovered {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:  pkg.Fset.Position(f.Pos()),
			Pass: k.Name(),
			Message: fmt.Sprintf("field %s of %s is not read by %s; cached artifacts keyed without it can collide — "+
				"fold it into the key or exempt it with //vet:keyexempt %s -- <reason>",
				f.Name(), named.Obj().Name(), keyFn.Name(), f.Name()),
		})
	}
	// Markers left over name no field of the struct.
	for i := 0; i < st.NumFields(); i++ {
		delete(exempt, st.Field(i).Name())
	}
	names := make([]string, 0, len(exempt))
	for name := range exempt {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := exempt[name]
		diags = append(diags, Diagnostic{
			Pos:     m.pos,
			Pass:    k.Name(),
			Message: fmt.Sprintf("//vet:keyexempt %s names no field of %s", name, named.Obj().Name()),
		})
	}
	return diags
}

// keyMethod returns the explicit key-computation method of named: a
// method whose name is in keyMethodNames, taking no parameters and
// returning exactly one value. CacheKey wins over Fingerprint and key
// when several exist.
func keyMethod(named *types.Named) *types.Func {
	var found *types.Func
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if !keyMethodNames[m.Name()] {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			continue
		}
		if found == nil || m.Name() == "CacheKey" {
			found = m
		}
	}
	return found
}
