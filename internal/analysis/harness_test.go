package analysis

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness: each testdata/src package annotates the lines
// where findings must land with golden comments of the form
//
//	code() // want `\[pass\] message regexp`
//
// (multiple backquoted or quoted patterns per comment are allowed).
// Diagnostics are matched as "[pass] message", so fixtures pin pass
// names as well as messages. Every expectation must match exactly one
// finding on its line and every finding must be claimed by an
// expectation — extra findings and unmet expectations both fail.

var wantRE = regexp.MustCompile("`([^`]+)`|\"([^\"]+)\"")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	met     bool
}

// loadFixture type-checks testdata/src/<name> as package <name>.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir, name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", name, pkg.TypeErrors)
	}
	return pkg
}

// parseWants extracts the golden expectations from a fixture package.
func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(rest, -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: unparsable want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range matches {
					text := m[1]
					if text == "" {
						text = m[2]
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, text, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// checkFixture runs the passes over the fixture and compares findings
// against the want comments.
func checkFixture(t *testing.T, pkg *Package, passes ...Pass) {
	t.Helper()
	runner := &Runner{Passes: passes}
	diags := runner.Run([]*Package{pkg})
	wants := parseWants(t, pkg)
	for _, d := range diags {
		text := "[" + d.Pass + "] " + d.Message
		claimed := false
		for _, w := range wants {
			if w.met || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(text) {
				w.met = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected finding at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, text)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("expectation not met at %s:%d: %s", filepath.Base(w.file), w.line, w.pattern)
		}
	}
}

// fixtureFuncNames is a helper used by tests asserting the allowlist
// keying scheme.
func fixtureFuncNames(pkg *Package) []string {
	var names []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				names = append(names, enclosingFuncName(file, fd.Body.Pos()))
			}
		}
	}
	return names
}
