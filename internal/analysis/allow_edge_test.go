package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// The //vet:allow grammar edge cases: comma lists spanning passes,
// same-line vs line-above placement, and the malformed shapes that must
// themselves become findings.

// twoPassSrc trips errcheck-lite and determinism on the same line.
const twoPassHeader = `package edge

import (
	"math/rand"
	"os"
	"strconv"
)

// Referencing the helpers keeps the imports used in bodies that only
// exercise one pass.
var (
	_ = rand.Int
	_ = strconv.Itoa
)

func F(p string) {
`

func runTwoPasses(t *testing.T, body string) []Diagnostic {
	t.Helper()
	pkg := loadSrc(t, "edge", twoPassHeader+body+"\n}\n")
	runner := &Runner{Passes: []Pass{&ErrCheck{}, &Determinism{}}}
	return runner.Run([]*Package{pkg})
}

func TestVetAllowCommaListSuppressesEveryNamedPass(t *testing.T) {
	diags := runTwoPasses(t, `	//vet:allow errcheck-lite,determinism -- fixture: both findings justified
	os.Remove(strconv.Itoa(rand.Int()))`)
	if len(diags) != 0 {
		t.Fatalf("comma list must silence both passes, got:\n%s", render(diags))
	}
}

func TestVetAllowSuppressesOnlyNamedPasses(t *testing.T) {
	diags := runTwoPasses(t, `	//vet:allow errcheck-lite -- fixture: only the drop is justified
	os.Remove(strconv.Itoa(rand.Int()))`)
	if len(diags) != 1 || diags[0].Pass != "determinism" {
		t.Fatalf("want the determinism finding to survive, got:\n%s", render(diags))
	}
}

func TestVetAllowOnDeclarationLineAndLineAbove(t *testing.T) {
	// Same line, trailing the statement.
	diags := runTwoPasses(t, `	os.Remove(p) //vet:allow errcheck-lite -- fixture: same-line marker`)
	if len(diags) != 0 {
		t.Fatalf("same-line marker must suppress, got:\n%s", render(diags))
	}
	// Line directly above.
	diags = runTwoPasses(t, `	//vet:allow errcheck-lite -- fixture: line-above marker
	os.Remove(p)`)
	if len(diags) != 0 {
		t.Fatalf("line-above marker must suppress, got:\n%s", render(diags))
	}
	// Two lines above is out of range: the finding survives.
	diags = runTwoPasses(t, `	//vet:allow errcheck-lite -- fixture: too far away

	os.Remove(p)`)
	if len(diags) != 1 {
		t.Fatalf("marker two lines above must not suppress, got:\n%s", render(diags))
	}
}

func TestVetAllowMalformedShapesAreFindings(t *testing.T) {
	cases := []struct {
		name   string
		marker string
	}{
		{"missing reason", `//vet:allow errcheck-lite`},
		{"empty reason", `//vet:allow errcheck-lite -- `},
		{"trailing comma", `//vet:allow errcheck-lite, -- reason`},
		{"uppercase pass name", `//vet:allow ErrCheck -- reason`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			diags := runTwoPasses(t, "\t"+c.marker+"\n\tos.Remove(p)")
			var sawMalformed, sawDrop bool
			for _, d := range diags {
				if d.Pass == "vet" && strings.Contains(d.Message, "malformed //vet:allow") {
					sawMalformed = true
				}
				if d.Pass == "errcheck-lite" {
					sawDrop = true
				}
			}
			if !sawMalformed {
				t.Errorf("marker %q: missing malformed finding:\n%s", c.marker, render(diags))
			}
			if !sawDrop {
				t.Errorf("marker %q must not suppress the finding:\n%s", c.marker, render(diags))
			}
		})
	}
}

// TestOrderingStableAcrossRepeatedModuleLoads re-loads the fixture
// packages from disk (fresh Fset, fresh type-checker, fresh engine) and
// demands byte-identical diagnostic output — the property CI diffs and
// golden tests rest on. Map-keyed internals (summaries, suppression
// tables) must never leak iteration order into results.
func TestOrderingStableAcrossRepeatedModuleLoads(t *testing.T) {
	load := func() string {
		var pkgs []*Package
		for _, name := range []string{"ctxflowfix", "keycoverfix", "lockguardfix"} {
			pkg, err := LoadDir(filepath.Join("testdata", "src", name), name)
			if err != nil {
				t.Fatal(err)
			}
			pkgs = append(pkgs, pkg)
		}
		runner := &Runner{Passes: []Pass{&KeyCover{}, &CtxFlow{}, &LockGuard{}}}
		var sb strings.Builder
		for _, d := range runner.Run(pkgs) {
			// Strip the TempDir-independent absolute prefix down to the
			// base name so runs compare content, not allocation order of
			// identical paths.
			sb.WriteString(filepath.Base(d.Pos.Filename) + ": " + d.Pass + ": " + d.Message + "\n")
		}
		return sb.String()
	}
	first := load()
	if first == "" {
		t.Fatal("fixtures produced no findings; the comparison is vacuous")
	}
	for i := 0; i < 3; i++ {
		if got := load(); got != first {
			t.Fatalf("load %d produced different output:\n%s\nvs\n%s", i+1, got, first)
		}
	}
}
