package analysis

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestFindModuleRoot(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("root %s has no go.mod: %v", root, err)
	}
	if _, err := FindModuleRoot(os.TempDir()); err == nil {
		t.Error("expected an error outside any module")
	}
}

func TestLoadModuleDiscoversKnownPackages(t *testing.T) {
	mod := loadRepoModule(t)
	if mod.Path != "velociti" {
		t.Fatalf("module path = %q", mod.Path)
	}
	got := map[string]bool{}
	for _, pkg := range mod.Packages {
		got[pkg.Path] = true
		if len(pkg.TypeErrors) > 0 {
			t.Errorf("%s has type errors: %v", pkg.Path, pkg.TypeErrors[0])
		}
	}
	for _, want := range []string{
		"velociti", // root facade
		"velociti/internal/perf",
		"velociti/internal/pool",
		"velociti/internal/analysis", // self
		"velociti/cmd/velociti-vet",
		"velociti/cmd/velociti-repro",
	} {
		if !got[want] {
			t.Errorf("module load missed %s", want)
		}
	}
	if !sort.SliceIsSorted(mod.Packages, func(i, j int) bool {
		return mod.Packages[i].Path < mod.Packages[j].Path
	}) {
		t.Error("packages are not sorted by import path")
	}
	for p := range got {
		if strings.Contains(p, "testdata") {
			t.Errorf("testdata package leaked into the load: %s", p)
		}
	}
}

func TestLoadModuleSkipsTestFiles(t *testing.T) {
	mod := loadRepoModule(t)
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") {
				t.Errorf("test file loaded: %s", name)
			}
		}
	}
}

func TestParseAllowlistRejectsMalformedLines(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name, body, wantErr string
	}{
		{"three fields", "a.go F extra\n", `want "<file> <function>"`},
		{"one field", "lonely\n", `want "<file> <function>"`},
		{"duplicate", "a.go F\na.go F\n", "duplicate entry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "_")+".txt")
			if err := os.WriteFile(path, []byte(tc.body), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := ParseAllowlist(path)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

func TestIsModelPackage(t *testing.T) {
	cases := map[string]bool{
		"velociti/internal/perf":    true,
		"velociti/internal/stats":   true,
		"velociti/internal/shuttle": true,
		"velociti/internal/qasm":    false,
		"velociti/internal/pool":    false,
		"velociti/cmd/velociti":     false,
		"velociti":                  false,
		"other/internal/perf":       false,
	}
	for path, want := range cases {
		if got := IsModelPackage("velociti", path); got != want {
			t.Errorf("IsModelPackage(%q) = %v, want %v", path, got, want)
		}
	}
}

// loadRepoModule loads this repository's module once per test binary.
func loadRepoModule(t *testing.T) *Module {
	t.Helper()
	repoModuleOnce.Do(func() {
		cwd, err := os.Getwd()
		if err != nil {
			repoModuleErr = err
			return
		}
		root, err := FindModuleRoot(cwd)
		if err != nil {
			repoModuleErr = err
			return
		}
		repoModule, repoModuleErr = LoadModule(root)
	})
	if repoModuleErr != nil {
		t.Fatal(repoModuleErr)
	}
	return repoModule
}
