package analysis

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestPanicGuardFixture(t *testing.T) {
	pkg := loadFixture(t, "panicfix")
	al, err := ParseAllowlist(filepath.Join("testdata", "src", "panicfix", "allowlist.txt"))
	if err != nil {
		t.Fatal(err)
	}
	checkFixture(t, pkg, &PanicGuard{Allowlist: al, ModuleRoot: pkg.Dir})
}

func TestPanicGuardStaleEntry(t *testing.T) {
	pkg := loadFixture(t, "panicfix")
	path := filepath.Join(t.TempDir(), "allowlist.txt")
	if err := os.WriteFile(path, []byte("panicfix.go Allowed\npanicfix.go Recv.Check\npanicfix.go Gone\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	al, err := ParseAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}
	guard := &PanicGuard{Allowlist: al, ModuleRoot: pkg.Dir, ReportStale: true}
	runner := &Runner{Passes: []Pass{guard}}
	diags := runner.Run([]*Package{pkg})
	var stale []Diagnostic
	for _, d := range diags {
		if strings.Contains(d.Message, "stale allowlist entry") {
			stale = append(stale, d)
		}
	}
	if len(stale) != 1 {
		t.Fatalf("stale diagnostics = %d, want 1 (%v)", len(stale), diags)
	}
	if !strings.Contains(stale[0].Message, `"panicfix.go Gone"`) {
		t.Errorf("stale message = %q, want it to name the entry", stale[0].Message)
	}
	if stale[0].Pos.Filename != path || stale[0].Pos.Line != 3 {
		t.Errorf("stale anchored at %s:%d, want %s:3", stale[0].Pos.Filename, stale[0].Pos.Line, path)
	}
}

func TestPanicGuardWithoutAllowlistFlagsEverything(t *testing.T) {
	pkg := loadFixture(t, "panicfix")
	runner := &Runner{Passes: []Pass{&PanicGuard{ModuleRoot: pkg.Dir}}}
	diags := runner.Run([]*Package{pkg})
	if len(diags) != 4 { // Allowed, Bad, Recv.Check, Closure
		t.Fatalf("findings = %d, want 4:\n%s", len(diags), render(diags))
	}
}

func TestErrCheckFixture(t *testing.T) {
	checkFixture(t, loadFixture(t, "errcheckfix"), &ErrCheck{})
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, loadFixture(t, "determfix"), &Determinism{})
}

func TestDeterminismModelScoping(t *testing.T) {
	// With the fixture declared non-model, only the map-order clauses
	// remain: rand/clock/env findings must disappear.
	pkg := loadFixture(t, "determfix")
	pass := &Determinism{ModelPackage: func(string) bool { return false }}
	runner := &Runner{Passes: []Pass{pass}}
	diags := runner.Run([]*Package{pkg})
	for _, d := range diags {
		for _, banned := range []string{"math/rand", "wall-clock", "environment"} {
			if strings.Contains(d.Message, banned) {
				t.Errorf("non-model package still flagged: %s", d.Message)
			}
		}
	}
	if len(diags) != 3 { // map literal, unsorted append, map-order print
		t.Errorf("map-order findings = %d, want 3:\n%s", len(diags), render(diags))
	}
}

func TestFloatSumFixture(t *testing.T) {
	checkFixture(t, loadFixture(t, "floatsumfix"), &FloatSum{})
}

func TestCleanFixtureHasZeroFindings(t *testing.T) {
	pkg := loadFixture(t, "clean")
	runner := &Runner{Passes: []Pass{
		&PanicGuard{Allowlist: EmptyAllowlist(), ModuleRoot: pkg.Dir},
		&ErrCheck{},
		&Determinism{},
		&FloatSum{},
	}}
	if diags := runner.Run([]*Package{pkg}); len(diags) != 0 {
		t.Fatalf("clean fixture produced findings:\n%s", render(diags))
	}
}

func TestMalformedVetAllowCommentIsAFinding(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

import "os"

func F(p string) {
	//vet:allow errcheck-lite
	os.Remove(p)
}
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "bad")
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Passes: []Pass{&ErrCheck{}}}
	diags := runner.Run([]*Package{pkg})
	var sawMalformed, sawDrop bool
	for _, d := range diags {
		if d.Pass == "vet" && strings.Contains(d.Message, "malformed //vet:allow") {
			sawMalformed = true
		}
		if d.Pass == "errcheck-lite" {
			sawDrop = true
		}
	}
	if !sawMalformed {
		t.Errorf("missing malformed-comment finding:\n%s", render(diags))
	}
	if !sawDrop {
		t.Errorf("reason-less //vet:allow must not suppress the finding:\n%s", render(diags))
	}
}

func TestDiagnosticOrderingIsDeterministic(t *testing.T) {
	pkg := loadFixture(t, "determfix")
	runner := &Runner{Passes: []Pass{&Determinism{}, &FloatSum{}}}
	first := render(runner.Run([]*Package{pkg}))
	for i := 0; i < 3; i++ {
		if got := render(runner.Run([]*Package{pkg})); got != first {
			t.Fatalf("run %d ordering differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	// All findings are in one file, so line numbers must ascend.
	var prev int
	for _, l := range strings.Split(strings.TrimSpace(first), "\n") {
		parts := strings.Split(l, ":")
		if len(parts) < 3 {
			t.Fatalf("bad diagnostic %q", l)
		}
		line, err := strconv.Atoi(parts[1])
		if err != nil {
			t.Fatalf("bad line in %q: %v", l, err)
		}
		if line < prev {
			t.Fatalf("diagnostics out of order:\n%s", first)
		}
		prev = line
	}
}

func render(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String("") + "\n")
	}
	return sb.String()
}
