package analysis

import (
	"strings"
	"testing"
)

func TestKeyCoverFixture(t *testing.T) {
	checkFixture(t, loadFixture(t, "keycoverfix"), &KeyCover{})
}

// runKeyCover runs only the keycover pass over one source string.
func runKeyCover(t *testing.T, src string) []Diagnostic {
	t.Helper()
	pkg := loadSrc(t, "kc", src)
	runner := &Runner{Passes: []Pass{&KeyCover{}}}
	return runner.Run([]*Package{pkg})
}

// TestKeyCoverCatchesSeededMissingField is the acceptance gate: adding a
// behavior-relevant field to a Keyer struct without folding it into
// CacheKey (the PR-7 |be= bug shape) must fail.
func TestKeyCoverCatchesSeededMissingField(t *testing.T) {
	clean := `package kc

import "strconv"

type BindKey struct {
	Alpha   float64
	Backend string
}

func (k BindKey) CacheKey() string {
	return strconv.FormatFloat(k.Alpha, 'g', -1, 64) + "|be=" + k.Backend
}
`
	if diags := runKeyCover(t, clean); len(diags) != 0 {
		t.Fatalf("complete key flagged:\n%s", render(diags))
	}

	// Seed the regression: a new semantic field, key unchanged.
	seeded := strings.Replace(clean, "Backend string",
		"Backend string\n\tTimingModel string", 1)
	diags := runKeyCover(t, seeded)
	if len(diags) != 1 {
		t.Fatalf("findings = %d, want exactly the missing field:\n%s", len(diags), render(diags))
	}
	if !strings.Contains(diags[0].Message, "field TimingModel of BindKey is not read by CacheKey") {
		t.Fatalf("finding does not name the seeded field: %s", diags[0].Message)
	}
}

func TestKeyCoverStaleExemptMarker(t *testing.T) {
	diags := runKeyCover(t, `package kc

import "strconv"

type K struct {
	//vet:keyexempt Alpha -- pretend this is not part of the key
	Alpha float64
}

func (k K) CacheKey() string {
	return strconv.FormatFloat(k.Alpha, 'g', -1, 64)
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "stale //vet:keyexempt marker: field Alpha is read") {
		t.Fatalf("want one stale-marker finding, got:\n%s", render(diags))
	}
	if diags[0].Pos.Line != 6 {
		t.Errorf("stale marker anchored at line %d, want 6 (the marker comment)", diags[0].Pos.Line)
	}
}

func TestKeyCoverUnclaimedMarker(t *testing.T) {
	diags := runKeyCover(t, `package kc

type Plain struct {
	//vet:keyexempt A -- this struct has no key method
	A int
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "not inside a struct with a key method") {
		t.Fatalf("want one unclaimed-marker finding, got:\n%s", render(diags))
	}
}

func TestKeyCoverMarkerNamesNoField(t *testing.T) {
	diags := runKeyCover(t, `package kc

import "strconv"

type K struct {
	Alpha float64
	//vet:keyexempt Nosuch -- typo'd field name
	Beta float64
}

func (k K) CacheKey() string {
	return strconv.FormatFloat(k.Alpha+k.Beta, 'g', -1, 64)
}
`)
	var sawNoField bool
	for _, d := range diags {
		if strings.Contains(d.Message, "//vet:keyexempt Nosuch names no field of K") {
			sawNoField = true
		}
	}
	if !sawNoField {
		t.Fatalf("want a names-no-field finding, got:\n%s", render(diags))
	}
}

func TestKeyCoverMalformedMarker(t *testing.T) {
	diags := runKeyCover(t, `package kc

import "strconv"

type K struct {
	Alpha float64
	//vet:keyexempt Beta
	Beta float64
}

func (k K) CacheKey() string {
	return strconv.FormatFloat(k.Alpha, 'g', -1, 64)
}
`)
	var sawMalformed, sawUncovered bool
	for _, d := range diags {
		if strings.Contains(d.Message, "malformed //vet:keyexempt") {
			sawMalformed = true
		}
		if strings.Contains(d.Message, "field Beta of K is not read") {
			sawUncovered = true
		}
	}
	if !sawMalformed {
		t.Errorf("missing malformed-marker finding:\n%s", render(diags))
	}
	if !sawUncovered {
		t.Errorf("a reason-less marker must not exempt the field:\n%s", render(diags))
	}
}

// TestKeyCoverModuleScopeViaRunner proves Runner.Module lets the engine
// see a helper package outside the checked selection: the key method
// delegates to a function in another package, and coverage follows it.
func TestKeyCoverModuleScopeViaRunner(t *testing.T) {
	mod := loadRepoModule(t)
	var analysisPkg *Package
	for _, p := range mod.Packages {
		if strings.HasSuffix(p.Path, "internal/circuit") {
			analysisPkg = p
		}
	}
	if analysisPkg == nil {
		t.Fatal("internal/circuit not in module")
	}
	runner := &Runner{Passes: []Pass{&KeyCover{}}, Module: mod.Packages}
	if diags := runner.Run([]*Package{analysisPkg}); len(diags) != 0 {
		t.Fatalf("circuit package (with keyexempt markers) must be clean:\n%s", render(diags))
	}
}
