package analysis

import (
	"fmt"
	"go/ast"
)

// PanicGuard enforces DESIGN.md §6: panic() is reserved for documented
// programmer-bug invariants, each named in the checked-in allowlist.
// Any other panic must become a verr input error. Test files never
// reach this pass (the loader skips them).
type PanicGuard struct {
	// Allowlist holds the permitted sites; nil behaves as empty.
	Allowlist *Allowlist
	// ModuleRoot anchors the relative file paths the allowlist keys on.
	ModuleRoot string
	// ReportStale enables the Finish check that every allowlist entry
	// matched a panic site. Only meaningful when the pass saw the whole
	// module; partial package selections must leave it false.
	ReportStale bool
}

func (*PanicGuard) Name() string { return "panicguard" }

// Run flags every call to the predeclared panic whose (file, function)
// pair is not in the allowlist.
func (g *PanicGuard) Run(pkg *Package) []Diagnostic {
	al := g.Allowlist
	if al == nil {
		al = EmptyAllowlist()
	}
	var diags []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || !isBuiltin(pkg, id, "panic") {
				return true
			}
			pos := pkg.Fset.Position(call.Pos())
			rel := relFile(g.ModuleRoot, pos.Filename)
			fn := enclosingFuncName(file, call.Pos())
			if al.permit(rel, fn) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  pos,
				Pass: "panicguard",
				Message: fmt.Sprintf("panic in %s %s is not in the panic allowlist; "+
					"return a verr input error, or document the invariant and add %q to %s",
					rel, fn, rel+" "+fn, allowlistName(al)),
			})
			return true
		})
	}
	return diags
}

// Finish reports allowlist entries that matched no panic site.
func (g *PanicGuard) Finish() []Diagnostic {
	if !g.ReportStale || g.Allowlist == nil {
		return nil
	}
	return g.Allowlist.stale()
}

func allowlistName(al *Allowlist) string {
	if al.Path == "" {
		return "analysis/panic_allowlist.txt"
	}
	return al.Path
}
