// Package analysis is VelociTI's contract checker: a multi-pass static
// analyzer built purely on the stdlib toolchain (go/parser, go/ast,
// go/types, go/importer — no golang.org/x/tools) that machine-checks the
// invariants DESIGN.md promises in prose:
//
//   - panicguard: every panic() outside _test.go files names a documented
//     programmer-bug invariant listed in analysis/panic_allowlist.txt.
//   - errcheck-lite: no error result is silently dropped in internal/...
//     or cmd/... (expression statements and assignments to _).
//   - determinism: model packages draw randomness only through seeded
//     *rand.Rand values, never the global math/rand source, never the
//     wall clock or the environment; and no code emits output or grows a
//     slice in map-iteration order.
//   - floatsum: no floating-point accumulator is updated in
//     map-iteration order (the bit-identical sweep guarantee).
//
// The driver is cmd/velociti-vet; it runs all four passes over every
// package in the module and fails CI on any finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package of the module (or a
// standalone fixture directory in tests).
type Package struct {
	Path  string // import path, e.g. "velociti/internal/perf"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files only, sorted by file name
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds every type-checking error encountered. Passes
	// still run on a partially checked package, but the driver treats a
	// non-empty list as invalid input.
	TypeErrors []error
}

// Module is the loaded state of one Go module.
type Module struct {
	Root     string // absolute directory containing go.mod
	Path     string // module path from go.mod
	Packages []*Package
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// loader type-checks module packages from source, resolving stdlib
// imports through the compiler's export data (with a source-importer
// fallback) and module-internal imports recursively from the parsed
// ASTs, so the whole pipeline stays inside the stdlib.
type loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	dirs       map[string]string // import path -> absolute dir
	pkgs       map[string]*Package
	loading    map[string]bool // import-cycle guard
	gc         types.Importer
	src        types.Importer
	stdCache   map[string]*types.Package
}

func newLoader(root, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:       fset,
		moduleRoot: root,
		modulePath: modPath,
		dirs:       map[string]string{},
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
		gc:         importer.Default(),
		src:        importer.ForCompiler(fset, "source", nil),
		stdCache:   map[string]*types.Package{},
	}
}

// Import implements types.Importer over the chain described on loader.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if cached, ok := l.stdCache[path]; ok {
		return cached, nil
	}
	p, err := l.gc.Import(path)
	if err != nil {
		// Toolchains without compiled export data fall back to
		// type-checking the dependency from source.
		p, err = l.src.Import(path)
		if err != nil {
			return nil, err
		}
	}
	l.stdCache[path] = p
	return p, nil
}

// load parses and type-checks one module package (cached).
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("package %s is not in module %s", path, l.modulePath)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	pkg, err := checkDir(l.fset, dir, path, l)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// checkDir parses the non-test files of dir and type-checks them as
// import path path, resolving imports through imp.
func checkDir(fset *token.FileSet, dir, path string, imp types.Importer) (*Package, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no non-test Go files", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: fset, Files: files}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// goFileNames lists the non-test .go files of dir, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadModule discovers, parses, and type-checks every non-test package
// under root (the directory containing go.mod), skipping testdata and
// hidden directories. Packages come back sorted by import path.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := newLoader(root, modPath)
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		names, err := goFileNames(path)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		l.dirs[imp] = path
		return nil
	})
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	mod := &Module{Root: root, Path: modPath}
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", p, err)
		}
		mod.Packages = append(mod.Packages, pkg)
	}
	return mod, nil
}

// LoadDir parses and type-checks a single standalone directory (used by
// the pass tests to load testdata/src fixtures). Imports are resolved
// from the toolchain only, so fixtures must import nothing outside the
// standard library.
func LoadDir(dir, path string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	chain := &stdChain{
		gc:  importer.Default(),
		src: importer.ForCompiler(fset, "source", nil),
	}
	return checkDir(fset, dir, path, chain)
}

// stdChain resolves imports via compiled export data, falling back to
// compiling the dependency from source.
type stdChain struct {
	gc, src types.Importer
}

func (c *stdChain) Import(path string) (*types.Package, error) {
	p, err := c.gc.Import(path)
	if err != nil {
		p, err = c.src.Import(path)
	}
	return p, err
}
