package analysis

import (
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
)

// Allowlist is the checked-in register of permitted panic sites
// (analysis/panic_allowlist.txt). Each entry names a file relative to
// the module root and the enclosing function, separated by whitespace:
//
//	# reason the panic is a programmer-bug invariant
//	internal/dag/dag.go Graph.Label
//
// Entries are matched exactly; a panic site not listed is a finding,
// and a listed entry that no longer matches any panic site is also a
// finding (stale entries would otherwise grant future panics a free
// pass).
type Allowlist struct {
	Path    string
	entries map[string]*allowEntry
}

type allowEntry struct {
	line int
	used bool
}

// ParseAllowlist reads and validates an allowlist file.
func ParseAllowlist(path string) (*Allowlist, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	al := &Allowlist{Path: path, entries: map[string]*allowEntry{}}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<file> <function>\", got %q", path, i+1, line)
		}
		key := fields[0] + " " + fields[1]
		if _, dup := al.entries[key]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate entry %q", path, i+1, key)
		}
		al.entries[key] = &allowEntry{line: i + 1}
	}
	return al, nil
}

// EmptyAllowlist is an allowlist with no entries (every panic site is a
// finding). Used when no allowlist file exists.
func EmptyAllowlist() *Allowlist {
	return &Allowlist{entries: map[string]*allowEntry{}}
}

// permit marks the entry for (relFile, fn) used and reports whether it
// exists.
func (al *Allowlist) permit(relFile, fn string) bool {
	e, ok := al.entries[relFile+" "+fn]
	if ok {
		e.used = true
	}
	return ok
}

// stale returns diagnostics for entries no panic site matched, anchored
// at their line in the allowlist file.
func (al *Allowlist) stale() []Diagnostic {
	var out []Diagnostic
	for key, e := range al.entries {
		if e.used {
			continue
		}
		out = append(out, Diagnostic{
			Pos:     token.Position{Filename: al.Path, Line: e.line, Column: 1},
			Pass:    "panicguard",
			Message: fmt.Sprintf("stale allowlist entry %q matches no panic site; remove it", key),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos.Line < out[j].Pos.Line })
	return out
}
