package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding. Formatting and ordering are deterministic
// so golden tests and CI diffs are stable.
type Diagnostic struct {
	Pos     token.Position // absolute file name
	Pass    string
	Message string
}

// String renders the canonical "file:line:col: [pass] message" form with
// the file name relative to base (when possible) in slash form.
func (d Diagnostic) String(base string) string {
	name := d.Pos.Filename
	if base != "" {
		if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s", filepath.ToSlash(name), d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
}

// GitHub renders the finding as a GitHub Actions workflow annotation
// (::error file=...,line=...,col=...::message) so it shows inline on the
// PR diff. The message body carries the same "[pass] message" text as
// String; data characters %, CR, and LF are escaped per the workflow
// command grammar.
func (d Diagnostic) GitHub(base string) string {
	name := d.Pos.Filename
	if base != "" {
		if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	msg := fmt.Sprintf("[%s] %s", d.Pass, d.Message)
	return fmt.Sprintf("::error file=%s,line=%d,col=%d::%s",
		githubEscape(filepath.ToSlash(name)), d.Pos.Line, d.Pos.Column, githubEscape(msg))
}

// githubEscape applies the workflow-command data escaping rules.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// SortDiagnostics orders findings by file, line, column, pass, message.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
}

// Pass is one contract check run over a type-checked package.
type Pass interface {
	Name() string
	Run(pkg *Package) []Diagnostic
}

// Finisher is implemented by passes that report cross-package findings
// (e.g. stale allowlist entries) after every package has been visited.
type Finisher interface {
	Finish() []Diagnostic
}

// EnginePass is implemented by passes that need the interprocedural
// engine (call graph + summaries). The Runner builds one engine per Run
// and hands it to every such pass before visiting packages.
type EnginePass interface {
	Pass
	SetEngine(*Engine)
}

// Runner applies a set of passes to a set of packages, honors
// //vet:allow suppressions, and returns the sorted findings.
type Runner struct {
	Passes []Pass
	// Scope, when non-nil, reports whether a pass applies to a package.
	Scope func(pass Pass, pkg *Package) bool
	// Module, when non-nil, is the full module package list used to
	// build the interprocedural engine, so engine-backed passes see
	// whole-module summaries even when Run receives a subset. Nil means
	// the engine is built from the packages passed to Run.
	Module []*Package
}

// Run executes every in-scope pass over every package.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	var engine *Engine
	for _, pass := range r.Passes {
		ep, ok := pass.(EnginePass)
		if !ok {
			continue
		}
		if engine == nil {
			modPkgs := r.Module
			if modPkgs == nil {
				modPkgs = pkgs
			}
			engine = NewEngine(modPkgs)
		}
		ep.SetEngine(engine)
	}
	for _, pkg := range pkgs {
		sup, malformed := suppressions(pkg)
		diags = append(diags, malformed...)
		for _, pass := range r.Passes {
			if r.Scope != nil && !r.Scope(pass, pkg) {
				continue
			}
			for _, d := range pass.Run(pkg) {
				if sup.allows(d) {
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	for _, pass := range r.Passes {
		if f, ok := pass.(Finisher); ok {
			diags = append(diags, f.Finish()...)
		}
	}
	SortDiagnostics(diags)
	return diags
}

// ---- //vet:allow suppression ----
//
// A finding may be silenced, with a mandatory justification, by a
// comment on the same line as the finding or on the line directly
// above it:
//
//	//vet:allow determinism -- Fig5 measures wall time; the clock IS the result
//
// The pass list is comma-separated; the reason after " -- " must be
// non-empty. A comment that starts with //vet:allow but does not parse
// is itself a finding, so suppressions can never silently rot.

var allowRE = regexp.MustCompile(`^//vet:allow ([a-z][a-z0-9-]*(?:,[a-z][a-z0-9-]*)*) -- \S`)

// suppressed records which passes are allowed on which line of which file.
type suppressed map[string]map[int]map[string]bool

func (s suppressed) allows(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if lines[line][d.Pass] {
			return true
		}
	}
	return false
}

// suppressions scans a package's comments for //vet:allow markers.
func suppressions(pkg *Package) (suppressed, []Diagnostic) {
	sup := suppressed{}
	var malformed []Diagnostic
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, "//vet:allow") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					malformed = append(malformed, Diagnostic{
						Pos:     pos,
						Pass:    "vet",
						Message: `malformed //vet:allow comment: want "//vet:allow <pass>[,<pass>...] -- <reason>"`,
					})
					continue
				}
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup[pos.Filename] = lines
				}
				passes := lines[pos.Line]
				if passes == nil {
					passes = map[string]bool{}
					lines[pos.Line] = passes
				}
				for _, name := range strings.Split(m[1], ",") {
					passes[name] = true
				}
			}
		}
	}
	return sup, malformed
}

// ---- shared AST / type helpers ----

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, type conversions, and calls of function-typed values.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isBuiltin reports whether the identifier resolves to the named
// predeclared function (panic, append, ...).
func isBuiltin(pkg *Package, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// pkgFunc reports whether f is the package-level function path.name.
func pkgFunc(f *types.Func, path, name string) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return f.Pkg().Path() == path && f.Name() == name
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// enclosingFuncName names the top-level declaration containing pos:
// "Func" for functions, "Type.Method" for methods (pointer receivers
// included), "init" for package-level initializers. Function literals
// report their enclosing declaration, which is how the panic allowlist
// keys sites.
func enclosingFuncName(file *ast.File, pos token.Pos) string {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos >= fd.End() {
			continue
		}
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
		}
		return fd.Name.Name
	}
	return "init"
}

// recvTypeName extracts the bare receiver type name from a receiver
// type expression ("*Circuit" -> "Circuit", "Model" -> "Model").
func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	default:
		return "?"
	}
}

// relFile returns file's path relative to root in slash form, or the
// input unchanged when it is not under root.
func relFile(root, file string) string {
	if root == "" {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(root, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}
