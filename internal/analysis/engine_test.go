package analysis

import (
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// loadSrc type-checks one source string as a standalone package.
func loadSrc(t *testing.T, pkgPath, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "src.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("source does not type-check: %v", pkg.TypeErrors)
	}
	return pkg
}

// lookupFunc resolves a package-level function or "Type.Method" name.
func lookupFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	scope := pkg.Types.Scope()
	if tname, mname, ok := splitMethodName(name); ok {
		obj := scope.Lookup(tname)
		if obj == nil {
			t.Fatalf("type %s not found", tname)
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			t.Fatalf("%s is not a named type", tname)
		}
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == mname {
				return named.Method(i)
			}
		}
		t.Fatalf("method %s not found on %s", mname, tname)
	}
	f, ok := scope.Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("function %s not found", name)
	}
	return f
}

func splitMethodName(name string) (typeName, methodName string, ok bool) {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i], name[i+1:], true
		}
	}
	return "", "", false
}

func TestEngineBlockingFixpointWithCycle(t *testing.T) {
	pkg := loadSrc(t, "eng", `package eng

import "time"

func A(n int) {
	if n > 0 {
		B(n - 1)
	}
}

func B(n int) {
	A(n)
	X()
}

func X() {
	time.Sleep(time.Millisecond)
}

func Y() int { return 1 }

func Spawn() {
	go X()
}

func ChanWait(ch chan int) int { return <-ch }

func PollOnly(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}
`)
	e := NewEngine([]*Package{pkg})
	cases := []struct {
		fn   string
		want bool
	}{
		{"A", true}, // via cycle through B -> X
		{"B", true},
		{"X", true},
		{"Y", false},
		{"Spawn", false},    // go-statement targets don't block the spawner
		{"ChanWait", true},  // bare receive parks
		{"PollOnly", false}, // select with default falls through
	}
	for _, c := range cases {
		if got := e.Blocking(lookupFunc(t, pkg, c.fn)); got != c.want {
			t.Errorf("Blocking(%s) = %v, want %v", c.fn, got, c.want)
		}
	}
}

func TestEngineCoverageTransitiveAndEscape(t *testing.T) {
	pkg := loadSrc(t, "eng", `package eng

import "fmt"

type K struct {
	A int
	B int
	C int
}

func (k K) Key() int { return k.A + k.helper() }

func (k K) helper() int { return k.B }

type E struct {
	A int
	B int
}

func (e E) Key() string { return fmt.Sprint(e) }
`)
	e := NewEngine([]*Package{pkg})

	kNamed := pkg.Types.Scope().Lookup("K").Type().(*types.Named)
	covered, all := e.Coverage(lookupFunc(t, pkg, "K.Key"), kNamed)
	if all {
		t.Fatalf("K never escapes whole; all = true")
	}
	st := kNamed.Underlying().(*types.Struct)
	want := map[string]bool{"A": true, "B": true, "C": false}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if covered[f] != want[f.Name()] {
			t.Errorf("coverage of K.%s = %v, want %v", f.Name(), covered[f], want[f.Name()])
		}
	}

	eNamed := pkg.Types.Scope().Lookup("E").Type().(*types.Named)
	if _, all := e.Coverage(lookupFunc(t, pkg, "E.Key"), eNamed); !all {
		t.Fatalf("fmt.Sprint(e) hands the value to reflection; all = false")
	}
}

func TestEngineContextVariantLookup(t *testing.T) {
	pkg := loadSrc(t, "eng", `package eng

import "context"

func Fetch(n int) int { return FetchContext(context.Background(), n) }

func FetchContext(ctx context.Context, n int) int { return n }

func Lone(n int) int { return n }

type J struct{ n int }

func (j *J) Run() int { return j.RunContext(context.Background()) }

func (j *J) RunContext(ctx context.Context) int { return j.n }
`)
	e := NewEngine([]*Package{pkg})
	if v := e.ContextVariant(lookupFunc(t, pkg, "Fetch")); v == nil || v.Name() != "FetchContext" {
		t.Errorf("ContextVariant(Fetch) = %v, want FetchContext", v)
	}
	if v := e.ContextVariant(lookupFunc(t, pkg, "FetchContext")); v != nil {
		t.Errorf("ContextVariant(FetchContext) = %v, want nil (already takes a context)", v)
	}
	if v := e.ContextVariant(lookupFunc(t, pkg, "Lone")); v != nil {
		t.Errorf("ContextVariant(Lone) = %v, want nil", v)
	}
	if v := e.ContextVariant(lookupFunc(t, pkg, "J.Run")); v == nil || v.Name() != "RunContext" {
		t.Errorf("ContextVariant(J.Run) = %v, want RunContext", v)
	}
}
