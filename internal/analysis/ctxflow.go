package analysis

// ctxflow enforces context propagation: once a function holds a
// context.Context, cancellation must flow through it, not be severed
// mid-call-chain. Two clauses:
//
//   - a function must not mint a fresh root via context.Background() or
//     context.TODO(): with a context parameter in scope that severs the
//     caller's deadline; without one it creates an uncancellable root.
//     Roots are legitimate only in package main, in tests (which the
//     loader never feeds to passes), in explicitly sanctioned roots
//     (the serve listener's lifecycle context), and in the module's
//     convenience-wrapper idiom — a body that is exactly
//     `return <Name>Context(context.Background(), ...)`, the documented
//     bridge for context-free callers;
//
//   - a function holding a context must not call the context-free
//     convenience wrapper of an operation whose <Name>Context variant
//     exists: that silently drops the deadline PR 4/6 threaded by hand.

import (
	"fmt"
	"go/ast"
	"go/types"
)

type CtxFlow struct {
	engine *Engine
	// AllowBackground lists sanctioned context roots as
	// "pkgpath.FuncName" (e.g. "velociti/internal/serve.New"): the
	// places a fresh lifecycle context is the design.
	AllowBackground map[string]bool
}

func (*CtxFlow) Name() string { return "ctxflow" }

// SetEngine satisfies EnginePass.
func (c *CtxFlow) SetEngine(e *Engine) { c.engine = e }

// Run applies both clauses to every function declared in pkg.
func (c *CtxFlow) Run(pkg *Package) []Diagnostic {
	if c.engine == nil || pkg.Types == nil {
		return nil
	}
	if pkg.Types.Name() == "main" {
		// Process entry points are where roots belong.
		return nil
	}
	var diags []Diagnostic
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			diags = append(diags, c.checkFunc(pkg, fd, fn)...)
		}
	}
	return diags
}

func (c *CtxFlow) checkFunc(pkg *Package, fd *ast.FuncDecl, fn *types.Func) []Diagnostic {
	s := c.engine.Summary(fn)
	if s == nil {
		return nil
	}
	sanctionedRoot := c.AllowBackground[pkg.Path+"."+fn.Name()]
	isWrapper := isContextWrapper(pkg, fd)
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pkg, call)
		if f == nil {
			return true
		}
		if pkgFunc(f, "context", "Background") || pkgFunc(f, "context", "TODO") {
			switch {
			case isWrapper, sanctionedRoot:
			case s.TakesContext:
				diags = append(diags, Diagnostic{
					Pos:  pkg.Fset.Position(call.Pos()),
					Pass: c.Name(),
					Message: fmt.Sprintf("%s already has a context.Context parameter but mints a fresh root via context.%s; "+
						"pass the parameter through so cancellation propagates", fn.Name(), f.Name()),
				})
			default:
				diags = append(diags, Diagnostic{
					Pos:  pkg.Fset.Position(call.Pos()),
					Pass: c.Name(),
					Message: fmt.Sprintf("context.%s outside main, tests, and sanctioned roots creates an uncancellable context; "+
						"accept a context.Context parameter (or add a %sContext variant and make this the single-return wrapper)",
						f.Name(), fn.Name()),
				})
			}
			return true
		}
		if s.TakesContext {
			if v := c.engine.ContextVariant(f); v != nil {
				diags = append(diags, Diagnostic{
					Pos:  pkg.Fset.Position(call.Pos()),
					Pass: c.Name(),
					Message: fmt.Sprintf("%s holds a context.Context but calls %s, which drops it; call %s and forward the context",
						fn.Name(), f.Name(), v.Name()),
				})
			}
		}
		return true
	})
	return diags
}

// isContextWrapper reports whether fd is the sanctioned convenience
// wrapper: a body consisting of exactly one statement — a return (or
// bare call, for void functions) of <Name>Context(...) — so callers
// without a context get the documented Background bridge and nothing
// else.
func isContextWrapper(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch stmt := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(stmt.Results) != 1 {
			return false
		}
		call, _ = ast.Unparen(stmt.Results[0]).(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = ast.Unparen(stmt.X).(*ast.CallExpr)
	}
	if call == nil {
		return false
	}
	f := calleeFunc(pkg, call)
	return f != nil && f.Name() == fd.Name.Name+"Context"
}
