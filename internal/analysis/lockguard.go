package analysis

// lockguard enforces the module's lock discipline across three clauses:
//
//   - no by-value copies of structs containing sync primitives (value
//     receivers, value parameters, assignments that load an existing
//     variable, range values) — a copied mutex guards nothing;
//
//   - no mutex held across a blocking callee: channel operations,
//     select without default, or any function the interprocedural
//     engine's fixpoint marks blocking (pool.RunAll via WaitGroup.Wait,
//     net/http writes, time.Sleep, ...). Holding a lock across a park
//     turns a shared-cache hiccup into a pile-up of every goroutine
//     that touches the lock;
//
//   - unlock pairing on all paths: a lock acquired in a function must
//     be released (directly or by defer) on every path out of it.
//
// The walker is statement-structured: it threads a held-lock state
// through each statement list, clones the state into branches
// (if/switch/select arms), and treats return as a path exit where
// pairing is checked. Loop bodies are analyzed with a cloned state and
// assumed lock-balanced — precise loop-carried lock tracking is out of
// scope for a lite checker.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockGuard is the lock-discipline pass.
type LockGuard struct {
	engine *Engine
}

func (*LockGuard) Name() string { return "lockguard" }

// SetEngine satisfies EnginePass.
func (g *LockGuard) SetEngine(e *Engine) { g.engine = e }

// lockMethods classifies the sync locking API. RLock/RUnlock pair with
// each other; the walker keys held entries by receiver expression plus
// read/write mode.
var lockAcquire = map[string]bool{
	"(*sync.Mutex).Lock":    true,
	"(*sync.RWMutex).Lock":  true,
	"(*sync.RWMutex).RLock": true,
}

var lockRelease = map[string]string{
	"(*sync.Mutex).Unlock":    "(*sync.Mutex).Lock",
	"(*sync.RWMutex).Unlock":  "(*sync.RWMutex).Lock",
	"(*sync.RWMutex).RUnlock": "(*sync.RWMutex).RLock",
}

// heldLock is one acquired-and-not-yet-released lock.
type heldLock struct {
	key      string // receiver expression + acquire method
	expr     string // receiver expression, for messages
	pos      token.Pos
	deferred bool // a deferred release is registered
}

// lockState threads through a statement list.
type lockState struct {
	held       []heldLock
	terminated bool // the path ended (return / panic-free exit not modeled)
}

func (st *lockState) clone() *lockState {
	c := &lockState{terminated: st.terminated}
	c.held = append(c.held, st.held...)
	return c
}

func (st *lockState) acquire(key, expr string, pos token.Pos) {
	st.held = append(st.held, heldLock{key: key, expr: expr, pos: pos})
}

// release drops the most recent matching entry; unmatched releases are
// ignored (helpers releasing caller-held locks are out of scope).
func (st *lockState) release(key string) {
	for i := len(st.held) - 1; i >= 0; i-- {
		if st.held[i].key == key {
			st.held = append(st.held[:i], st.held[i+1:]...)
			return
		}
	}
}

func (st *lockState) markDeferred(key string) {
	for i := len(st.held) - 1; i >= 0; i-- {
		if st.held[i].key == key && !st.held[i].deferred {
			st.held[i].deferred = true
			return
		}
	}
}

// liveLocks returns the held locks with no deferred release.
func (st *lockState) liveLocks() []heldLock {
	var live []heldLock
	for _, h := range st.held {
		if !h.deferred {
			live = append(live, h)
		}
	}
	return live
}

// Run applies the three clauses to every function declared in pkg.
func (g *LockGuard) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			diags = append(diags, g.checkCopies(pkg, fd)...)
			if fd.Body != nil && g.engine != nil {
				w := &lockWalker{pkg: pkg, engine: g.engine, pass: g.Name()}
				st := &lockState{}
				w.walkStmts(fd.Body.List, st)
				w.checkExit(st, "function end")
				diags = append(diags, w.diags...)
			}
		}
	}
	return diags
}

// ---- clause 1: by-value copies of sync-bearing structs ----

// checkCopies flags value receivers, value parameters, copying
// assignments, and range values whose type contains a sync primitive.
func (g *LockGuard) checkCopies(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	flag := func(pos token.Pos, what string, t types.Type) {
		diags = append(diags, Diagnostic{
			Pos:  pkg.Fset.Position(pos),
			Pass: g.Name(),
			Message: fmt.Sprintf("%s copies %s, which contains a sync primitive; a copied lock guards nothing — use a pointer",
				what, types.TypeString(t, types.RelativeTo(pkg.Types))),
		})
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if t := declaredType(pkg, fd.Recv.List[0].Type); t != nil && containsSync(t) {
			flag(fd.Recv.List[0].Type.Pos(), "value receiver", t)
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if t := declaredType(pkg, field.Type); t != nil && containsSync(t) {
				flag(field.Type.Pos(), "value parameter", t)
			}
		}
	}
	if fd.Body == nil {
		return diags
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				if i >= len(node.Lhs) || !isVariableLoad(rhs) {
					continue
				}
				if tv, ok := pkg.Info.Types[rhs]; ok && tv.Type != nil && containsSync(tv.Type) {
					flag(rhs.Pos(), "assignment", tv.Type)
				}
			}
		case *ast.RangeStmt:
			if node.Value == nil || isBlank(node.Value) {
				return true
			}
			if tv, ok := pkg.Info.Types[node.X]; ok && tv.Type != nil {
				if et := rangeElemType(tv.Type); et != nil && containsSync(et) {
					flag(node.Value.Pos(), "range value", et)
				}
			}
		}
		return true
	})
	return diags
}

// declaredType resolves the type a field/receiver expression denotes.
func declaredType(pkg *Package, expr ast.Expr) types.Type {
	tv, ok := pkg.Info.Types[expr]
	if !ok {
		return nil
	}
	return tv.Type
}

// isVariableLoad reports whether copying expr duplicates an existing
// variable's storage: identifiers, field selections, dereferences, and
// index expressions. Composite literals and call results are fresh
// values — copying them is construction, not aliasing a live lock.
func isVariableLoad(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name != "_"
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// rangeElemType returns the per-iteration value type of ranging over t,
// or nil when there is no second range variable worth checking.
func rangeElemType(t types.Type) types.Type {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Map:
		return u.Elem()
	case *types.Pointer:
		if arr, ok := u.Elem().Underlying().(*types.Array); ok {
			return arr.Elem()
		}
	}
	return nil
}

// syncTypes are the sync package's copy-sensitive primitives.
var syncTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Cond": true,
	"Once": true, "Map": true, "Pool": true,
}

// containsSync reports whether t embeds a sync primitive by value,
// recursing through named types, struct fields, and arrays. Pointers
// stop the recursion: copying a pointer shares the lock correctly.
func containsSync(t types.Type) bool {
	return containsSyncSeen(t, map[types.Type]bool{})
}

func containsSyncSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncTypes[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsSyncSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsSyncSeen(u.Elem(), seen)
	}
	return false
}

// ---- clauses 2 and 3: held-across-blocking and unlock pairing ----

// lockWalker threads lockState through one function body.
type lockWalker struct {
	pkg    *Package
	engine *Engine
	pass   string
	diags  []Diagnostic
}

func (w *lockWalker) report(pos token.Pos, format string, args ...any) {
	w.diags = append(w.diags, Diagnostic{
		Pos:     w.pkg.Fset.Position(pos),
		Pass:    w.pass,
		Message: fmt.Sprintf(format, args...),
	})
}

// checkExit flags locks still live when a path leaves the function.
func (w *lockWalker) checkExit(st *lockState, where string) {
	if st.terminated {
		return
	}
	for _, h := range st.liveLocks() {
		w.report(h.pos, "%s.Lock() is not released on the path reaching %s; unlock on every path (or defer the unlock)", h.expr, where)
	}
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt, st *lockState) {
	for _, stmt := range stmts {
		if st.terminated {
			return
		}
		w.walkStmt(stmt, st)
	}
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, st *lockState) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		w.walkStmts(s.List, st)
	case *ast.ExprStmt:
		w.walkExpr(s.X, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.walkExpr(rhs, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		if key, _, kind := w.lockCall(s.Call); kind == lockOpRelease {
			st.markDeferred(key)
		}
		// Other deferred calls run at return, outside the held window
		// the walker models; their own bodies are summarized separately.
	case *ast.GoStmt:
		// The spawned goroutine runs concurrently; the spawner neither
		// blocks nor holds its locks there.
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			w.walkExpr(res, st)
		}
		for _, h := range st.liveLocks() {
			w.report(h.pos, "%s.Lock() is still held at return; unlock before returning or defer the unlock", h.expr)
		}
		st.terminated = true
	case *ast.SendStmt:
		w.blockingOp(s.Pos(), "channel send", st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkExpr(s.Cond, st)
		thenSt := st.clone()
		w.walkStmts(s.Body.List, thenSt)
		if s.Else != nil {
			elseSt := st.clone()
			w.walkStmt(s.Else, elseSt)
			w.mergeBranches(st, thenSt, elseSt)
		} else {
			w.mergeBranches(st, thenSt, nil)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag, st)
		}
		w.walkCaseBodies(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkCaseBodies(s.Body, st)
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			w.blockingOp(s.Pos(), "select", st)
		}
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := st.clone()
			w.walkStmts(cc.Body, branch)
			w.checkBalanced(st, branch, cc.Pos())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond, st)
		}
		body := st.clone()
		w.walkStmts(s.Body.List, body)
		w.checkBalanced(st, body, s.Pos())
	case *ast.RangeStmt:
		w.walkExpr(s.X, st)
		if tv, ok := w.pkg.Info.Types[s.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.blockingOp(s.Pos(), "range over channel", st)
			}
		}
		body := st.clone()
		w.walkStmts(s.Body.List, body)
		w.checkBalanced(st, body, s.Pos())
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, st)
	}
}

// walkCaseBodies analyzes each case arm with a cloned state and keeps
// the entry state afterwards (conservative: the arms must be
// lock-balanced, which checkBalanced enforces).
func (w *lockWalker) walkCaseBodies(body *ast.BlockStmt, st *lockState) {
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.walkExpr(e, st)
		}
		branch := st.clone()
		w.walkStmts(cc.Body, branch)
		w.checkBalanced(st, branch, cc.Pos())
	}
}

// mergeBranches folds branch outcomes back into st. A path that
// terminated (returned) already had its pairing checked; among
// non-terminated outcomes the walker keeps the intersection-by-count —
// in this module's patterns (lock; if hit { unlock; return }; unlock)
// branches either preserve or symmetrically release, so keeping the
// shorter held-set is both safe and precise enough.
func (w *lockWalker) mergeBranches(st, thenSt, elseSt *lockState) {
	outcomes := []*lockState{}
	if !thenSt.terminated {
		outcomes = append(outcomes, thenSt)
	}
	if elseSt == nil {
		outcomes = append(outcomes, st.clone())
	} else if !elseSt.terminated {
		outcomes = append(outcomes, elseSt)
	}
	if len(outcomes) == 0 {
		st.terminated = true
		return
	}
	min := outcomes[0]
	for _, o := range outcomes[1:] {
		if len(o.held) < len(min.held) {
			min = o
		}
	}
	st.held = min.held
}

// checkBalanced flags a sub-body (loop iteration, case arm) that exits
// with a different live-lock set than it entered with, unless the arm
// terminated (return paths are checked at the return).
func (w *lockWalker) checkBalanced(entry, exit *lockState, pos token.Pos) {
	if exit.terminated {
		return
	}
	if len(exit.liveLocks()) > len(entry.liveLocks()) {
		for _, h := range exit.liveLocks()[len(entry.liveLocks()):] {
			w.report(h.pos, "%s.Lock() acquired in this branch/loop body is not released before the body ends", h.expr)
		}
	}
}

// walkExpr processes one expression: lock-state transitions for
// Lock/Unlock calls, blocking checks for receives and blocking callees,
// all in source order.
func (w *lockWalker) walkExpr(expr ast.Expr, st *lockState) {
	w.scanExprOps(expr, st)
}

// scanExprOps walks an expression subtree in source order, updating
// lock state and reporting blocking operations under held locks.
// Function literals are skipped: their bodies run at some other time,
// under whatever locks their caller then holds.
func (w *lockWalker) scanExprOps(expr ast.Expr, st *lockState) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				w.blockingOp(node.Pos(), "channel receive", st)
			}
		case *ast.CallExpr:
			key, lockExpr, kind := w.lockCall(node)
			switch kind {
			case lockOpAcquire:
				st.acquire(key, lockExpr, node.Pos())
				return false
			case lockOpRelease:
				st.release(key)
				return false
			}
			if f := calleeFunc(w.pkg, node); f != nil && w.engine.Blocking(f) {
				w.blockingOp(node.Pos(), "blocking call to "+f.Name(), st)
			}
		}
		return true
	})
}

// blockingOp reports every held lock at a blocking operation.
func (w *lockWalker) blockingOp(pos token.Pos, what string, st *lockState) {
	for _, h := range st.held {
		w.report(pos, "%s is held across a %s; release the lock before parking the goroutine (coalesce/cache idiom: unlock, then wait)",
			h.expr, what)
	}
}

type lockOp int

const (
	lockOpNone lockOp = iota
	lockOpAcquire
	lockOpRelease
)

// lockCall classifies a call as a lock acquire/release and returns the
// state key (receiver + acquire method) and the receiver's source text.
func (w *lockWalker) lockCall(call *ast.CallExpr) (key, recv string, kind lockOp) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", lockOpNone
	}
	f := calleeFunc(w.pkg, call)
	if f == nil {
		return "", "", lockOpNone
	}
	full := f.FullName()
	recv = types.ExprString(sel.X)
	if lockAcquire[full] {
		return recv + " " + full, recv, lockOpAcquire
	}
	if acq, ok := lockRelease[full]; ok {
		return recv + " " + acq, recv, lockOpRelease
	}
	return "", "", lockOpNone
}
