// Package determfix exercises the determinism pass: global math/rand,
// wall-clock and environment reads, and map-iteration-order dependence.
package determfix

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

// GlobalRand draws from the shared source.
func GlobalRand() int {
	return rand.Intn(6) // want `\[determinism\] global math/rand source via rand.Intn`
}

// SeededRand constructs a dedicated generator, which is the sanctioned
// path (internal/stats.NewRand does exactly this).
func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Clock reads the wall clock in model code.
func Clock() time.Time {
	return time.Now() // want `\[determinism\] wall-clock read via time.Now`
}

// JustifiedClock measures wall time as its deliverable, like the Fig5
// tool-runtime study.
func JustifiedClock() time.Time {
	return time.Now() //vet:allow determinism -- fixture: the clock is the measured quantity
}

// Env reads host state.
func Env() string {
	return os.Getenv("HOME") // want `\[determinism\] environment read via os.Getenv`
}

// MapLiteral ranges over contents fixed at the call site.
func MapLiteral() {
	for name := range map[string]bool{"a": true, "b": true} { // want `\[determinism\] range over a map literal`
		fmt.Println(name)
	}
}

// UnsortedAppend grows a slice in map-iteration order and never sorts.
func UnsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `\[determinism\] map iteration order drives append`
		keys = append(keys, k)
	}
	return keys
}

// SortedAppend is the collect-then-sort idiom.
func SortedAppend(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PrintsInMapOrder writes output while iterating a map.
func PrintsInMapOrder(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `\[determinism\] output written in map-iteration order`
	}
}

// CountsInMapOrder is order-independent and clean.
func CountsInMapOrder(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
