// Package clean holds representative idiomatic code that must produce
// zero findings from all four passes: validated errors, seeded
// randomness, sorted map iteration, and no panics.
package clean

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Summary renders m deterministically.
func Summary(m map[string]float64) (string, error) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	var total float64
	for _, k := range keys {
		total += m[k]
		fmt.Fprintf(&sb, "%s=%g\n", k, m[k])
	}
	if total < 0 {
		return "", fmt.Errorf("clean: negative total %g", total)
	}
	sb.WriteString(fmt.Sprintf("total=%g\n", total))
	return sb.String(), nil
}

// Shuffled returns a deterministic permutation for a given seed.
func Shuffled(seed int64, n int) []int {
	r := rand.New(rand.NewSource(seed))
	out := r.Perm(n)
	return out
}
