// Package floatsumfix exercises the floatsum pass: floating-point
// accumulators updated in map-iteration order are findings; integer
// accumulators, per-iteration temporaries, keyed writes, and slice
// iteration are not.
package floatsumfix

import "sort"

// Stats carries a float field used as an accumulator.
type Stats struct{ Total float64 }

// SumMap accumulates with +=.
func SumMap(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `\[floatsum\] floating-point accumulation in map-iteration order`
	}
	return sum
}

// SumMapSpelled accumulates with the spelled-out form.
func SumMapSpelled(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want `\[floatsum\] floating-point accumulation in map-iteration order`
	}
	return sum
}

// ProductField accumulates into a struct field.
func ProductField(m map[string]float64, s *Stats) {
	for _, v := range m {
		s.Total *= v // want `\[floatsum\] floating-point accumulation in map-iteration order`
	}
}

// IntSum is exact whatever the order.
func IntSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// PerIterationTemp resets the accumulator each iteration, so order
// cannot matter.
func PerIterationTemp(m map[string][]float64) []float64 {
	var out []float64
	for _, vs := range m {
		local := 0.0
		for _, v := range vs {
			local += v
		}
		out = append(out, local)
	}
	sort.Float64s(out)
	return out
}

// KeyedWrite lands on a distinct key per iteration.
func KeyedWrite(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] += v
	}
	return out
}

// SliceSum iterates a slice, which has a fixed order.
func SliceSum(vs []float64) float64 {
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum
}

// SortedKeySum is the sanctioned pattern for map data.
func SortedKeySum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}
