// Package keycoverfix exercises the keycover pass: a struct field a key
// computation never reads (directly, through helpers, or via a
// whole-value escape into reflection) is a finding unless exempted.
package keycoverfix

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// Incomplete is the PR-7 bug shape: a behavior-relevant field the key
// does not cover.
type Incomplete struct {
	Alpha float64
	Beta  float64 // want `\[keycover\] field Beta of Incomplete is not read by CacheKey`
}

func (k Incomplete) CacheKey() string {
	return strconv.FormatFloat(k.Alpha, 'g', -1, 64)
}

// Complete reads one field directly and one through a helper; coverage
// is transitive over the call closure.
type Complete struct {
	Alpha float64
	Beta  float64
}

func (k Complete) CacheKey() string {
	return k.alphaPart() + "|" + strconv.FormatFloat(k.Beta, 'g', -1, 64)
}

func (k Complete) alphaPart() string {
	return strconv.FormatFloat(k.Alpha, 'g', -1, 64)
}

// Escaped hands the whole receiver to reflection (json.Marshal), which
// reads every field: all fields count as covered.
type Escaped struct {
	Alpha float64
	Beta  float64
}

func (k Escaped) CacheKey() string {
	b, err := json.Marshal(k)
	if err != nil {
		return fmt.Sprintf("%v", k)
	}
	return string(b)
}

// Exempt carries a marker naming the uncovered field, with a reason.
type Exempt struct {
	Alpha float64
	//vet:keyexempt scratch -- derived scratch space recomputed per run; never influences a cached artifact
	scratch []float64
}

func (k Exempt) CacheKey() string {
	return strconv.FormatFloat(k.Alpha, 'g', -1, 64)
}

// base supplies a promoted field.
type base struct {
	Gamma float64
}

// Promoted reads the promoted Gamma, which covers the embedded base
// field on the selection path; Other stays uncovered.
type Promoted struct {
	base
	Other float64 // want `\[keycover\] field Other of Promoted is not read by CacheKey`
}

func (k Promoted) CacheKey() string {
	return strconv.FormatFloat(k.Gamma, 'g', -1, 64)
}

// Printed uses the Fingerprint spelling of a key method.
type Printed struct {
	Name string
	seen map[string]bool // want `\[keycover\] field seen of Printed is not read by Fingerprint`
}

func (c *Printed) Fingerprint() uint64 {
	return uint64(len(c.Name))
}

// SearchKey mirrors the stage pipeline's search-artifact key (PR 9): a
// component-per-field struct whose CacheKey reads every field through one
// Sprintf call site. All five fields count as covered via the argument
// reads.
type SearchKey struct {
	Dev      string
	Workload string
	Pol      string
	Placer   string
	Backend  string
}

func (k SearchKey) CacheKey() string {
	return fmt.Sprintf("search|%s|%s|pol=%s|placer=%s|be=%s", k.Dev, k.Workload, k.Pol, k.Placer, k.Backend)
}

// SearchKeyDrift is the same shape after a refactor drops a component
// from the format string — the cache-collision regression the pass
// exists to catch.
type SearchKeyDrift struct {
	Dev    string
	Placer string // want `\[keycover\] field Placer of SearchKeyDrift is not read by CacheKey`
}

func (k SearchKeyDrift) CacheKey() string {
	return "search|" + k.Dev
}

// Plain has no key method; its fields are nobody's business.
type Plain struct {
	A int
	B int
}
