// Package panicfix exercises the panicguard pass: panics outside the
// allowlist are findings, allowlisted sites (allowlist.txt next to this
// file) are not, and test files never reach the pass at all.
package panicfix

import "fmt"

// Allowed is listed in allowlist.txt, so its panic is a documented
// invariant.
func Allowed(i, n int) {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("panicfix: index %d out of range [0,%d)", i, n))
	}
}

// Bad is not allowlisted.
func Bad(input string) {
	if input == "" {
		panic("panicfix: empty input") // want `\[panicguard\] panic in panicfix.go Bad is not in the panic allowlist`
	}
}

// Recv exercises method naming: the allowlist keys pointer-receiver
// methods as Type.Method.
type Recv struct{ n int }

// Check is allowlisted as "panicfix.go Recv.Check".
func (r *Recv) Check(i int) {
	if i >= r.n {
		panic("panicfix: recv check")
	}
}

// Closure panics inside a function literal, which panicguard attributes
// to the enclosing declaration.
func Closure() func() {
	return func() {
		panic("panicfix: closure") // want `\[panicguard\] panic in panicfix.go Closure is not in the panic allowlist`
	}
}
