// Package errcheckfix exercises the errcheck-lite pass: dropped error
// results are findings, the never-fails callee list and checked errors
// are not.
package errcheckfix

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Drops demonstrates the flagged shapes.
func Drops(path string) {
	os.Remove(path)       // want `\[errcheck-lite\] error result of os.Remove is dropped`
	_ = os.Remove(path)   // want `\[errcheck-lite\] error result of os.Remove is assigned to _`
	f, _ := os.Open(path) // want `\[errcheck-lite\] error result of os.Open is assigned to _`
	_ = f
	n, _ := strconv.Atoi(path) // want `\[errcheck-lite\] error result of strconv.Atoi is assigned to _`
	_ = n
}

// Fine demonstrates the accepted shapes: handled errors, the fmt print
// family, and the builder types whose errors are documented nil.
func Fine(path string) error {
	if err := os.Remove(path); err != nil {
		return err
	}
	fmt.Println("ok")
	fmt.Fprintf(os.Stderr, "ok\n")
	var sb strings.Builder
	sb.WriteString("ok")
	n, err := strconv.Atoi(path)
	if err != nil {
		return err
	}
	_ = n
	return nil
}

// Justified drops an error under a //vet:allow suppression with a
// reason, which the runner honors.
func Justified(path string) {
	//vet:allow errcheck-lite -- fixture: demonstrates justified suppression
	os.Remove(path)
}

// Goroutines demonstrates the go-statement clause: a spawned call whose
// error result nothing can observe is a finding; closures that route
// the error to a channel, and deferred closes, are not.
func Goroutines(path string) error {
	go os.Remove(path) // want `\[errcheck-lite\] error result of os.Remove is dropped by the go statement`

	errc := make(chan error, 1)
	go func() { errc <- os.Remove(path) }()

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() // documented exemption: deferred close on a read path
	return <-errc
}
