// Package ctxflowfix exercises the ctxflow pass: context roots outside
// sanctioned places and context-dropping calls to convenience wrappers
// are findings; the single-return wrapper idiom and proper forwarding
// are not.
package ctxflowfix

import "context"

// DoContext is the cancellable variant.
func DoContext(ctx context.Context, n int) int {
	select {
	case <-ctx.Done():
		return 0
	default:
	}
	return n
}

// Do is the sanctioned convenience wrapper: a single return bridging
// context-free callers.
func Do(n int) int {
	return DoContext(context.Background(), n)
}

// BadHolder severs its caller's deadline by minting a fresh root.
func BadHolder(ctx context.Context) int {
	return DoContext(context.Background(), 1) // want `\[ctxflow\] BadHolder already has a context.Context parameter but mints a fresh root via context.Background`
}

// Dropper holds a context but calls the context-free wrapper.
func Dropper(ctx context.Context) int {
	return Do(1) // want `\[ctxflow\] Dropper holds a context.Context but calls Do, which drops it; call DoContext and forward the context`
}

// Rootless mints a root with no context parameter and is not the
// wrapper idiom (the root is not the single return).
func Rootless() int {
	ctx := context.TODO() // want `\[ctxflow\] context.TODO outside main, tests, and sanctioned roots creates an uncancellable context`
	return DoContext(ctx, 1)
}

// Good forwards the parameter it holds.
func Good(ctx context.Context) int {
	return DoContext(ctx, 1)
}

// Job carries the method-shaped variant pair.
type Job struct {
	n int
}

// RunContext is the cancellable method.
func (j *Job) RunContext(ctx context.Context) int {
	select {
	case <-ctx.Done():
		return 0
	default:
	}
	return j.n
}

// Run is the method-shaped wrapper.
func (j *Job) Run() int {
	return j.RunContext(context.Background())
}

// UseJob drops its context by calling the wrapper.
func UseJob(ctx context.Context, j *Job) int {
	return j.Run() // want `\[ctxflow\] UseJob holds a context.Context but calls Run, which drops it; call RunContext and forward the context`
}

// UseJobWell forwards it.
func UseJobWell(ctx context.Context, j *Job) int {
	return j.RunContext(ctx)
}
