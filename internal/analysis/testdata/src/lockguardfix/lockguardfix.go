// Package lockguardfix exercises the lockguard pass: sync-bearing
// structs copied by value, locks held across blocking operations, and
// locks not released on every path are findings; the repo's
// unlock-then-wait and defer idioms are not.
package lockguardfix

import (
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	n  int
}

// HeldAcrossSleep parks the goroutine while holding the lock.
func (c *counter) HeldAcrossSleep() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want `\[lockguard\] c.mu is held across a blocking call to Sleep`
	c.mu.Unlock()
}

// HeldAcrossChannel blocks on a receive while holding the lock.
func (c *counter) HeldAcrossChannel(ch chan int) int {
	c.mu.Lock()
	v := <-ch // want `\[lockguard\] c.mu is held across a channel receive`
	c.mu.Unlock()
	return v
}

// HeldTransitive blocks through a module callee the engine's fixpoint
// marks blocking.
func (c *counter) HeldTransitive(ch chan int) {
	c.mu.Lock()
	drain(ch) // want `\[lockguard\] c.mu is held across a blocking call to drain`
	c.mu.Unlock()
}

func drain(ch chan int) {
	for range ch {
	}
}

// LeakOnEarlyReturn misses the unlock on the early path.
func (c *counter) LeakOnEarlyReturn(cond bool) int {
	c.mu.Lock() // want `\[lockguard\] c.mu.Lock\(\) is still held at return`
	if cond {
		return 0
	}
	c.mu.Unlock()
	return c.n
}

// Balanced releases on both paths: clean.
func (c *counter) Balanced(cond bool) int {
	c.mu.Lock()
	if cond {
		c.mu.Unlock()
		return 0
	}
	v := c.n
	c.mu.Unlock()
	return v
}

// DeferBalanced is the defer idiom: clean.
func (c *counter) DeferBalanced() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// DeferButBlocking defers the unlock but still parks while holding.
func (c *counter) DeferButBlocking(ch chan int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-ch // want `\[lockguard\] c.mu is held across a channel receive`
}

// UnlockThenWait is the sanctioned coalesce idiom: release, then park.
func (c *counter) UnlockThenWait(ch chan int) int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n + <-ch
}

// PollNonBlocking uses select-with-default under the lock: the select
// falls through instead of parking, so holding the lock is fine.
func (c *counter) PollNonBlocking(ch chan int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case v := <-ch:
		return c.n + v
	default:
		return c.n
	}
}

// ValueReceiver copies the mutex with every call.
func (c counter) ValueReceiver() int { // want `\[lockguard\] value receiver copies counter`
	return c.n
}

// CopyParam takes the sync-bearing struct by value.
func CopyParam(c counter) int { // want `\[lockguard\] value parameter copies counter`
	return c.n
}

// CopyAssign duplicates a live lock into a local.
func CopyAssign(c *counter) int {
	local := *c // want `\[lockguard\] assignment copies counter`
	return local.n
}

// CopyRange copies sync-bearing elements per iteration.
func CopyRange(cs []counter) int {
	total := 0
	for _, c := range cs { // want `\[lockguard\] range value copies counter`
		total += c.n
	}
	return total
}

// PointerRange shares the locks correctly: clean.
func PointerRange(cs []*counter) int {
	total := 0
	for _, c := range cs {
		total += c.n
	}
	return total
}

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

// ReadLocked pairs RLock with a deferred RUnlock: clean.
func (t *table) ReadLocked(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// ReadHeldAcrossBlocking parks under a read lock.
func (t *table) ReadHeldAcrossBlocking(k string, ch chan int) int {
	t.mu.RLock()
	v := t.m[k] + <-ch // want `\[lockguard\] t.mu is held across a channel receive`
	t.mu.RUnlock()
	return v
}
