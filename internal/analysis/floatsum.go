package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatSum guards the kernelized hot path's bit-identical guarantee:
// floating-point addition is not associative, so an accumulator updated
// in map-iteration order produces different low bits on different runs
// (and different worker counts). Unlike the determinism append clause,
// no later sort can repair this — the sum is already order-scrambled —
// so every such site is a finding.
//
// Flagged: `acc += x`, `acc -= x`, `acc *= x`, `acc /= x`, and the
// spelled-out `acc = acc + x` forms, where acc has a floating-point
// type and is declared outside the map range (an accumulator, not a
// per-iteration temporary). Accumulators addressed through index
// expressions (m[k] += x) are out of scope: keyed writes land on
// distinct keys and are order-independent.
type FloatSum struct{}

func (*FloatSum) Name() string { return "floatsum" }

// Run flags float accumulation inside map ranges.
func (p *FloatSum) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		forEachMapRange(pkg, file, func(rs *ast.RangeStmt) {
			ast.Inspect(rs.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != 1 {
					return true
				}
				lhs := as.Lhs[0]
				if !isAccumulatorTarget(lhs) || !declaredOutside(pkg, lhs, rs) {
					return true
				}
				t := pkg.Info.Types[lhs].Type
				if t == nil || !isFloat(t) {
					return true
				}
				if !isAccumulatingAssign(as, lhs) {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:  pkg.Fset.Position(as.Pos()),
					Pass: p.Name(),
					Message: "floating-point accumulation in map-iteration order is not bit-reproducible; " +
						"accumulate over a sorted key slice",
				})
				return true
			})
		})
	}
	return diags
}

// isAccumulatingAssign reports whether as updates lhs in terms of its
// previous value: an op-assign token, or `x = x <op> e` / `x = e <op> x`.
func isAccumulatingAssign(as *ast.AssignStmt, lhs ast.Expr) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	case token.ASSIGN:
		bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			want := types.ExprString(lhs)
			return types.ExprString(ast.Unparen(bin.X)) == want || types.ExprString(ast.Unparen(bin.Y)) == want
		}
	}
	return false
}

// isAccumulatorTarget limits the check to plain identifiers and field
// selectors; indexed writes (m[k] += x) are keyed per iteration and
// therefore order-independent.
func isAccumulatorTarget(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name != "_"
	case *ast.SelectorExpr:
		return true
	}
	return false
}

// declaredOutside reports whether the root object of e was declared
// outside the range statement — i.e. it survives across iterations.
func declaredOutside(pkg *Package, e ast.Expr, rs *ast.RangeStmt) bool {
	var root *ast.Ident
	for {
		switch x := e.(type) {
		case *ast.Ident:
			root = x
		case *ast.SelectorExpr:
			e = x.X
			continue
		case *ast.ParenExpr:
			e = x.X
			continue
		}
		break
	}
	if root == nil {
		return false
	}
	obj := pkg.Info.Uses[root]
	if obj == nil {
		obj = pkg.Info.Defs[root]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}
