package analysis

import (
	"path/filepath"
	"sync"
	"testing"
)

var (
	repoModuleOnce sync.Once
	repoModule     *Module
	repoModuleErr  error
)

// TestRepositoryHonorsItsOwnContracts is the in-process twin of the CI
// vet-contracts gate: the seven passes must report zero findings over
// the whole module with the checked-in allowlist. A failure here means
// either new code broke a contract or the allowlist went stale.
func TestRepositoryHonorsItsOwnContracts(t *testing.T) {
	mod := loadRepoModule(t)
	allowlist, err := ParseAllowlist(filepath.Join(mod.Root, "analysis", "panic_allowlist.txt"))
	if err != nil {
		t.Fatal(err)
	}
	runner := NewDefaultRunner(mod.Path, mod.Root, allowlist, true)
	diags := runner.Run(mod.Packages)
	for _, d := range diags {
		t.Errorf("%s", d.String(mod.Root))
	}
}

// TestHotPathPackagesAreClean pins the narrow gate the bench-smoke CI
// job runs: the kernelized hot path (internal/perf, internal/pool)
// must stay contract-clean on its own, with the bit-identical floatsum
// and determinism passes active.
func TestHotPathPackagesAreClean(t *testing.T) {
	mod := loadRepoModule(t)
	allowlist, err := ParseAllowlist(filepath.Join(mod.Root, "analysis", "panic_allowlist.txt"))
	if err != nil {
		t.Fatal(err)
	}
	// complete=false: the panic allowlist legitimately contains entries
	// for packages outside this narrowed selection. Module keeps the
	// engine-backed passes reasoning over whole-module call graphs even
	// though only two packages are checked.
	runner := NewDefaultRunner(mod.Path, mod.Root, allowlist, false)
	runner.Module = mod.Packages
	var hot []*Package
	for _, pkg := range mod.Packages {
		if pkg.Path == "velociti/internal/perf" || pkg.Path == "velociti/internal/pool" {
			hot = append(hot, pkg)
		}
	}
	if len(hot) != 2 {
		t.Fatalf("hot-path packages found = %d, want 2", len(hot))
	}
	for _, d := range runner.Run(hot) {
		t.Errorf("%s", d.String(mod.Root))
	}
}
