package analysis

import "strings"

// modelPackages are the result-producing packages behind the paper's
// figures: randomness, clocks, and the environment are off-limits there
// (DESIGN.md "Static contracts").
var modelPackages = map[string]bool{
	"perf": true, "core": true, "expt": true, "dse": true, "stats": true,
	"schedule": true, "placement": true, "fidelity": true, "route": true,
	"shuttle": true,
}

// IsModelPackage reports whether the import path names one of the model
// packages, given the module path.
func IsModelPackage(modPath, pkgPath string) bool {
	rest, ok := strings.CutPrefix(pkgPath, modPath+"/internal/")
	return ok && modelPackages[rest]
}

// NewDefaultRunner assembles the seven contract passes with the
// production scoping policy:
//
//   - panicguard, floatsum, keycover, and lockguard run on every
//     package;
//   - errcheck-lite and ctxflow run under internal/... and cmd/... (the
//     facade and examples print freely and may root their own
//     contexts);
//   - determinism runs everywhere, but its randomness/clock/environment
//     clauses bind only in the model packages — the map-iteration-order
//     clause binds everywhere.
//
// The engine-backed passes (keycover, ctxflow, lockguard) reason over
// whole-module summaries; callers selecting a package subset should set
// Runner.Module so cross-package call chains stay visible.
//
// complete states that the caller will run the checker over every
// package of the module; only then can an unused panic-allowlist entry
// be declared stale (a partial selection legitimately leaves entries
// for unselected packages unmatched).
func NewDefaultRunner(modPath, moduleRoot string, allowlist *Allowlist, complete bool) *Runner {
	return &Runner{
		Passes: []Pass{
			&PanicGuard{Allowlist: allowlist, ModuleRoot: moduleRoot, ReportStale: complete},
			&ErrCheck{},
			&Determinism{ModelPackage: func(p string) bool { return IsModelPackage(modPath, p) }},
			&FloatSum{},
			&KeyCover{},
			&CtxFlow{AllowBackground: map[string]bool{
				// The serve listener's lifecycle context is the one
				// sanctioned non-main root: the server IS the process
				// boundary, and its context must outlive any request.
				modPath + "/internal/serve.New": true,
			}},
			&LockGuard{},
		},
		Scope: func(pass Pass, pkg *Package) bool {
			if pass.Name() == "errcheck-lite" || pass.Name() == "ctxflow" {
				return strings.HasPrefix(pkg.Path, modPath+"/internal/") ||
					strings.HasPrefix(pkg.Path, modPath+"/cmd/")
			}
			return true
		},
	}
}
