package serve

// Bounded admission with backpressure. Evaluations are CPU-bound, so
// letting every request run concurrently only trades throughput for
// scheduling noise and memory; instead a fixed number of evaluation slots
// admit work, a small bounded queue absorbs bursts, and everything beyond
// that is rejected immediately with 429 + Retry-After so clients back off
// instead of piling up. Coalesced joiners never consume a slot — only
// flight leaders are admitted — so N identical requests cost one slot.

import (
	"context"
	"errors"
	"sync/atomic"
)

// errSaturated is returned by acquire when both the slots and the wait
// queue are full; handlers map it to 429.
var errSaturated = errors.New("serve: all evaluation slots busy and the queue is full")

// admission is a counting semaphore with a bounded wait queue.
type admission struct {
	slots    chan struct{} // buffered; a held token is an in-flight evaluation
	queued   atomic.Int64
	maxQueue int64
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	return &admission{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
	}
}

// acquire claims an evaluation slot, waiting in the bounded queue when all
// slots are busy. It returns a release func on success; errSaturated when
// the queue is full; or ctx's error when the deadline fires while queued.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	default:
	}
	if q := a.queued.Add(1); q > a.maxQueue {
		a.queued.Add(-1)
		return nil, errSaturated
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// inFlight is the number of currently held slots (a gauge for /metrics).
func (a *admission) inFlight() int { return len(a.slots) }

// waiting is the number of queued acquirers (a gauge for /metrics).
func (a *admission) waiting() int64 { return a.queued.Load() }
