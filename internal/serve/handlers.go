package serve

// Endpoint handlers. Each POST handler has the same spine: strict decode,
// normalize, derive the canonical coalescing key, then hand a compute
// closure to serveRequest, which owns coalescing, admission, deadlines,
// metrics, and the write. Compute closures return a fully rendered
// *response so coalesced joiners share exact bytes, not re-rendered
// values.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"velociti/internal/core"
	"velociti/internal/verr"
)

// response is a fully rendered endpoint answer: what gets shared across a
// coalesced flight.
type response struct {
	status        int
	contentType   string
	retryAfterSec int // > 0 attaches Retry-After (429)
	skippedCells  int // > 0 attaches X-Velociti-Skipped-Cells (sweep)
	body          []byte
}

// errorBody is the JSON error envelope of every non-2xx answer.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	// Kind classifies the failure: "input" (the request is at fault),
	// "timeout" (the deadline fired), "overloaded" (admission rejected),
	// or "internal" (a framework bug).
	Kind string `json:"kind"`
	// Message is the human-readable diagnostic.
	Message string `json:"message"`
}

// jsonError renders a typed error response.
func jsonError(status int, kind, message string) *response {
	b, err := json.Marshal(errorBody{Error: errorDetail{Kind: kind, Message: message}})
	if err != nil {
		// Marshalling two plain strings cannot fail; keep a literal
		// fallback rather than a panic path.
		b = []byte(`{"error":{"kind":"internal","message":"error encoding failed"}}`)
	}
	return &response{status: status, contentType: "application/json", body: append(b, '\n')}
}

func errorResponseInternal(message string) *response {
	return jsonError(http.StatusInternalServerError, "internal", message)
}

// errorResponse maps an error onto the typed envelope, applying the
// verr input-kind contract: input errors are the client's 4xx, deadline
// and saturation get their dedicated statuses, everything else is a 500.
func (s *Server) errorResponse(err error) *response {
	var tooLarge *http.MaxBytesError
	switch {
	case errors.As(err, &tooLarge):
		return jsonError(http.StatusRequestEntityTooLarge, "input",
			fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
	case errors.Is(err, errSaturated):
		r := jsonError(http.StatusTooManyRequests, "overloaded", err.Error())
		r.retryAfterSec = s.opt.retryAfterSeconds()
		return r
	case errors.Is(err, context.DeadlineExceeded):
		return jsonError(http.StatusRequestTimeout, "timeout",
			"evaluation deadline exceeded; retry with a smaller request or a larger timeout_ms")
	case errors.Is(err, context.Canceled):
		return jsonError(http.StatusServiceUnavailable, "internal", "server is shutting down")
	case verr.IsInput(err):
		return jsonError(http.StatusBadRequest, "input", err.Error())
	default:
		return errorResponseInternal(err.Error())
	}
}

// serveRequest runs one coalescable endpoint request end to end.
func (s *Server) serveRequest(w http.ResponseWriter, r *http.Request, m *endpointMetrics,
	key string, timeout time.Duration, compute func(ctx context.Context) *response) {
	start := time.Now()
	// The wait context bounds THIS caller: its deadline 408s the caller
	// without touching a shared flight.
	waitCtx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	resp, joined, err := s.flights.do(waitCtx, key, func() *response {
		if s.hookComputeStarted != nil {
			s.hookComputeStarted(key)
		}
		// The flight context is owned by the server: a joiner's (or even
		// the leader's) disconnect must not cancel work other callers
		// are waiting on.
		fctx, fcancel := context.WithTimeout(s.baseCtx, timeout)
		defer fcancel()
		release, err := s.adm.acquire(fctx)
		if err != nil {
			return s.errorResponse(err)
		}
		defer release()
		return compute(fctx)
	})
	if err != nil {
		resp = s.errorResponse(err)
	}
	s.write(w, m, resp, joined, start)
}

// write emits the response and records it.
func (s *Server) write(w http.ResponseWriter, m *endpointMetrics, resp *response, joined bool, start time.Time) {
	h := w.Header()
	h.Set("Content-Type", resp.contentType)
	h.Set("Content-Length", strconv.Itoa(len(resp.body)))
	if resp.retryAfterSec > 0 {
		h.Set("Retry-After", strconv.Itoa(resp.retryAfterSec))
	}
	if resp.skippedCells > 0 {
		h.Set("X-Velociti-Skipped-Cells", strconv.Itoa(resp.skippedCells))
	}
	w.WriteHeader(resp.status)
	if _, err := w.Write(resp.body); err != nil {
		m.writeErrors.Add(1)
	}
	m.observe(resp.status, joined, time.Since(start))
}

// requirePOST answers non-POST methods with the typed 405.
func (s *Server) requirePOST(w http.ResponseWriter, r *http.Request, m *endpointMetrics) bool {
	if r.Method == http.MethodPost {
		return true
	}
	start := time.Now()
	w.Header().Set("Allow", http.MethodPost)
	s.write(w, m, jsonError(http.StatusMethodNotAllowed, "input",
		fmt.Sprintf("method %s not allowed; POST a JSON request", r.Method)), false, start)
	return false
}

// handleEvaluate answers POST /v1/evaluate: one simulation, body
// byte-identical to `velociti -json` for the same parameters.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	m := &s.metrics.evaluate
	if !s.requirePOST(w, r, m) {
		return
	}
	var req EvaluateRequest
	if err := decodeRequest(w, r, s.opt.MaxBodyBytes, &req); err != nil {
		s.write(w, m, s.errorResponse(err), false, time.Now())
		return
	}
	req = req.normalize()
	workers := s.workers(req.execKnobs.Workers)
	s.serveRequest(w, r, m, req.key(), req.timeout(s.opt.RequestTimeout), func(ctx context.Context) *response {
		cfg, err := req.Params.ToCoreConfig()
		if err != nil {
			return s.errorResponse(err)
		}
		cfg.Workers = workers
		cfg.Pipeline = s.pipeline
		report, err := core.RunContext(ctx, cfg)
		if err != nil {
			return s.errorResponse(err)
		}
		body, err := encodeIndentedJSON(report)
		if err != nil {
			return s.errorResponse(err)
		}
		return &response{status: http.StatusOK, contentType: "application/json", body: body}
	})
}

// handleSweep answers POST /v1/sweep: a grid rendered as the CLI's CSV,
// byte-identical to velociti-sweep's stdout for the same request. Failed
// cells degrade into skipped rows (count in X-Velociti-Skipped-Cells),
// exactly as the CLI degrades them into stderr diagnostics.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	m := &s.metrics.sweep
	if !s.requirePOST(w, r, m) {
		return
	}
	var req SweepRequest
	if err := decodeRequest(w, r, s.opt.MaxBodyBytes, &req); err != nil {
		s.write(w, m, s.errorResponse(err), false, time.Now())
		return
	}
	req = req.normalize()
	workers := s.workers(req.execKnobs.Workers)
	s.serveRequest(w, r, m, req.key(), req.timeout(s.opt.RequestTimeout), func(ctx context.Context) *response {
		grid, err := req.grid(workers, s.pipeline)
		if err != nil {
			return s.errorResponse(err)
		}
		res, err := core.RunGrid(ctx, grid)
		if err != nil {
			return s.errorResponse(err)
		}
		// RunGrid degrades cancelled cells into skips; a sweep cut short by
		// the deadline must be a 408, never a silently partial 200.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return s.errorResponse(ctxErr)
		}
		if err := res.Err(); err != nil {
			// Every cell failed: surface the first failure (usually
			// input-kind — bad placer, impossible device) instead of an
			// empty CSV.
			return s.errorResponse(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			return s.errorResponse(err)
		}
		return &response{
			status:       http.StatusOK,
			contentType:  "text/csv; charset=utf-8",
			skippedCells: res.Failed(),
			body:         buf.Bytes(),
		}
	})
}

// handleExplore answers POST /v1/explore: the full grid plus its Pareto
// frontier as indented JSON.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	m := &s.metrics.explore
	if !s.requirePOST(w, r, m) {
		return
	}
	var req ExploreRequest
	if err := decodeRequest(w, r, s.opt.MaxBodyBytes, &req); err != nil {
		s.write(w, m, s.errorResponse(err), false, time.Now())
		return
	}
	req = req.normalize()
	workers := s.workers(req.execKnobs.Workers)
	s.serveRequest(w, r, m, req.key(), req.timeout(s.opt.RequestTimeout), func(ctx context.Context) *response {
		resp, err := req.request(workers).Run(ctx, s.pipeline)
		if err != nil {
			return s.errorResponse(err)
		}
		body, err := encodeIndentedJSON(resp)
		if err != nil {
			return s.errorResponse(err)
		}
		return &response{status: http.StatusOK, contentType: "application/json", body: body}
	})
}

// handleMetrics answers GET /metrics with the counter snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		resp := jsonError(http.StatusMethodNotAllowed, "input", "GET /metrics")
		s.writeBare(w, resp)
		return
	}
	body, err := encodeIndentedJSON(s.MetricsSnapshot())
	if err != nil {
		s.writeBare(w, errorResponseInternal(err.Error()))
		return
	}
	s.writeBare(w, &response{status: http.StatusOK, contentType: "application/json", body: body})
}

// handleHealthz answers GET /healthz; 200 means the process accepts
// requests (readiness is the listener's job — see cmd/velociti-serve).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeBare(w, &response{status: http.StatusOK, contentType: "text/plain; charset=utf-8", body: []byte("ok\n")})
}

// writeBare writes a response without per-endpoint metrics (the
// observability endpoints don't observe themselves).
func (s *Server) writeBare(w http.ResponseWriter, resp *response) {
	h := w.Header()
	h.Set("Content-Type", resp.contentType)
	h.Set("Content-Length", strconv.Itoa(len(resp.body)))
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body) //vet:allow errcheck-lite -- nothing to do when an observability response fails mid-write
}

// encodeIndentedJSON renders v exactly as the CLIs do: two-space indent
// plus a trailing newline (json.Encoder.Encode semantics) — the encoding
// the byte-identity guarantee is stated against.
func encodeIndentedJSON(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
