package serve

// CLI-equivalence golden tests: a service response body must be
// byte-identical to what the corresponding CLI writes for the same
// request. Expected bytes are produced the way the CLIs produce them —
// config.Params -> core.RunContext -> indented JSON for velociti -json,
// workload.Selector -> core.RunGrid -> WriteCSV for velociti-sweep — with
// a fresh pipeline, so the comparison also pins that the server's shared
// cache never changes a byte. The end-to-end variant against the real
// compiled binaries lives in e2e/.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/config"
	"velociti/internal/core"
	"velociti/internal/dse"
	"velociti/internal/shuttle"
	"velociti/internal/ti"
	"velociti/internal/workload"
)

func TestEvaluateMatchesCLIBytes(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"workload": {"name": "eq", "qubits": 12, "one_qubit_gates": 6, "two_qubit_gates": 8}, "seed": 7, "runs": 5}`
	resp, got := doJSON(t, ts, http.MethodPost, "/v1/evaluate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate = %d\n%s", resp.StatusCode, got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}

	// The velociti CLI path: flag defaults -> Params -> core.RunContext ->
	// json.Encoder with two-space indent.
	p := config.Default()
	p.Workload = circuit.Spec{Name: "eq", Qubits: 12, OneQubitGates: 6, TwoQubitGates: 8}
	p.Seed = 7
	p.Runs = 5
	cfg, err := p.ToCoreConfig()
	if err != nil {
		t.Fatalf("ToCoreConfig: %v", err)
	}
	report, err := core.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("response differs from CLI bytes:\n got: %s\nwant: %s", got, want.Bytes())
	}
}

func TestSweepMatchesCLIBytes(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"qv": true, "qubit_range": "8:48:20", "chain_lengths": [8, 16], "alphas": [2.0, 1.0],
		"placers": ["random", "load-balanced"], "runs": 4, "seed": 3}`
	resp, got := doJSON(t, ts, http.MethodPost, "/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d\n%s", resp.StatusCode, got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}

	// The velociti-sweep CLI path: Selector -> RunGrid -> WriteCSV, on a
	// fresh pipeline (byte-identity must not depend on cache state).
	sel := workload.Selector{QV: true, QubitRange: "8:48:20"}
	specs, err := sel.Specs()
	if err != nil {
		t.Fatalf("Specs: %v", err)
	}
	res, err := core.RunGrid(context.Background(), core.Grid{
		Specs:        specs,
		ChainLengths: []int{8, 16},
		Alphas:       []float64{2.0, 1.0},
		Placers:      []string{"random", "load-balanced"},
		Topology:     ti.Ring,
		Runs:         4,
		Seed:         3,
		Workers:      1,
		Pipeline:     core.NewPipeline(),
	})
	if err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	var want bytes.Buffer
	if err := res.WriteCSV(&want); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("response differs from CLI bytes:\n got: %s\nwant: %s", got, want.Bytes())
	}
}

func TestExploreMatchesRequestRunBytes(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"spec": {"name": "eq", "qubits": 10, "two_qubit_gates": 5}, "chain_lengths": [8, 16],
		"alphas": [2.0, 1.0], "runs": 3, "seed": 2}`
	resp, got := doJSON(t, ts, http.MethodPost, "/v1/explore", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore = %d\n%s", resp.StatusCode, got)
	}

	out, err := dse.Request{
		Spec:         circuit.Spec{Name: "eq", Qubits: 10, TwoQubitGates: 5},
		ChainLengths: []int{8, 16},
		Alphas:       []float64{2.0, 1.0},
		Placers:      []string{"random", "load-balanced"},
		Runs:         3,
		Seed:         2,
		Workers:      1,
	}.Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	want = append(want, '\n')
	if !bytes.Equal(got, want) {
		t.Errorf("response differs from dse.Request bytes:\n got: %s\nwant: %s", got, want)
	}
}

// TestSweepShuttleMatchesCLIBytes is the shuttle-backend variant of the
// sweep golden test: a sweep with "backend": "shuttle" must be
// byte-identical to velociti-sweep -backend shuttle, i.e. RunGrid with the
// shuttle backend on a fresh pipeline.
func TestSweepShuttleMatchesCLIBytes(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"qubits": 24, "two_qubit_gates": 60, "chain_lengths": [8, 12], "alphas": [2.0, 1.0],
		"backend": "shuttle", "runs": 4, "seed": 9}`
	resp, got := doJSON(t, ts, http.MethodPost, "/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d\n%s", resp.StatusCode, got)
	}

	sel := workload.Selector{Qubits: 24, TwoQubitGates: 60}
	specs, err := sel.Specs()
	if err != nil {
		t.Fatalf("Specs: %v", err)
	}
	res, err := core.RunGrid(context.Background(), core.Grid{
		Specs:        specs,
		ChainLengths: []int{8, 12},
		Alphas:       []float64{2.0, 1.0},
		Placers:      []string{"random"},
		Topology:     ti.Ring,
		Runs:         4,
		Seed:         9,
		Workers:      1,
		Pipeline:     core.NewPipeline(),
		Backend:      shuttle.Backend{Params: shuttle.Default()},
	})
	if err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	var want bytes.Buffer
	if err := res.WriteCSV(&want); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("response differs from CLI bytes:\n got: %s\nwant: %s", got, want.Bytes())
	}

	// And the backend must matter: the weak-link body for the same grid
	// differs.
	respW, gotW := doJSON(t, ts, http.MethodPost, "/v1/sweep",
		`{"qubits": 24, "two_qubit_gates": 60, "chain_lengths": [8, 12], "alphas": [2.0, 1.0], "runs": 4, "seed": 9}`)
	if respW.StatusCode != http.StatusOK {
		t.Fatalf("weak-link sweep = %d", respW.StatusCode)
	}
	if bytes.Equal(got, gotW) {
		t.Errorf("shuttle and weak-link sweeps returned identical bytes")
	}
}

// TestBackendCoalescingKeys pins the flight-sharing rules for the backend
// axis: implicit and explicit weak-link defaults share a key, shuttle with
// implicit and explicit default costs share a key, weak-link and shuttle
// never do, and altered shuttle costs key separately from the default.
func TestBackendCoalescingKeys(t *testing.T) {
	sweepKey := func(t *testing.T, body string) string {
		t.Helper()
		var r SweepRequest
		if err := json.Unmarshal([]byte(body), &r); err != nil {
			t.Fatal(err)
		}
		return r.normalize().key()
	}
	base := `{"qubits": 16, "two_qubit_gates": 8, "runs": 3, "seed": 5`
	weakImplicit := sweepKey(t, base+`}`)
	weakExplicit := sweepKey(t, base+`, "backend": "weaklink"}`)
	shuttleImplicit := sweepKey(t, base+`, "backend": "shuttle"}`)
	shuttleExplicit := sweepKey(t, base+`, "backend": "shuttle",
		"shuttle": {"split_us": 80, "move_per_hop_us": 10, "merge_us": 80, "recool_us": 100}}`)
	shuttleAltered := sweepKey(t, base+`, "backend": "shuttle", "shuttle": {"split_us": 1}}`)
	if weakImplicit != weakExplicit {
		t.Errorf("implicit and explicit weak-link requests should share a flight")
	}
	if shuttleImplicit != shuttleExplicit {
		t.Errorf("implicit and explicit default shuttle costs should share a flight")
	}
	if weakImplicit == shuttleImplicit {
		t.Errorf("weak-link and shuttle requests must never share a flight")
	}
	if shuttleImplicit == shuttleAltered {
		t.Errorf("altered shuttle costs must key separately from the default")
	}

	// Same rules through the evaluate and explore schemas.
	var e1, e2 EvaluateRequest
	if err := json.Unmarshal([]byte(`{"workload": {"qubits": 8, "two_qubit_gates": 4}}`), &e1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(`{"workload": {"qubits": 8, "two_qubit_gates": 4}, "backend": "shuttle"}`), &e2); err != nil {
		t.Fatal(err)
	}
	if e1.normalize().key() == e2.normalize().key() {
		t.Errorf("evaluate: weak-link and shuttle requests must never share a flight")
	}
	var x1, x2 ExploreRequest
	if err := json.Unmarshal([]byte(`{"spec": {"qubits": 8, "two_qubit_gates": 4}}`), &x1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(`{"spec": {"qubits": 8, "two_qubit_gates": 4}, "backends": ["weaklink", "shuttle"]}`), &x2); err != nil {
		t.Fatal(err)
	}
	if x1.normalize().key() == x2.normalize().key() {
		t.Errorf("explore: backend axes must key separately")
	}
}

// TestPlacerCoalescingKeys: requests that differ only in their placer
// selection — including the search-based "annealed" — must never share a
// flight, on every endpoint whose schema carries a placer axis.
func TestPlacerCoalescingKeys(t *testing.T) {
	placers := []string{"random", "weak-avoiding", "load-balanced", "edge-constrained", "annealed"}

	evalKeys := map[string]string{}
	sweepKeys := map[string]string{}
	exploreKeys := map[string]string{}
	for _, name := range placers {
		var e EvaluateRequest
		body := `{"workload": {"qubits": 8, "two_qubit_gates": 4}, "placer": "` + name + `"}`
		if err := json.Unmarshal([]byte(body), &e); err != nil {
			t.Fatal(err)
		}
		evalKeys[name] = e.normalize().key()

		var s SweepRequest
		body = `{"qubits": 16, "two_qubit_gates": 8, "placers": ["` + name + `"]}`
		if err := json.Unmarshal([]byte(body), &s); err != nil {
			t.Fatal(err)
		}
		sweepKeys[name] = s.normalize().key()

		var x ExploreRequest
		body = `{"spec": {"qubits": 8, "two_qubit_gates": 4}, "placers": ["` + name + `"]}`
		if err := json.Unmarshal([]byte(body), &x); err != nil {
			t.Fatal(err)
		}
		exploreKeys[name] = x.normalize().key()
	}
	for endpoint, keys := range map[string]map[string]string{
		"evaluate": evalKeys, "sweep": sweepKeys, "explore": exploreKeys,
	} {
		seen := map[string]string{}
		for name, k := range keys {
			if prev, dup := seen[k]; dup {
				t.Errorf("%s: placers %q and %q share a flight (key %q)", endpoint, prev, name, k)
			}
			seen[k] = name
		}
	}
	// The default placer and an explicit "random" are the same request and
	// must coalesce.
	var implicit EvaluateRequest
	if err := json.Unmarshal([]byte(`{"workload": {"qubits": 8, "two_qubit_gates": 4}}`), &implicit); err != nil {
		t.Fatal(err)
	}
	if implicit.normalize().key() != evalKeys["random"] {
		t.Errorf("evaluate: implicit default and explicit random placer should share a flight")
	}
}

// TestWorkerKnobNeverChangesBytes pins the execution-knob contract: the
// same plan at different worker counts returns identical bodies (and
// coalesces under the same key).
func TestWorkerKnobNeverChangesBytes(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	base := `{"qubits": 16, "two_qubit_gates": 8, "runs": 3, "seed": 5`
	resp1, b1 := doJSON(t, ts, http.MethodPost, "/v1/sweep", base+`}`)
	resp2, b2 := doJSON(t, ts, http.MethodPost, "/v1/sweep", base+`, "workers": 4}`)
	if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
		t.Fatalf("sweeps = %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("worker count changed response bytes")
	}

	var r1, r2 SweepRequest
	if err := json.Unmarshal([]byte(base+`}`), &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(base+`, "workers": 4}`), &r2); err != nil {
		t.Fatal(err)
	}
	if r1.normalize().key() != r2.normalize().key() {
		t.Errorf("worker count changed the coalescing key")
	}
}
