package serve

// Request schemas and decoding. Every request mirrors the corresponding
// CLI's knobs — evaluate takes the config.Params shape velociti persists,
// sweep takes velociti-sweep's workload selector and grid lists, explore
// takes the dse grid — plus two execution-only knobs (workers, timeout_ms)
// that can never change a result byte.
//
// Decoding is strict: unknown fields are rejected (a typo'd knob silently
// selecting a default would return results for the wrong question), bodies
// are size-capped, and every rejection is an input-kind error so handlers
// can answer 4xx-vs-5xx from the error value alone.
//
// Each request type normalizes to a canonical form with every default made
// explicit; the coalescing key is that canonical form minus the
// execution-only knobs, so requests that must produce identical bytes —
// and only those — share a flight.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"velociti/internal/circuit"
	"velociti/internal/config"
	"velociti/internal/core"
	"velociti/internal/dse"
	"velociti/internal/perf"
	"velociti/internal/shuttle"
	"velociti/internal/ti"
	"velociti/internal/verr"
	"velociti/internal/workload"
)

// execKnobs are the request fields that steer execution without
// influencing any output byte: trial-level parallelism and the per-request
// deadline. They are excluded from coalescing keys.
type execKnobs struct {
	// Workers bounds trials evaluated concurrently inside the request;
	// zero selects the server's default. Results are bit-identical at any
	// value (the repo-wide worker-pool contract).
	Workers int `json:"workers,omitempty"`
	// TimeoutMillis caps this request's evaluation deadline; zero selects
	// the server's default. Values above the server's maximum are
	// clamped, never an error.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// timeout resolves the effective deadline against the server cap.
func (e execKnobs) timeout(serverMax time.Duration) time.Duration {
	if e.TimeoutMillis <= 0 {
		return serverMax
	}
	d := time.Duration(e.TimeoutMillis) * time.Millisecond
	if d > serverMax {
		return serverMax
	}
	return d
}

// EvaluateRequest is the POST /v1/evaluate body: one simulation in the
// config.Params shape (workload boundary conditions, machine, timing
// model, policies, runs, seed), equivalent to one velociti invocation.
type EvaluateRequest struct {
	config.Params
	execKnobs
}

// normalize fills every default explicitly, mirroring the velociti CLI's
// flag defaults (seed 1, chain length 16, ring, random policies, 35
// runs), so equivalent requests share one canonical form.
func (r EvaluateRequest) normalize() EvaluateRequest {
	def := config.Default()
	if r.ChainLength == 0 {
		r.ChainLength = def.ChainLength
	}
	if r.Topology == "" {
		r.Topology = def.Topology
	}
	if r.Latencies == (perf.Latencies{}) {
		r.Latencies = def.Latencies
	}
	if r.Placement == "" {
		r.Placement = def.Placement
	}
	if r.Placer == "" {
		r.Placer = def.Placer
	}
	if r.Runs == 0 {
		r.Runs = def.Runs
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	r.Backend, r.Shuttle = normalizeBackend(r.Backend, r.Shuttle)
	return r
}

// normalizeBackend canonicalizes a (backend name, shuttle params) pair: the
// empty name becomes the explicit weak-link default, and a shuttle
// selection with no configured costs gets shuttle.Default() spelled out.
// Backend participates in coalescing keys through the normalized request,
// so weak-link and shuttle requests can never share a flight, while
// implicit and explicit defaults always do. A shuttle block present under
// the weak-link backend is kept (it is still validated, and keeping it
// keys conservatively).
func normalizeBackend(name string, p *shuttle.Params) (string, *shuttle.Params) {
	if name == "" {
		name = perf.WeakLink{}.Name()
	}
	if name == "shuttle" && p == nil {
		def := shuttle.Default()
		p = &def
	}
	return name, p
}

// key is the canonical coalescing key: the normalized request minus the
// execution-only knobs, JSON-encoded (struct field order is fixed, so the
// encoding is canonical).
func (r EvaluateRequest) key() string {
	r.execKnobs = execKnobs{}
	return canonicalKey("evaluate", r)
}

// SweepRequest is the POST /v1/sweep body: a velociti-sweep grid. The
// workload selector fields (app / qv / ratio / qubits / qubit_range) and
// the grid lists mirror the CLI flags of the same names.
type SweepRequest struct {
	workload.Selector
	// ChainLengths, Alphas, and Placers span the grid; defaults mirror
	// the CLI flags: {16}, {2.0}, {"random"}.
	ChainLengths []int     `json:"chain_lengths,omitempty"`
	Alphas       []float64 `json:"alphas,omitempty"`
	Placers      []string  `json:"placers,omitempty"`
	// Topology is ring (default) or line.
	Topology string `json:"topology,omitempty"`
	// Backend names the timing backend shared by every cell: "weaklink"
	// (default) or "shuttle". Shuttle prices the transport primitives;
	// nil selects shuttle.Default().
	Backend string          `json:"backend,omitempty"`
	Shuttle *shuttle.Params `json:"shuttle,omitempty"`
	// Runs per cell (default 35) and the master seed (default 1).
	Runs int   `json:"runs,omitempty"`
	Seed int64 `json:"seed,omitempty"`
	// Stream evaluates every cell through the memory-bounded streaming
	// path (core.Grid.Stream); the CSV bytes are identical, so it keys
	// with the rest of the canonical form rather than as an exec knob —
	// a cell that cannot stream fails only under Stream.
	Stream bool `json:"stream,omitempty"`
	execKnobs
}

func (r SweepRequest) normalize() SweepRequest {
	if len(r.ChainLengths) == 0 {
		r.ChainLengths = []int{16}
	}
	if len(r.Alphas) == 0 {
		r.Alphas = []float64{2.0}
	}
	if len(r.Placers) == 0 {
		r.Placers = []string{"random"}
	}
	if r.Topology == "" {
		r.Topology = ti.Ring.String()
	}
	r.Backend, r.Shuttle = normalizeBackend(r.Backend, r.Shuttle)
	if r.Runs == 0 {
		r.Runs = core.DefaultRuns
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	return r
}

func (r SweepRequest) key() string {
	r.execKnobs = execKnobs{}
	return canonicalKey("sweep", r)
}

// grid lowers the request onto the shared sweep machinery — the same
// workload.Selector + core.Grid path the CLI runs, which is what makes
// the response body byte-identical to velociti-sweep's stdout.
func (r SweepRequest) grid(workers int, pipeline *core.Pipeline) (core.Grid, error) {
	specs, err := r.Selector.Specs()
	if err != nil {
		return core.Grid{}, err
	}
	topo, err := ti.ParseTopology(r.Topology)
	if err != nil {
		return core.Grid{}, err
	}
	if r.Shuttle != nil {
		if err := r.Shuttle.Validate(); err != nil {
			return core.Grid{}, err
		}
	}
	sp := shuttle.Default()
	if r.Shuttle != nil {
		sp = *r.Shuttle
	}
	backend, err := shuttle.ByName(r.Backend, sp)
	if err != nil {
		return core.Grid{}, err
	}
	return core.Grid{
		Specs:        specs,
		ChainLengths: r.ChainLengths,
		Alphas:       r.Alphas,
		Placers:      r.Placers,
		Topology:     topo,
		Runs:         r.Runs,
		Seed:         r.Seed,
		Workers:      workers,
		Pipeline:     pipeline,
		Backend:      backend,
		Stream:       r.Stream,
	}, nil
}

// ExploreRequest is the POST /v1/explore body: a design-space exploration
// in the dse.Request shape (spec + grid knobs), answered with every point
// and the Pareto frontier. The grid fields mirror dse.Request; the
// execution knobs live here so "workers" means the same thing on every
// endpoint.
type ExploreRequest struct {
	// Spec is the workload's boundary conditions.
	Spec circuit.Spec `json:"spec"`
	// ChainLengths, Alphas, and Placers define the grid; defaults are the
	// dse package's: 8/16/24/32, 2.0/1.5/1.0, random + load-balanced.
	ChainLengths []int     `json:"chain_lengths,omitempty"`
	Alphas       []float64 `json:"alphas,omitempty"`
	Placers      []string  `json:"placers,omitempty"`
	// Backends names the timing-backend axis ("weaklink", "shuttle");
	// empty selects {"weaklink"}. Shuttle prices the shuttle backend's
	// transport primitives; nil selects shuttle.Default().
	Backends []string        `json:"backends,omitempty"`
	Shuttle  *shuttle.Params `json:"shuttle,omitempty"`
	// Runs per configuration (default 10) and the master seed.
	Runs int   `json:"runs,omitempty"`
	Seed int64 `json:"seed,omitempty"`
	execKnobs
}

func (r ExploreRequest) normalize() ExploreRequest {
	if len(r.ChainLengths) == 0 {
		r.ChainLengths = []int{8, 16, 24, 32}
	}
	if len(r.Alphas) == 0 {
		r.Alphas = []float64{2.0, 1.5, 1.0}
	}
	if len(r.Placers) == 0 {
		r.Placers = []string{"random", "load-balanced"}
	}
	if len(r.Backends) == 0 {
		r.Backends = []string{perf.WeakLink{}.Name()}
	}
	for _, name := range r.Backends {
		if name == "shuttle" && r.Shuttle == nil {
			def := shuttle.Default()
			r.Shuttle = &def
			break
		}
	}
	if r.Runs == 0 {
		r.Runs = 10
	}
	return r
}

func (r ExploreRequest) key() string {
	r.execKnobs = execKnobs{}
	return canonicalKey("explore", r)
}

// request lowers onto the dse entry point with the effective worker
// count.
func (r ExploreRequest) request(workers int) dse.Request {
	return dse.Request{
		Spec:         r.Spec,
		ChainLengths: r.ChainLengths,
		Alphas:       r.Alphas,
		Placers:      r.Placers,
		Backends:     r.Backends,
		Shuttle:      r.Shuttle,
		Runs:         r.Runs,
		Seed:         r.Seed,
		Workers:      workers,
	}
}

// canonicalKey renders endpoint-tagged canonical request JSON. Encoding a
// normalized fixed-shape struct cannot fail; a failure would be a schema
// bug, so it degrades to a non-coalescing unique-ish key rather than a
// panic.
func canonicalKey(endpoint string, req any) string {
	b, err := json.Marshal(req)
	if err != nil {
		return fmt.Sprintf("%s|unkeyed|%p", endpoint, req)
	}
	return endpoint + "|" + string(b)
}

// decodeRequest reads and strictly decodes a JSON request body into dst.
// Every failure is input-kind except the body-size cap, which keeps its
// *http.MaxBytesError type for the 413 mapping.
func decodeRequest(w http.ResponseWriter, r *http.Request, maxBytes int64, dst any) error {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return err
		}
		return verr.Inputf("invalid request body: %w", err)
	}
	// A second document in the body is almost always a client bug
	// (concatenated requests); reject it rather than silently ignoring.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return verr.Inputf("invalid request body: trailing data after JSON document")
	}
	return nil
}
