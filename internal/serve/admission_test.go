package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionAcquireRelease(t *testing.T) {
	a := newAdmission(2, 0)
	r1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	r2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire 2: %v", err)
	}
	if got := a.inFlight(); got != 2 {
		t.Fatalf("inFlight = %d, want 2", got)
	}
	r1()
	r2()
	if got := a.inFlight(); got != 0 {
		t.Fatalf("inFlight after release = %d, want 0", got)
	}
}

func TestAdmissionSaturation(t *testing.T) {
	a := newAdmission(1, 0) // one slot, no queue
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if _, err := a.acquire(context.Background()); !errors.Is(err, errSaturated) {
		t.Fatalf("second acquire err = %v, want errSaturated", err)
	}
	release()
	release2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	release2()
}

func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	a := newAdmission(1, 1)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	acquired := make(chan func(), 1)
	go func() {
		r, err := a.acquire(context.Background())
		if err != nil {
			t.Errorf("queued acquire: %v", err)
			return
		}
		acquired <- r
	}()
	// The queued acquirer must be visible before the slot frees.
	deadline := time.Now().Add(10 * time.Second)
	for a.waiting() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := a.waiting(); got != 1 {
		t.Fatalf("waiting = %d, want 1", got)
	}
	release()
	select {
	case r := <-acquired:
		r()
	case <-time.After(10 * time.Second):
		t.Fatal("queued acquirer never admitted")
	}
}

func TestAdmissionQueueOverflowRejected(t *testing.T) {
	a := newAdmission(1, 1)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer release()
	// Fill the single queue position.
	queuedCtx, cancelQueued := context.WithCancel(context.Background())
	defer cancelQueued()
	queuedDone := make(chan error, 1)
	go func() {
		_, err := a.acquire(queuedCtx)
		queuedDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for a.waiting() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Slot busy + queue full: immediate rejection.
	if _, err := a.acquire(context.Background()); !errors.Is(err, errSaturated) {
		t.Fatalf("overflow acquire err = %v, want errSaturated", err)
	}
	cancelQueued()
	if err := <-queuedDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire err = %v, want context.Canceled", err)
	}
}

func TestAdmissionDeadlineWhileQueued(t *testing.T) {
	a := newAdmission(1, 4)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire err = %v, want deadline exceeded", err)
	}
	if got := a.waiting(); got != 0 {
		t.Fatalf("waiting after deadline = %d, want 0", got)
	}
}
