package serve

// Streaming knob over the HTTP surface: "stream": true must produce the
// same bytes as the materialized path on both report-bearing endpoints
// (the evaluate report drops only critical_path, which is omitempty; the
// sweep CSV never carried paths), must participate in the request's
// canonical form, and must reject unstreamable configurations with the
// typed 4xx envelope.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestEvaluateStreamMatchesMaterialized(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"workload": {"name": "w", "qubits": 12, "one_qubit_gates": 6, "two_qubit_gates": 20}, "chain_length": 6, "runs": 3, "seed": 4}`
	resp, want := doJSON(t, ts, http.MethodPost, "/v1/evaluate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("materialized: status %d: %s", resp.StatusCode, want)
	}
	sbody := strings.TrimSuffix(strings.TrimSpace(body), "}") + `, "stream": true}`
	resp, got := doJSON(t, ts, http.MethodPost, "/v1/evaluate", sbody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streaming: status %d: %s", resp.StatusCode, got)
	}
	// critical_path is omitempty, and the weak-link model attaches no
	// paths to abstract-spec reports' JSON beyond per-trial results; the
	// two payloads must agree field for field once both are decoded.
	var wantAny, gotAny map[string]any
	if err := json.Unmarshal(want, &wantAny); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(got, &gotAny); err != nil {
		t.Fatal(err)
	}
	stripCriticalPaths(wantAny)
	if len(wantAny) == 0 || len(gotAny) == 0 {
		t.Fatal("empty report payloads")
	}
	wb, _ := json.Marshal(wantAny)
	gb, _ := json.Marshal(gotAny)
	if string(wb) != string(gb) {
		t.Fatalf("streaming evaluate diverges\ngot  %s\nwant %s", gb, wb)
	}
}

// stripCriticalPaths removes critical_path entries from a decoded report.
func stripCriticalPaths(report map[string]any) {
	trials, _ := report["trials"].([]any)
	for _, tr := range trials {
		m, _ := tr.(map[string]any)
		if m == nil {
			continue
		}
		if p, _ := m["perf"].(map[string]any); p != nil {
			delete(p, "critical_path")
		}
	}
}

func TestSweepStreamMatchesMaterialized(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"qubits": 16, "two_qubit_gates": 40, "chain_lengths": [8], "alphas": [1, 3], "runs": 2, "seed": 9}`
	resp, want := doJSON(t, ts, http.MethodPost, "/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("materialized: status %d: %s", resp.StatusCode, want)
	}
	sbody := strings.TrimSuffix(strings.TrimSpace(body), "}") + `, "stream": true}`
	resp, got := doJSON(t, ts, http.MethodPost, "/v1/sweep", sbody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streaming: status %d: %s", resp.StatusCode, got)
	}
	if string(got) != string(want) {
		t.Fatalf("streaming sweep CSV diverges\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestStreamKeysCanonicalForm(t *testing.T) {
	var plain, streaming EvaluateRequest
	if err := json.Unmarshal([]byte(validEvaluateBody), &plain); err != nil {
		t.Fatal(err)
	}
	streaming = plain
	streaming.Stream = true
	if plain.normalize().key() == streaming.normalize().key() {
		t.Fatal("stream does not participate in the evaluate coalescing key")
	}
	sp := SweepRequest{}
	sp.Qubits = 8
	st := sp
	st.Stream = true
	if sp.normalize().key() == st.normalize().key() {
		t.Fatal("stream does not participate in the sweep coalescing key")
	}
}

func TestEvaluateStreamRejectsUnstreamable(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"workload": {"name": "w", "qubits": 8, "two_qubit_gates": 4}, "placer": "annealed", "runs": 1, "stream": true}`
	resp, b := doJSON(t, ts, http.MethodPost, "/v1/evaluate", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, b)
	}
	detail := readErrorBody(t, b)
	if !strings.Contains(detail.Message, "cannot stream") {
		t.Fatalf("error message %q does not explain the streaming rejection", detail.Message)
	}
}
