// Package serve is velociti's long-lived sweep service: a stdlib net/http
// layer exposing the evaluate / sweep / explore pipelines as JSON-in
// endpoints, built for many clients asking overlapping questions.
//
// Three mechanisms make one process serve a design-space workload that
// would otherwise be N independent CLI runs:
//
//   - a shared cross-request artifact cache (one core.Pipeline for the
//     whole process, content-keyed by internal/cache fingerprints), so a
//     layout or synthesized circuit computed for one request is free for
//     every later request that agrees on the inputs;
//   - single-flight coalescing (coalesce.go): concurrent identical plans
//     cost one synthesis and receive bit-identical bodies;
//   - bounded admission with backpressure (admission.go): a fixed number
//     of evaluation slots plus a small queue, 429 + Retry-After beyond.
//
// The service inherits the repo's determinism contract and adds one of
// its own: a response body is byte-identical to the corresponding CLI
// run's output for the same request (velociti -json for /v1/evaluate,
// velociti-sweep's stdout for /v1/sweep) — guaranteed by lowering onto
// the same request-shaped entry points the CLIs run (core.RunGrid,
// workload.Selector), never by a second rendering implementation.
//
// Every user-provoked failure is a typed JSON error derived from the
// verr input-kind contract: 400 for bad requests, 408 for deadlines, 413
// for oversized bodies, 429 for saturation; 5xx is reserved for actual
// framework bugs.
package serve

import (
	"context"
	"net/http"
	"time"

	"velociti/internal/core"
	"velociti/internal/pool"
)

// Options configures a Server. The zero value is usable: every field has
// a production default.
type Options struct {
	// MaxInFlight bounds concurrently executing evaluations (flight
	// leaders; coalesced joiners don't count). Zero selects GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds leaders waiting for a slot; arrivals beyond it get
	// 429 immediately. Zero selects 2×MaxInFlight; negative means no
	// queue (reject the moment all slots are busy).
	MaxQueue int
	// RequestTimeout is the per-request evaluation deadline and the cap
	// for request-supplied timeout_ms. Zero selects 60s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (413 beyond). Zero selects 1 MiB.
	MaxBodyBytes int64
	// CacheCapacity bounds each stage cache of the shared pipeline; zero
	// selects core.DefaultStageCapacity, negative disables the bound.
	CacheCapacity int
	// Workers is the default per-evaluation trial parallelism when a
	// request doesn't carry its own; zero selects GOMAXPROCS. Results
	// are bit-identical at any value.
	Workers int
	// RetryAfter is the backoff hint attached to 429 responses, rounded
	// up to whole seconds. Zero selects 1s.
	RetryAfter time.Duration
}

func (o Options) normalized() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = pool.Workers(0)
	}
	switch {
	case o.MaxQueue == 0:
		o.MaxQueue = 2 * o.MaxInFlight
	case o.MaxQueue < 0:
		o.MaxQueue = 0
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.CacheCapacity == 0 {
		o.CacheCapacity = core.DefaultStageCapacity
	}
	if o.Workers <= 0 {
		o.Workers = pool.Workers(0)
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// retryAfterSeconds renders the Retry-After hint, rounding up so a
// sub-second hint never becomes "Retry-After: 0".
func (o Options) retryAfterSeconds() int {
	s := int((o.RetryAfter + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// Server wires the endpoints to the shared pipeline, coalescer,
// admission gate, and metrics. Construct with New; a Server is safe for
// concurrent use by the http layer.
type Server struct {
	opt      Options
	pipeline *core.Pipeline
	adm      *admission
	flights  *coalescer
	metrics  *metrics
	mux      *http.ServeMux

	// baseCtx owns every flight's lifetime: flights are shared property,
	// so they are cancelled by server teardown (Close), never by one
	// joiner's disconnect.
	baseCtx context.Context
	stop    context.CancelFunc

	// hookComputeStarted, when non-nil, is called on the leader's
	// goroutine as its flight begins computing — a test seam for the
	// coalescing stress tests.
	hookComputeStarted func(key string)
}

// New returns a ready-to-serve Server.
func New(opt Options) *Server {
	opt = opt.normalized()
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		opt:      opt,
		pipeline: core.NewPipelineCapacity(opt.CacheCapacity),
		adm:      newAdmission(opt.MaxInFlight, opt.MaxQueue),
		flights:  newCoalescer(),
		metrics:  &metrics{started: time.Now()},
		mux:      http.NewServeMux(),
		baseCtx:  ctx,
		stop:     stop,
	}
	s.mux.HandleFunc("/v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/explore", s.handleExplore)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Handler returns the server's routing handler, for http.Server or
// httptest wiring.
func (s *Server) Handler() http.Handler { return s.mux }

// Pipeline exposes the shared artifact store (tests assert cross-request
// cache sharing through it).
func (s *Server) Pipeline() *core.Pipeline { return s.pipeline }

// MetricsSnapshot returns the current /metrics payload.
func (s *Server) MetricsSnapshot() Snapshot {
	return s.metrics.snapshot(s.pipeline, s.adm)
}

// Close cancels every in-flight evaluation. Call it after the http layer
// has drained (http.Server.Shutdown) so graceful shutdown lets in-flight
// work finish; calling earlier turns the drain into an abort.
func (s *Server) Close() { s.stop() }

// workers resolves a request's effective trial parallelism.
func (s *Server) workers(reqWorkers int) int {
	if reqWorkers > 0 {
		return reqWorkers
	}
	return s.opt.Workers
}
