package serve

// The metrics registry behind GET /metrics: per-endpoint request, error,
// coalescing, and latency counters (lock-free atomics on the request
// path), joined at snapshot time with the stage-cache counters the
// pipeline already keeps (internal/cache) and the worker pool's
// process-wide totals (internal/pool). Everything serializes from fixed
// structs — no map iteration anywhere near the output, per the repo's
// determinism contract.

import (
	"sync/atomic"
	"time"

	"velociti/internal/cache"
	"velociti/internal/core"
	"velociti/internal/pool"
)

// endpointMetrics is the hot-path counter block of one endpoint.
type endpointMetrics struct {
	requests     atomic.Uint64
	coalesced    atomic.Uint64
	rejected     atomic.Uint64
	timeouts     atomic.Uint64
	clientErrors atomic.Uint64
	serverErrors atomic.Uint64
	writeErrors  atomic.Uint64

	latencyCount     atomic.Uint64
	latencyMicros    atomic.Uint64
	latencyMaxMicros atomic.Uint64
}

// observe records one finished request.
func (m *endpointMetrics) observe(status int, joined bool, d time.Duration) {
	m.requests.Add(1)
	if joined {
		m.coalesced.Add(1)
	}
	switch {
	case status == 429:
		m.rejected.Add(1)
	case status == 408:
		m.timeouts.Add(1)
	case status >= 500:
		m.serverErrors.Add(1)
	case status >= 400:
		m.clientErrors.Add(1)
	}
	us := uint64(d.Microseconds())
	m.latencyCount.Add(1)
	m.latencyMicros.Add(us)
	for {
		cur := m.latencyMaxMicros.Load()
		if us <= cur || m.latencyMaxMicros.CompareAndSwap(cur, us) {
			return
		}
	}
}

// EndpointStats is the serialized snapshot of one endpoint's counters.
type EndpointStats struct {
	// Requests counts every finished request, including coalesced and
	// rejected ones.
	Requests uint64 `json:"requests"`
	// Coalesced counts requests that shared another request's in-flight
	// computation.
	Coalesced uint64 `json:"coalesced"`
	// Rejected counts 429 admission rejections.
	Rejected uint64 `json:"rejected"`
	// Timeouts counts 408 deadline expirations.
	Timeouts uint64 `json:"timeouts"`
	// ClientErrors counts other 4xx responses; ServerErrors counts 5xx.
	ClientErrors uint64 `json:"client_errors"`
	ServerErrors uint64 `json:"server_errors"`
	// WriteErrors counts response bodies the client connection failed to
	// accept (the work was already done; nothing to retry server-side).
	WriteErrors uint64 `json:"write_errors"`
	// Latency counters: completed observations, their sum, and the max.
	LatencyCount     uint64 `json:"latency_count"`
	LatencyMicros    uint64 `json:"latency_micros_total"`
	LatencyMaxMicros uint64 `json:"latency_max_micros"`
}

func (m *endpointMetrics) snapshot() EndpointStats {
	return EndpointStats{
		Requests:         m.requests.Load(),
		Coalesced:        m.coalesced.Load(),
		Rejected:         m.rejected.Load(),
		Timeouts:         m.timeouts.Load(),
		ClientErrors:     m.clientErrors.Load(),
		ServerErrors:     m.serverErrors.Load(),
		WriteErrors:      m.writeErrors.Load(),
		LatencyCount:     m.latencyCount.Load(),
		LatencyMicros:    m.latencyMicros.Load(),
		LatencyMaxMicros: m.latencyMaxMicros.Load(),
	}
}

// EndpointsSnapshot lists every request endpoint by name.
type EndpointsSnapshot struct {
	Evaluate EndpointStats `json:"evaluate"`
	Sweep    EndpointStats `json:"sweep"`
	Explore  EndpointStats `json:"explore"`
}

// StageCacheSnapshot is the shared pipeline's per-stage cache counters.
type StageCacheSnapshot struct {
	Place      cache.Stats `json:"place"`
	Synthesize cache.Stats `json:"synthesize"`
	Search     cache.Stats `json:"search"`
	Bind       cache.Stats `json:"bind"`
}

// Snapshot is the GET /metrics payload.
type Snapshot struct {
	// UptimeSeconds since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// InFlight and Queued are admission gauges: evaluations holding a
	// slot, and leaders waiting in the bounded queue.
	InFlight int   `json:"in_flight"`
	Queued   int64 `json:"queued"`
	// Endpoints holds the per-endpoint counters.
	Endpoints EndpointsSnapshot `json:"endpoints"`
	// Cache is the cross-request stage-artifact cache (hit/miss/eviction
	// counters from internal/cache).
	Cache StageCacheSnapshot `json:"cache"`
	// Pool is the worker pool's process-wide batch/job/panic totals.
	Pool pool.Counters `json:"pool"`
}

// metrics groups the per-endpoint blocks with the server's start time.
type metrics struct {
	started  time.Time
	evaluate endpointMetrics
	sweep    endpointMetrics
	explore  endpointMetrics
}

// snapshot assembles the full /metrics payload.
func (r *metrics) snapshot(pl *core.Pipeline, adm *admission) Snapshot {
	st := pl.Stats()
	return Snapshot{
		UptimeSeconds: time.Since(r.started).Seconds(),
		InFlight:      adm.inFlight(),
		Queued:        adm.waiting(),
		Endpoints: EndpointsSnapshot{
			Evaluate: r.evaluate.snapshot(),
			Sweep:    r.sweep.snapshot(),
			Explore:  r.explore.snapshot(),
		},
		Cache: StageCacheSnapshot{
			Place:      st.Place,
			Synthesize: st.Synthesize,
			Search:     st.Search,
			Bind:       st.Bind,
		},
		Pool: pool.Stats(),
	}
}
