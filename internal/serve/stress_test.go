package serve

// The coalescing stress test the race CI job runs with -race: N identical
// and M distinct concurrent requests, with the identical flight's leader
// gated (via the hookComputeStarted seam) until every duplicate has
// joined. Asserts exactly one computation per distinct plan and
// bit-identical bodies across the coalesced set.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestCoalescingStressSingleComputePerPlan(t *testing.T) {
	const (
		identical = 6
		distinct  = 4
	)
	identicalBody := `{"qubits": 16, "two_qubit_gates": 8, "runs": 2, "seed": 5}`
	var idReq SweepRequest
	if err := json.Unmarshal([]byte(identicalBody), &idReq); err != nil {
		t.Fatal(err)
	}
	idKey := idReq.normalize().key()

	s, ts := newTestServer(t, Options{MaxInFlight: 8, MaxQueue: 64})
	var mu sync.Mutex
	computes := make(map[string]int)
	s.hookComputeStarted = func(key string) {
		mu.Lock()
		computes[key]++
		mu.Unlock()
		if key == idKey {
			// Hold the shared flight open until every duplicate request
			// has joined it, so coalescing is exercised deterministically
			// rather than by lucky timing.
			deadline := time.Now().Add(30 * time.Second)
			for s.flights.waiting(idKey) < identical-1 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}
	}

	type result struct {
		status int
		body   []byte
	}
	idResults := make([]result, identical)
	dsResults := make([]result, distinct)
	var wg sync.WaitGroup
	for i := 0; i < identical; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := doJSON(t, ts, http.MethodPost, "/v1/sweep", identicalBody)
			idResults[i] = result{resp.StatusCode, body}
		}(i)
	}
	for i := 0; i < distinct; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct requests differ structurally (workload size), not
			// just by seed: some grids are seed-invariant (a single chain
			// has no placement freedom), and the test needs bodies that
			// provably differ.
			body := fmt.Sprintf(`{"qubits": %d, "two_qubit_gates": %d, "runs": 2, "seed": 5}`, 24+8*i, 12+4*i)
			resp, b := doJSON(t, ts, http.MethodPost, "/v1/sweep", body)
			dsResults[i] = result{resp.StatusCode, b}
		}(i)
	}
	wg.Wait()

	for i, r := range idResults {
		if r.status != http.StatusOK {
			t.Fatalf("identical request %d = %d: %s", i, r.status, r.body)
		}
		if !bytes.Equal(r.body, idResults[0].body) {
			t.Errorf("identical request %d body differs from request 0", i)
		}
	}
	distinctBodies := make(map[string]bool)
	for i, r := range dsResults {
		if r.status != http.StatusOK {
			t.Fatalf("distinct request %d = %d: %s", i, r.status, r.body)
		}
		distinctBodies[string(r.body)] = true
	}
	if len(distinctBodies) != distinct {
		t.Errorf("distinct seeds produced %d unique bodies, want %d", len(distinctBodies), distinct)
	}

	mu.Lock()
	defer mu.Unlock()
	if got := computes[idKey]; got != 1 {
		t.Errorf("identical plan computed %d times, want 1", got)
	}
	if len(computes) != 1+distinct {
		t.Errorf("computed %d plans, want %d", len(computes), 1+distinct)
	}
	for key, n := range computes {
		if n != 1 {
			t.Errorf("plan %q computed %d times, want 1", key, n)
		}
	}

	snap := s.MetricsSnapshot()
	if snap.Endpoints.Sweep.Coalesced != identical-1 {
		t.Errorf("coalesced counter = %d, want %d", snap.Endpoints.Sweep.Coalesced, identical-1)
	}
}
