package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCoalesceSharesOneComputation holds the leader open until every
// joiner has joined, then checks one compute served all callers with the
// same response value.
func TestCoalesceSharesOneComputation(t *testing.T) {
	const joiners = 8
	c := newCoalescer()
	var computes atomic.Int64
	resp := &response{status: 200, body: []byte("shared")}

	fn := func() *response {
		computes.Add(1)
		// Wait for every joiner before finishing the flight.
		deadline := time.Now().Add(10 * time.Second)
		for c.waiting("k") < joiners {
			if time.Now().After(deadline) {
				t.Error("joiners never arrived")
				break
			}
			time.Sleep(time.Millisecond)
		}
		return resp
	}

	var wg sync.WaitGroup
	results := make([]*response, joiners+1)
	joinedFlags := make([]bool, joiners+1)
	leaderReady := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(leaderReady)
		r, joined, err := c.do(context.Background(), "k", fn)
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results[0], joinedFlags[0] = r, joined
	}()
	<-leaderReady
	// Wait until the flight is registered so the joiners actually join.
	for c.waiting("k") == 0 {
		c.mu.Lock()
		_, open := c.flights["k"]
		c.mu.Unlock()
		if open {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i <= joiners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, joined, err := c.do(context.Background(), "k", func() *response {
				computes.Add(1)
				return &response{status: 200, body: []byte("wrong")}
			})
			if err != nil {
				t.Errorf("joiner %d: %v", i, err)
			}
			results[i], joinedFlags[i] = r, joined
		}(i)
	}
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computes = %d, want 1", got)
	}
	leaders := 0
	for i, r := range results {
		if r != resp {
			t.Errorf("caller %d got response %p, want the shared %p", i, r, resp)
		}
		if !joinedFlags[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("leaders = %d, want exactly 1", leaders)
	}
}

// TestCoalesceDistinctKeysComputeIndependently checks no cross-key
// sharing happens.
func TestCoalesceDistinctKeysComputeIndependently(t *testing.T) {
	c := newCoalescer()
	var computes atomic.Int64
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			r, _, err := c.do(context.Background(), key, func() *response {
				computes.Add(1)
				return &response{body: []byte(key)}
			})
			if err != nil {
				t.Errorf("%s: %v", key, err)
			}
			if string(r.body) != key {
				t.Errorf("key %s got body %q", key, r.body)
			}
		}(key)
	}
	wg.Wait()
	if got := computes.Load(); got != 3 {
		t.Fatalf("computes = %d, want 3", got)
	}
}

// TestCoalesceJoinerDeadlineDoesNotKillFlight cancels a joiner's context
// and checks the joiner gets its own error while the flight still
// completes for the leader.
func TestCoalesceJoinerDeadlineDoesNotKillFlight(t *testing.T) {
	c := newCoalescer()
	release := make(chan struct{})
	leaderDone := make(chan *response, 1)
	go func() {
		r, _, _ := c.do(context.Background(), "k", func() *response {
			<-release
			return &response{status: 200, body: []byte("late")}
		})
		leaderDone <- r
	}()
	// Wait for the flight to open.
	for {
		c.mu.Lock()
		_, open := c.flights["k"]
		c.mu.Unlock()
		if open {
			break
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, joined, err := c.do(ctx, "k", func() *response { t.Error("joiner computed"); return nil })
	if !joined {
		t.Error("second caller should have joined the open flight")
	}
	if err != context.Canceled {
		t.Errorf("joiner err = %v, want context.Canceled", err)
	}

	close(release)
	select {
	case r := <-leaderDone:
		if string(r.body) != "late" {
			t.Errorf("leader body = %q, want %q", r.body, "late")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("leader never completed")
	}
}

// TestCoalescePanicFeedsJoinersAnError checks a panicking leader still
// answers its joiners with the internal-error response instead of hanging
// them.
func TestCoalescePanicFeedsJoinersAnError(t *testing.T) {
	c := newCoalescer()
	joinerDone := make(chan *response, 1)
	entered := make(chan struct{})
	go func() {
		defer func() { recover() }() // the panic under test must not fail the harness goroutine
		_, _, _ = c.do(context.Background(), "k", func() *response {
			close(entered)
			// Give the joiner time to join before panicking.
			deadline := time.Now().Add(10 * time.Second)
			for c.waiting("k") == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			panic("boom")
		})
	}()
	<-entered
	go func() {
		r, _, err := c.do(context.Background(), "k", func() *response { return nil })
		if err != nil {
			t.Errorf("joiner err = %v", err)
		}
		joinerDone <- r
	}()
	select {
	case r := <-joinerDone:
		if r == nil || r.status != 500 {
			t.Fatalf("joiner response = %+v, want the 500 internal response", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("joiner hung after leader panic")
	}
}

// TestCoalesceFlightForgottenAfterCompletion checks completed responses
// are not cached: a later identical request computes again.
func TestCoalesceFlightForgottenAfterCompletion(t *testing.T) {
	c := newCoalescer()
	var computes atomic.Int64
	for i := 0; i < 2; i++ {
		_, joined, err := c.do(context.Background(), "k", func() *response {
			computes.Add(1)
			return &response{}
		})
		if err != nil || joined {
			t.Fatalf("call %d: joined=%v err=%v, want fresh leader", i, joined, err)
		}
	}
	if got := computes.Load(); got != 2 {
		t.Fatalf("computes = %d, want 2 (no response caching)", got)
	}
}
