package serve

// Single-flight request coalescing. Identical plans are the common case of
// a shared sweep service — many clients asking for the same grid under the
// same seed — and every evaluation is deterministic, so concurrent
// duplicates can share one synthesis and receive bit-identical bodies.
//
// A coalescer deduplicates only *concurrent* work: the leader computes,
// joiners wait on the flight, and the flight is forgotten once it
// completes. Completed responses are deliberately not cached — the stage
// pipeline (internal/cache) already memoizes the expensive artifacts under
// content keys, and replaying the cheap pricing pass keeps /metrics an
// honest record of what each request cost.

import (
	"context"
	"sync"
	"sync/atomic"
)

// flight is one in-progress computation. resp is written exactly once,
// before done is closed; the channel close publishes it to every joiner.
type flight struct {
	done    chan struct{}
	resp    *response
	waiters atomic.Int64
}

// coalescer tracks in-flight computations by canonical request key.
type coalescer struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newCoalescer() *coalescer {
	return &coalescer{flights: make(map[string]*flight)}
}

// do returns the response for key. The first caller (the leader) computes
// it via fn; callers arriving while the flight is open join it and wait
// for the leader's response or their own context, whichever comes first.
// joined reports whether this caller shared another request's computation.
//
// fn runs on the leader's goroutine but must not depend on the leader's
// request context: a flight is shared property, so its lifetime is owned
// by the server (see Server.serveRequest), and a joiner whose deadline
// fires gets its own timeout error while the flight runs on for the rest.
func (c *coalescer) do(ctx context.Context, key string, fn func() *response) (resp *response, joined bool, err error) {
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		f.waiters.Add(1)
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.resp, true, nil
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	defer func() {
		if f.resp == nil {
			// fn panicked out of the leader. Joiners still need an
			// answer; the leader's own connection is handled by
			// net/http's per-connection recovery.
			f.resp = errorResponseInternal("internal error: request computation panicked")
		}
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		close(f.done)
	}()
	f.resp = fn()
	return f.resp, false, nil
}

// waiting reports how many callers are currently joined to key's flight
// (zero when no flight is open). It exists for tests and the saturation
// metrics; the answer is advisory the moment it is returned.
func (c *coalescer) waiting(key string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[key]; ok {
		return f.waiters.Load()
	}
	return 0
}
